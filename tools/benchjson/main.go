// Command benchjson runs the adaptation-engine benchmark trajectory and
// writes the results to a JSON file, so successive commits can be compared
// point for point without re-parsing `go test -bench` text.
//
// Two passes keep the wall clock sane: the microbenchmarks run at the
// default benchtime for stable ns/op, while the end-to-end experiments —
// the Figure 10 reproduction and the serial-vs-parallel training and
// Figure 13 pairs (tens of seconds per op) — run exactly once.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"
)

const (
	fastPattern = "^(BenchmarkFreqSolve|BenchmarkFreqSolveCold|BenchmarkChipGeneration|BenchmarkCorePipeline|BenchmarkCorePipelineReference|BenchmarkCoreSteady|BenchmarkPEFMaxBatch|BenchmarkThermalSolveBatch)$"
	slowPattern = "^(BenchmarkFig10_RelativeFrequency|BenchmarkFig10_ArtifactCache|BenchmarkFig13_ControllerOutcomes|BenchmarkTrainFuzzySolver)$"
	// The cold fleet rows are recorded single-shot like the other slow
	// benchmarks; the warm rows are recorded at fleetCheckIterations so
	// the checked-in baseline measures exactly what the -check-fleet gate
	// re-measures (a 1x warm row is dominated by first-iteration warmup
	// and too noisy to gate against at 20%).
	fleetColdPattern = "^BenchmarkFleet$/^cold$"
)

// warmBenchName and coldBenchName are the headline numbers the
// -check-warm and -check-cold gates compare against the checked-in
// trajectory.
const (
	warmBenchName = "BenchmarkFig10_ArtifactCache/warm"
	coldBenchName = "BenchmarkFig10_ArtifactCache/cold"
	// steadyBenchName is the hot-loop allocation canary: the warm gate also
	// fails if its allocs/op regress (the steady-state thermal solve must
	// stay allocation-free apart from its single result).
	steadyBenchName = "BenchmarkCoreSteady/warm"
)

// fleetBenchName is the serving-path headline the -check-fleet gate pins:
// single-core, warm-cache event throughput of the fleet service. Besides
// the relative ns/op check, the gate enforces the absolute service
// floors, the multi-worker parity floor, and the bytes/allocs budgets
// below, none of which machine-scale normalization applies to.
const (
	fleetBenchName       = "BenchmarkFleet/warm/workers=1"
	fleetParityBenchName = "BenchmarkFleet/warm/workers=8"
	fleetWarmPattern     = "^BenchmarkFleet$/^warm$"
	minFleetEventsPerSec = 10000.0
	maxFleetSchedP99Ms   = 10.0
	// minFleetParity is the workers=8 / workers=1 warm events/s floor: the
	// sharded ingest must not anti-scale when the pool grows past the
	// core count.
	minFleetParity       = 0.9
	fleetCheckIterations = "100x" // ~5000 events: enough signal, <1s wall
)

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type trajectory struct {
	Commit     string           `json:"commit"`
	GoVersion  string           `json:"go_version"`
	Benchmarks []benchResult    `json:"benchmarks"`
	Fleetload  *fleetloadRecord `json:"fleetload,omitempty"`
}

// fleetloadRecord is the driven-server measurement: cmd/fleetload
// closed-loop against a live evalserve over HTTP, so the recorded
// events/s and p99 include ingest, scheduling, the wire encoder, and
// the network — not just the in-process benchmark loop.
type fleetloadRecord struct {
	Mode         string  `json:"mode"`
	Conns        int     `json:"conns"`
	DurationS    float64 `json:"duration_s"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	ReqP50Ms     float64 `json:"req_p50_ms"`
	ReqP99Ms     float64 `json:"req_p99_ms"`
	SchedP99Ms   float64 `json:"sched_p99_ms"`
}

func main() {
	outPath := flag.String("out", "BENCH_adapt.json", "output JSON file")
	checkWarm := flag.String("check-warm", "",
		"instead of writing a trajectory, re-run the warm Figure 10 benchmark once and fail if ns/op regresses more than -tolerance against this baseline JSON")
	checkCold := flag.String("check-cold", "",
		"like -check-warm, but gate the cold (empty-cache) Figure 10 benchmark — the end-to-end build path the batching optimizations target")
	checkFleet := flag.String("check-fleet", "",
		"gate the fleet-service benchmark: warm single-core ns/op against this baseline JSON, plus the absolute events/s and p99 scheduling-latency floors")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression for -check-warm / -check-cold")
	allowDirty := flag.Bool("allow-dirty", false,
		"record a trajectory from a dirty tree anyway (the commit field is annotated '-dirty'; a checked-in baseline must come from a clean commit)")
	skipFleetload := flag.Bool("skip-fleetload", false,
		"skip the driven-server fleetload measurement when writing a trajectory")
	flag.Parse()

	if *checkWarm != "" {
		// The warm gate also checks allocs/op — machine-independent, so no
		// normalization — on the warm Figure 10 run and the steady-state
		// thermal solve, catching allocation regressions that a fast CI
		// machine would hide inside the ns tolerance.
		if err := checkRegression(*checkWarm, warmBenchName, *tolerance,
			warmBenchName, steadyBenchName); err != nil {
			fatal(err)
		}
		return
	}
	if *checkCold != "" {
		if err := checkRegression(*checkCold, coldBenchName, *tolerance); err != nil {
			fatal(err)
		}
		return
	}
	if *checkFleet != "" {
		if err := checkFleetRegression(*checkFleet, *tolerance); err != nil {
			fatal(err)
		}
		return
	}

	// A checked-in trajectory must be reproducible from its commit field;
	// a dirty tree breaks that provenance, so writing one is opt-in and
	// loudly annotated.
	if gitDirty() {
		if !*allowDirty {
			fatal(fmt.Errorf("working tree is dirty; commit first so the trajectory's commit field is reproducible, or pass -allow-dirty to record anyway"))
		}
		fmt.Fprintln(os.Stderr, "benchjson: WARNING: recording from a dirty tree; the commit field will say '-dirty' and the result must not be checked in as a baseline")
	}

	fast, err := runBench(fastPattern, "")
	if err != nil {
		fatal(err)
	}
	slow, err := runBench(slowPattern, "1x")
	if err != nil {
		fatal(err)
	}
	fleetWarm, err := runBench(fleetWarmPattern, fleetCheckIterations)
	if err != nil {
		fatal(err)
	}
	fleetCold, err := runBench(fleetColdPattern, "1x")
	if err != nil {
		fatal(err)
	}
	traj := trajectory{
		Commit:     gitCommit(),
		GoVersion:  runtime.Version(),
		Benchmarks: append(append(append(fast, slow...), fleetWarm...), fleetCold...),
	}
	if !*skipFleetload {
		fl, err := runFleetload()
		if err != nil {
			fatal(fmt.Errorf("fleetload measurement: %w", err))
		}
		traj.Fleetload = fl
	}
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d benchmarks at commit %s\n",
		*outPath, len(traj.Benchmarks), traj.Commit)
}

// checkRegression is the benchstat-style CI smoke gate: it re-runs the
// Figure 10 benchmark once and compares benchName's ns/op against the
// checked-in trajectory at baselinePath. Machines differ in absolute
// speed, so the gate normalizes both sides by BenchmarkCorePipelineReference
// (an unoptimized, allocation-free kernel whose cost tracks raw CPU speed)
// when the baseline recorded it; otherwise it falls back to the raw ratio.
func checkRegression(baselinePath, benchName string, tolerance float64, allocGates ...string) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base trajectory
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	find := func(results []benchResult, name string) (benchResult, bool) {
		for _, r := range results {
			if r.Name == name {
				return r, true
			}
		}
		return benchResult{}, false
	}
	baseline, ok := find(base.Benchmarks, benchName)
	if !ok {
		return fmt.Errorf("%s: no %s entry to compare against", baselinePath, benchName)
	}
	current, err := runBench("^(BenchmarkFig10_ArtifactCache)$", "1x")
	if err != nil {
		return err
	}
	now, ok := find(current, benchName)
	if !ok {
		return fmt.Errorf("benchmark run produced no %s line", benchName)
	}
	ratio := now.NsPerOp / baseline.NsPerOp
	scale, err := machineScale(base)
	if err != nil {
		return err
	}
	ratio /= scale
	fmt.Fprintf(os.Stderr,
		"benchjson: %s: %.3gs now vs %.3gs baseline (machine scale %.2f, normalized ratio %.2f, tolerance +%.0f%%)\n",
		benchName, now.NsPerOp/1e9, baseline.NsPerOp/1e9, scale, ratio, tolerance*100)
	if ratio > 1+tolerance {
		return fmt.Errorf("regression: %s %.0f ns/op vs baseline %.0f ns/op (normalized %.2fx > %.2fx allowed)",
			benchName, now.NsPerOp, baseline.NsPerOp, ratio, 1+tolerance)
	}
	for _, name := range allocGates {
		baseAllocs, ok := find(base.Benchmarks, name)
		if !ok {
			return fmt.Errorf("%s: no %s entry for the allocs gate", baselinePath, name)
		}
		nowAllocs, ok := find(current, name)
		if !ok {
			// Not part of the Figure 10 run already in hand: run it now.
			extra, err := runBench("^Benchmark"+strings.Split(strings.TrimPrefix(name, "Benchmark"), "/")[0]+"$", "")
			if err != nil {
				return err
			}
			if nowAllocs, ok = find(extra, name); !ok {
				return fmt.Errorf("benchmark run produced no %s line", name)
			}
		}
		// The +0.5 slack keeps integer alloc counts from tripping on
		// rounding at tiny baselines (1 alloc stays 1, not 1.2).
		limit := baseAllocs.AllocsPerOp*(1+tolerance) + 0.5
		fmt.Fprintf(os.Stderr,
			"benchjson: %s: %.0f allocs/op now vs %.0f baseline (limit %.0f)\n",
			name, nowAllocs.AllocsPerOp, baseAllocs.AllocsPerOp, limit)
		if nowAllocs.AllocsPerOp > limit {
			return fmt.Errorf("regression: %s %.0f allocs/op vs baseline %.0f (limit %.0f)",
				name, nowAllocs.AllocsPerOp, baseAllocs.AllocsPerOp, limit)
		}
	}
	return nil
}

// machineScale re-runs the BenchmarkCorePipelineReference speed anchor
// and returns its ns/op ratio against the baseline's recording (1.0 when
// the baseline lacks the anchor). Machines differ in absolute speed; the
// regression gates divide their ratios by this scale.
func machineScale(base trajectory) (float64, error) {
	var baseRef benchResult
	found := false
	for _, r := range base.Benchmarks {
		if r.Name == "BenchmarkCorePipelineReference" {
			baseRef, found = r, true
			break
		}
	}
	if !found || baseRef.NsPerOp <= 0 {
		return 1.0, nil
	}
	ref, err := runBench("^BenchmarkCorePipelineReference$", "")
	if err != nil {
		return 0, err
	}
	for _, r := range ref {
		if r.Name == "BenchmarkCorePipelineReference" && r.NsPerOp > 0 {
			return r.NsPerOp / baseRef.NsPerOp, nil
		}
	}
	return 1.0, nil
}

// checkFleetRegression gates the fleet service's serving path. Four
// checks: the warm single-core ns/op against the checked-in trajectory
// (machine-normalized, like the other gates); the absolute service
// floors — warm-cache events/s and p99 scheduling latency — which hold
// as-is on any machine the gate is expected to pass on; the memory
// budget — warm bytes/op and allocs/op at both worker counts must stay
// within tolerance of the baseline (machine-independent, so no
// normalization); and the scaling parity floor — warm workers=8 must
// reach minFleetParity of the workers=1 events/s, the property the
// sharded ingest exists to hold.
func checkFleetRegression(baselinePath string, tolerance float64) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base trajectory
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	find := func(results []benchResult, name string) (benchResult, bool) {
		for _, r := range results {
			if r.Name == name {
				return r, true
			}
		}
		return benchResult{}, false
	}
	baseline, ok := find(base.Benchmarks, fleetBenchName)
	if !ok {
		return fmt.Errorf("%s: no %s entry to compare against", baselinePath, fleetBenchName)
	}
	current, err := runBench(fleetWarmPattern, fleetCheckIterations)
	if err != nil {
		return err
	}
	now, ok := find(current, fleetBenchName)
	if !ok {
		return fmt.Errorf("benchmark run produced no %s line", fleetBenchName)
	}
	ratio := now.NsPerOp / baseline.NsPerOp
	scale, err := machineScale(base)
	if err != nil {
		return err
	}
	ratio /= scale
	evs := now.Metrics["events/s"]
	p99 := now.Metrics["sched_p99_ms"]
	fmt.Fprintf(os.Stderr,
		"benchjson: %s: %.0f events/s (floor %.0f), sched p99 %.2f ms (ceiling %.0f), normalized ns/op ratio %.2f (tolerance +%.0f%%)\n",
		fleetBenchName, evs, minFleetEventsPerSec, p99, maxFleetSchedP99Ms, ratio, tolerance*100)
	if ratio > 1+tolerance {
		return fmt.Errorf("regression: %s %.0f ns/op vs baseline %.0f ns/op (normalized %.2fx > %.2fx allowed)",
			fleetBenchName, now.NsPerOp, baseline.NsPerOp, ratio, 1+tolerance)
	}
	if evs < minFleetEventsPerSec {
		return fmt.Errorf("fleet throughput floor: %.0f events/s < %.0f required", evs, minFleetEventsPerSec)
	}
	if p99 > maxFleetSchedP99Ms {
		return fmt.Errorf("fleet latency ceiling: sched p99 %.2f ms > %.0f ms allowed", p99, maxFleetSchedP99Ms)
	}
	// Memory budget: B/op and allocs/op are machine-independent, so they
	// gate directly against the baseline at both worker counts. The flat
	// slack terms keep tiny baselines from tripping on rounding.
	for _, name := range []string{fleetBenchName, fleetParityBenchName} {
		b, ok := find(base.Benchmarks, name)
		if !ok {
			return fmt.Errorf("%s: no %s entry for the memory gate", baselinePath, name)
		}
		n, ok := find(current, name)
		if !ok {
			return fmt.Errorf("benchmark run produced no %s line", name)
		}
		byteLimit := b.BytesPerOp*(1+tolerance) + 512
		allocLimit := b.AllocsPerOp*(1+tolerance) + 0.5
		fmt.Fprintf(os.Stderr,
			"benchjson: %s: %.0f B/op (limit %.0f), %.0f allocs/op (limit %.0f)\n",
			name, n.BytesPerOp, byteLimit, n.AllocsPerOp, allocLimit)
		if n.BytesPerOp > byteLimit {
			return fmt.Errorf("regression: %s %.0f B/op vs baseline %.0f (limit %.0f)",
				name, n.BytesPerOp, b.BytesPerOp, byteLimit)
		}
		if n.AllocsPerOp > allocLimit {
			return fmt.Errorf("regression: %s %.0f allocs/op vs baseline %.0f (limit %.0f)",
				name, n.AllocsPerOp, b.AllocsPerOp, allocLimit)
		}
	}
	// Scaling parity: both variants came from the same run, so the ratio
	// needs no normalization.
	w8, ok := find(current, fleetParityBenchName)
	if !ok {
		return fmt.Errorf("benchmark run produced no %s line", fleetParityBenchName)
	}
	parity := w8.Metrics["events/s"] / evs
	fmt.Fprintf(os.Stderr,
		"benchjson: fleet parity: workers=8 %.0f events/s / workers=1 %.0f = %.2fx (floor %.2fx)\n",
		w8.Metrics["events/s"], evs, parity, minFleetParity)
	if parity < minFleetParity {
		return fmt.Errorf("fleet scaling parity: workers=8 reaches only %.2fx of workers=1 events/s (floor %.2fx)",
			parity, minFleetParity)
	}
	return nil
}

func runBench(pattern, benchtime string) ([]benchResult, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	results, err := parseBench(out.String())
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q", pattern)
	}
	return results, nil
}

// parseBench reads standard `go test -bench` result lines:
//
//	BenchmarkFreqSolve-8   43210   27726 ns/op   248 B/op   5 allocs/op
//
// Unrecognized value/unit pairs (b.ReportMetric output) land in Metrics.
func parseBench(out string) ([]benchResult, error) {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a status line, not a result line
		}
		r := benchResult{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// runFleetload measures the driven-server path: it builds evalserve and
// fleetload, starts the server on a loopback port, drives it closed-loop
// for a short window, and returns fleetload's summary (with the server's
// own sched p99 from /v1/stats).
func runFleetload() (*fleetloadRecord, error) {
	dir, err := os.MkdirTemp("", "benchjson-fleetload")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	for _, pkg := range []string{"evalserve", "fleetload"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, pkg), "./cmd/"+pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("build %s: %w", pkg, err)
		}
	}
	const addr = "127.0.0.1:18097"
	srv := exec.Command(filepath.Join(dir, "evalserve"), "-addr", addr, "-no-cache", "-tracelen", "8000")
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return nil, fmt.Errorf("start evalserve: %w", err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()
	up := false
	for i := 0; i < 50; i++ {
		if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			if up {
				break
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !up {
		return nil, fmt.Errorf("evalserve did not become healthy on %s", addr)
	}
	load := exec.Command(filepath.Join(dir, "fleetload"),
		"-url", "http://"+addr, "-conns", "4", "-duration", "3s",
		"-chips", "8", "-batch", "50")
	var out bytes.Buffer
	load.Stdout = &out
	load.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: %s\n", strings.Join(load.Args, " "))
	if err := load.Run(); err != nil {
		return nil, fmt.Errorf("fleetload: %w", err)
	}
	var sum struct {
		fleetloadRecord
		Stats *struct {
			SchedP99Ms float64 `json:"sched_p99_ms"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		return nil, fmt.Errorf("parse fleetload summary: %w", err)
	}
	rec := sum.fleetloadRecord
	if sum.Stats != nil {
		rec.SchedP99Ms = sum.Stats.SchedP99Ms
	}
	return &rec, nil
}

func gitDirty() bool {
	status, err := exec.Command("git", "status", "--porcelain").Output()
	return err == nil && len(bytes.TrimSpace(status)) > 0
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	commit := strings.TrimSpace(string(out))
	if gitDirty() {
		commit += "-dirty"
	}
	return commit
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
