// Doccheck verifies that every local link target in the given markdown
// files exists on disk, so the reference docs (WORKLOADS.md,
// EXPERIMENTS.md, README.md) cannot drift ahead of the tree they
// describe. External links (http/https/mailto) and pure in-page anchors
// are skipped; a relative target is resolved against the directory of
// the file that references it, and any "#fragment" suffix is dropped
// before the existence check.
//
//	go run ./tools/doccheck README.md WORKLOADS.md EXPERIMENTS.md
//
// Exits non-zero listing every broken link as file:line -> target.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Reference-style
// links and autolinks are not used in this repo's docs.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken := 0
	checked := 0
	for _, path := range os.Args[1:] {
		n, bad, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		checked += n
		broken += bad
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken link(s) out of %d checked\n", broken, checked)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d local link(s) ok across %d file(s)\n", checked, len(os.Args)-1)
}

// checkFile returns (local links checked, broken links found).
func checkFile(path string) (int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	dir := filepath.Dir(path)
	checked, broken := 0, 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	inFence := false
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		// Links inside fenced code blocks are sample output, not references.
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if isExternal(target) || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			checked++
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d -> %s (missing)\n", path, line, m[1])
				broken++
			}
		}
	}
	return checked, broken, sc.Err()
}

func isExternal(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}
