// Fleet: manufacturing-spread view — what EVAL does across a population of
// chips, the way Figure 10 averages over 100 dies.
//
// For a fleet of chips, this example bins the worst-case-safe (Baseline)
// frequency, then shows the per-chip frequency the preferred EVAL
// environment recovers with dynamic adaptation, and the distribution of
// the gains. It runs the fleet twice: once on the gcc proxy, once on a
// generated client workload (see WORKLOADS.md) — pass -spec to bring
// your own scenario:
//
//	go run ./examples/fleet
//	go run ./examples/fleet -spec examples/specs/edge.json -seed 42
//
// With -serve the same table is produced by an evalserve instance
// instead of in-process: each chip joins the fleet, submits a baseline
// probe and one exhaustive adaptation unit on the app's heaviest phase,
// and leaves. The output is byte-identical to the local run of the same
// -chips and -app:
//
//	go run ./examples/fleet -app gcc -chips 4
//	go run ./examples/fleet -app gcc -chips 4 -serve http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/mathx"
	"repro/internal/workload"
)

func main() {
	specPath := flag.String("spec", "", "workload spec JSON for the generated fleet run (default: a built-in server-mix client)")
	specSeed := flag.Int64("seed", 1, "generation seed for the workload spec")
	chips := flag.Int("chips", 12, "fleet size")
	appName := flag.String("app", "", "run a single suite app instead of proxy + generated")
	serveURL := flag.String("serve", "", "evalserve base URL; submit the fleet as an event batch instead of simulating in-process (requires -app)")
	flag.Parse()

	if *serveURL != "" {
		if *appName == "" {
			log.Fatal("-serve requires -app (the server resolves apps from its own suite)")
		}
		app, err := workload.ByName(*appName)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := remoteRows(*serveURL, app, *chips)
		if err != nil {
			log.Fatal(err)
		}
		printFleet(app, rows)
		return
	}

	sim, err := core.NewSimulator(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if *appName != "" {
		app, err := workload.ByName(*appName)
		if err != nil {
			log.Fatal(err)
		}
		fleetRun(sim, app, *chips)
		return
	}
	proxy, err := workload.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	generated, err := generatedApp(*specPath, *specSeed)
	if err != nil {
		log.Fatal(err)
	}
	fleetRun(sim, proxy, *chips)
	fmt.Println()
	fleetRun(sim, generated, *chips)
}

// generatedApp lowers the spec (or a built-in single-client scenario) and
// returns its first app.
func generatedApp(specPath string, seed int64) (workload.App, error) {
	spec := workload.Spec{
		Name: "fleet",
		Clients: []workload.ClientSpec{{
			Name:    "serve",
			Class:   workload.GenServerMix,
			Arrival: workload.Arrival{Process: workload.Gamma, RatePerS: 300, Shape: 0.6},
			Windows: 6,
			Drift:   0.15,
		}},
	}
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return workload.App{}, err
		}
		s, err := workload.DecodeSpec(data)
		if err != nil {
			return workload.App{}, err
		}
		spec = *s
	}
	apps, err := workload.GenerateApps(spec, seed)
	if err != nil {
		return workload.App{}, err
	}
	return apps[0], nil
}

// chipRow is one chip's line of the fleet table.
type chipRow struct {
	fvar   float64 // worst-case-safe baseline frequency
	fcore  float64 // adapted frequency in the preferred environment
	powerW float64
}

// fleetRun bins one app's baseline vs EVAL frequencies across the fleet,
// simulating in-process.
func fleetRun(sim *core.Simulator, app workload.App, chips int) {
	prof, err := sim.Profile(app, heaviestPhase(app))
	if err != nil {
		log.Fatal(err)
	}
	rows := make([]chipRow, 0, chips)
	for seed := int64(0); seed < int64(chips); seed++ {
		chip := sim.Chip(seed)
		fvar, err := sim.ChipFVar(chip)
		if err != nil {
			log.Fatal(err)
		}
		cpu, err := sim.BuildCore(chip, core.TSASVQFU)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, chipRow{fvar: fvar, fcore: res.Point.FCore, powerW: res.State.TotalW})
	}
	printFleet(app, rows)
}

// remoteRows produces the same per-chip rows through an evalserve
// instance: one event batch of join + baseline probe + exhaustive
// heaviest-phase unit + leave per chip.
func remoteRows(baseURL string, app workload.App, chips int) ([]chipRow, error) {
	phase := heaviestPhaseIndex(app)
	events := make([]fleet.Event, 0, 4*chips)
	for seed := int64(0); seed < int64(chips); seed++ {
		ph := phase
		events = append(events,
			fleet.Event{Kind: fleet.KindJoin, Chip: seed},
			fleet.Event{Kind: fleet.KindRun, Chip: seed, Mode: fleet.ModeBaseline},
			fleet.Event{Kind: fleet.KindRun, Chip: seed, Mode: fleet.ModeExh,
				Env: core.TSASVQFU.String(), App: app.Name, Phase: &ph},
			fleet.Event{Kind: fleet.KindLeave, Chip: seed},
		)
	}
	body, err := json.Marshal(struct {
		Events []fleet.Event `json:"events"`
	}{events})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(strings.TrimRight(baseURL, "/")+"/v1/batch",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %s", resp.Status)
	}
	var results []fleet.Result
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var r fleet.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, err
		}
		if r.Status != fleet.StatusOK {
			return nil, fmt.Errorf("event %d (%s chip %d): %s: %s",
				r.Seq, r.Kind, r.Chip, r.Status, r.Err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) != len(events) {
		return nil, fmt.Errorf("server streamed %d results for %d events", len(results), len(events))
	}
	// Results arrive in submission order: per chip, offset 1 is the
	// baseline probe and offset 2 the adaptation unit.
	rows := make([]chipRow, 0, chips)
	for c := 0; c < chips; c++ {
		base, run := results[4*c+1], results[4*c+2]
		if base.Run == nil || run.Run == nil {
			return nil, fmt.Errorf("chip %d: missing run payload", c)
		}
		rows = append(rows, chipRow{fvar: base.Run.FRel, fcore: run.Run.FRel, powerW: run.Run.PowerW})
	}
	return rows, nil
}

// printFleet renders the fleet table; local and -serve runs share it so
// their outputs are comparable byte-for-byte.
func printFleet(app workload.App, rows []chipRow) {
	fmt.Printf("fleet of %d chips running %s\n\n", len(rows), app.Name)
	fmt.Printf("%-6s %12s %12s %8s %10s\n", "chip", "baseline", "EVAL", "gain", "power")
	var base, adapted []float64
	for seed, r := range rows {
		base = append(base, r.fvar)
		adapted = append(adapted, r.fcore)
		fmt.Printf("%-6d %9.2f GHz %9.2f GHz %+7.0f%% %8.1f W\n",
			seed, r.fvar*4, r.fcore*4, (r.fcore/r.fvar-1)*100, r.powerW)
	}

	bs, _ := mathx.Summarize(base)
	as, _ := mathx.Summarize(adapted)
	fmt.Printf("\nbaseline:  mean %.2f GHz (%.0f%% of nominal), spread %.2f-%.2f GHz\n",
		bs.Mean*4, bs.Mean*100, bs.Min*4, bs.Max*4)
	fmt.Printf("with EVAL: mean %.2f GHz (%.0f%% of nominal), spread %.2f-%.2f GHz\n",
		as.Mean*4, as.Mean*100, as.Min*4, as.Max*4)
	fmt.Printf("mean frequency gain: +%.0f%% (the paper reports +56%% over Baseline)\n\n",
		(as.Mean/bs.Mean-1)*100)

	// A compact two-row histogram: where the fleet's chips land.
	fmt.Println("frequency binning (x = one chip):")
	fmt.Printf("  baseline  %s\n", sparkline(base, 0.6, 1.4))
	fmt.Printf("  EVAL      %s\n", sparkline(adapted, 0.6, 1.4))
	fmt.Println("            0.6 GHz-bins (relative 0.6 .. 1.4 of nominal)")
}

// heaviestPhase picks the app's highest-weight phase.
func heaviestPhase(app workload.App) workload.Phase {
	return app.Phases[heaviestPhaseIndex(app)]
}

// heaviestPhaseIndex is heaviestPhase as a position, the form run events
// carry.
func heaviestPhaseIndex(app workload.App) int {
	best := 0
	for i, ph := range app.Phases {
		if ph.Weight > app.Phases[best].Weight {
			best = i
		}
	}
	return best
}

// sparkline bins values into 16 buckets over [lo, hi].
func sparkline(xs []float64, lo, hi float64) string {
	const bins = 16
	counts := make([]int, bins)
	for _, x := range xs {
		b := int(float64(bins) * (x - lo) / (hi - lo))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	var sb strings.Builder
	for _, c := range counts {
		switch {
		case c == 0:
			sb.WriteByte('.')
		case c < 3:
			sb.WriteByte('x')
		default:
			sb.WriteByte('X')
		}
	}
	return sb.String()
}
