// Fleet: manufacturing-spread view — what EVAL does across a population of
// chips, the way Figure 10 averages over 100 dies.
//
// For a fleet of chips, this example bins the worst-case-safe (Baseline)
// frequency, then shows the per-chip frequency the preferred EVAL
// environment recovers with dynamic adaptation, and the distribution of
// the gains. It runs the fleet twice: once on the gcc proxy, once on a
// generated client workload (see WORKLOADS.md) — pass -spec to bring
// your own scenario:
//
//	go run ./examples/fleet
//	go run ./examples/fleet -spec examples/specs/edge.json -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/workload"
)

func main() {
	specPath := flag.String("spec", "", "workload spec JSON for the generated fleet run (default: a built-in server-mix client)")
	specSeed := flag.Int64("seed", 1, "generation seed for the workload spec")
	flag.Parse()

	sim, err := core.NewSimulator(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := workload.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	generated, err := generatedApp(*specPath, *specSeed)
	if err != nil {
		log.Fatal(err)
	}
	fleetRun(sim, proxy)
	fmt.Println()
	fleetRun(sim, generated)
}

// generatedApp lowers the spec (or a built-in single-client scenario) and
// returns its first app.
func generatedApp(specPath string, seed int64) (workload.App, error) {
	spec := workload.Spec{
		Name: "fleet",
		Clients: []workload.ClientSpec{{
			Name:    "serve",
			Class:   workload.GenServerMix,
			Arrival: workload.Arrival{Process: workload.Gamma, RatePerS: 300, Shape: 0.6},
			Windows: 6,
			Drift:   0.15,
		}},
	}
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return workload.App{}, err
		}
		s, err := workload.DecodeSpec(data)
		if err != nil {
			return workload.App{}, err
		}
		spec = *s
	}
	apps, err := workload.GenerateApps(spec, seed)
	if err != nil {
		return workload.App{}, err
	}
	return apps[0], nil
}

// fleetRun bins one app's baseline vs EVAL frequencies across the fleet.
func fleetRun(sim *core.Simulator, app workload.App) {
	const chips = 12
	prof, err := sim.Profile(app, heaviestPhase(app))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d chips running %s\n\n", chips, app.Name)
	fmt.Printf("%-6s %12s %12s %8s %10s\n", "chip", "baseline", "EVAL", "gain", "power")
	var base, adapted []float64
	for seed := int64(0); seed < chips; seed++ {
		chip := sim.Chip(seed)
		fvar, err := sim.ChipFVar(chip)
		if err != nil {
			log.Fatal(err)
		}
		cpu, err := sim.BuildCore(chip, core.TSASVQFU)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
		if err != nil {
			log.Fatal(err)
		}
		base = append(base, fvar)
		adapted = append(adapted, res.Point.FCore)
		fmt.Printf("%-6d %9.2f GHz %9.2f GHz %+7.0f%% %8.1f W\n",
			seed, fvar*4, res.Point.FCore*4, (res.Point.FCore/fvar-1)*100, res.State.TotalW)
	}

	bs, _ := mathx.Summarize(base)
	as, _ := mathx.Summarize(adapted)
	fmt.Printf("\nbaseline:  mean %.2f GHz (%.0f%% of nominal), spread %.2f-%.2f GHz\n",
		bs.Mean*4, bs.Mean*100, bs.Min*4, bs.Max*4)
	fmt.Printf("with EVAL: mean %.2f GHz (%.0f%% of nominal), spread %.2f-%.2f GHz\n",
		as.Mean*4, as.Mean*100, as.Min*4, as.Max*4)
	fmt.Printf("mean frequency gain: +%.0f%% (the paper reports +56%% over Baseline)\n\n",
		(as.Mean/bs.Mean-1)*100)

	// A compact two-row histogram: where the fleet's chips land.
	fmt.Println("frequency binning (x = one chip):")
	fmt.Printf("  baseline  %s\n", sparkline(base, 0.6, 1.4))
	fmt.Printf("  EVAL      %s\n", sparkline(adapted, 0.6, 1.4))
	fmt.Println("            0.6 GHz-bins (relative 0.6 .. 1.4 of nominal)")
}

// heaviestPhase picks the app's highest-weight phase.
func heaviestPhase(app workload.App) workload.Phase {
	best := app.Phases[0]
	for _, ph := range app.Phases[1:] {
		if ph.Weight > best.Weight {
			best = ph
		}
	}
	return best
}

// sparkline bins values into 16 buckets over [lo, hi].
func sparkline(xs []float64, lo, hi float64) string {
	const bins = 16
	counts := make([]int, bins)
	for _, x := range xs {
		b := int(float64(bins) * (x - lo) / (hi - lo))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	var sb strings.Builder
	for _, c := range counts {
		switch {
		case c == 0:
			sb.WriteByte('.')
		case c < 3:
			sb.WriteByte('x')
		default:
			sb.WriteByte('X')
		}
	}
	return sb.String()
}
