// Tradeoff: the §6.1 study — error rate, power, and frequency (or
// performance) are tradeable quantities.
//
// For one chip running swim, this example prints (i) the per-subsystem
// PE-vs-f curves and the processor performance curve under plain timing
// speculation, (ii) the same after per-subsystem ASV/ABB reshaping (the
// performance peak moves right and up — the paper's Point A), and (iii) a
// slice of the Figure 9 power-error-frequency surface for the integer ALU.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/floorplan"
)

func main() {
	sim, err := core.NewSimulator(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	const (
		chipSeed = 3
		app      = "swim"
	)

	plain, err := sim.Figure8(chipSeed, app, false)
	if err != nil {
		log.Fatal(err)
	}
	reshaped, err := sim.Figure8(chipSeed, app, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s on chip %d ===\n\n", app, chipSeed)
	fmt.Printf("under TS:          performance peaks at fR = %.2f with PerfR = %.2f\n",
		plain.PeakF, plain.PeakPerf)
	fmt.Printf("under TS+ASV+ABB:  performance peaks at fR = %.2f with PerfR = %.2f\n",
		reshaped.PeakF, reshaped.PeakPerf)
	fmt.Printf("reshaping moved the peak %+.0f%% in frequency and %+.0f%% in performance\n\n",
		(reshaped.PeakF/plain.PeakF-1)*100, (reshaped.PeakPerf/plain.PeakPerf-1)*100)

	// Where does each kind of subsystem start to fail? (Figure 8(a): the
	// memory curves rise abruptly, the logic curves gradually.)
	fmt.Println("frequency at which each subsystem's error rate crosses 1e-6 (TS):")
	for _, ser := range plain.Subsystem {
		onset := 0.0
		for _, p := range ser.Points {
			if p.Y > 1e-6 {
				onset = p.FRel
				break
			}
		}
		if onset == 0 {
			fmt.Printf("  %-12s %-7s above the sweep range\n", ser.ID, ser.Kind)
			continue
		}
		fmt.Printf("  %-12s %-7s fR = %.2f\n", ser.ID, ser.Kind, onset)
	}

	// A Figure 9 slice: the IntALU's minimum achievable error rate as a
	// function of its power budget, at a fixed high frequency.
	surface, err := sim.Figure9(chipSeed, app)
	if err != nil {
		log.Fatal(err)
	}
	const fSlice = 1.1
	fmt.Printf("\n%v at fR = %.2f: error rate vs power budget (Figure 9 slice)\n",
		floorplan.IntALU, fSlice)
	for _, p := range surface {
		if p.FRel > fSlice-0.001 && p.FRel < fSlice+0.001 {
			fmt.Printf("  budget %.2f W -> min PE %.2g, processor PerfR %.2f\n",
				p.PowerW, p.PE, p.PerfR)
		}
	}
	fmt.Println("\npaying more power buys a lower error rate at the same frequency —")
	fmt.Println("or a higher frequency at the same error rate (Figure 9's lines 1 and 2).")
}
