// Adaptive: the Figure 6 timeline — what the controller system actually
// does at run time.
//
// This example walks one chip through a stream of execution intervals drawn
// from an application's phases. The Sherwood-style detector recognizes
// phase changes from basic-block vectors; new phases trigger the fuzzy
// controller (trained here on a separate chip, as the manufacturer would);
// recurring phases reuse their saved configuration; and hardware retuning
// cycles trim each configuration against the real sensors.
package main

import (
	"fmt"
	"log"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/phase"
	"repro/internal/workload"
)

func main() {
	sim, err := core.NewSimulator(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Field-side chip, and its manufacturer-side controller training: the
	// tester measures the chip's per-subsystem Vt0 and populates its fuzzy
	// controllers by running the Exhaustive algorithm on a software model
	// of this chip (§4.3.1).
	chip := sim.Chip(7)
	cpu, err := sim.BuildCore(chip, core.TSASVQFU)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultExperimentConfig()
	cfg.Training.Examples = 800
	fmt.Println("training this chip's fuzzy controllers (manufacturer-side, once per die)...")
	solver, err := adapt.TrainFuzzySolver([]*adapt.Core{cpu}, cfg.Training)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-> %d controllers ready (~%d KB of rules; §5 reports ~120 KB)\n\n",
		solver.ControllerCount(), solver.ControllerCount()*25*8*8/1024)
	app, err := workload.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}

	detector, err := phase.NewDetector(phase.DefaultThreshold)
	if err != nil {
		log.Fatal(err)
	}
	rng := mathx.NewRNG(99)

	// A synthetic execution: intervals visiting the app's phases with
	// recurrence, as SPEC codes do.
	var schedule []int
	for r := 0; r < 3; r++ {
		for p := range app.Phases {
			schedule = append(schedule, p)
		}
	}

	saved := adapt.NewPhaseTable(0) // the §4.3.3 phase table of saved configs
	timeMS := 0.0
	fmt.Println("t(ms)    interval             action")
	for _, phIdx := range schedule {
		ph := app.Phases[phIdx]
		bbv := phase.FromSignature(ph.Signature).Noisy(rng, 2)
		obs := detector.Observe(bbv)
		switch {
		case obs.New:
			prof, err := sim.Profile(app, ph)
			if err != nil {
				log.Fatal(err)
			}
			// ~20 us of counter measurement, 6 us of controller, <=10 us
			// transition (Figure 6), then retuning cycles.
			res, err := cpu.AdaptSteady(prof, solver)
			if err != nil {
				log.Fatal(err)
			}
			saved.Save(obs.PhaseID, res.Point, res.Outcome)
			fmt.Printf("%7.0f  phase %d (new)        measure %.0fus + controller %.0fus + transition %.0fus; "+
				"f=%.2fGHz q=%v fu=%v outcome=%v (%d retune steps)\n",
				timeMS, obs.PhaseID, phase.MeasureUS, phase.ControllerUS, phase.TransitionUS,
				res.Point.FCore*4, res.Point.Queue, res.Point.FU, res.Outcome, res.Steps)
		case obs.Changed:
			pt, _ := saved.Lookup(obs.PhaseID)
			fmt.Printf("%7.0f  phase %d (recurring)  reuse saved configuration: f=%.2fGHz q=%v fu=%v\n",
				timeMS, obs.PhaseID, pt.FCore*4, pt.Queue, pt.FU)
		default:
			fmt.Printf("%7.0f  phase %d (stable)     no action\n", timeMS, obs.PhaseID)
		}
		timeMS += phase.MeanPhaseLengthMS
	}

	fmt.Printf("\n%d distinct phases tracked; adaptation overhead per phase: %.4f%% of execution\n",
		detector.Phases(), phase.AdaptationOverheadFraction()*100)
	fmt.Printf("heat-sink sensor refresh: every %.1f s; retuning step: %.0f ms per violation probe\n",
		phase.THRefreshS, phase.RetuneStepMS)
}
