// Quickstart: build one variation-afflicted chip, see what parameter
// variation costs it, then let EVAL's high-dimensional dynamic adaptation
// win the frequency back — the paper's core story in ~80 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// The Figure 7 evaluation machine: a 4-core-CMP-style core at 45 nm,
	// nominal 4 GHz at 1 V, with the paper's variation parameters
	// (Vt sigma/mu = 9%, correlation range phi = 0.5).
	sim, err := core.NewSimulator(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Manufacture a chip. Every chip seed gives a different personalized
	// map of threshold-voltage and channel-length variation.
	const seed = 42
	chip := sim.Chip(seed)

	// Without any support, the chip must clock at its worst-case-safe
	// frequency: the slowest subsystem's error-free limit.
	fvar, err := sim.ChipFVar(chip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip %d worst-case-safe frequency: %.2f GHz (%.0f%% of nominal)\n",
		seed, fvar*4, fvar*100)

	// Pick a workload: swim, the memory-bound SPECfp code the paper uses
	// for its Figure 8 study.
	app, err := workload.ByName("swim")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		log.Fatal(err)
	}

	// Build the EVAL view of the chip under the paper's preferred
	// environment: timing speculation + per-subsystem ASV + issue-queue
	// resizing + FU replication.
	cpu, err := sim.BuildCore(chip, core.TSASVQFU)
	if err != nil {
		log.Fatal(err)
	}

	// Adapt: the controller chooses the core frequency, per-subsystem
	// supply voltages, the queue size, and the FU replica; hardware
	// retuning cycles then trim the frequency against the real sensors.
	res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nEVAL adapted operating point for %s:\n", app.Name)
	fmt.Printf("  frequency    %.2f GHz (%.0f%% of nominal, +%.0f%% over worst-case)\n",
		res.Point.FCore*4, res.Point.FCore*100, (res.Point.FCore/fvar-1)*100)
	fmt.Printf("  issue queue  %v\n", res.Point.Queue)
	fmt.Printf("  FU replica   %v\n", res.Point.FU)
	fmt.Printf("  error rate   %.2g errors/instruction (budget %.0g)\n",
		res.State.PE, cpu.Limits.PEMax)
	fmt.Printf("  power        %.1f W (cap %.0f W)\n", res.State.TotalW, cpu.Limits.PMaxW)
	fmt.Printf("  hottest spot %.1f C (cap %.0f C)\n",
		res.State.Core.MaxTK()-273.15, cpu.Limits.TMaxK-273.15)
	fmt.Printf("  outcome      %v after %d retuning steps\n", res.Outcome, res.Steps)

	fmt.Println("\nper-subsystem supplies chosen by the Power algorithm:")
	for i := range cpu.Subs {
		fmt.Printf("  %-12s %4.0f mV\n", cpu.Subs[i].Sub.ID, res.Point.VddV[i]*1000)
	}
}
