// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§5-6), plus ablations of the design choices called out in
// DESIGN.md. Expensive experiment benchmarks run at a laptop-scale budget
// (a few chips, an app subset); raise the constants below for paper-scale
// runs. Reproduced quantities are attached as benchmark metrics
// (ReportMetric) so `go test -bench` output doubles as the results table.
package repro_test

import (
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/floorplan"
	"repro/internal/fuzzy"
	"repro/internal/grid"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/retime"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/timeline"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

// Benchmark experiment scale. The paper uses 100 chips and 26 apps.
const (
	benchChips    = 2
	benchSeed     = 1000
	benchExamples = 500
	benchTraceLen = 20000
)

var benchApps = []string{"gcc", "crafty", "mcf", "swim", "sixtrack", "art"}

func newBenchSim(b *testing.B) *core.Simulator {
	b.Helper()
	opts := core.DefaultOptions()
	opts.TraceLen = benchTraceLen
	sim, err := core.NewSimulator(opts)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

func benchConfig() core.ExperimentConfig {
	cfg := core.DefaultExperimentConfig()
	cfg.Chips = benchChips
	cfg.SeedBase = benchSeed
	cfg.TrainChips = 1
	cfg.Apps = benchApps
	cfg.Training.Examples = benchExamples
	return cfg
}

// BenchmarkFig1_PathDelayAndErrorCurves regenerates Figure 1: the dynamic
// path-delay distributions without/with variation and the stage/pipeline
// error-rate curves.
func BenchmarkFig1_PathDelayAndErrorCurves(b *testing.B) {
	sim := newBenchSim(b)
	var fvarGap float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure1(3)
		if err != nil {
			b.Fatal(err)
		}
		// The headline of Figure 1: variation forces a longer period.
		edge := func(pts []core.CurvePoint) float64 {
			e := 0.0
			for _, p := range pts {
				if p.Y > 1e-3 && p.FRel > e {
					e = p.FRel
				}
			}
			return e
		}
		fvarGap = edge(res.DelayVar) - edge(res.DelayNoVar)
	}
	b.ReportMetric(fvarGap, "Tvar-Tnom_periods")
}

// BenchmarkFig2_MitigationTaxonomy regenerates Figure 2: the Perf(f) peak
// under timing speculation and the tilt/shift/reshape before/after curves.
func BenchmarkFig2_MitigationTaxonomy(b *testing.B) {
	sim := newBenchSim(b)
	var peakF float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure2(3, "gcc")
		if err != nil {
			b.Fatal(err)
		}
		peak := 0
		for j, p := range res.Perf {
			if p.Y > res.Perf[peak].Y {
				peak = j
			}
		}
		peakF = res.Perf[peak].FRel
	}
	b.ReportMetric(peakF, "fopt_rel")
}

// BenchmarkFig4_FUDecision exercises the Figure 4 replica-enable logic.
func BenchmarkFig4_FUDecision(b *testing.B) {
	sim := newBenchSim(b)
	app, err := workload.ByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASVQFU)
	if err != nil {
		b.Fatal(err)
	}
	var fuIdx int
	for i := range cpu.Subs {
		if cpu.Subs[i].Sub.ID == floorplan.IntALU {
			fuIdx = i
		}
	}
	th := 60 + 273.15
	b.ResetTimer()
	var gain float64
	for i := 0; i < b.N; i++ {
		fN := cpu.FreqSolve(fuIdx, cpu.QueryFor(fuIdx, prof, th, tech.QueueFull, tech.FUNormal)).FMax
		fL := cpu.FreqSolve(fuIdx, cpu.QueryFor(fuIdx, prof, th, tech.QueueFull, tech.FULowSlope)).FMax
		gain = fL - fN
	}
	b.ReportMetric(gain, "lowslope_fmax_gain")
}

// BenchmarkFig6_Timeline measures one full phase-boundary adaptation: the
// controller invocation plus retuning cycles of Figure 6.
func BenchmarkFig6_Timeline(b *testing.B) {
	sim := newBenchSim(b)
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASVQFU)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps float64
	for i := 0; i < b.N; i++ {
		res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
		if err != nil {
			b.Fatal(err)
		}
		steps = float64(res.Steps)
	}
	b.ReportMetric(steps, "retune_steps")
}

// BenchmarkFig8_SwimCurves regenerates the Figure 8 study: swim's
// per-subsystem error curves and performance curve, without and with
// per-subsystem ASV/ABB reshaping.
func BenchmarkFig8_SwimCurves(b *testing.B) {
	sim := newBenchSim(b)
	var plainPeak, reshapedPeak float64
	for i := 0; i < b.N; i++ {
		plain, err := sim.Figure8(3, "swim", false)
		if err != nil {
			b.Fatal(err)
		}
		reshaped, err := sim.Figure8(3, "swim", true)
		if err != nil {
			b.Fatal(err)
		}
		plainPeak, reshapedPeak = plain.PeakPerf, reshaped.PeakPerf
	}
	// Paper: TS peak PerfR ~0.92 at fR~0.91; reshaped peak ~1.00 at ~1.03.
	b.ReportMetric(plainPeak, "ts_peak_perfR")
	b.ReportMetric(reshapedPeak, "reshaped_peak_perfR")
}

// BenchmarkFig9_TradeoffSurface regenerates the Figure 9 power x error x
// frequency surface for the integer ALU.
func BenchmarkFig9_TradeoffSurface(b *testing.B) {
	sim := newBenchSim(b)
	var points float64
	for i := 0; i < b.N; i++ {
		pts, err := sim.Figure9(3, "swim")
		if err != nil {
			b.Fatal(err)
		}
		points = float64(len(pts))
	}
	b.ReportMetric(points, "surface_points")
}

// runSummaryOnce executes the Figures 10-12 experiment at bench scale.
func runSummaryOnce(b *testing.B, modes []core.Mode) *core.Summary {
	b.Helper()
	sim := newBenchSim(b)
	cfg := benchConfig()
	cfg.Modes = modes
	sum, err := sim.RunSummary(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sum
}

// BenchmarkFig10_RelativeFrequency regenerates Figure 10: the frequency of
// every environment and adaptation mode relative to NoVar. Paper anchors:
// Baseline 0.78; TS+ASV+Q+FU Fuzzy-Dyn 1.21 (=1.56x Baseline).
func BenchmarkFig10_RelativeFrequency(b *testing.B) {
	var sum *core.Summary
	for i := 0; i < b.N; i++ {
		sum = runSummaryOnce(b, []core.Mode{core.Static, core.FuzzyDyn, core.ExhDyn})
	}
	b.ReportMetric(sum.BaselineFRel, "baseline_frel")
	if c, err := sum.CellFor(core.TSASVQFU, core.FuzzyDyn); err == nil {
		b.ReportMetric(c.FRel, "preferred_fuzzy_frel")
		b.ReportMetric(c.FRel/sum.BaselineFRel, "gain_over_baseline")
	}
	if c, err := sum.CellFor(core.All, core.ExhDyn); err == nil {
		b.ReportMetric(c.FRel, "all_exh_frel")
	}
}

// runSummaryCached runs the Figures 10-12 experiment against a persistent
// artifact store rooted at dir and reports the run's cache-hit count.
func runSummaryCached(b *testing.B, dir string, modes []core.Mode) (*core.Summary, int64) {
	b.Helper()
	sim := newBenchSim(b)
	reg := obs.NewRegistry()
	store, err := artifact.Open(dir, artifact.Options{Obs: reg})
	if err != nil {
		b.Fatal(err)
	}
	sim.SetArtifacts(store)
	cfg := benchConfig()
	cfg.Modes = modes
	sum, err := sim.RunSummary(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Close inside the timed region: the cold benchmark must pay for its
	// queued cache writes, and the warm run's fresh store only sees them
	// once they are flushed.
	store.Close()
	return sum, reg.Counter("artifact.cache.hits").Value()
}

// BenchmarkFig10_ArtifactCache measures the incremental-runtime win of the
// persistent artifact store on the Figure 10 experiment: cold populates an
// empty cache from scratch, warm reloads chips, phase profiles, and trained
// fuzzy solvers from a populated one. The cold/warm ns/op ratio is the
// figure-path speedup; the outputs are byte-identical either way (enforced
// by TestArtifactCacheColdWarmGolden in internal/core).
func BenchmarkFig10_ArtifactCache(b *testing.B) {
	modes := []core.Mode{core.Static, core.FuzzyDyn, core.ExhDyn}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "artifact-bench")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			runSummaryCached(b, dir, modes)
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		runSummaryCached(b, dir, modes) // populate
		var hits int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, hits = runSummaryCached(b, dir, modes)
		}
		b.ReportMetric(float64(hits), "cache_hits")
	})
}

// BenchmarkFig11_RelativePerformance regenerates Figure 11. Paper anchors:
// preferred environment 1.14x NoVar = 1.40x Baseline.
func BenchmarkFig11_RelativePerformance(b *testing.B) {
	var sum *core.Summary
	for i := 0; i < b.N; i++ {
		sum = runSummaryOnce(b, []core.Mode{core.Static, core.FuzzyDyn, core.ExhDyn})
	}
	b.ReportMetric(sum.BaselinePerfR, "baseline_perfR")
	if c, err := sum.CellFor(core.TSASVQFU, core.FuzzyDyn); err == nil {
		b.ReportMetric(c.PerfR, "preferred_fuzzy_perfR")
		b.ReportMetric(c.PerfR/sum.BaselinePerfR, "gain_over_baseline")
	}
}

// BenchmarkFig12_Power regenerates Figure 12. Paper anchors: NoVar ~25 W,
// Baseline ~17 W, preferred Fuzzy-Dyn ~30 W (pinned at PMAX).
func BenchmarkFig12_Power(b *testing.B) {
	var sum *core.Summary
	for i := 0; i < b.N; i++ {
		sum = runSummaryOnce(b, []core.Mode{core.Static, core.FuzzyDyn, core.ExhDyn})
	}
	b.ReportMetric(sum.NoVarPowerW, "novar_W")
	b.ReportMetric(sum.BaselinePowerW, "baseline_W")
	if c, err := sum.CellFor(core.TSASVQFU, core.FuzzyDyn); err == nil {
		b.ReportMetric(c.PowerW, "preferred_fuzzy_W")
	}
}

// BenchmarkFig13_ControllerOutcomes regenerates Figure 13: the outcome mix
// of the fuzzy controller system across the 16-configuration grid, at the
// serial and 8-worker settings of the (config × chip) work queue. Paper
// anchor: NoChange+LowFreq account for >=50% in every bar.
func BenchmarkFig13_ControllerOutcomes(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sim := newBenchSim(b)
			cfg := benchConfig()
			cfg.Chips = 1
			cfg.Apps = []string{"gcc", "swim"}
			cfg.Workers = workers
			var minGood float64
			for i := 0; i < b.N; i++ {
				cells, err := sim.RunOutcomes(cfg)
				if err != nil {
					b.Fatal(err)
				}
				minGood = 1.0
				for _, c := range cells {
					good := c.Fractions[adapt.OutcomeNoChange] + c.Fractions[adapt.OutcomeLowFreq]
					if good < minGood {
						minGood = good
					}
				}
			}
			b.ReportMetric(minGood, "min_nochange+lowfreq_frac")
		})
	}
}

// BenchmarkTrainFuzzySolver measures the §4.3.1 manufacturer-side training
// of one chip's full controller set — the wall-clock-dominant step of every
// experiment at paper scale — serially and fanned across 8 workers. The
// PE-fmax tables are warmed before timing so both settings measure example
// labeling and gradient-descent fits, not table construction; trained
// controllers are byte-identical across settings.
func BenchmarkTrainFuzzySolver(b *testing.B) {
	sim := newBenchSim(b)
	cpu, err := sim.BuildCore(sim.Chip(benchSeed), core.TSASVQFU)
	if err != nil {
		b.Fatal(err)
	}
	opts := adapt.DefaultTrainOptions()
	opts.Examples = benchExamples
	opts.Seed = benchSeed
	warm := opts
	warm.Examples = warm.Fuzzy.Rules
	if _, err := adapt.TrainFuzzySolver([]*adapt.Core{cpu}, warm); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := opts
			o.Workers = workers
			b.ResetTimer()
			var controllers int
			for i := 0; i < b.N; i++ {
				s, err := adapt.TrainFuzzySolver([]*adapt.Core{cpu}, o)
				if err != nil {
					b.Fatal(err)
				}
				controllers = s.ControllerCount()
			}
			b.ReportMetric(float64(controllers), "controllers")
		})
	}
}

// BenchmarkTable2_FuzzyAccuracy regenerates Table 2: the mean difference
// between the fuzzy controllers' selections and Exhaustive. Paper anchors:
// frequency errors ~3-11% of nominal, Vdd errors ~1.4-2.4%.
func BenchmarkTable2_FuzzyAccuracy(b *testing.B) {
	sim := newBenchSim(b)
	cfg := benchConfig()
	cfg.Chips = 1
	var freqPct, vddPct float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var fSum, vSum float64
		var fN, vN int
		for _, r := range rows {
			for _, v := range r.PctErr {
				if r.Param == "Freq (MHz)" {
					fSum += v
					fN++
				} else if r.Param == "Vdd (mV)" {
					vSum += v
					vN++
				}
			}
		}
		freqPct = fSum / float64(fN)
		vddPct = vSum / float64(vN)
	}
	b.ReportMetric(freqPct, "freq_err_pct")
	b.ReportMetric(vddPct, "vdd_err_pct")
}

// --- Ablations of the design choices DESIGN.md calls out. ---

// BenchmarkAblation_Phi sweeps the spatial-correlation range: shorter
// ranges decorrelate neighboring subsystems and change the worst-case-safe
// frequency spread across chips.
func BenchmarkAblation_Phi(b *testing.B) {
	var spread [3]float64
	phis := []float64{0.1, 0.5, 0.9}
	for i := 0; i < b.N; i++ {
		for pi, phi := range phis {
			opts := core.DefaultOptions()
			opts.Varius.Phi = phi
			sim, err := core.NewSimulator(opts)
			if err != nil {
				b.Fatal(err)
			}
			var fvars []float64
			for seed := int64(0); seed < 8; seed++ {
				fv, err := sim.ChipFVar(sim.Chip(seed))
				if err != nil {
					b.Fatal(err)
				}
				fvars = append(fvars, fv)
			}
			spread[pi] = mathx.StdDev(fvars)
		}
	}
	b.ReportMetric(spread[0], "fvar_sd_phi0.1")
	b.ReportMetric(spread[1], "fvar_sd_phi0.5")
	b.ReportMetric(spread[2], "fvar_sd_phi0.9")
}

// BenchmarkAblation_SigmaSplit varies how much of the Vt variance is
// systematic vs random.
func BenchmarkAblation_SigmaSplit(b *testing.B) {
	splits := []float64{0.2, 0.5, 0.8}
	var means [3]float64
	for i := 0; i < b.N; i++ {
		for si, frac := range splits {
			opts := core.DefaultOptions()
			opts.Varius.SysFraction = frac
			sim, err := core.NewSimulator(opts)
			if err != nil {
				b.Fatal(err)
			}
			var fvars []float64
			for seed := int64(0); seed < 8; seed++ {
				fv, err := sim.ChipFVar(sim.Chip(seed))
				if err != nil {
					b.Fatal(err)
				}
				fvars = append(fvars, fv)
			}
			means[si] = mathx.Mean(fvars)
		}
	}
	b.ReportMetric(means[0], "fvar_sys20")
	b.ReportMetric(means[1], "fvar_sys50")
	b.ReportMetric(means[2], "fvar_sys80")
}

// BenchmarkAblation_FuzzyRules sweeps the number of fuzzy rules, the
// accuracy-vs-footprint tradeoff behind the paper's choice of 25.
func BenchmarkAblation_FuzzyRules(b *testing.B) {
	gen := func(n int, seed int64) []fuzzy.Example {
		rng := mathx.NewRNG(seed)
		out := make([]fuzzy.Example, n)
		for i := range out {
			x := []float64{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}
			out[i] = fuzzy.Example{X: x, Y: 0.5 + 0.3*x[0] - 0.25*x[1]*x[1] + 0.15*math.Sin(3*x[2])}
		}
		return out
	}
	train := gen(4000, 1)
	test := gen(500, 2)
	rules := []int{5, 25, 100}
	var maes [3]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ri, r := range rules {
			cfg := fuzzy.DefaultTrainConfig()
			cfg.Rules = r
			c, err := fuzzy.Train(train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			mae, err := c.MAE(test)
			if err != nil {
				b.Fatal(err)
			}
			maes[ri] = mae
		}
	}
	b.ReportMetric(maes[0], "mae_5rules")
	b.ReportMetric(maes[1], "mae_25rules")
	b.ReportMetric(maes[2], "mae_100rules")
}

// BenchmarkAblation_Retuning compares the frequency the controller proposal
// alone achieves with what retuning cycles add — the mechanism that makes
// fuzzy control safe (§6.3).
func BenchmarkAblation_Retuning(b *testing.B) {
	sim := newBenchSim(b)
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASV)
	if err != nil {
		b.Fatal(err)
	}
	th := 62 + 273.15
	var before, after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prop, err := cpu.Propose(prof, th, adapt.Exhaustive{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := cpu.Retune(prop.Point, prof)
		if err != nil {
			b.Fatal(err)
		}
		before, after = prop.Point.FCore, res.Point.FCore
	}
	b.ReportMetric(before, "frel_proposed")
	b.ReportMetric(after, "frel_retuned")
}

// BenchmarkAblation_Domains compares a single chip-wide ASV domain with the
// paper's per-subsystem domains.
func BenchmarkAblation_Domains(b *testing.B) {
	sim := newBenchSim(b)
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASV)
	if err != nil {
		b.Fatal(err)
	}
	th := 62 + 273.15
	var single, multi float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single = sim.SingleDomainFMax(cpu, prof, th)
		multi = math.Inf(1)
		for s := 0; s < cpu.N(); s++ {
			q := cpu.QueryFor(s, prof, th, tech.QueueFull, tech.FUNormal)
			if f := cpu.FreqSolve(s, q).FMax; f < multi {
				multi = f
			}
		}
	}
	b.ReportMetric(single, "frel_1domain")
	b.ReportMetric(multi, "frel_15domains")
}

// BenchmarkAblation_PEMax sweeps the error budget: §4.1 claims the f range
// between PE=1e-4 and PE=1e-1 is minuscule (2-3%) because the curves are so
// steep.
func BenchmarkAblation_PEMax(b *testing.B) {
	vp := varius.DefaultParams()
	gen, err := varius.NewGenerator(vp)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		b.Fatal(err)
	}
	chip := gen.Chip(3)
	sub, err := fp.ByID(floorplan.Dcache)
	if err != nil {
		b.Fatal(err)
	}
	stage, err := vats.NewStage(*sub, chip, vp)
	if err != nil {
		b.Fatal(err)
	}
	cond := vats.Cond{VddV: 1.0, TK: vp.TOpRefK}
	var span float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv := stage.Eval(cond, vats.IdentityVariant())
		f4 := cv.FMaxForPE(1e-4)
		f1 := cv.FMaxForPE(1e-1)
		span = (f1 - f4) / f4
	}
	// Paper: 2-3%.
	b.ReportMetric(span*100, "pe_1e-4_to_1e-1_span_pct")
}

// BenchmarkCorePipeline measures the raw trace simulator, the substrate
// every profile is built on.
func BenchmarkCorePipeline(b *testing.B) {
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	trace := pipeline.GenerateTrace(app.Phases[0].Mix, 50000, mathx.NewRNG(1))
	cfg := pipeline.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Simulate(trace, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(trace)))
}

// BenchmarkCorePipelineReference measures the original array-of-structs
// kernel, the warm-path pair of BenchmarkCorePipeline: the ratio between
// the two is the SoA rewrite's speedup.
func BenchmarkCorePipelineReference(b *testing.B) {
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	trace := pipeline.GenerateTrace(app.Phases[0].Mix, 50000, mathx.NewRNG(1))
	cfg := pipeline.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.SimulateReference(trace, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(trace)))
}

// BenchmarkCoreSteady measures the thermal fixed point the adaptation
// engine solves at every evaluated operating point, in the two solver
// modes: warm (accelerated, scratch and starting temperatures reused
// across solves, as Evaluate runs it) and reference (the undamped
// original loop behind DisableAcceleration).
func BenchmarkCoreSteady(b *testing.B) {
	vp := varius.DefaultParams()
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		b.Fatal(err)
	}
	pw, err := power.NewModel(fp, vp, power.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	m, err := thermal.NewModel(fp, vp, pw, thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]thermal.SubsystemInput, fp.N())
	for i, sub := range fp.Subsystems {
		ins[i] = thermal.SubsystemInput{
			Index:  i,
			Vt0Eff: vp.VtMeanV,
			AlphaF: sub.TypicalAlpha,
			VddV:   vp.VddNomV,
			FRel:   1.0,
		}
	}
	for _, mode := range []struct {
		name      string
		reference bool
	}{{"warm", false}, {"reference", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sv := thermal.NewSolver(m)
			sv.DisableAcceleration = mode.reference
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate the operating point slightly so the warm path
				// re-solves (instead of converging instantly) the way
				// adjacent phase evaluations do.
				fRel := 1.0 + 0.02*float64(i%2)
				for j := range ins {
					ins[j].FRel = fRel
				}
				if _, err := sv.CoreSteady(ins, fRel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChipGeneration measures variation-map synthesis (the per-chip
// Cholesky-correlated field sampling).
func BenchmarkChipGeneration(b *testing.B) {
	gen, err := varius.NewGenerator(varius.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Chip(int64(i))
	}
}

// BenchmarkFieldGeneratorSetup measures the one-time correlation-matrix
// factorization.
func BenchmarkFieldGeneratorSetup(b *testing.B) {
	g, err := grid.New(16, 16, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := grid.NewFieldGenerator(g, grid.Spherical(0.5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFreqSolve measures one per-subsystem Freq-algorithm solve, the
// inner loop of every adaptation.
func BenchmarkFreqSolve(b *testing.B) {
	sim := newBenchSim(b)
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASV)
	if err != nil {
		b.Fatal(err)
	}
	q := cpu.QueryFor(0, prof, 62+273.15, tech.QueueFull, tech.FUNormal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cpu.FreqSolve(0, q)
	}
}

// BenchmarkFreqSolveCold measures the full pruned grid scan with the solve
// memo defeated (every iteration queries a fresh heat-sink temperature),
// isolating the dense-PE-table and bound-pruning win from cross-phase
// memoization.
func BenchmarkFreqSolveCold(b *testing.B) {
	sim := newBenchSim(b)
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASV)
	if err != nil {
		b.Fatal(err)
	}
	cpu.FreqSolve(0, cpu.QueryFor(0, prof, 62+273.15, tech.QueueFull, tech.FUNormal))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := cpu.QueryFor(0, prof, 62+273.15+float64(i)*1e-6,
			tech.QueueFull, tech.FUNormal)
		_ = cpu.FreqSolve(0, q)
	}
}

// BenchmarkPEFMaxBatch measures the error-budget inversion at the heart
// of every dense PE-table column build, in its two forms: the shared
// dyadic bisection over the whole ascending budget grid (what the slab
// builder uses) and the equivalent independent per-budget bisections.
func BenchmarkPEFMaxBatch(b *testing.B) {
	vp := varius.DefaultParams()
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := varius.NewGenerator(vp)
	if err != nil {
		b.Fatal(err)
	}
	stage, err := vats.NewStage(fp.Subsystems[0], gen.Chip(5), vp)
	if err != nil {
		b.Fatal(err)
	}
	cv := stage.Eval(vats.Cond{VddV: vp.VddNomV, TK: 65 + 273.15}, vats.IdentityVariant())
	budgets := []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
	out := make([]float64, len(budgets))
	b.Run("set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cv.FMaxForPESet(budgets, out)
		}
	})
	b.Run("per_budget", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, bud := range budgets {
				out[j] = cv.FMaxForPE(bud)
			}
		}
	})
}

// BenchmarkThermalSolveBatch measures one whole-actuation-grid thermal
// sweep (every Vdd × Vbb level) through Solver.SolveBatch: warm chains
// each point off its grid neighbor's converged state; reference retraces
// the exact cold-start Model.CoreSteady at every point.
func BenchmarkThermalSolveBatch(b *testing.B) {
	vp := varius.DefaultParams()
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		b.Fatal(err)
	}
	pw, err := power.NewModel(fp, vp, power.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	m, err := thermal.NewModel(fp, vp, pw, thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	base := make([]thermal.SubsystemInput, fp.N())
	for i, sub := range fp.Subsystems {
		base[i] = thermal.SubsystemInput{
			Index:  i,
			Vt0Eff: vp.VtMeanV,
			AlphaF: sub.TypicalAlpha,
			FRel:   1.0,
		}
	}
	cfgT := tech.Config{TimingSpec: true, ASV: true, ABB: true}
	var pts []thermal.BatchPoint
	for _, vdd := range cfgT.VddLevels(vp.VddNomV) {
		for _, vbb := range cfgT.VbbLevels() {
			ins := make([]thermal.SubsystemInput, len(base))
			for j, in := range base {
				in.VddV = vdd
				in.VbbV = vbb
				ins[j] = in
			}
			pts = append(pts, thermal.BatchPoint{Ins: ins, FRel: 1.0})
		}
	}
	for _, mode := range []struct {
		name      string
		reference bool
	}{{"warm", false}, {"reference", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sv := thermal.NewSolver(m)
			sv.DisableAcceleration = mode.reference
			b.ReportAllocs()
			b.ResetTimer()
			solved := 0
			for i := 0; i < b.N; i++ {
				solved = 0
				// The hottest grid corners legitimately run away (the
				// adaptation layer never picks them); a batch reports
				// that per point rather than failing the sweep.
				for _, r := range sv.SolveBatch(pts) {
					if r.Err == nil {
						solved++
					}
				}
			}
			if solved == 0 {
				b.Fatal("no grid point converged")
			}
			b.ReportMetric(float64(solved), "solved/op")
		})
	}
}

// BenchmarkFuzzyPredict measures one deployed fuzzy-controller query — the
// operation the paper budgets ~6 us of controller time around.
func BenchmarkFuzzyPredict(b *testing.B) {
	rng := mathx.NewRNG(1)
	ex := make([]fuzzy.Example, 2000)
	for i := range ex {
		x := []float64{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1),
			rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}
		ex[i] = fuzzy.Example{X: x, Y: x[0] + x[5]}
	}
	c, err := fuzzy.Train(ex, fuzzy.DefaultTrainConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.2, 0.4, 0.6, 0.8, 0.5, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetimeBaseline reproduces the §7 comparison: dynamic retiming
// (ReCycle-style slack redistribution) gains 10-20% over worst-case
// clocking, versus EVAL's ~50%.
func BenchmarkRetimeBaseline(b *testing.B) {
	vp := varius.DefaultParams()
	gen, err := varius.NewGenerator(vp)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		var gains []float64
		for seed := int64(0); seed < 6; seed++ {
			res, err := retime.Retime(fp, gen.Chip(seed), vp, retime.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			gains = append(gains, res.Gain())
		}
		gain = mathx.Mean(gains)
	}
	b.ReportMetric(gain, "retime_gain")
}

// BenchmarkCheckerSchemes compares the §3.1 error-tolerance architectures
// under the same EVAL adaptation.
func BenchmarkCheckerSchemes(b *testing.B) {
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	var fDiva, fRazor float64
	for i := 0; i < b.N; i++ {
		for _, scheme := range checker.Schemes() {
			chk, err := checker.ForScheme(scheme)
			if err != nil {
				b.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.TraceLen = benchTraceLen
			opts.Checker = chk
			sim, err := core.NewSimulator(opts)
			if err != nil {
				b.Fatal(err)
			}
			prof, err := sim.Profile(app, app.Phases[0])
			if err != nil {
				b.Fatal(err)
			}
			cpu, err := sim.BuildCore(sim.Chip(3), core.TSASV)
			if err != nil {
				b.Fatal(err)
			}
			res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
			if err != nil {
				b.Fatal(err)
			}
			switch scheme {
			case checker.SchemeDiva:
				fDiva = res.Point.FCore
			case checker.SchemeRazor:
				fRazor = res.Point.FCore
			}
		}
	}
	b.ReportMetric(fDiva, "frel_diva")
	b.ReportMetric(fRazor, "frel_razor")
}

// BenchmarkTimeline measures the Figure 6 controller-system simulation and
// reports the adaptation overhead it accounts.
func BenchmarkTimeline(b *testing.B) {
	sim := newBenchSim(b)
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASV)
	if err != nil {
		b.Fatal(err)
	}
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	var overhead, stable float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sum, err := timeline.Run(sim, cpu, app, adapt.Exhaustive{}, timeline.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		overhead = sum.OverheadFrac
		stable = sum.StablePhaseFrac
	}
	b.ReportMetric(overhead*100, "overhead_pct")
	b.ReportMetric(stable*100, "stable_phase_pct")
}

// BenchmarkFleet measures the discrete-event simulation service end to
// end: a fixed chip population, closed-loop SubmitBatch calls (one batch
// in flight at a time, so scheduling latency is honest queue-free
// dispatch cost), exhaustive-adaptation run events cycling over the
// population's (chip, phase) units. Warm replays every unit from a
// populated artifact store — the steady state of a long-running service;
// cold has no store, so every batch pays its distinct solves. Throughput
// (events/s) and the p50/p99 dispatch→pickup latency are attached as
// metrics; the warm/workers=1 variant is pinned by `make
// bench-check-fleet` (>= 10k events/s, p99 < 10 ms).
func BenchmarkFleet(b *testing.B) {
	const (
		fleetChips  = 4
		fleetPhases = 3
		batchEvents = 50
	)
	env := core.TSASV.String()
	mkBatch := func(at int64, n int) []fleet.Event {
		events := make([]fleet.Event, n)
		for i := range events {
			ph := i % fleetPhases
			events[i] = fleet.Event{
				At: at, Kind: fleet.KindRun, Chip: int64(i % fleetChips),
				Env: env, Mode: fleet.ModeExh, App: "gcc", Phase: &ph,
			}
		}
		return events
	}
	for _, cached := range []bool{true, false} {
		name := "warm"
		if !cached {
			name = "cold"
		}
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				sim := newBenchSim(b)
				if cached {
					store, err := artifact.Open(b.TempDir(), artifact.Options{})
					if err != nil {
						b.Fatal(err)
					}
					defer store.Close()
					sim.SetArtifacts(store)
				}
				fl, err := fleet.New(sim, fleet.Config{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				defer fl.Close()
				// Untimed setup: join the population and touch every (chip,
				// phase) unit once, building the chip handles (and, when
				// cached, populating the store) outside the timed loop.
				joins := make([]fleet.Event, fleetChips)
				for c := range joins {
					joins[c] = fleet.Event{Kind: fleet.KindJoin, Chip: int64(c)}
				}
				if err := fl.SubmitBatch(joins, nil); err != nil {
					b.Fatal(err)
				}
				if err := fl.SubmitBatch(mkBatch(0, fleetChips*fleetPhases), nil); err != nil {
					b.Fatal(err)
				}
				var sched obs.Histogram
				var emitErr string
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					err := fl.SubmitBatch(mkBatch(int64(i+1), batchEvents), func(r fleet.Result) {
						if r.Status != fleet.StatusOK && emitErr == "" {
							emitErr = r.Err
						}
						sched.Observe(time.Duration(r.SchedMs * float64(time.Millisecond)))
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if emitErr != "" {
					b.Fatal(emitErr)
				}
				b.ReportMetric(float64(b.N*batchEvents)/b.Elapsed().Seconds(), "events/s")
				b.ReportMetric(float64(sched.Quantile(0.50))/1e6, "sched_p50_ms")
				b.ReportMetric(float64(sched.Quantile(0.99))/1e6, "sched_p99_ms")
			})
		}
	}
}
