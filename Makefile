.PHONY: check build test vet fmt bench bench-json

# Tier-1 gate: everything must pass before a commit lands.
check: vet build test

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

fmt:
	gofmt -l .

# Headline benchmarks (one per table/figure, plus the obs overhead pair).
bench:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Adaptation-engine benchmark trajectory: runs the solver/chip/pipeline
# microbenchmarks plus the Figure 10 end-to-end reproduction and records
# ns/op, B/op, allocs/op per commit in BENCH_adapt.json.
bench-json:
	go run ./tools/benchjson -out BENCH_adapt.json
