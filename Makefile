.PHONY: check build test vet fmt bench bench-json bench-smoke bench-check-warm bench-check-cold bench-check-fleet fleetload-smoke cache-clean spec-check doc-check fuzz-smoke

# Tier-1 gate: everything must pass before a commit lands.
check: vet build test

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

fmt:
	gofmt -l .

# Headline benchmarks (one per table/figure, plus the obs overhead pair).
bench:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Adaptation-engine benchmark trajectory: runs the solver/chip/pipeline
# microbenchmarks plus the end-to-end experiments (Figure 10, and the
# serial-vs-parallel training and Figure 13 pairs), drives a live
# evalserve with cmd/fleetload for honest served events/s and p99, and
# records everything per commit in BENCH_adapt.json. Refuses a dirty
# tree (pass -allow-dirty via `go run ./tools/benchjson` directly to
# override; such a run must not be checked in as a baseline).
bench-json:
	go run ./tools/benchjson -out BENCH_adapt.json

# One-iteration run of the serial-vs-parallel training benchmark: cheap
# enough for CI, and catches regressions that only break the parallel
# training path (the unit tests cover determinism; this covers "it runs").
bench-smoke:
	go test -run '^$$' -bench TrainFuzzy -benchtime 1x .

# Warm-path regression gate: re-runs the warm Figure 10 benchmark once and
# fails if it regressed more than 20% against the checked-in trajectory
# (normalized by the reference pipeline kernel to cancel machine speed).
bench-check-warm:
	go run ./tools/benchjson -check-warm BENCH_adapt.json

# Cold-path regression gate: the same normalized 20% check against the
# empty-cache Figure 10 benchmark — the end-to-end build path the batched
# PE tables, slab builds, and async artifact flusher optimize.
bench-check-cold:
	go run ./tools/benchjson -check-cold BENCH_adapt.json

# Fleet-service gate: the warm single-core serving benchmark must stay
# within the normalized 20% of the checked-in trajectory AND meet the
# absolute service floors (>= 10k warm-cache events/s, scheduling p99
# under 10 ms).
bench-check-fleet:
	go run ./tools/benchjson -check-fleet BENCH_adapt.json

# Driven-server smoke: start evalserve, drive it closed-loop with
# cmd/fleetload, and assert the service floors (>= 10k events/s, sched
# p99 under 10 ms) from the live /v1/stats snapshot.
fleetload-smoke:
	go build -o /tmp/evalserve ./cmd/evalserve
	go build -o /tmp/fleetload ./cmd/fleetload
	@/tmp/evalserve -addr 127.0.0.1:18098 -no-cache -tracelen 8000 & \
	server=$$!; \
	for i in $$(seq 1 50); do \
	  curl -sf http://127.0.0.1:18098/healthz >/dev/null && break; sleep 0.2; \
	done; \
	/tmp/fleetload -url http://127.0.0.1:18098 -conns 4 -duration 3s \
	  -chips 8 -batch 50 -min-events-per-sec 10000 -max-sched-p99-ms 10; \
	rc=$$?; kill -TERM $$server; wait $$server; exit $$rc

# Short coverage-guided runs of the native fuzz targets: the SoA pipeline
# kernel against its array-of-structs reference, and the pruned Freq
# solver against the exhaustive scan. The checked-in seed corpora under
# testdata/fuzz/ already run as part of `make test`; this explores beyond
# them for a bounded budget.
fuzz-smoke:
	go test ./internal/pipeline -run '^$$' -fuzz FuzzSimulateVsReference -fuzztime 20s
	go test ./internal/adapt -run '^$$' -fuzz FuzzFreqSolvePrunedVsUnpruned -fuzztime 20s

# Validate the checked-in example workload specs: each must decode,
# lower, and (for traces) replay byte-identically (see WORKLOADS.md).
spec-check:
	go run ./cmd/tracegen -validate examples/specs/*.json

# Verify every local markdown link in the reference docs points at a
# file that exists, so the docs cannot drift ahead of the tree.
doc-check:
	go run ./tools/doccheck README.md WORKLOADS.md EXPERIMENTS.md ROADMAP.md

# Remove the persistent artifact cache (the CI default directory, or
# whatever EVAL_CACHE_DIR points at). Safe: everything in it is derived
# and rebuilt on demand.
cache-clean:
	rm -rf "$${EVAL_CACHE_DIR:-.artifact-cache}"
