.PHONY: check build test vet fmt bench

# Tier-1 gate: everything must pass before a commit lands.
check: vet build test

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

fmt:
	gofmt -l .

# Headline benchmarks (one per table/figure, plus the obs overhead pair).
bench:
	go test -run '^$$' -bench . -benchtime 1x ./...
