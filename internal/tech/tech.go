// Package tech defines the error-mitigation techniques of §3.3 and the
// actuation ranges of Figure 7(a): fine-grain ASV and ABB domains, the
// replicated Normal/LowSlope functional units (a Tilt technique), and the
// resizable issue queues (a Shift technique), plus the discrete level grids
// the adaptation layer searches over.
package tech

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/vats"
)

// Figure 7(a) actuation ranges.
const (
	// FRelMin/FRelMax/FRelStep define the frequency grid relative to the
	// 4 GHz nominal: "from 2.4 GHz to over 4 GHz in 100 MHz steps".
	FRelMin  = 0.6   // 2.4 GHz
	FRelMax  = 1.4   // 5.6 GHz
	FRelStep = 0.025 // 100 MHz
	// VddMinV..VddMaxV in VddStepV steps: 800..1200 mV, 50 mV.
	VddMinV  = 0.80
	VddMaxV  = 1.20
	VddStepV = 0.05
	// VbbMinV..VbbMaxV in VbbStepV steps: -500..500 mV, 50 mV.
	VbbMinV  = -0.50
	VbbMaxV  = 0.50
	VbbStepV = 0.05
)

// LowSlope FU replica characteristics (§3.3.1, after Augsburger & Nikolic):
// the replica's near-critical paths are optimized so the mean path delay
// drops ~25% (with a wider spread and an unchanged critical-path wall), at
// the cost of ~30% more power and area.
const (
	LowSlopeMeanScale = 0.75
	LowSlopePowerMult = 1.30
)

// Issue-queue resizing characteristics (§3.3.2, after Buyuktosunoglu et
// al.): disabling a quarter of the entries shortens the CAM/bitline paths,
// shifting the whole delay distribution left by a few percent.
const (
	QueueSmallFrac  = 0.75
	QueueSmallShift = 0.94
	// Full queue sizes from Figure 7(a).
	IntQueueEntries = 68
	FPQueueEntries  = 32
)

// ExtraPipeStageCycles is the pipeline lengthening cost of FU replication
// (§3.3.1): one extra stage between register read and execute, which adds
// one cycle to the branch-misprediction and load-misspeculation loops
// whenever the technique is implemented (regardless of which replica is
// enabled).
const ExtraPipeStageCycles = 1

// QueueSize selects the issue-queue configuration.
type QueueSize int

const (
	QueueFull QueueSize = iota
	QueueThreeQuarter
)

// String names the queue size.
func (q QueueSize) String() string {
	switch q {
	case QueueFull:
		return "full"
	case QueueThreeQuarter:
		return "3/4"
	default:
		return fmt.Sprintf("QueueSize(%d)", int(q))
	}
}

// Variant returns the VATS path-delay variant for the queue configuration.
func (q QueueSize) Variant() vats.Variant {
	if q == QueueThreeQuarter {
		return vats.ShiftVariant(QueueSmallShift)
	}
	return vats.IdentityVariant()
}

// FUChoice selects which FU replica is enabled.
type FUChoice int

const (
	FUNormal FUChoice = iota
	FULowSlope
)

// String names the FU choice.
func (c FUChoice) String() string {
	switch c {
	case FUNormal:
		return "normal"
	case FULowSlope:
		return "lowslope"
	default:
		return fmt.Sprintf("FUChoice(%d)", int(c))
	}
}

// Variant returns the VATS path-delay variant for the FU choice.
func (c FUChoice) Variant() vats.Variant {
	if c == FULowSlope {
		return vats.TiltVariant(LowSlopeMeanScale)
	}
	return vats.IdentityVariant()
}

// PowerMult returns the dynamic+static power multiplier of the FU choice.
func (c FUChoice) PowerMult() float64 {
	if c == FULowSlope {
		return LowSlopePowerMult
	}
	return 1
}

// Config declares which techniques an environment implements (Table 1).
type Config struct {
	// TimingSpec: a Diva-style checker tolerates timing errors, allowing
	// operation above fvar. All mitigation techniques require it.
	TimingSpec bool
	// ASV: per-subsystem adaptive supply voltage.
	ASV bool
	// ABB: per-subsystem adaptive body bias.
	ABB bool
	// QueueResize: the issue queues can run at 3/4 capacity.
	QueueResize bool
	// FUReplication: Normal/LowSlope replicas of IntALU and FPUnit.
	FUReplication bool
}

// Validate rejects configurations the paper never builds: mitigation
// without error tolerance.
func (c Config) Validate() error {
	if !c.TimingSpec && (c.ASV || c.ABB || c.QueueResize || c.FUReplication) {
		return fmt.Errorf("tech: mitigation techniques require timing speculation")
	}
	return nil
}

// The actuation grids are process constants, and the level getters sit
// inside the adaptation layer's solve loops, so they are materialized
// once at init. The returned slices are shared: callers must treat them
// as read-only.
var (
	vddGrid   = levels(VddMinV, VddMaxV, VddStepV)
	vbbGrid   = levels(VbbMinV, VbbMaxV, VbbStepV)
	fRelGrid  = levels(FRelMin, FRelMax, FRelStep)
	vbbPinned = []float64{0}
)

// VddLevels returns the discrete supply levels the config can actuate.
// Without ASV the supply is pinned at nominal. The returned slice is
// shared and must not be modified.
func (c Config) VddLevels(vddNomV float64) []float64 {
	if !c.ASV {
		return []float64{vddNomV}
	}
	return vddGrid
}

// VbbLevels returns the discrete body-bias levels. Without ABB the bias is
// pinned at zero. The returned slice is shared and must not be modified.
func (c Config) VbbLevels() []float64 {
	if !c.ABB {
		return vbbPinned
	}
	return vbbGrid
}

// FRelLevels returns the frequency grid. The returned slice is shared and
// must not be modified.
func FRelLevels() []float64 { return fRelGrid }

// NumVddLevels and NumVbbLevels are the sizes of the full Figure 7(a)
// actuation grids (with ASV/ABB enabled): 9 supply levels and 21 bias
// levels. They size the adaptation layer's dense per-level caches.
const (
	NumVddLevels = 9
	NumVbbLevels = 21
)

// VddIndex maps a supply voltage to its index on the full ASV grid.
// ok is false for values off the grid (e.g. a non-nominal VddNomV in an
// ablation), which callers must handle without the dense fast path.
func VddIndex(v float64) (idx int, ok bool) {
	return levelIndex(v, VddMinV, VddStepV, NumVddLevels)
}

// VbbIndex maps a body-bias voltage to its index on the full ABB grid.
func VbbIndex(v float64) (idx int, ok bool) {
	return levelIndex(v, VbbMinV, VbbStepV, NumVbbLevels)
}

func levelIndex(v, lo, step float64, n int) (int, bool) {
	idx := int(math.Round((v - lo) / step))
	if idx < 0 || idx >= n {
		return 0, false
	}
	// Accept only values that are (up to rounding noise) exactly on the
	// grid: the dense caches key on the index, so two distinct voltages
	// must never share a slot.
	if math.Abs(math.Round((lo+float64(idx)*step)*1e6)/1e6-v) > 1e-9 {
		return 0, false
	}
	return idx, true
}

// SnapFRelDown snaps f down to the frequency grid; values below the grid
// floor return the floor (the PLL cannot go lower).
func SnapFRelDown(f float64) float64 {
	if f <= FRelMin {
		return FRelMin
	}
	if f >= FRelMax {
		return FRelMax
	}
	steps := math.Floor((f - FRelMin) / FRelStep * (1 + 1e-12))
	return FRelMin + steps*FRelStep
}

// QueueChoices returns the queue configurations available.
func (c Config) QueueChoices() []QueueSize {
	if !c.QueueResize {
		return []QueueSize{QueueFull}
	}
	return []QueueSize{QueueFull, QueueThreeQuarter}
}

// FUChoices returns the FU replicas available.
func (c Config) FUChoices() []FUChoice {
	if !c.FUReplication {
		return []FUChoice{FUNormal}
	}
	return []FUChoice{FUNormal, FULowSlope}
}

// FUSubsystems returns the subsystems carrying replicated FUs.
func FUSubsystems() []floorplan.ID {
	return []floorplan.ID{floorplan.IntALU, floorplan.FPUnit}
}

// QueueSubsystems returns the resizable issue-queue subsystems.
func QueueSubsystems() []floorplan.ID {
	return []floorplan.ID{floorplan.IntQ, floorplan.FPQ}
}

// IsFUSubsystem reports whether id carries a replicated FU.
func IsFUSubsystem(id floorplan.ID) bool {
	return id == floorplan.IntALU || id == floorplan.FPUnit
}

// IsQueueSubsystem reports whether id is a resizable issue queue.
func IsQueueSubsystem(id floorplan.ID) bool {
	return id == floorplan.IntQ || id == floorplan.FPQ
}

func levels(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, math.Round(v*1e6)/1e6)
	}
	return out
}
