package tech

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

func TestVddLevels(t *testing.T) {
	c := Config{TimingSpec: true, ASV: true}
	lv := c.VddLevels(1.0)
	if len(lv) != 9 {
		t.Errorf("ASV has %d levels, want 9 (800..1200 mV step 50)", len(lv))
	}
	if lv[0] != 0.8 || lv[len(lv)-1] != 1.2 {
		t.Errorf("ASV range = [%v, %v], want [0.8, 1.2]", lv[0], lv[len(lv)-1])
	}
	noASV := Config{TimingSpec: true}
	if lv := noASV.VddLevels(1.0); len(lv) != 1 || lv[0] != 1.0 {
		t.Errorf("without ASV Vdd must be pinned at nominal, got %v", lv)
	}
}

func TestVbbLevels(t *testing.T) {
	c := Config{TimingSpec: true, ABB: true}
	lv := c.VbbLevels()
	if len(lv) != 21 {
		t.Errorf("ABB has %d levels, want 21 (-500..500 mV step 50)", len(lv))
	}
	if lv[0] != -0.5 || lv[len(lv)-1] != 0.5 {
		t.Errorf("ABB range = [%v, %v]", lv[0], lv[len(lv)-1])
	}
	noABB := Config{TimingSpec: true}
	if lv := noABB.VbbLevels(); len(lv) != 1 || lv[0] != 0 {
		t.Errorf("without ABB Vbb must be pinned at zero, got %v", lv)
	}
}

func TestFRelLevels(t *testing.T) {
	lv := FRelLevels()
	if lv[0] != FRelMin || math.Abs(lv[len(lv)-1]-FRelMax) > 1e-9 {
		t.Errorf("frequency grid = [%v, %v]", lv[0], lv[len(lv)-1])
	}
	// 100 MHz steps at 4 GHz nominal = 0.025 in relative units.
	for i := 1; i < len(lv); i++ {
		if math.Abs(lv[i]-lv[i-1]-FRelStep) > 1e-9 {
			t.Fatalf("grid step at %d = %v", i, lv[i]-lv[i-1])
		}
	}
}

func TestSnapFRelDown(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, FRelMin},
		{FRelMin, FRelMin},
		{0.9999, 0.975},
		{1.0, 1.0},
		{1.012, 1.0},
		{9.9, FRelMax},
	}
	for _, c := range cases {
		if got := SnapFRelDown(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SnapFRelDown(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Snapping never rounds up.
	for f := 0.6; f < 1.4; f += 0.0137 {
		if got := SnapFRelDown(f); got > f+1e-9 {
			t.Errorf("SnapFRelDown(%v) = %v rounded up", f, got)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	ok := []Config{
		{},
		{TimingSpec: true},
		{TimingSpec: true, ASV: true, ABB: true, QueueResize: true, FUReplication: true},
	}
	for i, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d should validate: %v", i, err)
		}
	}
	bad := Config{ASV: true} // mitigation without a checker
	if err := bad.Validate(); err == nil {
		t.Error("ASV without timing speculation should be rejected")
	}
}

func TestQueueVariants(t *testing.T) {
	full := QueueFull.Variant()
	if full.MeanScale != 1 || full.SigmaScale != 1 || full.PreserveWall {
		t.Errorf("full queue variant should be identity, got %+v", full)
	}
	small := QueueThreeQuarter.Variant()
	if small.MeanScale != QueueSmallShift || small.PreserveWall {
		t.Errorf("3/4 queue variant = %+v, want shift by %v", small, QueueSmallShift)
	}
}

func TestFUVariantsAndPower(t *testing.T) {
	if v := FUNormal.Variant(); v.MeanScale != 1 || v.PreserveWall {
		t.Errorf("normal FU variant should be identity, got %+v", v)
	}
	v := FULowSlope.Variant()
	if v.MeanScale != LowSlopeMeanScale || !v.PreserveWall {
		t.Errorf("lowslope variant = %+v", v)
	}
	if FUNormal.PowerMult() != 1 || FULowSlope.PowerMult() != LowSlopePowerMult {
		t.Error("FU power multipliers wrong")
	}
}

func TestChoiceEnumeration(t *testing.T) {
	none := Config{TimingSpec: true}
	if got := none.QueueChoices(); len(got) != 1 || got[0] != QueueFull {
		t.Errorf("QueueChoices without resize = %v", got)
	}
	if got := none.FUChoices(); len(got) != 1 || got[0] != FUNormal {
		t.Errorf("FUChoices without replication = %v", got)
	}
	all := Config{TimingSpec: true, QueueResize: true, FUReplication: true}
	if got := all.QueueChoices(); len(got) != 2 {
		t.Errorf("QueueChoices with resize = %v", got)
	}
	if got := all.FUChoices(); len(got) != 2 {
		t.Errorf("FUChoices with replication = %v", got)
	}
}

func TestSubsystemClassification(t *testing.T) {
	if !IsFUSubsystem(floorplan.IntALU) || !IsFUSubsystem(floorplan.FPUnit) {
		t.Error("IntALU and FPUnit carry replicated FUs")
	}
	if IsFUSubsystem(floorplan.Dcache) {
		t.Error("Dcache has no FU replica")
	}
	if !IsQueueSubsystem(floorplan.IntQ) || !IsQueueSubsystem(floorplan.FPQ) {
		t.Error("IntQ and FPQ are resizable")
	}
	if IsQueueSubsystem(floorplan.IntALU) {
		t.Error("IntALU is not a queue")
	}
	if len(FUSubsystems()) != 2 || len(QueueSubsystems()) != 2 {
		t.Error("subsystem lists wrong")
	}
}

func TestStringers(t *testing.T) {
	if QueueFull.String() != "full" || QueueThreeQuarter.String() != "3/4" {
		t.Error("QueueSize.String misbehaves")
	}
	if QueueSize(9).String() == "" {
		t.Error("out-of-range QueueSize should still print")
	}
	if FUNormal.String() != "normal" || FULowSlope.String() != "lowslope" {
		t.Error("FUChoice.String misbehaves")
	}
	if FUChoice(9).String() == "" {
		t.Error("out-of-range FUChoice should still print")
	}
}
