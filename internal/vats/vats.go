// Package vats implements the variation-induced timing-error model the
// paper adopts from Sarangi et al. (§2.2, "VATS"): every pipeline stage has
// a dynamic distribution of exercised path delays; clocking the stage with
// a period shorter than its slowest path produces timing errors with a
// probability given by the distribution's upper tail; and an n-stage
// pipeline is a series failure system whose per-instruction error rate is
// the activity-weighted sum of the per-stage rates (Eq. 4).
//
// Path delays respond to the operating point: supply voltage, body bias,
// and temperature move every gate's delay via the alpha-power law, so the
// curves tilt, shift, and reshape exactly as the EVAL framework describes.
//
// All frequencies in this package are relative to the no-variation nominal
// design frequency (fRel = f/fnom, e.g. 4 GHz = 1.0); all delays are in
// units of the nominal clock period.
package vats

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/varius"
)

// tailZ is the z-score of the representative tail device at which the
// random component's delay sensitivity is linearized (see Stage.Eval).
const tailZ = 4.0

// PEZero is the per-access error probability below which a stage is
// considered error-free: the Baseline environment of Table 1 must run with
// no errors at all, which we operationalize as "fewer than one error per
// ~10^12 accesses".
const PEZero = 1e-12

// StageParams describes the static (design-time) path-delay distribution of
// a stage of a given kind, before variation is applied. The distribution is
// normal with standard deviation SigmaL (in units of the nominal period);
// its mean is *derived* so that the no-variation design meets timing at
// exactly fRel = 1.0 at the design corner (TMAX), i.e. the design's
// critical path equals the nominal period by construction.
type StageParams struct {
	// SigmaL is the spread of the static path-delay distribution. Memory
	// structures have homogeneous, near-wall paths (small sigma); logic
	// has a wide variety of path lengths (large sigma); mixed falls in
	// between (§6.1).
	SigmaL float64
	// PathsPerAccess is the number of near-critical paths whose delays are
	// (approximately independently) sampled by one access; an access fails
	// if any of them exceeds the clock period.
	PathsPerAccess float64
	// RandomSigmaMult amplifies the per-transistor random Vt component for
	// this kind of circuit. SRAM arrays use minimum-size cells, whose
	// random-dopant-fluctuation sigma is several times that of logic
	// transistors — this is what makes memory stages the frequency
	// limiters under variation.
	RandomSigmaMult float64
	// DriveDerateV reduces the effective gate overdrive of the kind's
	// switching devices (V). SRAM cell reads run at well below full
	// overdrive, which makes memory delay disproportionately sensitive to
	// Vdd and Vt — the physics behind ASV's strong effect on caches and
	// register files.
	DriveDerateV float64
}

// DefaultStageParams returns the calibrated per-kind stage parameters.
func DefaultStageParams(k floorplan.Kind) StageParams {
	switch k {
	case floorplan.Memory:
		return StageParams{SigmaL: 0.015, PathsPerAccess: 2048, RandomSigmaMult: 2.6, DriveDerateV: 0.45}
	case floorplan.Mixed:
		return StageParams{SigmaL: 0.045, PathsPerAccess: 512, RandomSigmaMult: 4.2, DriveDerateV: 0.12}
	default: // Logic
		return StageParams{SigmaL: 0.08, PathsPerAccess: 256, RandomSigmaMult: 1.0}
	}
}

// StageParamsFor returns the stage parameters for a specific subsystem.
// Functional units override the generic logic profile: as §3.3.1 explains,
// design tools leave FUs with *many near-critical paths* — a critical-path
// wall — because non-critical paths are only optimized until they are
// "short enough". That wall (smaller spread, more paths near the edge) is
// exactly what the LowSlope replica attacks.
func StageParamsFor(sub floorplan.Subsystem) StageParams {
	sp := DefaultStageParams(sub.Kind)
	if sub.ID == floorplan.IntALU || sub.ID == floorplan.FPUnit {
		sp.SigmaL = 0.034
		sp.PathsPerAccess = 1024
		sp.RandomSigmaMult = 1.2
	}
	return sp
}

// zZero returns the tail z-score at which a single access of a stage with
// n near-critical paths reaches PEZero.
func (sp StageParams) zZero() float64 {
	return mathx.NormalQuantile(1 - PEZero/sp.PathsPerAccess)
}

// meanL derives the static distribution mean from the design-closure
// condition: at the design corner the no-variation critical path
// (mean + zZero*SigmaL) equals the nominal period 1.0.
func (sp StageParams) meanL() float64 {
	return 1 - sp.zZero()*sp.SigmaL
}

// Cond is a stage's operating condition: supply voltage, body bias, and
// temperature. The adaptation layer chooses Vdd/Vbb per subsystem (ASV and
// ABB domains) and the thermal model supplies T.
type Cond struct {
	VddV float64 // supply voltage (V)
	VbbV float64 // body bias (V); positive = forward bias (lower Vt)
	TK   float64 // device temperature (K)
}

// Variant modifies a stage's path-delay distribution to model the
// microarchitectural error-mitigation techniques of §3.3.
type Variant struct {
	// MeanScale multiplies the static distribution mean. Shift techniques
	// (issue-queue downsizing: shorter bitlines) use MeanScale < 1 with
	// PreserveWall = false so the whole curve moves left; tilt techniques
	// (LowSlope FU replicas) use MeanScale < 1 with PreserveWall = true.
	MeanScale float64
	// SigmaScale multiplies the static sigma (ignored when PreserveWall).
	SigmaScale float64
	// PreserveWall keeps the design's critical path (the PE-curve
	// intercept fvar) fixed while the mean drops, which widens the
	// distribution and flattens the PE-vs-f slope — the paper's Tilt class
	// (Figure 2(b)): optimizing near-critical paths cannot speed up the
	// slowest path itself.
	PreserveWall bool
}

// IdentityVariant leaves the distribution unchanged.
func IdentityVariant() Variant { return Variant{MeanScale: 1, SigmaScale: 1} }

// ShiftVariant scales all paths by s (< 1 speeds the stage up, moving the
// whole PE curve right — the paper's Shift class, Figure 2(c)).
func ShiftVariant(s float64) Variant { return Variant{MeanScale: s, SigmaScale: s} }

// TiltVariant lowers the mean path delay to meanScale of its design value
// while preserving the critical-path wall (the paper's Tilt class,
// Figure 2(b): the LowSlope FU replica whose near-critical paths are
// optimized, with mean path delay reduced ~25% and a wider spread).
func TiltVariant(meanScale float64) Variant {
	return Variant{MeanScale: meanScale, SigmaScale: 1, PreserveWall: true}
}

// Stage models one pipeline stage / subsystem under a chip's variation map.
type Stage struct {
	Sub   floorplan.Subsystem
	sp    StageParams
	vp    varius.Params
	noVar bool
	// Per-cell systematic components over the subsystem's floorplan
	// rectangle.
	vt0  []float64 // tester-referred Vt0 per cell (V)
	leff []float64 // relative Leff per cell
	// Random per-transistor sigmas (already kind-amplified for Vt).
	vtSigRan   float64
	leffSigRan float64
}

// NewStage builds the timing model of one subsystem on one chip.
func NewStage(sub floorplan.Subsystem, chip *varius.ChipMaps, p varius.Params) (*Stage, error) {
	sp := StageParamsFor(sub)
	vt0 := chip.VtRegion(sub.Rect)
	leff := chip.LeffRegion(sub.Rect)
	if len(vt0) == 0 || len(leff) == 0 {
		return nil, fmt.Errorf("vats: subsystem %v has no variation cells", sub.ID)
	}
	// The two fields can disagree on cell count only if the rectangles
	// degenerate differently; both come from the same grid, so equality is
	// an invariant worth checking.
	if len(vt0) != len(leff) {
		return nil, fmt.Errorf("vats: subsystem %v: %d Vt cells vs %d Leff cells",
			sub.ID, len(vt0), len(leff))
	}
	return &Stage{
		Sub:        sub,
		sp:         sp,
		vp:         p,
		noVar:      chip.NoVariation,
		vt0:        vt0,
		leff:       leff,
		vtSigRan:   chip.VtSigmaRan * sp.RandomSigmaMult,
		leffSigRan: chip.LeffSigmaRan,
	}, nil
}

// Params returns the stage's static distribution parameters.
func (s *Stage) Params() StageParams { return s.sp }

// VariusParams returns the device-physics parameters the stage was built
// with.
func (s *Stage) VariusParams() varius.Params { return s.vp }

// Curve is a stage's dynamic path-delay distribution frozen at one
// operating condition and variant: a mixture over the subsystem's grid
// cells of normal path-delay distributions. It supports cheap repeated
// PE(f) queries, which the adaptation layer's searches rely on.
type Curve struct {
	m, sig []float64 // per-cell mean and sigma of path delay (nominal periods)
	paths  float64
	zzero  float64
}

// Eval freezes the stage's path-delay distribution at condition c with
// variant v.
func (s *Stage) Eval(c Cond, v Variant) *Curve {
	return s.EvalInto(c, v, nil)
}

// EvalInto is Eval writing into cv's backing arrays (allocating only when
// their capacity is too small), for callers that freeze many curves in a
// loop — the slab PE-table builder evaluates hundreds of (Vdd, Vbb)
// conditions per subsystem and reuses one scratch Curve. A nil cv
// allocates a fresh curve. The per-condition delay constants (the
// alpha-power normalization and mobility term) are hoisted out of the
// per-cell loop via varius.DelayNorm; every per-cell value is
// bit-identical to the unhoisted form.
func (s *Stage) EvalInto(c Cond, v Variant, cv *Curve) *Curve {
	sp := s.sp
	meanL := sp.meanL() * v.MeanScale
	sigL := sp.SigmaL * v.SigmaScale
	if v.PreserveWall {
		// Keep meanL_design + z0*sigL_design == meanL + z0*sig' fixed.
		sigL = sp.SigmaL + (1-v.MeanScale)*sp.meanL()/sp.zZero()
	}
	n := len(s.vt0)
	if cv == nil {
		cv = new(Curve)
	}
	if cap(cv.m) < n {
		cv.m = make([]float64, n)
	} else {
		cv.m = cv.m[:n]
	}
	if cap(cv.sig) < n {
		cv.sig = make([]float64, n)
	} else {
		cv.sig = cv.sig[:n]
	}
	cv.paths = sp.PathsPerAccess
	cv.zzero = sp.zZero()
	dn := s.vp.DelayNormAt(c.VddV, c.TK, sp.DriveDerateV)
	// Relative random path-delay sigma: per-gate random Vt and Leff
	// components average over the path depth.
	depth := math.Sqrt(float64(s.Sub.PathDepth))
	tz := tailZ * s.vtSigRan
	dLeff := s.leffSigRan / depth
	for i := 0; i < n; i++ {
		vt := s.vp.VtAt(s.vt0[i], c.TK, c.VddV, c.VbbV)
		g := dn.RelGateDelay(vt, s.leff[i])
		var sigRanRel float64
		if !s.noVar {
			// The delay sensitivity to random Vt variation is evaluated at
			// a representative upper-tail device (tailZ sigmas above the
			// cell's systematic Vt): those slow devices have much less gate
			// overdrive, so they widen the distribution more than a
			// linearization at the mean would show — and they respond much
			// more strongly to a supply boost, which is why ASV is so
			// effective on SRAM structures.
			drive := c.VddV - vt - sp.DriveDerateV - tz
			if drive < 0.05 {
				drive = 0.05
			}
			dVt := s.vp.AlphaPower / drive * s.vtSigRan / depth
			sigRanRel = math.Hypot(dVt, dLeff)
		}
		cv.m[i] = g * meanL
		cv.sig[i] = g * math.Hypot(sigL, meanL*sigRanRel)
	}
	return cv
}

// PE returns the stage's per-access error probability at relative
// frequency fRel (available time tau = 1/fRel nominal periods).
func (cv *Curve) PE(fRel float64) float64 {
	if fRel <= 0 {
		return 0
	}
	tau := 1 / fRel
	sum := 0.0
	for i := range cv.m {
		z := (tau - cv.m[i]) / cv.sig[i]
		p := cv.paths * mathx.NormalTailProb(z)
		if p > 1 {
			p = 1
		}
		sum += p
	}
	return sum / float64(len(cv.m))
}

// peExceeds reports whether PE(fRel) > budget, bailing out as soon as the
// partial mean already exceeds the budget. The early exit is exact: every
// term is nonnegative, so the rounded partial sums are monotone
// non-decreasing, and float division by the positive cell count preserves
// that order — once a partial mean exceeds budget the full mean must too.
// The fall-through compares the identical full-sum expression PE uses, so
// the decision is bit-for-bit the same as PE(fRel) > budget.
func (cv *Curve) peExceeds(fRel, budget float64) bool {
	if fRel <= 0 {
		return 0 > budget
	}
	tau := 1 / fRel
	n := float64(len(cv.m))
	sum := 0.0
	for i := range cv.m {
		z := (tau - cv.m[i]) / cv.sig[i]
		p := cv.paths * mathx.NormalTailProb(z)
		if p > 1 {
			p = 1
		}
		sum += p
		if i&31 == 31 && sum/n > budget {
			return true
		}
	}
	return sum/n > budget
}

// FMaxForPE returns the highest relative frequency at which the stage's
// per-access error probability stays at or below budget. The search
// bracket [loF, hiF] covers all frequencies the adaptation layer ever
// considers. Comparisons go through peExceeds, which short-circuits the
// per-cell scan once the budget is provably blown but takes the exact same
// branch PE-then-compare would.
func (cv *Curve) FMaxForPE(budget float64) float64 {
	const loF, hiF = 0.2, 3.0
	if !cv.peExceeds(hiF, budget) {
		return hiF
	}
	if cv.peExceeds(loF, budget) {
		return loF
	}
	lo, hi := loF, hiF // invariant: PE(lo) <= budget < PE(hi)
	for i := 0; i < 48; i++ {
		mid := 0.5 * (lo + hi)
		if !cv.peExceeds(mid, budget) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// FVar returns the stage's error-free frequency (the PE-curve intercept):
// the highest relative frequency with PE <= PEZero.
func (cv *Curve) FVar() float64 { return cv.FMaxForPE(PEZero) }

// zSkip is a z-score beyond which mathx.NormalTailProb is exactly +0.0 in
// float64: NormalTailProb(z) = 0.5*Erfc(z/sqrt2), and for x = z/sqrt2 >=
// 27.5 the library Erfc underflows to exactly zero (its asymptotic branch
// evaluates Exp(-x*x-0.5625)*..., and -x*x-0.5625 < -756 is far below
// Exp's underflow threshold of about -745.2; from x >= 28 it returns 0
// outright). TestTailShortcutsExact pins the property.
const zSkip = 39.0

// peTermSum returns the un-normalized sum of capped per-cell error
// probabilities at available time tau = 1/fRel — exactly the accumulation
// PE and peExceeds perform, term for term — with two saturation shortcuts
// that skip the Erfc call without changing a bit of the sum: a term with
// z >= zSkip contributes exactly +0.0, and (when the path count is large
// enough that paths*NormalTailProb(0) > 1 with margin) a term with z <= 0
// caps at exactly 1.0.
func (cv *Curve) peTermSum(tau float64) float64 {
	satOK := cv.paths >= 4
	sum := 0.0
	for i := range cv.m {
		z := (tau - cv.m[i]) / cv.sig[i]
		if z >= zSkip {
			continue
		}
		if satOK && z <= 0 {
			sum += 1
			continue
		}
		p := cv.paths * mathx.NormalTailProb(z)
		if p > 1 {
			p = 1
		}
		sum += p
	}
	return sum
}

// peExceedsTau is peExceeds's exact decision at tau = 1/fRel, with the
// saturation shortcuts of peTermSum and the early-exit check applied
// after every cell rather than every 32. Both changes preserve the
// decision bit for bit: the partial means are monotone, so checking more
// often can only exit earlier with the same answer, and the final
// comparison is the identical full-sum expression.
func (cv *Curve) peExceedsTau(tau, budget float64) bool {
	satOK := cv.paths >= 4
	n := float64(len(cv.m))
	sum := 0.0
	for i := range cv.m {
		z := (tau - cv.m[i]) / cv.sig[i]
		if z >= zSkip {
			continue
		}
		if satOK && z <= 0 {
			sum += 1
		} else {
			p := cv.paths * mathx.NormalTailProb(z)
			if p > 1 {
				p = 1
			}
			sum += p
		}
		if sum/n > budget {
			return true
		}
	}
	return sum/n > budget
}

// FMaxForPESet computes FMaxForPE for every budget in budgets at once,
// sharing curve evaluations. All budgets' bisections walk the same dyadic
// frequency tree rooted at [0.2, 3.0], so one full PE evaluation at a
// shared probe point answers the exceeds question for every budget whose
// bracket still contains that point; once a subtree serves a single
// budget, the remaining probes fall back to the early-exit scan. Results
// are bit-identical to calling FMaxForPE(budgets[i]) one at a time: every
// budget sees the same sequence of bracket midpoints, and each exceeds
// decision compares the same rounded mean against the budget (the
// documented peExceeds invariant). out[i] receives the result for
// budgets[i]; budgets need not be sorted.
func (cv *Curve) FMaxForPESet(budgets, out []float64) {
	if len(budgets) == 0 {
		return
	}
	const loF, hiF = 0.2, 3.0
	n := float64(len(cv.m))
	// Bracket checks, shared: one evaluation at each end serves all
	// budgets.
	pend := make([]int, 0, len(budgets))
	meanHi := cv.peTermSum(1/hiF) / n
	meanLo := -1.0 // only needed if some budget passes the hiF check
	lodone := false
	for j := range budgets {
		if !(meanHi > budgets[j]) {
			out[j] = hiF
			continue
		}
		if !lodone {
			meanLo = cv.peTermSum(1/loF) / n
			lodone = true
		}
		if meanLo > budgets[j] {
			out[j] = loF
			continue
		}
		pend = append(pend, j)
	}
	var rec func(lo, hi float64, pend []int, depth int)
	rec = func(lo, hi float64, pend []int, depth int) {
		if len(pend) == 0 {
			return
		}
		if len(pend) == 1 {
			// Single budget left in this subtree: finish its bisection
			// with the early-exit scan, exactly as FMaxForPE would.
			b := budgets[pend[0]]
			for d := depth; d < 48; d++ {
				mid := 0.5 * (lo + hi)
				if !cv.peExceedsTau(1/mid, b) {
					lo = mid
				} else {
					hi = mid
				}
			}
			out[pend[0]] = lo
			return
		}
		if depth == 48 {
			for _, j := range pend {
				out[j] = lo
			}
			return
		}
		mid := 0.5 * (lo + hi)
		mean := cv.peTermSum(1/mid) / n
		// Partition in place: budgets the midpoint exceeds move left
		// (hi = mid), the rest move right (lo = mid).
		k := 0
		for i := 0; i < len(pend); i++ {
			if mean > budgets[pend[i]] {
				pend[k], pend[i] = pend[i], pend[k]
				k++
			}
		}
		rec(lo, mid, pend[:k], depth+1)
		rec(mid, hi, pend[k:], depth+1)
	}
	rec(loF, hiF, pend, 0)
}

// Wall returns the slowest effective critical-path delay (in nominal
// periods) across the stage's cells, i.e. 1/FVar up to tail-model detail.
func (cv *Curve) Wall() float64 {
	w := 0.0
	for i := range cv.m {
		if v := cv.m[i] + cv.zzero*cv.sig[i]; v > w {
			w = v
		}
	}
	return w
}

// Pipeline composes stages into the series failure system of Eq. 4.
type Pipeline struct {
	Stages []*Stage
}

// NewPipeline builds the pipeline model for a whole core on one chip.
func NewPipeline(fp *floorplan.Floorplan, chip *varius.ChipMaps, p varius.Params) (*Pipeline, error) {
	stages := make([]*Stage, 0, fp.N())
	for _, sub := range fp.Subsystems {
		st, err := NewStage(sub, chip, p)
		if err != nil {
			return nil, err
		}
		stages = append(stages, st)
	}
	return &Pipeline{Stages: stages}, nil
}

// Stage returns the stage for a subsystem ID.
func (pl *Pipeline) Stage(id floorplan.ID) (*Stage, error) {
	for _, s := range pl.Stages {
		if s.Sub.ID == id {
			return s, nil
		}
	}
	return nil, fmt.Errorf("vats: pipeline has no stage %v", id)
}

// PE evaluates Eq. 4: the processor's per-instruction error rate at
// relative frequency fRel, given each stage's frozen curve and activity
// factor rho (accesses per instruction). curves and rhos are indexed like
// Stages.
func (pl *Pipeline) PE(curves []*Curve, rhos []float64, fRel float64) float64 {
	sum := 0.0
	for i := range curves {
		sum += rhos[i] * curves[i].PE(fRel)
	}
	return sum
}

// SamplePoint is one (f, PE) sample of a curve, for figure generation.
type SamplePoint struct {
	FRel float64
	PE   float64
}

// SampleCurve evaluates PE over [fLo, fHi] at n evenly spaced points.
func SampleCurve(cv *Curve, fLo, fHi float64, n int) []SamplePoint {
	if n < 2 {
		n = 2
	}
	out := make([]SamplePoint, n)
	for i := 0; i < n; i++ {
		f := fLo + (fHi-fLo)*float64(i)/float64(n-1)
		out[i] = SamplePoint{FRel: f, PE: cv.PE(f)}
	}
	return out
}
