package vats

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

// batchCurves freezes a spread of curves — every subsystem kind, the three
// §3.3 variants, and operating conditions from cold/slow to hot/boosted —
// so the batched-evaluation equivalence checks sweep the same space the
// solvers do.
func batchCurves(t *testing.T) []*Curve {
	t.Helper()
	fp, gen := testFixtures(t)
	p := gen.Params()
	chip := gen.Chip(21)
	pl, err := NewPipeline(fp, chip, p)
	if err != nil {
		t.Fatal(err)
	}
	conds := []Cond{
		{VddV: 0.85, VbbV: -0.3, TK: p.TOpRefK + 20},
		{VddV: p.VddNomV, VbbV: 0, TK: p.TOpRefK},
		{VddV: 1.15, VbbV: 0.3, TK: p.TOpRefK - 25},
	}
	variants := []Variant{IdentityVariant(), ShiftVariant(0.94), TiltVariant(0.75)}
	var out []*Curve
	for _, st := range pl.Stages {
		for _, c := range conds {
			for _, v := range variants {
				out = append(out, st.Eval(c, v))
			}
		}
	}
	return out
}

// TestTailShortcutsExact pins the float64 facts the peTermSum saturation
// shortcuts rely on (see the zSkip comment): beyond zSkip the normal tail
// probability is exactly +0.0, and at or below z = 0 a stage with >= 4
// paths per access saturates its capped term at exactly 1.0.
func TestTailShortcutsExact(t *testing.T) {
	for _, z := range []float64{zSkip, zSkip + 1, 50, 1000} {
		if p := mathx.NormalTailProb(z); p != 0 || math.Signbit(p) {
			t.Errorf("NormalTailProb(%v) = %g, want exactly +0.0", z, p)
		}
	}
	// The skip threshold is not vacuous: slightly below it the tail is
	// still a positive subnormal, so the shortcut fires only where the
	// term truly underflows.
	if p := mathx.NormalTailProb(38.4); p <= 0 {
		t.Errorf("NormalTailProb(38.4) = %g, want > 0 (zSkip too small)", p)
	}
	for _, paths := range []float64{4, 256, 2048} {
		for _, z := range []float64{0, -0.5, -30} {
			p := paths * mathx.NormalTailProb(z)
			if !(p > 1) {
				t.Errorf("paths=%v z=%v: capped term %g does not saturate at 1", paths, z, p)
			}
		}
	}
}

// TestPETermSumMatchesPE: the shortcut accumulation must reproduce PE's
// rounded mean bit for bit at every probe frequency the bisections visit.
func TestPETermSumMatchesPE(t *testing.T) {
	for ci, cv := range batchCurves(t) {
		n := float64(len(cv.m))
		for f := 0.2; f <= 3.0; f += 0.037 {
			want := cv.PE(f)
			got := cv.peTermSum(1/f) / n
			if got != want {
				t.Fatalf("curve %d f=%v: peTermSum/n = %g != PE = %g", ci, f, got, want)
			}
		}
	}
}

// TestPEExceedsTauMatchesPEExceeds: the per-cell early-exit decision must
// agree with the reference stride-32 decision for budgets straddling the
// whole grid, including budgets exactly at the mean (the > boundary).
func TestPEExceedsTauMatchesPEExceeds(t *testing.T) {
	budgets := []float64{0, 1e-12, 1e-9, 1e-6, 1e-4, 1e-2, 0.5, 1}
	for ci, cv := range batchCurves(t) {
		for f := 0.3; f <= 2.9; f += 0.113 {
			for _, b := range append(budgets, cv.PE(f)) {
				want := cv.peExceeds(f, b)
				got := cv.peExceedsTau(1/f, b)
				if got != want {
					t.Fatalf("curve %d f=%v budget=%g: peExceedsTau=%v, peExceeds=%v",
						ci, f, b, got, want)
				}
			}
		}
	}
}

// TestFMaxForPESetMatchesFMaxForPE: the shared-tree batched bisection must
// be bit-identical to independent per-budget bisections, for full budget
// sets, singletons, duplicates, and unsorted orders.
func TestFMaxForPESetMatchesFMaxForPE(t *testing.T) {
	sets := [][]float64{
		{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}, // the dense-table grid
		{1e-4},                  // singleton: pure early-exit path
		{1e-2, 1e-9, 1e-6},      // unsorted
		{1e-6, 1e-6, 1e-12, 10}, // duplicates + both bracket clamps
	}
	for ci, cv := range batchCurves(t) {
		for si, budgets := range sets {
			out := make([]float64, len(budgets))
			cv.FMaxForPESet(budgets, out)
			for j, b := range budgets {
				if want := cv.FMaxForPE(b); out[j] != want {
					t.Fatalf("curve %d set %d budget %g: batched %v != reference %v",
						ci, si, b, out[j], want)
				}
			}
		}
	}
	// Empty set is a no-op.
	new(Curve).FMaxForPESet(nil, nil)
}

// TestEvalIntoReusesAndMatchesEval: EvalInto must reuse the scratch
// curve's arrays across calls and produce curves bitwise equal to Eval's.
func TestEvalIntoReusesAndMatchesEval(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(22)
	st, err := NewStage(fp.Subsystems[0], chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	var scratch Curve
	conds := []Cond{
		{VddV: 0.9, VbbV: -0.15, TK: 330},
		{VddV: 1.1, VbbV: 0.3, TK: 355},
	}
	var firstBacking *float64
	for pass, c := range conds {
		got := st.EvalInto(c, IdentityVariant(), &scratch)
		if got != &scratch {
			t.Fatal("EvalInto did not return its scratch curve")
		}
		if pass == 0 {
			firstBacking = &got.m[0]
		} else if &got.m[0] != firstBacking {
			t.Error("EvalInto reallocated a sufficient scratch array")
		}
		want := st.Eval(c, IdentityVariant())
		if got.paths != want.paths || got.zzero != want.zzero ||
			len(got.m) != len(want.m) || len(got.sig) != len(want.sig) {
			t.Fatalf("cond %+v: curve shape mismatch", c)
		}
		for i := range want.m {
			if got.m[i] != want.m[i] || got.sig[i] != want.sig[i] {
				t.Fatalf("cond %+v cell %d: EvalInto (%g,%g) != Eval (%g,%g)",
					c, i, got.m[i], got.sig[i], want.m[i], want.sig[i])
			}
		}
	}
}
