package vats

import (
	"strings"
	"testing"

	"repro/internal/floorplan"
)

func TestCurveStats(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(3)
	corner := designCorner(gen.Params())
	for _, sub := range fp.Subsystems {
		st, err := NewStage(sub, chip, gen.Params())
		if err != nil {
			t.Fatal(err)
		}
		cv := st.Eval(corner, IdentityVariant())
		stats := cv.Stats()
		if stats.Cells <= 0 {
			t.Errorf("%v: no cells", sub.ID)
		}
		if stats.MaxDelay < stats.MeanDelay {
			t.Errorf("%v: max delay %v below mean %v", sub.ID, stats.MaxDelay, stats.MeanDelay)
		}
		if stats.Wall < stats.MaxDelay {
			t.Errorf("%v: wall %v below max mean delay %v", sub.ID, stats.Wall, stats.MaxDelay)
		}
		if stats.FVar <= 0 || stats.OnsetSpan < 0 {
			t.Errorf("%v: stats %+v", sub.ID, stats)
		}
		if !strings.Contains(stats.String(), "fvar=") {
			t.Error("String() misses fields")
		}
	}
}

func TestOnsetSpanOrderingByKind(t *testing.T) {
	// §6.1: memory rapid onset (small span), logic gradual (large span).
	fp, gen := testFixtures(t)
	chip := gen.Chip(4)
	corner := designCorner(gen.Params())
	var memSpan, logicSpan []float64
	for _, sub := range fp.Subsystems {
		st, err := NewStage(sub, chip, gen.Params())
		if err != nil {
			t.Fatal(err)
		}
		span := st.Eval(corner, IdentityVariant()).Stats().OnsetSpan
		switch sub.Kind {
		case floorplan.Memory:
			memSpan = append(memSpan, span)
		case floorplan.Logic:
			if sub.ID != floorplan.IntALU && sub.ID != floorplan.FPUnit {
				// FUs have an engineered critical-path wall; compare
				// against plain logic (Decode).
				logicSpan = append(logicSpan, span)
			}
		}
	}
	if len(memSpan) == 0 || len(logicSpan) == 0 {
		t.Fatal("missing kinds")
	}
	maxMem := memSpan[0]
	for _, s := range memSpan {
		if s > maxMem {
			maxMem = s
		}
	}
	for _, s := range logicSpan {
		if s <= maxMem {
			t.Errorf("logic onset span %v not above all memory spans (max %v)", s, maxMem)
		}
	}
}

func TestCrossFRel(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(5)
	st, err := NewStage(fp.Subsystems[0], chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	cv := st.Eval(designCorner(gen.Params()), IdentityVariant())
	f6, ok := cv.CrossFRel(1e-6)
	if !ok {
		t.Fatal("curve should reach 1e-6")
	}
	if pe := cv.PE(f6); pe < 1e-6*0.9 {
		t.Errorf("PE at crossing = %g, want >= 1e-6", pe)
	}
	if pe := cv.PE(f6 * 0.98); pe > 1e-6 {
		t.Errorf("PE just below crossing = %g, want < 1e-6", pe)
	}
	f2, ok := cv.CrossFRel(1e-2)
	if !ok || f2 < f6 {
		t.Errorf("crossings out of order: %v then %v", f6, f2)
	}
	// A level the curve never reaches in the bracket.
	if _, ok := cv.CrossFRel(1.1); ok {
		t.Error("PE cannot reach 1.1")
	}
}

func TestRankStagesByFVar(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(6)
	pl, err := NewPipeline(fp, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	corner := designCorner(gen.Params())
	rank := RankStagesByFVar(pl, corner)
	if len(rank) != len(pl.Stages) {
		t.Fatalf("rank has %d entries", len(rank))
	}
	seen := map[int]bool{}
	prev := -1.0
	for _, idx := range rank {
		if seen[idx] {
			t.Fatal("duplicate index in ranking")
		}
		seen[idx] = true
		f := pl.Stages[idx].Eval(corner, IdentityVariant()).FVar()
		if f < prev {
			t.Fatal("ranking not ascending in FVar")
		}
		prev = f
	}
	// The most limiting stage must be the pipeline's fvar.
	first := pl.Stages[rank[0]].Eval(corner, IdentityVariant()).FVar()
	for _, st := range pl.Stages {
		if st.Eval(corner, IdentityVariant()).FVar() < first-1e-12 {
			t.Fatal("rank[0] is not the most limiting stage")
		}
	}
}
