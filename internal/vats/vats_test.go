package vats

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/varius"
)

func testFixtures(t *testing.T) (*floorplan.Floorplan, *varius.Generator) {
	t.Helper()
	p := varius.DefaultParams()
	gen, err := varius.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.Default(p.CoreSide)
	if err != nil {
		t.Fatal(err)
	}
	return fp, gen
}

func designCorner(p varius.Params) Cond {
	return Cond{VddV: p.VddNomV, VbbV: 0, TK: p.TOpRefK}
}

func TestStageParamsDesignClosure(t *testing.T) {
	// For every kind: mean + zZero*sigma == 1.0 (the design's critical
	// path meets the nominal period exactly).
	for _, k := range []floorplan.Kind{floorplan.Logic, floorplan.Memory, floorplan.Mixed} {
		sp := DefaultStageParams(k)
		wall := sp.meanL() + sp.zZero()*sp.SigmaL
		if math.Abs(wall-1.0) > 1e-9 {
			t.Errorf("%v design wall = %v, want 1.0", k, wall)
		}
		if sp.meanL() <= 0 || sp.meanL() >= 1 {
			t.Errorf("%v meanL = %v out of (0,1)", k, sp.meanL())
		}
	}
}

func TestMemoryStagesSteeperThanLogic(t *testing.T) {
	// §6.1: memory subsystems have a rapid error onset, logic gradual.
	mem := DefaultStageParams(floorplan.Memory)
	logic := DefaultStageParams(floorplan.Logic)
	mixed := DefaultStageParams(floorplan.Mixed)
	if !(mem.SigmaL < mixed.SigmaL && mixed.SigmaL < logic.SigmaL) {
		t.Errorf("sigma ordering violated: mem %v, mixed %v, logic %v",
			mem.SigmaL, mixed.SigmaL, logic.SigmaL)
	}
}

func TestNoVarChipMeetsNominalFrequency(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.NoVarChip()
	pl, err := NewPipeline(fp, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	corner := designCorner(gen.Params())
	for _, st := range pl.Stages {
		cv := st.Eval(corner, IdentityVariant())
		fv := cv.FVar()
		if math.Abs(fv-1.0) > 0.01 {
			t.Errorf("%v NoVar FVar = %v, want ~1.0", st.Sub.ID, fv)
		}
		// And at fRel = 1.0 the stage is error-free.
		// Allow a whisker of tail-model roundoff above the threshold.
		if pe := cv.PE(1.0); pe > PEZero*1.5 {
			t.Errorf("%v NoVar PE(1.0) = %g, want <= %g", st.Sub.ID, pe, PEZero)
		}
	}
}

func TestVariationLowersFVar(t *testing.T) {
	fp, gen := testFixtures(t)
	corner := designCorner(gen.Params())
	lowered := 0
	for seed := int64(0); seed < 5; seed++ {
		chip := gen.Chip(seed)
		pl, err := NewPipeline(fp, chip, gen.Params())
		if err != nil {
			t.Fatal(err)
		}
		minFVar := math.Inf(1)
		for _, st := range pl.Stages {
			fv := st.Eval(corner, IdentityVariant()).FVar()
			if fv < minFVar {
				minFVar = fv
			}
		}
		if minFVar < 0.99 {
			lowered++
		}
	}
	if lowered != 5 {
		t.Errorf("only %d/5 chips lost frequency to variation", lowered)
	}
}

func TestBaselineFrequencyCalibration(t *testing.T) {
	// The paper's Baseline cycles at ~78% of the no-variation frequency
	// (Figure 10). Our calibrated model should land in the same band.
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	fp, gen := testFixtures(t)
	corner := designCorner(gen.Params())
	var fvars []float64
	for seed := int64(0); seed < 30; seed++ {
		chip := gen.Chip(seed)
		pl, err := NewPipeline(fp, chip, gen.Params())
		if err != nil {
			t.Fatal(err)
		}
		minFVar := math.Inf(1)
		for _, st := range pl.Stages {
			fv := st.Eval(corner, IdentityVariant()).FVar()
			if fv < minFVar {
				minFVar = fv
			}
		}
		fvars = append(fvars, minFVar)
	}
	mean := mathx.Mean(fvars)
	if mean < 0.70 || mean > 0.86 {
		t.Errorf("mean Baseline fRel = %v, want ~0.78 (band 0.70-0.86)", mean)
	}
	t.Logf("mean Baseline relative frequency = %.3f (paper: 0.78)", mean)
}

func TestPEMonotoneInFrequency(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(3)
	pl, err := NewPipeline(fp, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	corner := designCorner(gen.Params())
	for _, st := range pl.Stages {
		cv := st.Eval(corner, IdentityVariant())
		prev := -1.0
		for f := 0.5; f <= 2.0; f += 0.02 {
			pe := cv.PE(f)
			if pe < prev-1e-15 {
				t.Fatalf("%v PE not monotone at f=%v", st.Sub.ID, f)
			}
			if pe < 0 || pe > 1 {
				t.Fatalf("%v PE out of [0,1]: %v", st.Sub.ID, pe)
			}
			prev = pe
		}
	}
}

func TestPEZeroFrequencyEdge(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(3)
	st, err := NewStage(fp.Subsystems[0], chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	cv := st.Eval(designCorner(gen.Params()), IdentityVariant())
	if cv.PE(0) != 0 || cv.PE(-1) != 0 {
		t.Error("non-positive frequency should have zero error probability")
	}
}

func TestFMaxForPEConsistent(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(4)
	pl, err := NewPipeline(fp, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	corner := designCorner(gen.Params())
	for _, st := range pl.Stages {
		cv := st.Eval(corner, IdentityVariant())
		for _, budget := range []float64{1e-8, 1e-6, 1e-4} {
			f := cv.FMaxForPE(budget)
			if pe := cv.PE(f); pe > budget*1.001 {
				t.Errorf("%v: PE(FMaxForPE(%g)) = %g exceeds budget", st.Sub.ID, budget, pe)
			}
			// Slightly above fmax the budget must be violated (unless fmax
			// hit the search ceiling).
			if f < 2.99 {
				if pe := cv.PE(f * 1.02); pe <= budget {
					t.Errorf("%v: budget %g not tight at fmax %v", st.Sub.ID, budget, f)
				}
			}
		}
	}
}

func TestFMaxMonotoneInBudget(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(5)
	st, err := NewStage(fp.Subsystems[0], chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	cv := st.Eval(designCorner(gen.Params()), IdentityVariant())
	prev := 0.0
	for _, b := range []float64{1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2} {
		f := cv.FMaxForPE(b)
		if f < prev {
			t.Fatalf("FMaxForPE not monotone in budget at %g", b)
		}
		prev = f
	}
}

func TestHigherVddRaisesFVar(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(6)
	pl, err := NewPipeline(fp, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	p := gen.Params()
	for _, st := range pl.Stages {
		base := st.Eval(Cond{VddV: 1.0, TK: p.TOpRefK}, IdentityVariant()).FVar()
		boosted := st.Eval(Cond{VddV: 1.15, TK: p.TOpRefK}, IdentityVariant()).FVar()
		if boosted <= base {
			t.Errorf("%v: ASV boost did not raise FVar (%v -> %v)", st.Sub.ID, base, boosted)
		}
	}
}

func TestForwardBodyBiasRaisesFVar(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(7)
	st, err := NewStage(fp.Subsystems[0], chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	p := gen.Params()
	base := st.Eval(Cond{VddV: 1.0, VbbV: 0, TK: p.TOpRefK}, IdentityVariant()).FVar()
	fbb := st.Eval(Cond{VddV: 1.0, VbbV: 0.3, TK: p.TOpRefK}, IdentityVariant()).FVar()
	rbb := st.Eval(Cond{VddV: 1.0, VbbV: -0.3, TK: p.TOpRefK}, IdentityVariant()).FVar()
	if fbb <= base {
		t.Errorf("FBB did not raise FVar (%v -> %v)", base, fbb)
	}
	if rbb >= base {
		t.Errorf("RBB did not lower FVar (%v -> %v)", base, rbb)
	}
}

func TestHotterLowersFVar(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(8)
	st, err := NewStage(fp.Subsystems[0], chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	p := gen.Params()
	cool := st.Eval(Cond{VddV: 1.0, TK: p.TOpRefK - 30}, IdentityVariant()).FVar()
	hot := st.Eval(Cond{VddV: 1.0, TK: p.TOpRefK + 10}, IdentityVariant()).FVar()
	// Mobility degradation dominates the Vt drop with our constants, so
	// hotter means slower.
	if hot >= cool {
		t.Errorf("hotter stage should be slower: cool %v, hot %v", cool, hot)
	}
}

func TestShiftVariantMovesCurveRight(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(9)
	// IntQ is a mixed-kind issue queue, the paper's shift target.
	var sub floorplan.Subsystem
	for _, s := range fp.Subsystems {
		if s.ID == floorplan.IntQ {
			sub = s
		}
	}
	st, err := NewStage(sub, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	corner := designCorner(gen.Params())
	full := st.Eval(corner, IdentityVariant())
	small := st.Eval(corner, ShiftVariant(0.94))
	if small.FVar() <= full.FVar() {
		t.Errorf("downsized queue should raise FVar: %v vs %v", small.FVar(), full.FVar())
	}
	// At any frequency, the smaller structure has no more errors.
	for f := 0.8; f < 1.5; f += 0.05 {
		if small.PE(f) > full.PE(f)+1e-15 {
			t.Errorf("shift increased PE at f=%v", f)
		}
	}
}

func TestTiltVariantPreservesWallAndFlattensSlope(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(10)
	var sub floorplan.Subsystem
	for _, s := range fp.Subsystems {
		if s.ID == floorplan.IntALU {
			sub = s
		}
	}
	st, err := NewStage(sub, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	corner := designCorner(gen.Params())
	normal := st.Eval(corner, IdentityVariant())
	lowslope := st.Eval(corner, TiltVariant(0.75))
	// The wall (and hence fvar) is essentially unchanged (the random
	// per-transistor component couples weakly to the mean scale, so allow
	// a small tolerance)...
	if math.Abs(normal.Wall()-lowslope.Wall()) > 5e-3 {
		t.Errorf("tilt moved the wall: %v -> %v", normal.Wall(), lowslope.Wall())
	}
	if math.Abs(normal.FVar()-lowslope.FVar()) > 0.02 {
		t.Errorf("tilt moved FVar: %v -> %v", normal.FVar(), lowslope.FVar())
	}
	// ...but above fvar the low-sloped replica has fewer errors.
	fvar := normal.FVar()
	improved := false
	for _, f := range []float64{fvar * 1.02, fvar * 1.05, fvar * 1.1} {
		pn, pl := normal.PE(f), lowslope.PE(f)
		if pl > pn*1.001+1e-18 {
			t.Errorf("tilt increased PE at f=%v: %g vs %g", f, pl, pn)
		}
		if pl < pn*0.99 {
			improved = true
		}
	}
	if !improved {
		t.Error("tilt produced no PE improvement above fvar")
	}
}

func TestPipelinePEComposition(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(11)
	pl, err := NewPipeline(fp, chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	corner := designCorner(gen.Params())
	curves := make([]*Curve, len(pl.Stages))
	rhos := make([]float64, len(pl.Stages))
	for i, st := range pl.Stages {
		curves[i] = st.Eval(corner, IdentityVariant())
		rhos[i] = 1
	}
	f := 1.0
	total := pl.PE(curves, rhos, f)
	sum := 0.0
	for _, cv := range curves {
		sum += cv.PE(f)
	}
	if math.Abs(total-sum) > 1e-15 {
		t.Errorf("pipeline PE %g != sum of stage PEs %g", total, sum)
	}
	// Zero activity silences a stage.
	rhos[0] = 0
	if pl.PE(curves, rhos, f) > total {
		t.Error("zeroing an activity factor should not raise PE")
	}
}

func TestPipelineStageLookup(t *testing.T) {
	fp, gen := testFixtures(t)
	pl, err := NewPipeline(fp, gen.NoVarChip(), gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	st, err := pl.Stage(floorplan.Dcache)
	if err != nil || st.Sub.ID != floorplan.Dcache {
		t.Errorf("Stage lookup failed: %v, %v", st, err)
	}
	if _, err := pl.Stage(floorplan.ID(99)); err == nil {
		t.Error("expected error for unknown stage")
	}
}

func TestSampleCurve(t *testing.T) {
	fp, gen := testFixtures(t)
	chip := gen.Chip(12)
	st, err := NewStage(fp.Subsystems[0], chip, gen.Params())
	if err != nil {
		t.Fatal(err)
	}
	cv := st.Eval(designCorner(gen.Params()), IdentityVariant())
	pts := SampleCurve(cv, 0.8, 1.4, 25)
	if len(pts) != 25 {
		t.Fatalf("got %d points, want 25", len(pts))
	}
	if pts[0].FRel != 0.8 || math.Abs(pts[24].FRel-1.4) > 1e-12 {
		t.Error("sample endpoints wrong")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PE < pts[i-1].PE-1e-15 {
			t.Error("sampled PE not monotone")
		}
	}
	// Degenerate n clamps to 2.
	if got := SampleCurve(cv, 1, 2, 1); len(got) != 2 {
		t.Errorf("n=1 should clamp to 2 points, got %d", len(got))
	}
}

func TestMemoryBindsFrequency(t *testing.T) {
	// Under variation the memory stages (with their amplified random
	// component and steep onset) should usually be the frequency limiters.
	fp, gen := testFixtures(t)
	corner := designCorner(gen.Params())
	memBinds := 0
	const chips = 10
	for seed := int64(0); seed < chips; seed++ {
		chip := gen.Chip(seed)
		pl, err := NewPipeline(fp, chip, gen.Params())
		if err != nil {
			t.Fatal(err)
		}
		worst := math.Inf(1)
		var worstKind floorplan.Kind
		for _, st := range pl.Stages {
			fv := st.Eval(corner, IdentityVariant()).FVar()
			if fv < worst {
				worst = fv
				worstKind = st.Sub.Kind
			}
		}
		if worstKind == floorplan.Memory {
			memBinds++
		}
	}
	if memBinds < chips/2 {
		t.Errorf("memory binds frequency on only %d/%d chips", memBinds, chips)
	}
}
