package vats

import (
	"fmt"
	"sort"
)

// CurveStats summarizes a frozen stage curve for reporting and figure
// generation.
type CurveStats struct {
	// MeanDelay and MaxDelay are the mixture's per-cell mean path delays
	// (nominal periods): the average cell and the slowest cell.
	MeanDelay float64
	MaxDelay  float64
	// Wall is the effective critical-path delay (the PE-curve intercept).
	Wall float64
	// FVar is the error-free frequency.
	FVar float64
	// OnsetSpan is the relative frequency distance between PE=1e-8 and
	// PE=1e-2 — the §6.1 steepness measure (small for memory, large for
	// logic).
	OnsetSpan float64
	// Cells is the number of variation-map cells in the mixture.
	Cells int
}

// Stats computes the curve's summary.
func (cv *Curve) Stats() CurveStats {
	st := CurveStats{Cells: len(cv.m), Wall: cv.Wall(), FVar: cv.FVar()}
	sum := 0.0
	for i, m := range cv.m {
		sum += m
		if m > st.MaxDelay {
			st.MaxDelay = m
		}
		_ = i
	}
	if len(cv.m) > 0 {
		st.MeanDelay = sum / float64(len(cv.m))
	}
	fLo := cv.FMaxForPE(1e-8)
	fHi := cv.FMaxForPE(1e-2)
	if fLo > 0 {
		st.OnsetSpan = (fHi - fLo) / fLo
	}
	return st
}

// String renders the stats compactly.
func (s CurveStats) String() string {
	return fmt.Sprintf("cells=%d mean=%.3f max=%.3f wall=%.3f fvar=%.3f onset=%.1f%%",
		s.Cells, s.MeanDelay, s.MaxDelay, s.Wall, s.FVar, s.OnsetSpan*100)
}

// CrossFRel returns the lowest relative frequency at which the curve's
// error probability reaches at least pe, by bisection over the sampling
// range; ok is false when the curve never reaches pe below the bracket's
// upper end.
func (cv *Curve) CrossFRel(pe float64) (f float64, ok bool) {
	const loF, hiF = 0.2, 3.0
	if cv.PE(hiF) < pe {
		return 0, false
	}
	if cv.PE(loF) >= pe {
		return loF, true
	}
	lo, hi := loF, hiF
	for i := 0; i < 48; i++ {
		mid := 0.5 * (lo + hi)
		if cv.PE(mid) >= pe {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// RankStagesByFVar orders a pipeline's stages from most to least frequency
// limiting at the given condition, returning the stage indices.
func RankStagesByFVar(pl *Pipeline, c Cond) []int {
	type entry struct {
		idx int
		f   float64
	}
	entries := make([]entry, len(pl.Stages))
	for i, st := range pl.Stages {
		entries[i] = entry{idx: i, f: st.Eval(c, IdentityVariant()).FVar()}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].f < entries[b].f })
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = e.idx
	}
	return out
}
