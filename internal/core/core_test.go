package core

import (
	"math"
	"testing"

	"repro/internal/adapt"
	"repro/internal/floorplan"
	"repro/internal/tech"
	"repro/internal/workload"
)

func newSim(t *testing.T) *Simulator {
	t.Helper()
	opts := DefaultOptions()
	opts.TraceLen = 20000 // keep tests fast
	s, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tinyConfig returns an experiment budget small enough for unit tests.
func tinyConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.Chips = 2
	cfg.TrainChips = 1
	cfg.Apps = []string{"gcc", "swim"}
	cfg.Training.Examples = 150
	cfg.Training.Fuzzy.Epochs = 1
	return cfg
}

func TestEnvironmentTable1(t *testing.T) {
	if NumEnvironments != 8 {
		t.Fatalf("Table 1 has 8 environments, got %d", int(NumEnvironments))
	}
	names := map[Environment]string{
		Baseline: "Baseline", TS: "TS", TSASV: "TS+ASV", TSASVABB: "TS+ASV+ABB",
		TSASVQ: "TS+ASV+Q", TSASVQFU: "TS+ASV+Q+FU", All: "ALL", NoVar: "NoVar",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
	if Environment(42).String() == "" || Mode(42).String() == "" {
		t.Error("out-of-range enums should still print")
	}
	// Technique monotonicity along the Table 1 progression.
	if Baseline.Config().TimingSpec || NoVar.Config().TimingSpec {
		t.Error("Baseline/NoVar have no checker")
	}
	if !TSASVQFU.Config().FUReplication || !TSASVQFU.Config().QueueResize || !TSASVQFU.Config().ASV {
		t.Error("preferred environment misses techniques")
	}
	if !All.Config().ABB {
		t.Error("ALL must include ABB")
	}
	if Baseline.Adaptive() || NoVar.Adaptive() || !TS.Adaptive() {
		t.Error("Adaptive() misclassifies")
	}
	if len(AdaptiveEnvironments()) != 6 {
		t.Error("six adaptive environments expected")
	}
}

func TestModeNames(t *testing.T) {
	if Static.String() != "Static" || FuzzyDyn.String() != "Fuzzy-Dyn" || ExhDyn.String() != "Exh-Dyn" {
		t.Error("mode names do not match the figures")
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	bad := DefaultOptions()
	bad.Varius.Phi = 0
	if _, err := NewSimulator(bad); err == nil {
		t.Error("invalid variation params should be rejected")
	}
	bad2 := DefaultOptions()
	bad2.Limits.PEMax = 0
	if _, err := NewSimulator(bad2); err == nil {
		t.Error("invalid limits should be rejected")
	}
}

func TestProfileCaching(t *testing.T) {
	s := newSim(t)
	app, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Profile(app, app.Phases[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Profile(app, app.Phases[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cached profile differs")
	}
}

func TestChipFVarBand(t *testing.T) {
	s := newSim(t)
	// NoVar chip meets nominal frequency.
	fv, err := s.ChipFVar(s.Chip(-1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fv-1.0) > 0.01 {
		t.Errorf("NoVar fvar = %v, want ~1.0", fv)
	}
	// Variation chips land well below.
	fv, err = s.ChipFVar(s.Chip(3))
	if err != nil {
		t.Fatal(err)
	}
	if fv < 0.6 || fv > 0.95 {
		t.Errorf("chip fvar = %v, want in the variation band", fv)
	}
}

func TestRunNoVarAndBaseline(t *testing.T) {
	s := newSim(t)
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	nv, err := s.RunNoVar(app)
	if err != nil {
		t.Fatal(err)
	}
	if nv.FRel != 1.0 || nv.Perf <= 0 {
		t.Errorf("NoVar run = %+v", nv)
	}
	if nv.PowerW < 15 || nv.PowerW > 32 {
		t.Errorf("NoVar power = %v W, want ~25 W", nv.PowerW)
	}
	base, err := s.RunBaseline(s.Chip(3), app)
	if err != nil {
		t.Fatal(err)
	}
	if base.FRel >= 1.0 {
		t.Errorf("Baseline frequency %v should be below nominal", base.FRel)
	}
	if base.Perf >= nv.Perf {
		t.Errorf("Baseline perf %v should trail NoVar %v", base.Perf, nv.Perf)
	}
	if base.PowerW >= nv.PowerW {
		t.Errorf("Baseline power %v should trail NoVar %v", base.PowerW, nv.PowerW)
	}
}

func TestRunDynamicBeatsBaseline(t *testing.T) {
	s := newSim(t)
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	chip := s.Chip(5)
	core, err := s.BuildCore(chip, TSASVQFU)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.RunDynamic(core, app, ExhDyn, adapt.Exhaustive{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.RunBaseline(chip, app)
	if err != nil {
		t.Fatal(err)
	}
	if run.FRel <= base.FRel {
		t.Errorf("adapted frequency %v should beat baseline %v", run.FRel, base.FRel)
	}
	if run.Perf <= base.Perf {
		t.Errorf("adapted performance %v should beat baseline %v", run.Perf, base.Perf)
	}
	if run.PE > s.opts.Limits.PEMax*1.01 {
		t.Errorf("adapted PE %g above budget", run.PE)
	}
	if _, err := s.RunDynamic(core, app, Static, adapt.Exhaustive{}); err == nil {
		t.Error("RunDynamic must reject Static mode")
	}
}

func TestStaticConservativeAndBelowDynamic(t *testing.T) {
	s := newSim(t)
	apps := []workload.App{}
	for _, n := range []string{"gcc", "crafty", "swim"} {
		a, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	chip := s.Chip(7)
	core, err := s.BuildCore(chip, TSASV)
	if err != nil {
		t.Fatal(err)
	}
	point, err := s.StaticPoint(core, workload.Int, apps)
	if err != nil {
		t.Fatal(err)
	}
	gcc := apps[0]
	st, err := s.RunStatic(core, gcc, point)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := s.RunDynamic(core, gcc, ExhDyn, adapt.Exhaustive{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FRel > dyn.FRel+1e-9 {
		t.Errorf("static frequency %v should not beat dynamic %v", st.FRel, dyn.FRel)
	}
	if st.FRel > point.FCore+1e-9 {
		t.Errorf("static run exceeded its fixed frequency: %v > %v", st.FRel, point.FCore)
	}
}

func TestRunSummarySmall(t *testing.T) {
	s := newSim(t)
	cfg := tinyConfig()
	cfg.Envs = []Environment{TS, TSASV}
	cfg.Modes = []Mode{Static, ExhDyn}
	sum, err := s.RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.BaselineFRel < 0.65 || sum.BaselineFRel > 0.9 {
		t.Errorf("Baseline fRel = %v, want ~0.78", sum.BaselineFRel)
	}
	if sum.BaselinePerfR <= 0 || sum.BaselinePerfR >= 1 {
		t.Errorf("Baseline PerfR = %v, want in (0,1)", sum.BaselinePerfR)
	}
	if len(sum.Cells) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(sum.Cells))
	}
	tsDyn, err := sum.CellFor(TS, ExhDyn)
	if err != nil {
		t.Fatal(err)
	}
	asvDyn, err := sum.CellFor(TSASV, ExhDyn)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 10 ordering: Baseline < TS < TS+ASV under dynamic control.
	if tsDyn.FRel <= sum.BaselineFRel {
		t.Errorf("TS %v should beat Baseline %v", tsDyn.FRel, sum.BaselineFRel)
	}
	if asvDyn.FRel <= tsDyn.FRel {
		t.Errorf("TS+ASV %v should beat TS %v", asvDyn.FRel, tsDyn.FRel)
	}
	// Figure 11 ordering for performance.
	if asvDyn.PerfR <= sum.BaselinePerfR {
		t.Errorf("TS+ASV PerfR %v should beat Baseline %v", asvDyn.PerfR, sum.BaselinePerfR)
	}
	// Static does not beat dynamic.
	tsStatic, err := sum.CellFor(TS, Static)
	if err != nil {
		t.Fatal(err)
	}
	if tsStatic.FRel > tsDyn.FRel+1e-9 {
		t.Errorf("Static %v should not beat Exh-Dyn %v", tsStatic.FRel, tsDyn.FRel)
	}
	if _, err := sum.CellFor(All, ExhDyn); err == nil {
		t.Error("CellFor should fail for absent cells")
	}
}

func TestRunSummaryValidation(t *testing.T) {
	s := newSim(t)
	cfg := tinyConfig()
	cfg.Chips = 0
	if _, err := s.RunSummary(cfg); err == nil {
		t.Error("zero chips should error")
	}
	cfg = tinyConfig()
	cfg.Envs = []Environment{Baseline}
	if _, err := s.RunSummary(cfg); err == nil {
		t.Error("non-adaptive env in Envs should error")
	}
	cfg = tinyConfig()
	cfg.Apps = []string{"not-a-benchmark"}
	if _, err := s.RunSummary(cfg); err == nil {
		t.Error("unknown app should error")
	}
}

func TestRunSummaryFuzzy(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training")
	}
	s := newSim(t)
	cfg := tinyConfig()
	cfg.Chips = 1
	cfg.Envs = []Environment{TSASV}
	cfg.Modes = []Mode{FuzzyDyn, ExhDyn}
	cfg.Training.Examples = 700
	cfg.Training.Fuzzy.Epochs = 3
	sum, err := s.RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := sum.CellFor(TSASV, FuzzyDyn)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sum.CellFor(TSASV, ExhDyn)
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: the difference between fuzzy and exhaustive is practically
	// negligible at the paper's training budget (10,000 examples); at this
	// test's tiny budget we only require the gap to stay within ~10%.
	if math.Abs(fz.FRel-ex.FRel) > 0.12 {
		t.Errorf("Fuzzy-Dyn %v far from Exh-Dyn %v", fz.FRel, ex.FRel)
	}
	// Outcome fractions must be a distribution.
	total := 0.0
	for _, fr := range fz.Outcomes {
		total += fr
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("outcome fractions sum to %v", total)
	}
}

func TestFigure1Curves(t *testing.T) {
	s := newSim(t)
	res, err := s.Figure1(3)
	if err != nil {
		t.Fatal(err)
	}
	// The with-variation distribution must be wider (spread further right)
	// than the no-variation one: find the rightmost tau with density above
	// a threshold.
	edge := func(pts []CurvePoint) float64 {
		e := 0.0
		for _, p := range pts {
			if p.Y > 1e-3 && p.FRel > e {
				e = p.FRel
			}
		}
		return e
	}
	if edge(res.DelayVar) <= edge(res.DelayNoVar) {
		t.Errorf("variation should spread the delay distribution right: %v vs %v",
			edge(res.DelayVar), edge(res.DelayNoVar))
	}
	// PE curves are nondecreasing.
	for i := 1; i < len(res.StagePE); i++ {
		if res.StagePE[i].Y < res.StagePE[i-1].Y-1e-15 {
			t.Fatal("stage PE curve not monotone")
		}
	}
	// The pipeline curve dominates the single stage (it sums stages).
	for i := range res.StagePE {
		if res.PipelinePE[i].Y < res.StagePE[i].Y-1e-15 {
			t.Fatal("pipeline PE below stage PE")
		}
	}
}

func TestFigure2Curves(t *testing.T) {
	s := newSim(t)
	res, err := s.Figure2(3, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	// (a): Perf(f) has an interior peak.
	peak, last := 0, len(res.Perf)-1
	for i, p := range res.Perf {
		if p.Y > res.Perf[peak].Y {
			peak = i
		}
	}
	if peak == 0 || peak == last {
		t.Errorf("Perf(f) peak at boundary (index %d)", peak)
	}
	// (b) tilt: at frequencies above the error onset (where the rate is
	// meaningful), the LowSlope curve is at or below the normal one. Below
	// the onset both rates are deep in the <1e-12 noise region, where the
	// wall-preserving widened distribution may sit trivially higher.
	for i := range res.TiltBefore {
		if res.TiltBefore[i].Y < 1e-10 {
			continue
		}
		if res.TiltAfter[i].Y > res.TiltBefore[i].Y*1.01+1e-18 {
			t.Errorf("tilt raised PE at f=%v", res.TiltBefore[i].FRel)
		}
	}
	// (c) shift: the downsized queue never errs more.
	for i := range res.ShiftBefore {
		if res.ShiftAfter[i].Y > res.ShiftBefore[i].Y+1e-15 {
			t.Errorf("shift raised PE at f=%v", res.ShiftBefore[i].FRel)
		}
	}
	// (d) reshape: boosting the slow stage lowers the combined PE in the
	// low-f region (curve bottom moves right).
	lowIdx := len(res.ReshapeBefore) / 3
	if res.ReshapeAfter[lowIdx].Y > res.ReshapeBefore[lowIdx].Y {
		t.Error("reshape did not improve the curve bottom")
	}
}

func TestFigure8Shapes(t *testing.T) {
	s := newSim(t)
	plain, err := s.Figure8(3, "swim", false)
	if err != nil {
		t.Fatal(err)
	}
	reshaped, err := s.Figure8(3, "swim", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Subsystem) != s.fp.N() {
		t.Fatalf("expected %d subsystem curves", s.fp.N())
	}
	// §6.1: reshaping moves the performance peak right and up (Point A).
	if reshaped.PeakF <= plain.PeakF {
		t.Errorf("reshaped peak f %v should exceed plain %v", reshaped.PeakF, plain.PeakF)
	}
	if reshaped.PeakPerf < plain.PeakPerf {
		t.Errorf("reshaped peak perf %v should be >= plain %v", reshaped.PeakPerf, plain.PeakPerf)
	}
	// Memory subsystems have steeper error onsets than logic ones: compare
	// the frequency span between PE=1e-8 and PE=1e-2.
	span := func(ser SubsystemSeries) float64 {
		fLo, fHi := -1.0, -1.0
		for _, p := range ser.Points {
			if fLo < 0 && p.Y > 1e-8 {
				fLo = p.FRel
			}
			if fHi < 0 && p.Y > 1e-2 {
				fHi = p.FRel
			}
		}
		if fLo < 0 || fHi < 0 {
			return math.NaN()
		}
		return fHi - fLo
	}
	var memSpan, logicSpan []float64
	for _, ser := range plain.Subsystem {
		sp := span(ser)
		if math.IsNaN(sp) {
			continue
		}
		switch ser.Kind {
		case floorplan.Memory:
			memSpan = append(memSpan, sp)
		case floorplan.Logic:
			logicSpan = append(logicSpan, sp)
		}
	}
	if len(memSpan) == 0 || len(logicSpan) == 0 {
		t.Skip("not enough curves crossed both thresholds on this chip")
	}
	if mean(memSpan) >= mean(logicSpan) {
		t.Errorf("memory onset span %v should be steeper (smaller) than logic %v",
			mean(memSpan), mean(logicSpan))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFigure9Surface(t *testing.T) {
	s := newSim(t)
	pts, err := s.Figure9(3, "swim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty surface")
	}
	// Tradeability: at fixed f, more power never means more errors; at
	// fixed power, higher f never means fewer errors.
	byF := map[float64][]SurfacePoint{}
	byP := map[float64][]SurfacePoint{}
	for _, p := range pts {
		byF[p.FRel] = append(byF[p.FRel], p)
		byP[p.PowerW] = append(byP[p.PowerW], p)
	}
	for f, list := range byF {
		for i := 1; i < len(list); i++ {
			if list[i].PowerW > list[i-1].PowerW && list[i].PE > list[i-1].PE*1.001+1e-18 {
				t.Errorf("at f=%v, PE rose with power budget", f)
			}
		}
	}
	for p, list := range byP {
		for i := 1; i < len(list); i++ {
			if list[i].FRel > list[i-1].FRel && list[i].PE < list[i-1].PE*0.999-1e-18 {
				t.Errorf("at P=%v, PE fell with frequency", p)
			}
		}
	}
}

func TestSingleDomainAblation(t *testing.T) {
	s := newSim(t)
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := s.Profile(app, app.Phases[0])
	if err != nil {
		t.Fatal(err)
	}
	core, err := s.BuildCore(s.Chip(3), TSASV)
	if err != nil {
		t.Fatal(err)
	}
	th := 60 + 273.15
	single := s.SingleDomainFMax(core, prof, th)
	// Per-subsystem domains at the same abstraction level: the minimum of
	// the independent per-subsystem frequency ceilings.
	multi := math.Inf(1)
	for i := 0; i < core.N(); i++ {
		q := core.QueryFor(i, prof, th, tech.QueueFull, tech.FUNormal)
		if f := core.FreqSolve(i, q).FMax; f < multi {
			multi = f
		}
	}
	if single > multi+1e-9 {
		t.Errorf("single ASV domain (%v) cannot beat per-subsystem domains (%v)", single, multi)
	}
	if single <= 0 {
		t.Error("single-domain fmax must be positive")
	}
}

func TestTable2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training")
	}
	s := newSim(t)
	cfg := tinyConfig()
	cfg.Chips = 1
	cfg.Training.Examples = 200
	rows, err := s.RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 freq rows + 2 Vdd rows + 2 Vbb rows.
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		for k, v := range r.AbsErr {
			if v < 0 || math.IsNaN(v) {
				t.Errorf("%s/%s %v error = %v", r.Param, r.Env, k, v)
			}
		}
		if r.Param == "Freq (MHz)" {
			for k, v := range r.PctErr {
				if v > 25 {
					t.Errorf("%s/%s %v frequency error %v%% implausibly large", r.Param, r.Env, k, v)
				}
			}
		}
	}
}

func TestFigure13Configs(t *testing.T) {
	cells := Figure13Configs()
	if len(cells) != 16 {
		t.Fatalf("Figure 13 has 16 bars, got %d", len(cells))
	}
	for _, c := range cells {
		if err := c.Config.Validate(); err != nil {
			t.Errorf("%s: %v", c.Label, err)
		}
		if !c.Config.TimingSpec {
			t.Errorf("%s lacks timing speculation", c.Label)
		}
	}
}

func TestEnvOfConfigRoundTrip(t *testing.T) {
	for _, env := range AdaptiveEnvironments() {
		got, err := envOfConfig(env.Config())
		if err != nil {
			t.Errorf("envOfConfig(%v.Config()): %v", env, err)
		}
		if got != env {
			t.Errorf("envOfConfig(%v.Config()) = %v", env, got)
		}
	}
}

func TestEnvOfConfigRejectsUnknown(t *testing.T) {
	// Outside Table 1 (e.g. the Figure 13 TS+ABB grid, or nonsense combos)
	// there is no environment name; mapping must fail loudly instead of
	// silently reporting TS.
	bad := []tech.Config{
		{TimingSpec: true, ABB: true},
		{TimingSpec: true, FUReplication: true},
		{TimingSpec: true, ABB: true, QueueResize: true, FUReplication: true},
		{},
	}
	for _, cfg := range bad {
		if _, err := envOfConfig(cfg); err == nil {
			t.Errorf("envOfConfig(%+v) accepted a non-Table-1 config", cfg)
		}
	}
}

func TestConservativeProfileDominates(t *testing.T) {
	s := newSim(t)
	apps := []workload.App{}
	for _, n := range []string{"gcc", "crafty"} {
		a, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	worst, err := s.conservativeProfile(workload.Int, apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		for _, ph := range app.Phases {
			p, err := s.Profile(app, ph)
			if err != nil {
				t.Fatal(err)
			}
			if p.CPICompFull > worst.CPICompFull+1e-12 || p.Mr > worst.Mr+1e-12 {
				t.Errorf("conservative profile does not dominate %s/%d", app.Name, ph.Index)
			}
			for i := range p.Activity {
				if p.Activity[i] > worst.Activity[i]+1e-12 {
					t.Errorf("activity %d not dominated for %s/%d", i, app.Name, ph.Index)
				}
			}
		}
	}
	if _, err := s.conservativeProfile(workload.FP, apps); err == nil {
		t.Error("no FP apps should error")
	}
}

func TestOutcomesConfigGridIsValid(t *testing.T) {
	// The Figure 13 grid includes technique sets (e.g. TS+ABB with queue
	// resizing) that are not Table 1 environments; they must still be
	// legal configurations.
	for _, c := range Figure13Configs() {
		cfg := tech.Config{
			TimingSpec:    c.Config.TimingSpec,
			ASV:           c.Config.ASV,
			ABB:           c.Config.ABB,
			QueueResize:   c.Config.QueueResize,
			FUReplication: c.Config.FUReplication,
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.Label, err)
		}
	}
}

func TestRunRetimeComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chip comparison")
	}
	s := newSim(t)
	cmp, err := s.RunRetimeComparison(2, 1000, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	// The §7 sandwich with gains in the published bands.
	if !(cmp.BaselineFRel < cmp.RetimedFRel && cmp.RetimedFRel < cmp.EVALFRel) {
		t.Errorf("ordering violated: %+v", cmp)
	}
	if g := cmp.RetimeGain(); g < 1.03 || g > 1.3 {
		t.Errorf("retiming gain %v outside the plausible band", g)
	}
	if g := cmp.EVALGain(); g < 1.25 {
		t.Errorf("EVAL gain %v implausibly small", g)
	}
	if _, err := s.RunRetimeComparison(0, 1, "gcc"); err == nil {
		t.Error("zero chips should error")
	}
	if _, err := s.RunRetimeComparison(1, 1, "doom"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestRunSchemeComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme comparison")
	}
	rows, err := RunSchemeComparison(1, 1000, "gcc", 15000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d schemes, want 3", len(rows))
	}
	for _, r := range rows {
		if r.FRel < 0.8 || r.FRel > 1.4 {
			t.Errorf("%v: fRel %v implausible", r.Scheme, r.FRel)
		}
		if r.PE > 1e-4*1.01 {
			t.Errorf("%v: PE %g above budget", r.Scheme, r.PE)
		}
		if r.PowerW <= 0 || r.Perf <= 0 {
			t.Errorf("%v: degenerate metrics %+v", r.Scheme, r)
		}
	}
	if _, err := RunSchemeComparison(0, 1, "gcc", 1000); err == nil {
		t.Error("zero chips should error")
	}
}
