// Package core is the top of the EVAL stack: it assembles the variation,
// timing, power, thermal, checker, and adaptation models into per-chip
// processor instances, defines the eight evaluation environments of
// Table 1, and runs the multi-chip, multi-application experiments behind
// every figure and table of the paper's evaluation (§5-6).
package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/checker"
	"repro/internal/floorplan"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

// Environment identifies one of the Table 1 configurations.
type Environment int

const (
	// Baseline: plain processor with variation effects; must run
	// error-free, so it clocks at the worst-case-safe frequency.
	Baseline Environment = iota
	// TS: Baseline plus a Diva checker for timing speculation.
	TS
	// TSASV adds per-subsystem adaptive supply voltage (§3.3.3).
	TSASV
	// TSASVABB adds adaptive body bias on top of ASV.
	TSASVABB
	// TSASVQ adds issue-queue resizing (§3.3.2).
	TSASVQ
	// TSASVQFU adds FU replication (§3.3.1) — the paper's preferred
	// configuration.
	TSASVQFU
	// All enables every technique including ABB.
	All
	// NoVar: idealized plain processor with no variation effects.
	NoVar
	NumEnvironments // sentinel
)

// String names the environment as Table 1 does.
func (e Environment) String() string {
	switch e {
	case Baseline:
		return "Baseline"
	case TS:
		return "TS"
	case TSASV:
		return "TS+ASV"
	case TSASVABB:
		return "TS+ASV+ABB"
	case TSASVQ:
		return "TS+ASV+Q"
	case TSASVQFU:
		return "TS+ASV+Q+FU"
	case All:
		return "ALL"
	case NoVar:
		return "NoVar"
	default:
		return fmt.Sprintf("Environment(%d)", int(e))
	}
}

// Config returns the technique configuration of the environment.
// Baseline and NoVar have no checker and no techniques.
func (e Environment) Config() tech.Config {
	switch e {
	case TS:
		return tech.Config{TimingSpec: true}
	case TSASV:
		return tech.Config{TimingSpec: true, ASV: true}
	case TSASVABB:
		return tech.Config{TimingSpec: true, ASV: true, ABB: true}
	case TSASVQ:
		return tech.Config{TimingSpec: true, ASV: true, QueueResize: true}
	case TSASVQFU:
		return tech.Config{TimingSpec: true, ASV: true, QueueResize: true, FUReplication: true}
	case All:
		return tech.Config{TimingSpec: true, ASV: true, ABB: true, QueueResize: true, FUReplication: true}
	default:
		return tech.Config{}
	}
}

// Adaptive reports whether the environment supports dynamic adaptation.
func (e Environment) Adaptive() bool {
	return e != Baseline && e != NoVar
}

// AdaptiveEnvironments lists the six environments of Figures 10-12 that
// take Static/Fuzzy-Dyn/Exh-Dyn bars.
func AdaptiveEnvironments() []Environment {
	return []Environment{TS, TSASV, TSASVABB, TSASVQ, TSASVQFU, All}
}

// Mode selects how an adaptive environment picks its configuration.
type Mode int

const (
	// Static: one conservative configuration per chip, chosen at test time
	// for worst-case per-class behavior, never changed at run time.
	Static Mode = iota
	// FuzzyDyn: per-phase dynamic adaptation with the fuzzy controllers.
	FuzzyDyn
	// ExhDyn: per-phase dynamic adaptation with the Exhaustive reference.
	ExhDyn
	NumModes // sentinel
)

// String names the mode as the figures do.
func (m Mode) String() string {
	switch m {
	case Static:
		return "Static"
	case FuzzyDyn:
		return "Fuzzy-Dyn"
	case ExhDyn:
		return "Exh-Dyn"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a Simulator.
type Options struct {
	Varius   varius.Params
	Power    power.Params
	Thermal  thermal.Params
	Checker  checker.Config
	Limits   adapt.Limits
	TraceLen int // instructions per phase profile
}

// DefaultOptions returns the Figure 7 evaluation machine.
func DefaultOptions() Options {
	return Options{
		Varius:   varius.DefaultParams(),
		Power:    power.DefaultParams(),
		Thermal:  thermal.DefaultParams(),
		Checker:  checker.DefaultConfig(),
		Limits:   adapt.DefaultLimits(),
		TraceLen: pipeline.DefaultTraceLen,
	}
}

// Simulator owns the shared models and caches of one evaluation setup.
// It is safe for concurrent use by multiple goroutines.
type Simulator struct {
	opts Options
	gen  *varius.Generator
	fp   *floorplan.Floorplan
	pw   *power.Model
	th   *thermal.Model

	// Observability sinks; all nil (disabled, zero-cost) by default.
	obs       *obs.Registry
	tracer    *obs.Tracer
	progressW io.Writer

	// store, when non-nil, persists chips, profiles, and trained solvers
	// across processes (see cache.go and the artifact package).
	store *artifact.Store

	mu       sync.Mutex
	profiles map[profileKey]pipeline.Profile
	simMemo  map[simMemoKey]pipeline.Result
	// prefetched holds chips built ahead of an experiment pool (see
	// prefetch.go); Chip consumes each entry once, so the stash never
	// outlives the handoff from prefetch to first use.
	prefetched map[int64]*varius.ChipMaps
}

type profileKey struct {
	app   string
	trace string
	phase int
}

// simMemoKey identifies one exact pipeline.Simulate invocation at the
// Simulator layer: the trace identity — GenerateTrace is fully determined
// by (mix, length, seed) — plus the effective machine configuration.
// SquashL2Misses is normalized to false for traces containing no L2 miss
// (the flag then cannot affect a single cycle-level decision), so such a
// phase's squashed run is a table lookup of its full-queue run.
type simMemoKey struct {
	seed int64
	n    int
	mix  workload.Mix
	cfg  pipeline.Config
}

// simMemoCap bounds the memo; the full suite needs ~26 apps × phases × 3
// configs, far below it.
const simMemoCap = 1 << 12

// NewSimulator validates the options and builds the shared models.
func NewSimulator(opts Options) (*Simulator, error) {
	gen, err := varius.NewGenerator(opts.Varius)
	if err != nil {
		return nil, err
	}
	fp, err := floorplan.Default(opts.Varius.CoreSide)
	if err != nil {
		return nil, err
	}
	pw, err := power.NewModel(fp, opts.Varius, opts.Power)
	if err != nil {
		return nil, err
	}
	th, err := thermal.NewModel(fp, opts.Varius, pw, opts.Thermal)
	if err != nil {
		return nil, err
	}
	if err := opts.Checker.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Limits.Validate(); err != nil {
		return nil, err
	}
	if opts.TraceLen <= 0 {
		opts.TraceLen = pipeline.DefaultTraceLen
	}
	return &Simulator{
		opts:     opts,
		gen:      gen,
		fp:       fp,
		pw:       pw,
		th:       th,
		profiles: make(map[profileKey]pipeline.Profile),
		simMemo:  make(map[simMemoKey]pipeline.Result),
	}, nil
}

// memoSim wraps pipeline.Simulate in the Simulator's exact-key result
// memo for the trace identified by (mix, seed). Hits and misses appear as
// core.memo.simulate_* counters. The memo returns byte-identical Results:
// keys are exact inputs, and the squash normalization (see simMemoKey)
// only merges configurations that are behaviorally indistinguishable on
// the given trace.
func (s *Simulator) memoSim(mix workload.Mix, seed int64) pipeline.SimFunc {
	return func(trace []pipeline.Instr, cfg pipeline.Config) (pipeline.Result, error) {
		eff := cfg
		if eff.SquashL2Misses && !traceHasL2Miss(trace) {
			eff.SquashL2Misses = false
		}
		key := simMemoKey{seed: seed, n: len(trace), mix: mix, cfg: eff}
		s.mu.Lock()
		r, ok := s.simMemo[key]
		s.mu.Unlock()
		if ok {
			s.obs.Counter("core.memo.simulate_hits").Inc()
			return r, nil
		}
		s.obs.Counter("core.memo.simulate_misses").Inc()
		r, err := pipeline.Simulate(trace, eff)
		if err != nil {
			return r, err
		}
		s.mu.Lock()
		if len(s.simMemo) < simMemoCap {
			s.simMemo[key] = r
		}
		s.mu.Unlock()
		return r, nil
	}
}

func traceHasL2Miss(trace []pipeline.Instr) bool {
	for i := range trace {
		if trace[i].L2Miss {
			return true
		}
	}
	return false
}

// Options returns the simulator's configuration.
func (s *Simulator) Options() Options { return s.opts }

// SetObs attaches a metrics registry; the engine records per-stage
// timers, outcome counters, and worker occupancy into it. A nil registry
// (the default) disables metrics at zero cost.
func (s *Simulator) SetObs(r *obs.Registry) { s.obs = r }

// Obs returns the attached metrics registry (nil when disabled).
func (s *Simulator) Obs() *obs.Registry { return s.obs }

// SetTracer attaches a span tracer recording nested chip → app → phase
// timing; nil disables tracing.
func (s *Simulator) SetTracer(t *obs.Tracer) { s.tracer = t }

// SetProgressWriter makes the multi-chip experiments render live
// per-worker progress to w (normally os.Stderr); nil disables it.
func (s *Simulator) SetProgressWriter(w io.Writer) { s.progressW = w }

// Floorplan returns the core floorplan.
func (s *Simulator) Floorplan() *floorplan.Floorplan { return s.fp }

// Generator returns the variation-map generator.
func (s *Simulator) Generator() *varius.Generator { return s.gen }

// Chip generates chip seed's variation maps (seed < 0 gives the NoVar
// chip). With an artifact store attached the maps are persisted per
// (varius.Params, seed) and later calls — in this or any process — load
// the stored die instead of re-sampling it.
func (s *Simulator) Chip(seed int64) *varius.ChipMaps {
	if seed < 0 {
		return s.gen.NoVarChip()
	}
	// A prefetched chip is handed over exactly once: the experiment pool's
	// first use takes it without a second store decode, and later calls
	// (if any) go through the store as usual. Chips are immutable after
	// generation, so sharing the pointer is safe.
	s.mu.Lock()
	if chip, ok := s.prefetched[seed]; ok {
		delete(s.prefetched, seed)
		s.mu.Unlock()
		return chip
	}
	s.mu.Unlock()
	if chip := s.cachedChip(seed); chip != nil {
		return chip
	}
	return s.gen.Chip(seed)
}

// BuildCore assembles the adaptation view of one chip under an
// environment's technique configuration. Baseline/NoVar (which have no
// checker) are modeled with a plain TS config for machinery purposes; their
// run functions never exploit error tolerance.
func (s *Simulator) BuildCore(chip *varius.ChipMaps, env Environment) (*adapt.Core, error) {
	cfg := env.Config()
	if !cfg.TimingSpec {
		cfg = tech.Config{TimingSpec: true}
	}
	subs, err := s.buildSubsystems(chip)
	if err != nil {
		return nil, err
	}
	return s.coreFromSubsystems(subs, cfg)
}

// buildSubsystems assembles one chip's per-subsystem stage models and
// leakage-effective Vt0 constants. The result is configuration-independent,
// so one assembly can back the cores of every environment of a chip.
func (s *Simulator) buildSubsystems(chip *varius.ChipMaps) ([]adapt.Subsystem, error) {
	subs := make([]adapt.Subsystem, s.fp.N())
	for i, sub := range s.fp.Subsystems {
		stage, err := vats.NewStage(sub, chip, s.opts.Varius)
		if err != nil {
			return nil, err
		}
		_, _, leakEff := chip.RegionVtStats(sub.Rect, s.opts.Varius)
		subs[i] = adapt.Subsystem{Index: i, Sub: sub, Stage: stage, Vt0EffV: leakEff}
	}
	return subs, nil
}

// coreFromSubsystems wraps a subsystem assembly into a core for cfg.
func (s *Simulator) coreFromSubsystems(subs []adapt.Subsystem, cfg tech.Config) (*adapt.Core, error) {
	core, err := adapt.NewCore(subs, s.pw, s.th, s.opts.Checker, cfg, s.opts.Limits)
	if err != nil {
		return nil, err
	}
	core.Obs = s.obs
	return core, nil
}

// Profile returns the (cached) measured profile of one application phase.
func (s *Simulator) Profile(app workload.App, ph workload.Phase) (pipeline.Profile, error) {
	key := profileKey{app: app.Name, trace: app.Trace, phase: ph.Index}
	s.mu.Lock()
	if p, ok := s.profiles[key]; ok {
		s.mu.Unlock()
		s.obs.Counter("core.profile.cache_hits").Inc()
		return p, nil
	}
	s.mu.Unlock()
	// Build outside the lock; profiles are deterministic, so a racing
	// duplicate build writes an identical value. buildProfile goes through
	// the artifact store when one is attached.
	p, err := s.buildProfile(app, ph)
	if err != nil {
		return pipeline.Profile{}, err
	}
	s.mu.Lock()
	s.profiles[key] = p
	s.mu.Unlock()
	return p, nil
}

// profileSeed derives a stable trace seed per (app, phase).
func profileSeed(name string, phase int) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(name) {
		h = (h ^ int64(b)) * 1099511628211
	}
	return h ^ int64(phase)<<32
}
