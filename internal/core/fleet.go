package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/adapt"
	"repro/internal/tech"
	"repro/internal/varius"
	"repro/internal/workload"
)

// This file is the Simulator's fleet surface: the handle-per-chip API the
// internal/fleet event loop schedules over. A ChipHandle owns the
// expensive per-die state (variation maps, stage models, the shared
// PE-table donor) exactly the way RunSummary's chipShared does, but with
// an explicit acquire/release lifetime instead of a pool-scoped
// sync.Once, so a long-running service can admit and retire chips as
// join/leave events arrive. Everything derived per (environment, class)
// — cores, trained fuzzy controllers, static operating points — is
// memoized on the handle under its own lock.

// ChipHandle is one admitted chip's shared state. The immutable parts
// (maps, stage models, FVar) are built once by AcquireChip and then read
// concurrently; the memo maps are guarded by mu; the donor's PE-table
// store is concurrency-safe by construction (see the adapt package
// comment).
type ChipHandle struct {
	seed     int64
	chip     *varius.ChipMaps
	subs     []adapt.Subsystem
	donor    *adapt.Core
	imported int
	fvar     float64

	mu      sync.Mutex
	solvers map[tech.Config]*adapt.FuzzySolver
	fps     map[tech.Config]string
	statics map[staticKey]adapt.OperatingPoint
}

type staticKey struct {
	cfg   tech.Config
	class workload.Class
}

// Seed returns the handle's generator seed.
func (h *ChipHandle) Seed() int64 { return h.seed }

// FVar returns the chip's worst-case-safe relative frequency — the
// Baseline environment's clock.
func (h *ChipHandle) FVar() float64 { return h.fvar }

// AcquireChip builds (or loads) one chip's fleet handle: variation maps,
// stage-model assembly, PE-table donor seeded from the artifact cache,
// and the worst-case-safe frequency. Release with ReleaseChip to write
// accumulated PE tables back.
func (s *Simulator) AcquireChip(seed int64) (*ChipHandle, error) {
	defer s.obs.Timer("core.chip_prep").Start().Stop()
	h := &ChipHandle{
		seed:    seed,
		chip:    s.Chip(seed),
		solvers: make(map[tech.Config]*adapt.FuzzySolver),
		fps:     make(map[tech.Config]string),
		statics: make(map[staticKey]adapt.OperatingPoint),
	}
	var err error
	if h.subs, err = s.buildSubsystems(h.chip); err != nil {
		return nil, err
	}
	// The donor exists only to hold the chip's shared PE-table store; the
	// tables depend on the stage models alone, so its configuration is
	// irrelevant.
	if h.donor, err = s.coreFromSubsystems(h.subs, tech.Config{TimingSpec: true}); err != nil {
		return nil, err
	}
	h.imported = s.loadPETables(h.donor, seed)
	if h.fvar, err = s.ChipFVar(h.chip); err != nil {
		return nil, err
	}
	return h, nil
}

// ReleaseChip retires a handle, persisting any PE-fmax tables its units
// built beyond what AcquireChip imported. The handle must be quiescent
// (no unit still running on its cores).
func (s *Simulator) ReleaseChip(h *ChipHandle) {
	if h == nil {
		return
	}
	s.storePETables(h.donor, h.seed, h.imported)
}

// HandleCore assembles the environment's core over the handle's shared
// stage models and PE-table store. Cores are cheap relative to the
// handle; callers may cache them per worker.
func (s *Simulator) HandleCore(h *ChipHandle, env Environment) (*adapt.Core, error) {
	cfg := env.Config()
	if !cfg.TimingSpec {
		cfg = tech.Config{TimingSpec: true}
	}
	core, err := s.coreFromSubsystems(h.subs, cfg)
	if err != nil {
		return nil, err
	}
	if err := core.SharePETables(h.donor); err != nil {
		return nil, err
	}
	return core, nil
}

// HandleSolver returns the chip's trained fuzzy controllers for cpu's
// technique configuration, training (through the artifact cache) on
// first use and memoizing per configuration afterwards. The memo assumes
// one TrainOptions per handle lifetime — the fleet service trains with
// one fixed option set.
func (s *Simulator) HandleSolver(h *ChipHandle, cpu *adapt.Core, opts adapt.TrainOptions) (*adapt.FuzzySolver, string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sv, ok := h.solvers[cpu.Config]; ok {
		return sv, h.fps[cpu.Config], nil
	}
	sv, err := s.TrainFuzzyCached([]*adapt.Core{cpu}, []int64{h.seed}, opts)
	if err != nil {
		return nil, "", err
	}
	h.solvers[cpu.Config] = sv
	h.fps[cpu.Config] = solverFingerprint(sv)
	return sv, h.fps[cpu.Config], nil
}

// HandleStaticPoint returns the chip's conservative static operating
// point for cpu's configuration and the app's class, choosing it
// (through the artifact cache) on first use.
func (s *Simulator) HandleStaticPoint(h *ChipHandle, cpu *adapt.Core, class workload.Class, apps []workload.App) (adapt.OperatingPoint, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := staticKey{cfg: cpu.Config, class: class}
	if pt, ok := h.statics[k]; ok {
		return pt, nil
	}
	pt, err := s.cachedStaticPoint(cpu, class, apps, h.seed)
	if err != nil {
		return adapt.OperatingPoint{}, err
	}
	h.statics[k] = pt
	return pt, nil
}

// FleetUnit is one schedulable simulation unit: an application, and
// either one phase of it (Phase is the position in App.Phases) or the
// whole phase-weighted app (Phase < 0).
type FleetUnit struct {
	App   workload.App
	Phase int
	// Static is the operating point for Static-mode units (nil
	// otherwise).
	Static *adapt.OperatingPoint
}

// UnitAppRun executes one fleet unit on cpu — through the apprun
// artifact cache, at phase granularity when the unit names a phase. For
// dynamic modes solver picks the algorithm (its weight fingerprint keys
// the cache); Static mode requires u.Static.
func (s *Simulator) UnitAppRun(seed int64, cpu *adapt.Core, mode Mode, solver adapt.Solver, u FleetUnit) (AppRun, error) {
	fp := ""
	switch mode {
	case Static:
		if u.Static == nil {
			return AppRun{}, fmt.Errorf("core: static fleet unit %q needs an operating point", u.App.Name)
		}
	case FuzzyDyn, ExhDyn:
		fp = solverFingerprint(solver)
	default:
		return AppRun{}, fmt.Errorf("core: fleet unit mode %v", mode)
	}
	if u.Phase >= len(u.App.Phases) {
		return AppRun{}, fmt.Errorf("core: %q has no phase %d", u.App.Name, u.Phase)
	}
	return s.cachedAppRun(seed, cpu, u.App, mode, fp, u.Static, u.Phase, func() (AppRun, error) {
		if u.Phase < 0 {
			switch mode {
			case Static:
				return s.RunStatic(cpu, u.App, *u.Static)
			default:
				return s.RunDynamic(cpu, u.App, mode, solver)
			}
		}
		return s.runPhase(cpu, u.App, u.App.Phases[u.Phase], mode, solver, u.Static)
	})
}

// runPhase runs one phase as its own unit, weighted as a whole app
// (weight 1): the fleet's phase-change event granularity.
func (s *Simulator) runPhase(cpu *adapt.Core, app workload.App, ph workload.Phase,
	mode Mode, solver adapt.Solver, static *adapt.OperatingPoint) (AppRun, error) {
	env, err := envOfConfig(cpu.Config)
	if err != nil {
		return AppRun{}, err
	}
	prof, err := s.Profile(app, ph)
	if err != nil {
		return AppRun{}, err
	}
	phaseSW := s.obs.Timer("core.phase.adapt").Start()
	var res adapt.RetuneResult
	if mode == Static {
		res, err = staticRetune(cpu, *static, prof)
	} else {
		res, err = cpu.AdaptSteady(prof, solver)
	}
	phaseSW.Stop()
	if err != nil {
		return AppRun{}, fmt.Errorf("core: %s %s phase %d: %w", env, app.Name, ph.Index, err)
	}
	run := AppRun{App: app.Name, Env: env, Mode: mode}
	accumulate(&run, 1, res)
	return run, nil
}

// PeekAppRuns probes the artifact store for finished results of a batch
// of fleet units in one indexed pass, without building anything: out[i]
// reports whether unit i would replay from cache. All units share one
// (chip, core, mode, solver) context — the fleet batches exactly that
// shape. Uncacheable units (and a nil store) report false.
func (s *Simulator) PeekAppRuns(seed int64, cpu *adapt.Core, mode Mode, solverFP string, units []FleetUnit) []bool {
	keys := make([]string, len(units))
	for i, u := range units {
		keys[i] = s.appRunKey(seed, cpu.Config, u.App, mode, solverFP, u.Static, u.Phase)
	}
	return s.store.ContainsBatch(apprunKind, keys)
}

// ParseEnvironment resolves a Table 1 environment name ("TS+ASV+Q+FU",
// case-insensitive) to its Environment.
func ParseEnvironment(name string) (Environment, error) {
	for e := Environment(0); e < NumEnvironments; e++ {
		if strings.EqualFold(name, e.String()) {
			return e, nil
		}
	}
	return 0, fmt.Errorf("core: unknown environment %q", name)
}

// ParseMode resolves a mode name: "static", "fuzzy"/"fuzzy-dyn",
// "exh"/"exh-dyn" (case-insensitive).
func ParseMode(name string) (Mode, error) {
	switch strings.ToLower(name) {
	case "static":
		return Static, nil
	case "fuzzy", "fuzzy-dyn":
		return FuzzyDyn, nil
	case "exh", "exh-dyn":
		return ExhDyn, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q", name)
	}
}
