package core

import (
	"repro/internal/artifact"
	"repro/internal/workload"
)

// GeneratedApps lowers a workload spec at a seed to runnable apps. With
// an artifact store attached, the generated trace is persisted under its
// (spec, seed) key, so later runs — in this or any process — replay the
// stored canonical document instead of regenerating it; either path
// yields byte-identical traces, and thus identical apps, profiles, and
// experiment rows. The returned apps carry the trace's content hash as
// provenance (see workload.App.Trace).
func (s *Simulator) GeneratedApps(spec workload.Spec, seed int64) ([]workload.App, error) {
	if s.store == nil {
		return workload.GenerateApps(spec, seed)
	}
	doc, err := TraceArtifact(s.store, spec, seed)
	if err != nil {
		return nil, err
	}
	t, err := workload.DecodeTrace(doc)
	if err != nil {
		return nil, err
	}
	return t.Lower()
}

// TraceArtifact returns the canonical encoded TraceV1 document of (spec,
// seed) through the artifact store: a hit replays the stored document, a
// miss generates, persists, and returns it. A nil store (or an unkeyable
// spec) generates directly. This is the shared entry point behind both
// the simulator's generated workloads and tracegen's -cache-dir flag, so
// a trace either tool produces is the byte-identical document the other
// replays.
func TraceArtifact(store *artifact.Store, spec workload.Spec, seed int64) ([]byte, error) {
	encode := func() ([]byte, error) {
		t, err := workload.Generate(spec, seed)
		if err != nil {
			return nil, err
		}
		return t.Encode()
	}
	if store == nil {
		return encode()
	}
	key, err := artifact.Key(traceKind, spec, seed)
	if err != nil {
		return encode()
	}
	var doc []byte
	err = store.GetOrBuild(traceKind, key,
		func(payload []byte) error {
			// Reject corrupt or stale entries here so the store's
			// degradation path (count, rebuild, overwrite) handles them.
			if _, derr := workload.DecodeTrace(payload); derr != nil {
				return derr
			}
			doc = append([]byte(nil), payload...)
			return nil
		},
		func() ([]byte, error) {
			enc, gerr := encode()
			if gerr != nil {
				return nil, gerr
			}
			doc = enc
			return enc, nil
		})
	if err != nil {
		return nil, err
	}
	return doc, nil
}
