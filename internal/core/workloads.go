package core

import (
	"repro/internal/artifact"
	"repro/internal/workload"
)

// GeneratedApps lowers a workload spec at a seed to runnable apps. With
// an artifact store attached, the generated trace is persisted under its
// (spec, seed) key, so later runs — in this or any process — replay the
// stored canonical document instead of regenerating it; either path
// yields byte-identical traces, and thus identical apps, profiles, and
// experiment rows. The returned apps carry the trace's content hash as
// provenance (see workload.App.Trace).
func (s *Simulator) GeneratedApps(spec workload.Spec, seed int64) ([]workload.App, error) {
	if s.store == nil {
		return workload.GenerateApps(spec, seed)
	}
	key, err := artifact.Key(traceKind, spec, seed)
	if err != nil {
		return workload.GenerateApps(spec, seed)
	}
	var doc []byte
	err = s.store.GetOrBuild(traceKind, key,
		func(payload []byte) error {
			// Reject corrupt or stale entries here so the store's
			// degradation path (count, rebuild, overwrite) handles them.
			if _, derr := workload.DecodeTrace(payload); derr != nil {
				return derr
			}
			doc = append([]byte(nil), payload...)
			return nil
		},
		func() ([]byte, error) {
			t, gerr := workload.Generate(spec, seed)
			if gerr != nil {
				return nil, gerr
			}
			enc, gerr := t.Encode()
			if gerr != nil {
				return nil, gerr
			}
			doc = enc
			return enc, nil
		})
	if err != nil {
		return nil, err
	}
	t, err := workload.DecodeTrace(doc)
	if err != nil {
		return nil, err
	}
	return t.Lower()
}
