package core

import (
	"repro/internal/obs"
	"repro/internal/varius"
	"repro/internal/workload"
)

// prefetchArtifacts warms the cold path's shared inputs before an
// experiment's main pool starts: the chip variation maps of every seed the
// run will touch (only with an artifact store attached — without one the
// built chip has nowhere to live and would just be rebuilt) and every
// (app, phase) performance profile, which lands in the in-memory profile
// cache either way. The units fan out over the run's worker budget, so
// store misses build concurrently with each other and overlap the store's
// background flusher, instead of serializing at first use inside the
// experiment pool's per-chip sync.Once sections.
//
// Every unit is a pure function of (parameters, seed), so warming in any
// order — or not at all — cannot change a result; failures are left for
// the experiment's own calls to surface with proper context.
func (s *Simulator) prefetchArtifacts(cfg ExperimentConfig, apps []workload.App) {
	var units []func()
	if s.store != nil {
		for ci := 0; ci < cfg.Chips; ci++ {
			seed := cfg.SeedBase + int64(ci)
			units = append(units, func() {
				chip := s.cachedChip(seed)
				if chip == nil {
					return
				}
				// Stash for a one-shot handoff to the pool's first
				// Chip(seed) call, which would otherwise decode the chip
				// from the store a second time.
				s.mu.Lock()
				if s.prefetched == nil {
					s.prefetched = make(map[int64]*varius.ChipMaps)
				}
				s.prefetched[seed] = chip
				s.mu.Unlock()
			})
		}
	}
	for _, app := range apps {
		for _, ph := range app.Phases {
			app, ph := app, ph
			units = append(units, func() { _, _ = s.Profile(app, ph) })
		}
	}
	if len(units) == 0 {
		return
	}
	defer s.obs.Timer("core.prefetch").Start().Stop()
	obs.RunPool(s.obs, "core.prefetch", cfg.Workers, len(units), func(_, u int) {
		units[u]()
	})
}
