package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/obs"
)

// cacheTestConfig is a small but full-stack experiment: both workload
// classes (Static needs an Int and an FP app), one adaptive environment,
// and the Static + Fuzzy-Dyn modes so chips, profiles, AND trained
// solvers all flow through the store.
func cacheTestConfig() (Options, ExperimentConfig) {
	opts := DefaultOptions()
	opts.TraceLen = 6000
	cfg := DefaultExperimentConfig()
	cfg.Chips = 1
	cfg.SeedBase = 4242
	cfg.Apps = []string{"gcc", "swim"}
	cfg.Envs = []Environment{TSASV}
	cfg.Modes = []Mode{Static, FuzzyDyn}
	cfg.Training.Examples = 60
	cfg.Workers = 2
	return opts, cfg
}

// runSummaryWithCache runs the experiment against dir ("" = no cache) and
// returns the serialized summary plus the run's cache counters.
func runSummaryWithCache(t *testing.T, dir string) (summary []byte, hits, misses int64) {
	t.Helper()
	opts, cfg := cacheTestConfig()
	sim, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	var reg *obs.Registry
	if dir != "" {
		reg = obs.NewRegistry()
		store, err := artifact.Open(dir, artifact.Options{Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		// Close, not just Flush: the warm run opens a fresh store on the
		// same directory and must see every cold-run write on disk.
		defer store.Close()
		sim.SetArtifacts(store)
	}
	sum, err := sim.RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	return blob, reg.Counter("artifact.cache.hits").Value(),
		reg.Counter("artifact.cache.misses").Value()
}

// TestArtifactCacheColdWarmGolden is the determinism contract of the
// artifact store: a cold run (empty cache), a warm run (populated cache),
// and an uncached run of the same experiment must be byte-identical, and
// the warm run must actually hit the cache instead of rebuilding.
func TestArtifactCacheColdWarmGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	dir := t.TempDir()
	cold, coldHits, coldMisses := runSummaryWithCache(t, dir)
	if coldMisses == 0 {
		t.Fatal("cold run reported no misses; the store is not being consulted")
	}
	// The prefetch pass builds each chip once (a miss) and the experiment
	// pool then loads it back (a hit), so a cold run hits at most once per
	// chip; anything beyond that means the cache was not actually empty.
	if _, cfg := cacheTestConfig(); coldHits > int64(cfg.Chips) {
		t.Fatalf("cold run reported %d hits from an empty cache", coldHits)
	}
	warm, warmHits, warmMisses := runSummaryWithCache(t, dir)
	if warmHits == 0 {
		t.Fatal("warm run reported no hits")
	}
	if warmMisses != 0 {
		t.Fatalf("warm run rebuilt %d artifacts; the cache is not keying stably", warmMisses)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold and warm summaries differ:\n cold %s\n warm %s", cold, warm)
	}
	uncached, _, _ := runSummaryWithCache(t, "")
	if !bytes.Equal(cold, uncached) {
		t.Fatalf("cached and uncached summaries differ:\n cached   %s\n uncached %s", cold, uncached)
	}
}

// TestCachedChipMatchesGenerated: a chip loaded through the store is
// byte-identical to a freshly generated one.
func TestCachedChipMatchesGenerated(t *testing.T) {
	opts, _ := cacheTestConfig()
	fresh, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	cached.SetArtifacts(store)
	const seed = 31
	want, err := json.Marshal(fresh.Chip(seed))
	if err != nil {
		t.Fatal(err)
	}
	cached.Chip(seed) // populate
	got, err := json.Marshal(cached.Chip(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("cache-loaded chip differs from a generated one")
	}
}

// TestTrainFuzzyCachedRoundTrip: a solver loaded from the store predicts
// identically to the solver that was trained — including the freqBias and
// minBiasComp correction terms, which the serialization must carry.
func TestTrainFuzzyCachedRoundTrip(t *testing.T) {
	opts, cfg := cacheTestConfig()
	sim, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	sim.SetArtifacts(store)
	seed := cfg.SeedBase
	chip := sim.Chip(seed)
	core1, err := sim.BuildCore(chip, TSASV)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := sim.TrainFuzzyCached([]*adapt.Core{core1}, []int64{seed}, cfg.Training)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := sim.TrainFuzzyCached([]*adapt.Core{core1}, []int64{seed}, cfg.Training)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(trained)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cache-loaded solver serializes differently from the trained one")
	}
}
