package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/obs"
)

// cacheTestConfig is a small but full-stack experiment: both workload
// classes (Static needs an Int and an FP app), one adaptive environment,
// and the Static + Fuzzy-Dyn modes so chips, profiles, AND trained
// solvers all flow through the store.
func cacheTestConfig() (Options, ExperimentConfig) {
	opts := DefaultOptions()
	opts.TraceLen = 6000
	cfg := DefaultExperimentConfig()
	cfg.Chips = 1
	cfg.SeedBase = 4242
	cfg.Apps = []string{"gcc", "swim"}
	cfg.Envs = []Environment{TSASV}
	cfg.Modes = []Mode{Static, FuzzyDyn}
	cfg.Training.Examples = 60
	cfg.Workers = 2
	return opts, cfg
}

// runSummaryWithCache runs the experiment against dir ("" = no cache) and
// returns the serialized summary plus the run's store metrics registry
// (nil counters read as zero for the uncached case).
func runSummaryWithCache(t *testing.T, dir string) (summary []byte, reg *obs.Registry) {
	t.Helper()
	opts, cfg := cacheTestConfig()
	sim, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	if dir != "" {
		reg = obs.NewRegistry()
		store, err := artifact.Open(dir, artifact.Options{Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		// Close, not just Flush: the warm run opens a fresh store on the
		// same directory and must see every cold-run write on disk.
		defer store.Close()
		sim.SetArtifacts(store)
	}
	sum, err := sim.RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	return blob, reg
}

// TestArtifactCacheColdWarmGolden is the determinism contract of the
// artifact store: a cold run (empty cache), a warm run (populated cache),
// and an uncached run of the same experiment must be byte-identical, and
// the warm run must actually hit the cache instead of rebuilding.
func TestArtifactCacheColdWarmGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	dir := t.TempDir()
	cold, coldReg := runSummaryWithCache(t, dir)
	coldHits := coldReg.Counter("artifact.cache.hits").Value()
	if coldReg.Counter("artifact.cache.misses").Value() == 0 {
		t.Fatal("cold run reported no misses; the store is not being consulted")
	}
	// The prefetch pass builds each chip once (a miss) and the experiment
	// pool then loads it back (a hit), so a cold run hits at most once per
	// chip; anything beyond that means the cache was not actually empty.
	if _, cfg := cacheTestConfig(); coldHits > int64(cfg.Chips) {
		t.Fatalf("cold run reported %d hits from an empty cache", coldHits)
	}
	warm, warmReg := runSummaryWithCache(t, dir)
	if warmReg.Counter("artifact.cache.hits").Value() == 0 {
		t.Fatal("warm run reported no hits")
	}
	if n := warmReg.Counter("artifact.cache.misses").Value(); n != 0 {
		t.Fatalf("warm run rebuilt %d artifacts; the cache is not keying stably", n)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold and warm summaries differ:\n cold %s\n warm %s", cold, warm)
	}
	uncached, _ := runSummaryWithCache(t, "")
	if !bytes.Equal(cold, uncached) {
		t.Fatalf("cached and uncached summaries differ:\n cached   %s\n uncached %s", cold, uncached)
	}
}

// TestArtifactCacheMigratedGolden is the v1 read-through contract at
// experiment level: a store seeded with legacy one-file-per-artifact JSON
// entries must serve them (migrating each into the packed layout), produce
// a byte-identical summary, and leave a store that serves the next run
// from packfiles alone.
func TestArtifactCacheMigratedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	opts, cfg := cacheTestConfig()
	dir := t.TempDir()
	// Seed a v1-layout store: every evaluation chip as a legacy JSON entry,
	// exactly what a pre-packfile cache directory held.
	fresh, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < cfg.Chips; ci++ {
		seed := cfg.SeedBase + int64(ci)
		key, err := artifact.Key(chipKind, opts.Varius, seed)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := json.Marshal(fresh.Chip(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := artifact.WriteLegacyEntry(dir, chipKind, key, payload); err != nil {
			t.Fatal(err)
		}
	}
	migrated, reg := runSummaryWithCache(t, dir)
	if n := reg.Counter("artifact.cache.migrated").Value(); n != int64(cfg.Chips) {
		t.Fatalf("migrated %d legacy entries, want %d", n, cfg.Chips)
	}
	if n := reg.Counter("artifact.cache.chip.hits").Value(); n < int64(cfg.Chips) {
		t.Fatalf("chip hits %d; legacy entries were rebuilt instead of read through", n)
	}
	uncached, _ := runSummaryWithCache(t, "")
	if !bytes.Equal(migrated, uncached) {
		t.Fatalf("migrated and uncached summaries differ:\n migrated %s\n uncached %s", migrated, uncached)
	}
	// The rewrite is durable: a second run hits without migrating again.
	warm, warmReg := runSummaryWithCache(t, dir)
	if n := warmReg.Counter("artifact.cache.migrated").Value(); n != 0 {
		t.Fatalf("second run migrated %d entries again", n)
	}
	if n := warmReg.Counter("artifact.cache.misses").Value(); n != 0 {
		t.Fatalf("second run rebuilt %d artifacts", n)
	}
	if !bytes.Equal(migrated, warm) {
		t.Fatal("migrated-store summary changed between runs")
	}
}

// TestColdCacheOverhead bounds the write-path tax: a cold run that
// populates the store (encodes, appends, flushes, closes) must stay
// within 10% of the uncached wall time, plus a small absolute slack that
// damps scheduler noise at this test's scale. Min-of-2 on both sides
// filters one-off stalls.
func TestColdCacheOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	run := func(dir string) time.Duration {
		start := time.Now()
		runSummaryWithCache(t, dir)
		return time.Since(start)
	}
	uncached, cold := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 2; i++ {
		if d := run(""); d < uncached {
			uncached = d
		}
		if d := run(t.TempDir()); d < cold {
			cold = d
		}
	}
	limit := uncached + uncached/10 + 300*time.Millisecond
	t.Logf("uncached %v, cold-with-cache %v (limit %v)", uncached, cold, limit)
	if cold > limit {
		t.Fatalf("cold cache overhead: %v with cache vs %v uncached (limit %v)", cold, uncached, limit)
	}
}

// TestCachedChipMatchesGenerated: a chip loaded through the store is
// byte-identical to a freshly generated one.
func TestCachedChipMatchesGenerated(t *testing.T) {
	opts, _ := cacheTestConfig()
	fresh, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	cached.SetArtifacts(store)
	const seed = 31
	want, err := json.Marshal(fresh.Chip(seed))
	if err != nil {
		t.Fatal(err)
	}
	cached.Chip(seed) // populate
	got, err := json.Marshal(cached.Chip(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("cache-loaded chip differs from a generated one")
	}
}

// TestTrainFuzzyCachedRoundTrip: a solver loaded from the store predicts
// identically to the solver that was trained — including the freqBias and
// minBiasComp correction terms, which the serialization must carry.
func TestTrainFuzzyCachedRoundTrip(t *testing.T) {
	opts, cfg := cacheTestConfig()
	sim, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	sim.SetArtifacts(store)
	seed := cfg.SeedBase
	chip := sim.Chip(seed)
	core1, err := sim.BuildCore(chip, TSASV)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := sim.TrainFuzzyCached([]*adapt.Core{core1}, []int64{seed}, cfg.Training)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := sim.TrainFuzzyCached([]*adapt.Core{core1}, []int64{seed}, cfg.Training)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(trained)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cache-loaded solver serializes differently from the trained one")
	}
}

// runCached runs one experiment closure against dir ("" = no cache) and
// returns its serialized result plus the run's store registry.
func runCached(t *testing.T, dir string, run func(*Simulator) (any, error)) ([]byte, *obs.Registry) {
	t.Helper()
	opts, _ := cacheTestConfig()
	sim, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	var reg *obs.Registry
	if dir != "" {
		reg = obs.NewRegistry()
		store, err := artifact.Open(dir, artifact.Options{Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		sim.SetArtifacts(store)
	}
	out, err := run(sim)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return blob, reg
}

// coldWarmGolden drives the cold/warm/uncached contract for one
// experiment and asserts the named artifact kind is what the warm run
// replays from.
func coldWarmGolden(t *testing.T, kind string, units int64, run func(*Simulator) (any, error)) {
	t.Helper()
	dir := t.TempDir()
	cold, coldReg := runCached(t, dir, run)
	if n := coldReg.Counter("artifact.cache." + kind + ".misses").Value(); n != units {
		t.Fatalf("cold run built %d %s units, want %d", n, kind, units)
	}
	warm, warmReg := runCached(t, dir, run)
	if n := warmReg.Counter("artifact.cache." + kind + ".hits").Value(); n != units {
		t.Fatalf("warm run replayed %d %s units, want %d", n, kind, units)
	}
	if n := warmReg.Counter("artifact.cache.misses").Value(); n != 0 {
		t.Fatalf("warm run rebuilt %d artifacts; the %s key is unstable", n, kind)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold and warm %s results differ:\n cold %s\n warm %s", kind, cold, warm)
	}
	uncached, _ := runCached(t, "", run)
	if !bytes.Equal(cold, uncached) {
		t.Fatalf("cached and uncached %s results differ:\n cached   %s\n uncached %s", kind, cold, uncached)
	}
}

// TestOutcomesCacheColdWarmGolden: the Figure 13 outcome sweep caches one
// outcomes@1 unit per (config, chip), and a warm run replays the counts
// byte-identically without re-running the controller.
func TestOutcomesCacheColdWarmGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	_, cfg := cacheTestConfig()
	units := int64(len(Figure13Configs()) * cfg.Chips)
	coldWarmGolden(t, "outcomes", units, func(sim *Simulator) (any, error) {
		return sim.RunOutcomes(cfg)
	})
}

// TestTable2CacheColdWarmGolden: the Table 2 accuracy sweep caches one
// table2@1 unit per (environment, chip); its key carries the pre-drawn
// query set, so the replay is exact.
func TestTable2CacheColdWarmGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	_, cfg := cacheTestConfig()
	units := int64(4 * cfg.Chips) // the four Table 2 environments
	coldWarmGolden(t, "table2", units, func(sim *Simulator) (any, error) {
		return sim.RunTable2(cfg)
	})
}
