package core

import (
	"reflect"
	"testing"
)

// acceptanceConfig is the fixed-seed invocation the PR's determinism
// guarantee is stated against: `summary -chips 2 -apps gcc,swim
// -examples 300 -trainchips 1 -seed 1000`.
func acceptanceConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.Chips = 2
	cfg.SeedBase = 1000
	cfg.TrainChips = 1
	cfg.Apps = []string{"gcc", "swim"}
	cfg.Training.Examples = 300
	return cfg
}

// TestSummaryWorkerDeterminism: the (chip × env) work queue must yield a
// Summary that is exactly — not approximately — independent of the worker
// count. Every printed digit of the summary/fig10-12 output is a pure
// function of this struct, so DeepEqual here pins the CLI output bytes.
func TestSummaryWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full acceptance-config experiment")
	}
	cfg := acceptanceConfig()
	cfg.Workers = 1
	ref, err := newSim(t).RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := newSim(t).RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, par) {
		t.Errorf("summary at workers=8 differs from workers=1:\n  w1: %+v\n  w8: %+v", ref, par)
	}
}

// TestOutcomesWorkerDeterminism: Figure 13 fractions at workers=1 vs 8.
// Counts are integers, but the reduction is index-ordered anyway so the
// float divisions see identical operands.
func TestOutcomesWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training across 16 configs")
	}
	cfg := DefaultExperimentConfig()
	cfg.Chips = 1
	cfg.SeedBase = 1000
	cfg.Apps = []string{"gcc"}
	cfg.Training.Examples = 60
	cfg.Training.Fuzzy.Epochs = 2
	cfg.Workers = 1
	ref, err := newSim(t).RunOutcomes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := newSim(t).RunOutcomes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, par) {
		t.Errorf("fig13 outcomes at workers=8 differ from workers=1")
	}
}

// TestTable2WorkerDeterminism: the Table 2 accuracy rows at workers=1 vs
// 8. Each environment's query stream spans its chips, so this exercises
// the pre-drawn RNG chunking across (env × chip) unit boundaries.
func TestTable2WorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training across envs and chips")
	}
	cfg := DefaultExperimentConfig()
	cfg.Chips = 2
	cfg.SeedBase = 1000
	cfg.Training.Examples = 60
	cfg.Training.Fuzzy.Epochs = 2
	cfg.Workers = 1
	ref, err := newSim(t).RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := newSim(t).RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, par) {
		t.Errorf("table2 rows at workers=8 differ from workers=1")
	}
}
