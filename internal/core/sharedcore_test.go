package core

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/workload"
)

// TestSharedCoreWorkerPath drives the experiment fan-out with more chips
// than workers so worker goroutines run concurrently, each owning its
// chip's shared-assembly cores (one stage build and one PE-table store per
// chip, shared across environments). Under `go test -race` this exercises
// the adapt package's ownership rule end to end: solver caches are
// per-chip and single-goroutine, concurrency is across chips only.
func TestSharedCoreWorkerPath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chip experiment")
	}
	s := newSim(t)
	cfg := DefaultExperimentConfig()
	cfg.Chips = 3
	cfg.Workers = 3
	cfg.Apps = []string{"gcc", "swim"}
	cfg.Envs = []Environment{TSASV, All}
	cfg.Modes = []Mode{Static, ExhDyn}
	sum, err := s.RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The same experiment serially must agree exactly: per-chip results
	// cannot depend on worker interleaving.
	s2 := newSim(t)
	cfg.Workers = 1
	sum2, err := s2.RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range cfg.Envs {
		for _, mode := range cfg.Modes {
			a, err := sum.CellFor(env, mode)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sum2.CellFor(env, mode)
			if err != nil {
				t.Fatal(err)
			}
			if a.FRel != b.FRel || a.PerfR != b.PerfR || a.PowerW != b.PowerW {
				t.Errorf("%v/%v: parallel %+v != serial %+v", env, mode, a, b)
			}
		}
	}
}

// TestRunDynamicRejectsNonTableConfig: a core built outside the Table 1
// set must be refused by the environment-labeled run paths.
func TestRunDynamicRejectsNonTableConfig(t *testing.T) {
	s := newSim(t)
	core, err := s.BuildCoreWithConfig(s.Chip(3), Figure13Configs()[1].Config) // TS+ABB
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunDynamic(core, app, ExhDyn, adapt.Exhaustive{}); err == nil {
		t.Error("RunDynamic accepted a non-Table-1 config")
	}
	if _, err := s.RunStatic(core, app, adapt.OperatingPoint{FCore: 1}); err == nil {
		t.Error("RunStatic accepted a non-Table-1 config")
	}
}
