package core

import (
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/pipeline"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

// AppRun is the phase-weighted result of running one application on one
// chip in one environment/mode.
type AppRun struct {
	App  string
	Env  Environment
	Mode Mode
	// FRel is the (phase-weighted) relative core frequency.
	FRel float64
	// Perf is absolute Eq. 5 performance (relative instructions/s);
	// normalize against the NoVar run of the same app for PerfR.
	Perf float64
	// PowerW is the total processor power (core + L1 + L2 + checker).
	PowerW float64
	// PE is the error rate per instruction.
	PE float64
	// Outcomes counts controller-invocation outcomes across phases
	// (dynamic modes only).
	Outcomes [adapt.NumOutcomes]int
	// SmallQueueFrac and LowSlopeFrac are the fraction of time spent with
	// the downsized queue / LowSlope FU enabled.
	SmallQueueFrac float64
	LowSlopeFrac   float64
}

// designCorner is the worst-case operating condition frequency binning
// assumes (nominal supply at TMAX).
func (s *Simulator) designCorner() vats.Cond {
	return vats.Cond{VddV: s.opts.Varius.VddNomV, VbbV: 0, TK: s.opts.Varius.TOpRefK}
}

// ChipFVar returns a chip's worst-case-safe relative frequency: the minimum
// over subsystems of the error-free frequency at the design corner. This is
// the Baseline environment's clock and the quantity whose mean across chips
// is the paper's 78%.
func (s *Simulator) ChipFVar(chip *varius.ChipMaps) (float64, error) {
	pl, err := vats.NewPipeline(s.fp, chip, s.opts.Varius)
	if err != nil {
		return 0, err
	}
	corner := s.designCorner()
	min := math.Inf(1)
	for _, st := range pl.Stages {
		if fv := st.Eval(corner, vats.IdentityVariant()).FVar(); fv < min {
			min = fv
		}
	}
	return min, nil
}

// runFixed evaluates an application at a fixed frequency with nominal
// supplies and no checker — the Baseline and NoVar environments. vt0Eff
// supplies each subsystem's leakage-effective Vt0.
func (s *Simulator) runFixed(app workload.App, fRel float64, env Environment, vt0Eff []float64) (AppRun, error) {
	run := AppRun{App: app.Name, Env: env, FRel: fRel}
	// One warm-started solver per call: successive phases of an app sit at
	// nearby operating points, and a local solver keeps the pool goroutines
	// that share s.th isolated from each other.
	sv := thermal.NewSolver(s.th)
	sv.Obs = s.obs
	ins := make([]thermal.SubsystemInput, s.fp.N())
	for _, ph := range app.Phases {
		prof, err := s.Profile(app, ph)
		if err != nil {
			return AppRun{}, err
		}
		phaseSW := s.obs.Timer("core.phase.eval").Start()
		perf := pipeline.Perf(pipeline.PerfInputs{
			FRel:        fRel,
			CPIComp:     prof.CPICompFull,
			Mr:          prof.Mr,
			MpNomCycles: prof.MpNomCycles,
		})
		for i, sub := range s.fp.Subsystems {
			ins[i] = thermal.SubsystemInput{
				Index:  i,
				Vt0Eff: vt0Eff[i],
				AlphaF: prof.Activity[sub.ID],
				VddV:   s.opts.Varius.VddNomV,
				FRel:   fRel,
			}
		}
		st, err := sv.CoreSteady(ins, fRel)
		phaseSW.Stop()
		if err != nil {
			return AppRun{}, fmt.Errorf("core: %s %s: %w", env, app.Name, err)
		}
		run.Perf += ph.Weight * perf
		run.PowerW += ph.Weight * st.TotalW
	}
	return run, nil
}

// chipVt0Effs extracts every subsystem's leakage-effective Vt0.
func (s *Simulator) chipVt0Effs(chip *varius.ChipMaps) []float64 {
	out := make([]float64, s.fp.N())
	for i, sub := range s.fp.Subsystems {
		_, _, leakEff := chip.RegionVtStats(sub.Rect, s.opts.Varius)
		out[i] = leakEff
	}
	return out
}

// RunNoVar runs one application on the idealized no-variation processor at
// the nominal frequency — the normalization reference of Figures 10-12.
func (s *Simulator) RunNoVar(app workload.App) (AppRun, error) {
	return s.runFixed(app, 1.0, NoVar, s.chipVt0Effs(s.gen.NoVarChip()))
}

// RunBaseline runs one application on a variation-afflicted chip clocked at
// its worst-case-safe frequency, with no checker and no techniques.
func (s *Simulator) RunBaseline(chip *varius.ChipMaps, app workload.App) (AppRun, error) {
	fvar, err := s.ChipFVar(chip)
	if err != nil {
		return AppRun{}, err
	}
	return s.runFixed(app, fvar, Baseline, s.chipVt0Effs(chip))
}

// RunDynamic runs one application with per-phase dynamic adaptation.
func (s *Simulator) RunDynamic(core *adapt.Core, app workload.App, mode Mode, solver adapt.Solver) (AppRun, error) {
	if mode != FuzzyDyn && mode != ExhDyn {
		return AppRun{}, fmt.Errorf("core: RunDynamic requires a dynamic mode, got %v", mode)
	}
	env, err := envOfConfig(core.Config)
	if err != nil {
		return AppRun{}, err
	}
	run := AppRun{App: app.Name, Env: env, Mode: mode}
	for _, ph := range app.Phases {
		prof, err := s.Profile(app, ph)
		if err != nil {
			return AppRun{}, err
		}
		phaseSW := s.obs.Timer("core.phase.adapt").Start()
		res, err := core.AdaptSteady(prof, solver)
		phaseSW.Stop()
		if err != nil {
			return AppRun{}, fmt.Errorf("core: %s %s phase %d: %w", env, app.Name, ph.Index, err)
		}
		accumulate(&run, ph.Weight, res)
	}
	return run, nil
}

// StaticPoint chooses the one conservative configuration a Static chip uses
// for a workload class: the controller is run once, at test time, against a
// worst-case profile (per-subsystem peak activity and CPI across the class
// suite), so that no application can push the chip over its constraints.
func (s *Simulator) StaticPoint(core *adapt.Core, class workload.Class, apps []workload.App) (adapt.OperatingPoint, error) {
	prof, err := s.conservativeProfile(class, apps)
	if err != nil {
		return adapt.OperatingPoint{}, err
	}
	res, err := core.AdaptSteady(prof, adapt.Exhaustive{})
	if err != nil {
		return adapt.OperatingPoint{}, err
	}
	return res.Point, nil
}

// conservativeProfile builds the worst-case profile of a class.
func (s *Simulator) conservativeProfile(class workload.Class, apps []workload.App) (pipeline.Profile, error) {
	var worst pipeline.Profile
	worst.Class = class
	worst.AppName = "static-" + class.String()
	worst.Weight = 1
	first := true
	for _, app := range apps {
		if app.Class != class {
			continue
		}
		for _, ph := range app.Phases {
			p, err := s.Profile(app, ph)
			if err != nil {
				return pipeline.Profile{}, err
			}
			if first {
				worst.CPICompFull = p.CPICompFull
				worst.CPICompSmall = p.CPICompSmall
				worst.Mr = p.Mr
				worst.MpNomCycles = p.MpNomCycles
				worst.MispredictsPerInstr = p.MispredictsPerInstr
				worst.Activity = p.Activity
				first = false
				continue
			}
			worst.CPICompFull = math.Max(worst.CPICompFull, p.CPICompFull)
			worst.CPICompSmall = math.Max(worst.CPICompSmall, p.CPICompSmall)
			worst.Mr = math.Max(worst.Mr, p.Mr)
			worst.MpNomCycles = math.Max(worst.MpNomCycles, p.MpNomCycles)
			worst.MispredictsPerInstr = math.Max(worst.MispredictsPerInstr, p.MispredictsPerInstr)
			for i := range worst.Activity {
				worst.Activity[i] = math.Max(worst.Activity[i], p.Activity[i])
			}
		}
	}
	if first {
		return pipeline.Profile{}, fmt.Errorf("core: no %v applications for static profile", class)
	}
	return worst, nil
}

// RunStatic runs one application at a chip's fixed static operating point.
// The hardware's protective retuning still acts if a phase manages to
// violate a constraint (it should not, given the conservative choice).
func (s *Simulator) RunStatic(core *adapt.Core, app workload.App, point adapt.OperatingPoint) (AppRun, error) {
	env, err := envOfConfig(core.Config)
	if err != nil {
		return AppRun{}, err
	}
	run := AppRun{App: app.Name, Env: env, Mode: Static}
	for _, ph := range app.Phases {
		prof, err := s.Profile(app, ph)
		if err != nil {
			return AppRun{}, err
		}
		phaseSW := s.obs.Timer("core.phase.adapt").Start()
		res, err := staticRetune(core, point, prof)
		phaseSW.Stop()
		if err != nil {
			return AppRun{}, fmt.Errorf("core: static %s %s: %w", env, app.Name, err)
		}
		accumulate(&run, ph.Weight, res)
	}
	return run, nil
}

// staticRetune evaluates one phase at a chip's static operating point.
// The hardware's protective retuning still acts if the phase violates a
// constraint, but Static hardware does not hunt for headroom: the retuned
// frequency is capped at the static choice (retuning only protects).
func staticRetune(core *adapt.Core, point adapt.OperatingPoint, prof pipeline.Profile) (adapt.RetuneResult, error) {
	res, err := core.Retune(point, prof)
	if err != nil {
		return adapt.RetuneResult{}, err
	}
	if res.Point.FCore > point.FCore {
		capped := res.Point.Clone()
		capped.FCore = point.FCore
		st, err := core.Evaluate(capped, prof)
		if err != nil {
			return adapt.RetuneResult{}, err
		}
		res = adapt.RetuneResult{Point: capped, State: st, Outcome: res.Outcome}
	}
	return res, nil
}

// accumulate folds one phase's retune result into the app run.
func accumulate(run *AppRun, weight float64, res adapt.RetuneResult) {
	run.FRel += weight * res.Point.FCore
	run.Perf += weight * res.State.PerfRel
	run.PowerW += weight * res.State.TotalW
	run.PE += weight * res.State.PE
	run.Outcomes[res.Outcome]++
	if res.Point.Queue == tech.QueueThreeQuarter {
		run.SmallQueueFrac += weight
	}
	if res.Point.FU == tech.FULowSlope {
		run.LowSlopeFrac += weight
	}
}

// envOfConfig maps a technique configuration back to its Table 1 name.
// Configurations outside Table 1 (e.g. the Figure 13 TS+ABB grid) have no
// environment name and are reported as an error rather than silently
// mislabeled; the figure experiments that use them evaluate cores
// directly and never come through here.
func envOfConfig(cfg tech.Config) (Environment, error) {
	switch cfg {
	case (tech.Config{TimingSpec: true}):
		return TS, nil
	case (tech.Config{TimingSpec: true, ASV: true}):
		return TSASV, nil
	case (tech.Config{TimingSpec: true, ASV: true, ABB: true}):
		return TSASVABB, nil
	case (tech.Config{TimingSpec: true, ASV: true, QueueResize: true}):
		return TSASVQ, nil
	case (tech.Config{TimingSpec: true, ASV: true, QueueResize: true, FUReplication: true}):
		return TSASVQFU, nil
	case (tech.Config{TimingSpec: true, ASV: true, ABB: true, QueueResize: true, FUReplication: true}):
		return All, nil
	default:
		return TS, fmt.Errorf("core: config %+v matches no Table 1 environment", cfg)
	}
}
