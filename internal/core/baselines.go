package core

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/checker"
	"repro/internal/mathx"
	"repro/internal/retime"
	"repro/internal/workload"
)

// RetimeComparison is the §7 three-way comparison on one workload:
// worst-case clocking vs ReCycle-style dynamic retiming vs EVAL.
type RetimeComparison struct {
	Chips int
	App   string
	// Mean relative frequencies.
	BaselineFRel float64
	RetimedFRel  float64
	EVALFRel     float64
}

// RetimeGain returns retiming's mean gain over the baseline.
func (r RetimeComparison) RetimeGain() float64 {
	if r.BaselineFRel <= 0 {
		return 0
	}
	return r.RetimedFRel / r.BaselineFRel
}

// EVALGain returns EVAL's mean gain over the baseline.
func (r RetimeComparison) EVALGain() float64 {
	if r.BaselineFRel <= 0 {
		return 0
	}
	return r.EVALFRel / r.BaselineFRel
}

// RunRetimeComparison reproduces the §7 claim (retiming gains 10-20%,
// EVAL ~56%) across chips, using the preferred EVAL environment with the
// Exhaustive solver.
func (s *Simulator) RunRetimeComparison(chips int, seedBase int64, appName string) (RetimeComparison, error) {
	if chips < 1 {
		return RetimeComparison{}, fmt.Errorf("core: chips %d must be >= 1", chips)
	}
	app, err := workload.ByName(appName)
	if err != nil {
		return RetimeComparison{}, err
	}
	prof, err := s.Profile(app, app.Phases[0])
	if err != nil {
		return RetimeComparison{}, err
	}
	var base, ret, eval []float64
	for c := 0; c < chips; c++ {
		chip := s.Chip(seedBase + int64(c))
		rr, err := retime.Retime(s.fp, chip, s.opts.Varius, retime.DefaultConfig())
		if err != nil {
			return RetimeComparison{}, err
		}
		cpu, err := s.BuildCore(chip, TSASVQFU)
		if err != nil {
			return RetimeComparison{}, err
		}
		res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
		if err != nil {
			return RetimeComparison{}, err
		}
		base = append(base, rr.FBaseline)
		ret = append(ret, rr.FRetimed)
		eval = append(eval, res.Point.FCore)
	}
	return RetimeComparison{
		Chips:        chips,
		App:          appName,
		BaselineFRel: mathx.Mean(base),
		RetimedFRel:  mathx.Mean(ret),
		EVALFRel:     mathx.Mean(eval),
	}, nil
}

// SchemeResult is one row of the §3.1 error-tolerance-scheme comparison.
type SchemeResult struct {
	Scheme checker.Scheme
	FRel   float64
	Perf   float64
	PowerW float64
	PE     float64
}

// RunSchemeComparison runs the same EVAL adaptation (TS+ASV, Exh-Dyn) on
// top of each implemented error-tolerance scheme.
func RunSchemeComparison(chips int, seedBase int64, appName string, traceLen int) ([]SchemeResult, error) {
	if chips < 1 {
		return nil, fmt.Errorf("core: chips %d must be >= 1", chips)
	}
	var out []SchemeResult
	for _, scheme := range checker.Schemes() {
		chk, err := checker.ForScheme(scheme)
		if err != nil {
			return nil, err
		}
		opts := DefaultOptions()
		opts.TraceLen = traceLen
		opts.Checker = chk
		sim, err := NewSimulator(opts)
		if err != nil {
			return nil, err
		}
		app, err := workload.ByName(appName)
		if err != nil {
			return nil, err
		}
		prof, err := sim.Profile(app, app.Phases[0])
		if err != nil {
			return nil, err
		}
		var fs, ps, ws, pes []float64
		for c := 0; c < chips; c++ {
			cpu, err := sim.BuildCore(sim.Chip(seedBase+int64(c)), TSASV)
			if err != nil {
				return nil, err
			}
			res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
			if err != nil {
				return nil, err
			}
			fs = append(fs, res.Point.FCore)
			ps = append(ps, res.State.PerfRel)
			ws = append(ws, res.State.TotalW)
			pes = append(pes, res.State.PE)
		}
		out = append(out, SchemeResult{
			Scheme: scheme,
			FRel:   mathx.Mean(fs),
			Perf:   mathx.Mean(ps),
			PowerW: mathx.Mean(ws),
			PE:     mathx.Mean(pes),
		})
	}
	return out, nil
}
