package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/adapt"
	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

// ExperimentConfig scales the multi-chip experiments. The paper uses 100
// chips and the 26-application SPEC 2000 suite; the defaults here are a
// smaller but shape-preserving budget suitable for iterating (raise Chips
// and use the full suite for paper-scale runs).
type ExperimentConfig struct {
	// Chips is the number of evaluation chips (the paper uses 100).
	Chips int
	// SeedBase offsets the evaluation chip seeds.
	SeedBase int64
	// TrainChips is the number of *distinct* chips used to train the fuzzy
	// controllers (never overlapping the evaluation chips).
	TrainChips int
	// Apps selects applications by name (nil = the full 26-app suite).
	Apps []string
	// Envs selects the adaptive environments (nil = all six of Table 1).
	Envs []Environment
	// Modes selects adaptation modes (nil = Static, Fuzzy-Dyn, Exh-Dyn).
	Modes []Mode
	// Training configures fuzzy-controller training.
	Training adapt.TrainOptions
	// Workers bounds experiment parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultExperimentConfig returns a laptop-scale configuration.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Chips:      10,
		SeedBase:   1000,
		TrainChips: 2,
		Training:   adapt.DefaultTrainOptions(),
	}
}

// resolve fills defaults.
func (c ExperimentConfig) resolve() (ExperimentConfig, []workload.App, error) {
	if c.Chips < 1 {
		return c, nil, fmt.Errorf("core: Chips %d must be >= 1", c.Chips)
	}
	if c.TrainChips < 1 {
		c.TrainChips = 1
	}
	if len(c.Envs) == 0 {
		c.Envs = AdaptiveEnvironments()
	}
	for _, e := range c.Envs {
		if !e.Adaptive() {
			return c, nil, fmt.Errorf("core: %v is not an adaptive environment", e)
		}
	}
	if len(c.Modes) == 0 {
		c.Modes = []Mode{Static, FuzzyDyn, ExhDyn}
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	var apps []workload.App
	if len(c.Apps) == 0 {
		apps = workload.Suite()
	} else {
		for _, name := range c.Apps {
			a, err := workload.ByName(name)
			if err != nil {
				return c, nil, err
			}
			apps = append(apps, a)
		}
	}
	return c, apps, nil
}

// Cell is one (environment, mode) aggregate of Figures 10-12.
type Cell struct {
	Env  Environment
	Mode Mode
	// FRel is the mean relative frequency (Figure 10's bar).
	FRel float64
	// PerfR is the mean performance relative to NoVar (Figure 11's bar).
	PerfR float64
	// PowerW is the mean processor power (Figure 12's bar).
	PowerW float64
	// PE is the mean error rate per instruction.
	PE float64
	// Outcome fractions across controller invocations (Figure 13 inputs).
	Outcomes [adapt.NumOutcomes]float64
	// SmallQueueFrac / LowSlopeFrac: how often the techniques engage.
	SmallQueueFrac float64
	LowSlopeFrac   float64
}

// Summary aggregates the headline experiment: every adaptive environment
// and mode, plus the Baseline and NoVar anchors.
type Summary struct {
	Chips int
	Apps  []string
	// BaselineFRel is the mean worst-case-safe frequency (the 0.78 line).
	BaselineFRel   float64
	BaselinePerfR  float64
	BaselinePowerW float64
	NoVarPowerW    float64
	Cells          []Cell
}

// CellFor finds the cell of an (environment, mode) pair.
func (s *Summary) CellFor(env Environment, mode Mode) (Cell, error) {
	for _, c := range s.Cells {
		if c.Env == env && c.Mode == mode {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("core: summary has no cell %v/%v", env, mode)
}

// RunSummary executes the Figures 10-12 experiment.
func (s *Simulator) RunSummary(cfg ExperimentConfig) (*Summary, error) {
	cfg, apps, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.run_summary").Start().Stop()

	// NoVar reference per app.
	novarSW := s.obs.Timer("core.novar_refs").Start()
	noVarPerf := make(map[string]float64, len(apps))
	noVarPower := 0.0
	for _, app := range apps {
		r, err := s.RunNoVar(app)
		if err != nil {
			return nil, err
		}
		noVarPerf[app.Name] = r.Perf
		noVarPower += r.PowerW
	}
	noVarPower /= float64(len(apps))
	novarSW.Stop()

	needFuzzy := false
	for _, m := range cfg.Modes {
		if m == FuzzyDyn {
			needFuzzy = true
		}
	}

	var prog *obs.Progress
	if s.progressW != nil {
		prog = obs.NewProgress(s.progressW, "chips", cfg.Chips, cfg.Workers)
		defer prog.Stop()
	}

	type chipResult struct {
		baseF, basePerfR, basePower float64
		cells                       map[cellKey]*cellAccum
		err                         error
	}
	results := make([]chipResult, cfg.Chips)
	fanSW := s.obs.Timer("core.chip_fanout").Start()
	var wg sync.WaitGroup
	// The semaphore hands out worker-slot indices so the progress
	// reporter can attribute work to a stable slot.
	slots := make(chan int, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		slots <- i
	}
	for ci := 0; ci < cfg.Chips; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			slot := <-slots
			defer func() { slots <- slot }()
			seed := cfg.SeedBase + int64(ci)
			if prog != nil {
				prog.SetWorker(slot, fmt.Sprintf("chip %d", seed))
			}
			chipSW := s.obs.Timer("core.chip").Start()
			results[ci] = s.runChip(cfg, apps, noVarPerf, needFuzzy, seed)
			chipSW.Stop()
			if prog != nil {
				prog.SetWorker(slot, "idle")
				prog.Step(1)
			}
		}(ci)
	}
	wg.Wait()
	if wall := fanSW.Stop(); s.obs != nil && wall > 0 {
		busy := s.obs.Timer("core.chip").Sum()
		s.obs.Gauge("core.workers").Set(float64(cfg.Workers))
		s.obs.Gauge("core.worker.occupancy_pct").Set(
			100 * busy.Seconds() / (wall.Seconds() * float64(cfg.Workers)))
	}

	sum := &Summary{Chips: cfg.Chips, NoVarPowerW: noVarPower}
	for _, a := range apps {
		sum.Apps = append(sum.Apps, a.Name)
	}
	agg := make(map[cellKey]*cellAccum)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		sum.BaselineFRel += r.baseF / float64(cfg.Chips)
		sum.BaselinePerfR += r.basePerfR / float64(cfg.Chips)
		sum.BaselinePowerW += r.basePower / float64(cfg.Chips)
		for k, a := range r.cells {
			if agg[k] == nil {
				agg[k] = &cellAccum{}
			}
			agg[k].fold(a)
		}
	}
	for _, env := range cfg.Envs {
		for _, mode := range cfg.Modes {
			k := cellKey{env: env, mode: mode}
			a, ok := agg[k]
			if !ok {
				continue
			}
			sum.Cells = append(sum.Cells, a.cell(env, mode))
		}
	}
	return sum, nil
}

// TrainSolver trains fuzzy controllers for one environment across
// TrainChips dedicated chips — the *fleet-trained* variant used to study
// how well one controller set generalizes across dies. The paper's system
// (and RunSummary/RunOutcomes/RunTable2) trains per chip instead, on a
// software model of the specific die (§4.3.1).
func (s *Simulator) TrainSolver(env Environment, cfg ExperimentConfig) (*adapt.FuzzySolver, error) {
	if cfg.TrainChips < 1 {
		cfg.TrainChips = 1
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.fuzzy_train").Start().Stop()
	var cores []*adapt.Core
	for t := 0; t < cfg.TrainChips; t++ {
		chip := s.Chip(cfg.SeedBase + 1_000_000 + int64(t))
		core, err := s.BuildCore(chip, env)
		if err != nil {
			return nil, err
		}
		cores = append(cores, core)
	}
	return adapt.TrainFuzzySolver(cores, cfg.Training)
}

type cellKey struct {
	env  Environment
	mode Mode
}

// cellAccum accumulates app-run metrics.
type cellAccum struct {
	n                   float64
	f, perfR, power, pe float64
	outcomes            [adapt.NumOutcomes]float64
	outcomeTotal        float64
	smallQ, lowFU       float64
}

func (a *cellAccum) add(run AppRun, noVarPerf float64) {
	a.n++
	a.f += run.FRel
	if noVarPerf > 0 {
		a.perfR += run.Perf / noVarPerf
	}
	a.power += run.PowerW
	a.pe += run.PE
	for o, cnt := range run.Outcomes {
		a.outcomes[o] += float64(cnt)
		a.outcomeTotal += float64(cnt)
	}
	a.smallQ += run.SmallQueueFrac
	a.lowFU += run.LowSlopeFrac
}

func (a *cellAccum) fold(b *cellAccum) {
	a.n += b.n
	a.f += b.f
	a.perfR += b.perfR
	a.power += b.power
	a.pe += b.pe
	for o := range a.outcomes {
		a.outcomes[o] += b.outcomes[o]
	}
	a.outcomeTotal += b.outcomeTotal
	a.smallQ += b.smallQ
	a.lowFU += b.lowFU
}

func (a *cellAccum) cell(env Environment, mode Mode) Cell {
	c := Cell{Env: env, Mode: mode}
	if a.n > 0 {
		c.FRel = a.f / a.n
		c.PerfR = a.perfR / a.n
		c.PowerW = a.power / a.n
		c.PE = a.pe / a.n
		c.SmallQueueFrac = a.smallQ / a.n
		c.LowSlopeFrac = a.lowFU / a.n
	}
	if a.outcomeTotal > 0 {
		for o := range c.Outcomes {
			c.Outcomes[o] = a.outcomes[o] / a.outcomeTotal
		}
	}
	return c
}

// runChip executes all environments/modes/apps for one chip.
func (s *Simulator) runChip(cfg ExperimentConfig, apps []workload.App,
	noVarPerf map[string]float64, needFuzzy bool,
	seed int64) (res struct {
	baseF, basePerfR, basePower float64
	cells                       map[cellKey]*cellAccum
	err                         error
}) {
	res.cells = make(map[cellKey]*cellAccum)
	var chipSpan *obs.Span
	if s.tracer != nil {
		chipSpan = s.tracer.Start(fmt.Sprintf("chip %d", seed))
		defer chipSpan.End()
	}
	chip := s.Chip(seed)

	// One stage-model assembly backs every environment's core of this
	// chip, and the first core built donates its PE-fmax tables to the
	// rest: the tables depend only on the stage models, so the six
	// environments amortize one set of vats.Curve evaluations. All cores
	// of a chip live on this one worker goroutine (the adapt package's
	// ownership rule).
	subs, err := s.buildSubsystems(chip)
	if err != nil {
		res.err = err
		return res
	}
	var peDonor *adapt.Core

	// Baseline anchors.
	fvar, err := s.ChipFVar(chip)
	if err != nil {
		res.err = err
		return res
	}
	res.baseF = fvar
	baseSpan := chipSpan.Child("baseline")
	for _, app := range apps {
		r, err := s.RunBaseline(chip, app)
		if err != nil {
			res.err = err
			return res
		}
		res.basePerfR += r.Perf / noVarPerf[app.Name] / float64(len(apps))
		res.basePower += r.PowerW / float64(len(apps))
	}
	baseSpan.End()

	for _, env := range cfg.Envs {
		var envSpan *obs.Span
		if chipSpan != nil {
			envSpan = chipSpan.Child(env.String())
		}
		cfg0 := env.Config()
		if !cfg0.TimingSpec {
			cfg0 = tech.Config{TimingSpec: true}
		}
		core, err := s.coreFromSubsystems(subs, cfg0)
		if err != nil {
			res.err = err
			return res
		}
		if peDonor == nil {
			peDonor = core
		} else if err := core.SharePETables(peDonor); err != nil {
			res.err = err
			return res
		}
		// Per-chip fuzzy training: the manufacturer populates this chip's
		// controllers by running the Exhaustive algorithm on a software
		// model of *this* chip (§4.3.1).
		var solver *adapt.FuzzySolver
		if needFuzzy {
			trainSpan := envSpan.Child("train solver")
			trainSW := s.obs.Timer("core.fuzzy_train").Start()
			if solver, err = adapt.TrainFuzzySolver([]*adapt.Core{core}, cfg.Training); err != nil {
				res.err = err
				return res
			}
			trainSW.Stop()
			trainSpan.End()
		}
		// Static points per class, chosen once per chip.
		var staticInt, staticFP adapt.OperatingPoint
		hasStatic := false
		for _, m := range cfg.Modes {
			if m == Static {
				hasStatic = true
			}
		}
		if hasStatic {
			if staticInt, err = s.StaticPoint(core, workload.Int, apps); err != nil {
				res.err = err
				return res
			}
			if staticFP, err = s.StaticPoint(core, workload.FP, apps); err != nil {
				res.err = err
				return res
			}
		}
		for _, mode := range cfg.Modes {
			key := cellKey{env: env, mode: mode}
			if res.cells[key] == nil {
				res.cells[key] = &cellAccum{}
			}
			cellSW := s.obs.Timer("core.cell").Start()
			var modeSpan *obs.Span
			if envSpan != nil {
				modeSpan = envSpan.Child(mode.String())
			}
			for _, app := range apps {
				var appSpan *obs.Span
				if modeSpan != nil {
					appSpan = modeSpan.Child(app.Name)
				}
				appSW := s.obs.Timer("core.app_run").Start()
				var run AppRun
				switch mode {
				case Static:
					point := staticInt
					if app.Class == workload.FP {
						point = staticFP
					}
					run, err = s.RunStatic(core, app, point)
				case FuzzyDyn:
					run, err = s.RunDynamic(core, app, FuzzyDyn, solver)
				case ExhDyn:
					run, err = s.RunDynamic(core, app, ExhDyn, adapt.Exhaustive{})
				default:
					err = fmt.Errorf("core: unknown mode %v", mode)
				}
				appSW.Stop()
				appSpan.End()
				if err != nil {
					res.err = fmt.Errorf("chip %d %v/%v: %w", seed, env, mode, err)
					return res
				}
				res.cells[key].add(run, noVarPerf[app.Name])
			}
			modeSpan.End()
			cellSW.Stop()
		}
		envSpan.End()
	}
	return res
}

// OutcomeCell is one bar of Figure 13: the outcome mix of the fuzzy
// controller system under one base environment and one microarchitecture
// option set.
type OutcomeCell struct {
	Label     string // e.g. "TS+ASV / FU+Queue opt"
	Config    tech.Config
	Fractions [adapt.NumOutcomes]float64
	Samples   int
}

// Figure13Configs enumerates the paper's grid: base environments A:TS,
// B:TS+ABB, C:TS+ASV, D:TS+ABB+ASV crossed with {No opt, FU opt, Queue
// opt, FU+Queue opt}.
func Figure13Configs() []OutcomeCell {
	bases := []struct {
		name string
		cfg  tech.Config
	}{
		{"TS", tech.Config{TimingSpec: true}},
		{"TS+ABB", tech.Config{TimingSpec: true, ABB: true}},
		{"TS+ASV", tech.Config{TimingSpec: true, ASV: true}},
		{"TS+ABB+ASV", tech.Config{TimingSpec: true, ABB: true, ASV: true}},
	}
	opts := []struct {
		name   string
		fu, qu bool
	}{
		{"No opt", false, false},
		{"FU opt", true, false},
		{"Queue opt", false, true},
		{"FU+Queue opt", true, true},
	}
	var out []OutcomeCell
	for _, o := range opts {
		for _, b := range bases {
			cfg := b.cfg
			cfg.FUReplication = o.fu
			cfg.QueueResize = o.qu
			out = append(out, OutcomeCell{
				Label:  b.name + " / " + o.name,
				Config: cfg,
			})
		}
	}
	return out
}

// RunOutcomes executes the Figure 13 experiment: the fuzzy controller's
// outcome mix across configurations.
func (s *Simulator) RunOutcomes(cfg ExperimentConfig) ([]OutcomeCell, error) {
	cfg, apps, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.run_outcomes").Start().Stop()
	cells := Figure13Configs()
	var prog *obs.Progress
	if s.progressW != nil {
		prog = obs.NewProgress(s.progressW, "config×chip", len(cells)*cfg.Chips, 1)
		defer prog.Stop()
	}
	for idx := range cells {
		var counts [adapt.NumOutcomes]float64
		total := 0.0
		for ci := 0; ci < cfg.Chips; ci++ {
			if prog != nil {
				prog.SetWorker(0, cells[idx].Label)
			}
			chipSW := s.obs.Timer("core.chip").Start()
			chip := s.Chip(cfg.SeedBase + int64(ci))
			core, err := s.BuildCoreWithConfig(chip, cells[idx].Config)
			if err != nil {
				return nil, err
			}
			// Per-chip controller training (§4.3.1).
			solver, err := adapt.TrainFuzzySolver([]*adapt.Core{core}, cfg.Training)
			if err != nil {
				return nil, err
			}
			for _, app := range apps {
				for _, ph := range app.Phases {
					prof, err := s.Profile(app, ph)
					if err != nil {
						return nil, err
					}
					res, err := core.AdaptSteady(prof, solver)
					if err != nil {
						return nil, err
					}
					counts[res.Outcome]++
					total++
				}
			}
			chipSW.Stop()
			prog.Step(1)
		}
		if total > 0 {
			for o := range counts {
				cells[idx].Fractions[o] = counts[o] / total
			}
		}
		cells[idx].Samples = int(total)
	}
	return cells, nil
}

// BuildCoreWithConfig is BuildCore for an arbitrary technique configuration.
func (s *Simulator) BuildCoreWithConfig(chip *varius.ChipMaps, cfg tech.Config) (*adapt.Core, error) {
	subs, err := s.buildSubsystems(chip)
	if err != nil {
		return nil, err
	}
	return s.coreFromSubsystems(subs, cfg)
}

// Table2Row is one row of Table 2: the mean |fuzzy - exhaustive| for one
// output parameter under one environment, split by subsystem kind.
type Table2Row struct {
	Param string // "Freq (MHz)", "Vdd (mV)", "Vbb (mV)"
	Env   string
	// AbsErr[kind] is the mean absolute error in the row's units.
	AbsErr map[floorplan.Kind]float64
	// PctErr[kind] is the error as % of nominal (absent for Vbb, whose
	// nominal is zero, as in the paper).
	PctErr map[floorplan.Kind]float64
}

// RunTable2 measures fuzzy-controller accuracy against Exhaustive on fresh
// chips, reproducing Table 2. NomFreqGHz converts relative frequency errors
// to MHz (the paper's 4 GHz nominal).
func (s *Simulator) RunTable2(cfg ExperimentConfig) ([]Table2Row, error) {
	cfg, _, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.run_table2").Start().Stop()
	const nomFreqMHz = 4000.0
	const nomVddMV = 1000.0
	envs := []struct {
		name string
		cfg  tech.Config
	}{
		{"TS", tech.Config{TimingSpec: true}},
		{"TS+ABB", tech.Config{TimingSpec: true, ABB: true}},
		{"TS+ASV", tech.Config{TimingSpec: true, ASV: true}},
		{"TS+ABB+ASV", tech.Config{TimingSpec: true, ABB: true, ASV: true}},
	}
	var rows []Table2Row
	for _, env := range envs {
		type acc struct {
			fErr, vddErr, vbbErr []float64
		}
		byKind := map[floorplan.Kind]*acc{
			floorplan.Memory: {}, floorplan.Mixed: {}, floorplan.Logic: {},
		}
		rng := mathx.NewRNG(cfg.SeedBase + 77)
		for ci := 0; ci < cfg.Chips; ci++ {
			chip := s.Chip(cfg.SeedBase + int64(ci))
			core, err := s.BuildCoreWithConfig(chip, env.cfg)
			if err != nil {
				return nil, err
			}
			// Per-chip controller training (§4.3.1): accuracy is measured
			// on the chip whose model populated the controllers, at
			// operating situations the training never saw.
			solver, err := adapt.TrainFuzzySolver([]*adapt.Core{core}, cfg.Training)
			if err != nil {
				return nil, err
			}
			for i := 0; i < core.N(); i++ {
				kind := core.Subs[i].Sub.Kind
				for q := 0; q < 6; q++ {
					query := adapt.FreqQuery{
						THK:       rng.Uniform(48+273.15, 68+273.15),
						AlphaF:    rng.Uniform(0.02, 1.0),
						Variant:   vats.IdentityVariant(),
						PowerMult: 1,
					}
					query.Rho = query.AlphaF * rng.Uniform(0.8, 4.5)
					fx := core.FreqSolve(i, query).FMax
					ff := solver.FreqMax(core, i, query)
					byKind[kind].fErr = append(byKind[kind].fErr, absF(fx-ff)*nomFreqMHz)
					fCore := tech.SnapFRelDown(fx * rng.Uniform(0.8, 1.0))
					pxV, pxB := (adapt.Exhaustive{}).PowerLevels(core, i, fCore, query)
					pfV, pfB := solver.PowerLevels(core, i, fCore, query)
					byKind[kind].vddErr = append(byKind[kind].vddErr, absF(pxV-pfV)*1000)
					byKind[kind].vbbErr = append(byKind[kind].vbbErr, absF(pxB-pfB)*1000)
				}
			}
		}
		freqRow := Table2Row{Param: "Freq (MHz)", Env: env.name,
			AbsErr: map[floorplan.Kind]float64{}, PctErr: map[floorplan.Kind]float64{}}
		for k, a := range byKind {
			freqRow.AbsErr[k] = mathx.Mean(a.fErr)
			freqRow.PctErr[k] = mathx.Mean(a.fErr) / nomFreqMHz * 100
		}
		rows = append(rows, freqRow)
		if env.cfg.ASV {
			r := Table2Row{Param: "Vdd (mV)", Env: env.name,
				AbsErr: map[floorplan.Kind]float64{}, PctErr: map[floorplan.Kind]float64{}}
			for k, a := range byKind {
				r.AbsErr[k] = mathx.Mean(a.vddErr)
				r.PctErr[k] = mathx.Mean(a.vddErr) / nomVddMV * 100
			}
			rows = append(rows, r)
		}
		if env.cfg.ABB {
			r := Table2Row{Param: "Vbb (mV)", Env: env.name,
				AbsErr: map[floorplan.Kind]float64{}}
			for k, a := range byKind {
				r.AbsErr[k] = mathx.Mean(a.vbbErr)
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
