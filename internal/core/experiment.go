package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/adapt"
	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

// ExperimentConfig scales the multi-chip experiments. The paper uses 100
// chips and the 26-application SPEC 2000 suite; the defaults here are a
// smaller but shape-preserving budget suitable for iterating (raise Chips
// and use the full suite for paper-scale runs).
type ExperimentConfig struct {
	// Chips is the number of evaluation chips (the paper uses 100).
	Chips int
	// SeedBase offsets the evaluation chip seeds.
	SeedBase int64
	// TrainChips is the number of *distinct* chips used to train the fuzzy
	// controllers (never overlapping the evaluation chips).
	TrainChips int
	// Apps selects proxy-suite applications by name (nil = the full
	// 26-app suite, unless Workloads is set).
	Apps []string
	// Workloads supplies the applications directly — generated clients or
	// trace-replayed apps (see Simulator.GeneratedApps and
	// workload.TraceV1.Lower). Mutually exclusive with Apps.
	Workloads []workload.App
	// Envs selects the adaptive environments (nil = all six of Table 1).
	Envs []Environment
	// Modes selects adaptation modes (nil = Static, Fuzzy-Dyn, Exh-Dyn).
	Modes []Mode
	// Training configures fuzzy-controller training.
	Training adapt.TrainOptions
	// Workers bounds experiment parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultExperimentConfig returns a laptop-scale configuration.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Chips:      10,
		SeedBase:   1000,
		TrainChips: 2,
		Training:   adapt.DefaultTrainOptions(),
	}
}

// resolve fills defaults.
func (c ExperimentConfig) resolve() (ExperimentConfig, []workload.App, error) {
	if c.Chips < 1 {
		return c, nil, fmt.Errorf("core: Chips %d must be >= 1", c.Chips)
	}
	if c.TrainChips < 1 {
		c.TrainChips = 1
	}
	if len(c.Envs) == 0 {
		c.Envs = AdaptiveEnvironments()
	}
	for _, e := range c.Envs {
		if !e.Adaptive() {
			return c, nil, fmt.Errorf("core: %v is not an adaptive environment", e)
		}
	}
	if len(c.Modes) == 0 {
		c.Modes = []Mode{Static, FuzzyDyn, ExhDyn}
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	var apps []workload.App
	switch {
	case len(c.Workloads) > 0:
		if len(c.Apps) > 0 {
			return c, nil, fmt.Errorf("core: Apps and Workloads are mutually exclusive")
		}
		apps = c.Workloads
	case len(c.Apps) == 0:
		apps = workload.Suite()
	default:
		for _, name := range c.Apps {
			a, err := workload.ByName(name)
			if err != nil {
				return c, nil, err
			}
			apps = append(apps, a)
		}
	}
	return c, apps, nil
}

// Cell is one (environment, mode) aggregate of Figures 10-12.
type Cell struct {
	Env  Environment
	Mode Mode
	// FRel is the mean relative frequency (Figure 10's bar).
	FRel float64
	// PerfR is the mean performance relative to NoVar (Figure 11's bar).
	PerfR float64
	// PowerW is the mean processor power (Figure 12's bar).
	PowerW float64
	// PE is the mean error rate per instruction.
	PE float64
	// Outcome fractions across controller invocations (Figure 13 inputs).
	Outcomes [adapt.NumOutcomes]float64
	// SmallQueueFrac / LowSlopeFrac: how often the techniques engage.
	SmallQueueFrac float64
	LowSlopeFrac   float64
}

// Summary aggregates the headline experiment: every adaptive environment
// and mode, plus the Baseline and NoVar anchors.
type Summary struct {
	Chips int
	Apps  []string
	// BaselineFRel is the mean worst-case-safe frequency (the 0.78 line).
	BaselineFRel   float64
	BaselinePerfR  float64
	BaselinePowerW float64
	NoVarPowerW    float64
	Cells          []Cell
}

// CellFor finds the cell of an (environment, mode) pair.
func (s *Summary) CellFor(env Environment, mode Mode) (Cell, error) {
	for _, c := range s.Cells {
		if c.Env == env && c.Mode == mode {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("core: summary has no cell %v/%v", env, mode)
}

// RunSummary executes the Figures 10-12 experiment.
func (s *Simulator) RunSummary(cfg ExperimentConfig) (*Summary, error) {
	cfg, apps, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.run_summary").Start().Stop()
	s.prefetchArtifacts(cfg, apps)

	// NoVar reference per app.
	novarSW := s.obs.Timer("core.novar_refs").Start()
	noVarPerf := make(map[string]float64, len(apps))
	noVarPower := 0.0
	for _, app := range apps {
		r, err := s.RunNoVar(app)
		if err != nil {
			return nil, err
		}
		noVarPerf[app.Name] = r.Perf
		noVarPower += r.PowerW
	}
	noVarPower /= float64(len(apps))
	novarSW.Stop()

	needFuzzy := false
	for _, m := range cfg.Modes {
		if m == FuzzyDyn {
			needFuzzy = true
		}
	}

	// The work queue holds (chip × environment) units: at small chip
	// counts a per-chip fan-out leaves workers idle while the last chip
	// grinds through all six environments, whereas units keep the pool
	// busy to the tail. Per-chip state (stage models, PE-table donor,
	// Baseline anchors) builds once under the chip's sync.Once and is
	// then shared read-only by that chip's units.
	nEnvs := len(cfg.Envs)
	nUnits := cfg.Chips * nEnvs
	var prog *obs.Progress
	if s.progressW != nil {
		prog = obs.NewProgress(s.progressW, "chip×env", nUnits, min(cfg.Workers, nUnits))
		defer prog.Stop()
	}

	shared := make([]chipShared, cfg.Chips)
	type unitResult struct {
		cells *cellMap
		err   error
	}
	results := make([]unitResult, nUnits)
	obs.RunPool(s.obs, "core.pool", cfg.Workers, nUnits, func(slot, u int) {
		ci, ei := u/nEnvs, u%nEnvs
		seed := cfg.SeedBase + int64(ci)
		env := cfg.Envs[ei]
		prog.SetWorker(slot, fmt.Sprintf("chip %d %v", seed, env))
		sh := &shared[ci]
		sh.once.Do(func() {
			defer s.obs.Timer("core.chip_prep").Start().Stop()
			sh.init(s, apps, noVarPerf, seed)
		})
		if sh.err == nil {
			unitSW := s.obs.Timer("core.unit").Start()
			cells, err := s.runChipEnv(cfg, apps, noVarPerf, needFuzzy, sh, env, seed)
			unitSW.Stop()
			results[u] = unitResult{cells: cells, err: err}
		}
		prog.SetWorker(slot, "idle")
		prog.Step(1)
	})

	sum := &Summary{Chips: cfg.Chips, NoVarPowerW: noVarPower}
	for _, a := range apps {
		sum.Apps = append(sum.Apps, a.Name)
	}
	// Index-ordered reduction: baselines fold chips-ascending and cells
	// fold (chip, env)-ascending, so every float accumulates in the same
	// order regardless of how the pool scheduled the units.
	agg := make(map[cellKey]*cellAccum)
	for ci := range shared {
		if shared[ci].err != nil {
			return nil, shared[ci].err
		}
		// All units are done, so the donor's table store is quiescent:
		// persist any tables this run built beyond the imported entry.
		s.storePETables(shared[ci].donor, cfg.SeedBase+int64(ci), shared[ci].petables)
		sum.BaselineFRel += shared[ci].baseF / float64(cfg.Chips)
		sum.BaselinePerfR += shared[ci].basePerfR / float64(cfg.Chips)
		sum.BaselinePowerW += shared[ci].basePower / float64(cfg.Chips)
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.cells == nil {
			continue
		}
		for _, k := range r.cells.keys {
			if agg[k] == nil {
				agg[k] = &cellAccum{}
			}
			agg[k].fold(r.cells.m[k])
		}
	}
	for _, env := range cfg.Envs {
		for _, mode := range cfg.Modes {
			k := cellKey{env: env, mode: mode}
			a, ok := agg[k]
			if !ok {
				continue
			}
			sum.Cells = append(sum.Cells, a.cell(env, mode))
		}
	}
	return sum, nil
}

// chipShared is the per-chip state shared by that chip's (chip × env)
// work units: the stage-model assembly, the PE-fmax-table donor core, and
// the Baseline anchors. The first unit to touch the chip builds all of it
// under the chip's sync.Once; afterwards the units read it concurrently —
// the stage models are immutable and the donor's table store publishes
// lazy builds atomically (see the adapt package comment).
type chipShared struct {
	once sync.Once
	err  error
	subs []adapt.Subsystem
	// donor exists only to hold the chip's shared PE-table store; the
	// tables depend on the stage models alone, so its technique
	// configuration is irrelevant.
	donor *adapt.Core
	// petables counts the PE-fmax tables seeded into the donor from the
	// artifact cache, so the reduction only writes the entry back when the
	// run built tables beyond it.
	petables                    int
	baseF, basePerfR, basePower float64
}

func (sh *chipShared) init(s *Simulator, apps []workload.App, noVarPerf map[string]float64, seed int64) {
	var span *obs.Span
	if s.tracer != nil {
		span = s.tracer.Start(fmt.Sprintf("chip %d prep", seed))
		defer span.End()
	}
	chip := s.Chip(seed)
	subs, err := s.buildSubsystems(chip)
	if err != nil {
		sh.err = err
		return
	}
	sh.subs = subs
	if sh.donor, err = s.coreFromSubsystems(subs, tech.Config{TimingSpec: true}); err != nil {
		sh.err = err
		return
	}
	sh.petables = s.loadPETables(sh.donor, seed)
	if sh.baseF, err = s.ChipFVar(chip); err != nil {
		sh.err = err
		return
	}
	baseSpan := span.Child("baseline")
	for _, app := range apps {
		r, err := s.RunBaseline(chip, app)
		if err != nil {
			sh.err = err
			return
		}
		sh.basePerfR += r.Perf / noVarPerf[app.Name] / float64(len(apps))
		sh.basePower += r.PowerW / float64(len(apps))
	}
	baseSpan.End()
}

// cellMap is an insertion-ordered map of cell accumulators: iteration
// follows first-insertion order so the reduction in RunSummary visits
// keys the way the serial loop produced them.
type cellMap struct {
	keys []cellKey
	m    map[cellKey]*cellAccum
}

func newCellMap() *cellMap {
	return &cellMap{m: make(map[cellKey]*cellAccum)}
}

func (c *cellMap) at(k cellKey) *cellAccum {
	a, ok := c.m[k]
	if !ok {
		a = &cellAccum{}
		c.m[k] = a
		c.keys = append(c.keys, k)
	}
	return a
}

// TrainSolver trains fuzzy controllers for one environment across
// TrainChips dedicated chips — the *fleet-trained* variant used to study
// how well one controller set generalizes across dies. The paper's system
// (and RunSummary/RunOutcomes/RunTable2) trains per chip instead, on a
// software model of the specific die (§4.3.1).
func (s *Simulator) TrainSolver(env Environment, cfg ExperimentConfig) (*adapt.FuzzySolver, error) {
	if cfg.TrainChips < 1 {
		cfg.TrainChips = 1
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.fuzzy_train").Start().Stop()
	var cores []*adapt.Core
	var seeds []int64
	for t := 0; t < cfg.TrainChips; t++ {
		seed := cfg.SeedBase + 1_000_000 + int64(t)
		chip := s.Chip(seed)
		core, err := s.BuildCore(chip, env)
		if err != nil {
			return nil, err
		}
		cores = append(cores, core)
		seeds = append(seeds, seed)
	}
	return s.TrainFuzzyCached(cores, seeds, cfg.Training)
}

type cellKey struct {
	env  Environment
	mode Mode
}

// cellAccum accumulates app-run metrics.
type cellAccum struct {
	n                   float64
	f, perfR, power, pe float64
	outcomes            [adapt.NumOutcomes]float64
	outcomeTotal        float64
	smallQ, lowFU       float64
}

func (a *cellAccum) add(run AppRun, noVarPerf float64) {
	a.n++
	a.f += run.FRel
	if noVarPerf > 0 {
		a.perfR += run.Perf / noVarPerf
	}
	a.power += run.PowerW
	a.pe += run.PE
	for o, cnt := range run.Outcomes {
		a.outcomes[o] += float64(cnt)
		a.outcomeTotal += float64(cnt)
	}
	a.smallQ += run.SmallQueueFrac
	a.lowFU += run.LowSlopeFrac
}

func (a *cellAccum) fold(b *cellAccum) {
	a.n += b.n
	a.f += b.f
	a.perfR += b.perfR
	a.power += b.power
	a.pe += b.pe
	for o := range a.outcomes {
		a.outcomes[o] += b.outcomes[o]
	}
	a.outcomeTotal += b.outcomeTotal
	a.smallQ += b.smallQ
	a.lowFU += b.lowFU
}

func (a *cellAccum) cell(env Environment, mode Mode) Cell {
	c := Cell{Env: env, Mode: mode}
	if a.n > 0 {
		c.FRel = a.f / a.n
		c.PerfR = a.perfR / a.n
		c.PowerW = a.power / a.n
		c.PE = a.pe / a.n
		c.SmallQueueFrac = a.smallQ / a.n
		c.LowSlopeFrac = a.lowFU / a.n
	}
	if a.outcomeTotal > 0 {
		for o := range c.Outcomes {
			c.Outcomes[o] = a.outcomes[o] / a.outcomeTotal
		}
	}
	return c
}

// runChipEnv executes one (chip × environment) work unit: builds the
// environment's core over the chip's shared stage models and PE-table
// store, trains this chip's controllers if the Fuzzy-Dyn mode needs them,
// and runs every mode × app of the cell. The chip's cores run on whatever
// worker goroutine the unit lands on; only the concurrency-safe table
// store is shared between units.
func (s *Simulator) runChipEnv(cfg ExperimentConfig, apps []workload.App,
	noVarPerf map[string]float64, needFuzzy bool,
	sh *chipShared, env Environment, seed int64) (*cellMap, error) {
	var envSpan *obs.Span
	if s.tracer != nil {
		envSpan = s.tracer.Start(fmt.Sprintf("chip %d %v", seed, env))
		defer envSpan.End()
	}
	cfg0 := env.Config()
	if !cfg0.TimingSpec {
		cfg0 = tech.Config{TimingSpec: true}
	}
	core, err := s.coreFromSubsystems(sh.subs, cfg0)
	if err != nil {
		return nil, err
	}
	if err := core.SharePETables(sh.donor); err != nil {
		return nil, err
	}
	// Per-chip fuzzy training: the manufacturer populates this chip's
	// controllers by running the Exhaustive algorithm on a software
	// model of *this* chip (§4.3.1).
	var solver *adapt.FuzzySolver
	fuzzyFP := ""
	if needFuzzy {
		trainSpan := envSpan.Child("train solver")
		trainSW := s.obs.Timer("core.fuzzy_train").Start()
		if solver, err = s.TrainFuzzyCached([]*adapt.Core{core}, []int64{seed}, cfg.Training); err != nil {
			return nil, err
		}
		trainSW.Stop()
		trainSpan.End()
		fuzzyFP = solverFingerprint(solver)
	}
	// Static points per class, chosen once per chip — only for classes the
	// app set actually contains, so single-class workload sets (a common
	// shape for generated scenarios) run Static without error.
	var staticInt, staticFP adapt.OperatingPoint
	hasStatic := false
	for _, m := range cfg.Modes {
		if m == Static {
			hasStatic = true
		}
	}
	if hasStatic {
		hasInt, hasFP := false, false
		for _, a := range apps {
			if a.Class == workload.FP {
				hasFP = true
			} else {
				hasInt = true
			}
		}
		if hasInt {
			if staticInt, err = s.cachedStaticPoint(core, workload.Int, apps, seed); err != nil {
				return nil, err
			}
		}
		if hasFP {
			if staticFP, err = s.cachedStaticPoint(core, workload.FP, apps, seed); err != nil {
				return nil, err
			}
		}
	}
	cells := newCellMap()
	for _, mode := range cfg.Modes {
		acc := cells.at(cellKey{env: env, mode: mode})
		cellSW := s.obs.Timer("core.cell").Start()
		modeSpan := envSpan.Child(mode.String())
		for _, app := range apps {
			appSpan := modeSpan.Child(app.Name)
			appSW := s.obs.Timer("core.app_run").Start()
			var run AppRun
			switch mode {
			case Static:
				point := staticInt
				if app.Class == workload.FP {
					point = staticFP
				}
				run, err = s.cachedAppRun(seed, core, app, Static, "", &point, -1,
					func() (AppRun, error) { return s.RunStatic(core, app, point) })
			case FuzzyDyn:
				run, err = s.cachedAppRun(seed, core, app, FuzzyDyn, fuzzyFP, nil, -1,
					func() (AppRun, error) { return s.RunDynamic(core, app, FuzzyDyn, solver) })
			case ExhDyn:
				run, err = s.cachedAppRun(seed, core, app, ExhDyn, "exh", nil, -1,
					func() (AppRun, error) { return s.RunDynamic(core, app, ExhDyn, adapt.Exhaustive{}) })
			default:
				err = fmt.Errorf("core: unknown mode %v", mode)
			}
			appSW.Stop()
			appSpan.End()
			if err != nil {
				return nil, fmt.Errorf("chip %d %v/%v: %w", seed, env, mode, err)
			}
			acc.add(run, noVarPerf[app.Name])
		}
		modeSpan.End()
		cellSW.Stop()
	}
	return cells, nil
}

// OutcomeCell is one bar of Figure 13: the outcome mix of the fuzzy
// controller system under one base environment and one microarchitecture
// option set.
type OutcomeCell struct {
	Label     string // e.g. "TS+ASV / FU+Queue opt"
	Config    tech.Config
	Fractions [adapt.NumOutcomes]float64
	Samples   int
}

// Figure13Configs enumerates the paper's grid: base environments A:TS,
// B:TS+ABB, C:TS+ASV, D:TS+ABB+ASV crossed with {No opt, FU opt, Queue
// opt, FU+Queue opt}.
func Figure13Configs() []OutcomeCell {
	bases := []struct {
		name string
		cfg  tech.Config
	}{
		{"TS", tech.Config{TimingSpec: true}},
		{"TS+ABB", tech.Config{TimingSpec: true, ABB: true}},
		{"TS+ASV", tech.Config{TimingSpec: true, ASV: true}},
		{"TS+ABB+ASV", tech.Config{TimingSpec: true, ABB: true, ASV: true}},
	}
	opts := []struct {
		name   string
		fu, qu bool
	}{
		{"No opt", false, false},
		{"FU opt", true, false},
		{"Queue opt", false, true},
		{"FU+Queue opt", true, true},
	}
	var out []OutcomeCell
	for _, o := range opts {
		for _, b := range bases {
			cfg := b.cfg
			cfg.FUReplication = o.fu
			cfg.QueueResize = o.qu
			out = append(out, OutcomeCell{
				Label:  b.name + " / " + o.name,
				Config: cfg,
			})
		}
	}
	return out
}

// RunOutcomes executes the Figure 13 experiment: the fuzzy controller's
// outcome mix across configurations.
func (s *Simulator) RunOutcomes(cfg ExperimentConfig) ([]OutcomeCell, error) {
	cfg, apps, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.run_outcomes").Start().Stop()
	s.prefetchArtifacts(cfg, apps)
	cells := Figure13Configs()
	// (config × chip) units over the shared pool. Each unit builds and
	// trains its own core, so units share nothing mutable; per-unit
	// outcome counts reduce config-major, chips-ascending, which keeps
	// every float sum in the serial loop's order.
	nUnits := len(cells) * cfg.Chips
	var prog *obs.Progress
	if s.progressW != nil {
		prog = obs.NewProgress(s.progressW, "config×chip", nUnits, min(cfg.Workers, nUnits))
		defer prog.Stop()
	}
	type outcomeUnit struct {
		counts [adapt.NumOutcomes]float64
		total  float64
		err    error
	}
	results := make([]outcomeUnit, nUnits)
	obs.RunPool(s.obs, "core.pool", cfg.Workers, nUnits, func(slot, u int) {
		idx, ci := u/cfg.Chips, u%cfg.Chips
		prog.SetWorker(slot, cells[idx].Label)
		defer s.obs.Timer("core.unit").Start().Stop()
		r := &results[u]
		seed := cfg.SeedBase + int64(ci)
		chip := s.Chip(seed)
		core, err := s.BuildCoreWithConfig(chip, cells[idx].Config)
		if err != nil {
			r.err = err
			return
		}
		// Per-chip controller training (§4.3.1).
		solver, err := s.TrainFuzzyCached([]*adapt.Core{core}, []int64{seed}, cfg.Training)
		if err != nil {
			r.err = err
			return
		}
		// The whole unit — one chip's AdaptSteady sweep across every app
		// phase — caches as one outcomes artifact; a warm invocation
		// replays the counts without re-running the controller.
		p, err := s.cachedOutcomeUnit(seed, core, solverFingerprint(solver), apps,
			func() (outcomePayload, error) {
				var p outcomePayload
				for _, app := range apps {
					for _, ph := range app.Phases {
						prof, err := s.Profile(app, ph)
						if err != nil {
							return outcomePayload{}, err
						}
						res, err := core.AdaptSteady(prof, solver)
						if err != nil {
							return outcomePayload{}, err
						}
						p.Counts[res.Outcome]++
						p.Total++
					}
				}
				return p, nil
			})
		if err != nil {
			r.err = err
			return
		}
		r.counts, r.total = p.Counts, p.Total
		prog.SetWorker(slot, "idle")
		prog.Step(1)
	})
	for idx := range cells {
		var counts [adapt.NumOutcomes]float64
		total := 0.0
		for ci := 0; ci < cfg.Chips; ci++ {
			r := &results[idx*cfg.Chips+ci]
			if r.err != nil {
				return nil, r.err
			}
			for o := range counts {
				counts[o] += r.counts[o]
			}
			total += r.total
		}
		if total > 0 {
			for o := range counts {
				cells[idx].Fractions[o] = counts[o] / total
			}
		}
		cells[idx].Samples = int(total)
	}
	return cells, nil
}

// BuildCoreWithConfig is BuildCore for an arbitrary technique configuration.
func (s *Simulator) BuildCoreWithConfig(chip *varius.ChipMaps, cfg tech.Config) (*adapt.Core, error) {
	subs, err := s.buildSubsystems(chip)
	if err != nil {
		return nil, err
	}
	return s.coreFromSubsystems(subs, cfg)
}

// Table2Row is one row of Table 2: the mean |fuzzy - exhaustive| for one
// output parameter under one environment, split by subsystem kind.
type Table2Row struct {
	Param string // "Freq (MHz)", "Vdd (mV)", "Vbb (mV)"
	Env   string
	// AbsErr[kind] is the mean absolute error in the row's units.
	AbsErr map[floorplan.Kind]float64
	// PctErr[kind] is the error as % of nominal (absent for Vbb, whose
	// nominal is zero, as in the paper).
	PctErr map[floorplan.Kind]float64
}

// RunTable2 measures fuzzy-controller accuracy against Exhaustive on fresh
// chips, reproducing Table 2. NomFreqGHz converts relative frequency errors
// to MHz (the paper's 4 GHz nominal).
func (s *Simulator) RunTable2(cfg ExperimentConfig) ([]Table2Row, error) {
	cfg, _, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if cfg.Training.Obs == nil {
		cfg.Training.Obs = s.obs
	}
	defer s.obs.Timer("core.run_table2").Start().Stop()
	s.prefetchArtifacts(cfg, nil) // chips only; Table 2 reads no profiles
	const nomFreqMHz = 4000.0
	const nomVddMV = 1000.0
	envs := []struct {
		name string
		cfg  tech.Config
	}{
		{"TS", tech.Config{TimingSpec: true}},
		{"TS+ABB", tech.Config{TimingSpec: true, ABB: true}},
		{"TS+ASV", tech.Config{TimingSpec: true, ASV: true}},
		{"TS+ABB+ASV", tech.Config{TimingSpec: true, ABB: true, ASV: true}},
	}
	// Pre-draw every accuracy query. Each environment's RNG stream spans
	// its chips (a fresh stream per environment, exactly as the serial
	// loop seeded it), and the draws per (subsystem, query) follow the
	// serial order — TH, alpha, the rho multiplier, then the core-
	// frequency backoff, whose value never depended on the solve between
	// them. With the streams drained up front, the (env × chip) units are
	// pure and fan across the pool.
	const queriesPerSub = 6
	nSubs := s.fp.N()
	nUnits := len(envs) * cfg.Chips
	draws := make([][]t2Query, nUnits)
	for ei := range envs {
		rng := mathx.NewRNG(cfg.SeedBase + 77)
		for ci := 0; ci < cfg.Chips; ci++ {
			qs := make([]t2Query, nSubs*queriesPerSub)
			for qi := range qs {
				qs[qi] = t2Query{
					TH:      rng.Uniform(48+273.15, 68+273.15),
					Alpha:   rng.Uniform(0.02, 1.0),
					RhoMult: rng.Uniform(0.8, 4.5),
					FMult:   rng.Uniform(0.8, 1.0),
				}
			}
			draws[ei*cfg.Chips+ci] = qs
		}
	}
	type t2acc struct {
		fErr, vddErr, vbbErr map[floorplan.Kind][]float64
		err                  error
	}
	results := make([]t2acc, nUnits)
	obs.RunPool(s.obs, "core.pool", cfg.Workers, nUnits, func(slot, u int) {
		ei, ci := u/cfg.Chips, u%cfg.Chips
		defer s.obs.Timer("core.unit").Start().Stop()
		r := &results[u]
		seed := cfg.SeedBase + int64(ci)
		chip := s.Chip(seed)
		core, err := s.BuildCoreWithConfig(chip, envs[ei].cfg)
		if err != nil {
			r.err = err
			return
		}
		// Per-chip controller training (§4.3.1): accuracy is measured
		// on the chip whose model populated the controllers, at
		// operating situations the training never saw.
		solver, err := s.TrainFuzzyCached([]*adapt.Core{core}, []int64{seed}, cfg.Training)
		if err != nil {
			r.err = err
			return
		}
		// The whole unit — every solve across the pre-drawn query stream —
		// caches as one table2 artifact keyed on the stream itself.
		p, err := s.cachedTable2Unit(seed, core, solverFingerprint(solver), draws[u],
			func() (table2Payload, error) {
				p := table2Payload{
					FErr:   make(map[floorplan.Kind][]float64),
					VddErr: make(map[floorplan.Kind][]float64),
					VbbErr: make(map[floorplan.Kind][]float64),
				}
				for i := 0; i < core.N(); i++ {
					kind := core.Subs[i].Sub.Kind
					for q := 0; q < queriesPerSub; q++ {
						d := draws[u][i*queriesPerSub+q]
						query := adapt.FreqQuery{
							THK:       d.TH,
							AlphaF:    d.Alpha,
							Rho:       d.Alpha * d.RhoMult,
							Variant:   vats.IdentityVariant(),
							PowerMult: 1,
						}
						fx := core.FreqSolve(i, query).FMax
						ff := solver.FreqMax(core, i, query)
						p.FErr[kind] = append(p.FErr[kind], math.Abs(fx-ff)*nomFreqMHz)
						fCore := tech.SnapFRelDown(fx * d.FMult)
						pxV, pxB := (adapt.Exhaustive{}).PowerLevels(core, i, fCore, query)
						pfV, pfB := solver.PowerLevels(core, i, fCore, query)
						p.VddErr[kind] = append(p.VddErr[kind], math.Abs(pxV-pfV)*1000)
						p.VbbErr[kind] = append(p.VbbErr[kind], math.Abs(pxB-pfB)*1000)
					}
				}
				return p, nil
			})
		if err != nil {
			r.err = err
			return
		}
		r.fErr, r.vddErr, r.vbbErr = p.FErr, p.VddErr, p.VbbErr
	})
	var rows []Table2Row
	for ei, env := range envs {
		type acc struct {
			fErr, vddErr, vbbErr []float64
		}
		byKind := map[floorplan.Kind]*acc{
			floorplan.Memory: {}, floorplan.Mixed: {}, floorplan.Logic: {},
		}
		// Concatenate per-kind error samples chips-ascending, matching the
		// append order of the serial loop, so every mean sums in the same
		// order at any worker count.
		for ci := 0; ci < cfg.Chips; ci++ {
			r := &results[ei*cfg.Chips+ci]
			if r.err != nil {
				return nil, r.err
			}
			for k, a := range byKind {
				a.fErr = append(a.fErr, r.fErr[k]...)
				a.vddErr = append(a.vddErr, r.vddErr[k]...)
				a.vbbErr = append(a.vbbErr, r.vbbErr[k]...)
			}
		}
		freqRow := Table2Row{Param: "Freq (MHz)", Env: env.name,
			AbsErr: map[floorplan.Kind]float64{}, PctErr: map[floorplan.Kind]float64{}}
		for k, a := range byKind {
			freqRow.AbsErr[k] = mathx.Mean(a.fErr)
			freqRow.PctErr[k] = mathx.Mean(a.fErr) / nomFreqMHz * 100
		}
		rows = append(rows, freqRow)
		if env.cfg.ASV {
			r := Table2Row{Param: "Vdd (mV)", Env: env.name,
				AbsErr: map[floorplan.Kind]float64{}, PctErr: map[floorplan.Kind]float64{}}
			for k, a := range byKind {
				r.AbsErr[k] = mathx.Mean(a.vddErr)
				r.PctErr[k] = mathx.Mean(a.vddErr) / nomVddMV * 100
			}
			rows = append(rows, r)
		}
		if env.cfg.ABB {
			r := Table2Row{Param: "Vbb (mV)", Env: env.name,
				AbsErr: map[floorplan.Kind]float64{}}
			for k, a := range byKind {
				r.AbsErr[k] = mathx.Mean(a.vbbErr)
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}
