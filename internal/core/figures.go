package core

import (
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/vats"
	"repro/internal/workload"
)

// CurvePoint is one sample of a per-subsystem or processor-level series.
type CurvePoint struct {
	FRel float64
	Y    float64
}

// SubsystemSeries is one subsystem's PE(f) curve.
type SubsystemSeries struct {
	ID     floorplan.ID
	Kind   floorplan.Kind
	Points []CurvePoint
}

// Figure8Result carries the §6.1 study for one chip and application:
// per-subsystem error-rate curves and the processor performance curve,
// without (TS) and with per-subsystem ASV/ABB reshaping.
type Figure8Result struct {
	App       string
	ChipSeed  int64
	Reshaped  bool
	Subsystem []SubsystemSeries
	Perf      []CurvePoint // performance relative to NoVar
	// PeakF and PeakPerf locate the optimum (Figure 8's annotations).
	PeakF    float64
	PeakPerf float64
}

// figureFGrid is the frequency sweep of Figures 8 and 9.
func figureFGrid() []float64 {
	var fs []float64
	for f := 0.70; f <= 1.30+1e-9; f += 0.02 {
		fs = append(fs, f)
	}
	return fs
}

// Figure8 reproduces Figures 8(a-d) for one chip and one application.
// With reshaped=false, every subsystem runs at nominal supply (the TS
// environment); with reshaped=true, at each frequency the Exhaustive Power
// algorithm picks per-subsystem (Vdd, Vbb) — reshaping the curves so they
// converge near PEMAX until the supply range runs out and some curves
// escape upward.
func (s *Simulator) Figure8(chipSeed int64, appName string, reshaped bool) (*Figure8Result, error) {
	app, err := workload.ByName(appName)
	if err != nil {
		return nil, err
	}
	prof, err := s.Profile(app, app.Phases[0])
	if err != nil {
		return nil, err
	}
	chip := s.Chip(chipSeed)
	env := TS
	if reshaped {
		env = TSASVABB
	}
	core, err := s.BuildCore(chip, env)
	if err != nil {
		return nil, err
	}
	noVarRun, err := s.RunNoVar(app)
	if err != nil {
		return nil, err
	}

	res := &Figure8Result{App: appName, ChipSeed: chipSeed, Reshaped: reshaped}
	for i := 0; i < core.N(); i++ {
		res.Subsystem = append(res.Subsystem, SubsystemSeries{
			ID:   core.Subs[i].Sub.ID,
			Kind: core.Subs[i].Sub.Kind,
		})
	}

	n := core.N()
	op := adapt.OperatingPoint{
		VddV: make([]float64, n),
		VbbV: make([]float64, n),
	}
	for i := range op.VddV {
		op.VddV[i] = s.opts.Varius.VddNomV
	}
	for _, f := range figureFGrid() {
		op.FCore = f
		if reshaped {
			// Per-subsystem reshape at this frequency: minimum power
			// meeting f within constraints; infeasible subsystems keep
			// their fastest achievable setting and their curves escape.
			th := s.th.Params().THBaseK + 12
			for i := 0; i < n; i++ {
				q := core.QueryFor(i, prof, th, tech.QueueFull, tech.FUNormal)
				r := core.PowerSolve(i, f, q)
				op.VddV[i], op.VbbV[i] = r.VddV, r.VbbV
			}
		}
		st, err := core.Evaluate(op, prof)
		if err != nil {
			return nil, err
		}
		// Per-subsystem PE at the solved temperatures.
		for i := 0; i < n; i++ {
			curve := core.Subs[i].Stage.Eval(vats.Cond{
				VddV: op.VddV[i], VbbV: op.VbbV[i], TK: st.Core.Subs[i].TK,
			}, vats.IdentityVariant())
			res.Subsystem[i].Points = append(res.Subsystem[i].Points,
				CurvePoint{FRel: f, Y: curve.PE(f)})
		}
		perfR := 0.0
		if noVarRun.Perf > 0 {
			perfR = st.PerfRel / noVarRun.Perf
		}
		res.Perf = append(res.Perf, CurvePoint{FRel: f, Y: perfR})
		if perfR > res.PeakPerf {
			res.PeakPerf = perfR
			res.PeakF = f
		}
	}
	return res, nil
}

// SurfacePoint is one sample of the Figure 9 power-error-frequency surface.
type SurfacePoint struct {
	PowerW float64
	FRel   float64
	PE     float64 // minimum realizable PE at (PowerW, FRel)
	PerfR  float64 // processor performance with the ALU at that point
}

// Figure9 reproduces the §6.1 three-dimensional study for the integer ALU:
// for each (power budget, frequency) cell, the minimum error probability
// realizable with any per-subsystem ASV/ABB setting whose steady-state
// power fits the budget.
func (s *Simulator) Figure9(chipSeed int64, appName string) ([]SurfacePoint, error) {
	app, err := workload.ByName(appName)
	if err != nil {
		return nil, err
	}
	prof, err := s.Profile(app, app.Phases[0])
	if err != nil {
		return nil, err
	}
	chip := s.Chip(chipSeed)
	core, err := s.BuildCore(chip, TSASVABB)
	if err != nil {
		return nil, err
	}
	aluIdx := -1
	for i := range core.Subs {
		if core.Subs[i].Sub.ID == floorplan.IntALU {
			aluIdx = i
		}
	}
	if aluIdx < 0 {
		return nil, fmt.Errorf("core: floorplan has no IntALU")
	}
	noVarRun, err := s.RunNoVar(app)
	if err != nil {
		return nil, err
	}

	th := s.th.Params().THBaseK + 12
	alpha := prof.Activity[floorplan.IntALU]
	var out []SurfacePoint
	powers := []float64{0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0}
	for _, pBudget := range powers {
		for _, f := range figureFGrid() {
			best := math.Inf(1)
			for _, vdd := range core.Config.VddLevels(1.0) {
				for _, vbb := range core.Config.VbbLevels() {
					st := s.th.SubsystemSteady(thermal.SubsystemInput{
						Index:  aluIdx,
						Vt0Eff: core.Subs[aluIdx].Vt0EffV,
						AlphaF: alpha,
						VddV:   vdd,
						VbbV:   vbb,
						FRel:   f,
					}, th)
					if !st.Converged || st.PowerW() > pBudget ||
						st.TK > s.opts.Limits.TMaxK {
						continue
					}
					curve := core.Subs[aluIdx].Stage.Eval(vats.Cond{
						VddV: vdd, VbbV: vbb, TK: st.TK,
					}, vats.IdentityVariant())
					if pe := curve.PE(f); pe < best {
						best = pe
					}
				}
			}
			if math.IsInf(best, 1) {
				continue // no setting fits this power budget at all
			}
			perf := pipeline.Perf(pipeline.PerfInputs{
				FRel:           f,
				CPIComp:        prof.CPICompFull,
				Mr:             prof.Mr,
				MpNomCycles:    prof.MpNomCycles,
				PE:             best,
				RecoveryCycles: s.opts.Checker.RecoveryCycles,
			})
			perfR := 0.0
			if noVarRun.Perf > 0 {
				perfR = perf / noVarRun.Perf
			}
			out = append(out, SurfacePoint{PowerW: pBudget, FRel: f, PE: best, PerfR: perfR})
		}
	}
	return out, nil
}

// Figure1Result holds the conceptual curves of Figure 1: a stage's path
// delay distribution without and with variation, the stage PE(f) curves,
// and the pipeline-level composition.
type Figure1Result struct {
	// DelayNoVar and DelayVar sample the dynamic path-delay densities (in
	// nominal periods) of one memory stage.
	DelayNoVar, DelayVar []CurvePoint
	// StagePE is the with-variation stage's PE(f).
	StagePE []CurvePoint
	// PipelinePE is the full-core Eq. 4 error rate per instruction.
	PipelinePE []CurvePoint
}

// Figure1 generates the Figure 1 curves from the Dcache stage of one chip.
func (s *Simulator) Figure1(chipSeed int64) (*Figure1Result, error) {
	corner := s.designCorner()
	novar := s.gen.NoVarChip()
	chip := s.Chip(chipSeed)
	sub, err := s.fp.ByID(floorplan.Dcache)
	if err != nil {
		return nil, err
	}
	stNV, err := vats.NewStage(*sub, novar, s.opts.Varius)
	if err != nil {
		return nil, err
	}
	stV, err := vats.NewStage(*sub, chip, s.opts.Varius)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{}
	// Density via numerical differentiation of the delay CDF (1 - PE at
	// f = 1/tau, up to the paths-per-access factor).
	cvNV := stNV.Eval(corner, vats.IdentityVariant())
	cvV := stV.Eval(corner, vats.IdentityVariant())
	for tau := 0.70; tau <= 1.45; tau += 0.01 {
		res.DelayNoVar = append(res.DelayNoVar, CurvePoint{FRel: tau, Y: delayDensity(cvNV, tau)})
		res.DelayVar = append(res.DelayVar, CurvePoint{FRel: tau, Y: delayDensity(cvV, tau)})
	}
	for _, f := range figureFGrid() {
		res.StagePE = append(res.StagePE, CurvePoint{FRel: f, Y: cvV.PE(f)})
	}
	// Pipeline composition with unit activities.
	pl, err := vats.NewPipeline(s.fp, chip, s.opts.Varius)
	if err != nil {
		return nil, err
	}
	curves := make([]*vats.Curve, len(pl.Stages))
	rhos := make([]float64, len(pl.Stages))
	for i, st := range pl.Stages {
		curves[i] = st.Eval(corner, vats.IdentityVariant())
		rhos[i] = 0.5
	}
	for _, f := range figureFGrid() {
		res.PipelinePE = append(res.PipelinePE, CurvePoint{FRel: f, Y: pl.PE(curves, rhos, f)})
	}
	return res, nil
}

// delayDensity numerically differentiates a stage's exceedance curve to
// recover the (per-access) path-delay density near the critical region.
func delayDensity(cv *vats.Curve, tau float64) float64 {
	const h = 5e-3
	pHi := cv.PE(1 / (tau + h)) // P(D > tau+h)
	pLo := cv.PE(1 / (tau - h))
	d := (pLo - pHi) / (2 * h)
	if d < 0 {
		return 0
	}
	return d
}

// Figure2Result holds the taxonomy curves of Figure 2: the Perf(f) peak
// under timing speculation and the before/after PE(f) curves of the tilt,
// shift, and reshape techniques.
type Figure2Result struct {
	Perf          []CurvePoint // (a): Perf(f) with its peak
	PE            []CurvePoint // (a): the PE(f) behind it
	TiltBefore    []CurvePoint // (b)
	TiltAfter     []CurvePoint
	ShiftBefore   []CurvePoint // (c)
	ShiftAfter    []CurvePoint
	ReshapeBefore []CurvePoint // (d): nominal supply
	ReshapeAfter  []CurvePoint // (d): slow stage boosted, fast stage slowed
}

// Figure2 generates the Figure 2 curves from one chip.
func (s *Simulator) Figure2(chipSeed int64, appName string) (*Figure2Result, error) {
	app, err := workload.ByName(appName)
	if err != nil {
		return nil, err
	}
	prof, err := s.Profile(app, app.Phases[0])
	if err != nil {
		return nil, err
	}
	chip := s.Chip(chipSeed)
	corner := s.designCorner()
	res := &Figure2Result{}

	// (a) Perf(f) and PE(f) for the whole core under TS.
	pl, err := vats.NewPipeline(s.fp, chip, s.opts.Varius)
	if err != nil {
		return nil, err
	}
	curves := make([]*vats.Curve, len(pl.Stages))
	rhos := make([]float64, len(pl.Stages))
	cpi := prof.CPITotalNom(tech.QueueFull)
	for i, st := range pl.Stages {
		curves[i] = st.Eval(corner, vats.IdentityVariant())
		rhos[i] = prof.Activity[st.Sub.ID] * cpi
	}
	chk := s.opts.Checker
	for _, f := range figureFGrid() {
		pe := pl.PE(curves, rhos, f)
		perf := pipeline.Perf(pipeline.PerfInputs{
			FRel:           f,
			CPIComp:        prof.CPICompFull,
			Mr:             prof.Mr,
			MpNomCycles:    prof.MpNomCycles,
			PE:             pe,
			RecoveryCycles: chk.RecoveryCycles,
			Checker:        &chk,
		})
		res.Perf = append(res.Perf, CurvePoint{FRel: f, Y: perf})
		res.PE = append(res.PE, CurvePoint{FRel: f, Y: pe})
	}

	// (b) Tilt: the FU before and after enabling the LowSlope replica.
	alu, err := pl.Stage(floorplan.IntALU)
	if err != nil {
		return nil, err
	}
	before := alu.Eval(corner, vats.IdentityVariant())
	after := alu.Eval(corner, tech.FULowSlope.Variant())
	for _, f := range figureFGrid() {
		res.TiltBefore = append(res.TiltBefore, CurvePoint{FRel: f, Y: before.PE(f)})
		res.TiltAfter = append(res.TiltAfter, CurvePoint{FRel: f, Y: after.PE(f)})
	}

	// (c) Shift: the issue queue at full and 3/4 size.
	iq, err := pl.Stage(floorplan.IntQ)
	if err != nil {
		return nil, err
	}
	qBefore := iq.Eval(corner, vats.IdentityVariant())
	qAfter := iq.Eval(corner, tech.QueueThreeQuarter.Variant())
	for _, f := range figureFGrid() {
		res.ShiftBefore = append(res.ShiftBefore, CurvePoint{FRel: f, Y: qBefore.PE(f)})
		res.ShiftAfter = append(res.ShiftAfter, CurvePoint{FRel: f, Y: qAfter.PE(f)})
	}

	// (d) Reshape: boost a slow memory stage with ASV (pushing the curve's
	// bottom right) while slowing a fast logic stage to save power (pushing
	// its top left); the processor-level curve reshapes.
	ireg, err := pl.Stage(floorplan.IntReg)
	if err != nil {
		return nil, err
	}
	dec, err := pl.Stage(floorplan.Decode)
	if err != nil {
		return nil, err
	}
	for _, f := range figureFGrid() {
		beforeY := 0.5*ireg.Eval(corner, vats.IdentityVariant()).PE(f) +
			0.5*dec.Eval(corner, vats.IdentityVariant()).PE(f)
		afterY := 0.5*ireg.Eval(vats.Cond{VddV: 1.15, TK: corner.TK}, vats.IdentityVariant()).PE(f) +
			0.5*dec.Eval(vats.Cond{VddV: 0.9, TK: corner.TK}, vats.IdentityVariant()).PE(f)
		res.ReshapeBefore = append(res.ReshapeBefore, CurvePoint{FRel: f, Y: beforeY})
		res.ReshapeAfter = append(res.ReshapeAfter, CurvePoint{FRel: f, Y: afterY})
	}
	return res, nil
}

// SingleDomainFMax computes the best core frequency achievable when ASV has
// a single chip-wide domain instead of per-subsystem domains — the ablation
// quantifying what fine-grain adaptation buys (cf. §7's contrast with
// whole-chip DVFS).
func (s *Simulator) SingleDomainFMax(core *adapt.Core, prof pipeline.Profile, thK float64) float64 {
	best := 0.0
	for _, vdd := range core.Config.VddLevels(s.opts.Varius.VddNomV) {
		minF := math.Inf(1)
		for i := 0; i < core.N(); i++ {
			q := core.QueryFor(i, prof, thK, tech.QueueFull, tech.FUNormal)
			fr := core.FreqSolveAt(i, q, []float64{vdd}, []float64{0})
			if fr.FMax < minF {
				minF = fr.FMax
			}
		}
		if minF > best {
			best = minF
		}
	}
	return best
}
