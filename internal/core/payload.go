package core

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Binary payload format versions for the artifact kinds whose structs
// live in (or are assembled by) this package. Independent of the kind
// versions in cache.go: decoders sniff the payload's first byte, so a
// store can hold JSON (migrated v1) and binary records of one kind side
// by side.
const (
	profileBinVersion  = 1
	petablesBinVersion = 1
	apprunBinVersion   = 1
	staticptBinVersion = 1
)

// encodeProfile serializes one phase profile in the columnar binary
// form.
func encodeProfile(p pipeline.Profile) []byte {
	var e artifact.Enc
	e.Tag(profileBinVersion)
	e.String(p.AppName)
	e.Varint(int64(p.Class))
	e.Varint(int64(p.PhaseIndex))
	e.F64(p.Weight)
	e.F64(p.CPICompFull)
	e.F64(p.CPICompSmall)
	e.F64(p.Mr)
	e.F64(p.MpNomCycles)
	e.F64s(p.Activity[:])
	e.F64(p.MispredictsPerInstr)
	return e.B
}

// decodeProfile restores a profile encoded by encodeProfile.
func decodeProfile(data []byte, p *pipeline.Profile) error {
	d := artifact.NewDec(data)
	if v := d.Tag(); d.Err() == nil && v != profileBinVersion {
		return fmt.Errorf("core: corrupt profile payload: binary version %d", v)
	}
	p.AppName = d.String()
	p.Class = workload.Class(d.Varint())
	p.PhaseIndex = int(d.Varint())
	p.Weight = d.F64()
	p.CPICompFull = d.F64()
	p.CPICompSmall = d.F64()
	p.Mr = d.F64()
	p.MpNomCycles = d.F64()
	activity := d.F64s(p.Activity[:0])
	p.MispredictsPerInstr = d.F64()
	if err := d.Done(); err != nil {
		return fmt.Errorf("core: corrupt profile payload: %w", err)
	}
	if len(activity) != int(floorplan.NumSubsystems) {
		return fmt.Errorf("core: corrupt profile payload: %d activity entries", len(activity))
	}
	copy(p.Activity[:], activity)
	return nil
}

// encodeAppRun serializes one finished application run. Every float is an
// exact float64 round-trip, so a cached run folds into the summary
// byte-identically to a recomputed one.
func encodeAppRun(r AppRun) []byte {
	var e artifact.Enc
	e.Tag(apprunBinVersion)
	e.String(r.App)
	e.Varint(int64(r.Env))
	e.Varint(int64(r.Mode))
	e.F64(r.FRel)
	e.F64(r.Perf)
	e.F64(r.PowerW)
	e.F64(r.PE)
	e.Uvarint(uint64(len(r.Outcomes)))
	for _, n := range r.Outcomes {
		e.Varint(int64(n))
	}
	e.F64(r.SmallQueueFrac)
	e.F64(r.LowSlopeFrac)
	return e.B
}

// decodeAppRun restores a run encoded by encodeAppRun.
func decodeAppRun(data []byte, r *AppRun) error {
	d := artifact.NewDec(data)
	if v := d.Tag(); d.Err() == nil && v != apprunBinVersion {
		return fmt.Errorf("core: corrupt apprun payload: binary version %d", v)
	}
	r.App = d.String()
	r.Env = Environment(d.Varint())
	r.Mode = Mode(d.Varint())
	r.FRel = d.F64()
	r.Perf = d.F64()
	r.PowerW = d.F64()
	r.PE = d.F64()
	n := d.Uvarint()
	if d.Err() == nil && n != uint64(len(r.Outcomes)) {
		return fmt.Errorf("core: corrupt apprun payload: %d outcome buckets", n)
	}
	for i := range r.Outcomes {
		r.Outcomes[i] = int(d.Varint())
	}
	r.SmallQueueFrac = d.F64()
	r.LowSlopeFrac = d.F64()
	if err := d.Done(); err != nil {
		return fmt.Errorf("core: corrupt apprun payload: %w", err)
	}
	return nil
}

// encodePoint serializes a static operating point.
func encodePoint(p adapt.OperatingPoint) []byte {
	var e artifact.Enc
	e.Tag(staticptBinVersion)
	e.F64(p.FCore)
	e.F64s(p.VddV)
	e.F64s(p.VbbV)
	e.Varint(int64(p.Queue))
	e.Varint(int64(p.FU))
	return e.B
}

// decodePoint restores a point encoded by encodePoint.
func decodePoint(data []byte, p *adapt.OperatingPoint) error {
	d := artifact.NewDec(data)
	if v := d.Tag(); d.Err() == nil && v != staticptBinVersion {
		return fmt.Errorf("core: corrupt staticpt payload: binary version %d", v)
	}
	p.FCore = d.F64()
	p.VddV = d.F64s(p.VddV[:0])
	p.VbbV = d.F64s(p.VbbV[:0])
	p.Queue = tech.QueueSize(d.Varint())
	p.FU = tech.FUChoice(d.Varint())
	if err := d.Done(); err != nil {
		return fmt.Errorf("core: corrupt staticpt payload: %w", err)
	}
	if len(p.VddV) != len(p.VbbV) {
		return fmt.Errorf("core: corrupt staticpt payload: %d vdd vs %d vbb entries", len(p.VddV), len(p.VbbV))
	}
	return nil
}

// encodePETables serializes the accumulated dense PE-fmax tables.
func encodePETables(tabs []adapt.PETableSlot) []byte {
	var e artifact.Enc
	e.B = make([]byte, 0, 8+len(tabs)*72)
	e.Tag(petablesBinVersion)
	e.Uvarint(uint64(len(tabs)))
	for _, t := range tabs {
		e.Varint(int64(t.Slot))
		e.U8(t.Mask)
		for _, f := range t.FMax {
			e.F64(f)
		}
	}
	return e.B
}

// decodePETables restores tables encoded by encodePETables.
func decodePETables(data []byte) ([]adapt.PETableSlot, error) {
	d := artifact.NewDec(data)
	if v := d.Tag(); d.Err() == nil && v != petablesBinVersion {
		return nil, fmt.Errorf("core: corrupt petables payload: binary version %d", v)
	}
	n := d.Uvarint()
	if d.Err() != nil || n > 1<<24 {
		return nil, fmt.Errorf("core: corrupt petables payload: %w", d.Err())
	}
	tabs := make([]adapt.PETableSlot, n)
	for i := range tabs {
		tabs[i].Slot = int(d.Varint())
		tabs[i].Mask = d.U8()
		for j := range tabs[i].FMax {
			tabs[i].FMax[j] = d.F64()
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("core: corrupt petables payload: %w", err)
	}
	return tabs, nil
}
