package core

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// genSpec is a two-client scenario spanning both instruction-mix classes
// (memory-wall lowers to Int, vector-fp to FP), so experiments over it
// exercise the per-class static-point path as well as both pipelines.
func genSpec() workload.Spec {
	return workload.Spec{
		Name: "coretest",
		Clients: []workload.ClientSpec{
			{
				Name:    "stream",
				Class:   workload.GenMemoryWall,
				Arrival: workload.Arrival{Process: workload.Gamma, RatePerS: 200, Shape: 0.5},
				Windows: 4,
				Drift:   0.2,
			},
			{
				Name:    "simd",
				Class:   workload.GenVectorFP,
				Arrival: workload.Arrival{Process: workload.Poisson, RatePerS: 150},
				Windows: 4,
				Drift:   0.1,
			},
		},
	}
}

// genConfig is the cheap experiment budget the generated-workload tests
// run under.
func genConfig(apps []workload.App) ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.Chips = 1
	cfg.SeedBase = 1000
	cfg.Apps = nil
	cfg.Workloads = apps
	cfg.Training.Examples = 60
	cfg.Training.Fuzzy.Epochs = 2
	return cfg
}

// TestReplayMatchesLive: running an experiment on apps lowered from a
// recorded TraceV1 must produce exactly the Summary of running it on the
// live-generated apps for the same spec and seed. This is the core-level
// form of the CLI guarantee that `evalsim -trace` rows are byte-identical
// to `evalsim -workload-spec` rows.
func TestReplayMatchesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training on generated workloads")
	}
	spec := genSpec()
	live, err := workload.GenerateApps(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	data, err := trace.Encode()
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := workload.DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := replayed.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replay) {
		t.Fatalf("apps lowered from the recorded trace differ from live generation")
	}

	ref, err := newSim(t).RunSummary(genConfig(live))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := newSim(t).RunSummary(genConfig(replay))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rep) {
		t.Errorf("replayed-trace summary differs from live-generated:\n  live:   %+v\n  replay: %+v", ref, rep)
	}
}

// TestGeneratedWorkloadWorkerDeterminism: the worker-count invariance that
// pins the proxy suite must hold for generated workloads too — same spec,
// same seed, identical Summary at workers=1 and workers=8.
func TestGeneratedWorkloadWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training on generated workloads")
	}
	apps, err := workload.GenerateApps(genSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := genConfig(apps)
	cfg.Workers = 1
	ref, err := newSim(t).RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := newSim(t).RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, par) {
		t.Errorf("generated-workload summary at workers=8 differs from workers=1:\n  w1: %+v\n  w8: %+v", ref, par)
	}
}

// TestGeneratedAppsCacheStability: Simulator.GeneratedApps with a nil
// store must equal the direct workload.GenerateApps lowering, and the
// mutual-exclusion rule between Apps and Workloads must be enforced.
func TestGeneratedAppsCacheStability(t *testing.T) {
	sim := newSim(t)
	direct, err := workload.GenerateApps(genSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	viaSim, err := sim.GeneratedApps(genSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaSim) {
		t.Errorf("Simulator.GeneratedApps differs from workload.GenerateApps")
	}

	cfg := genConfig(direct)
	cfg.Apps = []string{"gcc"}
	if _, _, err := cfg.resolve(); err == nil {
		t.Error("resolve() accepted both Apps and Workloads")
	}
}
