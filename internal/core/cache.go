package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math/bits"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/checker"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/varius"
	"repro/internal/workload"
)

// Artifact kinds produced by the simulator. Bump a Version whenever the
// producer's output for the same (params, seed) changes.
var (
	chipKind = artifact.Kind{Name: "chip", Version: 1}
	// profile v2: the key material gained trace provenance and the Mix and
	// Phase structs gained wire-format JSON tags, changing the params
	// encoding for unchanged outputs.
	profileKind = artifact.Kind{Name: "profile", Version: 2}
	solverKind  = artifact.Kind{Name: "solver", Version: 1}
	// petables v2: slots carry a per-column build mask (the dense store
	// builds budget columns lazily), changing the payload shape.
	petableKind = artifact.Kind{Name: "petables", Version: 2}
	// trace entries hold canonical TraceV1 documents keyed by their
	// generator inputs (workload.Spec, seed), so generated scenarios replay
	// from the store like proxy-suite artifacts.
	traceKind = artifact.Kind{Name: "trace", Version: 1}
	// apprun entries hold finished per-(chip, environment, mode, app)
	// evaluation results; staticpt entries hold the per-(chip, class)
	// conservative operating points that Static-mode runs share. Both are
	// exact float64 round-trips of the computed values, so a warm summary
	// run skips the adaptation loop entirely and still reduces to
	// byte-identical figures.
	apprunKind   = artifact.Kind{Name: "apprun", Version: 1}
	staticptKind = artifact.Kind{Name: "staticpt", Version: 1}
	// outcomes entries hold one Figure 13 unit's controller-outcome counts
	// (one chip × one technique configuration across the full app suite);
	// table2 entries hold one Table 2 unit's per-kind accuracy samples.
	// Both key on the trained solver's weight fingerprint, so a retrained
	// controller can never replay stale counts.
	outcomesKind = artifact.Kind{Name: "outcomes", Version: 1}
	table2Kind   = artifact.Kind{Name: "table2", Version: 1}
)

// SetArtifacts attaches a persistent artifact store; chip variation maps,
// phase profiles, trained fuzzy solvers, PE tables, generated traces,
// static operating points, and finished per-app adaptation results are
// then loaded from (and written to) it instead of being rebuilt every
// process. A nil store (the default) disables persistence at zero cost.
// Cached artifacts are byte-exact reproductions of a fresh build, so
// results are identical with or without the store.
func (s *Simulator) SetArtifacts(store *artifact.Store) { s.store = store }

// Artifacts returns the attached store (nil when disabled).
func (s *Simulator) Artifacts() *artifact.Store { return s.store }

// cachedChip returns chip seed's maps through the artifact store, or nil
// to tell the caller to build directly (store disabled, or the store
// layer failed in a way its counters already recorded).
func (s *Simulator) cachedChip(seed int64) *varius.ChipMaps {
	if s.store == nil {
		return nil
	}
	key, err := artifact.Key(chipKind, s.opts.Varius, seed)
	if err != nil {
		return nil
	}
	chip := new(varius.ChipMaps)
	err = s.store.GetOrBuild(chipKind, key,
		func(payload []byte) error {
			if artifact.IsBinary(payload) {
				return chip.UnmarshalBinary(payload)
			}
			return chip.UnmarshalJSON(payload)
		},
		func() ([]byte, error) {
			chip = s.gen.Chip(seed)
			return chip.MarshalBinary()
		})
	if err != nil {
		return nil
	}
	return chip
}

// profileParams is the profile artifact's key material. The full Phase
// struct is included (not just its index) so editing the workload tables
// invalidates stale entries without a version bump.
type profileParams struct {
	App   string         `json:"app"`
	Class workload.Class `json:"class"`
	// Trace is the TraceV1 content hash for apps lowered from a trace
	// (empty for the proxy suite): identically named apps from different
	// traces must never share a profile entry.
	Trace    string         `json:"trace,omitempty"`
	Phase    workload.Phase `json:"phase"`
	TraceLen int            `json:"trace_len"`
}

// buildProfile builds (or loads) one phase profile through the store.
func (s *Simulator) buildProfile(app workload.App, ph workload.Phase) (pipeline.Profile, error) {
	seed := profileSeed(app.Name+app.Trace, ph.Index)
	build := func() (pipeline.Profile, error) {
		defer s.obs.Timer("core.profile.build").Start().Stop()
		return pipeline.BuildProfileSim(app, ph, s.opts.TraceLen, seed, s.memoSim(ph.Mix, seed))
	}
	if s.store == nil {
		return build()
	}
	params := profileParams{App: app.Name, Class: app.Class, Trace: app.Trace, Phase: ph, TraceLen: s.opts.TraceLen}
	key, err := artifact.Key(profileKind, params, seed)
	if err != nil {
		return build()
	}
	var p pipeline.Profile
	err = s.store.GetOrBuild(profileKind, key,
		func(payload []byte) error {
			if artifact.IsBinary(payload) {
				return decodeProfile(payload, &p)
			}
			return json.Unmarshal(payload, &p)
		},
		func() ([]byte, error) {
			var berr error
			if p, berr = build(); berr != nil {
				return nil, berr
			}
			return encodeProfile(p), nil
		})
	if err != nil {
		return pipeline.Profile{}, err
	}
	return p, nil
}

// petablePayload is the petables artifact: every dense PE-fmax table one
// run built for one chip. Unlike the other kinds there is no single build
// call site to wrap — tables accumulate lazily as controller invocations
// touch grid points — so the store's raw Get/Put surface is used instead
// of GetOrBuild: load seeds the store after the donor core is assembled,
// and the run's accumulated tables are written back at the end. Table
// values are exact float64 round-trips, so a warm run's solves are
// byte-identical to a cold run's.
type petablePayload struct {
	Tables []adapt.PETableSlot `json:"tables"`
}

// petableKey derives the petables artifact key: the tables are fully
// determined by the chip's stage models, i.e. by (varius params, seed).
func (s *Simulator) petableKey(seed int64) (string, bool) {
	key, err := artifact.Key(petableKind, s.opts.Varius, seed)
	return key, err == nil
}

// loadPETables seeds cpu's dense PE-fmax store from the artifact cache,
// returning how many table columns were imported (0 with no store or no
// entry).
func (s *Simulator) loadPETables(cpu *adapt.Core, seed int64) int {
	if s.store == nil {
		return 0
	}
	key, ok := s.petableKey(seed)
	if !ok {
		return 0
	}
	var p petablePayload
	if !s.store.Get(petableKind, key, func(payload []byte) error {
		if artifact.IsBinary(payload) {
			var derr error
			p.Tables, derr = decodePETables(payload)
			return derr
		}
		return json.Unmarshal(payload, &p)
	}) {
		return 0
	}
	return cpu.ImportPETables(p.Tables)
}

// storePETables writes cpu's built PE-fmax tables back to the artifact
// cache, skipping the write when the run built no columns beyond what
// loadPETables imported.
func (s *Simulator) storePETables(cpu *adapt.Core, seed int64, imported int) {
	if s.store == nil {
		return
	}
	tabs := cpu.ExportPETables()
	cols := 0
	for _, t := range tabs {
		cols += bits.OnesCount8(t.Mask)
	}
	if cols <= imported {
		return
	}
	key, ok := s.petableKey(seed)
	if !ok {
		return
	}
	s.store.Put(petableKind, key, encodePETables(tabs))
}

// appRunParams is the apprun artifact's key material: the full machine
// model behind the chip's cores, the environment's technique
// configuration, the application's identity down to its phase tables, and
// the adaptation policy. The policy is pinned by content, not provenance:
// Solver carries the SHA-256 of the dynamic solver's serialized weights
// (so retrained controllers can never replay a stale run), and Static
// carries the chip's exact static operating point, whose float64 values
// fingerprint the conservative class profile it was derived from.
type appRunParams struct {
	Varius   varius.Params  `json:"varius"`
	Power    power.Params   `json:"power"`
	Thermal  thermal.Params `json:"thermal"`
	Checker  checker.Config `json:"checker"`
	Limits   adapt.Limits   `json:"limits"`
	Tech     tech.Config    `json:"tech"`
	TraceLen int            `json:"trace_len"`

	Mode   Mode             `json:"mode"`
	App    string           `json:"app"`
	Trace  string           `json:"trace,omitempty"`
	Class  workload.Class   `json:"class"`
	Phases []workload.Phase `json:"phases"`
	// PhaseOnly, when set, restricts the run to the phase at that position
	// in Phases (weighted as a whole app, weight 1) — the fleet service's
	// phase-change events cache at this granularity. Absent for whole-app
	// runs, which keeps every pre-existing key unchanged.
	PhaseOnly *int `json:"phase_only,omitempty"`

	Solver string                `json:"solver,omitempty"`
	Static *adapt.OperatingPoint `json:"static,omitempty"`
}

// solverFingerprint is the content identity a dynamic solver contributes
// to apprun keys: the SHA-256 hex of the trained weights for a fuzzy
// solver, a fixed tag for the (stateless) exhaustive algorithm. An empty
// return disables apprun caching for the calling unit.
func solverFingerprint(solver adapt.Solver) string {
	fs, ok := solver.(*adapt.FuzzySolver)
	if !ok {
		if _, ok := solver.(adapt.Exhaustive); ok {
			return "exh"
		}
		return ""
	}
	b, err := fs.MarshalBinary()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// appRunKey derives the apprun artifact key for one (chip, environment,
// mode, app[, phase]) unit, or "" when the unit is uncacheable (store
// disabled, dynamic mode without a solver fingerprint, or key-encoding
// failure). phase < 0 keys the whole app; phase >= 0 keys the single
// phase at that position in app.Phases.
func (s *Simulator) appRunKey(seed int64, cfg tech.Config, app workload.App,
	mode Mode, solverFP string, static *adapt.OperatingPoint, phase int) string {
	if s.store == nil || (mode != Static && solverFP == "") {
		return ""
	}
	params := appRunParams{
		Varius:   s.opts.Varius,
		Power:    s.opts.Power,
		Thermal:  s.opts.Thermal,
		Checker:  s.opts.Checker,
		Limits:   s.opts.Limits,
		Tech:     cfg,
		TraceLen: s.opts.TraceLen,
		Mode:     mode,
		App:      app.Name,
		Trace:    app.Trace,
		Class:    app.Class,
		Phases:   app.Phases,
		Solver:   solverFP,
		Static:   static,
	}
	if phase >= 0 {
		if phase >= len(app.Phases) {
			return ""
		}
		params.PhaseOnly = &phase
	}
	key, err := artifact.Key(apprunKind, params, seed)
	if err != nil {
		return ""
	}
	return key
}

// cachedAppRun wraps one application run in the artifact store: a hit
// replays the finished AppRun instead of re-entering the per-phase
// adaptation loop. Dynamic modes must supply solverFP; Static mode must
// supply its operating point; phase < 0 runs the whole app, phase >= 0 a
// single phase (see appRunKey). Controller-outcome *counters* (the obs
// metrics, not the AppRun outcome counts) only advance on misses, since a
// hit runs no controller.
func (s *Simulator) cachedAppRun(seed int64, core *adapt.Core, app workload.App,
	mode Mode, solverFP string, static *adapt.OperatingPoint, phase int,
	build func() (AppRun, error)) (AppRun, error) {
	key := s.appRunKey(seed, core.Config, app, mode, solverFP, static, phase)
	if key == "" {
		return build()
	}
	var run AppRun
	err := s.store.GetOrBuild(apprunKind, key,
		func(payload []byte) error { return decodeAppRun(payload, &run) },
		func() ([]byte, error) {
			var berr error
			if run, berr = build(); berr != nil {
				return nil, berr
			}
			return encodeAppRun(run), nil
		})
	if err != nil {
		return AppRun{}, err
	}
	return run, nil
}

// staticPointParams is the staticpt artifact's key material: the machine
// model, the technique configuration, and the identities of every class
// profile the conservative worst-case profile folds over, in fold order.
type staticPointParams struct {
	Varius   varius.Params  `json:"varius"`
	Power    power.Params   `json:"power"`
	Thermal  thermal.Params `json:"thermal"`
	Checker  checker.Config `json:"checker"`
	Limits   adapt.Limits   `json:"limits"`
	Tech     tech.Config    `json:"tech"`
	TraceLen int            `json:"trace_len"`

	Class workload.Class  `json:"class"`
	Suite []profileParams `json:"suite"`
}

// cachedStaticPoint is StaticPoint behind the artifact store.
func (s *Simulator) cachedStaticPoint(core *adapt.Core, class workload.Class,
	apps []workload.App, seed int64) (adapt.OperatingPoint, error) {
	if s.store == nil {
		return s.StaticPoint(core, class, apps)
	}
	params := staticPointParams{
		Varius:   s.opts.Varius,
		Power:    s.opts.Power,
		Thermal:  s.opts.Thermal,
		Checker:  s.opts.Checker,
		Limits:   s.opts.Limits,
		Tech:     core.Config,
		TraceLen: s.opts.TraceLen,
		Class:    class,
	}
	for _, app := range apps {
		if app.Class != class {
			continue
		}
		for _, ph := range app.Phases {
			params.Suite = append(params.Suite, profileParams{
				App: app.Name, Class: app.Class, Trace: app.Trace,
				Phase: ph, TraceLen: s.opts.TraceLen,
			})
		}
	}
	key, err := artifact.Key(staticptKind, params, seed)
	if err != nil {
		return s.StaticPoint(core, class, apps)
	}
	var point adapt.OperatingPoint
	err = s.store.GetOrBuild(staticptKind, key,
		func(payload []byte) error { return decodePoint(payload, &point) },
		func() ([]byte, error) {
			var berr error
			if point, berr = s.StaticPoint(core, class, apps); berr != nil {
				return nil, berr
			}
			return encodePoint(point), nil
		})
	if err != nil {
		return adapt.OperatingPoint{}, err
	}
	return point, nil
}

// solverParams is the solver artifact's key material: every input that
// shapes the trained weights — the machine models behind the training
// cores, the technique configuration, the training-chip seeds, and the
// TrainOptions fields that matter. Workers and Obs are deliberately
// absent: training output is byte-identical without them.
type solverParams struct {
	Varius  varius.Params  `json:"varius"`
	Power   power.Params   `json:"power"`
	Thermal thermal.Params `json:"thermal"`
	Checker checker.Config `json:"checker"`
	Limits  adapt.Limits   `json:"limits"`
	Tech    tech.Config    `json:"tech"`

	ChipSeeds []int64 `json:"chip_seeds"`

	Examples     int     `json:"examples"`
	Rules        int     `json:"rules"`
	LearningRate float64 `json:"learning_rate"`
	Epochs       int     `json:"epochs"`
	SigmaInit    float64 `json:"sigma_init"`
	FuzzySeed    int64   `json:"fuzzy_seed"`
	MinBiasComp  float64 `json:"min_bias_comp"`
	THLoK        float64 `json:"th_lo_k"`
	THHiK        float64 `json:"th_hi_k"`
	AlphaLo      float64 `json:"alpha_lo"`
	AlphaHi      float64 `json:"alpha_hi"`
	CPILo        float64 `json:"cpi_lo"`
	CPIHi        float64 `json:"cpi_hi"`
}

// TrainFuzzyCached is adapt.TrainFuzzySolver behind the artifact store:
// when the full (machine config, technique config, chip seeds,
// TrainOptions) fingerprint matches a stored controller set, training is
// skipped and the stored solver — a byte-exact reproduction of the
// trained one — is returned. chipSeeds must list the generator seeds of
// the chips the cores were built from, in core order; that is what makes
// an evalsim run recognize what a fuzzytrain run produced.
func (s *Simulator) TrainFuzzyCached(cores []*adapt.Core, chipSeeds []int64, opts adapt.TrainOptions) (*adapt.FuzzySolver, error) {
	if s.store == nil || len(cores) == 0 || len(chipSeeds) != len(cores) {
		return adapt.TrainFuzzySolver(cores, opts)
	}
	params := solverParams{
		Varius:  s.opts.Varius,
		Power:   s.opts.Power,
		Thermal: s.opts.Thermal,
		Checker: s.opts.Checker,
		Limits:  s.opts.Limits,
		Tech:    cores[0].Config,

		ChipSeeds: chipSeeds,

		Examples:     opts.Examples,
		Rules:        opts.Fuzzy.Rules,
		LearningRate: opts.Fuzzy.LearningRate,
		Epochs:       opts.Fuzzy.Epochs,
		SigmaInit:    opts.Fuzzy.SigmaInit,
		FuzzySeed:    opts.Fuzzy.Seed,
		MinBiasComp:  opts.MinBiasComp,
		THLoK:        opts.THLoK,
		THHiK:        opts.THHiK,
		AlphaLo:      opts.AlphaLo,
		AlphaHi:      opts.AlphaHi,
		CPILo:        opts.CPILo,
		CPIHi:        opts.CPIHi,
	}
	key, err := artifact.Key(solverKind, params, opts.Seed)
	if err != nil {
		return adapt.TrainFuzzySolver(cores, opts)
	}
	var solver *adapt.FuzzySolver
	err = s.store.GetOrBuild(solverKind, key,
		func(payload []byte) error {
			sv := new(adapt.FuzzySolver)
			uerr := sv.UnmarshalJSON
			if artifact.IsBinary(payload) {
				uerr = sv.UnmarshalBinary
			}
			if derr := uerr(payload); derr != nil {
				return derr
			}
			solver = sv
			return nil
		},
		func() ([]byte, error) {
			var terr error
			if solver, terr = adapt.TrainFuzzySolver(cores, opts); terr != nil {
				return nil, terr
			}
			return solver.MarshalBinary()
		})
	if err != nil {
		return nil, err
	}
	return solver, nil
}

// machineParams is the machine-model slice of key material every
// result-level artifact shares: everything that shapes a core's physics
// besides the technique configuration.
type machineParams struct {
	Varius  varius.Params  `json:"varius"`
	Power   power.Params   `json:"power"`
	Thermal thermal.Params `json:"thermal"`
	Checker checker.Config `json:"checker"`
	Limits  adapt.Limits   `json:"limits"`
	Tech    tech.Config    `json:"tech"`
}

func (s *Simulator) machineParams(cfg tech.Config) machineParams {
	return machineParams{
		Varius:  s.opts.Varius,
		Power:   s.opts.Power,
		Thermal: s.opts.Thermal,
		Checker: s.opts.Checker,
		Limits:  s.opts.Limits,
		Tech:    cfg,
	}
}

// outcomesParams is the outcomes artifact's key material: one Figure 13
// unit — the machine model, the unit's technique configuration, the
// trained controller's weight fingerprint, and the identity of every
// (app, phase) profile the unit's serial loop visits, in loop order.
type outcomesParams struct {
	Machine  machineParams `json:"machine"`
	TraceLen int           `json:"trace_len"`
	Solver   string        `json:"solver"`

	Suite []profileParams `json:"suite"`
}

// outcomePayload is one unit's controller-outcome counts. Counts are
// small integers stored as float64 (the reduction's accumulator type),
// which JSON round-trips exactly.
type outcomePayload struct {
	Counts [adapt.NumOutcomes]float64 `json:"counts"`
	Total  float64                    `json:"total"`
}

// cachedOutcomeUnit wraps one Figure 13 (config × chip) unit — the
// AdaptSteady sweep over every app phase — in the artifact store. An
// empty solverFP (untrained or unserializable solver) disables caching.
func (s *Simulator) cachedOutcomeUnit(seed int64, core *adapt.Core, solverFP string,
	apps []workload.App, build func() (outcomePayload, error)) (outcomePayload, error) {
	if s.store == nil || solverFP == "" {
		return build()
	}
	params := outcomesParams{
		Machine:  s.machineParams(core.Config),
		TraceLen: s.opts.TraceLen,
		Solver:   solverFP,
	}
	for _, app := range apps {
		for _, ph := range app.Phases {
			params.Suite = append(params.Suite, profileParams{
				App: app.Name, Class: app.Class, Trace: app.Trace,
				Phase: ph, TraceLen: s.opts.TraceLen,
			})
		}
	}
	key, err := artifact.Key(outcomesKind, params, seed)
	if err != nil {
		return build()
	}
	var p outcomePayload
	err = s.store.GetOrBuild(outcomesKind, key,
		func(payload []byte) error { return json.Unmarshal(payload, &p) },
		func() ([]byte, error) {
			var berr error
			if p, berr = build(); berr != nil {
				return nil, berr
			}
			return json.Marshal(p)
		})
	if err != nil {
		return outcomePayload{}, err
	}
	return p, nil
}

// t2Query is one pre-drawn Table 2 accuracy query. Promoted to key
// material: the table2 artifact pins the exact query stream, so any
// change to the draw schedule invalidates stored samples.
type t2Query struct {
	TH      float64 `json:"th"`
	Alpha   float64 `json:"alpha"`
	RhoMult float64 `json:"rho_mult"`
	FMult   float64 `json:"f_mult"`
}

// table2Params is the table2 artifact's key material: one (env × chip)
// accuracy unit — the machine model, the unit's technique configuration,
// the trained controller's weight fingerprint, and the full pre-drawn
// query stream. TraceLen is deliberately absent: Table 2 reads no
// profiles.
type table2Params struct {
	Machine machineParams `json:"machine"`
	Solver  string        `json:"solver"`

	Queries []t2Query `json:"queries"`
}

// table2Payload is one unit's per-kind accuracy samples, in the serial
// loop's append order. Exact float64 round-trips keep warm reductions
// byte-identical to cold ones.
type table2Payload struct {
	FErr   map[floorplan.Kind][]float64 `json:"f_err"`
	VddErr map[floorplan.Kind][]float64 `json:"vdd_err"`
	VbbErr map[floorplan.Kind][]float64 `json:"vbb_err"`
}

// cachedTable2Unit wraps one Table 2 (env × chip) unit in the artifact
// store.
func (s *Simulator) cachedTable2Unit(seed int64, core *adapt.Core, solverFP string,
	queries []t2Query, build func() (table2Payload, error)) (table2Payload, error) {
	if s.store == nil || solverFP == "" {
		return build()
	}
	params := table2Params{
		Machine: s.machineParams(core.Config),
		Solver:  solverFP,
		Queries: queries,
	}
	key, err := artifact.Key(table2Kind, params, seed)
	if err != nil {
		return build()
	}
	var p table2Payload
	err = s.store.GetOrBuild(table2Kind, key,
		func(payload []byte) error { return json.Unmarshal(payload, &p) },
		func() ([]byte, error) {
			var berr error
			if p, berr = build(); berr != nil {
				return nil, berr
			}
			return json.Marshal(p)
		})
	if err != nil {
		return table2Payload{}, err
	}
	return p, nil
}
