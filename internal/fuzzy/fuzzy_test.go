package fuzzy

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"repro/internal/mathx"
)

// genExamples samples a smooth 3-input function of the kind the Freq/Power
// algorithms compute (monotone in each input, mildly nonlinear).
func genExamples(n int, seed int64) []Example {
	rng := mathx.NewRNG(seed)
	out := make([]Example, n)
	for i := range out {
		x := []float64{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}
		y := 0.5 + 0.3*x[0] - 0.25*x[1]*x[1] + 0.15*math.Sin(3*x[2])
		out[i] = Example{X: x, Y: y}
	}
	return out
}

func TestTrainConfigValidate(t *testing.T) {
	if err := DefaultTrainConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*TrainConfig){
		func(c *TrainConfig) { c.Rules = 0 },
		func(c *TrainConfig) { c.LearningRate = 0 },
		func(c *TrainConfig) { c.LearningRate = 1 },
		func(c *TrainConfig) { c.Epochs = 0 },
		func(c *TrainConfig) { c.SigmaInit = 0 },
	}
	for i, mutate := range bad {
		c := DefaultTrainConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPaperSettings(t *testing.T) {
	c := DefaultTrainConfig()
	if c.Rules != 25 {
		t.Errorf("Rules = %d, want 25 (Figure 7(a))", c.Rules)
	}
	if c.LearningRate != 0.04 {
		t.Errorf("LearningRate = %v, want 0.04 (Appendix A)", c.LearningRate)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(genExamples(10, 1), DefaultTrainConfig()); err == nil {
		t.Error("too few examples should error")
	}
	exs := genExamples(100, 1)
	exs[50].X = []float64{1, 2} // inconsistent dimensionality
	if _, err := Train(exs, DefaultTrainConfig()); err == nil {
		t.Error("ragged examples should error")
	}
	empty := make([]Example, 30)
	for i := range empty {
		empty[i] = Example{X: nil, Y: 0}
	}
	if _, err := Train(empty, DefaultTrainConfig()); err == nil {
		t.Error("empty input vectors should error")
	}
}

func TestLearnsSmoothFunction(t *testing.T) {
	train := genExamples(4000, 2)
	test := genExamples(500, 3)
	c, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	mae, err := c.MAE(test)
	if err != nil {
		t.Fatal(err)
	}
	// Output range is ~[0.1, 0.95]; a useful controller should predict
	// within a few percent of that span, like the paper's Table 2 errors.
	if mae > 0.05 {
		t.Errorf("MAE = %v, want < 0.05", mae)
	}
	// And it must beat the trivial constant predictor by a wide margin.
	trivial := 0.0
	mean := 0.0
	for _, ex := range test {
		mean += ex.Y
	}
	mean /= float64(len(test))
	for _, ex := range test {
		trivial += math.Abs(ex.Y - mean)
	}
	trivial /= float64(len(test))
	if mae > trivial/2 {
		t.Errorf("MAE %v not well below trivial baseline %v", mae, trivial)
	}
}

func TestTrainingImprovesOverSeeding(t *testing.T) {
	train := genExamples(3000, 4)
	test := genExamples(300, 5)
	cfgNoTrain := DefaultTrainConfig()
	cfgNoTrain.Epochs = 1
	cfgNoTrain.LearningRate = 1e-9 // effectively untrained beyond seeding
	seeded, err := Train(train, cfgNoTrain)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	maeSeed, _ := seeded.MAE(test)
	maeTrain, _ := trained.MAE(test)
	if maeTrain >= maeSeed {
		t.Errorf("gradient training did not help: %v vs %v", maeTrain, maeSeed)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := genExamples(1000, 6)
	a, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.7, 0.2}
	pa, _ := a.Predict(x)
	pb, _ := b.Predict(x)
	if pa != pb {
		t.Error("training is not deterministic")
	}
}

func TestPredictValidation(t *testing.T) {
	c, err := Train(genExamples(500, 7), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong dimensionality should error")
	}
}

func TestOutOfSupportFallsBack(t *testing.T) {
	c, err := Train(genExamples(500, 8), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Far outside [0,1]^3: the controller answers with the training mean
	// rather than garbage.
	p, err := c.Predict([]float64{50, -50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("out-of-support prediction = %v", p)
	}
	if p < 0 || p > 1.2 {
		t.Errorf("out-of-support prediction %v far from training range", p)
	}
}

func TestAccessors(t *testing.T) {
	c, err := Train(genExamples(200, 9), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Rules() != 25 || c.Inputs() != 3 {
		t.Errorf("Rules/Inputs = %d/%d", c.Rules(), c.Inputs())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	c, err := Train(genExamples(800, 10), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var restored Controller
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0.1, 0.9, 0.4}, {0.8, 0.2, 0.6}} {
		pa, _ := c.Predict(x)
		pb, _ := restored.Predict(x)
		if pa != pb {
			t.Errorf("restored controller differs at %v: %v vs %v", x, pa, pb)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var c Controller
	if err := json.Unmarshal([]byte(`{"mu":[],"sigma":[],"y":[]}`), &c); err == nil {
		t.Error("empty state should be rejected")
	}
	if err := json.Unmarshal([]byte(`{"mu":[[1,2]],"sigma":[[1]],"y":[0.5],"lo":[0],"hi":[1]}`), &c); err == nil {
		t.Error("ragged state should be rejected")
	}
	if err := json.Unmarshal([]byte(`not json`), &c); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestMAEValidation(t *testing.T) {
	c, err := Train(genExamples(200, 11), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MAE(nil); err == nil {
		t.Error("empty evaluation set should error")
	}
}

func TestMoreRulesHelp(t *testing.T) {
	// Ablation sanity: 25 rules should beat 4 rules on the same budget.
	train := genExamples(3000, 12)
	test := genExamples(300, 13)
	small := DefaultTrainConfig()
	small.Rules = 4
	cSmall, err := Train(train, small)
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	maeS, _ := cSmall.MAE(test)
	maeB, _ := cBig.MAE(test)
	if maeB >= maeS {
		t.Errorf("25 rules (%v) should beat 4 rules (%v)", maeB, maeS)
	}
}

func TestControllerEqual(t *testing.T) {
	train := genExamples(500, 9)
	a, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("identically-trained controllers are not Equal")
	}
	if !a.Equal(a) {
		t.Error("controller is not Equal to itself")
	}
	cfg := DefaultTrainConfig()
	cfg.Seed++
	c, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("controllers trained with different seeds are Equal")
	}
	var nilC *Controller
	if a.Equal(nil) || nilC.Equal(a) {
		t.Error("nil comparison must be false")
	}
	if !nilC.Equal(nil) {
		t.Error("nil must Equal nil")
	}
}

// TestConcurrentTrainingIsDeterministic: Train calls racing on separate
// goroutines must each produce the bit-exact controller a serial call
// yields — the property the parallel training pipeline stands on.
func TestConcurrentTrainingIsDeterministic(t *testing.T) {
	train := genExamples(800, 10)
	ref, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	got := make([]*Controller, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Train(train, DefaultTrainConfig())
			if err == nil {
				got[w] = c
			}
		}(w)
	}
	wg.Wait()
	for w, c := range got {
		if c == nil {
			t.Fatalf("goroutine %d: training failed", w)
		}
		if !ref.Equal(c) {
			t.Errorf("goroutine %d: controller differs from serial reference", w)
		}
	}
}
