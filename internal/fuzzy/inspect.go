package fuzzy

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Rule is the physical reading of one fuzzy rule (Appendix A notes that,
// unlike perceptrons or neural networks, fuzzy rules can be inspected and
// even hand-extended with expert information): "IF input_j is near
// Center[j] (within ~Width[j]) for all j THEN output is Consequent".
// Centers and widths are reported in the controller's *denormalized* input
// units.
type Rule struct {
	Index      int
	Centers    []float64
	Widths     []float64
	Consequent float64
}

// Rule returns rule i in physical units.
func (c *Controller) Rule(i int) (Rule, error) {
	if i < 0 || i >= len(c.mu) {
		return Rule{}, fmt.Errorf("fuzzy: rule %d out of range [0, %d)", i, len(c.mu))
	}
	r := Rule{
		Index:      i,
		Centers:    make([]float64, len(c.lo)),
		Widths:     make([]float64, len(c.lo)),
		Consequent: c.y[i],
	}
	for j := range c.lo {
		span := c.hi[j] - c.lo[j]
		r.Centers[j] = c.lo[j] + c.mu[i][j]*span
		r.Widths[j] = c.sigma[i][j] * span
	}
	return r, nil
}

// RulesByWeight orders rule indices by the magnitude of their consequent's
// deviation from the controller's fallback output — a rough "influence"
// ranking for inspection.
func (c *Controller) RulesByWeight() []int {
	idx := make([]int, len(c.y))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := math.Abs(c.y[idx[a]] - c.fallback)
		db := math.Abs(c.y[idx[b]] - c.fallback)
		return da > db
	})
	return idx
}

// Describe renders the controller's rules as text, one per line, with the
// given input names (names beyond the dimensionality are ignored; missing
// names fall back to x0, x1, ...).
func (c *Controller) Describe(names []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fuzzy controller: %d rules over %d inputs (fallback %.4g)\n",
		len(c.mu), len(c.lo), c.fallback)
	for i := range c.mu {
		r, err := c.Rule(i)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "  R%02d: IF ", i)
		for j := range r.Centers {
			if j > 0 {
				sb.WriteString(" AND ")
			}
			name := fmt.Sprintf("x%d", j)
			if j < len(names) && names[j] != "" {
				name = names[j]
			}
			fmt.Fprintf(&sb, "%s≈%.4g(±%.2g)", name, r.Centers[j], r.Widths[j])
		}
		fmt.Fprintf(&sb, " THEN %.4g\n", r.Consequent)
	}
	return sb.String()
}

// Footprint returns the controller's storage size in bytes (the quantity
// the paper budgets at ~120 KB for the whole controller system).
func (c *Controller) Footprint() int {
	n, m := len(c.mu), len(c.lo)
	// mu + sigma matrices, y vector, normalization ranges; 8 bytes each.
	return 8 * (2*n*m + n + 2*m)
}
