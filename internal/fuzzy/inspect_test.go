package fuzzy

import (
	"strings"
	"testing"
)

func trained(t *testing.T) *Controller {
	t.Helper()
	c, err := Train(genExamples(500, 99), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRuleInspection(t *testing.T) {
	c := trained(t)
	r, err := c.Rule(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Centers) != c.Inputs() || len(r.Widths) != c.Inputs() {
		t.Fatalf("rule shape wrong: %+v", r)
	}
	// Centers are reported in input units: the training inputs live in
	// [0,1], so (allowing for gradient drift) centers stay near that box.
	for j, ctr := range r.Centers {
		if ctr < -0.5 || ctr > 1.5 {
			t.Errorf("center[%d] = %v far outside the input range", j, ctr)
		}
		if r.Widths[j] <= 0 {
			t.Errorf("width[%d] = %v must be positive", j, r.Widths[j])
		}
	}
	if _, err := c.Rule(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := c.Rule(c.Rules()); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestRulesByWeight(t *testing.T) {
	c := trained(t)
	order := c.RulesByWeight()
	if len(order) != c.Rules() {
		t.Fatalf("ordering has %d entries", len(order))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatal("duplicate rule in ordering")
		}
		seen[i] = true
	}
	// Deviations must be non-increasing.
	prev := -1.0
	for k, i := range order {
		d := c.y[i] - c.fallback
		if d < 0 {
			d = -d
		}
		if k > 0 && d > prev+1e-12 {
			t.Fatal("ordering not by decreasing influence")
		}
		prev = d
	}
}

func TestDescribe(t *testing.T) {
	c := trained(t)
	out := c.Describe([]string{"TH", "Rth"})
	if !strings.Contains(out, "25 rules") {
		t.Errorf("missing rule count:\n%s", out[:80])
	}
	if !strings.Contains(out, "TH≈") || !strings.Contains(out, "Rth≈") {
		t.Error("named inputs missing")
	}
	if !strings.Contains(out, "x2≈") {
		t.Error("unnamed input should fall back to x2")
	}
	if strings.Count(out, "THEN") != c.Rules() {
		t.Errorf("expected %d THEN clauses", c.Rules())
	}
}

func TestFootprint(t *testing.T) {
	c := trained(t)
	// 25 rules x 3 inputs: 2*75 matrix entries + 25 consequents + 6 range
	// bounds = 181 floats = 1448 bytes.
	want := 8 * (2*25*3 + 25 + 2*3)
	if got := c.Footprint(); got != want {
		t.Errorf("Footprint = %d, want %d", got, want)
	}
	// The full controller system (45 controllers: 15 subsystems x 3
	// outputs, 6-7 inputs) lands in the paper's ~120 KB ballpark.
	perFC := 8 * (2*25*7 + 25 + 2*7)
	if total := perFC * 45; total > 200_000 {
		t.Errorf("system footprint %d bytes far above the paper's ~120 KB", total)
	}
}
