package fuzzy

import (
	"errors"

	"repro/internal/artifact"
)

// AppendBinary encodes the controller onto e in the artifact store's
// columnar form: each rule's centers and widths, the consequents, and
// the normalization bounds as contiguous little-endian float64 blocks.
// The layout is rules, width, mu rows, sigma rows, y, lo, hi, fallback.
func (c *Controller) AppendBinary(e *artifact.Enc) {
	e.Uvarint(uint64(len(c.mu)))
	width := 0
	if len(c.mu) > 0 {
		width = len(c.mu[0])
	}
	e.Uvarint(uint64(width))
	for _, row := range c.mu {
		e.F64s(row)
	}
	for _, row := range c.sigma {
		e.F64s(row)
	}
	e.F64s(c.y)
	e.F64s(c.lo)
	e.F64s(c.hi)
	e.F64(c.fallback)
}

// DecodeBinary restores a controller encoded by AppendBinary, applying
// the same structural validation as UnmarshalJSON.
func (c *Controller) DecodeBinary(d *artifact.Dec) error {
	rules := int(d.Uvarint())
	width := int(d.Uvarint())
	if d.Err() != nil || rules <= 0 || rules > 1<<16 || width < 0 || width > 1<<16 {
		return errors.New("fuzzy: corrupt controller state")
	}
	mu := make([][]float64, rules)
	sigma := make([][]float64, rules)
	for r := range mu {
		mu[r] = d.F64s(nil)
	}
	for r := range sigma {
		sigma[r] = d.F64s(nil)
	}
	y := d.F64s(nil)
	lo := d.F64s(nil)
	hi := d.F64s(nil)
	fallback := d.F64()
	if d.Err() != nil {
		return d.Err()
	}
	if len(y) != rules || len(lo) != width || len(hi) != width {
		return errors.New("fuzzy: corrupt controller state")
	}
	for r := range mu {
		if len(mu[r]) != len(lo) || len(sigma[r]) != len(lo) {
			return errors.New("fuzzy: corrupt controller state (rule width)")
		}
	}
	c.mu, c.sigma, c.y, c.lo, c.hi, c.fallback = mu, sigma, y, lo, hi, fallback
	return nil
}
