package floorplan

import (
	"math"
	"testing"
)

func defaultPlan(t *testing.T) *Floorplan {
	t.Helper()
	f, err := Default(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaultHas15Subsystems(t *testing.T) {
	f := defaultPlan(t)
	if f.N() != int(NumSubsystems) {
		t.Fatalf("N = %d, want %d", f.N(), int(NumSubsystems))
	}
	if f.N() != 15 {
		t.Fatalf("the paper models 15 subsystems per core, got %d", f.N())
	}
}

func TestDefaultRejectsBadSide(t *testing.T) {
	if _, err := Default(0); err == nil {
		t.Error("expected error for zero core side")
	}
	if _, err := Default(-1); err == nil {
		t.Error("expected error for negative core side")
	}
}

func TestAllIDsPresentOnce(t *testing.T) {
	f := defaultPlan(t)
	seen := map[ID]int{}
	for _, s := range f.Subsystems {
		seen[s.ID]++
	}
	for id := ID(0); id < NumSubsystems; id++ {
		if seen[id] != 1 {
			t.Errorf("subsystem %v appears %d times", id, seen[id])
		}
	}
}

func TestKindDistribution(t *testing.T) {
	f := defaultPlan(t)
	counts := map[Kind]int{}
	for _, s := range f.Subsystems {
		counts[s.Kind]++
	}
	// The paper's Figure 7(b) labels the register/cache/TLB/map structures
	// memory, queues and predictor mixed, and FUs/decode logic.
	if counts[Memory] != 8 || counts[Mixed] != 4 || counts[Logic] != 3 {
		t.Errorf("kind counts = %v, want memory:8 mixed:4 logic:3", counts)
	}
}

func TestRectsInsideCoreAndDisjoint(t *testing.T) {
	f := defaultPlan(t)
	for i, a := range f.Subsystems {
		if a.Rect.X0 < 0 || a.Rect.Y0 < 0 ||
			a.Rect.X1 > f.CoreSide+1e-12 || a.Rect.Y1 > f.CoreSide+1e-12 {
			t.Errorf("%v rect %+v outside core", a.ID, a.Rect)
		}
		if a.Rect.X0 >= a.Rect.X1 || a.Rect.Y0 >= a.Rect.Y1 {
			t.Errorf("%v rect %+v degenerate", a.ID, a.Rect)
		}
		for _, b := range f.Subsystems[i+1:] {
			if rectsOverlap(a.Rect.X0, a.Rect.Y0, a.Rect.X1, a.Rect.Y1,
				b.Rect.X0, b.Rect.Y0, b.Rect.X1, b.Rect.Y1) {
				t.Errorf("%v and %v overlap", a.ID, b.ID)
			}
		}
	}
}

func rectsOverlap(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 float64) bool {
	return ax0 < bx1 && bx0 < ax1 && ay0 < by1 && by0 < ay1
}

func TestAreaFracMatchesRect(t *testing.T) {
	f := defaultPlan(t)
	coreArea := f.CoreSide * f.CoreSide
	for _, s := range f.Subsystems {
		frac := s.Rect.Area() / coreArea
		if math.Abs(frac-s.AreaFrac) > 1e-9 {
			t.Errorf("%v AreaFrac %v != rect fraction %v", s.ID, s.AreaFrac, frac)
		}
	}
}

func TestFUAreasMatchPaper(t *testing.T) {
	f := defaultPlan(t)
	alu, err := f.ByID(IntALU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7(a): IntALU subsystem = 0.55% of proc area.
	if math.Abs(alu.AreaFrac-0.0055) > 0.0005 {
		t.Errorf("IntALU area = %.4f%%, want ~0.55%%", alu.AreaFrac*100)
	}
	fpu, err := f.ByID(FPUnit)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7(a): FP adder + multiplier = 1.90% of proc area.
	if math.Abs(fpu.AreaFrac-0.019) > 0.002 {
		t.Errorf("FPUnit area = %.4f%%, want ~1.90%%", fpu.AreaFrac*100)
	}
}

func TestTotalAreaReasonable(t *testing.T) {
	f := defaultPlan(t)
	total := f.TotalAreaFrac()
	if total < 0.5 || total > 1.0 {
		t.Errorf("total subsystem area fraction = %v, want in [0.5, 1.0]", total)
	}
}

func TestByIDUnknown(t *testing.T) {
	f := defaultPlan(t)
	if _, err := f.ByID(ID(99)); err == nil {
		t.Error("expected error for unknown ID")
	}
}

func TestStringers(t *testing.T) {
	if Icache.String() != "Icache" || FPUnit.String() != "FPUnit" {
		t.Error("ID.String misbehaves")
	}
	if ID(99).String() == "" {
		t.Error("out-of-range ID should still print")
	}
	if Logic.String() != "logic" || Memory.String() != "memory" || Mixed.String() != "mixed" {
		t.Error("Kind.String misbehaves")
	}
	if Kind(9).String() == "" {
		t.Error("out-of-range Kind should still print")
	}
}

func TestAreaOverheadsTotal10_6(t *testing.T) {
	// Figure 7(d): the EVAL additions cost 10.6% of processor area.
	if got := TotalAreaOverheadPercent(); math.Abs(got-10.6) > 1e-9 {
		t.Errorf("total area overhead = %v%%, want 10.6%%", got)
	}
	rows := AreaOverheads()
	if len(rows) != 7 {
		t.Errorf("Figure 7(d) has 7 sources, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Percent < 0 {
			t.Errorf("negative overhead for %s", r.Source)
		}
	}
}

func TestIntFPSides(t *testing.T) {
	f := defaultPlan(t)
	intOnly := map[ID]bool{IntMap: true, IntQ: true, IntReg: true, IntALU: true}
	fpOnly := map[ID]bool{FPMap: true, FPQ: true, FPReg: true, FPUnit: true}
	for _, s := range f.Subsystems {
		switch {
		case intOnly[s.ID]:
			if !s.IntSide || s.FPSide {
				t.Errorf("%v should be int-side only", s.ID)
			}
		case fpOnly[s.ID]:
			if s.IntSide || !s.FPSide {
				t.Errorf("%v should be fp-side only", s.ID)
			}
		default:
			if !s.IntSide || !s.FPSide {
				t.Errorf("%v should serve both sides", s.ID)
			}
		}
	}
}
