// Package floorplan describes the processor core used throughout the
// evaluation: the 15 subsystems of Figure 7(b) — their kind (logic, memory,
// or mixed), their area, and their placement on the die — plus the area
// overheads of the EVAL additions tabulated in Figure 7(d).
//
// The floorplan determines which cells of a chip's variation map belong to
// each subsystem, and provides the per-subsystem area constants from which
// the power model derives Kdyn, Ksta and the thermal model derives Rth.
package floorplan

import (
	"fmt"

	"repro/internal/grid"
)

// Kind classifies a subsystem's circuit structure, which sets the shape of
// its dynamic path-delay distribution (§6.1): memory structures have
// homogeneous paths and a rapid error onset; logic has a wide variety of
// path lengths and a gradual onset; mixed falls in between.
type Kind int

const (
	Logic Kind = iota
	Memory
	Mixed
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Logic:
		return "logic"
	case Memory:
		return "memory"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ID identifies one of the core's subsystems.
type ID int

// The 15 subsystems of Figure 7(b).
const (
	Icache ID = iota
	ITLB
	BranchPred
	Decode
	IntMap
	IntQ
	IntReg
	IntALU
	FPMap
	FPQ
	FPReg
	FPUnit
	LdStQ
	Dcache
	DTLB
	NumSubsystems // sentinel
)

// String returns the subsystem's conventional name.
func (id ID) String() string {
	names := [...]string{
		"Icache", "ITLB", "BranchPred", "Decode", "IntMap", "IntQ",
		"IntReg", "IntALU", "FPMap", "FPQ", "FPReg", "FPUnit", "LdStQ",
		"Dcache", "DTLB",
	}
	if id < 0 || int(id) >= len(names) {
		return fmt.Sprintf("ID(%d)", int(id))
	}
	return names[id]
}

// Subsystem describes one core subsystem.
type Subsystem struct {
	ID   ID
	Kind Kind
	// AreaFrac is the subsystem's area as a fraction of core area.
	AreaFrac float64
	// Rect is the subsystem's placement in die coordinates (same units as
	// the variation-map grid).
	Rect grid.Rect
	// PathDepth is the typical number of gates (FO4-equivalents) on an
	// exercised path; the random per-transistor variation component
	// averages over this depth.
	PathDepth int
	// DynDensity and StaDensity are relative power densities (per unit
	// area) used to apportion the core's nominal dynamic and static power
	// across subsystems when calibrating Kdyn and Ksta.
	DynDensity float64
	StaDensity float64
	// TypicalAlpha is the suite-mean activity factor (accesses/cycle) of
	// the subsystem, measured over the 26-app proxy suite; the power
	// calibration anchors each subsystem's nominal dynamic power at its
	// own typical activity so that atypical access rates scale around it.
	TypicalAlpha float64
	// IntSide and FPSide mark which application classes exercise the
	// subsystem heavily (drives default activity factors).
	IntSide, FPSide bool
}

// Floorplan is a complete core description.
type Floorplan struct {
	CoreSide   float64 // die-coordinate side length of the core
	Subsystems []Subsystem
}

// Default returns the evaluation core: an AMD-Athlon-64-like 3-issue core
// with the Figure 7(b) subsystem list, laid out on a square of the given
// side (die units; the 4-core CMP of the paper makes each core half the
// chip side).
func Default(coreSide float64) (*Floorplan, error) {
	if coreSide <= 0 {
		return nil, fmt.Errorf("floorplan: core side %g must be positive", coreSide)
	}
	// Layout in fractional core coordinates (x0, y0, x1, y1); scaled to
	// die units below. Areas follow the die-photo measurements quoted in
	// Figure 7(a) for the FUs (IntALU 0.55%, FP add+mul 1.90%) and
	// representative Athlon-64 proportions for the rest.
	type entry struct {
		id                     ID
		kind                   Kind
		x0, y0, x1, y1         float64
		depth                  int
		dynDensity, staDensity float64
		typAlpha               float64
		intSide, fpSide        bool
	}
	entries := []entry{
		{Icache, Memory, 0.00, 0.00, 0.50, 0.40, 8, 0.8, 1.5, 0.14, true, true},
		{ITLB, Memory, 0.50, 0.00, 0.55, 0.30, 8, 0.7, 1.4, 0.14, true, true},
		{BranchPred, Mixed, 0.55, 0.00, 0.75, 0.20, 10, 1.0, 1.2, 0.15, true, true},
		{Decode, Logic, 0.75, 0.00, 1.00, 0.32, 14, 1.2, 1.0, 0.43, true, true},
		{IntMap, Memory, 0.50, 0.30, 0.60, 0.50, 8, 1.1, 1.3, 0.38, true, false},
		{IntQ, Mixed, 0.70, 0.32, 0.85, 0.52, 10, 4.0, 1.2, 0.38, true, false},
		{IntReg, Memory, 0.50, 0.50, 0.60, 0.70, 8, 1.6, 1.3, 0.57, true, false},
		{IntALU, Logic, 0.70, 0.52, 0.755, 0.62, 14, 5.0, 1.0, 0.21, true, false},
		{FPMap, Memory, 0.60, 0.32, 0.70, 0.52, 8, 1.0, 1.3, 0.06, false, true},
		{FPQ, Mixed, 0.85, 0.32, 0.95, 0.52, 10, 3.0, 1.2, 0.06, false, true},
		{FPReg, Memory, 0.60, 0.52, 0.70, 0.72, 8, 1.3, 1.3, 0.08, false, true},
		{FPUnit, Logic, 0.755, 0.52, 0.85, 0.72, 16, 3.5, 1.0, 0.06, false, true},
		{LdStQ, Mixed, 0.50, 0.72, 0.65, 0.92, 10, 2.0, 1.2, 0.17, true, true},
		{Dcache, Memory, 0.00, 0.40, 0.50, 0.80, 8, 0.9, 1.5, 0.17, true, true},
		{DTLB, Memory, 0.65, 0.72, 0.725, 0.92, 8, 0.8, 1.4, 0.17, true, true},
	}
	subs := make([]Subsystem, 0, len(entries))
	for _, e := range entries {
		r := grid.Rect{
			X0: e.x0 * coreSide, Y0: e.y0 * coreSide,
			X1: e.x1 * coreSide, Y1: e.y1 * coreSide,
		}
		subs = append(subs, Subsystem{
			ID:           e.id,
			Kind:         e.kind,
			AreaFrac:     (e.x1 - e.x0) * (e.y1 - e.y0),
			Rect:         r,
			PathDepth:    e.depth,
			DynDensity:   e.dynDensity,
			StaDensity:   e.staDensity,
			TypicalAlpha: e.typAlpha,
			IntSide:      e.intSide,
			FPSide:       e.fpSide,
		})
	}
	return &Floorplan{CoreSide: coreSide, Subsystems: subs}, nil
}

// N returns the number of subsystems.
func (f *Floorplan) N() int { return len(f.Subsystems) }

// ByID returns the subsystem with the given ID.
func (f *Floorplan) ByID(id ID) (*Subsystem, error) {
	for i := range f.Subsystems {
		if f.Subsystems[i].ID == id {
			return &f.Subsystems[i], nil
		}
	}
	return nil, fmt.Errorf("floorplan: no subsystem %v", id)
}

// TotalAreaFrac returns the summed area fraction of all subsystems (the
// remainder of the core is interconnect, L2 interface, and other
// uninstrumented logic).
func (f *Floorplan) TotalAreaFrac() float64 {
	s := 0.0
	for i := range f.Subsystems {
		s += f.Subsystems[i].AreaFrac
	}
	return s
}

// AreaOverhead describes one row of Figure 7(d): the additional processor
// area consumed by an EVAL mechanism.
type AreaOverhead struct {
	Source  string
	Percent float64 // % of processor area
}

// AreaOverheads returns the Figure 7(d) budget. The sum is the paper's
// headline 10.6% area cost.
func AreaOverheads() []AreaOverhead {
	return []AreaOverhead{
		{"Checker", 7.0},
		{"IntALU Repl", 0.7},
		{"FPAdd/Mul Repl", 2.5},
		{"I-Queue Resize", 0.0},
		{"Phase Detector", 0.3},
		{"Sensors", 0.1},
		{"ASV", 0.0},
	}
}

// TotalAreaOverheadPercent sums the Figure 7(d) budget.
func TotalAreaOverheadPercent() float64 {
	t := 0.0
	for _, o := range AreaOverheads() {
		t += o.Percent
	}
	return t
}
