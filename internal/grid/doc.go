// Package grid models the spatial discretization of a chip used by the
// variation model of Sarangi et al. (VARIUS, §2.1 of the EVAL paper):
// the die is divided into a grid of cells, and the systematic component
// of a process parameter (threshold voltage Vt, effective channel length
// Leff) takes a single value per cell, drawn from a multivariate normal
// distribution whose correlation depends only on the distance between
// cells and decays to zero at a distance phi (the "range").
//
// The package provides three pieces:
//
//   - Grid: the W×H cell layout with cell↔coordinate mapping and
//     inter-cell distances in die units.
//   - Spherical: the distance-only spherical correlation function the
//     VARIUS papers use, parameterized by phi (the paper sets phi to
//     half the die side).
//   - FieldGenerator: a Cholesky-factorized sampler that turns a Grid
//     plus a CorrelationFunc into correlated Gaussian fields — one draw
//     per chip, seeded, bit-reproducible.
//
// In the EVAL reproduction the fields produced here become the per-chip
// Vt/Leff maps of internal/varius, which in turn drive every downstream
// frequency, power, and error-rate number. Nothing in this package knows
// about processors; it is pure spatial statistics.
package grid
