package grid

import (
	"testing"

	"repro/internal/mathx"
)

// regionReference is the pre-cache implementation of Field.Region: a full
// cell scan per call. Kept here verbatim as the oracle for the index-list
// fast path.
func regionReference(f *Field, rect Rect) []float64 {
	var out []float64
	for i := range f.Values {
		x, y := f.Grid.CellCenter(i)
		if rect.Contains(x, y) {
			out = append(out, f.Values[i])
		}
	}
	if len(out) == 0 {
		cx := 0.5 * (rect.X0 + rect.X1)
		cy := 0.5 * (rect.Y0 + rect.Y1)
		out = append(out, f.AtXY(cx, cy))
	}
	return out
}

func testRects(side float64) []Rect {
	return []Rect{
		{0, 0, side, side}, // whole die
		{0.1 * side, 0.2 * side, 0.6 * side, 0.5 * side},         // interior
		{0.7 * side, 0.7 * side, side, side},                     // corner
		{0.41 * side, 0.43 * side, 0.4101 * side, 0.4302 * side}, // tiny: fallback cell
		{0.95 * side, 0.01 * side, 0.999 * side, 0.0199 * side},  // thin sliver
	}
}

// TestRegionMatchesReference pins the precomputed-index Region (and the
// RegionCache path) to the original per-call scan, value for value.
func TestRegionMatchesReference(t *testing.T) {
	g, err := New(10, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := NewFieldGenerator(g, Spherical(0.5))
	if err != nil {
		t.Fatal(err)
	}
	f := fg.Sample(mathx.NewRNG(42), 0.25, 0.03)
	rc := NewRegionCache(g)
	for _, rect := range testRects(g.Side) {
		want := regionReference(f, rect)
		for pass := 0; pass < 2; pass++ { // second pass hits the cache
			got := f.Region(rect)
			cached := f.ValuesAt(rc.Indices(g, rect))
			if len(got) != len(want) || len(cached) != len(want) {
				t.Fatalf("rect %+v: lengths %d/%d, want %d", rect, len(got), len(cached), len(want))
			}
			for i := range want {
				if got[i] != want[i] || cached[i] != want[i] {
					t.Fatalf("rect %+v cell %d: got %g cached %g want %g",
						rect, i, got[i], cached[i], want[i])
				}
			}
		}
	}
}

// TestRegionCacheForeignGrid checks the cache declines grids it does not
// serve rather than mixing index lists across geometries.
func TestRegionCacheForeignGrid(t *testing.T) {
	g1, _ := New(10, 10, 1.0)
	g2, _ := New(7, 7, 1.0)
	rc := NewRegionCache(g1)
	rect := Rect{0, 0, 0.5, 0.5}
	want := g2.RegionIndices(rect)
	got := rc.Indices(g2, rect)
	if len(got) != len(want) {
		t.Fatalf("foreign grid: got %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("foreign grid index %d: got %d want %d", i, got[i], want[i])
		}
	}
}
