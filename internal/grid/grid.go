package grid

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/mathx"
)

// Grid describes a W x H cell discretization of a square die region.
// Coordinates are normalized so that the region spans [0, Side] x [0, Side].
type Grid struct {
	W, H int
	Side float64
}

// New returns a validated grid.
func New(w, h int, side float64) (Grid, error) {
	if w <= 0 || h <= 0 {
		return Grid{}, fmt.Errorf("grid: dimensions must be positive, got %dx%d", w, h)
	}
	if side <= 0 {
		return Grid{}, fmt.Errorf("grid: side must be positive, got %g", side)
	}
	return Grid{W: w, H: h, Side: side}, nil
}

// N returns the number of cells.
func (g Grid) N() int { return g.W * g.H }

// CellCenter returns the physical coordinates of cell i's center.
func (g Grid) CellCenter(i int) (x, y float64) {
	cx := i % g.W
	cy := i / g.W
	dx := g.Side / float64(g.W)
	dy := g.Side / float64(g.H)
	return (float64(cx) + 0.5) * dx, (float64(cy) + 0.5) * dy
}

// CellAt returns the index of the cell containing physical point (x, y),
// clamping to the die boundary.
func (g Grid) CellAt(x, y float64) int {
	cx := int(x / g.Side * float64(g.W))
	cy := int(y / g.Side * float64(g.H))
	if cx < 0 {
		cx = 0
	}
	if cx >= g.W {
		cx = g.W - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.H {
		cy = g.H - 1
	}
	return cy*g.W + cx
}

// Dist returns the Euclidean distance between the centers of cells i and j.
func (g Grid) Dist(i, j int) float64 {
	xi, yi := g.CellCenter(i)
	xj, yj := g.CellCenter(j)
	return math.Hypot(xi-xj, yi-yj)
}

// CorrelationFunc maps a distance to a correlation coefficient in [0, 1].
type CorrelationFunc func(d float64) float64

// Spherical returns the spherical (range-phi) correlation function used by
// the VARIUS model: correlation decreases from 1 at distance 0 to exactly 0
// at distance phi, and stays 0 beyond. phi is expressed in the same units
// as the grid side.
func Spherical(phi float64) CorrelationFunc {
	return func(d float64) float64 {
		if d <= 0 {
			return 1
		}
		if d >= phi {
			return 0
		}
		r := d / phi
		return 1 - 1.5*r + 0.5*r*r*r
	}
}

// FieldGenerator samples spatially correlated Gaussian fields on a grid.
// Building one factors the grid's correlation matrix once (O(n^3)); each
// Sample is then an O(n^2) matrix-vector product, so generating many chips
// that share a grid and correlation structure amortizes the factorization.
type FieldGenerator struct {
	grid Grid
	chol *mathx.SymMatrix
}

// NewFieldGenerator builds a generator for the given grid and correlation
// function.
func NewFieldGenerator(g Grid, corr CorrelationFunc) (*FieldGenerator, error) {
	if corr == nil {
		return nil, errors.New("grid: nil correlation function")
	}
	n := g.N()
	c := mathx.NewSymMatrix(n)
	for i := 0; i < n; i++ {
		c.Set(i, i, 1)
		for j := 0; j < i; j++ {
			c.Set(i, j, corr(g.Dist(i, j)))
		}
	}
	l, err := mathx.Cholesky(c, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("grid: correlation matrix: %w", err)
	}
	return &FieldGenerator{grid: g, chol: l}, nil
}

// Grid returns the generator's grid.
func (fg *FieldGenerator) Grid() Grid { return fg.grid }

// Sample draws one correlated Gaussian field with per-cell marginal
// distribution N(mu, sigma^2).
func (fg *FieldGenerator) Sample(rng *mathx.RNG, mu, sigma float64) *Field {
	n := fg.grid.N()
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.StdNormal()
	}
	v := mathx.MulLowerVec(fg.chol, z)
	for i := range v {
		v[i] = mu + sigma*v[i]
	}
	return &Field{Grid: fg.grid, Values: v}
}

// Field is a realization of a per-cell scalar parameter on a grid.
type Field struct {
	Grid   Grid
	Values []float64
}

// Uniform returns a field with every cell equal to v, used for the
// no-variation (NoVar) environment.
func Uniform(g Grid, v float64) *Field {
	vals := make([]float64, g.N())
	for i := range vals {
		vals[i] = v
	}
	return &Field{Grid: g, Values: vals}
}

// At returns the value of cell i.
func (f *Field) At(i int) float64 { return f.Values[i] }

// AtXY returns the field value at physical point (x, y) (nearest cell).
func (f *Field) AtXY(x, y float64) float64 {
	return f.Values[f.Grid.CellAt(x, y)]
}

// Rect is an axis-aligned rectangle in die coordinates.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Contains reports whether the rectangle contains point (x, y).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return (r.X1 - r.X0) * (r.Y1 - r.Y0) }

// RegionIndices returns the indices of all cells whose centers fall inside
// rect. If no cell center falls inside (a very small rectangle), the index
// of the cell containing the rectangle's center is returned so that every
// subsystem sees at least one sample. The result depends only on the grid
// geometry, so callers that query the same rectangles repeatedly (every
// chip shares one floorplan) can compute the index lists once and gather
// values with Field.ValuesAt — see RegionCache.
func (g Grid) RegionIndices(rect Rect) []int {
	var out []int
	for i, n := 0, g.N(); i < n; i++ {
		x, y := g.CellCenter(i)
		if rect.Contains(x, y) {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		cx := 0.5 * (rect.X0 + rect.X1)
		cy := 0.5 * (rect.Y0 + rect.Y1)
		out = append(out, g.CellAt(cx, cy))
	}
	return out
}

// ValuesAt gathers the field values at the given cell indices.
func (f *Field) ValuesAt(idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = f.Values[i]
	}
	return out
}

// Region returns the values of all cells whose centers fall inside rect,
// with the same small-rectangle fallback as RegionIndices.
func (f *Field) Region(rect Rect) []float64 {
	return f.ValuesAt(f.Grid.RegionIndices(rect))
}

// RegionCache memoizes RegionIndices per rectangle for one grid, so the
// per-subsystem cell scans run once per process instead of once per
// chip × subsystem × field. Safe for concurrent use.
type RegionCache struct {
	mu sync.Mutex
	g  Grid
	m  map[Rect][]int
}

// NewRegionCache returns a cache serving the given grid.
func NewRegionCache(g Grid) *RegionCache {
	return &RegionCache{g: g, m: make(map[Rect][]int)}
}

// Indices returns the (cached) RegionIndices of rect on grid g. A grid
// other than the cache's is served uncached.
func (rc *RegionCache) Indices(g Grid, rect Rect) []int {
	if rc == nil || g != rc.g {
		return g.RegionIndices(rect)
	}
	rc.mu.Lock()
	idx, ok := rc.m[rect]
	if !ok {
		idx = g.RegionIndices(rect)
		rc.m[rect] = idx
	}
	rc.mu.Unlock()
	return idx
}

// Stats summarizes the field values.
func (f *Field) Stats() mathx.Summary {
	s, _ := mathx.Summarize(f.Values)
	return s
}

// Map applies fn to every cell value, returning a new field on the same grid.
func (f *Field) Map(fn func(float64) float64) *Field {
	vals := make([]float64, len(f.Values))
	for i, v := range f.Values {
		vals[i] = fn(v)
	}
	return &Field{Grid: f.Grid, Values: vals}
}

// MoranI computes Moran's I spatial-autocorrelation statistic of a field,
// using binary neighbor weights for cell pairs closer than maxDist. Values
// near +1 indicate strong positive spatial correlation (what a systematic
// variation map must show for distances within the range phi); values near
// 0 indicate spatial randomness. Returns an error when no pair qualifies
// or the field is constant.
func (f *Field) MoranI(maxDist float64) (float64, error) {
	n := f.Grid.N()
	mean := 0.0
	for _, v := range f.Values {
		mean += v
	}
	mean /= float64(n)
	var denom float64
	for _, v := range f.Values {
		denom += (v - mean) * (v - mean)
	}
	if denom == 0 {
		return 0, fmt.Errorf("grid: Moran's I undefined for a constant field")
	}
	var num, wsum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if f.Grid.Dist(i, j) <= maxDist {
				num += (f.Values[i] - mean) * (f.Values[j] - mean)
				wsum++
			}
		}
	}
	if wsum == 0 {
		return 0, fmt.Errorf("grid: no cell pairs within %g", maxDist)
	}
	return float64(n) / wsum * num / denom, nil
}
