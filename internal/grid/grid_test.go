package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func mustGrid(t *testing.T, w, h int, side float64) Grid {
	t.Helper()
	g, err := New(w, h, side)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 1); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := New(4, -1, 1); err == nil {
		t.Error("expected error for negative height")
	}
	if _, err := New(4, 4, 0); err == nil {
		t.Error("expected error for zero side")
	}
}

func TestCellGeometry(t *testing.T) {
	g := mustGrid(t, 4, 4, 1.0)
	if g.N() != 16 {
		t.Fatalf("N = %d, want 16", g.N())
	}
	x, y := g.CellCenter(0)
	if math.Abs(x-0.125) > 1e-12 || math.Abs(y-0.125) > 1e-12 {
		t.Errorf("CellCenter(0) = (%v, %v), want (0.125, 0.125)", x, y)
	}
	x, y = g.CellCenter(15)
	if math.Abs(x-0.875) > 1e-12 || math.Abs(y-0.875) > 1e-12 {
		t.Errorf("CellCenter(15) = (%v, %v)", x, y)
	}
}

func TestCellAtRoundTrip(t *testing.T) {
	g := mustGrid(t, 8, 6, 2.0)
	for i := 0; i < g.N(); i++ {
		x, y := g.CellCenter(i)
		if got := g.CellAt(x, y); got != i {
			t.Errorf("CellAt(CellCenter(%d)) = %d", i, got)
		}
	}
	// Out-of-range points clamp to the boundary cells.
	if g.CellAt(-1, -1) != 0 {
		t.Error("negative coordinates should clamp to cell 0")
	}
	if g.CellAt(100, 100) != g.N()-1 {
		t.Error("large coordinates should clamp to last cell")
	}
}

func TestDistSymmetric(t *testing.T) {
	g := mustGrid(t, 5, 5, 1.0)
	for i := 0; i < g.N(); i += 3 {
		for j := 0; j < g.N(); j += 4 {
			if math.Abs(g.Dist(i, j)-g.Dist(j, i)) > 1e-15 {
				t.Fatalf("distance not symmetric for (%d,%d)", i, j)
			}
		}
	}
	if g.Dist(3, 3) != 0 {
		t.Error("self-distance should be 0")
	}
}

func TestSphericalCorrelation(t *testing.T) {
	c := Spherical(0.5)
	if c(0) != 1 {
		t.Error("correlation at distance 0 should be 1")
	}
	if c(0.5) != 0 || c(1.0) != 0 {
		t.Error("correlation at or beyond range should be 0")
	}
	// Monotone decreasing on [0, phi].
	prev := 1.0
	for d := 0.01; d < 0.5; d += 0.01 {
		v := c(d)
		if v > prev {
			t.Fatalf("correlation not monotone at d=%v", d)
		}
		if v < 0 || v > 1 {
			t.Fatalf("correlation out of [0,1] at d=%v: %v", d, v)
		}
		prev = v
	}
}

func TestSphericalProperty(t *testing.T) {
	f := func(dRaw, phiRaw uint16) bool {
		phi := 0.01 + float64(phiRaw)/65535
		d := float64(dRaw) / 65535 * 2
		v := Spherical(phi)(d)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldGeneratorMarginals(t *testing.T) {
	g := mustGrid(t, 6, 6, 1.0)
	fg, err := NewFieldGenerator(g, Spherical(0.5))
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(11)
	const samples = 400
	var all []float64
	for s := 0; s < samples; s++ {
		f := fg.Sample(rng, 10, 2)
		all = append(all, f.Values...)
	}
	m := mathx.Mean(all)
	sd := mathx.StdDev(all)
	if math.Abs(m-10) > 0.15 {
		t.Errorf("marginal mean = %v, want ~10", m)
	}
	if math.Abs(sd-2) > 0.15 {
		t.Errorf("marginal stddev = %v, want ~2", sd)
	}
}

func TestFieldGeneratorSpatialCorrelation(t *testing.T) {
	g := mustGrid(t, 8, 8, 1.0)
	phi := 0.6
	fg, err := NewFieldGenerator(g, Spherical(phi))
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(13)
	const samples = 600
	// Track correlation between a close pair and a far pair of cells.
	near1, near2 := 0, 1     // adjacent cells: distance 0.125
	far1, far2 := 0, g.N()-1 // opposite corners: distance ~1.24 > phi
	var a1, a2, b1, b2 []float64
	for s := 0; s < samples; s++ {
		f := fg.Sample(rng, 0, 1)
		a1 = append(a1, f.At(near1))
		a2 = append(a2, f.At(near2))
		b1 = append(b1, f.At(far1))
		b2 = append(b2, f.At(far2))
	}
	corrNear := empiricalCorr(a1, a2)
	corrFar := empiricalCorr(b1, b2)
	wantNear := Spherical(phi)(g.Dist(near1, near2))
	if math.Abs(corrNear-wantNear) > 0.1 {
		t.Errorf("near correlation = %v, want ~%v", corrNear, wantNear)
	}
	if math.Abs(corrFar) > 0.1 {
		t.Errorf("far correlation = %v, want ~0", corrFar)
	}
}

func empiricalCorr(xs, ys []float64) float64 {
	mx, my := mathx.Mean(xs), mathx.Mean(ys)
	var num, dx, dy float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	return num / math.Sqrt(dx*dy)
}

func TestNewFieldGeneratorNilCorr(t *testing.T) {
	g := mustGrid(t, 2, 2, 1.0)
	if _, err := NewFieldGenerator(g, nil); err == nil {
		t.Error("expected error for nil correlation function")
	}
}

func TestUniformField(t *testing.T) {
	g := mustGrid(t, 3, 3, 1.0)
	f := Uniform(g, 7)
	for i := 0; i < g.N(); i++ {
		if f.At(i) != 7 {
			t.Fatalf("Uniform field cell %d = %v", i, f.At(i))
		}
	}
}

func TestRegion(t *testing.T) {
	g := mustGrid(t, 4, 4, 1.0)
	f := Uniform(g, 1)
	// Lower-left quadrant contains 4 cell centers.
	vals := f.Region(Rect{0, 0, 0.5, 0.5})
	if len(vals) != 4 {
		t.Errorf("region has %d cells, want 4", len(vals))
	}
	// A tiny rectangle still returns one value.
	vals = f.Region(Rect{0.49, 0.49, 0.51, 0.51})
	if len(vals) != 1 {
		t.Errorf("tiny region has %d cells, want 1", len(vals))
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{0, 0, 2, 3}
	if r.Area() != 6 {
		t.Errorf("Area = %v, want 6", r.Area())
	}
	if !r.Contains(1, 1) || r.Contains(2, 1) || r.Contains(-0.1, 1) {
		t.Error("Contains misbehaves")
	}
}

func TestFieldMap(t *testing.T) {
	g := mustGrid(t, 2, 2, 1.0)
	f := Uniform(g, 3)
	f2 := f.Map(func(v float64) float64 { return v * v })
	for i := 0; i < g.N(); i++ {
		if f2.At(i) != 9 {
			t.Fatalf("mapped cell %d = %v, want 9", i, f2.At(i))
		}
		if f.At(i) != 3 {
			t.Fatal("Map mutated original field")
		}
	}
}

func TestFieldStats(t *testing.T) {
	g := mustGrid(t, 2, 2, 1.0)
	f := &Field{Grid: g, Values: []float64{1, 2, 3, 4}}
	s := f.Stats()
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestMoranIOnCorrelatedField(t *testing.T) {
	g := mustGrid(t, 10, 10, 1.0)
	fg, err := NewFieldGenerator(g, Spherical(0.6))
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(31)
	var correlated, random []float64
	for s := 0; s < 20; s++ {
		f := fg.Sample(rng, 0, 1)
		mi, err := f.MoranI(0.15)
		if err != nil {
			t.Fatal(err)
		}
		correlated = append(correlated, mi)
		// A spatially random field with the same marginals.
		vals := make([]float64, g.N())
		for i := range vals {
			vals[i] = rng.StdNormal()
		}
		mi, err = (&Field{Grid: g, Values: vals}).MoranI(0.15)
		if err != nil {
			t.Fatal(err)
		}
		random = append(random, mi)
	}
	mc := mathx.Mean(correlated)
	mr := mathx.Mean(random)
	if mc < 0.3 {
		t.Errorf("correlated field Moran's I = %v, want strongly positive", mc)
	}
	if math.Abs(mr) > 0.1 {
		t.Errorf("random field Moran's I = %v, want ~0", mr)
	}
	if mc <= mr {
		t.Error("correlated field must exceed random field in Moran's I")
	}
}

func TestMoranIErrors(t *testing.T) {
	g := mustGrid(t, 4, 4, 1.0)
	if _, err := Uniform(g, 3).MoranI(0.5); err == nil {
		t.Error("constant field should error")
	}
	f := &Field{Grid: g, Values: make([]float64, g.N())}
	for i := range f.Values {
		f.Values[i] = float64(i)
	}
	if _, err := f.MoranI(1e-9); err == nil {
		t.Error("no qualifying pairs should error")
	}
}
