package fleet

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestAppendJSONMatchesEncodingJSON pins the wire encoder to
// encoding/json.Marshal byte-for-byte: clients decode with the standard
// library, so the hand-rolled fast path must not diverge on escaping,
// float formatting, omitempty, or field order.
func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	cases := []Result{
		{},
		{Seq: 1, At: 5, Kind: KindJoin, Chip: 42, Status: StatusOK},
		{Seq: -3, At: -1, Kind: KindLeave, Class: "bulk", Chip: -7,
			Status: StatusError, Err: `chip -7 not joined`},
		{Seq: 9, Kind: KindRun, Class: "interactive", Chip: 1,
			Env: "TS+ASV+Q+FU", Mode: ModeFuzzy, App: "gcc", Phase: intp(0),
			Status: StatusOK,
			Run:    &RunPayload{FRel: 1.1375, Perf: 0.98, PowerW: 14.2, PE: 0.000125}},
		{Seq: 10, Kind: KindRun, Chip: 2, Mode: ModeBaseline, Status: StatusOK,
			Run: &RunPayload{FRel: 0.7400000000000001}},
		// Diagnostics present (the serving path always carries them).
		{Seq: 11, Kind: KindRun, Chip: 3, App: "swim", Phase: intp(2),
			Status: StatusOK, Run: &RunPayload{FRel: 1, Perf: 1, PowerW: 1, PE: 1},
			CacheHit: true, Batched: 4, Worker: 7, SchedMs: 0.125, TotalMs: 3.5},
		// Float edge cases: 'e' form below 1e-6 and at/above 1e21,
		// negative values, exact zero alongside nonzero siblings.
		{Seq: 12, Kind: KindRun, Chip: 4, Status: StatusOK,
			Run: &RunPayload{FRel: 9.87e-7, Perf: -2.5e21, PowerW: 1e-9, PE: 0}},
		{Seq: 13, Kind: KindRun, Chip: 5, Status: StatusOK,
			Run:     &RunPayload{FRel: 1e21, Perf: 1e-6, PowerW: -0.0001, PE: 123456789.5},
			SchedMs: 4.9e-7},
		// String escaping: quotes, backslashes, control characters, the
		// HTML trio, U+2028/U+2029, multibyte runes, invalid UTF-8.
		{Seq: 14, Kind: KindRun, Chip: 6, Status: StatusError,
			Err: "a\"b\\c\nd\re\tf\x01g<h>i&j"},
		{Seq: 15, Kind: KindRun, Chip: 7, Status: StatusError,
			Err: "line\u2028para\u2029日本語"},
		{Seq: 16, Kind: KindRun, Chip: 8, Status: StatusError,
			Err: "bad\xffutf8"},
	}
	for _, res := range cases {
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", res, err)
		}
		got := res.AppendJSON(nil)
		if string(got) != string(want) {
			t.Errorf("AppendJSON mismatch:\n got  %s\n want %s", got, want)
		}
	}
}

// TestAppendJSONRandomized cross-checks a seeded stream of synthetic
// results against encoding/json.
func TestAppendJSONRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	strs := []string{"", "gcc", "a<b>&", "x\"y\\z", "TS+ASV", "日本", "\u2028", "c\x00d"}
	floats := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return rng.NormFloat64()
		case 2:
			return rng.Float64() * 1e-7
		case 3:
			return rng.Float64() * 1e22
		default:
			return -rng.Float64() * 100
		}
	}
	for i := 0; i < 2000; i++ {
		res := Result{
			Seq: rng.Int63n(1e9) - 5, At: rng.Int63n(100) - 50,
			Kind: strs[rng.Intn(len(strs))], Class: strs[rng.Intn(len(strs))],
			Chip: rng.Int63n(1000) - 500, Env: strs[rng.Intn(len(strs))],
			Mode: strs[rng.Intn(len(strs))], App: strs[rng.Intn(len(strs))],
			Status: strs[rng.Intn(len(strs))], Err: strs[rng.Intn(len(strs))],
			Batched: rng.Intn(3), Worker: rng.Intn(3),
			CacheHit: rng.Intn(2) == 0,
			SchedMs:  floats(), TotalMs: floats(),
		}
		if rng.Intn(2) == 0 {
			res.Phase = intp(rng.Intn(10) - 2)
		}
		if rng.Intn(2) == 0 {
			res.Run = &RunPayload{FRel: floats(), Perf: floats(), PowerW: floats(), PE: floats()}
		}
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		if got := res.AppendJSON(nil); string(got) != string(want) {
			t.Fatalf("mismatch at i=%d:\n got  %s\n want %s", i, got, want)
		}
	}
}

// BenchmarkAppendJSON compares the wire encoder against encoding/json
// on a representative OK run result.
func BenchmarkAppendJSON(b *testing.B) {
	res := Result{Seq: 12345, At: 678, Kind: KindRun, Class: "interactive",
		Chip: 42, Env: "TS+ASV+Q+FU", Mode: ModeFuzzy, App: "gcc", Phase: intp(1),
		Status:  StatusOK,
		Run:     &RunPayload{FRel: 1.1375, Perf: 0.982, PowerW: 14.25, PE: 0.000125},
		Batched: 3, Worker: 5, SchedMs: 0.125, TotalMs: 3.5}
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = res.AppendJSON(buf[:0])
		}
	})
	b.Run("encoding-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(res); err != nil {
				b.Fatal(err)
			}
		}
	})
}
