package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// DefaultMaxBatch bounds how many compatible run events coalesce into
// one dispatched unit batch.
const DefaultMaxBatch = 64

// DefaultMemberShards is the default chip-membership shard count.
const DefaultMemberShards = 32

// Config configures a Fleet.
type Config struct {
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// Routing places unit batches on workers (default RoundRobin).
	Routing Routing
	// MaxBatch bounds events per dispatched unit batch (0 =
	// DefaultMaxBatch).
	MaxBatch int
	// MemberShards is the chip-membership shard count, rounded up to a
	// power of two (0 = DefaultMemberShards). Membership is the only
	// ingest structure run events read under a lock; sharding it keeps
	// concurrent submitters off each other's chips.
	MemberShards int
	// Admission maps class names to token-bucket rates; classes without
	// an entry are unthrottled.
	Admission map[string]Rate
	// Apps is the service's application universe, resolved by event App
	// name (nil = the full proxy suite). Static-mode points are derived
	// per class over this universe, matching the batch experiments.
	Apps []workload.App
	// Training configures per-chip fuzzy-controller training. Workers
	// should stay 1 (the default here, unlike the batch experiments):
	// the fleet already saturates cores with unit parallelism, and
	// nested training pools would oversubscribe.
	Training adapt.TrainOptions
	// Obs, when non-nil, receives fleet.pool.* gauges, event/unit
	// counters, and the fleet.ingest.lock_wait_ns contention counter.
	Obs *obs.Registry
}

// Fleet is the shared-clock discrete-event simulation service: chips
// join and leave, run events arrive as a request stream, and pure
// (chip, env, app, phase) units execute over a worker pool backed by the
// Simulator's artifact cache. See doc.go for the ordering and
// determinism contract.
//
// Ingest is sharded: sequence numbers are reserved per batch with one
// atomic add, the virtual clock is an atomic running maximum, chip
// membership lives in hash-sharded maps, admission buckets carry their
// own per-class locks, and routing cursors are atomics. No global lock
// exists on the event path.
type Fleet struct {
	sim  *core.Simulator
	cfg  Config
	apps map[string]workload.App

	seq   atomic.Int64 // batch-reserved; contiguous within a batch
	clock atomic.Int64 // running max of submitted At values

	shards    []memberShard
	shardMask uint64

	buckets map[string]*TokenBucket // read-only after New

	rrNext atomic.Int64
	load   []workerLoad

	// closeMu fences dispatch against Close: SubmitBatch holds the read
	// side from the closed check through its last queue send, so Close
	// can only close the worker queues once no submitter is mid-dispatch.
	closeMu sync.RWMutex
	closed  bool

	queues []chan *unitTask
	wg     sync.WaitGroup // workers
	bg     sync.WaitGroup // leave-triggered release goroutines

	stats    *stats
	mon      *obs.PoolMonitor
	lockWait *obs.Counter // nil when no registry: zero-cost timing gate
}

// memberShard is one slice of chip membership; join/leave write, run
// events read-lock. The padding keeps shard locks off one cache line.
type memberShard struct {
	mu sync.RWMutex
	m  map[int64]*chipEntry
	_  [64]byte
}

// workerLoad is one worker's cumulative dispatched cost for least-loaded
// routing, padded against false sharing.
type workerLoad struct {
	n atomic.Int64
	_ [56]byte
}

// chipEntry is one admitted chip. The expensive handle builds lazily
// under once on whichever worker first needs it; units register on the
// WaitGroup so a leave can release the handle only once the chip is
// quiescent. Per-environment base cores build once per entry and are
// shared by every worker through cheap WorkerViews, so scaling the pool
// does not multiply core construction.
type chipEntry struct {
	seed  int64
	units sync.WaitGroup

	once   sync.Once
	handle *core.ChipHandle
	err    error

	cores sync.Map // core.Environment -> *coreSlot
}

// coreSlot is one (chip, environment) shared base core.
type coreSlot struct {
	once sync.Once
	core *adapt.Core
	err  error
}

func (e *chipEntry) ensure(sim *core.Simulator) (*core.ChipHandle, error) {
	e.once.Do(func() { e.handle, e.err = sim.AcquireChip(e.seed) })
	return e.handle, e.err
}

// baseCore returns the entry's shared core for env, building it exactly
// once across all workers. Workers must not solve on the returned core
// directly — they derive private WorkerViews — but its immutable fields
// (Config) are safe to read concurrently.
func (e *chipEntry) baseCore(sim *core.Simulator, env core.Environment) (*adapt.Core, error) {
	v, _ := e.cores.LoadOrStore(env, &coreSlot{})
	slot := v.(*coreSlot)
	slot.once.Do(func() {
		handle, err := e.ensure(sim)
		if err != nil {
			slot.err = err
			return
		}
		slot.core, slot.err = sim.HandleCore(handle, env)
	})
	return slot.core, slot.err
}

// eventRef ties one ingested event to its slot in the submission batch.
type eventRef struct {
	b   *batch
	cls *classStats
	pos int
	ev  Event
	seq int64
}

// unitKey coalesces compatible run events: same chip, environment, and
// mode. A packed comparable struct, so the open-task map never
// allocates key strings on the hot path.
type unitKey struct {
	chip int64
	env  string
	mode string
}

// unitTask is one dispatched batch of compatible run events: same chip,
// environment, and mode. Distinct (app, phase) groups inside it each
// solve once; duplicate events replay the group's result.
type unitTask struct {
	entry  *chipEntry
	env    string
	mode   string
	refs   []eventRef
	groups int // distinct (app, phase) keys in refs, tracked at ingest
	enq    time.Time
}

var taskPool = sync.Pool{New: func() any { return new(unitTask) }}

// addRef appends a ref, tracking the distinct-group count the router
// costs by. Batches are small (MaxBatch), so the duplicate scan is a
// short linear pass instead of a map.
func (t *unitTask) addRef(ref eventRef) {
	k := keyOf(ref.ev)
	dup := false
	for i := range t.refs {
		if keyOf(t.refs[i].ev) == k {
			dup = true
			break
		}
	}
	if !dup {
		t.groups++
	}
	t.refs = append(t.refs, ref)
}

// release returns a finished task to the pool.
func (t *unitTask) release() {
	clear(t.refs) // drop batch/entry references before pooling
	t.refs = t.refs[:0]
	t.entry = nil
	t.env, t.mode = "", ""
	t.groups = 0
	taskPool.Put(t)
}

// batch tracks one SubmitBatch call's results and re-serializes
// emission: results become visible to emit strictly in submission
// order, whatever order workers finish in.
type batch struct {
	mu      sync.Mutex
	emit    func(Result)
	results []Result
	ready   []bool
	next    int
	done    chan struct{}
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

func getBatch(n int, emit func(Result)) *batch {
	b := batchPool.Get().(*batch)
	b.emit = emit
	b.next = 0
	b.done = make(chan struct{})
	if cap(b.results) < n {
		b.results = make([]Result, n)
		b.ready = make([]bool, n)
	} else {
		b.results = b.results[:n]
		b.ready = b.ready[:n]
		clear(b.results)
		clear(b.ready)
	}
	return b
}

// putBatch recycles a fully emitted batch. Safe only after done is
// closed: every finish call has completed and released b.mu.
func putBatch(b *batch) {
	b.emit = nil
	b.done = nil
	batchPool.Put(b)
}

// finish records slot pos's result and emits any newly contiguous
// prefix.
func (b *batch) finish(pos int, r Result) {
	b.mu.Lock()
	b.results[pos] = r
	b.ready[pos] = true
	for b.next < len(b.ready) && b.ready[b.next] {
		if b.emit != nil {
			b.emit(b.results[b.next])
		}
		b.next++
	}
	if b.next == len(b.ready) {
		close(b.done)
	}
	b.mu.Unlock()
}

// immediate is one result decided at ingest (join/leave, rejections,
// validation errors).
type immediate struct {
	pos int
	res Result
}

// submitScratch is SubmitBatch's reusable per-call state.
type submitScratch struct {
	immediates []immediate
	tasks      []*unitTask
	targets    []int
	open       map[unitKey]*unitTask
}

var scratchPool = sync.Pool{New: func() any {
	return &submitScratch{open: make(map[unitKey]*unitTask)}
}}

func (sc *submitScratch) release() {
	sc.immediates = sc.immediates[:0]
	clear(sc.tasks)
	sc.tasks = sc.tasks[:0]
	sc.targets = sc.targets[:0]
	clear(sc.open)
	scratchPool.Put(sc)
}

// New starts a fleet over the simulator's models and artifact store.
func New(sim *core.Simulator, cfg Config) (*Fleet, error) {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MemberShards < 1 {
		cfg.MemberShards = DefaultMemberShards
	}
	shards := 1
	for shards < cfg.MemberShards {
		shards <<= 1
	}
	cfg.MemberShards = shards
	if cfg.Apps == nil {
		cfg.Apps = workload.Suite()
	}
	if cfg.Training.Examples == 0 {
		cfg.Training = adapt.DefaultTrainOptions()
	}
	if cfg.Training.Workers == 0 {
		cfg.Training.Workers = 1
	}
	f := &Fleet{
		sim:       sim,
		cfg:       cfg,
		apps:      make(map[string]workload.App, len(cfg.Apps)),
		shards:    make([]memberShard, shards),
		shardMask: uint64(shards - 1),
		buckets:   make(map[string]*TokenBucket),
		load:      make([]workerLoad, cfg.Workers),
		queues:    make([]chan *unitTask, cfg.Workers),
		stats:     newStats(cfg.Workers),
		mon:       obs.NewPoolMonitor(cfg.Obs, "fleet.pool", cfg.Workers),
		lockWait:  cfg.Obs.Counter("fleet.ingest.lock_wait_ns"),
	}
	for i := range f.shards {
		f.shards[i].m = make(map[int64]*chipEntry)
	}
	for _, app := range cfg.Apps {
		if _, dup := f.apps[app.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate app %q in universe", app.Name)
		}
		f.apps[app.Name] = app
	}
	for class, rate := range cfg.Admission {
		f.buckets[class] = NewTokenBucket(rate)
	}
	for w := 0; w < cfg.Workers; w++ {
		f.queues[w] = make(chan *unitTask, 1024)
		f.wg.Add(1)
		go f.worker(w)
	}
	return f, nil
}

// shardFor maps a chip to its membership shard.
func (f *Fleet) shardFor(chip int64) *memberShard {
	return &f.shards[fnv64(chip)&f.shardMask]
}

// Chips returns the current admitted-chip count.
func (f *Fleet) Chips() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Stats renders the service telemetry snapshot.
func (f *Fleet) Stats() Snapshot {
	f.mon.Publish()
	snap := f.stats.snapshot()
	snap.Workers = f.cfg.Workers
	snap.Routing = f.cfg.Routing.String()
	snap.Chips = f.Chips()
	return snap
}

// advanceClock folds one event timestamp into the virtual clock and
// returns the clock after the fold.
func (f *Fleet) advanceClock(at int64) int64 {
	for {
		cur := f.clock.Load()
		if at <= cur {
			return cur
		}
		if f.clock.CompareAndSwap(cur, at) {
			return at
		}
	}
}

// SubmitBatch ingests one ordered event batch and blocks until every
// event's result has been passed to emit, in submission order. emit runs
// on internal goroutines, one call at a time; it must not call back into
// the Fleet. Returns an error (before emitting anything) only if the
// fleet is closed.
func (f *Fleet) SubmitBatch(events []Event, emit func(Result)) error {
	if len(events) == 0 {
		return nil
	}
	f.closeMu.RLock()
	if f.closed {
		f.closeMu.RUnlock()
		return fmt.Errorf("fleet: closed")
	}
	b := getBatch(len(events), emit)
	sc := scratchPool.Get().(*submitScratch)

	// One atomic reserves the batch's contiguous sequence block; the
	// scan below assigns them in submission order. Everything else on
	// the ingest path touches only sharded or per-class state.
	seqBase := f.seq.Add(int64(len(events))) - int64(len(events))
	for pos, ev := range events {
		seq := seqBase + int64(pos) + 1
		clock := f.advanceClock(ev.At)
		res := Result{
			Seq: seq, At: ev.At, Kind: ev.Kind, Class: ev.Class,
			Chip: ev.Chip, Env: ev.Env, Mode: ev.Mode, App: ev.App,
			Phase: ev.Phase, Status: StatusOK,
		}
		f.stats.events.Add(1)
		cls := f.stats.class(ev.Class)
		cls.events.Add(1)
		switch ev.Kind {
		case KindJoin:
			sh := f.shardFor(ev.Chip)
			f.timedLock(&sh.mu)
			_, dup := sh.m[ev.Chip]
			if !dup {
				sh.m[ev.Chip] = &chipEntry{seed: ev.Chip}
			}
			sh.mu.Unlock()
			if dup {
				res.Status = StatusError
				res.Err = fmt.Sprintf("chip %d already joined", ev.Chip)
				cls.errors.Add(1)
			} else {
				cls.ok.Add(1)
			}
			sc.immediates = append(sc.immediates, immediate{pos, res})
		case KindLeave:
			sh := f.shardFor(ev.Chip)
			f.timedLock(&sh.mu)
			entry, ok := sh.m[ev.Chip]
			if ok {
				delete(sh.m, ev.Chip)
			}
			sh.mu.Unlock()
			if !ok {
				res.Status = StatusError
				res.Err = fmt.Sprintf("chip %d not joined", ev.Chip)
				cls.errors.Add(1)
			} else {
				// Release once the chip's in-flight units drain; the handle
				// flushes its accumulated PE tables to the artifact store.
				f.bg.Add(1)
				go func() {
					defer f.bg.Done()
					entry.units.Wait()
					if entry.handle != nil {
						f.sim.ReleaseChip(entry.handle)
					}
				}()
				cls.ok.Add(1)
			}
			sc.immediates = append(sc.immediates, immediate{pos, res})
		case KindRun:
			// The unit registration (units.Add) must happen under the
			// shard read lock: a leave excludes readers while it unlinks
			// the entry, so every registered unit precedes its Wait.
			sh := f.shardFor(ev.Chip)
			f.timedRLock(&sh.mu)
			entry := sh.m[ev.Chip]
			if entry != nil {
				entry.units.Add(1)
			}
			sh.mu.RUnlock()
			if entry == nil {
				res.Status = StatusError
				res.Err = fmt.Sprintf("chip %d not joined", ev.Chip)
				cls.errors.Add(1)
				sc.immediates = append(sc.immediates, immediate{pos, res})
				continue
			}
			if msg := f.validateRun(ev); msg != "" {
				entry.units.Done()
				res.Status = StatusError
				res.Err = msg
				cls.errors.Add(1)
				sc.immediates = append(sc.immediates, immediate{pos, res})
				continue
			}
			if bucket, throttled := f.buckets[ev.Class]; throttled && !bucket.Allow(clock) {
				entry.units.Done()
				res.Status = StatusRejected
				res.Err = "admission: class rate exceeded"
				cls.rejected.Add(1)
				sc.immediates = append(sc.immediates, immediate{pos, res})
				continue
			}
			key := unitKey{chip: ev.Chip, env: ev.Env, mode: ev.Mode}
			t := sc.open[key]
			if t != nil && len(t.refs) >= f.cfg.MaxBatch {
				t = nil
			}
			if t == nil {
				t = taskPool.Get().(*unitTask)
				t.entry, t.env, t.mode = entry, ev.Env, ev.Mode
				sc.open[key] = t
				sc.tasks = append(sc.tasks, t)
			} else {
				f.stats.batchedEvents.Add(1)
			}
			t.addRef(eventRef{b: b, cls: cls, pos: pos, ev: ev, seq: seq})
		default:
			res.Status = StatusError
			res.Err = fmt.Sprintf("unknown event kind %q", ev.Kind)
			cls.errors.Add(1)
			sc.immediates = append(sc.immediates, immediate{pos, res})
		}
	}
	// Route in ingest order: the cursors are atomics, so placement is a
	// pure function of the trace for a serial submitter and merely
	// fair-ish under concurrency — placement never affects results.
	for _, t := range sc.tasks {
		sc.targets = append(sc.targets, f.route(t))
	}
	depth := 0
	for i, t := range sc.tasks {
		t.enq = time.Now()
		f.stats.units.Add(1)
		f.queues[sc.targets[i]] <- t
		depth += len(f.queues[sc.targets[i]])
	}
	if len(sc.tasks) > 0 {
		f.mon.Depth(depth)
	}
	f.closeMu.RUnlock()

	for _, im := range sc.immediates {
		b.finish(im.pos, im.res)
	}
	<-b.done
	sc.release()
	putBatch(b)
	return nil
}

// timedLock and timedRLock acquire a shard lock, feeding acquisition
// wait into fleet.ingest.lock_wait_ns when a registry is attached (the
// nil counter skips the clock reads entirely).
func (f *Fleet) timedLock(mu *sync.RWMutex) {
	if f.lockWait == nil {
		mu.Lock()
		return
	}
	t0 := time.Now()
	mu.Lock()
	f.lockWait.Add(time.Since(t0).Nanoseconds())
}

func (f *Fleet) timedRLock(mu *sync.RWMutex) {
	if f.lockWait == nil {
		mu.RLock()
		return
	}
	t0 := time.Now()
	mu.RLock()
	f.lockWait.Add(time.Since(t0).Nanoseconds())
}

// validateRun checks a run event's simulation coordinates, returning an
// error message ("" = valid).
func (f *Fleet) validateRun(ev Event) string {
	// Baseline probes report the chip's worst-case-safe frequency; they
	// simulate no app, so the coordinates below don't apply.
	if ev.Mode == ModeBaseline {
		return ""
	}
	app, ok := f.apps[ev.App]
	if !ok {
		return fmt.Sprintf("unknown app %q", ev.App)
	}
	if ev.Phase != nil && (*ev.Phase < 0 || *ev.Phase >= len(app.Phases)) {
		return fmt.Sprintf("app %q has no phase %d", ev.App, *ev.Phase)
	}
	switch ev.Mode {
	case ModeStatic, ModeFuzzy, ModeExh:
	default:
		return fmt.Sprintf("unknown mode %q", ev.Mode)
	}
	env, err := core.ParseEnvironment(ev.Env)
	if err != nil {
		return fmt.Sprintf("unknown environment %q", ev.Env)
	}
	if !env.Adaptive() {
		return fmt.Sprintf("environment %q is not adaptive", ev.Env)
	}
	return ""
}

// route picks a worker for a completed task.
func (f *Fleet) route(t *unitTask) int {
	switch f.cfg.Routing {
	case LeastLoaded:
		best, bestLoad := 0, f.load[0].n.Load()
		for w := 1; w < f.cfg.Workers; w++ {
			if l := f.load[w].n.Load(); l < bestLoad {
				best, bestLoad = w, l
			}
		}
		f.load[best].n.Add(int64(t.groups))
		return best
	case Affinity:
		return int(fnv64(t.entry.seed) % uint64(f.cfg.Workers))
	default:
		return int((f.rrNext.Add(1) - 1) % int64(f.cfg.Workers))
	}
}

// groupKey identifies one solve inside a unit task.
type groupKey struct {
	app   string
	phase int // -1 = whole app
}

func keyOf(ev Event) groupKey {
	k := groupKey{app: ev.App, phase: -1}
	if ev.Phase != nil {
		k.phase = *ev.Phase
	}
	return k
}

// Close drains the fleet: no new batches are accepted, queued units
// finish, remaining chips release (flushing PE tables), and the workers
// exit. Callers flush/close the artifact store themselves afterwards.
func (f *Fleet) Close() {
	f.closeMu.Lock()
	if f.closed {
		f.closeMu.Unlock()
		return
	}
	f.closed = true
	var remaining []*chipEntry
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			remaining = append(remaining, e)
		}
		sh.m = make(map[int64]*chipEntry)
		sh.mu.Unlock()
	}
	f.closeMu.Unlock()

	for _, q := range f.queues {
		close(q)
	}
	f.wg.Wait()
	for _, e := range remaining {
		e.units.Wait()
		if e.handle != nil {
			f.sim.ReleaseChip(e.handle)
		}
	}
	f.bg.Wait()
	f.mon.Publish()
}
