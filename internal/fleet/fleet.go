package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// DefaultMaxBatch bounds how many compatible run events coalesce into
// one dispatched unit batch.
const DefaultMaxBatch = 64

// Config configures a Fleet.
type Config struct {
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// Routing places unit batches on workers (default RoundRobin).
	Routing Routing
	// MaxBatch bounds events per dispatched unit batch (0 =
	// DefaultMaxBatch).
	MaxBatch int
	// Admission maps class names to token-bucket rates; classes without
	// an entry are unthrottled.
	Admission map[string]Rate
	// Apps is the service's application universe, resolved by event App
	// name (nil = the full proxy suite). Static-mode points are derived
	// per class over this universe, matching the batch experiments.
	Apps []workload.App
	// Training configures per-chip fuzzy-controller training. Workers
	// should stay 1 (the default here, unlike the batch experiments):
	// the fleet already saturates cores with unit parallelism, and
	// nested training pools would oversubscribe.
	Training adapt.TrainOptions
	// Obs, when non-nil, receives fleet.pool.* gauges and event/unit
	// counters.
	Obs *obs.Registry
}

// Fleet is the shared-clock discrete-event simulation service: chips
// join and leave, run events arrive as a request stream, and pure
// (chip, env, app, phase) units execute over a worker pool backed by the
// Simulator's artifact cache. See doc.go for the ordering and
// determinism contract.
type Fleet struct {
	sim  *core.Simulator
	cfg  Config
	apps map[string]workload.App

	// mu serializes ingest: sequence assignment, the virtual clock,
	// admission, chip membership, coalescing, and routing. Everything
	// after dispatch is lock-free with respect to ingest.
	mu      sync.Mutex
	seq     int64
	clock   int64
	chips   map[int64]*chipEntry
	buckets map[string]*TokenBucket
	rrNext  int
	load    []float64
	closed  bool

	queues []chan *unitTask
	wg     sync.WaitGroup // workers
	bg     sync.WaitGroup // leave-triggered release goroutines

	stats *stats
	mon   *obs.PoolMonitor
}

// chipEntry is one admitted chip. The expensive handle builds lazily
// under once on whichever worker first needs it; units register on the
// WaitGroup so a leave can release the handle only once the chip is
// quiescent.
type chipEntry struct {
	seed  int64
	units sync.WaitGroup

	once   sync.Once
	handle *core.ChipHandle
	err    error
}

func (e *chipEntry) ensure(sim *core.Simulator) (*core.ChipHandle, error) {
	e.once.Do(func() { e.handle, e.err = sim.AcquireChip(e.seed) })
	return e.handle, e.err
}

// eventRef ties one ingested event to its slot in the submission batch.
type eventRef struct {
	b   *batch
	pos int
	ev  Event
	seq int64
}

// unitTask is one dispatched batch of compatible run events: same chip,
// environment, and mode. Distinct (app, phase) groups inside it each
// solve once; duplicate events replay the group's result.
type unitTask struct {
	entry *chipEntry
	env   string
	mode  string
	refs  []eventRef
	enq   time.Time
}

// batch tracks one SubmitBatch call's results and re-serializes
// emission: results become visible to emit strictly in submission
// order, whatever order workers finish in.
type batch struct {
	mu      sync.Mutex
	emit    func(Result)
	results []Result
	ready   []bool
	next    int
	done    chan struct{}
}

// finish records slot pos's result and emits any newly contiguous
// prefix.
func (b *batch) finish(pos int, r Result) {
	b.mu.Lock()
	b.results[pos] = r
	b.ready[pos] = true
	for b.next < len(b.ready) && b.ready[b.next] {
		if b.emit != nil {
			b.emit(b.results[b.next])
		}
		b.next++
	}
	if b.next == len(b.ready) {
		close(b.done)
	}
	b.mu.Unlock()
}

// New starts a fleet over the simulator's models and artifact store.
func New(sim *core.Simulator, cfg Config) (*Fleet, error) {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Apps == nil {
		cfg.Apps = workload.Suite()
	}
	if cfg.Training.Examples == 0 {
		cfg.Training = adapt.DefaultTrainOptions()
	}
	if cfg.Training.Workers == 0 {
		cfg.Training.Workers = 1
	}
	f := &Fleet{
		sim:     sim,
		cfg:     cfg,
		apps:    make(map[string]workload.App, len(cfg.Apps)),
		chips:   make(map[int64]*chipEntry),
		buckets: make(map[string]*TokenBucket),
		load:    make([]float64, cfg.Workers),
		queues:  make([]chan *unitTask, cfg.Workers),
		stats:   newStats(),
		mon:     obs.NewPoolMonitor(cfg.Obs, "fleet.pool", cfg.Workers),
	}
	for _, app := range cfg.Apps {
		if _, dup := f.apps[app.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate app %q in universe", app.Name)
		}
		f.apps[app.Name] = app
	}
	for class, rate := range cfg.Admission {
		f.buckets[class] = NewTokenBucket(rate)
	}
	for w := 0; w < cfg.Workers; w++ {
		f.queues[w] = make(chan *unitTask, 1024)
		f.wg.Add(1)
		go f.worker(w)
	}
	return f, nil
}

// Chips returns the current admitted-chip count.
func (f *Fleet) Chips() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.chips)
}

// Stats renders the service telemetry snapshot.
func (f *Fleet) Stats() Snapshot {
	f.mon.Publish()
	snap := f.stats.snapshot()
	snap.Workers = f.cfg.Workers
	snap.Routing = f.cfg.Routing.String()
	snap.Chips = f.Chips()
	return snap
}

// SubmitBatch ingests one ordered event batch and blocks until every
// event's result has been passed to emit, in submission order. emit runs
// on internal goroutines, one call at a time; it must not call back into
// the Fleet. Returns an error (before emitting anything) only if the
// fleet is closed.
func (f *Fleet) SubmitBatch(events []Event, emit func(Result)) error {
	if len(events) == 0 {
		return nil
	}
	b := &batch{
		emit:    emit,
		results: make([]Result, len(events)),
		ready:   make([]bool, len(events)),
		done:    make(chan struct{}),
	}
	// Ingest under the fleet lock: sequencing, clock, admission,
	// membership, coalescing, routing. Immediate results (join/leave,
	// rejections, validation errors) are collected and finished after
	// the lock drops so emit never runs under it.
	type immediate struct {
		pos int
		res Result
	}
	var immediates []immediate
	var tasks []*unitTask
	open := make(map[string]*unitTask)

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("fleet: closed")
	}
	for pos, ev := range events {
		f.seq++
		if ev.At > f.clock {
			f.clock = ev.At
		}
		res := Result{
			Seq: f.seq, At: ev.At, Kind: ev.Kind, Class: ev.Class,
			Chip: ev.Chip, Env: ev.Env, Mode: ev.Mode, App: ev.App,
			Phase: ev.Phase, Status: StatusOK,
		}
		f.stats.events.Add(1)
		cls := f.stats.class(ev.Class)
		cls.events.Add(1)
		reject := func(status, msg string) {
			res.Status = status
			res.Err = msg
			if status == StatusRejected {
				cls.rejected.Add(1)
			} else {
				cls.errors.Add(1)
			}
			immediates = append(immediates, immediate{pos, res})
		}
		switch ev.Kind {
		case KindJoin:
			if _, ok := f.chips[ev.Chip]; ok {
				reject(StatusError, fmt.Sprintf("chip %d already joined", ev.Chip))
				continue
			}
			f.chips[ev.Chip] = &chipEntry{seed: ev.Chip}
			cls.ok.Add(1)
			immediates = append(immediates, immediate{pos, res})
		case KindLeave:
			entry, ok := f.chips[ev.Chip]
			if !ok {
				reject(StatusError, fmt.Sprintf("chip %d not joined", ev.Chip))
				continue
			}
			delete(f.chips, ev.Chip)
			// Release once the chip's in-flight units drain; the handle
			// flushes its accumulated PE tables to the artifact store.
			f.bg.Add(1)
			go func() {
				defer f.bg.Done()
				entry.units.Wait()
				if entry.handle != nil {
					f.sim.ReleaseChip(entry.handle)
				}
			}()
			cls.ok.Add(1)
			immediates = append(immediates, immediate{pos, res})
		case KindRun:
			entry, ok := f.chips[ev.Chip]
			if !ok {
				reject(StatusError, fmt.Sprintf("chip %d not joined", ev.Chip))
				continue
			}
			if msg := f.validateRun(ev); msg != "" {
				reject(StatusError, msg)
				continue
			}
			if bucket, throttled := f.buckets[ev.Class]; throttled && !bucket.Allow(f.clock) {
				reject(StatusRejected, "admission: class rate exceeded")
				continue
			}
			key := fmt.Sprintf("%d|%s|%s", ev.Chip, ev.Env, ev.Mode)
			t := open[key]
			if t != nil && len(t.refs) >= f.cfg.MaxBatch {
				t = nil
			}
			if t == nil {
				t = &unitTask{entry: entry, env: ev.Env, mode: ev.Mode}
				open[key] = t
				tasks = append(tasks, t)
			} else {
				f.stats.batchedEvents.Add(1)
			}
			t.refs = append(t.refs, eventRef{b: b, pos: pos, ev: ev, seq: f.seq})
			entry.units.Add(1)
		default:
			reject(StatusError, fmt.Sprintf("unknown event kind %q", ev.Kind))
		}
	}
	// Route while still holding the lock: least-loaded reads and updates
	// the cumulative dispatched cost, and round-robin advances a cursor;
	// both must see tasks in ingest order to stay deterministic.
	targets := make([]int, len(tasks))
	for i, t := range tasks {
		targets[i] = f.route(t)
	}
	f.mu.Unlock()

	for _, im := range immediates {
		b.finish(im.pos, im.res)
	}
	depth := 0
	for i, t := range tasks {
		t.enq = time.Now()
		f.stats.units.Add(1)
		f.queues[targets[i]] <- t
		depth += len(f.queues[targets[i]])
	}
	if len(tasks) > 0 {
		f.mon.Depth(depth)
	}
	<-b.done
	return nil
}

// validateRun checks a run event's simulation coordinates, returning an
// error message ("" = valid).
func (f *Fleet) validateRun(ev Event) string {
	// Baseline probes report the chip's worst-case-safe frequency; they
	// simulate no app, so the coordinates below don't apply.
	if ev.Mode == ModeBaseline {
		return ""
	}
	app, ok := f.apps[ev.App]
	if !ok {
		return fmt.Sprintf("unknown app %q", ev.App)
	}
	if ev.Phase != nil && (*ev.Phase < 0 || *ev.Phase >= len(app.Phases)) {
		return fmt.Sprintf("app %q has no phase %d", ev.App, *ev.Phase)
	}
	switch ev.Mode {
	case ModeStatic, ModeFuzzy, ModeExh:
	default:
		return fmt.Sprintf("unknown mode %q", ev.Mode)
	}
	env, err := core.ParseEnvironment(ev.Env)
	if err != nil {
		return fmt.Sprintf("unknown environment %q", ev.Env)
	}
	if !env.Adaptive() {
		return fmt.Sprintf("environment %q is not adaptive", ev.Env)
	}
	return ""
}

// route picks a worker for a completed task. Caller holds f.mu.
func (f *Fleet) route(t *unitTask) int {
	switch f.cfg.Routing {
	case LeastLoaded:
		best := 0
		for w := 1; w < f.cfg.Workers; w++ {
			if f.load[w] < f.load[best] {
				best = w
			}
		}
		f.load[best] += float64(countGroups(t))
		return best
	case Affinity:
		return int(fnv64(t.entry.seed) % uint64(f.cfg.Workers))
	default:
		w := f.rrNext
		f.rrNext = (f.rrNext + 1) % f.cfg.Workers
		return w
	}
}

// groupKey identifies one solve inside a unit task.
type groupKey struct {
	app   string
	phase int // -1 = whole app
}

func keyOf(ev Event) groupKey {
	k := groupKey{app: ev.App, phase: -1}
	if ev.Phase != nil {
		k.phase = *ev.Phase
	}
	return k
}

func countGroups(t *unitTask) int {
	seen := make(map[groupKey]struct{}, len(t.refs))
	for _, ref := range t.refs {
		seen[keyOf(ref.ev)] = struct{}{}
	}
	return len(seen)
}

// Close drains the fleet: no new batches are accepted, queued units
// finish, remaining chips release (flushing PE tables), and the workers
// exit. Callers flush/close the artifact store themselves afterwards.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	remaining := make([]*chipEntry, 0, len(f.chips))
	for _, e := range f.chips {
		remaining = append(remaining, e)
	}
	f.chips = make(map[int64]*chipEntry)
	f.mu.Unlock()

	for _, q := range f.queues {
		close(q)
	}
	f.wg.Wait()
	for _, e := range remaining {
		e.units.Wait()
		if e.handle != nil {
			f.sim.ReleaseChip(e.handle)
		}
	}
	f.bg.Wait()
	f.mon.Publish()
}
