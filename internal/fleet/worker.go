package fleet

import (
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
)

// coreKey identifies a worker's cached view of a chip core. Keyed on the
// entry pointer, not the seed, so a chip that leaves and rejoins gets a
// fresh core generation.
type coreKey struct {
	entry *chipEntry
	env   core.Environment
}

// workerScratch is one worker's reusable task state. The views map
// caches per-(chip, env) WorkerViews of the entry's shared base core:
// the expensive core build happens once per chip per environment across
// the whole pool, and each worker derives a cheap private view (shared
// immutable models and PE store, fresh memo maps) so solves never
// contend.
type workerScratch struct {
	views  map[coreKey]*adapt.Core
	groups []group
	units  []core.FleetUnit
}

// worker drains one queue. Each task is a batch of compatible run
// events; distinct (app, phase) groups solve once and fan their result
// out to every event in the group.
func (f *Fleet) worker(w int) {
	defer f.wg.Done()
	sc := &workerScratch{views: make(map[coreKey]*adapt.Core)}
	for t := range f.queues[w] {
		sched := time.Since(t.enq)
		t0 := f.mon.TaskStart()
		f.runTask(w, t, sc, sched)
		f.mon.TaskDone(t0)
	}
}

// group is one distinct (app, phase) solve within a task.
type group struct {
	key  groupKey
	refs []int // indices into task.refs

	payload *RunPayload // shared by every ref's Result; nil on error
	errMsg  string
	hit     bool
}

// runTask executes one unit batch, finishes every referenced batch
// slot, and recycles the task.
func (f *Fleet) runTask(w int, t *unitTask, sc *workerScratch, sched time.Duration) {
	// Group events: duplicate (app, phase) pairs share one solve — the
	// bounded batching that makes repeated phase changes on a hot chip
	// nearly free. Tasks are small (MaxBatch), so group lookup is a
	// linear scan over the reused scratch slice, not a fresh map.
	sc.groups = sc.groups[:0]
	for i := range t.refs {
		k := keyOf(t.refs[i].ev)
		gi := -1
		for j := range sc.groups {
			if sc.groups[j].key == k {
				gi = j
				break
			}
		}
		if gi < 0 {
			if n := len(sc.groups); n < cap(sc.groups) {
				sc.groups = sc.groups[:n+1]
			} else {
				sc.groups = append(sc.groups, group{})
			}
			gi = len(sc.groups) - 1
			g := &sc.groups[gi]
			g.key = k
			g.refs = g.refs[:0]
			g.payload = nil
			g.errMsg = ""
			g.hit = false
		}
		sc.groups[gi].refs = append(sc.groups[gi].refs, i)
	}

	f.solveGroups(t, sc)

	total := time.Since(t.enq)
	for gi := range sc.groups {
		g := &sc.groups[gi]
		for _, i := range g.refs {
			ref := &t.refs[i]
			res := Result{
				Seq: ref.seq, At: ref.ev.At, Kind: ref.ev.Kind,
				Class: ref.ev.Class, Chip: ref.ev.Chip, Env: ref.ev.Env,
				Mode: ref.ev.Mode, App: ref.ev.App, Phase: ref.ev.Phase,
				CacheHit: g.hit, Batched: len(g.refs), Worker: w,
				SchedMs: ms(sched), TotalMs: ms(total),
			}
			if g.errMsg != "" {
				res.Status = StatusError
				res.Err = g.errMsg
				ref.cls.errors.Add(1)
			} else {
				res.Status = StatusOK
				res.Run = g.payload
				ref.cls.ok.Add(1)
				ref.cls.served.Add(1)
			}
			f.stats.observeRun(ref.cls, w, sched, total)
			ref.b.finish(ref.pos, res)
		}
	}
	entry := t.entry
	n := len(t.refs)
	t.release()
	for ; n > 0; n-- {
		entry.units.Done()
	}
}

// solveGroups fills each scratch group's payload (or error message).
func (f *Fleet) solveGroups(t *unitTask, sc *workerScratch) {
	groups := sc.groups
	handle, err := t.entry.ensure(f.sim)
	if err != nil {
		for gi := range groups {
			groups[gi].errMsg = err.Error()
		}
		return
	}
	if t.mode == ModeBaseline {
		for gi := range groups {
			groups[gi].payload = &RunPayload{FRel: handle.FVar()}
		}
		return
	}
	// Validated at ingest: env parses and is adaptive, mode is known,
	// apps and phases resolve.
	env, _ := core.ParseEnvironment(t.env)
	mode, _ := core.ParseMode(t.mode)
	ck := coreKey{entry: t.entry, env: env}
	cpu := sc.views[ck]
	if cpu == nil {
		base, cerr := t.entry.baseCore(f.sim, env)
		if cerr != nil {
			for gi := range groups {
				groups[gi].errMsg = cerr.Error()
			}
			return
		}
		cpu = base.WorkerView()
		sc.views[ck] = cpu
	}
	var solver adapt.Solver
	solverFP := ""
	switch mode {
	case core.FuzzyDyn:
		var serr error
		if solver, solverFP, serr = f.sim.HandleSolver(handle, cpu, f.cfg.Training); serr != nil {
			for gi := range groups {
				groups[gi].errMsg = serr.Error()
			}
			return
		}
	case core.ExhDyn:
		solver, solverFP = adapt.Exhaustive{}, "exh"
	}
	sc.units = sc.units[:0]
	for gi := range groups {
		g := &groups[gi]
		app := f.apps[g.key.app]
		unit := core.FleetUnit{App: app, Phase: g.key.phase}
		if mode == core.Static {
			pt, perr := f.sim.HandleStaticPoint(handle, cpu, app.Class, f.cfg.Apps)
			if perr != nil {
				g.errMsg = perr.Error()
			} else {
				unit.Static = &pt
			}
		}
		sc.units = append(sc.units, unit)
	}
	// One indexed pass tells which units replay from the artifact store;
	// the solve below then only pays the adaptation loop for the rest.
	hits := f.sim.PeekAppRuns(handle.Seed(), cpu, mode, solverFP, sc.units)
	for gi := range groups {
		g := &groups[gi]
		if g.errMsg != "" {
			continue
		}
		g.hit = hits[gi]
		if g.hit {
			f.stats.cacheHits.Add(1)
		} else {
			f.stats.cacheMisses.Add(1)
		}
		run, rerr := f.sim.UnitAppRun(handle.Seed(), cpu, mode, solver, sc.units[gi])
		if rerr != nil {
			g.errMsg = rerr.Error()
			continue
		}
		g.payload = &RunPayload{FRel: run.FRel, Perf: run.Perf, PowerW: run.PowerW, PE: run.PE}
	}
}
