package fleet

import (
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
)

// coreKey identifies a worker-cached core: cores are cheap but not free,
// and a worker sees the same (chip, environment) pairs repeatedly —
// always under affinity routing. Keyed on the entry pointer, not the
// seed, so a chip that leaves and rejoins gets a fresh core generation.
type coreKey struct {
	entry *chipEntry
	env   core.Environment
}

// worker drains one queue. Each task is a batch of compatible run
// events; distinct (app, phase) groups solve once and fan their result
// out to every event in the group.
func (f *Fleet) worker(w int) {
	defer f.wg.Done()
	cores := make(map[coreKey]*adapt.Core)
	for t := range f.queues[w] {
		sched := time.Since(t.enq)
		t0 := f.mon.TaskStart()
		f.runTask(w, t, cores, sched)
		f.mon.TaskDone(t0)
	}
}

// group is one distinct (app, phase) solve within a task.
type group struct {
	key  groupKey
	refs []int // indices into task.refs

	payload RunPayload
	errMsg  string
	hit     bool
}

// runTask executes one unit batch and finishes every referenced batch
// slot.
func (f *Fleet) runTask(w int, t *unitTask, cores map[coreKey]*adapt.Core, sched time.Duration) {
	// Group events: duplicate (app, phase) pairs share one solve — the
	// bounded batching that makes repeated phase changes on a hot chip
	// nearly free.
	var groups []*group
	byKey := make(map[groupKey]*group, len(t.refs))
	for i, ref := range t.refs {
		k := keyOf(ref.ev)
		g := byKey[k]
		if g == nil {
			g = &group{key: k}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.refs = append(g.refs, i)
	}

	f.solveGroups(t, groups, cores)

	total := time.Since(t.enq)
	for _, g := range groups {
		for _, i := range g.refs {
			ref := t.refs[i]
			res := Result{
				Seq: ref.seq, At: ref.ev.At, Kind: ref.ev.Kind,
				Class: ref.ev.Class, Chip: ref.ev.Chip, Env: ref.ev.Env,
				Mode: ref.ev.Mode, App: ref.ev.App, Phase: ref.ev.Phase,
				CacheHit: g.hit, Batched: len(g.refs), Worker: w,
				SchedMs: ms(sched), TotalMs: ms(total),
			}
			cls := f.stats.class(ref.ev.Class)
			if g.errMsg != "" {
				res.Status = StatusError
				res.Err = g.errMsg
				cls.errors.Add(1)
			} else {
				res.Status = StatusOK
				p := g.payload
				res.Run = &p
				cls.ok.Add(1)
				cls.served.Add(1)
			}
			f.stats.observeRun(cls, sched, total)
			ref.b.finish(ref.pos, res)
			t.entry.units.Done()
		}
	}
}

// solveGroups fills each group's payload (or error message). cores is
// the calling worker's private core cache.
func (f *Fleet) solveGroups(t *unitTask, groups []*group, cores map[coreKey]*adapt.Core) {
	handle, err := t.entry.ensure(f.sim)
	if err != nil {
		for _, g := range groups {
			g.errMsg = err.Error()
		}
		return
	}
	if t.mode == ModeBaseline {
		for _, g := range groups {
			g.payload = RunPayload{FRel: handle.FVar()}
		}
		return
	}
	// Validated at ingest: env parses and is adaptive, mode is known,
	// apps and phases resolve.
	env, _ := core.ParseEnvironment(t.env)
	mode, _ := core.ParseMode(t.mode)
	ck := coreKey{entry: t.entry, env: env}
	cpu := cores[ck]
	if cpu == nil {
		var cerr error
		if cpu, cerr = f.sim.HandleCore(handle, env); cerr != nil {
			for _, g := range groups {
				g.errMsg = cerr.Error()
			}
			return
		}
		cores[ck] = cpu
	}
	var solver adapt.Solver
	solverFP := ""
	switch mode {
	case core.FuzzyDyn:
		var serr error
		if solver, solverFP, serr = f.sim.HandleSolver(handle, cpu, f.cfg.Training); serr != nil {
			for _, g := range groups {
				g.errMsg = serr.Error()
			}
			return
		}
	case core.ExhDyn:
		solver, solverFP = adapt.Exhaustive{}, "exh"
	}
	units := make([]core.FleetUnit, len(groups))
	for i, g := range groups {
		app := f.apps[g.key.app]
		units[i] = core.FleetUnit{App: app, Phase: g.key.phase}
		if mode == core.Static {
			pt, perr := f.sim.HandleStaticPoint(handle, cpu, app.Class, f.cfg.Apps)
			if perr != nil {
				g.errMsg = perr.Error()
				continue
			}
			units[i].Static = &pt
		}
	}
	// One indexed pass tells which units replay from the artifact store;
	// the solve below then only pays the adaptation loop for the rest.
	hits := f.sim.PeekAppRuns(handle.Seed(), cpu, mode, solverFP, units)
	for i, g := range groups {
		if g.errMsg != "" {
			continue
		}
		g.hit = hits[i]
		if g.hit {
			f.stats.cacheHits.Add(1)
		} else {
			f.stats.cacheMisses.Add(1)
		}
		run, rerr := f.sim.UnitAppRun(handle.Seed(), cpu, mode, solver, units[i])
		if rerr != nil {
			g.errMsg = rerr.Error()
			continue
		}
		g.payload = RunPayload{FRel: run.FRel, Perf: run.Perf, PowerW: run.PowerW, PE: run.PE}
	}
}
