package fleet

import (
	"strconv"
	"unicode/utf8"
)

// AppendJSON appends the result's JSON object (no trailing newline) to
// buf and returns the extended slice. The output is byte-identical to
// encoding/json.Marshal for any Result with finite float fields: same
// struct field order, same omitempty behavior, the same HTML-safe
// string escaping (<, >, & as \u00XX), and the same float formatting.
// It exists for the serving hot path: streaming one NDJSON line per
// event through encoding/json costs a reflection walk and an
// intermediate allocation per result, where AppendJSON costs neither.
func (r *Result) AppendJSON(buf []byte) []byte {
	b := append(buf, `{"seq":`...)
	b = strconv.AppendInt(b, r.Seq, 10)
	b = append(b, `,"at":`...)
	b = strconv.AppendInt(b, r.At, 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, r.Kind)
	if r.Class != "" {
		b = append(b, `,"class":`...)
		b = appendJSONString(b, r.Class)
	}
	b = append(b, `,"chip":`...)
	b = strconv.AppendInt(b, r.Chip, 10)
	if r.Env != "" {
		b = append(b, `,"env":`...)
		b = appendJSONString(b, r.Env)
	}
	if r.Mode != "" {
		b = append(b, `,"mode":`...)
		b = appendJSONString(b, r.Mode)
	}
	if r.App != "" {
		b = append(b, `,"app":`...)
		b = appendJSONString(b, r.App)
	}
	if r.Phase != nil {
		b = append(b, `,"phase":`...)
		b = strconv.AppendInt(b, int64(*r.Phase), 10)
	}
	b = append(b, `,"status":`...)
	b = appendJSONString(b, r.Status)
	if r.Err != "" {
		b = append(b, `,"err":`...)
		b = appendJSONString(b, r.Err)
	}
	if r.Run != nil {
		b = append(b, `,"run":{"f_rel":`...)
		b = appendJSONFloat(b, r.Run.FRel)
		b = append(b, `,"perf":`...)
		b = appendJSONFloat(b, r.Run.Perf)
		b = append(b, `,"power_w":`...)
		b = appendJSONFloat(b, r.Run.PowerW)
		b = append(b, `,"pe":`...)
		b = appendJSONFloat(b, r.Run.PE)
		b = append(b, '}')
	}
	if r.CacheHit {
		b = append(b, `,"cache_hit":true`...)
	}
	if r.Batched != 0 {
		b = append(b, `,"batched":`...)
		b = strconv.AppendInt(b, int64(r.Batched), 10)
	}
	if r.Worker != 0 {
		b = append(b, `,"worker":`...)
		b = strconv.AppendInt(b, int64(r.Worker), 10)
	}
	if r.SchedMs != 0 {
		b = append(b, `,"sched_ms":`...)
		b = appendJSONFloat(b, r.SchedMs)
	}
	if r.TotalMs != 0 {
		b = append(b, `,"total_ms":`...)
		b = appendJSONFloat(b, r.TotalMs)
	}
	return append(b, '}')
}

// appendJSONFloat matches encoding/json's float64 formatting: shortest
// round-trip representation, 'f' form except for very small or very
// large magnitudes, which use 'e' form with the exponent's leading zero
// stripped. NaN and infinities (which encoding/json rejects outright)
// must not reach the wire; simulation outputs are finite.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := f
	if abs < 0 {
		abs = -abs
	}
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string with encoding/json's
// default (HTML-safe) escaping: quotes, backslashes, control
// characters, <, >, &, U+2028/U+2029, and invalid UTF-8 as U+FFFD.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control characters and the HTML-sensitive trio.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
