// Package fleet is the shared-clock discrete-event simulation service
// over the EVAL core: it scales the repo's unit of work — one pure
// (chip, environment, app, phase) adaptation, memoized in the artifact
// store — from batch CLIs to a long-running request stream serving tens
// of thousands of variation-affected chips.
//
// # Event model
//
// Clients submit ordered batches of Events. A join admits a chip (its
// variation maps, stage models, and PE-table donor build lazily on
// first use and are shared by all of its units); a leave retires it,
// flushing accumulated PE tables back to the artifact store once its
// in-flight units drain; a run requests one simulation unit — a phase
// change or retuning on an admitted chip, in one Table 1 environment
// and adaptation mode. Event timestamps (At) drive a virtual clock: the
// running maximum of submitted times. The clock feeds per-class
// token-bucket admission; it never influences simulation results.
//
// # Scheduling
//
// Ingest holds no global lock. A SubmitBatch call reserves its
// contiguous sequence block with one atomic add, folds timestamps into
// the virtual clock (an atomic running maximum), and then walks its
// events touching only sharded state: chip membership lives in
// hash-sharded maps (Config.MemberShards), admission buckets carry
// per-class locks, stats are atomic counters behind a copy-on-write
// class table with per-worker latency shards, and routing cursors are
// atomics. Compatible run events — same (chip, environment, mode) —
// coalesce into bounded unit batches that a routing policy
// (round-robin, least-loaded, affinity-by-chip) places on worker
// queues. Workers are pure with respect to ingest state: inside a
// batch, duplicate (app, phase) events share one solve, a single
// indexed probe (artifact.Store.ContainsBatch) splits groups into cache
// replays and cold solves, and results flow back through the submission
// batch. Each chip builds one base core per environment, shared across
// the pool; workers solve on private WorkerViews of it, so adding
// workers never multiplies core construction.
//
// # Ordering and determinism contract
//
// Results are emitted in submission order: within one SubmitBatch call,
// the emit callback observes results exactly in event order, whatever
// order workers finish in (a ready-array cursor re-serializes
// emission). Across concurrent SubmitBatch calls only sequence numbers
// order events — each call owns a contiguous block, and block order
// follows the atomic reservation; admission within a class follows
// bucket-lock acquisition order. The contract below is defined over a
// single-client trace, where both orders reduce to submission order.
//
// For a fixed simulator seed and a fixed event trace (one client
// submitting the same batches in the same order), Result.Canonical() —
// everything except the execution diagnostics (worker placement,
// latencies, cache hits, batching counts) — is byte-identical at every
// worker count, every shard count, and every routing policy. The three
// load-bearing properties: sequence assignment, the virtual clock, and
// admission are decided at ingest from the trace alone (serially, for a
// serial submitter); simulation units are pure functions of (chip seed,
// environment, mode, app, phase) — worker placement, core-view
// derivation, and PE-table build order cannot change their values; and
// per-batch emission is re-serialized by submission order. The
// determinism tests sweep shard counts {1, 32} × workers {1, 8} × all
// routing policies and compare canonical JSON byte-for-byte.
package fleet
