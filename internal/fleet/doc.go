// Package fleet is the shared-clock discrete-event simulation service
// over the EVAL core: it scales the repo's unit of work — one pure
// (chip, environment, app, phase) adaptation, memoized in the artifact
// store — from batch CLIs to a long-running request stream serving tens
// of thousands of variation-affected chips.
//
// # Event model
//
// Clients submit ordered batches of Events. A join admits a chip (its
// variation maps, stage models, and PE-table donor build lazily on
// first use and are shared by all of its units); a leave retires it,
// flushing accumulated PE tables back to the artifact store once its
// in-flight units drain; a run requests one simulation unit — a phase
// change or retuning on an admitted chip, in one Table 1 environment
// and adaptation mode. Event timestamps (At) drive a virtual clock: the
// running maximum of submitted times. The clock feeds per-class
// token-bucket admission; it never influences simulation results.
//
// # Scheduling
//
// Ingest is the only serialized stage. Under one lock, events receive
// global sequence numbers, the clock advances, admission buckets spend,
// membership updates, and compatible run events — same (chip,
// environment, mode) — coalesce into bounded unit batches that a
// routing policy (round-robin, least-loaded, affinity-by-chip) places
// on worker queues. Workers are pure with respect to ingest state:
// inside a batch, duplicate (app, phase) events share one solve, a
// single indexed probe (artifact.Store.ContainsBatch) splits groups
// into cache replays and cold solves, and results flow back through the
// submission batch.
//
// # Ordering and determinism contract
//
// Results are emitted in submission order: within one SubmitBatch call,
// the emit callback observes results exactly in event order, whatever
// order workers finish in (a ready-array cursor re-serializes
// emission). Across concurrent SubmitBatch calls only sequence numbers
// order events — interleaving follows lock acquisition.
//
// For a fixed simulator seed and a fixed event trace (one client
// submitting the same batches in the same order), Result.Canonical() —
// everything except the execution diagnostics (worker placement,
// latencies, cache hits, batching counts) — is byte-identical at every
// worker count and every routing policy. The three load-bearing
// properties: sequence assignment, the virtual clock, and admission are
// decided serially at ingest from the trace alone; simulation units are
// pure functions of (chip seed, environment, mode, app, phase) — worker
// placement and PE-table build order cannot change their values; and
// per-batch emission is re-serialized by submission order. The
// determinism tests sweep workers {1, 8} × all routing policies and
// compare canonical JSON byte-for-byte.
package fleet
