package fleet

import "sync"

// Rate configures one admission class: a token bucket refilled at
// PerTick tokens per virtual-time tick, holding at most Burst tokens.
// Each run event spends one token; join/leave events bypass admission
// (membership changes are never dropped).
type Rate struct {
	PerTick float64 `json:"per_tick"`
	Burst   float64 `json:"burst"`
}

// TokenBucket is a token bucket over the fleet's virtual clock. It is
// deliberately not wall-clock based: refills depend only on submitted
// event timestamps, so admission decisions are part of the deterministic
// event-trace semantics rather than a function of host speed. Each
// bucket carries its own mutex: the sharded ingest path serializes
// admission per class here instead of under one global fleet lock, so
// classes never contend with each other.
type TokenBucket struct {
	mu      sync.Mutex
	perTick float64
	burst   float64
	tokens  float64
	last    int64
	primed  bool
}

// NewTokenBucket returns a bucket that starts full at the first
// observed tick.
func NewTokenBucket(r Rate) *TokenBucket {
	return &TokenBucket{perTick: r.PerTick, burst: r.Burst}
}

// Allow spends one token at virtual time at, refilling for the ticks
// elapsed since the last call first. Time moving backwards (events may
// carry stale timestamps) refills nothing but still allows spending.
// Safe for concurrent use; concurrent submitters spend in bucket-lock
// acquisition order.
func (b *TokenBucket) Allow(at int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.primed {
		b.primed = true
		b.last = at
		b.tokens = b.burst
	}
	if at > b.last {
		b.tokens += float64(at-b.last) * b.perTick
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = at
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
