package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// stats aggregates service-level telemetry: global throughput counters,
// scheduling/total latency histograms, and per-class breakdowns for the
// fairness index. Nothing here takes a lock on the steady-state path:
// counters are atomics, the class table is copy-on-write (reads are a
// single atomic pointer load; the write lock is only taken the first
// time a class name appears), and the latency histograms are sharded
// per worker and merged at snapshot time. Histograms are zero-value
// obs.Histograms used directly (not through a registry) so /v1/stats
// can quote quantiles without a registry attached.
type stats struct {
	start time.Time

	events        atomic.Int64 // every submitted event
	units         atomic.Int64 // dispatched unit batches
	batchedEvents atomic.Int64 // run events that shared an already-open unit
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64

	lat []latShard // global latency shards, indexed by worker

	classMu sync.Mutex // serializes class-table copy-on-write updates
	classes atomic.Pointer[map[string]*classStats]
}

// latShard is one worker's slice of a latency pair. Each worker observes
// into its own shard, so the histogram mutexes are never contended; the
// padding keeps adjacent shards off one cache line.
type latShard struct {
	sched obs.Histogram // run-event dispatch → worker pickup
	total obs.Histogram // run-event dispatch → result emitted
	_     [64]byte
}

// classStats is one admission class's slice of the telemetry.
type classStats struct {
	events   atomic.Int64
	ok       atomic.Int64
	rejected atomic.Int64
	errors   atomic.Int64
	// served counts StatusOK *run* events only — the per-client service
	// rate the fairness index is defined over (joins and leaves are
	// membership bookkeeping, not service).
	served atomic.Int64

	lat []latShard // per-worker latency shards, like the global pair
}

func newStats(workers int) *stats {
	s := &stats{start: time.Now(), lat: make([]latShard, workers)}
	empty := make(map[string]*classStats)
	s.classes.Store(&empty)
	return s
}

// class returns (creating if needed) the class's stats slot. The hit
// path is one atomic load and a map read; creation copies the table.
func (s *stats) class(name string) *classStats {
	if c, ok := (*s.classes.Load())[name]; ok {
		return c
	}
	s.classMu.Lock()
	defer s.classMu.Unlock()
	cur := *s.classes.Load()
	if c, ok := cur[name]; ok { // lost the creation race
		return c
	}
	c := &classStats{lat: make([]latShard, len(s.lat))}
	next := make(map[string]*classStats, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = c
	s.classes.Store(&next)
	return c
}

// observeRun records one completed run event's latencies into worker w's
// shards.
func (s *stats) observeRun(c *classStats, w int, sched, total time.Duration) {
	s.lat[w].sched.Observe(sched)
	s.lat[w].total.Observe(total)
	c.lat[w].sched.Observe(sched)
	c.lat[w].total.Observe(total)
}

// mergeLat folds a shard set into one scratch pair for quantiles.
func mergeLat(shards []latShard) (sched, total *obs.Histogram) {
	sched, total = new(obs.Histogram), new(obs.Histogram)
	for i := range shards {
		sched.Merge(&shards[i].sched)
		total.Merge(&shards[i].total)
	}
	return sched, total
}

// ClassSnapshot is one class's row of a stats snapshot.
type ClassSnapshot struct {
	Events   int64 `json:"events"`
	OK       int64 `json:"ok"`
	Rejected int64 `json:"rejected"`
	Errors   int64 `json:"errors"`

	SchedP50Ms float64 `json:"sched_p50_ms"`
	SchedP99Ms float64 `json:"sched_p99_ms"`
	TotalP50Ms float64 `json:"total_p50_ms"`
	TotalP99Ms float64 `json:"total_p99_ms"`
}

// Snapshot is the /v1/stats document.
type Snapshot struct {
	UptimeS float64 `json:"uptime_s"`
	Workers int     `json:"workers"`
	Routing string  `json:"routing"`
	Chips   int     `json:"chips"`

	Events        int64 `json:"events"`
	Units         int64 `json:"units"`
	BatchedEvents int64 `json:"batched_events"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`

	// EventsPerSec is events over uptime.
	EventsPerSec float64 `json:"events_per_sec"`
	// Fairness is the Jain index over per-class served (ok) counts:
	// 1 = perfectly even service, 1/n = one class served exclusively.
	Fairness float64 `json:"fairness"`

	SchedP50Ms float64 `json:"sched_p50_ms"`
	SchedP99Ms float64 `json:"sched_p99_ms"`
	TotalP50Ms float64 `json:"total_p50_ms"`
	TotalP99Ms float64 `json:"total_p99_ms"`

	Classes map[string]ClassSnapshot `json:"classes,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// snapshot renders the current telemetry.
func (s *stats) snapshot() Snapshot {
	sched, total := mergeLat(s.lat)
	snap := Snapshot{
		UptimeS:       time.Since(s.start).Seconds(),
		Events:        s.events.Load(),
		Units:         s.units.Load(),
		BatchedEvents: s.batchedEvents.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		SchedP50Ms:    ms(sched.Quantile(0.50)),
		SchedP99Ms:    ms(sched.Quantile(0.99)),
		TotalP50Ms:    ms(total.Quantile(0.50)),
		TotalP99Ms:    ms(total.Quantile(0.99)),
		Classes:       make(map[string]ClassSnapshot),
	}
	if snap.UptimeS > 0 {
		snap.EventsPerSec = float64(snap.Events) / snap.UptimeS
	}
	classes := *s.classes.Load()
	served := make([]float64, 0, len(classes))
	for name, c := range classes {
		served = append(served, float64(c.served.Load()))
		cs, ct := mergeLat(c.lat)
		snap.Classes[name] = ClassSnapshot{
			Events:     c.events.Load(),
			OK:         c.ok.Load(),
			Rejected:   c.rejected.Load(),
			Errors:     c.errors.Load(),
			SchedP50Ms: ms(cs.Quantile(0.50)),
			SchedP99Ms: ms(cs.Quantile(0.99)),
			TotalP50Ms: ms(ct.Quantile(0.50)),
			TotalP99Ms: ms(ct.Quantile(0.99)),
		}
	}
	snap.Fairness = JainFairness(served)
	return snap
}

// JainFairness computes Jain's fairness index (Σx)² / (n·Σx²) over
// per-class service rates; 0 with no samples or no service.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
