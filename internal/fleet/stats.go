package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// stats aggregates service-level telemetry: global throughput counters,
// scheduling/total latency histograms, and per-class breakdowns for the
// fairness index. Histograms are zero-value obs.Histograms used
// directly (not through a registry) so /v1/stats can quote quantiles
// without a registry attached.
type stats struct {
	start time.Time

	events        atomic.Int64 // every submitted event
	units         atomic.Int64 // dispatched unit batches
	batchedEvents atomic.Int64 // run events that shared an already-open unit
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64

	sched obs.Histogram // run-event dispatch → worker pickup
	total obs.Histogram // run-event dispatch → result emitted

	mu      sync.Mutex
	classes map[string]*classStats
}

// classStats is one admission class's slice of the telemetry.
type classStats struct {
	events   atomic.Int64
	ok       atomic.Int64
	rejected atomic.Int64
	errors   atomic.Int64
	// served counts StatusOK *run* events only — the per-client service
	// rate the fairness index is defined over (joins and leaves are
	// membership bookkeeping, not service).
	served atomic.Int64

	sched obs.Histogram
	total obs.Histogram
}

func newStats() *stats {
	return &stats{start: time.Now(), classes: make(map[string]*classStats)}
}

// class returns (creating if needed) the class's stats slot.
func (s *stats) class(name string) *classStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.classes[name]
	if !ok {
		c = &classStats{}
		s.classes[name] = c
	}
	return c
}

// observeRun records one completed run event's latencies.
func (s *stats) observeRun(c *classStats, sched, total time.Duration) {
	s.sched.Observe(sched)
	s.total.Observe(total)
	c.sched.Observe(sched)
	c.total.Observe(total)
}

// ClassSnapshot is one class's row of a stats snapshot.
type ClassSnapshot struct {
	Events   int64 `json:"events"`
	OK       int64 `json:"ok"`
	Rejected int64 `json:"rejected"`
	Errors   int64 `json:"errors"`

	SchedP50Ms float64 `json:"sched_p50_ms"`
	SchedP99Ms float64 `json:"sched_p99_ms"`
	TotalP50Ms float64 `json:"total_p50_ms"`
	TotalP99Ms float64 `json:"total_p99_ms"`
}

// Snapshot is the /v1/stats document.
type Snapshot struct {
	UptimeS float64 `json:"uptime_s"`
	Workers int     `json:"workers"`
	Routing string  `json:"routing"`
	Chips   int     `json:"chips"`

	Events        int64 `json:"events"`
	Units         int64 `json:"units"`
	BatchedEvents int64 `json:"batched_events"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`

	// EventsPerSec is events over uptime.
	EventsPerSec float64 `json:"events_per_sec"`
	// Fairness is the Jain index over per-class served (ok) counts:
	// 1 = perfectly even service, 1/n = one class served exclusively.
	Fairness float64 `json:"fairness"`

	SchedP50Ms float64 `json:"sched_p50_ms"`
	SchedP99Ms float64 `json:"sched_p99_ms"`
	TotalP50Ms float64 `json:"total_p50_ms"`
	TotalP99Ms float64 `json:"total_p99_ms"`

	Classes map[string]ClassSnapshot `json:"classes,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// snapshot renders the current telemetry.
func (s *stats) snapshot() Snapshot {
	snap := Snapshot{
		UptimeS:       time.Since(s.start).Seconds(),
		Events:        s.events.Load(),
		Units:         s.units.Load(),
		BatchedEvents: s.batchedEvents.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		SchedP50Ms:    ms(s.sched.Quantile(0.50)),
		SchedP99Ms:    ms(s.sched.Quantile(0.99)),
		TotalP50Ms:    ms(s.total.Quantile(0.50)),
		TotalP99Ms:    ms(s.total.Quantile(0.99)),
		Classes:       make(map[string]ClassSnapshot),
	}
	if snap.UptimeS > 0 {
		snap.EventsPerSec = float64(snap.Events) / snap.UptimeS
	}
	s.mu.Lock()
	served := make([]float64, 0, len(s.classes))
	for name, c := range s.classes {
		served = append(served, float64(c.served.Load()))
		snap.Classes[name] = ClassSnapshot{
			Events:     c.events.Load(),
			OK:         c.ok.Load(),
			Rejected:   c.rejected.Load(),
			Errors:     c.errors.Load(),
			SchedP50Ms: ms(c.sched.Quantile(0.50)),
			SchedP99Ms: ms(c.sched.Quantile(0.99)),
			TotalP50Ms: ms(c.total.Quantile(0.50)),
			TotalP99Ms: ms(c.total.Quantile(0.99)),
		}
	}
	s.mu.Unlock()
	snap.Fairness = JainFairness(served)
	return snap
}

// JainFairness computes Jain's fairness index (Σx)² / (n·Σx²) over
// per-class service rates; 0 with no samples or no service.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
