package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// testSim builds one shared small-scale simulator backed by dir ("" = no
// store).
func testSim(t *testing.T, dir string) *core.Simulator {
	t.Helper()
	opts := core.DefaultOptions()
	opts.TraceLen = 6000
	sim, err := core.NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	if dir != "" {
		store, err := artifact.Open(dir, artifact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(store.Close)
		sim.SetArtifacts(store)
	}
	return sim
}

func testApps(t *testing.T) []workload.App {
	t.Helper()
	var apps []workload.App
	for _, name := range []string{"gcc", "swim"} {
		a, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	return apps
}

func intp(v int) *int { return &v }

// testTrace is the determinism sweep's fixed event stream: joins, every
// run mode (baseline, static, exh, fuzzy), whole-app and phase units,
// duplicate events that must coalesce, malformed events with
// deterministic error results, an admission-capped class, and a
// leave/rejoin cycle.
func testTrace() [][]Event {
	const env = "TS+ASV"
	return [][]Event{
		{
			{At: 1, Kind: KindJoin, Class: "a", Chip: 4242},
			{At: 1, Kind: KindJoin, Class: "b", Chip: 4243},
			{At: 1, Kind: KindJoin, Class: "b", Chip: 4243}, // duplicate join -> error
			{At: 2, Kind: KindRun, Class: "a", Chip: 4242, Mode: ModeBaseline, App: "gcc"},
			{At: 2, Kind: KindRun, Class: "b", Chip: 4243, Mode: ModeBaseline, App: "swim"},
		},
		{
			{At: 3, Kind: KindRun, Class: "a", Chip: 4242, Env: env, Mode: ModeExh, App: "gcc", Phase: intp(0)},
			{At: 3, Kind: KindRun, Class: "a", Chip: 4242, Env: env, Mode: ModeExh, App: "gcc", Phase: intp(0)}, // coalesces
			{At: 3, Kind: KindRun, Class: "b", Chip: 4243, Env: env, Mode: ModeExh, App: "swim", Phase: intp(1)},
			{At: 3, Kind: KindRun, Class: "a", Chip: 4242, Env: env, Mode: ModeExh, App: "gcc"}, // whole app
			{At: 3, Kind: KindRun, Class: "a", Chip: 4242, Env: env, Mode: ModeStatic, App: "gcc", Phase: intp(1)},
			{At: 3, Kind: KindRun, Class: "b", Chip: 4243, Env: env, Mode: ModeFuzzy, App: "swim", Phase: intp(0)},
			{At: 3, Kind: KindRun, Class: "a", Chip: 9999, Env: env, Mode: ModeExh, App: "gcc"},                  // not joined -> error
			{At: 3, Kind: KindRun, Class: "a", Chip: 4242, Env: env, Mode: ModeExh, App: "nope"},                 // unknown app -> error
			{At: 3, Kind: KindRun, Class: "a", Chip: 4242, Env: env, Mode: ModeExh, App: "gcc", Phase: intp(99)}, // bad phase -> error
			{At: 3, Kind: KindRun, Class: "a", Chip: 4242, Env: "Baseline", Mode: ModeExh, App: "gcc"},           // non-adaptive env -> error
		},
		{
			// Class "capped" has burst 2 and no refill at a frozen clock:
			// exactly the first two run events pass admission.
			{At: 4, Kind: KindRun, Class: "capped", Chip: 4242, Mode: ModeBaseline, App: "gcc"},
			{At: 4, Kind: KindRun, Class: "capped", Chip: 4242, Mode: ModeBaseline, App: "gcc"},
			{At: 4, Kind: KindRun, Class: "capped", Chip: 4242, Mode: ModeBaseline, App: "gcc"},
			{At: 4, Kind: KindRun, Class: "capped", Chip: 4242, Mode: ModeBaseline, App: "gcc"},
		},
		{
			{At: 5, Kind: KindLeave, Class: "b", Chip: 4243},
			{At: 5, Kind: KindRun, Class: "b", Chip: 4243, Env: env, Mode: ModeExh, App: "swim"}, // after leave -> error
			{At: 6, Kind: KindJoin, Class: "b", Chip: 4243},
			{At: 7, Kind: KindRun, Class: "b", Chip: 4243, Env: env, Mode: ModeExh, App: "swim", Phase: intp(0)},
		},
	}
}

// runTrace plays the fixed trace through a fresh fleet and returns the
// canonical result stream as JSON lines.
func runTrace(t *testing.T, sim *core.Simulator, workers, shards int, routing Routing) []string {
	t.Helper()
	training := adapt.DefaultTrainOptions()
	training.Examples = 60
	f, err := New(sim, Config{
		Workers:      workers,
		Routing:      routing,
		MaxBatch:     4,
		MemberShards: shards,
		Admission: map[string]Rate{
			"capped": {PerTick: 0, Burst: 2},
		},
		Apps:     testApps(t),
		Training: training,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []string
	for _, batch := range testTrace() {
		err := f.SubmitBatch(batch, func(r Result) {
			blob, jerr := json.Marshal(r.Canonical())
			if jerr != nil {
				t.Error(jerr)
			}
			lines = append(lines, string(blob))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return lines
}

// TestFleetDeterminism is the headline contract: at a fixed seed and
// fixed event trace, canonical results are byte-identical at every
// worker count, membership shard count, and routing policy. The
// simulator and artifact store are shared across the sweep, so the
// first (cold) run also pins warm cache replays to the same bytes.
func TestFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	sim := testSim(t, t.TempDir())
	var want []string
	wantFrom := ""
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 32} {
			for _, routing := range Routings() {
				got := runTrace(t, sim, workers, shards, routing)
				label := fmt.Sprintf("workers=%d shards=%d routing=%v", workers, shards, routing)
				if want == nil {
					want, wantFrom = got, label
					// The trace must actually exercise results, errors, and
					// rejections or the sweep proves nothing.
					var okRuns, errs, rejects int
					for _, line := range got {
						var r Result
						if err := json.Unmarshal([]byte(line), &r); err != nil {
							t.Fatal(err)
						}
						switch {
						case r.Status == StatusOK && r.Kind == KindRun:
							okRuns++
						case r.Status == StatusError:
							errs++
						case r.Status == StatusRejected:
							rejects++
						}
					}
					if okRuns < 8 || errs < 5 || rejects != 2 {
						t.Fatalf("trace coverage: ok=%d errs=%d rejects=%d", okRuns, errs, rejects)
					}
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("%s emitted %d results, %s emitted %d", label, len(got), wantFrom, len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s diverges from %s at result %d:\n  %s\n  %s",
							label, wantFrom, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestFleetEmissionOrder: results arrive strictly in submission order
// with consecutive fleet-global sequence numbers.
func TestFleetEmissionOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	sim := testSim(t, "")
	f, err := New(sim, Config{Workers: 4, Apps: testApps(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events := []Event{{At: 1, Kind: KindJoin, Chip: 7}}
	for i := 0; i < 12; i++ {
		events = append(events, Event{At: 2, Kind: KindRun, Chip: 7, Mode: ModeBaseline, App: "gcc"})
	}
	var seqs []int64
	if err := f.SubmitBatch(events, func(r Result) { seqs = append(seqs, r.Seq) }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != len(events) {
		t.Fatalf("emitted %d results for %d events", len(seqs), len(events))
	}
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("result %d has seq %d; emission is out of submission order", i, s)
		}
	}
}

// TestTokenBucket covers the admission bucket in isolation.
func TestTokenBucket(t *testing.T) {
	b := NewTokenBucket(Rate{PerTick: 2, Burst: 4})
	// Starts full at the first observed tick.
	for i := 0; i < 4; i++ {
		if !b.Allow(10) {
			t.Fatalf("spend %d of the initial burst was denied", i)
		}
	}
	if b.Allow(10) {
		t.Fatal("empty bucket allowed a spend at a frozen clock")
	}
	// Two ticks refill 4 tokens.
	for i := 0; i < 4; i++ {
		if !b.Allow(12) {
			t.Fatalf("spend %d after refill was denied", i)
		}
	}
	if b.Allow(12) {
		t.Fatal("refill exceeded the elapsed-ticks budget")
	}
	// Refill clamps at the burst.
	for i := 0; i < 4; i++ {
		if !b.Allow(1000) {
			t.Fatalf("spend %d after a long idle was denied", i)
		}
	}
	if b.Allow(1000) {
		t.Fatal("refill exceeded the burst cap")
	}
	// Time moving backwards refills nothing but still spends.
	b2 := NewTokenBucket(Rate{PerTick: 1, Burst: 1})
	if !b2.Allow(100) {
		t.Fatal("initial spend denied")
	}
	if b2.Allow(50) {
		t.Fatal("backwards time refilled the bucket")
	}
}

// TestJainFairness pins the fairness index's shape.
func TestJainFairness(t *testing.T) {
	if got := JainFairness(nil); got != 0 {
		t.Fatalf("empty fairness = %v", got)
	}
	if got := JainFairness([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("even fairness = %v, want 1", got)
	}
	if got := JainFairness([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single-class fairness = %v, want 0.25", got)
	}
}

// TestFleetStats: counters, batching, cache hits, and fairness surface
// in the snapshot.
func TestFleetStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	sim := testSim(t, t.TempDir())
	reg := obs.NewRegistry()
	f, err := New(sim, Config{Workers: 2, Apps: testApps(t), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{At: 1, Kind: KindJoin, Class: "a", Chip: 4242},
		{At: 2, Kind: KindRun, Class: "a", Chip: 4242, Env: "TS+ASV", Mode: ModeExh, App: "gcc", Phase: intp(0)},
		{At: 2, Kind: KindRun, Class: "b", Chip: 4242, Env: "TS+ASV", Mode: ModeExh, App: "gcc", Phase: intp(0)},
	}
	if err := f.SubmitBatch(events, nil); err != nil {
		t.Fatal(err)
	}
	// Resubmit the run events: the artifact store now replays them.
	if err := f.SubmitBatch(events[1:], nil); err != nil {
		t.Fatal(err)
	}
	snap := f.Stats()
	f.Close()
	if snap.Events != 5 {
		t.Fatalf("events = %d, want 5", snap.Events)
	}
	if snap.Units < 2 {
		t.Fatalf("units = %d, want >= 2", snap.Units)
	}
	if snap.BatchedEvents < 1 {
		t.Fatalf("batched events = %d, want >= 1 (two compatible events must share a unit)", snap.BatchedEvents)
	}
	if snap.CacheHits < 1 {
		t.Fatalf("cache hits = %d, want >= 1 on the resubmission", snap.CacheHits)
	}
	if snap.Chips != 1 {
		t.Fatalf("chips = %d, want 1", snap.Chips)
	}
	if math.Abs(snap.Fairness-1) > 1e-12 {
		t.Fatalf("fairness = %v, want 1 (both classes served two run events)", snap.Fairness)
	}
	if reg.Gauge("fleet.pool.workers").Value() != 2 {
		t.Fatal("fleet.pool.workers gauge not published")
	}
	if snap.Classes["a"].OK != 3 || snap.Classes["b"].OK != 2 {
		t.Fatalf("class service counts: a=%d b=%d", snap.Classes["a"].OK, snap.Classes["b"].OK)
	}
}

// TestFleetConcurrentSoak hammers one fleet with concurrent join, leave,
// and submit traffic; under -race this is the concurrency audit of the
// ingest/worker/release machinery. Baseline-mode events keep each unit
// cheap without losing any of the scheduling paths.
func TestFleetConcurrentSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency soak")
	}
	sim := testSim(t, "")
	f, err := New(sim, Config{
		Workers:   4,
		Routing:   LeastLoaded,
		Apps:      testApps(t),
		Admission: map[string]Rate{"noisy": {PerTick: 5, Burst: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	emitted := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			chip := int64(100 + c%3) // chips contended across clients
			class := "noisy"
			if c%2 == 0 {
				class = fmt.Sprintf("client-%d", c)
			}
			for round := 0; round < 8; round++ {
				events := []Event{
					{At: int64(round), Kind: KindJoin, Class: class, Chip: chip},
				}
				for i := 0; i < 4; i++ {
					events = append(events, Event{
						At: int64(round), Kind: KindRun, Class: class, Chip: chip,
						Mode: ModeBaseline, App: "gcc",
					})
				}
				events = append(events, Event{At: int64(round), Kind: KindLeave, Class: class, Chip: chip})
				n := 0
				if err := f.SubmitBatch(events, func(Result) { n++ }); err != nil {
					t.Error(err)
					return
				}
				if n != len(events) {
					t.Errorf("client %d round %d: %d results for %d events", c, round, n, len(events))
				}
				mu.Lock()
				emitted += n
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	f.Close()
	if got := f.stats.events.Load(); int(got) != emitted {
		t.Fatalf("stats counted %d events, emitted %d", got, emitted)
	}
	// Close is idempotent and post-close submissions fail cleanly.
	f.Close()
	if err := f.SubmitBatch([]Event{{Kind: KindJoin, Chip: 1}}, nil); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// TestSubmitBatchAllocs gates the steady-state ingest path's allocation
// budget: once the pools and latency reservoirs are warm, a 50-event
// baseline-run batch must stay within a small constant allocation count
// — the property that keeps the serving hot path off the garbage
// collector at fleet scale.
func TestSubmitBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack experiment")
	}
	sim := testSim(t, "")
	f, err := New(sim, Config{Workers: 2, Apps: testApps(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const batchN = 50
	batch := make([]Event, 0, batchN+1)
	batch = append(batch, Event{At: 1, Kind: KindJoin, Class: "steady", Chip: 31337})
	for i := 0; i < batchN; i++ {
		batch = append(batch, Event{At: 2, Kind: KindRun, Class: "steady", Chip: 31337,
			Mode: ModeBaseline, App: "gcc"})
	}
	if err := f.SubmitBatch(batch, nil); err != nil {
		t.Fatal(err)
	}
	steady := batch[1:]
	// Warm the scratch pools and fill the latency reservoirs (4096
	// samples per histogram shard) so the measured loop sees the true
	// steady state.
	for i := 0; i < 200; i++ {
		if err := f.SubmitBatch(steady, nil); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := f.SubmitBatch(steady, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state SubmitBatch: %.1f allocs per %d-event batch", avg, batchN)
	// Budget: the batch's done channel, the unit's result payload, and a
	// little slack for pool refills after a GC — far under one alloc per
	// event (the old path paid ~14 per event).
	if limit := 25.0; avg > limit {
		t.Fatalf("steady-state SubmitBatch allocates %.1f times per %d-event batch (limit %.0f)",
			avg, batchN, limit)
	}
}
