package fleet

// Event kinds. A join admits a chip to the fleet, a leave retires it
// (flushing its accumulated PE tables to the artifact store), and a run
// asks for one simulation unit: a phase change or retuning request on an
// admitted chip.
const (
	KindJoin  = "join"
	KindLeave = "leave"
	KindRun   = "run"
)

// Run-event modes. The adaptation modes mirror core.Mode; "baseline"
// reports the chip's worst-case-safe frequency without running an
// adaptation unit (the Figure 10 anchor).
const (
	ModeBaseline = "baseline"
	ModeStatic   = "static"
	ModeFuzzy    = "fuzzy"
	ModeExh      = "exh"
)

// Result statuses.
const (
	// StatusOK: the unit ran (or the join/leave took effect).
	StatusOK = "ok"
	// StatusRejected: admission control dropped the event (class bucket
	// empty at the event's virtual time).
	StatusRejected = "rejected"
	// StatusError: the event was malformed or its unit failed.
	StatusError = "error"
)

// Event is one request-stream entry, as submitted to POST /v1/batch.
type Event struct {
	// At is the event's virtual time in ticks. The fleet clock is the
	// running maximum of submitted At values; admission buckets refill on
	// it. At never affects simulation results.
	At int64 `json:"at"`
	// Kind is join, leave, or run.
	Kind string `json:"kind"`
	// Class is the admission/fairness class (typically a client id).
	// Unconfigured classes are unthrottled.
	Class string `json:"class,omitempty"`
	// Chip is the chip's variation-map generator seed.
	Chip int64 `json:"chip"`

	// Env is the Table 1 environment name ("TS+ASV+Q+FU", ...) for
	// adaptation runs; ignored for baseline runs and join/leave.
	Env string `json:"env,omitempty"`
	// Mode is baseline, static, fuzzy, or exh (run events only).
	Mode string `json:"mode,omitempty"`
	// App names the application (run events only).
	App string `json:"app,omitempty"`
	// Phase, when set, runs the single phase at that position in the
	// app's phase list; nil runs the whole phase-weighted app.
	Phase *int `json:"phase,omitempty"`
}

// RunPayload carries a unit's simulation results. Baseline runs fill
// only FRel (the chip's worst-case-safe relative frequency).
type RunPayload struct {
	FRel   float64 `json:"f_rel"`
	Perf   float64 `json:"perf"`
	PowerW float64 `json:"power_w"`
	PE     float64 `json:"pe"`
}

// Result is one event's outcome, streamed back in submission order.
type Result struct {
	// Seq is the event's fleet-global ingest sequence number.
	Seq   int64  `json:"seq"`
	At    int64  `json:"at"`
	Kind  string `json:"kind"`
	Class string `json:"class,omitempty"`
	Chip  int64  `json:"chip"`
	Env   string `json:"env,omitempty"`
	Mode  string `json:"mode,omitempty"`
	App   string `json:"app,omitempty"`
	Phase *int   `json:"phase,omitempty"`

	Status string `json:"status"`
	// Err describes a StatusError result.
	Err string `json:"err,omitempty"`
	// Run carries the unit's results for StatusOK run events.
	Run *RunPayload `json:"run,omitempty"`

	// Diagnostics. These describe how the service happened to execute
	// the unit — batching, placement, cache state, queueing — and are
	// excluded from Canonical(), which is what the determinism contract
	// covers.
	CacheHit bool    `json:"cache_hit,omitempty"`
	Batched  int     `json:"batched,omitempty"`
	Worker   int     `json:"worker,omitempty"`
	SchedMs  float64 `json:"sched_ms,omitempty"`
	TotalMs  float64 `json:"total_ms,omitempty"`
}

// Canonical returns the result with execution diagnostics zeroed: the
// part of a result that is byte-identical at every worker count and
// routing policy for a fixed seed and event trace.
func (r Result) Canonical() Result {
	r.CacheHit = false
	r.Batched = 0
	r.Worker = 0
	r.SchedMs = 0
	r.TotalMs = 0
	return r
}
