package fleet

import "fmt"

// Routing selects how ingest places unit batches on workers. Placement
// never affects results — units are pure and emission is
// sequence-ordered — only locality and load balance.
type Routing int

const (
	// RoundRobin cycles workers in ingest order.
	RoundRobin Routing = iota
	// LeastLoaded places each batch on the worker with the least
	// cumulative dispatched cost (ties break toward the lowest index).
	// Cost is the batch's distinct-unit count — a virtual measure, so
	// placement stays a pure function of the event trace rather than of
	// wall-clock completion times.
	LeastLoaded
	// Affinity hashes the chip seed, pinning every unit of a chip to one
	// worker so its cores, PE tables, and memo state stay hot there.
	Affinity
)

// String names the policy as ParseRouting accepts it.
func (r Routing) String() string {
	switch r {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case Affinity:
		return "affinity"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// ParseRouting resolves a policy name.
func ParseRouting(name string) (Routing, error) {
	switch name {
	case "round-robin", "rr":
		return RoundRobin, nil
	case "least-loaded", "ll":
		return LeastLoaded, nil
	case "affinity":
		return Affinity, nil
	default:
		return 0, fmt.Errorf("fleet: unknown routing policy %q", name)
	}
}

// Routings lists every policy (the determinism tests sweep it).
func Routings() []Routing { return []Routing{RoundRobin, LeastLoaded, Affinity} }

// fnv64 hashes a chip seed for affinity placement.
func fnv64(seed int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(seed >> (8 * i)))
		h *= 1099511628211
	}
	return h
}
