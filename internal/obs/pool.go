package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// RunPool executes n index-addressed tasks across at most workers
// goroutines fed from one shared work queue, blocking until every task has
// run. fn receives a stable worker-slot index in [0, workers) — usable for
// per-worker scratch state and progress attribution — and the task index
// in [0, n). Tasks are handed out in index order but may complete in any
// order; callers that need deterministic results must write them to
// task-indexed slots and reduce in index order afterwards.
//
// When reg is non-nil the pool records, under the given metric prefix:
//
//	<prefix>.workers        gauge: the resolved worker count
//	<prefix>.queue_depth    gauge: tasks still queued at each dequeue
//	<prefix>.occupancy_pct  gauge: busy time / (wall time × workers)
//
// A nil registry disables all of it at the usual zero cost. workers < 1 is
// treated as 1; workers above n are clamped to n.
func RunPool(reg *Registry, prefix string, workers, n int, fn func(slot, task int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	mon := NewPoolMonitor(reg, prefix, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			t0 := mon.TaskStart()
			fn(0, i)
			mon.TaskDone(t0)
		}
	} else {
		queue := make(chan int, n)
		for i := 0; i < n; i++ {
			queue <- i
		}
		close(queue)
		var wg sync.WaitGroup
		for slot := 0; slot < workers; slot++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				for i := range queue {
					mon.Depth(len(queue))
					t0 := mon.TaskStart()
					fn(slot, i)
					mon.TaskDone(t0)
				}
			}(slot)
		}
		wg.Wait()
	}
	mon.Publish()
}

// PoolMonitor publishes the worker-pool gauges RunPool documents —
// <prefix>.workers, <prefix>.queue_depth, <prefix>.occupancy_pct — for
// any pool shape, including long-lived pools (the fleet event loop)
// whose workers outlive any single batch. It is a thin instrumentation
// seam: a nil registry yields nil gauges whose methods no-op, so the
// monitor costs two clock reads per task when metrics are off.
//
// Occupancy accumulates busy time from TaskDone and is published against
// wall time since construction by Publish; long-lived pools call
// Publish whenever a fresh reading should be visible (e.g. on each stats
// snapshot), one-shot pools once at the end.
type PoolMonitor struct {
	workers int
	start   time.Time
	busy    atomic.Int64
	depth   *Gauge
	occ     *Gauge
}

// NewPoolMonitor records the resolved worker count and starts the
// occupancy wall clock.
func NewPoolMonitor(reg *Registry, prefix string, workers int) *PoolMonitor {
	reg.Gauge(prefix + ".workers").Set(float64(workers))
	return &PoolMonitor{
		workers: workers,
		start:   time.Now(),
		depth:   reg.Gauge(prefix + ".queue_depth"),
		occ:     reg.Gauge(prefix + ".occupancy_pct"),
	}
}

// Depth records the current queued-task backlog.
func (m *PoolMonitor) Depth(n int) { m.depth.Set(float64(n)) }

// TaskStart marks the start of one task; pass the returned instant to
// TaskDone.
func (m *PoolMonitor) TaskStart() time.Time { return time.Now() }

// TaskDone accumulates the task's busy time.
func (m *PoolMonitor) TaskDone(t0 time.Time) { m.busy.Add(int64(time.Since(t0))) }

// Publish sets the occupancy gauge from busy time accumulated so far
// over wall time since construction.
func (m *PoolMonitor) Publish() {
	if wall := time.Since(m.start); wall > 0 {
		m.occ.Set(100 * float64(m.busy.Load()) / (float64(wall) * float64(m.workers)))
	}
}
