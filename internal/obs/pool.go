package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// RunPool executes n index-addressed tasks across at most workers
// goroutines fed from one shared work queue, blocking until every task has
// run. fn receives a stable worker-slot index in [0, workers) — usable for
// per-worker scratch state and progress attribution — and the task index
// in [0, n). Tasks are handed out in index order but may complete in any
// order; callers that need deterministic results must write them to
// task-indexed slots and reduce in index order afterwards.
//
// When reg is non-nil the pool records, under the given metric prefix:
//
//	<prefix>.workers        gauge: the resolved worker count
//	<prefix>.queue_depth    gauge: tasks still queued at each dequeue
//	<prefix>.occupancy_pct  gauge: busy time / (wall time × workers)
//
// A nil registry disables all of it at the usual zero cost. workers < 1 is
// treated as 1; workers above n are clamped to n.
func RunPool(reg *Registry, prefix string, workers, n int, fn func(slot, task int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	reg.Gauge(prefix + ".workers").Set(float64(workers))
	start := time.Now()
	var busy atomic.Int64
	if workers == 1 {
		for i := 0; i < n; i++ {
			t0 := time.Now()
			fn(0, i)
			busy.Add(int64(time.Since(t0)))
		}
	} else {
		queue := make(chan int, n)
		for i := 0; i < n; i++ {
			queue <- i
		}
		close(queue)
		depth := reg.Gauge(prefix + ".queue_depth")
		var wg sync.WaitGroup
		for slot := 0; slot < workers; slot++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				for i := range queue {
					depth.Set(float64(len(queue)))
					t0 := time.Now()
					fn(slot, i)
					busy.Add(int64(time.Since(t0)))
				}
			}(slot)
		}
		wg.Wait()
	}
	if wall := time.Since(start); wall > 0 && reg != nil {
		reg.Gauge(prefix + ".occupancy_pct").Set(
			100 * float64(busy.Load()) / (float64(wall) * float64(workers)))
	}
}
