// Package obs is the observability layer of the experiment engine: a
// dependency-free metrics registry (counters, gauges, and histogram
// timers with p50/p95/max), a Span/Tracer API for nested wall-clock
// attribution of chip → app → phase → solver work, and a live progress
// reporter for long multi-chip sweeps.
//
// The paper's evaluation fans 100 chips × 26 applications × several
// adaptation modes over a worker pool (§5); this package makes that
// engine legible — where the wall-clock goes, how busy the workers are,
// how controller invocations resolve — without perturbing the numbers
// it measures.
//
// # Disabled is free
//
// Every type is nil-receiver safe: a nil *Registry hands out nil
// *Counter/*Gauge/*Histogram values whose methods no-op, a nil *Tracer
// hands out nil *Span values, and a nil *Progress ignores updates. The
// disabled path performs no allocation and no time.Now call (verified
// by TestDisabledPathAllocFree and BenchmarkObsDisabled), so
// instrumented hot paths cost nothing when observability is off — the
// tier-1 benchmarks see the same code they saw before.
//
// Instrumentation sites therefore chain without guards,
//
//	defer reg.Timer("core.chip").Start().Stop()     // fine when reg == nil
//
// except where building the metric name itself allocates (fmt.Sprintf,
// string concatenation); those sites guard with an explicit nil check.
//
// # Outputs
//
// Registry.WriteSummary renders the aligned metrics footer the evalsim
// -metrics flag prints; Tracer.WriteChromeTrace emits the trace in the
// Chrome trace-event format (load into chrome://tracing or Perfetto).
package obs
