package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(4)
	if got := r.Counter("a").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Timer("h")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got, want := h.Sum(), 5050*time.Millisecond; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if got := h.Quantile(0.5); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", got)
	}
	if got := h.Quantile(0.95); got < 94*time.Millisecond || got > 97*time.Millisecond {
		t.Errorf("p95 = %v, want ~95ms", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", got)
	}
	if got := h.Quantile(0); got != 1*time.Millisecond {
		t.Errorf("p0 = %v, want 1ms", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("p1 = %v, want 100ms", got)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewRegistry().Timer("h")
	n := 3 * reservoirSize
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(i))
	}
	if got := h.Count(); got != int64(n) {
		t.Errorf("count = %d, want %d", got, n)
	}
	h.mu.Lock()
	retained := len(h.samples)
	h.mu.Unlock()
	if retained != reservoirSize {
		t.Errorf("retained %d samples, want %d", retained, reservoirSize)
	}
	// Exact stats survive the subsampling.
	if got := h.Max(); got != time.Duration(n-1) {
		t.Errorf("max = %v, want %v", got, time.Duration(n-1))
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(w))
				r.Timer("t").Observe(time.Duration(i))
				sw := r.Timer("sw").Start()
				sw.Stop()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Timer("t").Count(); got != workers*per {
		t.Errorf("timer count = %d, want %d", got, workers*per)
	}
	if got := r.Timer("sw").Count(); got != workers*per {
		t.Errorf("stopwatch count = %d, want %d", got, workers*per)
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	h := r.Timer("x")
	h.Observe(time.Second)
	if d := h.Start().Stop(); d != 0 {
		t.Error("nil stopwatch should measure 0")
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("nil histogram should read 0")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}

	var tr *Tracer
	sp := tr.Start("root")
	sp.Child("c").End()
	sp.End()
	if tr.Len() != 0 {
		t.Error("nil tracer should hold no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var p *Progress
	p.SetWorker(0, "x")
	p.Step(1)
	p.Stop()
}

// TestDisabledPathAllocFree is the zero-cost guarantee: every disabled
// instrumentation idiom used in the engine must not allocate.
func TestDisabledPathAllocFree(t *testing.T) {
	var r *Registry
	var tr *Tracer
	var p *Progress
	allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("adapt.outcome").Inc()
		r.Gauge("core.workers").Set(8)
		sw := r.Timer("core.chip").Start()
		sw.Stop()
		sp := tr.Start("chip")
		sp.Child("app").End()
		sp.End()
		p.Step(1)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f times per op, want 0", allocs)
	}
}

func TestSummaryRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("adapt.outcome.NoChange").Add(42)
	r.Gauge("core.worker.occupancy_pct").Set(87.5)
	r.Timer("core.chip").Observe(150 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter", "adapt.outcome.NoChange", "42",
		"gauge", "core.worker.occupancy_pct", "87.5",
		"timer", "core.chip", "n=1", "p50=150ms", "max=150ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTracerChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("chip 3")
	app := root.Child("app gcc")
	ph := app.Child("phase 0")
	time.Sleep(time.Millisecond)
	ph.End()
	app.End()
	root.End()
	other := tr.Start("chip 4")
	other.End()
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("%d events, want 4", len(events))
	}
	tids := map[string]float64{}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("event ph = %v, want X", e["ph"])
		}
		tids[e["name"].(string)] = e["tid"].(float64)
	}
	if tids["app gcc"] != tids["chip 3"] || tids["phase 0"] != tids["chip 3"] {
		t.Error("children should share the root's track")
	}
	if tids["chip 4"] == tids["chip 3"] {
		t.Error("separate roots should get separate tracks")
	}
}

// syncWriter lets the progress refresh goroutine and the test share a
// buffer safely.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestProgressRendering(t *testing.T) {
	w := &syncWriter{}
	p := NewProgress(w, "chips", 4, 2)
	p.SetWorker(0, "chip 1000")
	p.SetWorker(1, "chip 1001")
	p.Step(2)
	p.Stop()
	p.Stop() // idempotent
	out := w.String()
	if !strings.Contains(out, "chips 2/4") {
		t.Errorf("progress output missing completion state:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final render should end with newline:\n%q", out)
	}
}

// BenchmarkObsDisabled proves the disabled path is allocation-free and
// effectively instant: this is the exact idiom on the engine's hot
// paths when no -metrics flag is given.
func BenchmarkObsDisabled(b *testing.B) {
	var r *Registry
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := r.Timer("core.chip").Start()
		r.Counter("adapt.retune.cycles").Add(3)
		sp := tr.Start("chip")
		sp.End()
		sw.Stop()
	}
}

// BenchmarkObsEnabled is the paired cost of the live path.
func BenchmarkObsEnabled(b *testing.B) {
	r := NewRegistry()
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := r.Timer("core.chip").Start()
		r.Counter("adapt.retune.cycles").Add(3)
		sp := tr.Start("chip")
		sp.End()
		sw.Stop()
	}
}
