package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects finished spans. A nil *Tracer hands out nil *Span
// values, so tracing can be left wired into code paths and enabled only
// when an output sink exists.
type Tracer struct {
	t0      time.Time
	nextTID atomic.Int64

	mu    sync.Mutex
	spans []spanRecord
}

type spanRecord struct {
	Name  string
	TID   int64
	Start time.Duration // since tracer start
	Dur   time.Duration
}

// NewTracer returns an empty tracer; span timestamps are relative to
// this call.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now()}
}

// Span is one timed region. Spans on the same track (a root and its
// Child descendants) must nest; concurrent work should use separate
// roots, which get separate tracks.
type Span struct {
	t     *Tracer
	name  string
	tid   int64
	start time.Time
}

// Start opens a root span on a fresh track (e.g. one per worker or per
// chip). Returns nil on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: t.nextTID.Add(1), start: time.Now()}
}

// Child opens a nested span on the parent's track. Returns nil on a nil
// span.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return &Span{t: sp.t, name: name, tid: sp.tid, start: time.Now()}
}

// End closes the span and records it. No-op on a nil span.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	rec := spanRecord{
		Name:  sp.name,
		TID:   sp.tid,
		Start: sp.start.Sub(sp.t.t0),
		Dur:   time.Since(sp.start),
	}
	sp.t.mu.Lock()
	sp.t.spans = append(sp.t.spans, rec)
	sp.t.mu.Unlock()
}

// Len reports the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format; timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int64   `json:"tid"`
}

// WriteChromeTrace emits the spans as a Chrome trace-event JSON array,
// loadable in chrome://tracing or Perfetto. Each root span and its
// descendants share a tid, rendering as one nested track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	t.mu.Lock()
	events := make([]chromeEvent, len(t.spans))
	for i, sp := range t.spans {
		events[i] = chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start) / float64(time.Microsecond),
			Dur:  float64(sp.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  sp.TID,
		}
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
