package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunPoolRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 40
		var hits [n]atomic.Int32
		var mu sync.Mutex
		slots := map[int]bool{}
		RunPool(nil, "p", workers, n, func(slot, task int) {
			hits[task].Add(1)
			mu.Lock()
			slots[slot] = true
			mu.Unlock()
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
		// Slot indices must be stable and bounded by the clamped count.
		want := workers
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		for s := range slots {
			if s < 0 || s >= want {
				t.Fatalf("workers=%d: slot %d out of [0,%d)", workers, s, want)
			}
		}
	}
}

func TestRunPoolZeroTasks(t *testing.T) {
	RunPool(nil, "p", 4, 0, func(slot, task int) {
		t.Fatal("fn called for n=0")
	})
}

func TestRunPoolMetrics(t *testing.T) {
	reg := NewRegistry()
	RunPool(reg, "test.pool", 4, 10, func(slot, task int) {})
	if got := reg.Gauge("test.pool.workers").Value(); got != 4 {
		t.Errorf("workers gauge = %v, want 4", got)
	}
	occ := reg.Gauge("test.pool.occupancy_pct").Value()
	if occ < 0 || occ > 100 {
		t.Errorf("occupancy_pct = %v, want within [0,100]", occ)
	}
}

func TestRunPoolSerialPreservesOrder(t *testing.T) {
	var order []int
	RunPool(nil, "p", 1, 5, func(slot, task int) {
		if slot != 0 {
			t.Fatalf("serial path used slot %d", slot)
		}
		order = append(order, task)
	})
	for i, task := range order {
		if task != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}
