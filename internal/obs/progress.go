package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// progressWidth caps the rendered status line.
const progressWidth = 160

// Progress renders a live, single-line status of a worker-pool sweep:
// overall completion plus what each worker slot is doing. All methods
// are safe for concurrent use and no-op on a nil receiver.
type Progress struct {
	w     io.Writer
	label string
	total int64
	start time.Time

	done atomic.Int64

	mu      sync.Mutex
	workers []string
	lastLen int
	stopped bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewProgress starts a reporter writing to w (normally os.Stderr) every
// refresh interval until Stop. total is the number of work items; slots
// is the worker-pool size.
func NewProgress(w io.Writer, label string, total, slots int) *Progress {
	p := &Progress{
		w:       w,
		label:   label,
		total:   int64(total),
		start:   time.Now(),
		workers: make([]string, slots),
		stop:    make(chan struct{}),
	}
	for i := range p.workers {
		p.workers[i] = "idle"
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.render(false)
		case <-p.stop:
			return
		}
	}
}

// SetWorker publishes what worker slot is currently doing.
func (p *Progress) SetWorker(slot int, status string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if slot >= 0 && slot < len(p.workers) {
		p.workers[slot] = status
	}
	p.mu.Unlock()
}

// Step records n completed work items.
func (p *Progress) Step(n int) {
	if p == nil {
		return
	}
	p.done.Add(int64(n))
}

// Stop renders the final state and terminates the refresh goroutine.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	p.render(true)
}

// render paints the status line in place with a carriage return; the
// final render appends a newline so subsequent output starts clean.
func (p *Progress) render(final bool) {
	done := p.done.Load()
	elapsed := time.Since(p.start).Round(100 * time.Millisecond)
	p.mu.Lock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d/%d (%s)", p.label, done, p.total, elapsed)
	if !final {
		for i, st := range p.workers {
			fmt.Fprintf(&b, " w%d:%s", i, st)
		}
	}
	line := b.String()
	if len(line) > progressWidth {
		line = line[:progressWidth-1] + "…"
	}
	pad := p.lastLen - len(line)
	p.lastLen = len(line)
	p.mu.Unlock()
	if pad < 0 {
		pad = 0
	}
	tail := strings.Repeat(" ", pad)
	if final {
		fmt.Fprintf(p.w, "\r%s%s\n", line, tail)
	} else {
		fmt.Fprintf(p.w, "\r%s%s", line, tail)
	}
}
