package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. All methods are safe for concurrent use
// and safe on a nil receiver (returning nil metric handles whose methods
// no-op), so a disabled registry costs nothing on the hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter of that name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge of that name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) the histogram timer of that name.
func (r *Registry) Timer(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float value.
type Gauge struct{ bits atomic.Uint64 }

// Set records v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// reservoirSize bounds per-histogram memory; beyond it, reservoir
// sampling keeps a uniform subsample for the quantile estimates while
// count/sum/min/max stay exact.
const reservoirSize = 4096

// Histogram accumulates durations and reports count, total, min/max, and
// approximate quantiles.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration
	rng     uint64 // xorshift state for reservoir replacement
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, d)
		return
	}
	// xorshift64; seeded from the first overflow count, deterministic
	// for a deterministic insertion order.
	if h.rng == 0 {
		h.rng = uint64(h.count)*2685821657736338717 + 1
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % uint64(h.count); j < reservoirSize {
		h.samples[j] = d
	}
}

// Stopwatch times one interval against a histogram. The zero Stopwatch
// (from a nil histogram) is inert.
type Stopwatch struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing; Stop on the returned Stopwatch records the
// elapsed time. On a nil histogram no clock is read and nothing is
// recorded.
func (h *Histogram) Start() Stopwatch {
	if h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: h, t0: time.Now()}
}

// Stop records the elapsed time since Start and returns it.
func (sw Stopwatch) Stop() time.Duration {
	if sw.h == nil {
		return 0
	}
	d := time.Since(sw.t0)
	sw.h.Observe(d)
	return d
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total observed duration (0 on a nil histogram).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the p-quantile (p in [0,1]) of the retained samples,
// or 0 if the histogram is nil or empty.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	sorted := append([]time.Duration(nil), h.samples...)
	h.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(p*float64(len(sorted)-1)+0.5)]
}

// Merge folds src's observations into h. Count, sum, min, and max
// combine exactly; the quantile reservoir absorbs src's retained
// samples through the same replacement scheme as Observe, so a scratch
// histogram merged from per-worker shards reports quantiles over the
// union of their reservoirs. Safe for concurrent use; h and src must be
// distinct.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	src.mu.Lock()
	count, sum, lo, hi := src.count, src.sum, src.min, src.max
	samples := append([]time.Duration(nil), src.samples...)
	src.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 || lo < h.min {
		h.min = lo
	}
	if hi > h.max {
		h.max = hi
	}
	h.count += count
	h.sum += sum
	for _, d := range samples {
		if len(h.samples) < reservoirSize {
			h.samples = append(h.samples, d)
			continue
		}
		if h.rng == 0 {
			h.rng = uint64(h.count)*2685821657736338717 + 1
		}
		h.rng ^= h.rng << 13
		h.rng ^= h.rng >> 7
		h.rng ^= h.rng << 17
		if j := h.rng % uint64(h.count); j < reservoirSize {
			h.samples[j] = d
		}
	}
	h.mu.Unlock()
}

// Max returns the largest observation (exact, 0 if nil or empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Metric is one row of a registry snapshot.
type Metric struct {
	Kind string // "counter", "gauge", "timer"
	Name string
	// Count is the counter value or the timer observation count.
	Count int64
	// Value is the gauge value.
	Value float64
	// Sum, P50, P95, Max describe a timer.
	Sum, P50, P95, Max time.Duration
}

// Snapshot returns every metric, sorted by kind then name. Empty timers
// are included (count 0) so wiring mistakes are visible.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type namedHist struct {
		name string
		h    *Histogram
	}
	var ms []Metric
	var hs []namedHist
	for name, c := range r.counters {
		ms = append(ms, Metric{Kind: "counter", Name: name, Count: c.Value()})
	}
	for name, g := range r.gauges {
		ms = append(ms, Metric{Kind: "gauge", Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs = append(hs, namedHist{name, h})
	}
	r.mu.Unlock()
	// Histogram stats are read outside the registry lock (each histogram
	// has its own mutex; Quantile/Sum/etc. lock it).
	for _, nh := range hs {
		ms = append(ms, Metric{
			Kind:  "timer",
			Name:  nh.name,
			Count: nh.h.Count(),
			Sum:   nh.h.Sum(),
			P50:   nh.h.Quantile(0.50),
			P95:   nh.h.Quantile(0.95),
			Max:   nh.h.Max(),
		})
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Kind != ms[j].Kind {
			return ms[i].Kind < ms[j].Kind
		}
		return ms[i].Name < ms[j].Name
	})
	return ms
}

// WriteSummary renders the metrics footer: one aligned row per metric.
func (r *Registry) WriteSummary(w io.Writer) error {
	ms := r.Snapshot()
	if len(ms) == 0 {
		_, err := fmt.Fprintln(w, "-- metrics: none recorded --")
		return err
	}
	nameW := 0
	for _, m := range ms {
		if len(m.Name) > nameW {
			nameW = len(m.Name)
		}
	}
	if _, err := fmt.Fprintln(w, "-- metrics ----------------------------------------------------------"); err != nil {
		return err
	}
	for _, m := range ms {
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "counter  %-*s  %d\n", nameW, m.Name, m.Count)
		case "gauge":
			_, err = fmt.Fprintf(w, "gauge    %-*s  %.3g\n", nameW, m.Name, m.Value)
		case "timer":
			_, err = fmt.Fprintf(w, "timer    %-*s  n=%-7d total=%-10s p50=%-10s p95=%-10s max=%s\n",
				nameW, m.Name, m.Count, fmtDur(m.Sum), fmtDur(m.P50), fmtDur(m.P95), fmtDur(m.Max))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fmtDur rounds a duration to a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(time.Nanosecond).String()
	default:
		return d.String()
	}
}
