package power

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/varius"
)

func newModel(t *testing.T) (*Model, *floorplan.Floorplan, varius.Params) {
	t.Helper()
	vp := varius.DefaultParams()
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(fp, vp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m, fp, vp
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.PdynCoreNomW = 0 },
		func(p *Params) { p.PstaCoreNomW = -1 },
		func(p *Params) { p.AlphaScale = 0 },
		func(p *Params) { p.UncoreDynW = -0.1 },
	}
	for i, mutate := range bad {
		q := DefaultParams()
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCalibrationSumsToBudget(t *testing.T) {
	m, fp, vp := newModel(t)
	p := DefaultParams()
	// At each subsystem's typical activity, nominal Vdd, fRel=1, subsystem
	// dynamic power sums to the calibrated budget.
	var dyn float64
	for i, sub := range fp.Subsystems {
		dyn += m.Pdyn(i, sub.TypicalAlpha, vp.VddNomV, 1.0)
	}
	if math.Abs(dyn-p.PdynCoreNomW) > 1e-9 {
		t.Errorf("dynamic budget = %v, want %v", dyn, p.PdynCoreNomW)
	}
	// At nominal Vt and the design corner, static power sums to budget.
	var sta float64
	for i := range fp.Subsystems {
		sta += m.Psta(i, vp.VtNomOp(), vp.VddNomV, vp.TOpRefK)
	}
	if math.Abs(sta-p.PstaCoreNomW) > 1e-9 {
		t.Errorf("static budget = %v, want %v", sta, p.PstaCoreNomW)
	}
}

func TestPdynScalings(t *testing.T) {
	m, _, vp := newModel(t)
	base := m.Pdyn(0, 0.3, vp.VddNomV, 1.0)
	if m.AlphaRef(0) <= 0 {
		t.Fatal("AlphaRef must be positive")
	}
	// Linear in activity.
	if got := m.Pdyn(0, 0.6, vp.VddNomV, 1.0); math.Abs(got-2*base) > 1e-12 {
		t.Errorf("activity scaling: %v, want %v", got, 2*base)
	}
	// Linear in frequency.
	if got := m.Pdyn(0, 0.3, vp.VddNomV, 0.5); math.Abs(got-0.5*base) > 1e-12 {
		t.Errorf("frequency scaling: %v, want %v", got, 0.5*base)
	}
	// Quadratic in Vdd.
	if got := m.Pdyn(0, 0.3, 1.2*vp.VddNomV, 1.0); math.Abs(got-1.44*base) > 1e-12 {
		t.Errorf("Vdd scaling: %v, want %v", got, 1.44*base)
	}
}

func TestPstaTrends(t *testing.T) {
	m, _, vp := newModel(t)
	base := m.Psta(0, vp.VtNomOp(), vp.VddNomV, vp.TOpRefK)
	if base <= 0 {
		t.Fatal("static power must be positive")
	}
	// Lower Vt leaks more.
	if m.Psta(0, vp.VtNomOp()-0.05, vp.VddNomV, vp.TOpRefK) <= base {
		t.Error("lower Vt should leak more")
	}
	// Hotter leaks more.
	if m.Psta(0, vp.VtNomOp(), vp.VddNomV, vp.TOpRefK+15) <= base {
		t.Error("hotter should leak more")
	}
	// Higher Vdd leaks more.
	if m.Psta(0, vp.VtNomOp(), vp.VddNomV*1.2, vp.TOpRefK) <= base {
		t.Error("higher Vdd should leak more")
	}
}

func TestKdynProportionalToAreaDensity(t *testing.T) {
	m, fp, _ := newModel(t)
	// Ratio of Kdyn between two subsystems equals ratio of area*density.
	i, j := 0, 1
	wi := fp.Subsystems[i].AreaFrac * fp.Subsystems[i].DynDensity
	wj := fp.Subsystems[j].AreaFrac * fp.Subsystems[j].DynDensity
	if math.Abs(m.Kdyn(i)/m.Kdyn(j)-wi/wj) > 1e-9 {
		t.Errorf("Kdyn ratio %v, want %v", m.Kdyn(i)/m.Kdyn(j), wi/wj)
	}
	if m.Ksta(i) <= 0 || m.Kdyn(i) <= 0 {
		t.Error("calibrated constants must be positive")
	}
}

func TestUncore(t *testing.T) {
	m, _, vp := newModel(t)
	p := DefaultParams()
	u := m.Uncore(1.0, vp.TOpRefK)
	// At fRel=1 and the design corner the uncore consumes its full budget.
	if math.Abs(u-(p.UncoreDynW+p.UncoreStaW)) > 1e-9 {
		t.Errorf("uncore at nominal = %v, want %v", u, p.UncoreDynW+p.UncoreStaW)
	}
	// Slower and cooler means less.
	if m.Uncore(0.5, vp.TOpRefK-20) >= u {
		t.Error("uncore power should fall with f and T")
	}
}

func TestNewModelRejectsBadParams(t *testing.T) {
	vp := varius.DefaultParams()
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.AlphaScale = -1
	if _, err := NewModel(fp, vp, bad); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestNominalCorePowerNear25W(t *testing.T) {
	// The paper reports ~25 W average for NoVar (core + L1 + L2). With
	// each subsystem at its typical activity, nominal f and Vdd,
	// subsystems plus uncore should land in that neighborhood at a typical
	// operating temperature (below the design corner, so leakage is a bit
	// lower than its calibration point).
	m, fp, vp := newModel(t)
	tK := 65 + varius.CelsiusOffset
	total := m.Uncore(1.0, tK)
	for i, sub := range fp.Subsystems {
		vt := vp.VtAt(vp.VtMeanV, tK, vp.VddNomV, 0)
		total += m.Pdyn(i, sub.TypicalAlpha, vp.VddNomV, 1.0) + m.Psta(i, vt, vp.VddNomV, tK)
	}
	if total < 20 || total > 30 {
		t.Errorf("nominal core power = %.1f W, want ~25 W", total)
	}
}
