// Package power implements the per-subsystem power model of §4.1: dynamic
// power Pdyn = Kdyn * alpha_f * Vdd^2 * f (Eq. 7) and static power
// Psta = Ksta * Vdd * T^2 * exp(-q Vt / k T) (Eq. 8).
//
// The per-subsystem constants Kdyn and Ksta are what the paper's CAD tools
// would estimate from the number and type of devices in each subsystem; we
// calibrate them by apportioning the core's nominal dynamic and static
// power budgets across subsystems in proportion to area times power
// density, so that the no-variation core at nominal conditions consumes the
// paper's reported ~25 W (core + L1 + L2).
package power

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/varius"
)

// Params configures the calibration.
type Params struct {
	// PdynCoreNomW is the summed dynamic power of the 15 subsystems at
	// nominal voltage, nominal frequency, and reference activity.
	PdynCoreNomW float64
	// PstaCoreNomW is the summed subsystem leakage at the nominal
	// operating point (nominal Vt, Vdd, and the design-corner T).
	PstaCoreNomW float64
	// AlphaScale globally scales the per-subsystem typical activity
	// factors (floorplan.Subsystem.TypicalAlpha) at which PdynCoreNomW is
	// defined; 1.0 anchors the budget at suite-typical behavior.
	AlphaScale float64
	// UncoreDynW and UncoreStaW model the private L2 and the uninstrumented
	// remainder of the core, which are not in any ASV/ABB domain: their
	// dynamic part scales with core frequency, their static part with the
	// heat-sink temperature's leakage factor.
	UncoreDynW float64
	UncoreStaW float64
}

// DefaultParams returns the calibration that reproduces the paper's power
// figures (NoVar ~25 W average, PMAX = 30 W per processor).
func DefaultParams() Params {
	return Params{
		PdynCoreNomW: 15.0,
		PstaCoreNomW: 4.5,
		AlphaScale:   1.0,
		UncoreDynW:   2.5,
		UncoreStaW:   1.0,
	}
}

// Validate checks calibration sanity.
func (p Params) Validate() error {
	if p.PdynCoreNomW <= 0 || p.PstaCoreNomW <= 0 {
		return fmt.Errorf("power: core budgets must be positive, got %g/%g",
			p.PdynCoreNomW, p.PstaCoreNomW)
	}
	if p.AlphaScale <= 0 {
		return fmt.Errorf("power: AlphaScale must be positive, got %g", p.AlphaScale)
	}
	if p.UncoreDynW < 0 || p.UncoreStaW < 0 {
		return fmt.Errorf("power: uncore budgets must be non-negative")
	}
	return nil
}

// Model evaluates subsystem power. Voltages are in volts, temperatures in
// kelvin, frequencies relative to nominal, powers in watts.
type Model struct {
	params Params
	vp     varius.Params
	// kdyn[i]: watts at the subsystem's typical activity, nominal Vdd,
	// fRel = 1. ksta[i]: watts at the nominal leakage operating point.
	kdyn, ksta []float64
	// alphaRef[i] is the activity at which kdyn[i] is anchored.
	alphaRef []float64
	// leakRef caches varius.Params.LeakageRef() — the constant Eq. 2
	// normalization — so every Psta call saves an Exp (bit-identical; see
	// LeakageFactorRef). vtNomOp caches the matching nominal Vt.
	leakRef, vtNomOp float64
}

// NewModel calibrates a power model for the floorplan.
func NewModel(fp *floorplan.Floorplan, vp varius.Params, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var wDyn, wSta float64
	for _, s := range fp.Subsystems {
		wDyn += s.AreaFrac * s.DynDensity
		wSta += s.AreaFrac * s.StaDensity
	}
	if wDyn <= 0 || wSta <= 0 {
		return nil, fmt.Errorf("power: floorplan has zero power-density weight")
	}
	m := &Model{
		params:   p,
		vp:       vp,
		kdyn:     make([]float64, fp.N()),
		ksta:     make([]float64, fp.N()),
		alphaRef: make([]float64, fp.N()),
		leakRef:  vp.LeakageRef(),
		vtNomOp:  vp.VtNomOp(),
	}
	for i, s := range fp.Subsystems {
		if s.TypicalAlpha <= 0 {
			return nil, fmt.Errorf("power: subsystem %v has no typical activity", s.ID)
		}
		m.kdyn[i] = p.PdynCoreNomW * s.AreaFrac * s.DynDensity / wDyn
		m.ksta[i] = p.PstaCoreNomW * s.AreaFrac * s.StaDensity / wSta
		m.alphaRef[i] = s.TypicalAlpha * p.AlphaScale
	}
	return m, nil
}

// Params returns the model's calibration parameters.
func (m *Model) Params() Params { return m.params }

// Kdyn returns subsystem i's calibrated dynamic-power constant (W at
// its typical activity, nominal Vdd, nominal f).
func (m *Model) Kdyn(i int) float64 { return m.kdyn[i] }

// AlphaRef returns the activity at which subsystem i's Kdyn is anchored.
func (m *Model) AlphaRef(i int) float64 { return m.alphaRef[i] }

// Ksta returns subsystem i's calibrated static-power constant (W at the
// nominal leakage point).
func (m *Model) Ksta(i int) float64 { return m.ksta[i] }

// Pdyn evaluates Eq. 7 for subsystem i: activity alphaF (accesses/cycle),
// supply vddV, relative frequency fRel.
func (m *Model) Pdyn(i int, alphaF, vddV, fRel float64) float64 {
	r := vddV / m.vp.VddNomV
	return m.kdyn[i] * (alphaF / m.alphaRef[i]) * r * r * fRel
}

// Psta evaluates Eq. 8 for subsystem i at operating threshold voltage vt
// (already adjusted for T, Vdd, Vbb via Eq. 9), supply vddV, and
// temperature tK.
func (m *Model) Psta(i int, vt, vddV, tK float64) float64 {
	return m.ksta[i] * m.vp.LeakageFactorRef(vt, vddV, tK, m.leakRef)
}

// Uncore returns the power of the L2 and the uninstrumented core remainder
// at relative frequency fRel and heat-sink temperature thK. These blocks
// stay at nominal supply and nominal Vt.
func (m *Model) Uncore(fRel, thK float64) float64 {
	return m.params.UncoreDynW*fRel +
		m.params.UncoreStaW*m.vp.LeakageFactorRef(m.vtNomOp, m.vp.VddNomV, thK, m.leakRef)
}
