package sensors

import (
	"fmt"

	"repro/internal/mathx"
)

// Quantizer rounds a physical reading to a sensor's step size and adds
// bounded measurement noise.
type Quantizer struct {
	// Step is the sensor's quantization step (e.g. 0.5 K, 0.25 W).
	Step float64
	// Noise is the uniform measurement-error half-width (same units).
	Noise float64
}

// Validate checks the quantizer.
func (q Quantizer) Validate() error {
	if q.Step < 0 || q.Noise < 0 {
		return fmt.Errorf("sensors: negative step/noise %+v", q)
	}
	return nil
}

// Read converts a true value into a sensor reading.
func (q Quantizer) Read(trueVal float64, rng *mathx.RNG) float64 {
	v := trueVal
	if q.Noise > 0 && rng != nil {
		v += rng.Uniform(-q.Noise, q.Noise)
	}
	if q.Step > 0 {
		steps := v / q.Step
		v = q.Step * float64(int64(steps+0.5*sign(steps)))
	}
	return v
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// THSensor is the single heat-sink temperature sensor (§4.1: the heat
// sink's thermal time constant is tens of seconds, so it is measured every
// few seconds).
type THSensor struct {
	Quantizer
	// PeriodS is the refresh period.
	PeriodS float64

	lastReadS float64
	lastValue float64
	primed    bool
}

// NewTHSensor returns the default heat-sink sensor: 0.5 K steps, ±0.25 K
// noise, 2.5 s refresh.
func NewTHSensor() *THSensor {
	return &THSensor{
		Quantizer: Quantizer{Step: 0.5, Noise: 0.25},
		PeriodS:   2.5,
	}
}

// Sample returns the sensor's reading at time nowS given the true heat-sink
// temperature: a stale value until the next refresh boundary.
func (s *THSensor) Sample(nowS, trueK float64, rng *mathx.RNG) float64 {
	if !s.primed || nowS-s.lastReadS >= s.PeriodS {
		s.lastValue = s.Read(trueK, rng)
		s.lastReadS = nowS
		s.primed = true
	}
	return s.lastValue
}

// Staleness returns how old the current reading is at nowS.
func (s *THSensor) Staleness(nowS float64) float64 {
	if !s.primed {
		return 0
	}
	return nowS - s.lastReadS
}

// ThresholdSensor flags when a quantity exceeds a limit — the per-subsystem
// overheat detectors and the core power sensor of §4.3.2. Hysteresis keeps
// the flag from chattering at the boundary.
type ThresholdSensor struct {
	Quantizer
	// Limit is the trip point; HysteresisDown is how far below the limit
	// the reading must fall before the flag clears.
	Limit          float64
	HysteresisDown float64

	tripped bool
}

// NewOverheatSensor returns a per-subsystem thermal trip sensor.
func NewOverheatSensor(limitK float64) *ThresholdSensor {
	return &ThresholdSensor{
		Quantizer:      Quantizer{Step: 0.5, Noise: 0.25},
		Limit:          limitK,
		HysteresisDown: 1.0,
	}
}

// NewPowerSensor returns the core-wide power overrun sensor.
func NewPowerSensor(limitW float64) *ThresholdSensor {
	return &ThresholdSensor{
		Quantizer:      Quantizer{Step: 0.25, Noise: 0.1},
		Limit:          limitW,
		HysteresisDown: 0.5,
	}
}

// Observe feeds one true value and returns whether the sensor currently
// flags a violation.
func (s *ThresholdSensor) Observe(trueVal float64, rng *mathx.RNG) bool {
	v := s.Read(trueVal, rng)
	switch {
	case s.tripped && v < s.Limit-s.HysteresisDown:
		s.tripped = false
	case !s.tripped && v > s.Limit:
		s.tripped = true
	}
	return s.tripped
}

// Tripped returns the current flag without a new observation.
func (s *ThresholdSensor) Tripped() bool { return s.tripped }

// Reset clears the flag (done when a new configuration is applied).
func (s *ThresholdSensor) Reset() { s.tripped = false }

// Suite bundles the §4.3.2 sensor set for one core.
type Suite struct {
	TH        *THSensor
	Subsystem []*ThresholdSensor // overheat detectors, one per subsystem
	Power     *ThresholdSensor
}

// NewSuite builds the default sensor suite for n subsystems with the
// Figure 7(a) limits.
func NewSuite(n int, tmaxK, pmaxW float64) (*Suite, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sensors: need at least one subsystem, got %d", n)
	}
	if tmaxK <= 0 || pmaxW <= 0 {
		return nil, fmt.Errorf("sensors: non-positive limits %g/%g", tmaxK, pmaxW)
	}
	s := &Suite{TH: NewTHSensor(), Power: NewPowerSensor(pmaxW)}
	for i := 0; i < n; i++ {
		s.Subsystem = append(s.Subsystem, NewOverheatSensor(tmaxK))
	}
	return s, nil
}

// AnyOverheat reports whether any per-subsystem sensor is tripped.
func (s *Suite) AnyOverheat() bool {
	for _, sub := range s.Subsystem {
		if sub.Tripped() {
			return true
		}
	}
	return false
}

// ResetAll clears every trip flag.
func (s *Suite) ResetAll() {
	for _, sub := range s.Subsystem {
		sub.Reset()
	}
	s.Power.Reset()
}
