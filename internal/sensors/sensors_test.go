package sensors

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestQuantizerValidate(t *testing.T) {
	if err := (Quantizer{Step: 0.5, Noise: 0.25}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Quantizer{Step: -1}).Validate(); err == nil {
		t.Error("negative step should be rejected")
	}
}

func TestQuantizerNoiselessRounding(t *testing.T) {
	q := Quantizer{Step: 0.5}
	cases := []struct{ in, want float64 }{
		{330.0, 330.0}, {330.2, 330.0}, {330.3, 330.5}, {330.74, 330.5},
		{-1.2, -1.0}, {-1.3, -1.5},
	}
	for _, c := range cases {
		if got := q.Read(c.in, nil); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Read(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Zero step = pass-through.
	free := Quantizer{}
	if free.Read(123.456, nil) != 123.456 {
		t.Error("zero-step quantizer must pass through")
	}
}

func TestQuantizerErrorBoundProperty(t *testing.T) {
	rng := mathx.NewRNG(1)
	q := Quantizer{Step: 0.5, Noise: 0.25}
	f := func(raw int16) bool {
		v := float64(raw) / 100
		got := q.Read(v, rng)
		// Error bounded by noise + half a step.
		return math.Abs(got-v) <= 0.25+0.25+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTHSensorRefreshPeriod(t *testing.T) {
	s := NewTHSensor()
	rng := mathx.NewRNG(2)
	r0 := s.Sample(0, 330, rng)
	// Within the period the reading is stale even if the truth moves.
	r1 := s.Sample(1.0, 340, rng)
	if r1 != r0 {
		t.Errorf("reading refreshed early: %v -> %v", r0, r1)
	}
	if s.Staleness(1.0) != 1.0 {
		t.Errorf("staleness = %v, want 1.0", s.Staleness(1.0))
	}
	// Past the period it refreshes.
	r2 := s.Sample(2.6, 340, rng)
	if math.Abs(r2-340) > 1.0 {
		t.Errorf("refreshed reading %v far from truth 340", r2)
	}
}

func TestThresholdSensorHysteresis(t *testing.T) {
	s := &ThresholdSensor{Limit: 100, HysteresisDown: 2}
	if s.Observe(99, nil) {
		t.Error("below limit should not trip")
	}
	if !s.Observe(101, nil) {
		t.Error("above limit should trip")
	}
	// Just below the limit but inside the hysteresis band: stays tripped.
	if !s.Observe(99, nil) {
		t.Error("hysteresis band should hold the flag")
	}
	if s.Observe(97, nil) {
		t.Error("below the band should clear")
	}
	if !s.Observe(101, nil) || !s.Tripped() {
		t.Error("re-trip failed")
	}
	s.Reset()
	if s.Tripped() {
		t.Error("Reset did not clear")
	}
}

func TestSuite(t *testing.T) {
	su, err := NewSuite(15, 85+273.15, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(su.Subsystem) != 15 {
		t.Fatalf("%d subsystem sensors", len(su.Subsystem))
	}
	if su.AnyOverheat() {
		t.Error("fresh suite should be clear")
	}
	su.Subsystem[3].Observe(90+273.15, nil)
	if !su.AnyOverheat() {
		t.Error("overheat not detected")
	}
	su.Power.Observe(31, nil)
	if !su.Power.Tripped() {
		t.Error("power overrun not detected")
	}
	su.ResetAll()
	if su.AnyOverheat() || su.Power.Tripped() {
		t.Error("ResetAll did not clear")
	}
}

func TestSuiteValidation(t *testing.T) {
	if _, err := NewSuite(0, 358, 30); err == nil {
		t.Error("zero subsystems should error")
	}
	if _, err := NewSuite(15, -1, 30); err == nil {
		t.Error("negative limit should error")
	}
	if _, err := NewSuite(15, 358, 0); err == nil {
		t.Error("zero power limit should error")
	}
}

func TestDefaultSensorsReasonable(t *testing.T) {
	th := NewTHSensor()
	if th.PeriodS < 2 || th.PeriodS > 3 {
		t.Errorf("TH refresh period %v outside the paper's 2-3 s", th.PeriodS)
	}
	oh := NewOverheatSensor(85 + 273.15)
	if oh.Limit != 85+273.15 {
		t.Error("overheat limit wrong")
	}
	ps := NewPowerSensor(30)
	if ps.Limit != 30 {
		t.Error("power limit wrong")
	}
}
