// Package sensors models the measurement infrastructure of §4.3.2 of the
// EVAL paper: a heat-sink temperature sensor (refreshed every 2-3 s),
// per-subsystem thermal sensors that flag overheating, a core-wide power
// sensor, and the checker's error counter. Real sensors quantize and
// lag; this package makes those imperfections explicit so the controller
// sees what hardware would deliver, not the simulator's exact state.
//
// The pieces map to the paper's monitoring hardware:
//
//   - Quantizer: additive noise plus step quantization, shared by every
//     sensor model.
//   - THSensor: the slow heat-sink temperature sensor whose 2-3 s
//     refresh period sets the outer loop of AdaptSteady (§4.1 notes the
//     heat-sink time constant is tens of seconds) and whose staleness
//     the Figure 6 timeline tracks.
//   - ThresholdSensor: the overheat (TMAX) and power (PMAX) trip
//     sensors with hysteresis, which convert continuous state into the
//     violation bits that retuning cycles react to (§4.3.3).
//
// internal/timeline consumes these models to reproduce Figure 6;
// internal/adapt's constraint checks represent the same limits the trip
// sensors enforce in hardware.
package sensors
