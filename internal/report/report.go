package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of formatted values: strings pass through, float64
// render with prec decimals, ints in base 10.
func (t *Table) AddRowF(prec int, cells ...interface{}) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			out = append(out, v)
		case float64:
			out = append(out, strconv.FormatFloat(v, 'f', prec, 64))
		case int:
			out = append(out, strconv.Itoa(v))
		case int64:
			out = append(out, strconv.FormatInt(v, 10))
		case fmt.Stringer:
			out = append(out, v.String())
		default:
			out = append(out, fmt.Sprint(v))
		}
	}
	t.AddRow(out...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		if _, err := fmt.Fprintln(w, t.title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (title as a comment line).
func (t *Table) WriteCSV(w io.Writer) error {
	if t.title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(quoteAll(t.headers), ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(quoteAll(row), ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// quoteAll CSV-escapes cells that need it.
func quoteAll(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			out[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		} else {
			out[i] = c
		}
	}
	return out
}

// Series is an (x, y...) sample sequence for figure CSV export.
type Series struct {
	Name    string
	Columns []string
	Points  [][]float64
}

// NewSeries creates a named series with the given column labels (the first
// is the x axis).
func NewSeries(name string, columns ...string) *Series {
	return &Series{Name: name, Columns: columns}
}

// Add appends one sample; the value count must match the columns.
func (s *Series) Add(values ...float64) error {
	if len(values) != len(s.Columns) {
		return fmt.Errorf("report: series %q: %d values for %d columns",
			s.Name, len(values), len(s.Columns))
	}
	s.Points = append(s.Points, values)
	return nil
}

// WriteCSV emits the series with a comment header.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(s.Columns, ",")); err != nil {
		return err
	}
	for _, p := range s.Points {
		cells := make([]string, len(p))
		for i, v := range p {
			cells[i] = strconv.FormatFloat(v, 'g', 6, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
