package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Title", "env", "frel", "power")
	tb.AddRow("TS", "0.93", "20.1")
	tb.AddRow("TS+ASV", "1.15", "26.2")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "env") || !strings.Contains(lines[1], "frel") {
		t.Errorf("header line = %q", lines[1])
	}
	// Columns align: "frel" and "0.93" start at the same offset.
	if strings.Index(lines[1], "frel") != strings.Index(lines[2], "0.93") {
		t.Error("columns not aligned")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# T\n") {
		t.Error("missing title comment")
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Error("comma cell not quoted")
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Error("quote cell not escaped")
	}
}

func TestTableAddRowF(t *testing.T) {
	tb := NewTable("", "name", "v", "n")
	tb.AddRowF(3, "x", 1.23456, 42)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1.235") || !strings.Contains(sb.String(), "42") {
		t.Errorf("formatted row wrong:\n%s", sb.String())
	}
}

func TestTableRowWidthNormalization(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")    // short row: padded
	tb.AddRow("x", "y", "z") // long row: truncated
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "z") {
		t.Error("overflow cell should be dropped")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Figure X", "f", "pe")
	if err := s.Add(1.0, 1e-5); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1.1); err == nil {
		t.Error("wrong arity should error")
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Figure X") || !strings.Contains(out, "f,pe") ||
		!strings.Contains(out, "1,1e-05") {
		t.Errorf("series CSV wrong:\n%s", out)
	}
}
