// Package report renders experiment results as aligned text tables or
// CSV, so every command-line tool and example prints the paper's rows
// and series uniformly.
//
// Two shapes cover the evaluation's outputs:
//
//   - Table: titled, column-aligned text (WriteText) or quoted CSV
//     (WriteCSV) for the discrete artifacts — Table 2 accuracy rows,
//     Figure 7(d) area budgets, the ablation sweeps.
//   - Series: named (x, y) columns for the continuous figures — the
//     path-delay densities of Figure 1, the Perf(f)/PE(f) curves of
//     Figures 2 and 8 — in a form gnuplot or a spreadsheet ingests
//     directly.
//
// The package is intentionally dumb: no number formatting beyond
// fmt-style precision (AddRowF), no layout state shared between tables,
// no knowledge of what an experiment is. Observability output (the
// evalsim -metrics footer) deliberately does not use this package, so
// internal/obs stays dependency-free.
package report
