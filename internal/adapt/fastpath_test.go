package adapt

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/vats"
)

// equivalenceQueries spans the solver input space, including the edge
// cases: idle stages (rho ≈ 0), heat sink at the cap, device temperatures
// beyond the PE-table grid, the LowSlope (Tilt) and 3/4-queue (Shift)
// variants, and saturated activity.
func equivalenceQueries() []FreqQuery {
	identity := vats.IdentityVariant()
	shift := tech.QueueThreeQuarter.Variant()
	tilt := tech.FULowSlope.Variant()
	var out []FreqQuery
	for _, th := range []float64{45 + 273.15, 62 + 273.15, 70 + 273.15, 96 + 273.15} {
		for _, alpha := range []float64{0.005, 0.3, 1.0} {
			for _, rho := range []float64{0, 0.4, 3.5} {
				out = append(out, FreqQuery{THK: th, AlphaF: alpha, Rho: rho,
					Variant: identity, PowerMult: 1})
			}
			out = append(out,
				FreqQuery{THK: th, AlphaF: alpha, Rho: alpha * 1.7,
					Variant: shift, PowerMult: tech.QueueSmallFrac + 0.05},
				FreqQuery{THK: th, AlphaF: alpha, Rho: alpha * 1.7,
					Variant: tilt, PowerMult: tech.LowSlopePowerMult})
		}
	}
	return out
}

// TestFastPathEquivalence is the golden equivalence check of the fast
// adaptation engine: with pruning, memoization, and the dense PE tables
// on, FreqSolve and PowerSolve must return results identical to the
// reference exhaustive scan (DisablePruning). Queries are solved twice on
// the fast core — the second pass exercises the memo path.
func TestFastPathEquivalence(t *testing.T) {
	for _, cfg := range []tech.Config{tsConfig, asvConfig, preferred, allConfig} {
		fast := buildCore(t, 7, cfg)
		ref := buildCore(t, 7, cfg)
		ref.DisablePruning = true
		queries := equivalenceQueries()
		for pass := 0; pass < 2; pass++ {
			for qi, q := range queries {
				for _, i := range []int{0, 3, 8, fast.N() - 1} {
					fr := fast.FreqSolve(i, q)
					rr := ref.FreqSolve(i, q)
					if fr != rr {
						t.Fatalf("cfg %+v pass %d query %d sub %d: FreqSolve fast %+v != ref %+v",
							cfg, pass, qi, i, fr, rr)
					}
					fCore := tech.SnapFRelDown(math.Max(rr.FMax*0.9, tech.FRelMin))
					fp := fast.PowerSolve(i, fCore, q)
					rp := ref.PowerSolve(i, fCore, q)
					if fp.VddV != rp.VddV || fp.VbbV != rp.VbbV || fp.Feasible != rp.Feasible {
						t.Fatalf("cfg %+v pass %d query %d sub %d: PowerSolve fast (%g,%g,%v) != ref (%g,%g,%v)",
							cfg, pass, qi, i, fp.VddV, fp.VbbV, fp.Feasible, rp.VddV, rp.VbbV, rp.Feasible)
					}
					if fp.State != rp.State {
						t.Fatalf("cfg %+v pass %d query %d sub %d: PowerSolve states differ", cfg, pass, qi, i)
					}
				}
			}
		}
	}
}

// TestFastPathEquivalenceOffGrid drives FreqSolveAt with level lists off
// the Figure 7(a) grids (a VddNom ablation and a synthetic variant), which
// must take the overflow-table path and still match the reference scan.
func TestFastPathEquivalenceOffGrid(t *testing.T) {
	fast := buildCore(t, 9, allConfig)
	ref := buildCore(t, 9, allConfig)
	ref.DisablePruning = true
	vdds := []float64{0.97}          // off-grid supply
	vbbs := []float64{-0.125, 0.06}  // off-grid biases
	exotic := vats.ShiftVariant(0.9) // not a §3.3 variant
	for _, q := range []FreqQuery{
		{THK: 60 + 273.15, AlphaF: 0.4, Rho: 0.8, Variant: exotic, PowerMult: 1},
		{THK: 70 + 273.15, AlphaF: 1.0, Rho: 2.0, Variant: vats.IdentityVariant(), PowerMult: 1},
	} {
		for _, i := range []int{0, 5} {
			fr := fast.FreqSolveAt(i, q, vdds, vbbs)
			rr := ref.FreqSolveAt(i, q, vdds, vbbs)
			if fr != rr {
				t.Fatalf("query %+v sub %d: FreqSolveAt fast %+v != ref %+v", q, i, fr, rr)
			}
		}
	}
}

// TestSharePETables checks donor validation and that a sharing core
// produces the same solutions as a self-sufficient one.
func TestSharePETables(t *testing.T) {
	donor := buildCore(t, 11, asvConfig)
	sharer := buildCore(t, 11, allConfig)
	// Both cores model the same chip but were assembled independently, so
	// their Stage pointers differ and sharing must be refused.
	if err := sharer.SharePETables(donor); err == nil {
		t.Fatal("SharePETables accepted cores with different stage models")
	}
	// Rebuild the sharer on the donor's assembly, the way core.runChip
	// shares one build across environments.
	rebuilt, err := NewCore(donor.Subs, donor.Power, donor.Thermal,
		donor.Checker, allConfig, donor.Limits)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.SharePETables(donor); err != nil {
		t.Fatal(err)
	}
	solo := buildCore(t, 11, allConfig)
	q := FreqQuery{THK: 62 + 273.15, AlphaF: 0.6, Rho: 1.1,
		Variant: vats.IdentityVariant(), PowerMult: 1}
	// Warm the donor first so the sharer hits donor-built tables.
	donor.FreqSolve(2, q)
	if got, want := rebuilt.FreqSolve(2, q), solo.FreqSolve(2, q); got != want {
		t.Fatalf("shared-table solve %+v != solo %+v", got, want)
	}
	if err := sharer.SharePETables(nil); err == nil {
		t.Fatal("SharePETables accepted a nil donor")
	}
}

// TestFreqSolvePrunes asserts the bound actually fires: an ALL-config
// solve over the 9×21 grid must skip a substantial share of combos.
func TestFreqSolvePrunes(t *testing.T) {
	core := buildCore(t, 4, allConfig)
	core.Obs = obs.NewRegistry()
	q := FreqQuery{THK: 62 + 273.15, AlphaF: 0.6, Rho: 1.2,
		Variant: vats.IdentityVariant(), PowerMult: 1}
	core.FreqSolve(3, q)
	pruned := core.Obs.Counter("adapt.freq.pruned_combos").Value()
	total := int64(tech.NumVddLevels * tech.NumVbbLevels)
	if pruned == 0 || pruned >= total {
		t.Fatalf("pruned %d of %d combos; expected 0 < pruned < total", pruned, total)
	}
}
