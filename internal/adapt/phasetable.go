package adapt

import (
	"fmt"
	"sync"
)

// PhaseTable is the controller system's memory of adapted phases
// (§4.3.3): "If this phase has been seen before, a saved configuration is
// reused; otherwise, the controller attempts to find a good configuration."
// Entries also remember the outcome statistics that Figure 13 aggregates.
//
// The table is safe for concurrent use (the interrupt handler and the
// sensor paths both touch it).
type PhaseTable struct {
	mu      sync.RWMutex
	entries map[int]*PhaseEntry
	// capacity bounds the table; 0 = unbounded. Real implementations keep
	// a small table and evict least-recently-used phases.
	capacity int
	order    []int // insertion/use order for eviction
}

// PhaseEntry is one remembered phase.
type PhaseEntry struct {
	PhaseID int
	Point   OperatingPoint
	Outcome Outcome
	// Uses counts reuses since adaptation.
	Uses int
}

// NewPhaseTable creates a table bounded to capacity phases (0 = unbounded).
func NewPhaseTable(capacity int) *PhaseTable {
	return &PhaseTable{entries: make(map[int]*PhaseEntry), capacity: capacity}
}

// Save stores (or replaces) a phase's adapted configuration.
func (t *PhaseTable) Save(phaseID int, point OperatingPoint, outcome Outcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[phaseID]; !ok {
		t.order = append(t.order, phaseID)
		if t.capacity > 0 && len(t.order) > t.capacity {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.entries, evict)
		}
	}
	t.entries[phaseID] = &PhaseEntry{
		PhaseID: phaseID,
		Point:   point.Clone(),
		Outcome: outcome,
	}
}

// Lookup returns the saved configuration of a phase, if any, counting the
// reuse.
func (t *PhaseTable) Lookup(phaseID int) (OperatingPoint, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[phaseID]
	if !ok {
		return OperatingPoint{}, false
	}
	e.Uses++
	return e.Point.Clone(), true
}

// Len returns the number of remembered phases.
func (t *PhaseTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Entry returns a copy of a phase's entry for inspection.
func (t *PhaseTable) Entry(phaseID int) (PhaseEntry, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[phaseID]
	if !ok {
		return PhaseEntry{}, fmt.Errorf("adapt: phase %d not in table", phaseID)
	}
	cp := *e
	cp.Point = e.Point.Clone()
	return cp, nil
}

// OutcomeHistogram counts saved-phase outcomes (the Figure 13 inputs for
// this chip's lifetime).
func (t *PhaseTable) OutcomeHistogram() [NumOutcomes]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var h [NumOutcomes]int
	for _, e := range t.entries {
		if e.Outcome >= 0 && e.Outcome < NumOutcomes {
			h[e.Outcome]++
		}
	}
	return h
}
