package adapt

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/vats"
)

// TestDenseColumnsMatchReferenceBuilder is the equivalence check of the
// batched PE-table path: every budget column the slab/lazy dense builders
// produced (shared curve scratch, joint FMaxForPESet bisection) must be
// bit-identical to buildTable's independent per-budget bisections over a
// freshly frozen curve. Slots are decoded straight from the export, so the
// check covers exactly what real solves built.
func TestDenseColumnsMatchReferenceBuilder(t *testing.T) {
	core := buildCore(t, 13, allConfig)
	queries := []FreqQuery{
		{THK: thTest, AlphaF: 0.5, Rho: 1.0, Variant: vats.IdentityVariant(), PowerMult: 1},
		{THK: 72 + 273.15, AlphaF: 0.9, Rho: 0.3,
			Variant: tech.QueueThreeQuarter.Variant(), PowerMult: tech.QueueSmallFrac + 0.05},
		{THK: 50 + 273.15, AlphaF: 0.2, Rho: 2.0,
			Variant: tech.FULowSlope.Variant(), PowerMult: tech.LowSlopePowerMult},
	}
	for _, q := range queries {
		for _, i := range []int{0, core.N() - 1} {
			core.FreqSolve(i, q)
		}
	}
	tabs := core.ExportPETables()
	if len(tabs) == 0 {
		t.Fatal("no dense tables built by the solve sweep")
	}
	vdds := allConfig.VddLevels(nominalVdd)
	vbbs := allConfig.VbbLevels()
	variants := [peNumVariants]vats.Variant{
		vats.IdentityVariant(), tech.QueueThreeQuarter.Variant(), tech.FULowSlope.Variant()}
	// buildTable re-runs the full per-budget bisections, so verify a
	// deterministic sample of slots rather than every one.
	const stride = 5
	checked := 0
	for si, tb := range tabs {
		if si%stride != 0 {
			continue
		}
		slot := tb.Slot
		tIdx := slot % len(peTempsC)
		rest := slot / len(peTempsC)
		bi := rest % tech.NumVbbLevels
		rest /= tech.NumVbbLevels
		di := rest % tech.NumVddLevels
		rest /= tech.NumVddLevels
		vi := rest % peNumVariants
		sub := rest / peNumVariants
		var ref peTable
		core.buildTable(&ref, sub, variants[vi], vdds[di], vbbs[bi], tIdx)
		for b := range peBudgets {
			if tb.Mask>>b&1 == 0 {
				continue
			}
			if tb.FMax[b] != ref.fmax[b] {
				t.Fatalf("slot %d (sub %d variant %d vdd %g vbb %g tIdx %d) column %d: "+
					"batched %v != reference %v",
					slot, sub, vi, vdds[di], vbbs[bi], tIdx, b, tb.FMax[b], ref.fmax[b])
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d columns verified; the sweep built too little", checked)
	}
}
