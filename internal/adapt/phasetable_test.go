package adapt

import (
	"sync"
	"testing"
)

func samplePoint(f float64) OperatingPoint {
	return OperatingPoint{FCore: f, VddV: []float64{1.0}, VbbV: []float64{0}}
}

func TestPhaseTableSaveLookup(t *testing.T) {
	pt := NewPhaseTable(0)
	if _, ok := pt.Lookup(1); ok {
		t.Error("empty table should miss")
	}
	pt.Save(1, samplePoint(1.1), OutcomeNoChange)
	got, ok := pt.Lookup(1)
	if !ok || got.FCore != 1.1 {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if pt.Len() != 1 {
		t.Errorf("Len = %d", pt.Len())
	}
	// The stored point is isolated from caller mutation.
	got.VddV[0] = 99
	again, _ := pt.Lookup(1)
	if again.VddV[0] == 99 {
		t.Error("table shares backing arrays with callers")
	}
}

func TestPhaseTableUsesCounting(t *testing.T) {
	pt := NewPhaseTable(0)
	pt.Save(7, samplePoint(1.0), OutcomeLowFreq)
	pt.Lookup(7)
	pt.Lookup(7)
	e, err := pt.Entry(7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Uses != 2 {
		t.Errorf("Uses = %d, want 2", e.Uses)
	}
	if e.Outcome != OutcomeLowFreq {
		t.Errorf("Outcome = %v", e.Outcome)
	}
	if _, err := pt.Entry(99); err == nil {
		t.Error("missing entry should error")
	}
}

func TestPhaseTableEviction(t *testing.T) {
	pt := NewPhaseTable(2)
	pt.Save(1, samplePoint(1.0), OutcomeNoChange)
	pt.Save(2, samplePoint(1.1), OutcomeNoChange)
	pt.Save(3, samplePoint(1.2), OutcomeNoChange)
	if pt.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", pt.Len())
	}
	if _, ok := pt.Lookup(1); ok {
		t.Error("oldest phase should have been evicted")
	}
	if _, ok := pt.Lookup(3); !ok {
		t.Error("newest phase missing")
	}
	// Re-saving an existing phase must not evict.
	pt.Save(3, samplePoint(1.3), OutcomeLowFreq)
	if pt.Len() != 2 {
		t.Errorf("re-save changed table size to %d", pt.Len())
	}
}

func TestPhaseTableOutcomeHistogram(t *testing.T) {
	pt := NewPhaseTable(0)
	pt.Save(1, samplePoint(1), OutcomeNoChange)
	pt.Save(2, samplePoint(1), OutcomeError)
	pt.Save(3, samplePoint(1), OutcomeError)
	h := pt.OutcomeHistogram()
	if h[OutcomeNoChange] != 1 || h[OutcomeError] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestPhaseTableConcurrentAccess(t *testing.T) {
	pt := NewPhaseTable(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pt.Save(i%10, samplePoint(1.0+float64(g)*0.01), OutcomeNoChange)
				pt.Lookup(i % 10)
				pt.OutcomeHistogram()
			}
		}(g)
	}
	wg.Wait()
	if pt.Len() != 10 {
		t.Errorf("Len = %d, want 10", pt.Len())
	}
}
