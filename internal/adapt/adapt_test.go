package adapt

import (
	"math"
	"sync"
	"testing"

	"repro/internal/checker"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

// buildCore assembles the optimization view for one chip, the way the core
// package does in production.
func buildCore(t testing.TB, seed int64, cfg tech.Config) *Core {
	t.Helper()
	vp := varius.DefaultParams()
	gen, err := varius.NewGenerator(vp)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := power.NewModel(fp, vp, power.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.NewModel(fp, vp, pw, thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var chip *varius.ChipMaps
	if seed < 0 {
		chip = gen.NoVarChip()
	} else {
		chip = gen.Chip(seed)
	}
	subs := make([]Subsystem, fp.N())
	for i, s := range fp.Subsystems {
		stage, err := vats.NewStage(s, chip, vp)
		if err != nil {
			t.Fatal(err)
		}
		_, _, leakEff := chip.RegionVtStats(s.Rect, vp)
		subs[i] = Subsystem{Index: i, Sub: s, Stage: stage, Vt0EffV: leakEff}
	}
	core, err := NewCore(subs, pw, th, checker.DefaultConfig(), cfg, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	return core
}

var (
	profOnce sync.Once
	profGcc  pipeline.Profile
	profSwim pipeline.Profile
)

func profiles(t *testing.T) (gcc, swim pipeline.Profile) {
	t.Helper()
	profOnce.Do(func() {
		app, err := workload.ByName("gcc")
		if err != nil {
			panic(err)
		}
		profGcc, err = pipeline.BuildProfile(app, app.Phases[0], 30000, 5)
		if err != nil {
			panic(err)
		}
		app, err = workload.ByName("swim")
		if err != nil {
			panic(err)
		}
		profSwim, err = pipeline.BuildProfile(app, app.Phases[0], 30000, 5)
		if err != nil {
			panic(err)
		}
	})
	return profGcc, profSwim
}

var (
	tsConfig  = tech.Config{TimingSpec: true}
	asvConfig = tech.Config{TimingSpec: true, ASV: true}
	allConfig = tech.Config{TimingSpec: true, ASV: true, ABB: true, QueueResize: true, FUReplication: true}
	preferred = tech.Config{TimingSpec: true, ASV: true, QueueResize: true, FUReplication: true}
)

const thTest = 60 + 273.15

func TestDefaultLimits(t *testing.T) {
	l := DefaultLimits()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.PMaxW != 30 || l.PEMax != 1e-4 {
		t.Errorf("limits = %+v, want Figure 7(a) values", l)
	}
	bad := l
	bad.PEMax = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error")
	}
}

func TestNewCoreValidation(t *testing.T) {
	core := buildCore(t, 1, tsConfig)
	if _, err := NewCore(nil, core.Power, core.Thermal, core.Checker, core.Config, core.Limits); err == nil {
		t.Error("no subsystems should error")
	}
	subs := append([]Subsystem(nil), core.Subs...)
	subs[3].Index = 7
	if _, err := NewCore(subs, core.Power, core.Thermal, core.Checker, core.Config, core.Limits); err == nil {
		t.Error("misindexed subsystems should error")
	}
	badCfg := tech.Config{ASV: true} // no checker
	if _, err := NewCore(core.Subs, core.Power, core.Thermal, core.Checker, badCfg, core.Limits); err == nil {
		t.Error("invalid tech config should error")
	}
}

func TestFreqSolveASVBeatsFixedSupply(t *testing.T) {
	gcc, _ := profiles(t)
	tsCore := buildCore(t, 2, tsConfig)
	asvCore := buildCore(t, 2, asvConfig)
	for i := 0; i < tsCore.N(); i++ {
		q := tsCore.QueryFor(i, gcc, thTest, tech.QueueFull, tech.FUNormal)
		fTS := tsCore.FreqSolve(i, q).FMax
		fASV := asvCore.FreqSolve(i, q).FMax
		if fASV < fTS-1e-9 {
			t.Errorf("sub %d: ASV fmax %v below fixed-supply %v", i, fASV, fTS)
		}
	}
}

func TestFreqSolveOnGrid(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 3, asvConfig)
	for i := 0; i < core.N(); i++ {
		q := core.QueryFor(i, gcc, thTest, tech.QueueFull, tech.FUNormal)
		f := core.FreqSolve(i, q).FMax
		steps := (f - tech.FRelMin) / tech.FRelStep
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			t.Errorf("sub %d: fmax %v not on the 100 MHz grid", i, f)
		}
		if f < tech.FRelMin || f > tech.FRelMax {
			t.Errorf("sub %d: fmax %v outside the PLL range", i, f)
		}
	}
}

func TestFreqSolveHotterSinkIsSlower(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 4, asvConfig)
	for i := 0; i < core.N(); i++ {
		qCool := core.QueryFor(i, gcc, 50+273.15, tech.QueueFull, tech.FUNormal)
		qHot := qCool
		qHot.THK = 70 + 273.15
		fCool := core.FreqSolve(i, qCool).FMax
		fHot := core.FreqSolve(i, qHot).FMax
		if fHot > fCool+1e-9 {
			t.Errorf("sub %d: hotter heat sink raised fmax (%v -> %v)", i, fCool, fHot)
		}
	}
}

func TestPowerSolveFeasibleAndTight(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 5, asvConfig)
	for i := 0; i < core.N(); i++ {
		q := core.QueryFor(i, gcc, thTest, tech.QueueFull, tech.FUNormal)
		fmax := core.FreqSolve(i, q).FMax
		fCore := tech.SnapFRelDown(fmax * 0.9)
		r := core.PowerSolve(i, fCore, q)
		if !r.Feasible {
			t.Errorf("sub %d: PowerSolve infeasible at 0.9*fmax", i)
			continue
		}
		if r.State.TK > core.Limits.TMaxK+0.1 {
			t.Errorf("sub %d: PowerSolve exceeded TMAX: %v", i, r.State.TK)
		}
		// The chosen point's PE-limited fmax must cover fCore.
		if fPE := core.peFMax(i, q.Variant, r.VddV, r.VbbV, core.stageBudget(q.Rho), r.State.TK); fPE < fCore-1e-9 {
			t.Errorf("sub %d: chosen levels cannot sustain fCore", i)
		}
	}
}

func TestPowerSolvePrefersLowPower(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 6, asvConfig)
	// At a very low core frequency, the Power algorithm should pick a low
	// supply, not the maximum.
	i := 0
	q := core.QueryFor(i, gcc, thTest, tech.QueueFull, tech.FUNormal)
	r := core.PowerSolve(i, tech.FRelMin, q)
	if !r.Feasible {
		t.Fatal("minimum frequency should be feasible")
	}
	if r.VddV > 1.0+1e-9 {
		t.Errorf("at minimum frequency Vdd = %v, expected <= nominal", r.VddV)
	}
}

func TestPETableInterpolationMonotone(t *testing.T) {
	core := buildCore(t, 7, asvConfig)
	v := vats.IdentityVariant()
	prev := 0.0
	for _, b := range []float64{1e-10, 3e-9, 1e-8, 5e-7, 1e-5, 2e-4, 1e-2, 1} {
		f := core.peFMax(0, v, 1.0, 0, b, 350)
		if f < prev-1e-9 {
			t.Fatalf("peFMax not monotone in budget at %g", b)
		}
		prev = f
	}
}

func TestProposeShapes(t *testing.T) {
	gcc, swim := profiles(t)
	core := buildCore(t, 8, preferred)
	for _, prof := range []pipeline.Profile{gcc, swim} {
		prop, err := core.Propose(prof, thTest, Exhaustive{})
		if err != nil {
			t.Fatal(err)
		}
		op := prop.Point
		if len(op.VddV) != core.N() || len(op.VbbV) != core.N() {
			t.Fatal("operating point has wrong width")
		}
		if op.FCore < tech.FRelMin || op.FCore > tech.FRelMax {
			t.Errorf("fcore %v out of range", op.FCore)
		}
		for i, v := range op.VddV {
			if v < tech.VddMinV-1e-9 || v > tech.VddMaxV+1e-9 {
				t.Errorf("sub %d Vdd %v out of ASV range", i, v)
			}
		}
		for i, v := range op.VbbV {
			if v != 0 {
				t.Errorf("sub %d Vbb %v nonzero without ABB", i, v)
			}
		}
		if prop.EstimatedPerf <= 0 {
			t.Error("estimated performance must be positive")
		}
		// The core frequency cannot exceed any subsystem's ceiling.
		for i, f := range prop.FPerSub {
			if op.FCore > f+1e-9 {
				t.Errorf("fcore %v exceeds sub %d ceiling %v", op.FCore, i, f)
			}
		}
	}
}

func TestProposeNilSolver(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 8, preferred)
	if _, err := core.Propose(gcc, thTest, nil); err == nil {
		t.Error("nil solver should error")
	}
}

func TestASVRaisesCoreFrequency(t *testing.T) {
	gcc, _ := profiles(t)
	ts := buildCore(t, 9, tsConfig)
	asv := buildCore(t, 9, asvConfig)
	pTS, err := ts.Propose(gcc, thTest, Exhaustive{})
	if err != nil {
		t.Fatal(err)
	}
	pASV, err := asv.Propose(gcc, thTest, Exhaustive{})
	if err != nil {
		t.Fatal(err)
	}
	if pASV.Point.FCore <= pTS.Point.FCore {
		t.Errorf("ASV fcore %v not above TS fcore %v", pASV.Point.FCore, pTS.Point.FCore)
	}
}

func TestEvaluateConservativePointIsClean(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 10, tsConfig)
	n := core.N()
	op := OperatingPoint{
		FCore: tech.FRelMin,
		VddV:  make([]float64, n),
		VbbV:  make([]float64, n),
	}
	for i := range op.VddV {
		op.VddV[i] = 1.0
	}
	st, err := core.Evaluate(op, gcc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violated() {
		t.Errorf("conservative point violates constraints: %+v", st)
	}
	if st.PerfRel <= 0 || st.TotalW <= 0 {
		t.Error("evaluation produced degenerate metrics")
	}
}

func TestEvaluateAggressivePointViolates(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 10, asvConfig)
	n := core.N()
	op := OperatingPoint{
		FCore: tech.FRelMax,
		VddV:  make([]float64, n),
		VbbV:  make([]float64, n),
	}
	for i := range op.VddV {
		op.VddV[i] = tech.VddMaxV
	}
	st, err := core.Evaluate(op, gcc)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Violated() {
		t.Error("max-everything point should violate some constraint")
	}
}

func TestRetuneRepairsViolations(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 11, asvConfig)
	n := core.N()
	op := OperatingPoint{
		FCore: tech.FRelMax,
		VddV:  make([]float64, n),
		VbbV:  make([]float64, n),
	}
	for i := range op.VddV {
		op.VddV[i] = 1.1
	}
	res, err := core.Retune(op, gcc)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Violated() {
		t.Errorf("retuning left a violated state: %+v", res.State)
	}
	if res.Outcome != OutcomeError && res.Outcome != OutcomeTemp && res.Outcome != OutcomePower {
		t.Errorf("violating start must classify as a violation outcome, got %v", res.Outcome)
	}
	if res.Point.FCore >= op.FCore {
		t.Error("retuning should have lowered the frequency")
	}
	if res.Steps < 2 {
		t.Error("retuning should take multiple steps")
	}
}

func TestRetuneCleanConfigProbesUp(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 12, asvConfig)
	prop, err := core.Propose(gcc, thTest, Exhaustive{})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := core.Evaluate(prop.Point, gcc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Retune(prop.Point, gcc)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Violated() {
		t.Errorf("retuned state still violates: %+v", res.State)
	}
	if initial.Violated() {
		// The proposal missed (e.g. the sensed TH was stale); retuning must
		// classify the violation and back off.
		if res.Outcome == OutcomeNoChange || res.Outcome == OutcomeLowFreq {
			t.Errorf("violating start must classify a violation, got %v", res.Outcome)
		}
		return
	}
	if res.Outcome != OutcomeNoChange && res.Outcome != OutcomeLowFreq {
		t.Errorf("clean start must classify NoChange/LowFreq, got %v", res.Outcome)
	}
	if res.Point.FCore < prop.Point.FCore {
		t.Error("clean retuning should never lower frequency")
	}
}

func TestAdaptPhaseEndToEnd(t *testing.T) {
	gcc, swim := profiles(t)
	core := buildCore(t, 13, preferred)
	for _, prof := range []pipeline.Profile{gcc, swim} {
		res, err := core.AdaptPhase(prof, thTest, Exhaustive{})
		if err != nil {
			t.Fatal(err)
		}
		if res.State.Violated() {
			t.Errorf("%s: adapted state violates constraints", prof.AppName)
		}
		// The whole point: adapted frequency beats the no-support Baseline
		// (~0.78) by a wide margin.
		if res.Point.FCore < 0.9 {
			t.Errorf("%s: adapted fcore = %v, expected near/above nominal", prof.AppName, res.Point.FCore)
		}
		if res.State.PE > core.Limits.PEMax*1.0001 {
			t.Errorf("%s: PE %g exceeds budget", prof.AppName, res.State.PE)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	names := map[Outcome]string{
		OutcomeNoChange: "NoChange", OutcomeLowFreq: "LowFreq",
		OutcomeError: "Error", OutcomeTemp: "Temp", OutcomePower: "Power",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if Outcome(42).String() == "" {
		t.Error("unknown outcome should still print")
	}
}

func TestVariantsOf(t *testing.T) {
	core := buildCore(t, 14, allConfig)
	for i, s := range core.Subs {
		n := len(core.variantsOf(i))
		want := 1
		if tech.IsQueueSubsystem(s.Sub.ID) || tech.IsFUSubsystem(s.Sub.ID) {
			want = 2
		}
		if n != want {
			t.Errorf("%v has %d variants, want %d", s.Sub.ID, n, want)
		}
	}
}

func TestVariantForRouting(t *testing.T) {
	core := buildCore(t, 14, allConfig)
	gcc, swim := profiles(t)
	// For an integer app with a small queue, IntQ shifts but FPQ does not.
	for _, s := range core.Subs {
		v, _ := variantFor(s.Sub, gcc.Class, tech.QueueThreeQuarter, tech.FUNormal)
		if s.Sub.ID == floorplan.IntQ && v.MeanScale == 1 {
			t.Error("IntQ should shift for an int app with a small queue")
		}
		if s.Sub.ID == floorplan.FPQ && v.MeanScale != 1 {
			t.Error("FPQ must not shift for an int app")
		}
	}
	// For an FP app with LowSlope, FPUnit tilts but IntALU does not.
	for _, s := range core.Subs {
		v, mult := variantFor(s.Sub, swim.Class, tech.QueueFull, tech.FULowSlope)
		if s.Sub.ID == floorplan.FPUnit {
			if !v.PreserveWall || mult != tech.LowSlopePowerMult {
				t.Error("FPUnit should tilt with the 1.3x power cost for an FP app")
			}
		}
		if s.Sub.ID == floorplan.IntALU && v.PreserveWall {
			t.Error("IntALU must not tilt for an FP app")
		}
	}
}

func TestFuzzySolverApproximatesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training")
	}
	gcc, _ := profiles(t)
	trainCores := []*Core{buildCore(t, 100, asvConfig), buildCore(t, 101, asvConfig)}
	opts := DefaultTrainOptions()
	opts.Examples = 400
	solver, err := TrainFuzzySolver(trainCores, opts)
	if err != nil {
		t.Fatal(err)
	}
	if solver.ControllerCount() != trainCores[0].N()*3 {
		t.Errorf("controller count = %d, want %d", solver.ControllerCount(), trainCores[0].N()*3)
	}
	// Accuracy on a *fresh* chip (not in the training set).
	test := buildCore(t, 200, asvConfig)
	var sumErr float64
	for i := 0; i < test.N(); i++ {
		q := test.QueryFor(i, gcc, thTest, tech.QueueFull, tech.FUNormal)
		fx := (Exhaustive{}).FreqMax(test, i, q)
		ff := solver.FreqMax(test, i, q)
		sumErr += math.Abs(fx-ff) / fx
	}
	mean := sumErr / float64(test.N())
	// Table 2 reports ~4-11% frequency error; stay within that band.
	if mean > 0.12 {
		t.Errorf("mean fuzzy frequency error = %.1f%%, want < 12%%", mean*100)
	}
	t.Logf("mean fuzzy frequency error = %.2f%% (paper Table 2: ~4-11%%)", mean*100)
}

func TestTrainFuzzySolverValidation(t *testing.T) {
	if _, err := TrainFuzzySolver(nil, DefaultTrainOptions()); err == nil {
		t.Error("no cores should error")
	}
	core := buildCore(t, 15, asvConfig)
	bad := DefaultTrainOptions()
	bad.Examples = 3
	if _, err := TrainFuzzySolver([]*Core{core}, bad); err == nil {
		t.Error("too few examples should error")
	}
	other := buildCore(t, 15, tsConfig)
	if _, err := TrainFuzzySolver([]*Core{core, other}, DefaultTrainOptions()); err == nil {
		t.Error("mixed configurations should error")
	}
}

func TestOperatingPointClone(t *testing.T) {
	op := OperatingPoint{FCore: 1, VddV: []float64{1, 2}, VbbV: []float64{3, 4}}
	cl := op.Clone()
	cl.VddV[0] = 99
	if op.VddV[0] == 99 {
		t.Error("Clone shares backing arrays")
	}
}
