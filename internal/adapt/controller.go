package adapt

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/vats"
	"repro/internal/workload"
)

// OperatingPoint is a complete configuration chosen by the controller: the
// 2n+3 outputs of §4.1.
type OperatingPoint struct {
	FCore float64   // relative core frequency
	VddV  []float64 // per subsystem
	VbbV  []float64 // per subsystem
	Queue tech.QueueSize
	FU    tech.FUChoice
}

// Clone deep-copies the operating point.
func (op OperatingPoint) Clone() OperatingPoint {
	out := op
	out.VddV = append([]float64(nil), op.VddV...)
	out.VbbV = append([]float64(nil), op.VbbV...)
	return out
}

// IdleAlphaThreshold is the activity (accesses/cycle) below which a
// subsystem is treated as idle for adaptation purposes.
const IdleAlphaThreshold = 0.01

// minLevel returns the smallest of an ascending level list.
func minLevel(levels []float64) float64 { return levels[0] }

// Solver abstracts the per-subsystem Freq and Power algorithms (the boxes
// of Figure 3): Exhaustive search or trained fuzzy controllers.
type Solver interface {
	// FreqMax returns the subsystem's maximum feasible frequency.
	FreqMax(c *Core, i int, q FreqQuery) float64
	// PowerLevels returns the minimum-power (Vdd, Vbb) meeting fCore.
	PowerLevels(c *Core, i int, fCore float64, q FreqQuery) (vddV, vbbV float64)
	// Name identifies the solver in reports.
	Name() string
}

// Exhaustive is the reference solver of §4.3.1.
type Exhaustive struct{}

// FreqMax implements Solver.
func (Exhaustive) FreqMax(c *Core, i int, q FreqQuery) float64 {
	return c.FreqSolve(i, q).FMax
}

// PowerLevels implements Solver.
func (Exhaustive) PowerLevels(c *Core, i int, fCore float64, q FreqQuery) (float64, float64) {
	r := c.PowerSolve(i, fCore, q)
	return r.VddV, r.VbbV
}

// Name implements Solver.
func (Exhaustive) Name() string { return "exhaustive" }

// variantFor returns the structural variant and power multiplier of
// subsystem sub under the given choices for an application of the given
// class. Only the class-matching queue and FU adapt (§4.1).
func variantFor(sub floorplan.Subsystem, class workload.Class,
	queue tech.QueueSize, fu tech.FUChoice) (vats.Variant, float64) {
	switch {
	case tech.IsQueueSubsystem(sub.ID) && classActive(sub, class) && queue == tech.QueueThreeQuarter:
		// A downsized queue saves some power along with its delay shift.
		return queue.Variant(), tech.QueueSmallFrac + 0.05
	case tech.IsFUSubsystem(sub.ID) && classActive(sub, class) && fu == tech.FULowSlope:
		return fu.Variant(), fu.PowerMult()
	default:
		return vats.IdentityVariant(), 1
	}
}

// QueryFor builds the FreqQuery for subsystem i under the given structure
// choices — exposed for diagnostics and figure generation.
func (c *Core) QueryFor(i int, prof pipeline.Profile, thK float64,
	queue tech.QueueSize, fu tech.FUChoice) FreqQuery {
	sub := c.Subs[i].Sub
	variant, mult := variantFor(sub, prof.Class, queue, fu)
	alpha := prof.Activity[sub.ID]
	return FreqQuery{
		THK:       thK,
		AlphaF:    alpha,
		Rho:       rhoFor(alpha, prof.CPITotalNom(queue)),
		Variant:   variant,
		PowerMult: mult,
	}
}

// Proposal is the controller's output before hardware retuning.
type Proposal struct {
	Point OperatingPoint
	// FPerSub is each subsystem's own frequency ceiling, for diagnostics
	// and the Figure 8 curves.
	FPerSub []float64
	// EstimatedPerf is the controller's Eq. 5 estimate at the proposal.
	EstimatedPerf float64
}

// Propose runs the full §4.2 optimization for one phase: per-subsystem
// Freq solves, the Figure 4 FU-replica decision, the CPI-aware issue-queue
// decision, the core-frequency min, and the per-subsystem Power solves.
func (c *Core) Propose(prof pipeline.Profile, thK float64, solver Solver) (Proposal, error) {
	if solver == nil {
		return Proposal{}, fmt.Errorf("adapt: nil solver")
	}
	defer c.Obs.Timer("adapt.propose").Start().Stop()
	n := c.N()

	// Step 1: per-subsystem frequency ceilings with default structures.
	// Subsystems the application leaves (nearly) idle — the FP side under
	// integer codes and vice versa — cannot constrain the clock: their
	// per-instruction error contribution rho*PE is negligible and they
	// stay cool, so they are excluded from the frequency min and later
	// parked at the lowest supply (§4.1 adapts only the structures "of the
	// type of application running").
	fBase := make([]float64, n)
	for i := 0; i < n; i++ {
		q := c.QueryFor(i, prof, thK, tech.QueueFull, tech.FUNormal)
		if q.AlphaF < IdleAlphaThreshold {
			fBase[i] = tech.FRelMax
			continue
		}
		fBase[i] = solver.FreqMax(c, i, q)
	}

	// Step 2: FU-replica decision (Figure 4): enable LowSlope only when
	// the normal FU would limit the core frequency.
	fu := tech.FUNormal
	fuIdx := c.activeFUIndex(prof.Class)
	if c.Config.FUReplication && fuIdx >= 0 {
		fNormal := fBase[fuIdx]
		minRest := minExcept(fBase, fuIdx)
		if fNormal < minRest {
			fLow := solver.FreqMax(c, fuIdx,
				c.QueryFor(fuIdx, prof, thK, tech.QueueFull, tech.FULowSlope))
			if fLow > fNormal {
				fu = tech.FULowSlope
				fBase[fuIdx] = fLow
			}
		}
	}

	// Step 3: issue-queue decision: compare estimated performance at the
	// core frequency each queue size would allow (§4.2).
	queue := tech.QueueFull
	qIdx := c.activeQueueIndex(prof.Class)
	fCoreFull := minOf(fBase)
	fCore := fCoreFull
	if c.Config.QueueResize && qIdx >= 0 {
		fSmallQ := solver.FreqMax(c, qIdx,
			c.QueryFor(qIdx, prof, thK, tech.QueueThreeQuarter, fu))
		fAll := append([]float64(nil), fBase...)
		fAll[qIdx] = fSmallQ
		fCoreSmall := minOf(fAll)
		perfFull := c.estimatePerf(fCoreFull, prof, tech.QueueFull)
		perfSmall := c.estimatePerf(fCoreSmall, prof, tech.QueueThreeQuarter)
		if perfSmall > perfFull {
			queue = tech.QueueThreeQuarter
			fBase[qIdx] = fSmallQ
			fCore = fCoreSmall
		}
	}
	fCore = tech.SnapFRelDown(fCore)

	// Step 4: Power algorithm — per-subsystem minimum-power levels at the
	// chosen core frequency.
	op := OperatingPoint{
		FCore: fCore,
		VddV:  make([]float64, n),
		VbbV:  make([]float64, n),
		Queue: queue,
		FU:    fu,
	}
	for {
		for i := 0; i < n; i++ {
			q := c.QueryFor(i, prof, thK, queue, fu)
			if q.AlphaF < IdleAlphaThreshold {
				// Park idle structures at the lowest supply and the most
				// leakage-cutting bias available.
				op.VddV[i] = minLevel(c.Config.VddLevels(nominalVdd))
				op.VbbV[i] = minLevel(c.Config.VbbLevels())
				continue
			}
			op.VddV[i], op.VbbV[i] = solver.PowerLevels(c, i, fCore, q)
		}
		// Step 5: the §4.2 global check that the overall processor power is
		// below PMAX (estimated at the sensed heat-sink temperature). If it
		// fails, the core frequency steps down and the Power algorithm
		// re-derives the per-subsystem levels, which relaxes any aggressive
		// boosts that were only needed for the higher frequency.
		if c.estimateTotalPower(op, prof, thK) <= c.Limits.PMaxW ||
			fCore <= tech.FRelMin+1e-9 {
			break
		}
		fCore = tech.SnapFRelDown(fCore - tech.FRelStep)
		op.FCore = fCore
	}
	return Proposal{
		Point:         op,
		FPerSub:       fBase,
		EstimatedPerf: c.estimatePerf(fCore, prof, queue),
	}, nil
}

// estimateTotalPower computes the controller's view of total processor
// power at an operating point, holding the heat sink at its sensed value.
func (c *Core) estimateTotalPower(op OperatingPoint, prof pipeline.Profile, thK float64) float64 {
	total := c.Power.Uncore(op.FCore, thK)
	if c.Config.TimingSpec {
		total += c.Checker.PowerW(op.FCore)
	}
	for i := 0; i < c.N(); i++ {
		sub := c.Subs[i].Sub
		_, mult := variantFor(sub, prof.Class, op.Queue, op.FU)
		st := c.Thermal.SubsystemSteady(thermal.SubsystemInput{
			Index:     i,
			Vt0Eff:    c.Subs[i].Vt0EffV,
			AlphaF:    prof.Activity[sub.ID],
			VddV:      op.VddV[i],
			VbbV:      op.VbbV[i],
			FRel:      op.FCore,
			PowerMult: mult,
		}, thK)
		total += st.PowerW()
	}
	return total
}

// activeFUIndex returns the index of the FU subsystem that adapts for the
// class, or -1.
func (c *Core) activeFUIndex(class workload.Class) int {
	want := floorplan.IntALU
	if class == workload.FP {
		want = floorplan.FPUnit
	}
	for i, s := range c.Subs {
		if s.Sub.ID == want {
			return i
		}
	}
	return -1
}

// activeQueueIndex returns the index of the issue queue that adapts for
// the class, or -1.
func (c *Core) activeQueueIndex(class workload.Class) int {
	want := floorplan.IntQ
	if class == workload.FP {
		want = floorplan.FPQ
	}
	for i, s := range c.Subs {
		if s.Sub.ID == want {
			return i
		}
	}
	return -1
}

// estimatePerf evaluates Eq. 5 at the constraint error rate (the PE term
// is pinned at PEMAX, which the paper shows costs almost nothing at 1e-4).
func (c *Core) estimatePerf(fRel float64, prof pipeline.Profile, queue tech.QueueSize) float64 {
	in := pipeline.PerfInputs{
		FRel:           fRel,
		CPIComp:        prof.CPIComp(queue),
		Mr:             prof.Mr,
		MpNomCycles:    prof.MpNomCycles,
		PE:             c.Limits.PEMax,
		RecoveryCycles: c.recoveryCycles(),
		ExtraCPI:       c.extraCPI(prof),
	}
	if c.Config.TimingSpec {
		chk := c.Checker
		in.Checker = &chk
	}
	return pipeline.Perf(in)
}

// recoveryCycles returns rp: the checker flush penalty, one cycle longer
// when FU replication lengthens the pipeline.
func (c *Core) recoveryCycles() float64 {
	rp := c.Checker.RecoveryCycles
	if c.Config.FUReplication {
		rp += tech.ExtraPipeStageCycles
	}
	return rp
}

// extraCPI returns the pipeline-lengthening CPI adder of FU replication:
// each mispredicted branch pays one extra cycle.
func (c *Core) extraCPI(prof pipeline.Profile) float64 {
	if !c.Config.FUReplication {
		return 0
	}
	return prof.MispredictsPerInstr * tech.ExtraPipeStageCycles
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func minExcept(xs []float64, skip int) float64 {
	m := math.Inf(1)
	for i, x := range xs {
		if i != skip && x < m {
			m = x
		}
	}
	return m
}

// SystemState is the true steady state of the core at an operating point:
// what the sensors of §4.3.2 would observe.
type SystemState struct {
	Core    thermal.CoreState
	PE      float64 // errors per instruction at the real temperatures
	PerfRel float64 // Eq. 5 performance relative to nominal-frequency ideal
	TotalW  float64 // including the checker
	// Violation flags against the Limits.
	ErrViol, TempViol, PowerViol bool
}

// Violated reports whether any constraint is violated.
func (s SystemState) Violated() bool { return s.ErrViol || s.TempViol || s.PowerViol }

// evalMemoCap bounds the Evaluate memo; one entry holds a SystemState
// plus its encoded key (~1/2 KiB), so the cap is a few MiB per core.
const evalMemoCap = 1 << 14

// appendF64 encodes one float64 exactly (by bit pattern) into a memo key.
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// evalMemoKey encodes everything Evaluate's result depends on besides the
// core's immutable models: the full operating point and the profile fields
// Evaluate reads. The encoding is exact (float bit patterns), so a hit can
// only occur for a bitwise-identical query. The key is built in a reused
// buffer; map lookups via string(key) do not allocate.
func (c *Core) evalMemoKey(op OperatingPoint, prof pipeline.Profile) []byte {
	k := c.evalKey[:0]
	k = appendF64(k, op.FCore)
	for i := range op.VddV {
		k = appendF64(k, op.VddV[i])
		k = appendF64(k, op.VbbV[i])
	}
	k = append(k, byte(op.Queue), byte(op.FU), byte(prof.Class))
	for _, a := range prof.Activity {
		k = appendF64(k, a)
	}
	k = appendF64(k, prof.CPICompFull)
	k = appendF64(k, prof.CPICompSmall)
	k = appendF64(k, prof.Mr)
	k = appendF64(k, prof.MpNomCycles)
	k = appendF64(k, prof.MispredictsPerInstr)
	c.evalKey = k
	return k
}

// Evaluate computes the true system state at an operating point for a
// phase: the coupled thermal solution, the real error rate (stage curves at
// the real per-subsystem temperatures), performance, and constraint checks.
//
// Results are memoized by exact key: retuning and the steady-state loop
// re-probe the same (operating point, profile) pairs constantly, and
// repeated phases across the environment sweep land on identical keys, so
// repeats are table lookups ("core.memo.evaluate_hits"). DisablePruning
// routes around the memo, like the Freq/Power solve memos.
func (c *Core) Evaluate(op OperatingPoint, prof pipeline.Profile) (SystemState, error) {
	memo := !c.DisablePruning && c.evalMemo != nil
	var key []byte
	if memo {
		key = c.evalMemoKey(op, prof)
		if st, ok := c.evalMemo[string(key)]; ok {
			c.Obs.Counter("core.memo.evaluate_hits").Inc()
			return st, nil
		}
		c.Obs.Counter("core.memo.evaluate_misses").Inc()
	}
	st := c.evaluate(op, prof)
	if memo && len(c.evalMemo) < evalMemoCap {
		c.evalMemo[string(key)] = st
	}
	return st, nil
}

// evaluate is the uncached Evaluate body.
func (c *Core) evaluate(op OperatingPoint, prof pipeline.Profile) SystemState {
	n := c.N()
	if cap(c.evalIns) < n {
		c.evalIns = make([]thermal.SubsystemInput, n)
	}
	ins := c.evalIns[:n]
	for i := 0; i < n; i++ {
		sub := c.Subs[i].Sub
		_, mult := variantFor(sub, prof.Class, op.Queue, op.FU)
		ins[i] = thermal.SubsystemInput{
			Index:     i,
			Vt0Eff:    c.Subs[i].Vt0EffV,
			AlphaF:    prof.Activity[sub.ID],
			VddV:      op.VddV[i],
			VbbV:      op.VbbV[i],
			FRel:      op.FCore,
			PowerMult: mult,
		}
	}
	// The core's private solver warm-starts each solve from the previous
	// converged state; Obs is forwarded lazily because the registry is
	// assigned after NewCore.
	c.solver.Obs = c.Obs
	coreState, err := c.solver.CoreSteady(ins, op.FCore)
	if err != nil {
		// Thermal runaway or non-convergence: the real hardware would trip
		// its thermal and power sensors immediately. Report a fully
		// violated state so retuning backs the configuration off, rather
		// than failing the adaptation.
		return SystemState{
			Core:      coreState,
			PE:        1,
			TotalW:    math.Inf(1),
			ErrViol:   true,
			TempViol:  true,
			PowerViol: true,
		}
	}

	// Real error rate: Eq. 4 with stage curves at the solved temperatures.
	pe := 0.0
	cpi := prof.CPIComp(op.Queue)
	for i := 0; i < n; i++ {
		sub := c.Subs[i].Sub
		variant, _ := variantFor(sub, prof.Class, op.Queue, op.FU)
		curve := c.Subs[i].Stage.EvalInto(vats.Cond{
			VddV: op.VddV[i], VbbV: op.VbbV[i], TK: coreState.Subs[i].TK,
		}, variant, &c.evalCurve)
		rho := rhoFor(prof.Activity[sub.ID], cpi)
		pe += rho * curve.PE(op.FCore)
	}

	total := coreState.TotalW
	if c.Config.TimingSpec {
		total += c.Checker.PowerW(op.FCore)
	}

	perfIn := pipeline.PerfInputs{
		FRel:           op.FCore,
		CPIComp:        cpi,
		Mr:             prof.Mr,
		MpNomCycles:    prof.MpNomCycles,
		PE:             pe,
		RecoveryCycles: c.recoveryCycles(),
		ExtraCPI:       c.extraCPI(prof),
	}
	if c.Config.TimingSpec {
		chk := c.Checker
		perfIn.Checker = &chk
	}

	st := SystemState{
		Core:    coreState,
		PE:      pe,
		PerfRel: pipeline.Perf(perfIn),
		TotalW:  total,
	}
	st.ErrViol = pe > c.Limits.PEMax*1.0001
	st.TempViol = coreState.MaxTK() > c.Limits.TMaxK+0.01 || coreState.THK > c.Limits.THMaxK+0.01
	st.PowerViol = total > c.Limits.PMaxW*1.0001
	if !c.Config.TimingSpec && pe > vats.PEZero*float64(c.N())*10 {
		// Without a checker, any measurable error rate is fatal.
		st.ErrViol = true
	}
	return st
}
