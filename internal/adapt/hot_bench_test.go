package adapt

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/tech"
	"repro/internal/workload"
)

// benchProfile builds a representative profile for solver micro-benchmarks.
func benchProfile(b *testing.B) pipeline.Profile {
	b.Helper()
	app, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := pipeline.BuildProfile(app, app.Phases[0], 20000, 5)
	if err != nil {
		b.Fatal(err)
	}
	return prof
}

// BenchmarkPowerSolveHot measures one per-subsystem Power-algorithm solve
// with a warm PE cache — the dominant cost of fuzzy-controller training.
func BenchmarkPowerSolveHot(b *testing.B) {
	core := buildCore(b, 2, asvConfig)
	prof := benchProfile(b)
	q := core.QueryFor(0, prof, thTest, tech.QueueFull, tech.FUNormal)
	core.PowerSolve(0, 1.0, q) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PowerSolve(0, 1.0, q)
	}
}

// BenchmarkFreqSolveHot measures one warm per-subsystem Freq solve.
func BenchmarkFreqSolveHot(b *testing.B) {
	core := buildCore(b, 2, asvConfig)
	prof := benchProfile(b)
	q := core.QueryFor(0, prof, thTest, tech.QueueFull, tech.FUNormal)
	core.FreqSolve(0, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.FreqSolve(0, q)
	}
}

// BenchmarkPropose measures a full controller invocation (15 Freq solves,
// the structure decisions, 15 Power solves, the PMAX check).
func BenchmarkPropose(b *testing.B) {
	core := buildCore(b, 2, preferred)
	prof := benchProfile(b)
	core.Propose(prof, thTest, Exhaustive{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Propose(prof, thTest, Exhaustive{}); err != nil {
			b.Fatal(err)
		}
	}
}
