package adapt

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/tech"
	"repro/internal/vats"
)

// trainOptsForTest returns a small but non-trivial training budget.
func trainOptsForTest(examples int) TrainOptions {
	opts := DefaultTrainOptions()
	opts.Examples = examples
	opts.Fuzzy.Epochs = 2
	opts.Seed = 4242
	return opts
}

// TestTrainFuzzySolverWorkerDeterminism: the two-stage trainer must
// produce bit-exact controllers at every worker count — the serialized
// solver (sorted, canonical JSON) is compared byte for byte, and the
// parallel runs must also match the worker-count-1 run that reuses the
// caller's cores directly.
func TestTrainFuzzySolverWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzy training")
	}
	train := func(workers int) []byte {
		// Fresh cores per run: solve memos and PE tables warm up
		// differently at different worker counts, and results must not
		// depend on either.
		cores := []*Core{buildCore(t, 21, preferred), buildCore(t, 22, preferred)}
		opts := trainOptsForTest(120)
		opts.Workers = workers
		s, err := TrainFuzzySolver(cores, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	ref := train(1)
	for _, w := range []int{2, 4, 8} {
		if got := train(w); !bytes.Equal(ref, got) {
			t.Errorf("workers=%d: serialized solver differs from workers=1", w)
		}
	}
}

// TestWorkerViewSolvesMatchParent: a view must answer Freq/Power queries
// bitwise identically to its parent, with and without warm memos.
func TestWorkerViewSolvesMatchParent(t *testing.T) {
	core := buildCore(t, 23, preferred)
	view := core.WorkerView()
	q := FreqQuery{
		THK: thTest, AlphaF: 0.4, Rho: 0.9,
		Variant: vats.IdentityVariant(), PowerMult: 1,
	}
	for i := 0; i < core.N(); i += 3 {
		want := core.FreqSolve(i, q)
		got := view.FreqSolve(i, q)
		if want != got {
			t.Errorf("sub %d: view FreqSolve %+v != parent %+v", i, got, want)
		}
		fCore := tech.SnapFRelDown(want.FMax * 0.9)
		pw := core.PowerSolve(i, fCore, q)
		pv := view.PowerSolve(i, fCore, q)
		if pw != pv {
			t.Errorf("sub %d: view PowerSolve %+v != parent %+v", i, pv, pw)
		}
		// Repeat hits the view's own memo; must stay identical.
		if again := view.FreqSolve(i, q); again != want {
			t.Errorf("sub %d: view memo hit %+v != parent %+v", i, again, want)
		}
	}
}

// TestConcurrentSharedPEStore drives many WorkerViews of one core from
// concurrent goroutines over an initially cold shared PE-table store, so
// `go test -race` exercises the store's atomic publication (dense slots)
// and mutexed overflow path while lazy builds race. Every goroutine must
// see the same solve results as a serial reference core.
func TestConcurrentSharedPEStore(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent solve sweep")
	}
	parent := buildCore(t, 24, allConfig)
	ref := buildCore(t, 24, allConfig)
	queries := []FreqQuery{
		{THK: thTest, AlphaF: 0.3, Rho: 0.8, Variant: vats.IdentityVariant(), PowerMult: 1},
		{THK: 52 + 273.15, AlphaF: 0.9, Rho: 2.1, Variant: vats.IdentityVariant(), PowerMult: 1},
		{THK: 66 + 273.15, AlphaF: 0.12, Rho: 0.5, Variant: tech.FULowSlope.Variant(), PowerMult: tech.LowSlopePowerMult},
		{THK: 58 + 273.15, AlphaF: 0.55, Rho: 1.4, Variant: tech.QueueThreeQuarter.Variant(), PowerMult: tech.QueueSmallFrac + 0.05},
	}
	type key struct{ sub, q int }
	want := make(map[key]FreqResult)
	for i := 0; i < ref.N(); i++ {
		for qi, q := range queries {
			want[key{i, qi}] = ref.FreqSolve(i, q)
		}
	}
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := parent.WorkerView()
			// Strided sweeps overlap across goroutines (three share each
			// parity), racing on the same cold table slots without every
			// goroutine re-solving all 15 subsystems.
			for i := w % 2; i < view.N(); i += 2 {
				for qi, q := range queries {
					if got := view.FreqSolve(i, q); got != want[key{i, qi}] {
						errs <- "concurrent solve diverged from serial reference"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
