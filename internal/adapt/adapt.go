// Package adapt implements §4 of the paper: the High-Dimensional dynamic
// adaptation that chooses, at every application phase, the core frequency,
// per-subsystem supply voltage and body bias, the issue-queue size, and the
// functional-unit replica, so as to maximize frequency subject to the
// error-rate, temperature, and power constraints.
//
// It provides the two-step Freq/Power decomposition of §4.2 with two
// interchangeable per-subsystem solvers — the offline Exhaustive search of
// §4.3.1 and the trained fuzzy controllers — plus the retuning cycles of
// §4.3.3 that repair controller misestimates, and the outcome
// classification behind Figure 13.
//
// # Ownership
//
// A Core carries unsynchronized Freq/Power solve-memoization maps, so an
// individual Core must only be driven by one goroutine at a time. The
// PE-fmax table store underneath is different: its lazy builds publish
// through sync.Once-style atomic flags, so one store may back any number
// of cores on any number of goroutines concurrently — tables are built at
// most once and every reader observes a fully-built table. Two sharing
// patterns follow:
//
//   - SharePETables joins cores modeling the same chip (e.g. the six
//     environment cores of one chip) into one store; the cores may then be
//     driven from different worker goroutines, as the (chip × environment)
//     work queue of the experiment harness does.
//   - WorkerView clones a core into a per-goroutine view with fresh memo
//     maps over the shared read-only models and table store; the parallel
//     fuzzy-training pipeline hands one view per worker slot.
//
// Besides the memo maps, a Core privately owns a warm-started
// thermal.Solver (its scratch buffers carry the previous converged state
// between Evaluate calls) and an Evaluate-result memo whose cached
// SystemStates alias one shared Subs slice per entry; both are
// single-goroutine state, and WorkerView replaces both with fresh
// instances so views never share mutable scratch.
package adapt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/checker"
	"repro/internal/floorplan"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/vats"
	"repro/internal/workload"
)

// Limits are the optimization constraints of §4.1 / Figure 7(a).
type Limits struct {
	PMaxW  float64 // per-processor power cap (core + L1 + L2 + checker)
	TMaxK  float64 // per-subsystem temperature cap
	THMaxK float64 // heat-sink temperature cap
	PEMax  float64 // total errors per instruction
}

// DefaultLimits returns Figure 7(a): PMAX=30 W, TMAX=85 C, TH_MAX=70 C,
// PE_MAX=1e-4 err/inst.
func DefaultLimits() Limits {
	return Limits{
		PMaxW:  30,
		TMaxK:  85 + 273.15,
		THMaxK: 70 + 273.15,
		PEMax:  1e-4,
	}
}

// Validate checks the limits.
func (l Limits) Validate() error {
	if l.PMaxW <= 0 || l.TMaxK <= 273.15 || l.THMaxK <= 273.15 || l.PEMax <= 0 {
		return fmt.Errorf("adapt: invalid limits %+v", l)
	}
	return nil
}

// Subsystem bundles one subsystem's optimization view: its timing model and
// the per-subsystem constants of §4.1 (Rth, Kdyn, Ksta, Vt0) that the
// manufacturer measures and stores on chip.
type Subsystem struct {
	Index   int
	Sub     floorplan.Subsystem
	Stage   *vats.Stage
	Vt0EffV float64
}

// Core is the optimization view of one processor core on one chip.
type Core struct {
	Subs    []Subsystem
	Power   *power.Model
	Thermal *thermal.Model
	Checker checker.Config
	Config  tech.Config
	Limits  Limits

	// Obs, when non-nil, receives controller-invocation outcome counters,
	// retune-cycle counters, and solver timings. Nil (the default) is a
	// zero-cost no-op.
	Obs *obs.Registry

	// DisablePruning switches FreqSolve/PowerSolve to the reference slow
	// path: no bound-based pruning and no solve memoization. Results are
	// identical either way (the equivalence tests assert it); the knob
	// exists so the fast path can always be checked against the scan.
	DisablePruning bool

	pe        *peStore
	freqMemo  map[freqMemoKey]FreqResult
	powerMemo map[powerMemoKey]PowerResult

	// solver is the core's private warm-started thermal solver: Evaluate
	// drives every CoreSteady through it so successive retune probes reuse
	// the previous converged state. Owned by the core's goroutine, like the
	// memo maps; WorkerView hands out a fresh one.
	solver *thermal.Solver
	// evalMemo caches full Evaluate results by exact operating-point +
	// profile key; evalKey is the reused scratch buffer the key is encoded
	// into, and evalIns the reused thermal-input scratch. Cached
	// SystemStates share their Core.Subs slice across hits and must be
	// treated as read-only (they are: callers only read).
	evalMemo map[string]SystemState
	evalKey  []byte
	evalIns  []thermal.SubsystemInput
	// evalCurve is the reused stage-curve scratch for evaluate's real
	// error-rate pass — one Curve per Core instead of one per
	// (subsystem, evaluation).
	evalCurve vats.Curve
}

// NewCore validates and assembles the optimization view.
func NewCore(subs []Subsystem, pw *power.Model, th *thermal.Model,
	chk checker.Config, cfg tech.Config, lim Limits) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lim.Validate(); err != nil {
		return nil, err
	}
	if err := chk.Validate(); err != nil {
		return nil, err
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("adapt: no subsystems")
	}
	for i, s := range subs {
		if s.Index != i {
			return nil, fmt.Errorf("adapt: subsystem %d has index %d", i, s.Index)
		}
		if s.Stage == nil {
			return nil, fmt.Errorf("adapt: subsystem %d has no stage model", i)
		}
	}
	return &Core{
		Subs:      subs,
		Power:     pw,
		Thermal:   th,
		Checker:   chk,
		Config:    cfg,
		Limits:    lim,
		pe:        newPEStore(len(subs)),
		freqMemo:  make(map[freqMemoKey]FreqResult),
		powerMemo: make(map[powerMemoKey]PowerResult),
		solver:    thermal.NewSolver(th),
		evalMemo:  make(map[string]SystemState),
	}, nil
}

// N returns the number of subsystems.
func (c *Core) N() int { return len(c.Subs) }

// SharePETables makes c reuse donor's PE-fmax tables. The tables depend
// only on the stage models — not on the technique configuration — so the
// cores built for one chip's six environments can share one store and
// amortize the vats.Curve evaluations. The donor must model the same chip
// (same stage models, in order). The store is safe for concurrent use, so
// the sharing cores may run on different goroutines; each individual core
// still belongs to one goroutine (see the package comment).
func (c *Core) SharePETables(donor *Core) error {
	if donor == nil || donor.pe == nil {
		return fmt.Errorf("adapt: nil donor")
	}
	if len(c.Subs) != len(donor.Subs) {
		return fmt.Errorf("adapt: subsystem count mismatch: %d vs %d", len(c.Subs), len(donor.Subs))
	}
	for i := range c.Subs {
		if c.Subs[i].Stage != donor.Subs[i].Stage {
			return fmt.Errorf("adapt: subsystem %d has a different stage model", i)
		}
	}
	c.pe = donor.pe
	return nil
}

// PETableSlot is one built dense PE-fmax table in serializable form: the
// flat store slot it occupies, the bitmask of built budget columns, and
// the inverse-table values. The slot index encodes (subsystem, variant,
// vddIdx, vbbIdx, tempIdx) exactly as the dense store lays them out, so a
// chip's tables round-trip through JSON without re-deriving grid
// coordinates; float64 values survive encoding bit-for-bit
// (encoding/json emits shortest-round-trip literals). Columns whose Mask
// bit is clear were never built and carry no meaning.
type PETableSlot struct {
	Slot int                     `json:"slot"`
	Mask uint8                   `json:"mask"`
	FMax [len(peBudgets)]float64 `json:"fmax"`
}

// ExportPETables snapshots every dense PE-fmax table with at least one
// built budget column. Safe to call concurrently with readers and
// builders: the store mutex is held across the snapshot so no
// half-written column is observed. The overflow map (off-grid figure
// sweeps) is deliberately excluded — it is not on the experiment warm
// path.
func (c *Core) ExportPETables() []PETableSlot {
	var out []PETableSlot
	c.pe.mu.Lock()
	for slot := range c.pe.dense {
		if m := c.pe.built[slot].Load(); m != 0 {
			out = append(out, PETableSlot{Slot: slot, Mask: uint8(m), FMax: c.pe.dense[slot].fmax})
		}
	}
	c.pe.mu.Unlock()
	return out
}

// ImportPETables seeds the dense store with previously exported tables,
// skipping out-of-range slots (a floorplan or grid change between runs)
// and columns already built. Imported columns publish through the same
// atomic masks as lazily built ones, so concurrent readers are safe.
// Returns the number of (slot, column) entries newly filled.
func (c *Core) ImportPETables(tabs []PETableSlot) int {
	n := 0
	c.pe.mu.Lock()
	for _, t := range tabs {
		if t.Slot < 0 || t.Slot >= len(c.pe.dense) {
			continue
		}
		cur := c.pe.built[t.Slot].Load()
		add := uint32(t.Mask) &^ cur
		if add == 0 {
			continue
		}
		for bi := range peBudgets {
			if add>>bi&1 == 1 {
				c.pe.dense[t.Slot].fmax[bi] = t.FMax[bi]
				n++
			}
		}
		c.pe.built[t.Slot].Store(cur | add)
	}
	c.pe.mu.Unlock()
	return n
}

// WorkerView returns a core that shares this core's immutable models
// (stages, power, thermal, checker, limits) and its concurrency-safe
// PE-table store, but owns fresh solve-memoization maps. Views are how a
// worker pool divides one chip's solve work: each goroutine drives its own
// view, warm tables are shared, and the unsynchronized memo maps are
// never contended. Results are bitwise identical to the parent's.
func (c *Core) WorkerView() *Core {
	v := *c
	v.freqMemo = make(map[freqMemoKey]FreqResult)
	v.powerMemo = make(map[powerMemoKey]PowerResult)
	v.solver = thermal.NewSolver(c.Thermal)
	v.evalMemo = make(map[string]SystemState)
	v.evalKey = nil
	v.evalIns = nil
	return &v
}

// peKey identifies a cached PE-fmax table on the overflow (slow) path:
// the PE-limited fmax at a given device temperature depends only on the
// subsystem, the structural variant, the (Vdd, Vbb) point, and the
// temperature — not on TH or activity — so tables are computed once per
// chip and reused across every controller invocation.
type peKey struct {
	sub                int
	variant            vats.Variant
	vddMilli, vbbMilli int
	tIdx               int
}

// The structural variants the techniques of §3.3 can request. Only three
// exist in the system — identity, the 3/4-queue Shift, and the LowSlope
// Tilt — so the dense PE store enumerates them; anything else (figure
// generators sweep synthetic variants) goes to the overflow map.
const peNumVariants = 3

// variantIndex maps a variant to its dense-store index.
func variantIndex(v vats.Variant) (int, bool) {
	switch v {
	case vats.IdentityVariant():
		return 0, true
	case tech.QueueThreeQuarter.Variant():
		return 1, true
	case tech.FULowSlope.Variant():
		return 2, true
	}
	return 0, false
}

// peStore holds one chip's PE-fmax tables: a flat preallocated array
// indexed by (subsystem, variant, vddIdx, vbbIdx, tempIdx) for queries on
// the discrete actuation grids — no hashing, no pointer chasing — plus an
// overflow map for off-grid levels and exotic variants. Tables build on
// first touch.
//
// The store is safe for concurrent use by the cores that share it. Dense
// slots build one budget *column* at a time and publish through per-slot
// atomic column masks: the fast path is a single atomic load of
// built[slot] checked against the needed column bits, and builders take
// mu, re-check, fill the missing columns, and only then Store the widened
// mask — so a reader that observes a column's bit also observes the
// completed column, and each column is built at most once. Column
// laziness matters because a query touches at most two of the eight
// budget columns and the solver paths only ever probe a narrow budget
// band, so building whole tables eagerly wastes most of the
// erfc-dominated bisection work. The overflow map is guarded by the same
// mutex end to end, and scratch is the mutex-guarded curve arena every
// dense build reuses.
type peStore struct {
	nSubs    int
	dense    []peTable
	built    []atomic.Uint32
	mu       sync.Mutex
	overflow map[peKey]*peTable
	scratch  vats.Curve
}

func newPEStore(nSubs int) *peStore {
	n := nSubs * peNumVariants * tech.NumVddLevels * tech.NumVbbLevels * len(peTempsC)
	return &peStore{
		nSubs:    nSubs,
		dense:    make([]peTable, n),
		built:    make([]atomic.Uint32, n),
		overflow: make(map[peKey]*peTable),
	}
}

// peBudgets are the error-budget grid points of the cached inverse tables;
// queries interpolate in log-budget between them.
var peBudgets = [...]float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}

// peLogBudgets precomputes log10 of each budget grid point once; query
// interpolates against these instead of recomputing two logarithms per
// bracket probe (math.Log10 dominated the warm experiment profile).
var peLogBudgets = func() [len(peBudgets)]float64 {
	var lb [len(peBudgets)]float64
	for i, b := range peBudgets {
		lb[i] = math.Log10(b)
	}
	return lb
}()

// peTempsC are the device-temperature grid points (Celsius); queries
// interpolate linearly in temperature between adjacent tables. Hotter
// devices are slower, which is what turns high-activity subsystems (FUs,
// issue queues) into frequency limiters once ASV pushes power up (§6.2).
var peTempsC = [...]float64{45, 55, 65, 75, 85, 95}

type peTable struct {
	fmax [len(peBudgets)]float64
}

// peAllCols is the column mask of a fully built table.
const peAllCols = uint32(1)<<len(peBudgets) - 1

// peRef is a (subsystem, variant, Vdd, Vbb) coordinate resolved against
// the dense store once per scan, so the hot solve loops stop re-deriving
// variant and actuation-level indices (tech.VddIndex/VbbIndex round and
// compare per call) on every table touch.
type peRef struct {
	sub        int
	vi, di, bi int
	dense      bool
	v          vats.Variant
	vddV, vbbV float64
}

// peRefFor resolves the coordinate; off-grid levels and exotic variants
// yield a non-dense ref that routes to the overflow map.
func (c *Core) peRefFor(sub int, v vats.Variant, vddV, vbbV float64) peRef {
	r := peRef{sub: sub, v: v, vddV: vddV, vbbV: vbbV}
	if vi, ok := variantIndex(v); ok {
		if di, ok := tech.VddIndex(vddV); ok {
			if bi, ok := tech.VbbIndex(vbbV); ok {
				r.vi, r.di, r.bi, r.dense = vi, di, bi, true
			}
		}
	}
	return r
}

// slot returns the ref's dense-store slot at temperature index tIdx.
func (r *peRef) slot(tIdx int) int {
	return (((r.sub*peNumVariants+r.vi)*tech.NumVddLevels+r.di)*tech.NumVbbLevels+r.bi)*len(peTempsC) + tIdx
}

// budgetQuery is a stage budget resolved against the budget grid once per
// scan: the bracketing columns, the log-interpolation abscissa, and the
// bitmask of columns a query touches. The resolution reproduces query's
// branch structure exactly, so interpolated values are bit-identical.
type budgetQuery struct {
	lo, hi int
	lb     float64 // log10(budget); meaningful only when lo != hi
	need   uint32
}

func budgetQueryFor(budget float64) budgetQuery {
	if budget <= peBudgets[0] {
		return budgetQuery{lo: 0, hi: 0, need: 1}
	}
	last := len(peBudgets) - 1
	if budget >= peBudgets[last] {
		return budgetQuery{lo: last, hi: last, need: 1 << last}
	}
	lb := math.Log10(budget)
	for i := 0; i < last; i++ {
		if lb <= peLogBudgets[i+1] {
			return budgetQuery{lo: i, hi: i + 1, lb: lb, need: 3 << i}
		}
	}
	return budgetQuery{lo: last, hi: last, need: 1 << last}
}

// tempQuery is a device temperature resolved against the temperature grid
// once: the bracketing table indices and interpolation fraction. lo == hi
// encodes the clamped (single-table) cases.
type tempQuery struct {
	lo, hi int
	frac   float64
}

func tempQueryFor(tK float64) tempQuery {
	tC := tK - 273.15
	last := len(peTempsC) - 1
	switch {
	case tC <= peTempsC[0]:
		return tempQuery{}
	case tC >= peTempsC[last]:
		return tempQuery{lo: last, hi: last}
	}
	hi := 1
	for peTempsC[hi] < tC {
		hi++
	}
	lo := hi - 1
	return tempQuery{lo: lo, hi: hi, frac: (tC - peTempsC[lo]) / (peTempsC[hi] - peTempsC[lo])}
}

// tableRef returns (building the needed columns if necessary) the ref's
// inverse table at temperature grid index tIdx. Dense refs hit the flat
// store by index arithmetic alone; everything else falls back to the
// overflow map, which always builds all columns (it is the rare
// figure-sweep path and the reference the equivalence tests compare
// against).
func (c *Core) tableRef(ref *peRef, tIdx int, need uint32) *peTable {
	if !ref.dense {
		return c.overflowTable(ref, tIdx)
	}
	slot := ref.slot(tIdx)
	if c.pe.built[slot].Load()&need != need {
		c.pe.mu.Lock()
		c.buildColsLocked(slot, ref, tIdx, need)
		c.pe.mu.Unlock()
	}
	return &c.pe.dense[slot]
}

// buildColsLocked fills slot's missing columns from need. Caller holds
// c.pe.mu.
func (c *Core) buildColsLocked(slot int, ref *peRef, tIdx int, need uint32) {
	cur := c.pe.built[slot].Load()
	miss := need &^ cur
	if miss == 0 {
		return
	}
	tK := peTempsC[tIdx] + 273.15
	cv := c.Subs[ref.sub].Stage.EvalInto(
		vats.Cond{VddV: ref.vddV, VbbV: ref.vbbV, TK: tK}, ref.v, &c.pe.scratch)
	var bud, res [len(peBudgets)]float64
	var cols [len(peBudgets)]int
	k := 0
	for bi := range peBudgets {
		if miss>>bi&1 == 1 {
			cols[k], bud[k] = bi, peBudgets[bi]
			k++
		}
	}
	cv.FMaxForPESet(bud[:k], res[:k])
	tab := &c.pe.dense[slot]
	for j := 0; j < k; j++ {
		tab.fmax[cols[j]] = res[j]
	}
	c.pe.built[slot].Store(cur | miss)
}

// overflowTable returns (building if needed) the overflow-map table for
// an off-grid or exotic-variant coordinate.
func (c *Core) overflowTable(ref *peRef, tIdx int) *peTable {
	key := peKey{
		sub:      ref.sub,
		variant:  ref.v,
		vddMilli: int(math.Round(ref.vddV * 1000)),
		vbbMilli: int(math.Round(ref.vbbV * 1000)),
		tIdx:     tIdx,
	}
	c.pe.mu.Lock()
	tab, ok := c.pe.overflow[key]
	if !ok {
		tab = &peTable{}
		c.buildTable(tab, ref.sub, ref.v, ref.vddV, ref.vbbV, tIdx)
		c.pe.overflow[key] = tab
	}
	c.pe.mu.Unlock()
	return tab
}

// buildTable fills one inverse table from the stage's error curve, one
// independent FMaxForPE bisection per budget column — the reference
// builder the batched dense path is tested against (and the overflow
// path's builder).
func (c *Core) buildTable(tab *peTable, sub int, v vats.Variant, vddV, vbbV float64, tIdx int) {
	tK := peTempsC[tIdx] + 273.15
	curve := c.Subs[sub].Stage.Eval(vats.Cond{VddV: vddV, VbbV: vbbV, TK: tK}, v)
	for bi, b := range peBudgets {
		tab.fmax[bi] = curve.FMaxForPE(b)
	}
}

// peFMax returns the maximum relative frequency at which the subsystem's
// per-access error probability stays within budget when its devices sit at
// temperature tK, interpolated from the per-chip cache.
func (c *Core) peFMax(sub int, v vats.Variant, vddV, vbbV, budget, tK float64) float64 {
	ref := c.peRefFor(sub, v, vddV, vbbV)
	return c.peFMaxQ(&ref, budgetQueryFor(budget), tempQueryFor(tK))
}

// peFMaxQ is peFMax over pre-resolved coordinates: the scan loops resolve
// the ref and budget once and pay only the temperature bracket per call.
func (c *Core) peFMaxQ(ref *peRef, bq budgetQuery, tq tempQuery) float64 {
	if tq.lo == tq.hi {
		return c.tableRef(ref, tq.lo, bq.need).queryBQ(bq)
	}
	fLo := c.tableRef(ref, tq.lo, bq.need).queryBQ(bq)
	fHi := c.tableRef(ref, tq.hi, bq.need).queryBQ(bq)
	return fLo + tq.frac*(fHi-fLo)
}

// queryBQ interpolates the inverse table in log10(budget) using the
// pre-resolved bracket; bit-identical to interpolating from the raw
// budget (same columns, same abscissa, same expression).
func (t *peTable) queryBQ(q budgetQuery) float64 {
	if q.lo == q.hi {
		return t.fmax[q.lo]
	}
	lo, hi := peLogBudgets[q.lo], peLogBudgets[q.hi]
	frac := (q.lb - lo) / (hi - lo)
	return t.fmax[q.lo] + frac*(t.fmax[q.hi]-t.fmax[q.lo])
}

// SixInputs are the per-subsystem controller inputs of §4.1: the heat-sink
// temperature and activity factor (sensed at run time) plus the four
// manufacturer-measured constants.
type SixInputs struct {
	THK      float64
	RthKPerW float64
	KdynW    float64
	AlphaF   float64
	KstaW    float64
	Vt0EffV  float64
}

// Vector flattens the inputs for the fuzzy controllers.
func (s SixInputs) Vector() []float64 {
	a := s.Array()
	return a[:]
}

// Array flattens the inputs without allocating — the warm-path solver
// queries keep the vector on the stack.
func (s SixInputs) Array() [6]float64 {
	return [6]float64{s.THK, s.RthKPerW, s.KdynW, s.AlphaF, s.KstaW, s.Vt0EffV}
}

// Inputs assembles the six controller inputs for subsystem i.
func (c *Core) Inputs(i int, thK, alphaF float64) SixInputs {
	return SixInputs{
		THK:      thK,
		RthKPerW: c.Thermal.Rth(i),
		KdynW:    c.Power.Kdyn(i),
		AlphaF:   alphaF,
		KstaW:    c.Power.Ksta(i),
		Vt0EffV:  c.Subs[i].Vt0EffV,
	}
}

// FreqQuery parameterizes one per-subsystem Freq solve.
type FreqQuery struct {
	THK     float64
	AlphaF  float64 // accesses per cycle (power/thermal)
	Rho     float64 // accesses per instruction (PE budget weighting)
	Variant vats.Variant
	// PowerMult reflects the structure choice (LowSlope FU: 1.3).
	PowerMult float64
}

// FreqResult is the outcome of a Freq solve: the subsystem's maximum
// feasible frequency and the (Vdd, Vbb) that achieves it.
type FreqResult struct {
	FMax float64
	VddV float64
	VbbV float64
}

// stageBudget converts the processor-wide PE limit into this stage's
// per-access budget: the paper conservatively gives each of the n
// subsystems PEMAX/n per instruction, and rho accesses per instruction
// share it.
func (c *Core) stageBudget(rho float64) float64 {
	perSub := c.Limits.PEMax / float64(c.N())
	if rho < 1e-3 {
		rho = 1e-3 // a nearly idle stage still gets a finite budget
	}
	return perSub / rho
}

// comboFMax finds the highest frequency subsystem i supports at a fixed
// (Vdd, Vbb): the paper's per-combination step of the Freq algorithm, which
// "computes, for each f, Vdd, and Vbb value combination, the resulting
// subsystem T and PE". The thermal cap is closed-form; the error cap is the
// fixed point of f = fPE(T_steady(f)), found by damped iteration (fPE
// decreases in T, T increases in f).
func (c *Core) comboFMax(i int, q FreqQuery, vdd, vbb, budget float64) float64 {
	ref := c.peRefFor(i, q.Variant, vdd, vbb)
	return c.comboFMaxRef(i, q, &ref, budgetQueryFor(budget))
}

// comboFMaxRef is comboFMax over a pre-resolved (Vdd, Vbb) ref and budget
// bracket, for the scan loops that resolve them once per combo/scan.
func (c *Core) comboFMaxRef(i int, q FreqQuery, ref *peRef, bq budgetQuery) float64 {
	in := thermal.SubsystemInput{
		Index:     i,
		Vt0Eff:    c.Subs[i].Vt0EffV,
		AlphaF:    q.AlphaF,
		VddV:      ref.vddV,
		VbbV:      ref.vbbV,
		PowerMult: q.PowerMult,
	}
	fT := c.Thermal.FRelMaxForTemp(in, q.THK, c.Limits.TMaxK)
	if fT <= tech.FRelMin {
		return 0
	}
	// Start from the conservative hottest-case estimate and relax.
	f := math.Min(c.peFMaxQ(ref, bq, tempQueryFor(c.Limits.TMaxK)), fT)
	for iter := 0; iter < 4; iter++ {
		in.FRel = math.Min(f, tech.FRelMax)
		st := c.Thermal.SubsystemSteady(in, q.THK)
		tK := math.Min(st.TK, c.Limits.TMaxK)
		fNew := math.Min(c.peFMaxQ(ref, bq, tempQueryFor(tK)), fT)
		if math.Abs(fNew-f) < tech.FRelStep/4 {
			f = math.Min(f, fNew)
			break
		}
		f = 0.5*f + 0.5*fNew
	}
	return f
}

// freqMemoKey identifies one FreqSolve invocation exactly: the float
// inputs are keyed by their bit patterns (no quantization), so a memo hit
// returns the very result the scan would have produced and summaries stay
// bit-for-bit identical. Repeated phases, the Static conservative
// profiles, and the retune ramps present identical queries constantly.
type freqMemoKey struct {
	sub                    int
	thk, alpha, rho, pmult uint64
	variant                vats.Variant
}

// powerMemoKey additionally pins the core frequency.
type powerMemoKey struct {
	freq  freqMemoKey
	fcore uint64
}

// solveMemoCap bounds each memo map; once full, new entries are simply
// not inserted (deterministic, unlike eviction).
const solveMemoCap = 1 << 15

func memoKeyFor(i int, q FreqQuery) freqMemoKey {
	return freqMemoKey{
		sub:     i,
		thk:     math.Float64bits(q.THK),
		alpha:   math.Float64bits(q.AlphaF),
		rho:     math.Float64bits(q.Rho),
		pmult:   math.Float64bits(q.PowerMult),
		variant: q.Variant,
	}
}

// FreqSolve runs the exhaustive Freq algorithm of §4.2 for subsystem i:
// over all (Vdd, Vbb) levels, the highest frequency that violates neither
// the temperature cap nor the stage's share of the error budget, with the
// subsystem's delay evaluated at its own steady-state temperature.
// Solutions are memoized per exact query (the level grids are fixed by
// the core's configuration).
func (c *Core) FreqSolve(i int, q FreqQuery) FreqResult {
	if c.DisablePruning {
		return c.FreqSolveAt(i, q, c.Config.VddLevels(nominalVdd), c.Config.VbbLevels())
	}
	key := memoKeyFor(i, q)
	if r, ok := c.freqMemo[key]; ok {
		c.Obs.Counter("adapt.freq.memo_hits").Inc()
		return r
	}
	r := c.FreqSolveAt(i, q, c.Config.VddLevels(nominalVdd), c.Config.VbbLevels())
	if len(c.freqMemo) < solveMemoCap {
		c.freqMemo[key] = r
	}
	return r
}

// FreqSolveAt is FreqSolve restricted to explicit actuation-level lists —
// used by ablations such as a single chip-wide ASV domain. Never memoized
// (the level lists are caller state), but still pruned.
func (c *Core) FreqSolveAt(i int, q FreqQuery, vdds, vbbs []float64) FreqResult {
	budget := c.stageBudget(q.Rho)
	bq := budgetQueryFor(budget)
	// Devices can be no cooler than the heat sink, and the PE-limited
	// fmax falls with temperature, so fPE at the sink temperature (capped
	// at TMAX, matching comboFMax's clamp) upper-bounds every damped
	// iterate of comboFMax. A combo whose bound cannot beat the incumbent
	// after the snap cannot win the scan and is skipped outright.
	sinkT := math.Min(q.THK, c.Limits.TMaxK)
	stq := tempQueryFor(sinkT)
	if !c.DisablePruning {
		// The bound loop is about to touch the sink-temperature tables of
		// every on-grid combo: build their needed budget columns for the
		// whole (vdds × vbbs) slab in one sweep under one lock, sharing
		// the curve scratch, instead of paying a lock round-trip and a
		// cold build per combo. Values are identical to lazy builds — the
		// sweep just front-loads them.
		c.buildSlab(i, q.Variant, vdds, vbbs, stq, bq.need)
	}
	pruned := 0
	var best FreqResult
	for _, vdd := range vdds {
		for _, vbb := range vbbs {
			ref := c.peRefFor(i, q.Variant, vdd, vbb)
			if best.FMax > 0 && !c.DisablePruning {
				bound := c.peFMaxQ(&ref, bq, stq)
				if tech.SnapFRelDown(math.Min(bound, tech.FRelMax)) <= best.FMax+1e-12 {
					pruned++
					continue
				}
			}
			f := c.comboFMaxRef(i, q, &ref, bq)
			f = tech.SnapFRelDown(math.Min(f, tech.FRelMax))
			if f > best.FMax+1e-12 {
				best = FreqResult{FMax: f, VddV: vdd, VbbV: vbb}
			}
		}
	}
	if pruned > 0 {
		c.Obs.Counter("adapt.freq.pruned_combos").Add(int64(pruned))
	}
	return best
}

// buildSlab builds the needed budget columns of the temperature-bracket
// tables for every on-grid (vdd, vbb) combination in one pass: one lock
// acquisition, one shared curve scratch, one joint bisection per table.
// This is the grid-wide batched kernel behind FreqSolveAt — per-cell lazy
// builds would re-derive the same setup (level indices, curve arena,
// bracket probes) hundreds of times per scan. Off-grid levels are left to
// the overflow path.
func (c *Core) buildSlab(sub int, v vats.Variant, vdds, vbbs []float64, tq tempQuery, need uint32) {
	vi, ok := variantIndex(v)
	if !ok {
		return
	}
	c.pe.mu.Lock()
	for tIdx := tq.lo; ; tIdx = tq.hi {
		for _, vdd := range vdds {
			di, ok := tech.VddIndex(vdd)
			if !ok {
				continue
			}
			for _, vbb := range vbbs {
				bi, ok := tech.VbbIndex(vbb)
				if !ok {
					continue
				}
				ref := peRef{sub: sub, vi: vi, di: di, bi: bi, dense: true,
					v: v, vddV: vdd, vbbV: vbb}
				c.buildColsLocked(ref.slot(tIdx), &ref, tIdx, need)
			}
		}
		if tIdx == tq.hi {
			break
		}
	}
	c.pe.mu.Unlock()
}

// nominalVdd is the design supply; tech.Config pins Vdd here without ASV.
const nominalVdd = 1.0

// PowerResult is the outcome of a Power solve.
type PowerResult struct {
	VddV, VbbV float64
	State      thermal.SubsystemState
	Feasible   bool
}

// PowerSolve runs the exhaustive Power algorithm of §4.2 for subsystem i:
// given the chosen core frequency, the (Vdd, Vbb) that minimizes subsystem
// power while still meeting the frequency at the temperature and error
// constraints. If no level pair meets fCore, the fastest pair is returned
// with Feasible=false (retuning will pull the core frequency down).
// Solutions are memoized per exact (query, fCore) pair.
func (c *Core) PowerSolve(i int, fCore float64, q FreqQuery) PowerResult {
	if c.DisablePruning {
		return c.powerSolveScan(i, fCore, q)
	}
	key := powerMemoKey{freq: memoKeyFor(i, q), fcore: math.Float64bits(fCore)}
	if r, ok := c.powerMemo[key]; ok {
		c.Obs.Counter("adapt.power.memo_hits").Inc()
		return r
	}
	r := c.powerSolveScan(i, fCore, q)
	if len(c.powerMemo) < solveMemoCap {
		c.powerMemo[key] = r
	}
	return r
}

// powerSolveScan is the uncached Power scan.
func (c *Core) powerSolveScan(i int, fCore float64, q FreqQuery) PowerResult {
	budget := c.stageBudget(q.Rho)
	bq := budgetQueryFor(budget)
	thq := tempQueryFor(q.THK)
	var best PowerResult
	bestPower := math.Inf(1)
	mult := q.PowerMult
	if mult == 0 {
		mult = 1
	}
	// The scan is exhaustive over the level grid, but exact lower bounds
	// prune combinations that cannot beat the best found so far: dynamic
	// power is closed-form and grows with Vdd (levels ascend, so once it
	// alone exceeds the best, every remaining level loses), and static
	// power at the heat-sink temperature lower-bounds static power at the
	// subsystem's steady temperature.
	for _, vdd := range c.Config.VddLevels(nominalVdd) {
		pdyn := mult * c.Power.Pdyn(i, q.AlphaF, vdd, fCore)
		if pdyn >= bestPower {
			break
		}
		for _, vbb := range c.Config.VbbLevels() {
			pstaMin := mult * c.Power.Psta(i,
				vtAtSink(c, i, q.THK, vdd, vbb), vdd, q.THK)
			if pdyn+pstaMin >= bestPower {
				continue
			}
			ref := c.peRefFor(i, q.Variant, vdd, vbb)
			// Devices can be no cooler than the heat sink, and fPE falls
			// with temperature — so infeasibility at the sink temperature
			// is infeasibility, without a thermal solve.
			if c.peFMaxQ(&ref, bq, thq) < fCore-1e-9 {
				continue
			}
			in := thermal.SubsystemInput{
				Index:     i,
				Vt0Eff:    c.Subs[i].Vt0EffV,
				AlphaF:    q.AlphaF,
				VddV:      vdd,
				VbbV:      vbb,
				FRel:      fCore,
				PowerMult: q.PowerMult,
			}
			st := c.Thermal.SubsystemSteady(in, q.THK)
			fPE := c.peFMaxQ(&ref, bq, tempQueryFor(math.Min(st.TK, c.Limits.TMaxK)))
			feasible := fPE >= fCore-1e-9 && st.Converged && st.TK <= c.Limits.TMaxK+1e-9
			if feasible && st.PowerW() < bestPower {
				bestPower = st.PowerW()
				best = PowerResult{VddV: vdd, VbbV: vbb, State: st, Feasible: true}
			}
		}
	}
	if best.Feasible {
		return best
	}
	// No level pair meets fCore: fall back to the fastest pair (retuning
	// will pull the core frequency down). Computed only on this cold path,
	// since it costs a full frequency solve per pair. Only the argmax
	// needs a thermal state — interim leaders' states are never read — so
	// the steady solve runs once for the winner; the selection comparisons
	// are unchanged, so the winner and its cold-start state are identical
	// to solving per leader.
	var fastest PowerResult
	fastestF := -1.0
	for _, vdd := range c.Config.VddLevels(nominalVdd) {
		for _, vbb := range c.Config.VbbLevels() {
			if f := c.comboFMax(i, q, vdd, vbb, budget); f > fastestF {
				fastestF = f
				fastest = PowerResult{VddV: vdd, VbbV: vbb, Feasible: false}
			}
		}
	}
	if fastestF >= 0 {
		in := thermal.SubsystemInput{
			Index: i, Vt0Eff: c.Subs[i].Vt0EffV, AlphaF: q.AlphaF,
			VddV: fastest.VddV, VbbV: fastest.VbbV, FRel: fCore, PowerMult: q.PowerMult,
		}
		fastest.State = c.Thermal.SubsystemSteady(in, q.THK)
	}
	return fastest
}

// vtAtSink returns the subsystem's operating Vt if its devices sat exactly
// at the heat-sink temperature — the coolest (least leaky) it can be.
func vtAtSink(c *Core, i int, thK, vdd, vbb float64) float64 {
	return c.Subs[i].Stage.VariusParams().VtAt(c.Subs[i].Vt0EffV, thK, vdd, vbb)
}

// rhoFor converts a measured per-cycle activity factor into accesses per
// instruction, the weight of Eq. 4.
func rhoFor(alphaF, cpi float64) float64 {
	if cpi <= 0 {
		return alphaF
	}
	return alphaF * cpi
}

// classFor reports whether subsystem id is active for the application
// class: FP-only structures idle (clock-gated) under integer codes and
// vice versa, which is why the paper adapts "integer or FP units depending
// on the type of application running".
func classActive(sub floorplan.Subsystem, class workload.Class) bool {
	if class == workload.FP {
		return sub.FPSide
	}
	return sub.IntSide
}
