package adapt

import (
	"math/bits"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tech"
	"repro/internal/vats"
)

// evalPoints builds a small grid of operating points spanning clean and
// violated regions, with repeats so the memo has something to hit.
func evalPoints(n int) []OperatingPoint {
	mk := func(f, vdd, vbb float64) OperatingPoint {
		op := OperatingPoint{FCore: f, VddV: make([]float64, n), VbbV: make([]float64, n)}
		for i := range op.VddV {
			op.VddV[i] = vdd
			op.VbbV[i] = vbb
		}
		return op
	}
	return []OperatingPoint{
		mk(tech.FRelMin, 1.0, 0),
		mk(1.0, 1.05, 0),
		mk(1.1, tech.VddMaxV, 0),
		mk(tech.FRelMin, 1.0, 0), // repeat of point 0: a memo hit
		mk(1.0, 1.05, 0),         // repeat of point 1
	}
}

// sameState compares SystemStates bitwise (CoreState holds a slice, so ==
// does not apply).
func sameState(a, b SystemState) bool {
	if a.PE != b.PE || a.PerfRel != b.PerfRel || a.TotalW != b.TotalW ||
		a.ErrViol != b.ErrViol || a.TempViol != b.TempViol || a.PowerViol != b.PowerViol {
		return false
	}
	if a.Core.THK != b.Core.THK || a.Core.UncoreW != b.Core.UncoreW ||
		a.Core.TotalW != b.Core.TotalW || len(a.Core.Subs) != len(b.Core.Subs) {
		return false
	}
	for i := range a.Core.Subs {
		if a.Core.Subs[i] != b.Core.Subs[i] {
			return false
		}
	}
	return true
}

// TestEvaluateMemoHitsAndIdentity: repeated Evaluate calls at the same
// operating point must be served from the core's memo (visible in the
// core.memo.* counters) and return byte-identical states.
func TestEvaluateMemoHitsAndIdentity(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 31, preferred)
	reg := obs.NewRegistry()
	core.Obs = reg
	pts := evalPoints(core.N())
	first := make([]SystemState, len(pts))
	for i, op := range pts {
		st, err := core.Evaluate(op, gcc)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = st
	}
	if hits := reg.Counter("core.memo.evaluate_hits").Value(); hits < 2 {
		t.Errorf("evaluate memo hits = %d, want >= 2 (grid repeats)", hits)
	}
	for i, op := range pts {
		st, err := core.Evaluate(op, gcc)
		if err != nil {
			t.Fatal(err)
		}
		if !sameState(st, first[i]) {
			t.Errorf("point %d: memoized state %+v != first evaluation %+v", i, st, first[i])
		}
	}
	if misses := reg.Counter("core.memo.evaluate_misses").Value(); misses != 3 {
		t.Errorf("evaluate memo misses = %d, want 3 distinct points", misses)
	}
}

// TestEvaluateMemoDisabledByPruningKnob: the reference mode must bypass
// the memo entirely, like every other fast path behind DisablePruning.
func TestEvaluateMemoDisabledByPruningKnob(t *testing.T) {
	gcc, _ := profiles(t)
	core := buildCore(t, 31, preferred)
	core.DisablePruning = true
	reg := obs.NewRegistry()
	core.Obs = reg
	op := evalPoints(core.N())[0]
	for i := 0; i < 3; i++ {
		if _, err := core.Evaluate(op, gcc); err != nil {
			t.Fatal(err)
		}
	}
	if hits := reg.Counter("core.memo.evaluate_hits").Value(); hits != 0 {
		t.Errorf("reference mode took %d memo hits, want 0", hits)
	}
}

// TestConcurrentWorkerViewEvaluate drives per-worker views from racing
// goroutines (the -race concurrent-memo test): each view owns its solver
// scratch and Evaluate memo, so concurrent phase evaluations must be both
// race-free and bitwise equal to a serial core's answers.
func TestConcurrentWorkerViewEvaluate(t *testing.T) {
	gcc, swim := profiles(t)
	profs := []pipeline.Profile{gcc, swim}
	parent := buildCore(t, 32, preferred)
	serial := buildCore(t, 32, preferred)
	pts := evalPoints(parent.N())
	want := make(map[[2]int]SystemState)
	for pi, op := range pts {
		for fi, prof := range profs {
			st, err := serial.Evaluate(op, prof)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]int{pi, fi}] = st
		}
	}
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := parent.WorkerView()
			// Two passes: the second is served from the view's own memo
			// and must not change answers.
			for pass := 0; pass < 2; pass++ {
				for pi, op := range pts {
					for fi, prof := range profs {
						st, err := view.Evaluate(op, prof)
						if err != nil {
							errs <- err.Error()
							return
						}
						if !sameState(st, want[[2]int{pi, fi}]) {
							errs <- "concurrent view Evaluate diverged from serial core"
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestPETableExportImportRoundtrip: tables built by one core must import
// into a fresh core over the same chip and yield bitwise-identical solves
// without rebuilding (the persistence path cache.go rides on).
func TestPETableExportImportRoundtrip(t *testing.T) {
	builder := buildCore(t, 33, allConfig)
	q := FreqQuery{THK: thTest, AlphaF: 0.4, Rho: 0.9, Variant: vats.IdentityVariant(), PowerMult: 1}
	want := make([]FreqResult, builder.N())
	for i := range want {
		want[i] = builder.FreqSolve(i, q)
	}
	tabs := builder.ExportPETables()
	if len(tabs) == 0 {
		t.Fatal("no PE tables exported after a full solve sweep")
	}

	cols := 0
	for _, tb := range tabs {
		cols += bits.OnesCount8(tb.Mask)
	}
	fresh := buildCore(t, 33, allConfig)
	if n := fresh.ImportPETables(tabs); n != cols {
		t.Fatalf("imported %d of %d table columns into a cold core", n, cols)
	}
	// Re-import must be a no-op: every exported column is already built.
	if n := fresh.ImportPETables(tabs); n != 0 {
		t.Fatalf("second import filled %d columns, want 0", n)
	}
	for i := range want {
		if got := fresh.FreqSolve(i, q); got != want[i] {
			t.Fatalf("sub %d: imported-table solve %+v != builder's %+v", i, got, want[i])
		}
	}
	// The warmed core exports what it imported (nothing new was built for
	// this query), so cache.go's "skip write when nothing new" guard holds.
	if again := fresh.ExportPETables(); len(again) < len(tabs) {
		t.Fatalf("re-export lost tables: %d < %d", len(again), len(tabs))
	}
}
