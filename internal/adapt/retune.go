package adapt

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
	"repro/internal/tech"
)

// Outcome classifies one controller invocation, as in Figure 13.
type Outcome int

const (
	// OutcomeNoChange: no constraint violated and the first attempt to
	// raise f fails — the controller's output was (near-)optimal.
	OutcomeNoChange Outcome = iota
	// OutcomeLowFreq: no constraint violated but retuning found headroom
	// to raise f.
	OutcomeLowFreq
	// OutcomeError: the configuration violated PEMAX and retuning had to
	// lower f.
	OutcomeError
	// OutcomeTemp: the configuration violated TMAX / TH_MAX.
	OutcomeTemp
	// OutcomePower: the configuration violated PMAX.
	OutcomePower
	NumOutcomes // sentinel
)

// String names the outcome as the paper's Figure 13 legend does.
func (o Outcome) String() string {
	switch o {
	case OutcomeNoChange:
		return "NoChange"
	case OutcomeLowFreq:
		return "LowFreq"
	case OutcomeError:
		return "Error"
	case OutcomeTemp:
		return "Temp"
	case OutcomePower:
		return "Power"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// RetuneResult is the final, constraint-respecting configuration after the
// hardware retuning cycles of §4.3.3.
type RetuneResult struct {
	Point   OperatingPoint
	State   SystemState
	Outcome Outcome
	// Steps counts evaluate-adjust iterations the hardware performed.
	Steps int
}

// outcomeCounters pre-builds the metric name of each outcome so the hot
// path records without allocating.
var outcomeCounters = [NumOutcomes]string{
	OutcomeNoChange: "adapt.outcome.NoChange",
	OutcomeLowFreq:  "adapt.outcome.LowFreq",
	OutcomeError:    "adapt.outcome.Error",
	OutcomeTemp:     "adapt.outcome.Temp",
	OutcomePower:    "adapt.outcome.Power",
}

// record books one finished retune into the core's metrics registry.
func (c *Core) record(res RetuneResult) RetuneResult {
	c.Obs.Counter("adapt.retune.invocations").Inc()
	c.Obs.Counter("adapt.retune.cycles").Add(int64(res.Steps))
	if res.Outcome >= 0 && res.Outcome < NumOutcomes {
		c.Obs.Counter(outcomeCounters[res.Outcome]).Inc()
	}
	return res
}

// classify maps the initial violation to its Figure 13 category. The error
// sensor trips fastest (within the phase), then thermal, then power (§4.3.3
// gives error violations the shortest detection latency).
func classify(st SystemState) Outcome {
	switch {
	case st.ErrViol:
		return OutcomeError
	case st.TempViol:
		return OutcomeTemp
	case st.PowerViol:
		return OutcomePower
	default:
		return OutcomeNoChange
	}
}

// Retune applies the retuning cycles: if the proposed configuration
// violates a constraint, frequency backs off exponentially (1, 2, 4, 8
// steps) without re-running the controller until the violation clears, then
// ramps back up in single steps to just below the violation point. If the
// configuration is clean, single up-steps probe for headroom (the LowFreq
// vs NoChange distinction). Voltages are never touched — only f moves.
func (c *Core) Retune(op OperatingPoint, prof pipeline.Profile) (RetuneResult, error) {
	st, err := c.Evaluate(op, prof)
	if err != nil {
		return RetuneResult{}, err
	}
	outcome := classify(st)
	steps := 1
	cur := op.Clone()

	if st.Violated() {
		// Exponential back-off: 1, 2, 4, 8 steps, then repeat 8s.
		back := 1
		for st.Violated() && cur.FCore > tech.FRelMin+1e-9 {
			cur.FCore = tech.SnapFRelDown(cur.FCore - float64(back)*tech.FRelStep)
			if cur.FCore < tech.FRelMin {
				cur.FCore = tech.FRelMin
			}
			st, err = c.Evaluate(cur, prof)
			if err != nil {
				return RetuneResult{}, err
			}
			steps++
			if back < 8 {
				back *= 2
			}
		}
		// Gradual single-step ramp back up to just below violation.
		for cur.FCore < tech.FRelMax-1e-9 {
			probe := cur.Clone()
			probe.FCore = tech.SnapFRelDown(probe.FCore + tech.FRelStep + 1e-9)
			pst, err := c.Evaluate(probe, prof)
			if err != nil {
				return RetuneResult{}, err
			}
			steps++
			if pst.Violated() {
				break
			}
			cur, st = probe, pst
		}
		return c.record(RetuneResult{Point: cur, State: st, Outcome: outcome, Steps: steps}), nil
	}

	// Clean configuration: probe upward for headroom.
	raised := false
	for cur.FCore < tech.FRelMax-1e-9 {
		probe := cur.Clone()
		probe.FCore = tech.SnapFRelDown(probe.FCore + tech.FRelStep + 1e-9)
		pst, err := c.Evaluate(probe, prof)
		if err != nil {
			return RetuneResult{}, err
		}
		steps++
		if pst.Violated() {
			break
		}
		cur, st = probe, pst
		raised = true
	}
	if raised {
		outcome = OutcomeLowFreq
	}
	return c.record(RetuneResult{Point: cur, State: st, Outcome: outcome, Steps: steps}), nil
}

// AdaptPhase is the complete §4.3.3 sequence for one new phase: run the
// controller (Propose) and let the hardware retune the result.
func (c *Core) AdaptPhase(prof pipeline.Profile, thK float64, solver Solver) (RetuneResult, error) {
	prop, err := c.Propose(prof, thK, solver)
	if err != nil {
		return RetuneResult{}, err
	}
	return c.Retune(prop.Point, prof)
}

// AdaptSteady models the long-run behavior of a stable phase: the heat-sink
// temperature has a time constant of tens of seconds (§4.1) and is
// re-sensed every 2-3 s, after which the controller re-adapts, so the
// system settles into a fixed point where the configuration chosen at the
// sensed TH reproduces that TH. The returned outcome is that of the last
// (steady) controller invocation.
func (c *Core) AdaptSteady(prof pipeline.Profile, solver Solver) (RetuneResult, error) {
	th := c.Thermal.Params().THBaseK + 10 // initial sensor reading guess
	var res RetuneResult
	var err error
	for iter := 0; iter < 8; iter++ {
		res, err = c.AdaptPhase(prof, th, solver)
		if err != nil {
			return RetuneResult{}, err
		}
		newTH := res.State.Core.THK
		if newTH == 0 || math.IsInf(newTH, 0) {
			// Unconverged thermal state: treat the previous sensed value
			// as the best available and stop.
			break
		}
		if math.Abs(newTH-th) < 0.5 {
			return res, nil
		}
		th = 0.5*th + 0.5*newTH
	}
	return res, nil
}
