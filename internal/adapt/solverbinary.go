package adapt

import (
	"fmt"
	"sort"

	"repro/internal/artifact"
	"repro/internal/fuzzy"
	"repro/internal/vats"
)

// solverBinVersion is the solver payload's binary format version,
// independent of the artifact kind version (decoders sniff the format).
const solverBinVersion = 1

// MarshalBinary serializes the solver's controllers in the artifact
// store's columnar form — the same shippable tables MarshalJSON writes,
// with every weight matrix as contiguous little-endian float64 blocks.
// Entries are sorted like the JSON form, so the encoding is
// deterministic.
func (s *FuzzySolver) MarshalBinary() ([]byte, error) {
	type entry struct {
		key fcKey
	}
	entries := make([]entry, 0, len(s.freq))
	for key := range s.freq {
		entries = append(entries, entry{key: key})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].key, entries[j].key
		if a.sub != b.sub {
			return a.sub < b.sub
		}
		return a.variant.MeanScale < b.variant.MeanScale
	})

	var e artifact.Enc
	e.Tag(solverBinVersion)
	e.F64(s.minBiasComp)
	e.Uvarint(uint64(len(entries)))
	for _, en := range entries {
		key := en.key
		freq, vdd, vbb := s.freq[key], s.vdd[key], s.vbb[key]
		if freq == nil || vdd == nil || vbb == nil {
			return nil, fmt.Errorf("adapt: solver entry for sub %d has nil controllers", key.sub)
		}
		e.Varint(int64(key.sub))
		e.F64(key.variant.MeanScale)
		e.F64(key.variant.SigmaScale)
		e.Bool(key.variant.PreserveWall)
		e.F64(s.freqBias[key])
		freq.AppendBinary(&e)
		vdd.AppendBinary(&e)
		vbb.AppendBinary(&e)
	}
	return e.B, nil
}

// UnmarshalBinary restores a solver encoded by MarshalBinary.
func (s *FuzzySolver) UnmarshalBinary(data []byte) error {
	d := artifact.NewDec(data)
	if v := d.Tag(); d.Err() == nil && v != solverBinVersion {
		return fmt.Errorf("adapt: corrupt solver state: binary version %d", v)
	}
	minBiasComp := d.F64()
	n := d.Uvarint()
	if d.Err() != nil || n > 1<<16 {
		return fmt.Errorf("adapt: corrupt solver state: %w", d.Err())
	}
	s.freq = make(map[fcKey]*fuzzy.Controller, n)
	s.vdd = make(map[fcKey]*fuzzy.Controller, n)
	s.vbb = make(map[fcKey]*fuzzy.Controller, n)
	s.freqBias = make(map[fcKey]float64, n)
	s.minBiasComp = minBiasComp
	for i := uint64(0); i < n; i++ {
		sub := int(d.Varint())
		variant := vats.Variant{
			MeanScale:    d.F64(),
			SigmaScale:   d.F64(),
			PreserveWall: d.Bool(),
		}
		bias := d.F64()
		freq, vdd, vbb := new(fuzzy.Controller), new(fuzzy.Controller), new(fuzzy.Controller)
		for _, fc := range []*fuzzy.Controller{freq, vdd, vbb} {
			if err := fc.DecodeBinary(d); err != nil {
				return fmt.Errorf("adapt: corrupt solver state for sub %d: %w", sub, err)
			}
		}
		key := fcKey{sub: sub, variant: variant}
		s.freq[key] = freq
		s.vdd[key] = vdd
		s.vbb[key] = vbb
		s.freqBias[key] = bias
	}
	if err := d.Done(); err != nil {
		return fmt.Errorf("adapt: corrupt solver state: %w", err)
	}
	return nil
}
