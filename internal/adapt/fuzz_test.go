package adapt

import (
	"math"
	"sync"
	"testing"

	"repro/internal/vats"
)

// fuzzSolveState lazily builds the pruned/unpruned core pair once per
// fuzz process and serializes solve calls (FreqSolve mutates the memo
// and the shared PE-table store).
var fuzzSolveState struct {
	once     sync.Once
	mu       sync.Mutex
	pruned   *Core
	unpruned *Core
}

// clampFinite folds an arbitrary fuzzer float into [lo, hi], mapping
// NaN/Inf onto lo so every input reaches the solver.
func clampFinite(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return lo
	}
	return math.Min(hi, math.Max(lo, x))
}

// FuzzFreqSolvePrunedVsUnpruned fuzzes the Freq algorithm's bound-based
// combo pruning (and its memo) against the exhaustive reference scan:
// for any on-range query, the pruned solve must return the exact same
// (FMax, Vdd, Vbb) as the unpruned one. A pruning bound that is not a
// true upper bound shows up here as a divergence.
func FuzzFreqSolvePrunedVsUnpruned(f *testing.F) {
	f.Add(uint8(0), 62+273.15, 0.6, 1.2, 1.0)
	f.Add(uint8(3), 48+273.15, 0.02, 0.09, 0.8)
	f.Add(uint8(7), 68+273.15, 1.0, 4.5, 1.3)
	f.Fuzz(func(t *testing.T, sub uint8, thK, alpha, rho, pmult float64) {
		st := &fuzzSolveState
		st.once.Do(func() {
			st.pruned = buildCore(t, 4, allConfig)
			st.unpruned = buildCore(t, 4, allConfig)
			st.unpruned.DisablePruning = true
		})
		q := FreqQuery{
			// The controller's operating ranges (Table 2 draws plus margin).
			THK:       clampFinite(thK, 40+273.15, 75+273.15),
			AlphaF:    clampFinite(alpha, 0.02, 1.0),
			Rho:       clampFinite(rho, 0.02, 5.0),
			Variant:   vats.IdentityVariant(),
			PowerMult: clampFinite(pmult, 0.5, 1.5),
		}
		i := int(sub) % st.pruned.N()
		st.mu.Lock()
		defer st.mu.Unlock()
		got := st.pruned.FreqSolve(i, q)
		want := st.unpruned.FreqSolve(i, q)
		if got != want {
			t.Fatalf("sub %d query %+v: pruned solve %+v != unpruned %+v", i, q, got, want)
		}
	})
}
