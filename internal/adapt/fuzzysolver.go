package adapt

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/fuzzy"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/vats"
)

// fcKey identifies one fuzzy controller: a subsystem with a structural
// variant. Each subsystem has an fmax controller (Freq algorithm) and Vdd
// and Vbb controllers (Power algorithm) per variant, matching Figure 3.
type fcKey struct {
	sub     int
	variant vats.Variant
}

// FuzzySolver answers Freq/Power queries with trained fuzzy controllers
// (§4.3.1). Predictions are snapped to the hardware's discrete levels; any
// residual misestimate is repaired by retuning cycles, exactly as the paper
// argues in §6.3.
type FuzzySolver struct {
	freq map[fcKey]*fuzzy.Controller // 6 inputs -> fmax
	vdd  map[fcKey]*fuzzy.Controller // 6 inputs + fcore -> Vdd
	vbb  map[fcKey]*fuzzy.Controller // 6 inputs + fcore -> Vbb
	// freqBias is each frequency controller's mean training residual
	// (prediction - truth), subtracted at query time.
	freqBias map[fcKey]float64
	// minBiasComp compensates the selection bias of taking the minimum
	// over n noisy per-subsystem estimates, which is otherwise biased low
	// by roughly one estimator sigma; without it every controller
	// invocation ends as a LowFreq retune instead of the paper's
	// Figure 13 mix.
	minBiasComp float64
}

// Name implements Solver.
func (*FuzzySolver) Name() string { return "fuzzy" }

// FreqMax implements Solver. Unknown (subsystem, variant) pairs — which
// cannot occur for solvers trained with TrainFuzzySolver on the same
// configuration — fall back to the exhaustive search.
func (s *FuzzySolver) FreqMax(c *Core, i int, q FreqQuery) float64 {
	fc, ok := s.freq[fcKey{sub: i, variant: q.Variant}]
	if !ok {
		return (Exhaustive{}).FreqMax(c, i, q)
	}
	x := c.Inputs(i, q.THK, q.AlphaF).Array()
	pred, err := fc.Predict(x[:])
	if err != nil {
		return (Exhaustive{}).FreqMax(c, i, q)
	}
	pred -= s.freqBias[fcKey{sub: i, variant: q.Variant}]
	pred += s.minBiasComp
	// Snap to the *nearest* frequency step rather than down: the core
	// frequency is the minimum over 15 noisy per-subsystem estimates,
	// which is already biased low; rounding down on top of that would make
	// every invocation a LowFreq retune. Balanced rounding plus the bias
	// compensation reproduces the paper's Figure 13 mix, where optimistic
	// misses (Error/Temp/Power) and pessimistic ones (LowFreq) both occur
	// and retuning repairs both.
	grid := tech.FRelLevels()
	return snapNearest(grid, mathx.Clamp(pred, tech.FRelMin, tech.FRelMax))
}

// PowerLevels implements Solver.
func (s *FuzzySolver) PowerLevels(c *Core, i int, fCore float64, q FreqQuery) (float64, float64) {
	key := fcKey{sub: i, variant: q.Variant}
	fcV, okV := s.vdd[key]
	fcB, okB := s.vbb[key]
	if !okV || !okB {
		return (Exhaustive{}).PowerLevels(c, i, fCore, q)
	}
	si := c.Inputs(i, q.THK, q.AlphaF).Array()
	var x [7]float64
	copy(x[:6], si[:])
	x[6] = fCore
	pv, errV := fcV.Predict(x[:])
	pb, errB := fcB.Predict(x[:])
	if errV != nil || errB != nil {
		return (Exhaustive{}).PowerLevels(c, i, fCore, q)
	}
	vddLevels := c.Config.VddLevels(nominalVdd)
	vbbLevels := c.Config.VbbLevels()
	// Vdd rounds *up* to the next level: an underpredicted supply costs a
	// whole frequency step that retuning cannot win back (it only moves f),
	// while an overpredicted one costs a sliver of power. This mirrors
	// SnapFRelDown's conservatism on the frequency side.
	return snapUp(vddLevels, pv), snapNearest(vbbLevels, pb)
}

// snapUp returns the smallest level at or above v (levels are ascending);
// values above the range clamp to the top level.
func snapUp(levels []float64, v float64) float64 {
	for _, l := range levels {
		if l >= v-1e-9 {
			return l
		}
	}
	return levels[len(levels)-1]
}

// snapNearest returns the level closest to v.
func snapNearest(levels []float64, v float64) float64 {
	best := levels[0]
	bd := math.Abs(v - best)
	for _, l := range levels[1:] {
		if d := math.Abs(v - l); d < bd {
			best, bd = l, d
		}
	}
	return best
}

// TrainOptions configures fuzzy-solver training.
type TrainOptions struct {
	// Examples per controller; the paper uses 10,000 randomly-selected
	// examples generated with Exhaustive.
	Examples int
	// Fuzzy is the controller training configuration (25 rules, lr 0.04).
	Fuzzy fuzzy.TrainConfig
	// Seed drives example sampling.
	Seed int64
	// MinBiasComp is added to every frequency prediction to undo the
	// low bias of the min-over-subsystems core-frequency selection
	// (in relative-frequency units; ~2 grid steps by default).
	MinBiasComp float64
	// THRangeK bounds the sampled heat-sink temperatures.
	THLoK, THHiK float64
	// AlphaRange bounds the sampled activity factors.
	AlphaLo, AlphaHi float64
	// CPIRange bounds the sampled CPIs (to convert alpha to rho).
	CPILo, CPIHi float64
	// Obs, when non-nil, receives retune-cycle training timings (it is
	// also forwarded to the fuzzy controllers' epoch timers). Nil (the
	// default) is a zero-cost no-op.
	Obs *obs.Registry
	// Workers bounds the goroutines used for example labeling and
	// controller fitting. Values below 1 mean serial. Output is
	// byte-identical at every worker count: all randomness is drawn in a
	// sequential pre-pass and the expensive work is pure.
	Workers int
}

// DefaultTrainOptions returns a training budget that reproduces the
// paper's accuracy at tractable cost (set Examples to 10000 for the
// paper-exact budget).
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		Examples:    2000,
		Fuzzy:       fuzzy.DefaultTrainConfig(),
		Seed:        99,
		MinBiasComp: tech.FRelStep / 2,
		THLoK:       45 + 273.15,
		THHiK:       71 + 273.15,
		AlphaLo:     0.01,
		AlphaHi:     1.2,
		CPILo:       0.6,
		CPIHi:       5.0,
	}
}

// Validate checks training options.
func (o TrainOptions) Validate() error {
	if o.Examples < o.Fuzzy.Rules {
		return fmt.Errorf("adapt: %d examples < %d rules", o.Examples, o.Fuzzy.Rules)
	}
	if o.THLoK >= o.THHiK || o.AlphaLo >= o.AlphaHi || o.CPILo >= o.CPIHi {
		return fmt.Errorf("adapt: degenerate sampling ranges")
	}
	return o.Fuzzy.Validate()
}

// variantChoice pairs a structural variant with its power multiplier.
type variantChoice struct {
	v    vats.Variant
	mult float64
}

// variantsOf lists the structural variants subsystem i can take under the
// core's technique configuration.
func (c *Core) variantsOf(i int) []variantChoice {
	out := []variantChoice{{vats.IdentityVariant(), 1}}
	id := c.Subs[i].Sub.ID
	if c.Config.QueueResize && tech.IsQueueSubsystem(id) {
		out = append(out, variantChoice{tech.QueueThreeQuarter.Variant(), tech.QueueSmallFrac + 0.05})
	}
	if c.Config.FUReplication && tech.IsFUSubsystem(id) {
		out = append(out, variantChoice{tech.FULowSlope.Variant(), tech.LowSlopePowerMult})
	}
	return out
}

// trainDraw holds one training example's pre-drawn random inputs. The
// draws are taken in a sequential pass over the RNG stream, in exactly the
// order the serial trainer consumed them: core pick, TH, alpha, CPI, and
// the core-frequency backoff factor. The backoff draw came after FreqSolve
// in the serial code but never depended on its result, so the stream
// separates cleanly from the solve work.
type trainDraw struct {
	core              int
	th, alpha, cpi, u float64
}

// trainTask is one controller fit: a (subsystem, variant) pair with its
// pre-drawn examples.
type trainTask struct {
	sub   int
	vm    variantChoice
	draws []trainDraw
}

// trainResult is one task's trained controller triple.
type trainResult struct {
	freq, vdd, vbb *fuzzy.Controller
	freqBias       float64
	err            error
}

// runTrainTask labels the task's pre-drawn examples with the Exhaustive
// algorithm and fits the three controllers. It is pure given (task, opts,
// cores): no RNG, no shared mutable state beyond the cores' concurrency-
// safe PE store, so tasks may run on any goroutine in any order.
func runTrainTask(cores []*Core, t trainTask, opts TrainOptions) trainResult {
	freqEx := make([]fuzzy.Example, 0, len(t.draws))
	vddEx := make([]fuzzy.Example, 0, len(t.draws))
	vbbEx := make([]fuzzy.Example, 0, len(t.draws))
	for _, d := range t.draws {
		core := cores[d.core]
		q := FreqQuery{
			THK:       d.th,
			AlphaF:    d.alpha,
			Rho:       d.alpha * d.cpi,
			Variant:   t.vm.v,
			PowerMult: t.vm.mult,
		}
		x := core.Inputs(t.sub, d.th, d.alpha).Vector()
		fr := core.FreqSolve(t.sub, q)
		freqEx = append(freqEx, fuzzy.Example{X: x, Y: fr.FMax})
		// Power examples at a feasible core frequency at or below this
		// subsystem's ceiling.
		fCore := tech.SnapFRelDown(fr.FMax * d.u)
		pr := core.PowerSolve(t.sub, fCore, q)
		xp := append(append([]float64(nil), x...), fCore)
		vddEx = append(vddEx, fuzzy.Example{X: xp, Y: pr.VddV})
		vbbEx = append(vbbEx, fuzzy.Example{X: xp, Y: pr.VbbV})
	}
	fcfg := opts.Fuzzy
	fcfg.Seed = opts.Seed + int64(t.sub)*31 + 7
	if fcfg.Obs == nil {
		fcfg.Obs = opts.Obs
	}
	trainSW := opts.Obs.Timer("adapt.train.controller").Start()
	defer trainSW.Stop()
	var r trainResult
	if r.freq, r.err = fuzzy.Train(freqEx, fcfg); r.err != nil {
		r.err = fmt.Errorf("adapt: training freq FC for sub %d: %w", t.sub, r.err)
		return r
	}
	// Center the controller: subtract its mean training residual.
	var resid float64
	for _, ex := range freqEx {
		p, perr := r.freq.Predict(ex.X)
		if perr != nil {
			r.err = perr
			return r
		}
		resid += p - ex.Y
	}
	r.freqBias = resid / float64(len(freqEx))
	if r.vdd, r.err = fuzzy.Train(vddEx, fcfg); r.err != nil {
		r.err = fmt.Errorf("adapt: training vdd FC for sub %d: %w", t.sub, r.err)
		return r
	}
	if r.vbb, r.err = fuzzy.Train(vbbEx, fcfg); r.err != nil {
		r.err = fmt.Errorf("adapt: training vbb FC for sub %d: %w", t.sub, r.err)
		return r
	}
	return r
}

// TrainFuzzySolver builds the full controller set for the configuration
// shared by the training cores: for every (subsystem, variant), Examples
// random operating situations are labeled by the Exhaustive algorithm and
// fed to the Appendix A trainer. Training cores should be distinct chips
// from the same manufacturing distribution as the deployment chips — the
// manufacturer's software model (§4.3.1).
//
// Training runs in two stages. A cheap sequential pass drains the RNG
// stream into per-task draws in the exact order the serial trainer used;
// the expensive work — Freq/Power labeling and the gradient-descent fits
// — then fans across opts.Workers goroutines, each driving its own
// WorkerView of the training cores over the shared PE-table store.
// Results are assembled in task order, so fixed-seed output is
// byte-identical at any worker count.
func TrainFuzzySolver(cores []*Core, opts TrainOptions) (*FuzzySolver, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("adapt: no training cores")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := cores[0].Config
	for _, c := range cores[1:] {
		if c.Config != cfg {
			return nil, fmt.Errorf("adapt: training cores have mixed configurations")
		}
	}
	// Stage 1: sequential RNG pre-pass. Every draw happens in the order
	// the serial implementation made it, so the example stream — and with
	// it every trained weight — is independent of the worker count.
	rng := mathx.NewRNG(opts.Seed)
	var tasks []trainTask
	n := cores[0].N()
	for i := 0; i < n; i++ {
		for _, vm := range cores[0].variantsOf(i) {
			draws := make([]trainDraw, opts.Examples)
			for e := range draws {
				draws[e] = trainDraw{
					core:  rng.Intn(len(cores)),
					th:    rng.Uniform(opts.THLoK, opts.THHiK),
					alpha: rng.Uniform(opts.AlphaLo, opts.AlphaHi),
					cpi:   rng.Uniform(opts.CPILo, opts.CPIHi),
					u:     rng.Uniform(0.75, 1.0),
				}
			}
			tasks = append(tasks, trainTask{sub: i, vm: vm, draws: draws})
		}
	}
	// Stage 2: fan the labeling + fitting across the pool. Each worker
	// slot gets its own core views (fresh solve memos, shared PE store);
	// exact-key memoization makes a memo hit bitwise identical to a scan,
	// so per-slot memos cannot perturb the labels.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	views := make([][]*Core, workers)
	for slot := range views {
		if workers == 1 {
			views[slot] = cores
			continue
		}
		views[slot] = make([]*Core, len(cores))
		for ci, c := range cores {
			views[slot][ci] = c.WorkerView()
		}
	}
	results := make([]trainResult, len(tasks))
	obs.RunPool(opts.Obs, "adapt.train.pool", workers, len(tasks), func(slot, ti int) {
		results[ti] = runTrainTask(views[slot], tasks[ti], opts)
	})
	// Reduce in task order: map insertion and the first-error pick follow
	// the serial loop's ordering exactly.
	s := &FuzzySolver{
		freq:        make(map[fcKey]*fuzzy.Controller),
		vdd:         make(map[fcKey]*fuzzy.Controller),
		vbb:         make(map[fcKey]*fuzzy.Controller),
		freqBias:    make(map[fcKey]float64),
		minBiasComp: opts.MinBiasComp,
	}
	for ti, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		key := fcKey{sub: tasks[ti].sub, variant: tasks[ti].vm.v}
		s.freq[key] = r.freq
		s.vdd[key] = r.vdd
		s.vbb[key] = r.vbb
		s.freqBias[key] = r.freqBias
	}
	return s, nil
}

// ControllerCount reports how many fuzzy controllers the solver holds.
func (s *FuzzySolver) ControllerCount() int {
	return len(s.freq) + len(s.vdd) + len(s.vbb)
}

// solverState is the serialized form of a FuzzySolver: the manufacturer's
// shippable controller tables (~120 KB of data footprint, §5) plus the
// two prediction-correction terms, so a restored solver predicts
// byte-identically to the one that was trained.
type solverState struct {
	Entries     []solverEntry `json:"entries"`
	MinBiasComp float64       `json:"min_bias_comp"`
}

type solverEntry struct {
	Sub      int               `json:"sub"`
	Variant  vats.Variant      `json:"variant"`
	Freq     *fuzzy.Controller `json:"freq"`
	Vdd      *fuzzy.Controller `json:"vdd"`
	Vbb      *fuzzy.Controller `json:"vbb"`
	FreqBias float64           `json:"freq_bias"`
}

// MarshalJSON serializes the solver's controllers.
func (s *FuzzySolver) MarshalJSON() ([]byte, error) {
	st := solverState{MinBiasComp: s.minBiasComp}
	for key, fc := range s.freq {
		st.Entries = append(st.Entries, solverEntry{
			Sub:      key.sub,
			Variant:  key.variant,
			Freq:     fc,
			Vdd:      s.vdd[key],
			Vbb:      s.vbb[key],
			FreqBias: s.freqBias[key],
		})
	}
	sort.Slice(st.Entries, func(i, j int) bool {
		a, b := st.Entries[i], st.Entries[j]
		if a.Sub != b.Sub {
			return a.Sub < b.Sub
		}
		return a.Variant.MeanScale < b.Variant.MeanScale
	})
	return json.Marshal(st)
}

// UnmarshalJSON restores a serialized solver.
func (s *FuzzySolver) UnmarshalJSON(data []byte) error {
	var st solverState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.freq = make(map[fcKey]*fuzzy.Controller)
	s.vdd = make(map[fcKey]*fuzzy.Controller)
	s.vbb = make(map[fcKey]*fuzzy.Controller)
	s.freqBias = make(map[fcKey]float64)
	s.minBiasComp = st.MinBiasComp
	for _, e := range st.Entries {
		if e.Freq == nil || e.Vdd == nil || e.Vbb == nil {
			return fmt.Errorf("adapt: corrupt solver state for sub %d", e.Sub)
		}
		key := fcKey{sub: e.Sub, variant: e.Variant}
		s.freq[key] = e.Freq
		s.vdd[key] = e.Vdd
		s.vbb[key] = e.Vbb
		s.freqBias[key] = e.FreqBias
	}
	return nil
}
