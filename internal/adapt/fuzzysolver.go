package adapt

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/fuzzy"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/vats"
)

// fcKey identifies one fuzzy controller: a subsystem with a structural
// variant. Each subsystem has an fmax controller (Freq algorithm) and Vdd
// and Vbb controllers (Power algorithm) per variant, matching Figure 3.
type fcKey struct {
	sub     int
	variant vats.Variant
}

// FuzzySolver answers Freq/Power queries with trained fuzzy controllers
// (§4.3.1). Predictions are snapped to the hardware's discrete levels; any
// residual misestimate is repaired by retuning cycles, exactly as the paper
// argues in §6.3.
type FuzzySolver struct {
	freq map[fcKey]*fuzzy.Controller // 6 inputs -> fmax
	vdd  map[fcKey]*fuzzy.Controller // 6 inputs + fcore -> Vdd
	vbb  map[fcKey]*fuzzy.Controller // 6 inputs + fcore -> Vbb
	// freqBias is each frequency controller's mean training residual
	// (prediction - truth), subtracted at query time.
	freqBias map[fcKey]float64
	// minBiasComp compensates the selection bias of taking the minimum
	// over n noisy per-subsystem estimates, which is otherwise biased low
	// by roughly one estimator sigma; without it every controller
	// invocation ends as a LowFreq retune instead of the paper's
	// Figure 13 mix.
	minBiasComp float64
}

// Name implements Solver.
func (*FuzzySolver) Name() string { return "fuzzy" }

// FreqMax implements Solver. Unknown (subsystem, variant) pairs — which
// cannot occur for solvers trained with TrainFuzzySolver on the same
// configuration — fall back to the exhaustive search.
func (s *FuzzySolver) FreqMax(c *Core, i int, q FreqQuery) float64 {
	fc, ok := s.freq[fcKey{sub: i, variant: q.Variant}]
	if !ok {
		return (Exhaustive{}).FreqMax(c, i, q)
	}
	pred, err := fc.Predict(c.Inputs(i, q.THK, q.AlphaF).Vector())
	if err != nil {
		return (Exhaustive{}).FreqMax(c, i, q)
	}
	pred -= s.freqBias[fcKey{sub: i, variant: q.Variant}]
	pred += s.minBiasComp
	// Snap to the *nearest* frequency step rather than down: the core
	// frequency is the minimum over 15 noisy per-subsystem estimates,
	// which is already biased low; rounding down on top of that would make
	// every invocation a LowFreq retune. Balanced rounding plus the bias
	// compensation reproduces the paper's Figure 13 mix, where optimistic
	// misses (Error/Temp/Power) and pessimistic ones (LowFreq) both occur
	// and retuning repairs both.
	grid := tech.FRelLevels()
	return snapNearest(grid, mathx.Clamp(pred, tech.FRelMin, tech.FRelMax))
}

// PowerLevels implements Solver.
func (s *FuzzySolver) PowerLevels(c *Core, i int, fCore float64, q FreqQuery) (float64, float64) {
	key := fcKey{sub: i, variant: q.Variant}
	fcV, okV := s.vdd[key]
	fcB, okB := s.vbb[key]
	if !okV || !okB {
		return (Exhaustive{}).PowerLevels(c, i, fCore, q)
	}
	x := append(c.Inputs(i, q.THK, q.AlphaF).Vector(), fCore)
	pv, errV := fcV.Predict(x)
	pb, errB := fcB.Predict(x)
	if errV != nil || errB != nil {
		return (Exhaustive{}).PowerLevels(c, i, fCore, q)
	}
	vddLevels := c.Config.VddLevels(nominalVdd)
	vbbLevels := c.Config.VbbLevels()
	// Vdd rounds *up* to the next level: an underpredicted supply costs a
	// whole frequency step that retuning cannot win back (it only moves f),
	// while an overpredicted one costs a sliver of power. This mirrors
	// SnapFRelDown's conservatism on the frequency side.
	return snapUp(vddLevels, pv), snapNearest(vbbLevels, pb)
}

// snapUp returns the smallest level at or above v (levels are ascending);
// values above the range clamp to the top level.
func snapUp(levels []float64, v float64) float64 {
	for _, l := range levels {
		if l >= v-1e-9 {
			return l
		}
	}
	return levels[len(levels)-1]
}

// snapNearest returns the level closest to v.
func snapNearest(levels []float64, v float64) float64 {
	best := levels[0]
	bd := math.Abs(v - best)
	for _, l := range levels[1:] {
		if d := math.Abs(v - l); d < bd {
			best, bd = l, d
		}
	}
	return best
}

// TrainOptions configures fuzzy-solver training.
type TrainOptions struct {
	// Examples per controller; the paper uses 10,000 randomly-selected
	// examples generated with Exhaustive.
	Examples int
	// Fuzzy is the controller training configuration (25 rules, lr 0.04).
	Fuzzy fuzzy.TrainConfig
	// Seed drives example sampling.
	Seed int64
	// MinBiasComp is added to every frequency prediction to undo the
	// low bias of the min-over-subsystems core-frequency selection
	// (in relative-frequency units; ~2 grid steps by default).
	MinBiasComp float64
	// THRangeK bounds the sampled heat-sink temperatures.
	THLoK, THHiK float64
	// AlphaRange bounds the sampled activity factors.
	AlphaLo, AlphaHi float64
	// CPIRange bounds the sampled CPIs (to convert alpha to rho).
	CPILo, CPIHi float64
	// Obs, when non-nil, receives retune-cycle training timings (it is
	// also forwarded to the fuzzy controllers' epoch timers). Nil (the
	// default) is a zero-cost no-op.
	Obs *obs.Registry
}

// DefaultTrainOptions returns a training budget that reproduces the
// paper's accuracy at tractable cost (set Examples to 10000 for the
// paper-exact budget).
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		Examples:    2000,
		Fuzzy:       fuzzy.DefaultTrainConfig(),
		Seed:        99,
		MinBiasComp: tech.FRelStep / 2,
		THLoK:       45 + 273.15,
		THHiK:       71 + 273.15,
		AlphaLo:     0.01,
		AlphaHi:     1.2,
		CPILo:       0.6,
		CPIHi:       5.0,
	}
}

// Validate checks training options.
func (o TrainOptions) Validate() error {
	if o.Examples < o.Fuzzy.Rules {
		return fmt.Errorf("adapt: %d examples < %d rules", o.Examples, o.Fuzzy.Rules)
	}
	if o.THLoK >= o.THHiK || o.AlphaLo >= o.AlphaHi || o.CPILo >= o.CPIHi {
		return fmt.Errorf("adapt: degenerate sampling ranges")
	}
	return o.Fuzzy.Validate()
}

// variantChoice pairs a structural variant with its power multiplier.
type variantChoice struct {
	v    vats.Variant
	mult float64
}

// variantsOf lists the structural variants subsystem i can take under the
// core's technique configuration.
func (c *Core) variantsOf(i int) []variantChoice {
	out := []variantChoice{{vats.IdentityVariant(), 1}}
	id := c.Subs[i].Sub.ID
	if c.Config.QueueResize && tech.IsQueueSubsystem(id) {
		out = append(out, variantChoice{tech.QueueThreeQuarter.Variant(), tech.QueueSmallFrac + 0.05})
	}
	if c.Config.FUReplication && tech.IsFUSubsystem(id) {
		out = append(out, variantChoice{tech.FULowSlope.Variant(), tech.LowSlopePowerMult})
	}
	return out
}

// TrainFuzzySolver builds the full controller set for the configuration
// shared by the training cores: for every (subsystem, variant), Examples
// random operating situations are labeled by the Exhaustive algorithm and
// fed to the Appendix A trainer. Training cores should be distinct chips
// from the same manufacturing distribution as the deployment chips — the
// manufacturer's software model (§4.3.1).
func TrainFuzzySolver(cores []*Core, opts TrainOptions) (*FuzzySolver, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("adapt: no training cores")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := cores[0].Config
	for _, c := range cores[1:] {
		if c.Config != cfg {
			return nil, fmt.Errorf("adapt: training cores have mixed configurations")
		}
	}
	s := &FuzzySolver{
		freq:        make(map[fcKey]*fuzzy.Controller),
		vdd:         make(map[fcKey]*fuzzy.Controller),
		vbb:         make(map[fcKey]*fuzzy.Controller),
		freqBias:    make(map[fcKey]float64),
		minBiasComp: opts.MinBiasComp,
	}
	rng := mathx.NewRNG(opts.Seed)
	n := cores[0].N()
	for i := 0; i < n; i++ {
		for _, vm := range cores[0].variantsOf(i) {
			freqEx := make([]fuzzy.Example, 0, opts.Examples)
			vddEx := make([]fuzzy.Example, 0, opts.Examples)
			vbbEx := make([]fuzzy.Example, 0, opts.Examples)
			for e := 0; e < opts.Examples; e++ {
				core := cores[rng.Intn(len(cores))]
				th := rng.Uniform(opts.THLoK, opts.THHiK)
				alpha := rng.Uniform(opts.AlphaLo, opts.AlphaHi)
				cpi := rng.Uniform(opts.CPILo, opts.CPIHi)
				q := FreqQuery{
					THK:       th,
					AlphaF:    alpha,
					Rho:       alpha * cpi,
					Variant:   vm.v,
					PowerMult: vm.mult,
				}
				x := core.Inputs(i, th, alpha).Vector()
				fr := core.FreqSolve(i, q)
				freqEx = append(freqEx, fuzzy.Example{X: x, Y: fr.FMax})
				// Power examples at a feasible core frequency at or below
				// this subsystem's ceiling.
				fCore := tech.SnapFRelDown(fr.FMax * rng.Uniform(0.75, 1.0))
				pr := core.PowerSolve(i, fCore, q)
				xp := append(append([]float64(nil), x...), fCore)
				vddEx = append(vddEx, fuzzy.Example{X: xp, Y: pr.VddV})
				vbbEx = append(vbbEx, fuzzy.Example{X: xp, Y: pr.VbbV})
			}
			key := fcKey{sub: i, variant: vm.v}
			fcfg := opts.Fuzzy
			fcfg.Seed = opts.Seed + int64(i)*31 + 7
			if fcfg.Obs == nil {
				fcfg.Obs = opts.Obs
			}
			trainSW := opts.Obs.Timer("adapt.train.controller").Start()
			var err error
			if s.freq[key], err = fuzzy.Train(freqEx, fcfg); err != nil {
				return nil, fmt.Errorf("adapt: training freq FC for sub %d: %w", i, err)
			}
			// Center the controller: subtract its mean training residual.
			var resid float64
			for _, ex := range freqEx {
				p, perr := s.freq[key].Predict(ex.X)
				if perr != nil {
					return nil, perr
				}
				resid += p - ex.Y
			}
			s.freqBias[key] = resid / float64(len(freqEx))
			if s.vdd[key], err = fuzzy.Train(vddEx, fcfg); err != nil {
				return nil, fmt.Errorf("adapt: training vdd FC for sub %d: %w", i, err)
			}
			if s.vbb[key], err = fuzzy.Train(vbbEx, fcfg); err != nil {
				return nil, fmt.Errorf("adapt: training vbb FC for sub %d: %w", i, err)
			}
			trainSW.Stop()
		}
	}
	return s, nil
}

// ControllerCount reports how many fuzzy controllers the solver holds.
func (s *FuzzySolver) ControllerCount() int {
	return len(s.freq) + len(s.vdd) + len(s.vbb)
}

// solverState is the serialized form of a FuzzySolver: the manufacturer's
// shippable controller tables (~120 KB of data footprint, §5).
type solverState struct {
	Entries []solverEntry `json:"entries"`
}

type solverEntry struct {
	Sub     int               `json:"sub"`
	Variant vats.Variant      `json:"variant"`
	Freq    *fuzzy.Controller `json:"freq"`
	Vdd     *fuzzy.Controller `json:"vdd"`
	Vbb     *fuzzy.Controller `json:"vbb"`
}

// MarshalJSON serializes the solver's controllers.
func (s *FuzzySolver) MarshalJSON() ([]byte, error) {
	var st solverState
	for key, fc := range s.freq {
		st.Entries = append(st.Entries, solverEntry{
			Sub:     key.sub,
			Variant: key.variant,
			Freq:    fc,
			Vdd:     s.vdd[key],
			Vbb:     s.vbb[key],
		})
	}
	sort.Slice(st.Entries, func(i, j int) bool {
		a, b := st.Entries[i], st.Entries[j]
		if a.Sub != b.Sub {
			return a.Sub < b.Sub
		}
		return a.Variant.MeanScale < b.Variant.MeanScale
	})
	return json.Marshal(st)
}

// UnmarshalJSON restores a serialized solver.
func (s *FuzzySolver) UnmarshalJSON(data []byte) error {
	var st solverState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.freq = make(map[fcKey]*fuzzy.Controller)
	s.vdd = make(map[fcKey]*fuzzy.Controller)
	s.vbb = make(map[fcKey]*fuzzy.Controller)
	for _, e := range st.Entries {
		if e.Freq == nil || e.Vdd == nil || e.Vbb == nil {
			return fmt.Errorf("adapt: corrupt solver state for sub %d", e.Sub)
		}
		key := fcKey{sub: e.Sub, variant: e.Variant}
		s.freq[key] = e.Freq
		s.vdd[key] = e.Vdd
		s.vbb[key] = e.Vbb
	}
	return nil
}
