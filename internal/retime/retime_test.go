package retime

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/varius"
)

func fixtures(t *testing.T) (*floorplan.Floorplan, *varius.Generator) {
	t.Helper()
	vp := varius.DefaultParams()
	gen, err := varius.NewGenerator(vp)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		t.Fatal(err)
	}
	return fp, gen
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.MaxDonationFrac = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative donation cap should be rejected")
	}
	bad2 := DefaultConfig()
	bad2.LoopCarriedFrac = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("loop fraction > 1 should be rejected")
	}
}

func TestRetimeNeverHurts(t *testing.T) {
	fp, gen := fixtures(t)
	vp := gen.Params()
	for seed := int64(0); seed < 6; seed++ {
		res, err := Retime(fp, gen.Chip(seed), vp, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.FRetimed < res.FBaseline {
			t.Errorf("chip %d: retiming lowered frequency: %v -> %v",
				seed, res.FBaseline, res.FRetimed)
		}
		if res.Gain() < 1 {
			t.Errorf("chip %d: gain %v < 1", seed, res.Gain())
		}
	}
}

func TestRetimeGainInPublishedBand(t *testing.T) {
	// §7: dynamic retiming gains 10-20%, versus EVAL's 40%.
	fp, gen := fixtures(t)
	vp := gen.Params()
	var gains []float64
	for seed := int64(0); seed < 12; seed++ {
		res, err := Retime(fp, gen.Chip(seed), vp, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		gains = append(gains, res.Gain())
	}
	mean := mathx.Mean(gains)
	if mean < 1.05 || mean > 1.30 {
		t.Errorf("mean retiming gain = %.3f, want roughly the published 1.10-1.20 band", mean)
	}
	t.Logf("mean retiming gain = %.3f (paper: 1.10-1.20)", mean)
}

func TestRetimeNoVarChipHasNothingToGain(t *testing.T) {
	fp, gen := fixtures(t)
	vp := gen.Params()
	res, err := Retime(fp, gen.NoVarChip(), vp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With no variation, all stages already meet 1.0; retiming adds ~0.
	if res.Gain() > 1.02 {
		t.Errorf("NoVar retiming gain = %v, want ~1.0", res.Gain())
	}
}

func TestDonationConservation(t *testing.T) {
	fp, gen := fixtures(t)
	vp := gen.Params()
	res, err := Retime(fp, gen.Chip(3), vp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var recv, don float64
	for _, m := range res.Donations {
		if m > 0 {
			recv += m
		} else {
			don -= m
		}
	}
	if recv > don+1e-9 {
		t.Errorf("received time %v exceeds donated time %v", recv, don)
	}
	cfg := DefaultConfig()
	for i, m := range res.Donations {
		if math.Abs(m) > cfg.MaxDonationFrac+1e-9 {
			t.Errorf("stage %d donation %v exceeds the skew budget", i, m)
		}
	}
}

func TestLargerSkewBudgetGainsMore(t *testing.T) {
	fp, gen := fixtures(t)
	vp := gen.Params()
	chip := gen.Chip(5)
	small := DefaultConfig()
	small.MaxDonationFrac = 0.03
	big := DefaultConfig()
	big.MaxDonationFrac = 0.30
	rs, err := Retime(fp, chip, vp, small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Retime(fp, chip, vp, big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.FRetimed < rs.FRetimed-1e-12 {
		t.Errorf("bigger skew budget should not gain less: %v vs %v", rb.FRetimed, rs.FRetimed)
	}
}

func TestZeroBudgetIsBaseline(t *testing.T) {
	fp, gen := fixtures(t)
	vp := gen.Params()
	cfg := DefaultConfig()
	cfg.MaxDonationFrac = 0
	res, err := Retime(fp, gen.Chip(7), vp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FRetimed-res.FBaseline) > 1e-12 {
		t.Errorf("zero skew budget must reproduce baseline: %v vs %v",
			res.FRetimed, res.FBaseline)
	}
}
