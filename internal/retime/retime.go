package retime

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/varius"
	"repro/internal/vats"
)

// Config controls the retiming model.
type Config struct {
	// MaxDonationFrac caps how much of a nominal period a stage can donate
	// or receive through clock-phase shifting (cycle time stealing).
	// ReCycle's gains are bounded by the clock network's skew budget.
	MaxDonationFrac float64
	// LoopCarried marks that some stage pairs form loops (e.g. the
	// issue-wakeup loop) whose summed delay cannot be stretched; modeled
	// as a fraction of total slack that is not redistributable.
	LoopCarriedFrac float64
}

// DefaultConfig returns a clock network with a generous but bounded skew
// budget, calibrated to land retiming in its published 10-20% band.
func DefaultConfig() Config {
	return Config{
		MaxDonationFrac: 0.20,
		LoopCarriedFrac: 0.15,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxDonationFrac < 0 || c.MaxDonationFrac > 1 {
		return fmt.Errorf("retime: MaxDonationFrac %g out of [0,1]", c.MaxDonationFrac)
	}
	if c.LoopCarriedFrac < 0 || c.LoopCarriedFrac > 1 {
		return fmt.Errorf("retime: LoopCarriedFrac %g out of [0,1]", c.LoopCarriedFrac)
	}
	return nil
}

// Result describes the retimed pipeline.
type Result struct {
	// FBaseline is the conventional worst-stage safe frequency.
	FBaseline float64
	// FRetimed is the safe frequency after slack redistribution.
	FRetimed float64
	// StageDelay is each stage's error-free critical delay (nominal
	// periods), the input to redistribution.
	StageDelay []float64
	// Donations is each stage's received (+) or donated (-) time in
	// nominal periods.
	Donations []float64
}

// Gain returns the retiming speedup over worst-stage clocking.
func (r Result) Gain() float64 {
	if r.FBaseline <= 0 {
		return 0
	}
	return r.FRetimed / r.FBaseline
}

// Retime computes the safe retimed frequency of one chip at the design
// corner. Each stage's critical delay is its error-free limit from the
// VATS model; redistribution equalizes delays toward the mean subject to
// the donation cap and the non-redistributable loop fraction.
func Retime(fp *floorplan.Floorplan, chip *varius.ChipMaps, vp varius.Params, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	pl, err := vats.NewPipeline(fp, chip, vp)
	if err != nil {
		return Result{}, err
	}
	corner := vats.Cond{VddV: vp.VddNomV, TK: vp.TOpRefK}
	delays := make([]float64, len(pl.Stages))
	worst := 0.0
	for i, st := range pl.Stages {
		fv := st.Eval(corner, vats.IdentityVariant()).FVar()
		delays[i] = 1 / fv
		if delays[i] > worst {
			worst = delays[i]
		}
	}

	// Ideal equalization target: the mean stage delay. Each stage may move
	// at most MaxDonationFrac of a nominal period, and only the
	// redistributable share of its slack participates.
	mean := 0.0
	for _, d := range delays {
		mean += d
	}
	mean /= float64(len(delays))

	donations := make([]float64, len(delays))
	effective := make([]float64, len(delays))
	retimedWorst := 0.0
	for i, d := range delays {
		move := mean - d // >0: receive time; <0: donate time
		move *= 1 - cfg.LoopCarriedFrac
		move = clamp(move, -cfg.MaxDonationFrac, cfg.MaxDonationFrac)
		donations[i] = move
		effective[i] = d + move
		if effective[i] > retimedWorst {
			retimedWorst = effective[i]
		}
	}
	// Conservation: total received time cannot exceed total donated time.
	// If the clamps broke the balance in favor of receivers, scale the
	// receipts down.
	var recv, don float64
	for _, m := range donations {
		if m > 0 {
			recv += m
		} else {
			don -= m
		}
	}
	if recv > don && recv > 0 {
		scale := don / recv
		retimedWorst = 0
		for i := range donations {
			if donations[i] > 0 {
				donations[i] *= scale
			}
			effective[i] = delays[i] + donations[i]
			if effective[i] > retimedWorst {
				retimedWorst = effective[i]
			}
		}
	}

	res := Result{
		FBaseline:  1 / worst,
		FRetimed:   1 / retimedWorst,
		StageDelay: delays,
		Donations:  donations,
	}
	if res.FRetimed < res.FBaseline {
		// Redistribution can never hurt; numerical guard.
		res.FRetimed = res.FBaseline
	}
	return res, nil
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}
