// Package retime implements the dynamic-retiming baseline the paper
// compares EVAL against in §7 (Tiwari et al.'s ReCycle): instead of
// tolerating timing errors, retiming redistributes clocking slack among
// pipeline stages — donating the margin of fast stages to slow ones via
// staggered clock phases — and always clocks the processor at a safe
// (error-free) frequency.
//
// With perfect slack redistribution, an n-stage pipeline is no longer
// limited by its slowest stage but by the *average* stage delay (up to a
// donation cap set by how much phase shift the clock network supports).
// That raises the worst-case-safe clock of a variation-afflicted chip,
// but it cannot clock *into* the error regime the way EVAL's timing
// speculation does, and it has no lever over power or temperature.
//
// The paper reports 10-20% frequency gains for retiming versus ~56% for
// EVAL's best environment; this package exists to reproduce that
// comparison (evalsim -experiment retime, RunRetimeComparison in
// internal/core, and the sandwich property baseline < retiming < EVAL
// that the tests assert). EXPERIMENTS.md records the measured +10%.
package retime
