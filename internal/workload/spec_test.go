package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
)

func testSpec() Spec {
	return Spec{
		Name: "edge",
		Clients: []ClientSpec{
			{Name: "stream", Class: GenMemoryWall, Arrival: Arrival{Process: Poisson, RatePerS: 200}, Drift: 0.2},
			{Name: "ctrl", Class: GenBranchyInt, Arrival: Arrival{Process: Gamma, RatePerS: 150, Shape: 0.5}, Windows: 6, Drift: 0.1},
			{Name: "simd", Class: GenVectorFP, Arrival: Arrival{Process: Weibull, RatePerS: 120, Shape: 2}},
			{Name: "burst", Class: GenBurstyIdle, Arrival: Arrival{Process: Gamma, RatePerS: 80, Shape: 0.3}, Windows: 8, DutyCycle: 0.5, Drift: 0.3},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "no name"},
		{"no clients", func(s *Spec) { s.Clients = nil }, "no clients"},
		{"dup client", func(s *Spec) { s.Clients[1].Name = "stream" }, "duplicate client"},
		{"bad class", func(s *Spec) { s.Clients[0].Class = "quantum" }, "unknown generative class"},
		{"bad process", func(s *Spec) { s.Clients[0].Arrival.Process = "pareto" }, "unknown arrival process"},
		{"zero rate", func(s *Spec) { s.Clients[0].Arrival.RatePerS = 0 }, "rate_per_s"},
		{"wild shape", func(s *Spec) { s.Clients[1].Arrival.Shape = 100 }, "shape"},
		{"too many windows", func(s *Spec) { s.Clients[0].Windows = 99 }, "windows"},
		{"drift", func(s *Spec) { s.Clients[0].Drift = 0.9 }, "drift"},
		{"duty", func(s *Spec) { s.Clients[0].DutyCycle = 1.5 }, "duty_cycle"},
		{"window_s", func(s *Spec) { s.WindowS = 99 }, "window_s"},
	}
	for _, c := range bad {
		s := testSpec()
		c.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := testSpec()
	a, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(ea) != string(eb) {
		t.Fatal("same spec+seed generated different traces")
	}
	c, err := Generate(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(ea) == string(ec) {
		t.Fatal("different seeds generated identical traces")
	}
}

func TestGenerateLowersToValidApps(t *testing.T) {
	apps, err := GenerateApps(testSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 4 {
		t.Fatalf("got %d apps, want 4", len(apps))
	}
	if apps[0].Name != "edge/stream" || apps[2].Name != "edge/simd" {
		t.Errorf("unexpected app names: %q, %q", apps[0].Name, apps[2].Name)
	}
	if apps[2].Class != FP {
		t.Errorf("vector-fp client lowered to class %v, want FP", apps[2].Class)
	}
	for _, a := range apps {
		if a.Trace == "" {
			t.Errorf("app %q has no trace provenance", a.Name)
		}
		wsum := 0.0
		for i, ph := range a.Phases {
			if ph.Index != i {
				t.Errorf("app %q: phase indices not consecutive", a.Name)
			}
			if err := ph.Mix.Validate(); err != nil {
				t.Errorf("app %q phase %d: invalid mix: %v", a.Name, i, err)
			}
			if ph.Signature == 0 {
				t.Errorf("app %q phase %d: zero signature", a.Name, i)
			}
			wsum += ph.Weight
		}
		if math.Abs(wsum-1) > 1e-9 {
			t.Errorf("app %q: weights sum to %v", a.Name, wsum)
		}
	}
}

func TestGenerateDegenerateClient(t *testing.T) {
	// A rate so low that no window sees an arrival must still produce one
	// archetype phase rather than an empty app.
	spec := Spec{
		Name: "quiet",
		Clients: []ClientSpec{
			{Name: "idle", Class: GenServerMix, Arrival: Arrival{Process: Poisson, RatePerS: 1e-9}, DutyCycle: 0.1},
		},
	}
	apps, err := GenerateApps(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, _, _ := GenServerMix.Archetype()
	if len(apps[0].Phases) != 1 || apps[0].Phases[0].Weight != 1 || apps[0].Phases[0].Mix != base {
		t.Fatalf("degenerate client: got %+v, want one archetype phase of weight 1", apps[0].Phases)
	}
}

func TestArrivalMeanNormalized(t *testing.T) {
	// Shape must move burstiness only: the expected arrival count over a
	// long horizon is rate*time for every process/shape combination.
	const rate, horizon = 50.0, 400.0
	for _, a := range []Arrival{
		{Process: Poisson, RatePerS: rate},
		{Process: Gamma, RatePerS: rate, Shape: 0.5},
		{Process: Gamma, RatePerS: rate, Shape: 4},
		{Process: Weibull, RatePerS: rate, Shape: 0.7},
		{Process: Weibull, RatePerS: rate, Shape: 2},
	} {
		rng := mathx.NewRNG(9)
		elapsed, n := 0.0, 0
		for elapsed < horizon {
			elapsed += a.interarrival(rng)
			n++
		}
		want := rate * horizon
		if math.Abs(float64(n)-want) > 0.05*want {
			t.Errorf("%s shape=%g: %d arrivals over %gs, want ~%g", a.Process, a.Shape, n, horizon, want)
		}
	}
}

func TestGenClassArchetypesValid(t *testing.T) {
	for _, c := range GenClasses() {
		mix, _, err := c.Archetype()
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if err := mix.Validate(); err != nil {
			t.Errorf("%s archetype mix invalid: %v", c, err)
		}
	}
	if _, _, err := GenClass("nope").Archetype(); err == nil {
		t.Error("unknown class accepted")
	}
}
