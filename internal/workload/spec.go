package workload

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// GenClass names a generative workload class: an archetype instruction
// mix that a generated client's phases drift around. The classes extend
// the proxy suite with characters the SPEC menu under-represents.
type GenClass string

const (
	// GenMemoryWall is streaming, memory-bound work: high load fraction,
	// L2 miss rates at the mcf/art end of the scale, high MLP.
	GenMemoryWall GenClass = "memory-wall"
	// GenBranchyInt is control-dominated integer work: every fourth
	// instruction a branch, poor predictability, short dependence chains.
	GenBranchyInt GenClass = "branchy-int"
	// GenVectorFP is vectorizable floating-point work: long dependence
	// distances (high ILP), FP-dominated compute, few branches.
	GenVectorFP GenClass = "vector-fp"
	// GenBurstyIdle is duty-cycled server work: a moderate mix whose
	// activity arrives in bursts separated by idle windows (pair with
	// DutyCycle < 1 and a bursty arrival shape).
	GenBurstyIdle GenClass = "bursty-idle"
	// GenServerMix is steady request-serving work: pointer-chasing loads
	// and stores with moderate miss rates and branchiness.
	GenServerMix GenClass = "server-mix"
)

// GenClasses lists every generative class, in reference order.
func GenClasses() []GenClass {
	return []GenClass{GenMemoryWall, GenBranchyInt, GenVectorFP, GenBurstyIdle, GenServerMix}
}

// genArchetypes maps each class to its base mix and adaptation class,
// calibrated against the proxy-suite extremes it generalizes (see the
// class reference table in WORKLOADS.md).
var genArchetypes = map[GenClass]struct {
	mix   Mix
	class Class
}{
	GenMemoryWall: {Mix{0.36, 0.12, 0.06, 0.10, 4.5, 0.010, 0.050, 0.0350, 0.60}, Int},
	GenBranchyInt: {Mix{0.24, 0.10, 0.24, 0.00, 1.8, 0.120, 0.060, 0.0010, 0.20}, Int},
	GenVectorFP:   {Mix{0.30, 0.10, 0.03, 0.60, 5.5, 0.004, 0.010, 0.0080, 0.55}, FP},
	GenBurstyIdle: {Mix{0.26, 0.12, 0.16, 0.05, 2.4, 0.050, 0.050, 0.0040, 0.30}, Int},
	GenServerMix:  {Mix{0.30, 0.14, 0.15, 0.08, 2.6, 0.060, 0.070, 0.0060, 0.35}, Int},
}

// Archetype returns a class's base mix and adaptation class.
func (c GenClass) Archetype() (Mix, Class, error) {
	a, ok := genArchetypes[c]
	if !ok {
		return Mix{}, Int, fmt.Errorf("workload: unknown generative class %q (want one of %v)", c, GenClasses())
	}
	return a.mix, a.class, nil
}

// Process names an interarrival-time distribution for a client's request
// renewal process.
type Process string

const (
	// Poisson: exponential interarrivals (memoryless; CV = 1).
	Poisson Process = "poisson"
	// Gamma: gamma interarrivals; Shape < 1 gives bursty traffic
	// (CV > 1), Shape > 1 regular traffic (CV < 1).
	Gamma Process = "gamma"
	// Weibull: weibull interarrivals; Shape plays the same CV role as
	// for Gamma, with a heavier tail below 1.
	Weibull Process = "weibull"
)

// Arrival describes one client's request arrival process. All three
// processes are mean-normalized: the expected arrival rate is RatePerS
// regardless of Shape, so Shape moves burstiness alone.
type Arrival struct {
	Process Process `json:"process"`
	// RatePerS is the mean request arrival rate in requests per second.
	RatePerS float64 `json:"rate_per_s"`
	// Shape is the gamma/weibull shape parameter (ignored for poisson;
	// defaults to 1, which makes both processes Poisson).
	Shape float64 `json:"shape,omitempty"`
}

// Validate checks the arrival process.
func (a Arrival) Validate() error {
	switch a.Process {
	case Poisson, Gamma, Weibull:
	default:
		return fmt.Errorf("workload: unknown arrival process %q (want poisson, gamma, or weibull)", a.Process)
	}
	if !(a.RatePerS > 0) || math.IsInf(a.RatePerS, 0) {
		return fmt.Errorf("workload: arrival rate_per_s %g must be a positive finite number", a.RatePerS)
	}
	if a.Shape < 0 || (a.Process != Poisson && a.Shape != 0 && !(a.Shape > 0.05 && a.Shape <= 20)) {
		return fmt.Errorf("workload: arrival shape %g out of (0.05, 20]", a.Shape)
	}
	return nil
}

// shape returns the effective shape parameter (default 1).
func (a Arrival) shape() float64 {
	if a.Shape == 0 {
		return 1
	}
	return a.Shape
}

// interarrival draws one interarrival time in seconds.
func (a Arrival) interarrival(rng *mathx.RNG) float64 {
	mean := 1 / a.RatePerS
	switch a.Process {
	case Gamma:
		k := a.shape()
		return rng.Gamma(k, mean/k)
	case Weibull:
		k := a.shape()
		return rng.Weibull(k, mean/math.Gamma(1+1/k))
	default:
		return rng.Exponential(mean)
	}
}

// ClientSpec is one generated client workload: a class archetype driven
// by an arrival process, with optional per-window mix drift and a duty
// cycle. Each client lowers to one App.
type ClientSpec struct {
	// Name labels the client; the lowered App is named "<spec>/<client>".
	Name  string   `json:"name"`
	Class GenClass `json:"class"`
	// Arrival is the request arrival process; a window's phase weight is
	// proportional to the requests that arrived in it.
	Arrival Arrival `json:"arrival"`
	// Windows is the number of phase windows to generate (default 4,
	// max 16 — the experiments weight phases, they do not replay wall
	// clock, so windows beyond the drift scale add nothing).
	Windows int `json:"windows,omitempty"`
	// Drift is the per-window mix-drift amplitude in [0, 0.5]: each mix
	// parameter follows a bounded multiplicative random walk with steps
	// of this relative size (0 = every window reuses the archetype mix).
	Drift float64 `json:"drift,omitempty"`
	// DutyCycle is the probability a window is active in (0, 1]
	// (default 1). Inactive windows receive no arrivals and produce no
	// phase — the bursty/idle classes set this well below 1.
	DutyCycle float64 `json:"duty_cycle,omitempty"`
}

// Validate checks the client spec.
func (c ClientSpec) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: client has no name")
	}
	if _, _, err := c.Class.Archetype(); err != nil {
		return fmt.Errorf("workload: client %q: %w", c.Name, err)
	}
	if err := c.Arrival.Validate(); err != nil {
		return fmt.Errorf("workload: client %q: %w", c.Name, err)
	}
	if c.Windows < 0 || c.Windows > 16 {
		return fmt.Errorf("workload: client %q: windows %d out of [0, 16]", c.Name, c.Windows)
	}
	if c.Drift < 0 || c.Drift > 0.5 {
		return fmt.Errorf("workload: client %q: drift %g out of [0, 0.5]", c.Name, c.Drift)
	}
	if c.DutyCycle < 0 || c.DutyCycle > 1 {
		return fmt.Errorf("workload: client %q: duty_cycle %g out of [0, 1]", c.Name, c.DutyCycle)
	}
	return nil
}

// windows returns the effective window count (default 4).
func (c ClientSpec) windows() int {
	if c.Windows == 0 {
		return 4
	}
	return c.Windows
}

// dutyCycle returns the effective duty cycle (default 1).
func (c ClientSpec) dutyCycle() float64 {
	if c.DutyCycle == 0 {
		return 1
	}
	return c.DutyCycle
}

// Spec is a complete generative workload scenario: a named set of client
// workloads sharing one window length. A (Spec, seed) pair fully
// determines the generated apps — and therefore the trace, the profiles,
// and every experiment row derived from them.
type Spec struct {
	Name string `json:"name"`
	// WindowS is the phase-window length in seconds (default 0.12, the
	// paper's ~120 ms mean phase length).
	WindowS float64      `json:"window_s,omitempty"`
	Clients []ClientSpec `json:"clients"`
}

// Validate checks the spec and every client in it.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec has no name")
	}
	if s.WindowS < 0 || s.WindowS > 10 {
		return fmt.Errorf("workload: spec %q: window_s %g out of [0, 10]", s.Name, s.WindowS)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("workload: spec %q has no clients", s.Name)
	}
	seen := make(map[string]bool, len(s.Clients))
	for _, c := range s.Clients {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("workload: spec %q: %w", s.Name, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: spec %q: duplicate client name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// windowS returns the effective window length (default 0.12 s).
func (s Spec) windowS() float64 {
	if s.WindowS == 0 {
		return 0.12
	}
	return s.WindowS
}
