package workload

import (
	"math"
	"testing"
)

func TestSuiteComposition(t *testing.T) {
	apps := Suite()
	if len(apps) != 26 {
		t.Fatalf("suite has %d apps, want 26 (SPECint 12 + SPECfp 14)", len(apps))
	}
	ints, fps := 0, 0
	for _, a := range apps {
		switch a.Class {
		case Int:
			ints++
		case FP:
			fps++
		}
	}
	if ints != 12 || fps != 14 {
		t.Errorf("class split = %d int / %d fp, want 12/14", ints, fps)
	}
}

func TestAllMixesValid(t *testing.T) {
	for _, a := range Suite() {
		if len(a.Phases) < 3 || len(a.Phases) > 5 {
			t.Errorf("%s has %d phases, want 3-5", a.Name, len(a.Phases))
		}
		for _, ph := range a.Phases {
			if err := ph.Mix.Validate(); err != nil {
				t.Errorf("%s phase %d: %v", a.Name, ph.Index, err)
			}
			if ph.Mix.ComputeFrac() <= 0 {
				t.Errorf("%s phase %d: no compute fraction", a.Name, ph.Index)
			}
		}
	}
}

func TestPhaseWeightsSumToOne(t *testing.T) {
	for _, a := range Suite() {
		sum := 0.0
		for _, ph := range a.Phases {
			if ph.Weight <= 0 {
				t.Errorf("%s phase %d has non-positive weight", a.Name, ph.Index)
			}
			sum += ph.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s phase weights sum to %v", a.Name, sum)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Suite()
	b := Suite()
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Phases) != len(b[i].Phases) {
			t.Fatal("suite not deterministic")
		}
		for j := range a[i].Phases {
			if a[i].Phases[j] != b[i].Phases[j] {
				t.Fatalf("%s phase %d differs across calls", a[i].Name, j)
			}
		}
	}
}

func TestSignaturesUnique(t *testing.T) {
	seen := map[uint64]string{}
	for _, a := range Suite() {
		for _, ph := range a.Phases {
			key := ph.Signature
			if prev, dup := seen[key]; dup {
				t.Errorf("signature collision between %s and %s", a.Name, prev)
			}
			seen[key] = a.Name
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "swim" || a.Class != FP {
		t.Errorf("ByName(swim) = %v/%v", a.Name, a.Class)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestMemoryBoundCharacter(t *testing.T) {
	// The famously memory-bound codes must have much higher mr than the
	// compute-bound ones — this spread drives the paper's per-app
	// adaptation differences.
	memBound := []string{"mcf", "art", "swim"}
	cpuBound := []string{"crafty", "eon", "sixtrack"}
	minMem, maxCPU := math.Inf(1), 0.0
	for _, n := range memBound {
		a, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if mr := a.Phases[0].Mix.L2MissRate; mr < minMem {
			minMem = mr
		}
	}
	for _, n := range cpuBound {
		a, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if mr := a.Phases[0].Mix.L2MissRate; mr > maxCPU {
			maxCPU = mr
		}
	}
	if minMem < 10*maxCPU {
		t.Errorf("memory-bound mr %v not well separated from compute-bound %v", minMem, maxCPU)
	}
}

func TestFPAppsHaveFPWork(t *testing.T) {
	for _, a := range FPApps() {
		if a.Phases[0].Mix.FPFrac < 0.3 {
			t.Errorf("%s: FP app with FPFrac %v", a.Name, a.Phases[0].Mix.FPFrac)
		}
	}
	for _, a := range IntApps() {
		if a.Phases[0].Mix.FPFrac > 0.2 {
			t.Errorf("%s: int app with FPFrac %v", a.Name, a.Phases[0].Mix.FPFrac)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	if names[0] != "gzip" || names[13] != "swim" {
		t.Errorf("unexpected ordering: %v", names[:3])
	}
}

func TestMixValidateRejects(t *testing.T) {
	bad := []Mix{
		{LoadFrac: 0.5, StoreFrac: 0.4, BranchFrac: 0.2, DepDistMean: 2},
		{LoadFrac: 0.2, DepDistMean: 0.5},
		{LoadFrac: 0.2, DepDistMean: 2, BranchMispredictRate: 0.9},
		{LoadFrac: 0.2, DepDistMean: 2, L2MissRate: 0.5},
		{LoadFrac: 0.2, DepDistMean: 2, MemOverlap: 1.0},
		{LoadFrac: 0.2, DepDistMean: 2, FPFrac: 1.5},
		{LoadFrac: -0.1, DepDistMean: 2},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, m)
		}
	}
}

func TestClassString(t *testing.T) {
	if Int.String() != "int" || FP.String() != "fp" {
		t.Error("Class.String misbehaves")
	}
}
