package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func genTrace(t *testing.T) *TraceV1 {
	t.Helper()
	tr, err := Generate(testSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceRoundTripByteIdentical(t *testing.T) {
	tr := genTrace(t)
	first, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeTrace(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("encode→decode→re-encode is not byte-identical")
	}
	h1, err := tr.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := decoded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash changed across round trip: %s vs %s", h1, h2)
	}
}

func TestTraceGoldenEnvelope(t *testing.T) {
	// Golden structural check: the canonical encoding starts with the
	// fixed header fields in order, ends with exactly one newline, and
	// declares the current format/version.
	enc, err := genTrace(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	head := "{\n  \"format\": \"eval.workload.trace\",\n  \"version\": 1,\n  \"generator\": \"workload.Generate\",\n"
	if !bytes.HasPrefix(enc, []byte(head)) {
		t.Errorf("canonical encoding does not start with the fixed header:\n%s", enc[:min(len(enc), 200)])
	}
	if !bytes.HasSuffix(enc, []byte("}\n")) || bytes.HasSuffix(enc, []byte("\n\n")) {
		t.Error("canonical encoding must end with exactly one newline")
	}
}

func TestDecodeTraceRejectsStaleVersion(t *testing.T) {
	enc, err := genTrace(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Replace(enc, []byte(`"version": 1`), []byte(`"version": 2`), 1)
	_, err = DecodeTrace(stale)
	if err == nil || !strings.Contains(err.Error(), "unsupported trace version 2") {
		t.Errorf("stale version: got %v, want unsupported-version error", err)
	}
	foreign := bytes.Replace(enc, []byte(`"format": "eval.workload.trace"`), []byte(`"format": "other.trace"`), 1)
	if _, err := DecodeTrace(foreign); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("foreign format: got %v, want format error", err)
	}
}

func TestDecodeTraceRejectsUnknownFields(t *testing.T) {
	enc, err := genTrace(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	extended := bytes.Replace(enc, []byte(`"seed": 42`), []byte(`"seed": 42,`+"\n"+`  "wattage": 9000`), 1)
	if _, err := DecodeTrace(extended); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown field: got %v, want strict-decode rejection", err)
	}
}

func TestDecodeTraceRejectsInvalidPayload(t *testing.T) {
	tr := genTrace(t)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(enc, &raw); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		doc  func() []byte
		want string
	}{
		{"no apps", func() []byte {
			b := bytes.Replace(enc, raw["apps"], []byte("[]"), 1)
			return b
		}, "no apps"},
		{"bad weight", func() []byte {
			mut := *tr
			mut.Apps = append([]TraceApp(nil), tr.Apps...)
			mut.Apps[0].Phases = append([]Phase(nil), tr.Apps[0].Phases...)
			mut.Apps[0].Phases[0].Weight = 2
			b, _ := json.MarshalIndent(&mut, "", "  ")
			return append(b, '\n')
		}, "weight"},
		{"bad class", func() []byte {
			mut := *tr
			mut.Apps = append([]TraceApp(nil), tr.Apps...)
			mut.Apps[0].Class = "vector"
			b, _ := json.MarshalIndent(&mut, "", "  ")
			return append(b, '\n')
		}, "unknown class"},
	}
	for _, c := range cases {
		if _, err := DecodeTrace(c.doc()); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestDecodeSpec(t *testing.T) {
	spec := testSpec()
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec.Name || len(got.Clients) != len(spec.Clients) {
		t.Errorf("decoded spec mismatch: %+v", got)
	}
	if _, err := DecodeSpec([]byte(`{"name": "x", "clienst": []}`)); err == nil {
		t.Error("typo'd field accepted")
	}
}

func TestLowerProvenanceDistinguishesTraces(t *testing.T) {
	a, err := GenerateApps(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateApps(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Name != b[0].Name {
		t.Fatal("expected identical app names across seeds")
	}
	if a[0].Trace == b[0].Trace {
		t.Error("different seeds produced the same trace hash")
	}
}
