package workload

import (
	"fmt"
	"hash/fnv"

	"repro/internal/mathx"
)

// Generator is the TraceV1.Generator value stamped by Generate.
const Generator = "workload.Generate"

// Generate lowers a spec to its trace at a seed. The result is a pure
// function of (spec, seed): the root RNG is derived from the seed and
// the spec name, each client gets an independent child stream keyed by
// its position, and every draw inside a client happens in a fixed
// order, so regenerating with the same inputs reproduces the trace
// byte for byte (see TestGenerateDeterministic).
func Generate(spec Spec, seed int64) (*TraceV1, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := mathx.NewRNG(seed ^ nameSeed(spec.Name))
	apps := make([]TraceApp, len(spec.Clients))
	for i, c := range spec.Clients {
		apps[i] = genClient(spec, c, root.Split(int64(i)))
	}
	t := &TraceV1{
		Format:    TraceFormat,
		Version:   TraceVersion,
		Generator: Generator,
		Spec:      &spec,
		Seed:      seed,
		Apps:      apps,
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated trace invalid: %w", err)
	}
	return t, nil
}

// GenerateApps is Generate followed by Lower: it returns the ready-to-run
// App values, each carrying the trace's content hash as provenance.
func GenerateApps(spec Spec, seed int64) ([]App, error) {
	t, err := Generate(spec, seed)
	if err != nil {
		return nil, err
	}
	return t.Lower()
}

// genClient lowers one client to a TraceApp. Draw order per window is
// fixed — duty activation, then drift steps (windows after the first),
// then arrival counting — so the stream consumed is independent of
// which windows end up active.
func genClient(spec Spec, c ClientSpec, rng *mathx.RNG) TraceApp {
	base, class, err := c.Class.Archetype()
	if err != nil {
		// Unreachable: spec.Validate checked every client class.
		panic(err)
	}
	windowS := spec.windowS()
	duty := c.dutyCycle()
	drift := make([]float64, 9)
	// rem is the renewal-process time until the next arrival; it carries
	// across windows so the process is continuous over the active span.
	rem := c.Arrival.interarrival(rng)
	type window struct {
		arrivals int
		mix      Mix
	}
	var wins []window
	total := 0
	for w := 0; w < c.windows(); w++ {
		active := rng.Float64() < duty
		if w > 0 && c.Drift > 0 {
			for j := range drift {
				step := rng.Uniform(-c.Drift, c.Drift) / 2
				drift[j] = mathx.Clamp(drift[j]+step, -c.Drift, c.Drift)
			}
		}
		if !active {
			continue
		}
		arrivals := 0
		avail := windowS
		for rem <= avail {
			avail -= rem
			arrivals++
			rem = c.Arrival.interarrival(rng)
		}
		rem -= avail
		if arrivals == 0 {
			continue
		}
		wins = append(wins, window{arrivals, driftMix(base, drift)})
		total += arrivals
	}
	if total == 0 {
		// Degenerate draw (low rate x low duty cycle left every window
		// empty): emit one archetype phase so the client still runs.
		wins = []window{{1, base}}
		total = 1
	}
	phases := make([]Phase, len(wins))
	for i, w := range wins {
		phases[i] = Phase{
			Index:     i,
			Weight:    float64(w.arrivals) / float64(total),
			Mix:       w.mix,
			Signature: genSignature(spec.Name, c.Name, i),
		}
	}
	return TraceApp{Name: spec.Name + "/" + c.Name, Class: class.String(), Phases: phases}
}

// driftMix applies the accumulated multiplicative drift state to the
// archetype mix, clamped to the same envelope jitterMix keeps the proxy
// suite inside (branch widened to cover the branchy-int archetype). A
// zero drift vector returns the archetype exactly.
func driftMix(m Mix, d []float64) Mix {
	s := func(v, lo, hi float64, j int) float64 {
		return mathx.Clamp(v*(1+d[j]), lo, hi)
	}
	out := Mix{
		LoadFrac:             s(m.LoadFrac, 0.05, 0.45, 0),
		StoreFrac:            s(m.StoreFrac, 0.02, 0.25, 1),
		BranchFrac:           s(m.BranchFrac, 0.02, 0.30, 2),
		FPFrac:               s(m.FPFrac, 0, 1, 3),
		DepDistMean:          s(m.DepDistMean, 1.2, 8, 4),
		BranchMispredictRate: s(m.BranchMispredictRate, 0.001, 0.25, 5),
		L1MissRate:           s(m.L1MissRate, 0.001, 0.3, 6),
		L2MissRate:           s(m.L2MissRate, 0.00005, 0.08, 7),
		MemOverlap:           s(m.MemOverlap, 0, 0.9, 8),
	}
	if sum := out.LoadFrac + out.StoreFrac + out.BranchFrac; sum > 0.9 {
		out.LoadFrac *= 0.9 / sum
		out.StoreFrac *= 0.9 / sum
		out.BranchFrac *= 0.9 / sum
	}
	return out
}

// genSignature derives a stable basic-block-vector identity for a
// generated phase from its (spec, client, window) coordinates.
func genSignature(spec, client string, window int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d", spec, client, window)
	return h.Sum64()
}
