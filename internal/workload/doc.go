// Package workload supplies the instruction streams the EVAL evaluation
// runs on: a fixed proxy suite standing in for the paper's SPEC CPU2000
// binaries, and a generative engine that opens the same experiments to an
// unbounded scenario space.
//
// # Proxy suite
//
// Each of the 26 applications is described by the generative parameters
// of its instruction stream — type mix, dependency distances (ILP),
// branch predictability, cache and memory miss behavior — per execution
// phase (Mix, Phase, App; see workload.go). The pipeline package
// synthesizes traces from these mixes and measures CPI components and
// per-subsystem activity factors, exactly the quantities (Eq. 5 terms and
// alpha_f inputs) the paper's evaluation extracts from SESC running SPEC.
//
// The proxies are calibrated to the published character of each benchmark
// (mcf/art/swim memory-bound with high L2 miss rates, crafty/eon/sixtrack
// compute-bound, etc.); absolute CPIs are not meant to match the Athlon
// simulation, but the spread of memory-boundedness, ILP, and int/fp
// activity that drives the adaptation study is preserved.
//
// # Generative workloads
//
// Spec (spec.go) composes client workloads the paper's fixed menu cannot
// express: each ClientSpec names a generative class (memory-wall
// streaming, branchy integer, vectorizable FP, bursty/idle duty cycles,
// server mix), an arrival process (Poisson, Gamma, or Weibull renewal
// with a shape knob for burstiness), a per-window mix-drift amplitude,
// and a duty cycle. Generate (generate.go) lowers a spec deterministically
// to ordinary App values — one App per client, one Phase per active
// window, weights proportional to the work that arrived in the window —
// so every downstream consumer (profiles, figures, controllers) treats
// generated scenarios exactly like proxies.
//
// # Trace record/replay
//
// TraceV1 (trace.go) is the versioned, self-describing JSON envelope that
// makes any scenario — generated or hand-built — recordable and
// byte-identically replayable: format/version header, the generator spec
// and seed that produced it (when one did), and the full per-phase
// records. Encode is canonical (fixed field order, shortest round-trip
// floats), so encode→decode→re-encode is byte-identical and the SHA-256
// of the encoding (TraceV1.Hash) is a stable content address that joins
// the artifact-cache keys of everything derived from the trace. See
// WORKLOADS.md for the format specification and compatibility rules.
package workload
