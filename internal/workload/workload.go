package workload

import (
	"fmt"
	"hash/fnv"

	"repro/internal/mathx"
)

// Class partitions the suite, deciding whether the integer or the FP
// structures (queues, FUs) are the adaptation targets for a run (§4.1).
type Class int

const (
	Int Class = iota
	FP
)

// String names the class.
func (c Class) String() string {
	if c == Int {
		return "int"
	}
	return "fp"
}

// ParseClass inverts String; it accepts exactly "int" and "fp".
func ParseClass(s string) (Class, error) {
	switch s {
	case "int":
		return Int, nil
	case "fp":
		return FP, nil
	default:
		return Int, fmt.Errorf("workload: unknown class %q (want \"int\" or \"fp\")", s)
	}
}

// Mix holds the generative parameters of an instruction stream. The JSON
// field names are part of the TraceV1 wire format (see trace.go and
// WORKLOADS.md); renaming one is a trace-format version bump.
type Mix struct {
	// Instruction-type fractions; the remainder after loads, stores and
	// branches is compute, split between integer and FP by FPFrac.
	LoadFrac   float64 `json:"load_frac"`
	StoreFrac  float64 `json:"store_frac"`
	BranchFrac float64 `json:"branch_frac"`
	FPFrac     float64 `json:"fp_frac"`
	// DepDistMean is the mean register dependency distance (in dynamic
	// instructions); larger means more ILP.
	DepDistMean float64 `json:"dep_dist_mean"`
	// BranchMispredictRate is the misprediction probability per branch.
	BranchMispredictRate float64 `json:"branch_mispredict_rate"`
	// L1MissRate is the per-memory-op probability of missing L1 and
	// hitting L2.
	L1MissRate float64 `json:"l1_miss_rate"`
	// L2MissRate is the per-instruction rate of L2 misses to memory
	// (the paper's mr).
	L2MissRate float64 `json:"l2_miss_rate"`
	// MemOverlap is the fraction of main-memory latency hidden under
	// computation and other misses (MLP); the paper's mp is the
	// *non-overlapped* penalty.
	MemOverlap float64 `json:"mem_overlap"`
}

// Validate checks that the mix is a proper distribution.
func (m Mix) Validate() error {
	if m.LoadFrac < 0 || m.StoreFrac < 0 || m.BranchFrac < 0 ||
		m.LoadFrac+m.StoreFrac+m.BranchFrac > 0.95 {
		return fmt.Errorf("workload: type fractions invalid: %+v", m)
	}
	if m.FPFrac < 0 || m.FPFrac > 1 {
		return fmt.Errorf("workload: FPFrac %g out of [0,1]", m.FPFrac)
	}
	if m.DepDistMean < 1 {
		return fmt.Errorf("workload: DepDistMean %g must be >= 1", m.DepDistMean)
	}
	if m.BranchMispredictRate < 0 || m.BranchMispredictRate > 0.5 {
		return fmt.Errorf("workload: BranchMispredictRate %g out of range", m.BranchMispredictRate)
	}
	if m.L1MissRate < 0 || m.L1MissRate > 1 {
		return fmt.Errorf("workload: L1MissRate %g out of range", m.L1MissRate)
	}
	if m.L2MissRate < 0 || m.L2MissRate > 0.2 {
		return fmt.Errorf("workload: L2MissRate %g out of range", m.L2MissRate)
	}
	if m.MemOverlap < 0 || m.MemOverlap >= 1 {
		return fmt.Errorf("workload: MemOverlap %g out of [0,1)", m.MemOverlap)
	}
	return nil
}

// ComputeFrac returns the non-memory, non-branch fraction.
func (m Mix) ComputeFrac() float64 {
	return 1 - m.LoadFrac - m.StoreFrac - m.BranchFrac
}

// Phase is one stable execution phase of an application (the ~120 ms
// regions the Sherwood-style detector finds; §4.3.3). Like Mix, the JSON
// field names are part of the TraceV1 wire format.
type Phase struct {
	Index int `json:"index"`
	// Weight is the fraction of execution time spent in this phase.
	Weight float64 `json:"weight"`
	Mix    Mix     `json:"mix"`
	// Signature is the phase's basic-block-vector identity, used by the
	// phase detector to recognize recurring phases.
	Signature uint64 `json:"signature"`
}

// App is one benchmark proxy or one generated client workload.
type App struct {
	Name   string
	Class  Class
	Phases []Phase
	// Trace is the TraceV1 hash of the trace this app was decoded from
	// (empty for the built-in proxy suite). It rides into the profile
	// cache keys so two traces that happen to share an app name can
	// never alias each other's cached profiles.
	Trace string
}

// archetype is the per-app base mix; phases jitter around it.
type archetype struct {
	name  string
	class Class
	mix   Mix
}

// suite lists the 26 SPEC CPU2000 proxies with their published character.
var suite = []archetype{
	// SPECint 2000.
	{"gzip", Int, Mix{0.22, 0.08, 0.17, 0.00, 2.2, 0.060, 0.030, 0.0008, 0.30}},
	{"vpr", Int, Mix{0.28, 0.10, 0.12, 0.02, 2.8, 0.090, 0.035, 0.0025, 0.30}},
	{"gcc", Int, Mix{0.26, 0.12, 0.18, 0.00, 2.5, 0.070, 0.040, 0.0030, 0.30}},
	{"mcf", Int, Mix{0.32, 0.09, 0.17, 0.00, 3.5, 0.080, 0.120, 0.0300, 0.50}},
	{"crafty", Int, Mix{0.28, 0.08, 0.12, 0.00, 2.0, 0.080, 0.012, 0.0004, 0.20}},
	{"parser", Int, Mix{0.25, 0.10, 0.16, 0.00, 2.6, 0.080, 0.030, 0.0020, 0.30}},
	{"eon", Int, Mix{0.26, 0.13, 0.10, 0.15, 1.9, 0.040, 0.006, 0.0002, 0.20}},
	{"perlbmk", Int, Mix{0.28, 0.14, 0.15, 0.00, 2.3, 0.060, 0.020, 0.0010, 0.25}},
	{"gap", Int, Mix{0.27, 0.10, 0.12, 0.02, 2.4, 0.050, 0.025, 0.0020, 0.30}},
	{"vortex", Int, Mix{0.30, 0.15, 0.14, 0.00, 2.2, 0.040, 0.030, 0.0015, 0.30}},
	{"bzip2", Int, Mix{0.24, 0.09, 0.14, 0.00, 2.3, 0.070, 0.025, 0.0015, 0.35}},
	{"twolf", Int, Mix{0.27, 0.09, 0.13, 0.00, 2.7, 0.090, 0.045, 0.0030, 0.30}},
	// SPECfp 2000.
	{"wupwise", FP, Mix{0.30, 0.12, 0.05, 0.45, 3.5, 0.010, 0.020, 0.0020, 0.50}},
	{"swim", FP, Mix{0.32, 0.14, 0.03, 0.50, 4.5, 0.005, 0.080, 0.0250, 0.60}},
	{"mgrid", FP, Mix{0.35, 0.10, 0.03, 0.55, 4.0, 0.005, 0.050, 0.0120, 0.55}},
	{"applu", FP, Mix{0.32, 0.12, 0.04, 0.50, 4.2, 0.008, 0.060, 0.0150, 0.55}},
	{"mesa", FP, Mix{0.27, 0.12, 0.08, 0.35, 2.5, 0.030, 0.010, 0.0005, 0.30}},
	{"galgel", FP, Mix{0.30, 0.10, 0.04, 0.55, 3.8, 0.010, 0.040, 0.0080, 0.50}},
	{"art", FP, Mix{0.34, 0.08, 0.06, 0.45, 3.2, 0.020, 0.150, 0.0400, 0.60}},
	{"equake", FP, Mix{0.34, 0.10, 0.05, 0.45, 3.4, 0.015, 0.070, 0.0180, 0.50}},
	{"facerec", FP, Mix{0.30, 0.10, 0.05, 0.50, 3.6, 0.015, 0.035, 0.0060, 0.45}},
	{"ammp", FP, Mix{0.30, 0.11, 0.05, 0.50, 3.3, 0.010, 0.050, 0.0100, 0.45}},
	{"lucas", FP, Mix{0.28, 0.12, 0.03, 0.55, 4.0, 0.005, 0.050, 0.0120, 0.55}},
	{"fma3d", FP, Mix{0.30, 0.12, 0.06, 0.45, 3.0, 0.020, 0.040, 0.0080, 0.45}},
	{"sixtrack", FP, Mix{0.26, 0.10, 0.05, 0.55, 2.8, 0.010, 0.008, 0.0003, 0.30}},
	{"apsi", FP, Mix{0.30, 0.11, 0.05, 0.50, 3.4, 0.010, 0.045, 0.0090, 0.50}},
}

// Suite returns the full 26-application proxy suite with per-app phases
// generated deterministically.
func Suite() []App {
	apps := make([]App, 0, len(suite))
	for _, a := range suite {
		apps = append(apps, makeApp(a))
	}
	return apps
}

// Names returns the suite's application names in order.
func Names() []string {
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.name
	}
	return names
}

// ByName returns one application.
func ByName(name string) (App, error) {
	for _, a := range suite {
		if a.name == name {
			return makeApp(a), nil
		}
	}
	return App{}, fmt.Errorf("workload: unknown application %q", name)
}

// IntApps and FPApps return the class sub-suites.
func IntApps() []App { return byClass(Int) }

// FPApps returns the floating-point sub-suite.
func FPApps() []App { return byClass(FP) }

func byClass(c Class) []App {
	var out []App
	for _, a := range suite {
		if a.class == c {
			out = append(out, makeApp(a))
		}
	}
	return out
}

// makeApp derives an app's phases deterministically from its name: 3-5
// phases whose mixes jitter around the archetype, with one phase kept close
// to the archetype so every app retains its published character.
func makeApp(a archetype) App {
	seed := nameSeed(a.name)
	rng := mathx.NewRNG(seed)
	nPhases := 3 + rng.Intn(3)
	phases := make([]Phase, nPhases)
	weights := make([]float64, nPhases)
	wsum := 0.0
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
		wsum += weights[i]
	}
	for i := 0; i < nPhases; i++ {
		m := a.mix
		if i > 0 {
			m = jitterMix(m, rng)
		}
		phases[i] = Phase{
			Index:     i,
			Weight:    weights[i] / wsum,
			Mix:       m,
			Signature: signature(seed, i),
		}
	}
	return App{Name: a.name, Class: a.class, Phases: phases}
}

// jitterMix perturbs a mix multiplicatively while keeping it valid.
func jitterMix(m Mix, rng *mathx.RNG) Mix {
	j := func(v, lo, hi float64) float64 {
		return mathx.Clamp(v*rng.Uniform(0.75, 1.30), lo, hi)
	}
	out := Mix{
		LoadFrac:             j(m.LoadFrac, 0.05, 0.45),
		StoreFrac:            j(m.StoreFrac, 0.02, 0.25),
		BranchFrac:           j(m.BranchFrac, 0.02, 0.25),
		FPFrac:               mathx.Clamp(m.FPFrac*rng.Uniform(0.8, 1.2), 0, 1),
		DepDistMean:          j(m.DepDistMean, 1.2, 8),
		BranchMispredictRate: j(m.BranchMispredictRate, 0.001, 0.2),
		L1MissRate:           j(m.L1MissRate, 0.001, 0.3),
		L2MissRate:           j(m.L2MissRate, 0.00005, 0.08),
		MemOverlap:           mathx.Clamp(m.MemOverlap*rng.Uniform(0.85, 1.15), 0, 0.9),
	}
	// Renormalize if the jitter pushed type fractions too high.
	if s := out.LoadFrac + out.StoreFrac + out.BranchFrac; s > 0.9 {
		out.LoadFrac *= 0.9 / s
		out.StoreFrac *= 0.9 / s
		out.BranchFrac *= 0.9 / s
	}
	return out
}

// nameSeed hashes an app name to a stable seed.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// signature derives a stable per-phase basic-block-vector identity.
func signature(seed int64, phase int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", seed, phase)
	return h.Sum64()
}
