package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// TraceFormat and TraceVersion identify the TraceV1 wire format. The
// format string never changes; the version bumps whenever a field is
// renamed, removed, or re-interpreted (additions also bump it: readers
// decode strictly, so an old reader must never silently drop data a
// newer writer considered meaningful). See WORKLOADS.md for the full
// compatibility rules.
const (
	TraceFormat  = "eval.workload.trace"
	TraceVersion = 1
)

// TraceApp is the wire form of one App: the class is spelled out
// ("int"/"fp") so the envelope is self-describing without Go enums.
type TraceApp struct {
	Name   string  `json:"name"`
	Class  string  `json:"class"`
	Phases []Phase `json:"phases"`
}

// TraceV1 is the versioned, self-describing envelope for a recorded
// workload scenario. A trace captures everything the experiments need —
// per-app, per-phase instruction-mix records — plus the provenance
// (generator, spec, seed) that produced it, so any scenario can be
// regenerated and cross-checked or replayed directly.
//
// Encode is canonical: field order is fixed by this struct, floats use
// Go's shortest round-trip formatting, and the document is indented
// with two spaces and ends in one newline. encode→decode→re-encode is
// therefore byte-identical, and Hash (the SHA-256 of the encoding) is a
// stable content address.
type TraceV1 struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Generator records what produced the trace (workload.Generator for
	// generated traces; hand-built traces may say anything or omit it).
	Generator string `json:"generator,omitempty"`
	// Spec and Seed are the generator inputs, present when the trace was
	// generated; `tracegen -validate` regenerates from them and checks
	// the hash matches.
	Spec *Spec      `json:"spec,omitempty"`
	Seed int64      `json:"seed"`
	Apps []TraceApp `json:"apps"`
}

// Validate checks the envelope: header, app names, classes, and that
// every app's phases are consecutively indexed valid mixes with weights
// summing to 1.
func (t *TraceV1) Validate() error {
	if t.Format != TraceFormat {
		return fmt.Errorf("workload: trace format %q, want %q", t.Format, TraceFormat)
	}
	if t.Version != TraceVersion {
		return fmt.Errorf("workload: unsupported trace version %d (this build reads version %d; regenerate the trace from its spec)", t.Version, TraceVersion)
	}
	if len(t.Apps) == 0 {
		return fmt.Errorf("workload: trace has no apps")
	}
	seen := make(map[string]bool, len(t.Apps))
	for _, a := range t.Apps {
		if a.Name == "" {
			return fmt.Errorf("workload: trace app has no name")
		}
		if seen[a.Name] {
			return fmt.Errorf("workload: trace has duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
		if _, err := ParseClass(a.Class); err != nil {
			return fmt.Errorf("workload: trace app %q: %w", a.Name, err)
		}
		if len(a.Phases) == 0 {
			return fmt.Errorf("workload: trace app %q has no phases", a.Name)
		}
		wsum := 0.0
		for i, ph := range a.Phases {
			if ph.Index != i {
				return fmt.Errorf("workload: trace app %q: phase %d has index %d (indices must be consecutive from 0)", a.Name, i, ph.Index)
			}
			if !(ph.Weight > 0) || ph.Weight > 1 {
				return fmt.Errorf("workload: trace app %q phase %d: weight %g out of (0, 1]", a.Name, i, ph.Weight)
			}
			if err := ph.Mix.Validate(); err != nil {
				return fmt.Errorf("workload: trace app %q phase %d: %w", a.Name, i, err)
			}
			wsum += ph.Weight
		}
		if math.Abs(wsum-1) > 1e-6 {
			return fmt.Errorf("workload: trace app %q: phase weights sum to %g, want 1", a.Name, wsum)
		}
	}
	return nil
}

// Encode renders the trace in canonical form. The result is the unit of
// hashing: any byte difference is a semantic difference.
func (t *TraceV1) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: encoding trace: %w", err)
	}
	return append(b, '\n'), nil
}

// Hash returns the SHA-256 hex digest of the canonical encoding — the
// trace's content address, used as the `trace` component of downstream
// artifact-cache keys.
func (t *TraceV1) Hash() (string, error) {
	b, err := t.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// DecodeTrace parses and validates a canonical trace document. Decoding
// is strict: the format and version are checked first (so a stale or
// foreign document fails with a version error, not a field error), and
// unknown fields are rejected — a v1 reader never silently drops data a
// newer writer meant something by.
func DecodeTrace(data []byte) (*TraceV1, error) {
	var header struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(data, &header); err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	if header.Format != TraceFormat {
		return nil, fmt.Errorf("workload: trace format %q, want %q", header.Format, TraceFormat)
	}
	if header.Version != TraceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d (this build reads version %d; regenerate the trace from its spec)", header.Version, TraceVersion)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t TraceV1
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Lower converts the trace to runnable App values. Every app carries
// the trace's content hash as provenance, which flows into the profile
// cache keys so identically named apps from different traces never
// alias.
func (t *TraceV1) Lower() ([]App, error) {
	hash, err := t.Hash()
	if err != nil {
		return nil, err
	}
	apps := make([]App, len(t.Apps))
	for i, a := range t.Apps {
		class, err := ParseClass(a.Class)
		if err != nil {
			return nil, fmt.Errorf("workload: trace app %q: %w", a.Name, err)
		}
		phases := make([]Phase, len(a.Phases))
		copy(phases, a.Phases)
		apps[i] = App{Name: a.Name, Class: class, Phases: phases, Trace: hash}
	}
	return apps, nil
}

// DecodeSpec parses and validates a workload spec document (the input
// to Generate and `tracegen -spec`). Unknown fields are rejected so a
// typo'd knob fails loudly instead of silently using a default.
func DecodeSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
