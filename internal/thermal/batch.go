package thermal

// BatchPoint is one operating point of a batched solve: the per-subsystem
// inputs plus the core frequency applied to the uncore.
type BatchPoint struct {
	Ins  []SubsystemInput
	FRel float64
}

// BatchResult is one batched solve outcome; Err mirrors what the per-combo
// CoreSteady would have returned for the same point.
type BatchResult struct {
	State CoreState
	Err   error
}

// SolveBatch solves the core steady state for every operating point of one
// chip/phase sweep in a single call. The points share the solver's scratch
// arena (the subsystem iterate buffer is allocated once for the whole
// batch), and each point warm-starts from its predecessor's converged
// state — adjacent grid points differ by one actuation step, so the
// previous fixed point is within a few iterations of the next. With
// DisableAcceleration set every point cold-starts and retraces
// Model.CoreSteady exactly, which is what the equivalence tests pin.
//
// Results are positionally aligned with pts. A failed point invalidates
// the warm state (exactly as sequential CoreSteady calls would), so the
// next point cold-starts rather than inheriting a diverged iterate.
//
// The batch books a "thermal.batch.solves" counter on the solver's
// registry, so sweeps are distinguishable from per-combo solves in
// -metrics output.
func (s *Solver) SolveBatch(pts []BatchPoint) []BatchResult {
	out := make([]BatchResult, len(pts))
	for i, pt := range pts {
		out[i].State, out[i].Err = s.CoreSteady(pt.Ins, pt.FRel)
	}
	s.Obs.Counter("thermal.batch.solves").Add(int64(len(pts)))
	return out
}
