package thermal

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tech"
)

// gridInputs builds subsystem inputs for one (vdd, vbb, fRel) grid point.
func gridInputs(fp interface{ N() int }, base []SubsystemInput, vdd, vbb, fRel float64) []SubsystemInput {
	ins := make([]SubsystemInput, len(base))
	for i, in := range base {
		in.VddV = vdd
		in.VbbV = vbb
		in.FRel = fRel
		ins[i] = in
	}
	return ins
}

// TestSolverReferenceMatchesModel pins the refactoring seam: a Solver with
// DisableAcceleration set must reproduce Model.CoreSteady byte for byte
// (Model.CoreSteady itself now delegates to such a solver, and the fast
// paths are judged against it).
func TestSolverReferenceMatchesModel(t *testing.T) {
	m, fp, vp := newModel(t)
	base := nominalInputs(fp, vp, 1.0)
	sv := NewSolver(m)
	sv.DisableAcceleration = true
	for _, fRel := range []float64{0.8, 1.0, 1.2} {
		ins := gridInputs(fp, base, vp.VddNomV, 0, fRel)
		want, werr := m.CoreSteady(ins, fRel)
		got, gerr := sv.CoreSteady(ins, fRel)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("fRel %g: error mismatch: model %v solver %v", fRel, werr, gerr)
		}
		if got.THK != want.THK || got.UncoreW != want.UncoreW || got.TotalW != want.TotalW || len(got.Subs) != len(want.Subs) {
			t.Fatalf("fRel %g: header mismatch: got %+v want %+v", fRel, got, want)
		}
		for i := range got.Subs {
			if got.Subs[i] != want.Subs[i] {
				t.Fatalf("fRel %g sub %d: %+v != %+v", fRel, i, got.Subs[i], want.Subs[i])
			}
		}
	}
}

// TestSolverAcceleratedWithinTolK sweeps the full Vdd x Vbb actuation grid
// and checks that the accelerated, warm-started solver lands within the
// fixed-point tolerance contract of the undamped reference: both satisfy
// |T_next - T| < TolK at their answer, so they may differ by a few TolK —
// the bound here is 10*TolK, calibrated with margin above what the sweep
// observes. Convergence classification must agree exactly.
func TestSolverAcceleratedWithinTolK(t *testing.T) {
	m, fp, vp := newModel(t)
	base := nominalInputs(fp, vp, 1.0)
	cfg := tech.Config{TimingSpec: true, ASV: true, ABB: true}
	tolK := DefaultParams().TolK
	bound := 10 * tolK

	fast := NewSolver(m) // warm-started across the whole grid walk
	for _, fRel := range []float64{0.9, 1.1} {
		for _, vdd := range cfg.VddLevels(vp.VddNomV) {
			for _, vbb := range cfg.VbbLevels() {
				ins := gridInputs(fp, base, vdd, vbb, fRel)
				ref := NewSolver(m)
				ref.DisableAcceleration = true
				want, werr := ref.CoreSteady(ins, fRel)
				got, gerr := fast.CoreSteady(ins, fRel)
				if werr != nil {
					// MaxIter exhaustion or runaway in the reference; the
					// accelerated solver converging faster here is fine,
					// there is no golden answer to compare against.
					continue
				}
				if gerr != nil {
					t.Fatalf("vdd %.3f vbb %.3f fRel %g: fast solver failed where reference converged: %v", vdd, vbb, fRel, gerr)
				}
				if d := got.THK - want.THK; d > bound || d < -bound {
					t.Errorf("vdd %.3f vbb %.3f fRel %g: TH %.6f vs %.6f (|d|=%.2e)", vdd, vbb, fRel, got.THK, want.THK, d)
				}
				for i := range want.Subs {
					if got.Subs[i].Converged != want.Subs[i].Converged {
						t.Fatalf("vdd %.3f vbb %.3f fRel %g sub %d: converged %v vs %v",
							vdd, vbb, fRel, i, got.Subs[i].Converged, want.Subs[i].Converged)
					}
					if d := got.Subs[i].TK - want.Subs[i].TK; d > bound || d < -bound {
						t.Errorf("vdd %.3f vbb %.3f fRel %g sub %d: T %.6f vs %.6f (|d|=%.2e)",
							vdd, vbb, fRel, i, got.Subs[i].TK, want.Subs[i].TK, d)
					}
				}
			}
		}
	}
}

// TestSolverWarmStartConsistent re-solves the same grid point repeatedly
// on one warm solver: answers must stay put (the warm start changes the
// iteration path, never the destination beyond tolerance), and returned
// states must be snapshots — not views of solver scratch that later calls
// overwrite.
func TestSolverWarmStartConsistent(t *testing.T) {
	m, fp, vp := newModel(t)
	base := nominalInputs(fp, vp, 1.0)
	ins := gridInputs(fp, base, vp.VddNomV, 0, 1.0)
	sv := NewSolver(m)
	first, err := sv.CoreSteady(ins, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]SubsystemState(nil), first.Subs...)
	tolK := DefaultParams().TolK
	for round := 0; round < 3; round++ {
		again, err := sv.CoreSteady(ins, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range snapshot {
			if d := again.Subs[i].TK - snapshot[i].TK; d > 10*tolK || d < -10*tolK {
				t.Fatalf("round %d sub %d: warm re-solve drifted: %.6f vs %.6f", round, i, again.Subs[i].TK, snapshot[i].TK)
			}
		}
	}
	for i := range snapshot {
		if first.Subs[i] != snapshot[i] {
			t.Fatalf("sub %d: earlier result mutated by later solves", i)
		}
	}
}

// TestSolverObsMetrics checks the observability satellite: solves record
// the thermal.iter histogram, and a non-converging solve books the
// thermal.nonconverged counter.
func TestSolverObsMetrics(t *testing.T) {
	m, fp, vp := newModel(t)
	reg := obs.NewRegistry()
	sv := NewSolver(m)
	sv.Obs = reg
	ins := gridInputs(fp, nominalInputs(fp, vp, 1.0), vp.VddNomV, 0, 1.0)
	if _, err := sv.CoreSteady(ins, 1.0); err != nil {
		t.Fatal(err)
	}
	if n := reg.Timer("thermal.iter").Count(); n != 1 {
		t.Fatalf("thermal.iter count = %d, want 1", n)
	}
	if v := reg.Counter("thermal.nonconverged").Value(); v != 0 {
		t.Fatalf("thermal.nonconverged = %d after a clean solve", v)
	}
	// A hopeless operating point (far above spec supply at high frequency)
	// must be reported, not silently absorbed.
	hot := gridInputs(fp, nominalInputs(fp, vp, 1.0), vp.VddNomV*1.6, 0.4, 3.0)
	if _, err := sv.CoreSteady(hot, 3.0); err == nil {
		t.Skip("operating point unexpectedly feasible; counter path untestable here")
	}
	if v := reg.Counter("thermal.nonconverged").Value(); v < 1 {
		t.Fatalf("thermal.nonconverged = %d after failed solve, want >= 1", v)
	}
}
