// Package thermal implements the steady-state temperature model of §4.1:
// each subsystem sits at T = TH + Rth * (Pdyn + Psta) above the common heat
// sink (Eq. 6), where its static power in turn depends on its temperature
// (Eqs. 8-9), so the (T, Psta, Vt) system is solved by fixed-point
// iteration exactly as the paper prescribes ("these equations form a
// feedback system and need to be solved iteratively").
//
// The heat-sink temperature TH itself rises with the core's total power —
// the slow (seconds-scale) outer feedback the paper's controller samples
// with a sensor every 2-3 s.
//
// # Solving many operating points
//
// Three tiers of solver exist, slowest and most authoritative first:
//
//   - Model.CoreSteady / Model.SubsystemSteady: stateless cold-start
//     solves with the undamped inner contraction. These are the reference
//     semantics everything else is tested against, and they are what the
//     experiment paths use for the per-combo probes inside the adaptation
//     scans.
//   - Solver.CoreSteady: reusable scratch, cross-call warm starts, and
//     Aitken Δ² acceleration; certified by the same |next-t| < TolK
//     residual, so answers agree with the reference within a few TolK but
//     not bit for bit.
//   - Solver.SolveBatch: a whole chip/phase grid sweep in one call —
//     one scratch arena for the batch, each point warm-started from its
//     grid neighbor. With DisableAcceleration it degenerates to the exact
//     per-combo reference, which is how its equivalence tests pin it.
//
// # Why the adaptation scans stay on the cold-start reference
//
// The warm tiers honor the same TolK tolerance but land on slightly
// different iterates (order 1e-3 K). The adaptation layer feeds these
// temperatures into snap-to-grid frequency decisions, where a ~1e-3
// perturbation flips a snap with probability of the same order — and the
// experiment harness performs ~10^5-10^6 steady solves per run, so warm
// starts inside the scans would make "fast" runs diverge from the
// reference output byte-wise almost surely. The batched/warm solvers are
// therefore for callers that want many thermal states per se (training
// sweeps, diagnostics, figure generation), while FreqSolve/PowerSolve keep
// paying the exact cold-start solves; their speed comes from exact
// restructuring (pruning, memoization, batched PE tables) instead.
package thermal
