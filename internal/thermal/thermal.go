package thermal

import (
	"fmt"
	"math"
	"time"

	"repro/internal/floorplan"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/varius"
)

// Params configures the thermal network.
type Params struct {
	// THBaseK is the heat-sink temperature at zero core power (ambient
	// plus case offset).
	THBaseK float64
	// RthHSKPerW is the effective heat-sink thermal resistance seen by one
	// core's power (K/W): TH = THBaseK + RthHS * Pcore.
	RthHSKPerW float64
	// RthCoefKMM2PerW is the vertical thermal-resistance coefficient:
	// Rth_i = coef / (A_i + SpreadMM2) with A_i in mm^2. Rth is a function
	// of subsystem area, as the paper notes (§4.1).
	RthCoefKMM2PerW float64
	// SpreadMM2 models lateral heat spreading, which keeps very small
	// blocks (the ALU) from having unboundedly large Rth.
	SpreadMM2 float64
	// CoreAreaMM2 is the physical area of core + L1s at 45 nm.
	CoreAreaMM2 float64
	// MaxIter and TolK bound the fixed-point iteration.
	MaxIter int
	TolK    float64
}

// DefaultParams returns the calibrated thermal network: a core that reaches
// the paper's TH_MAX = 70 C heat-sink limit near PMAX = 30 W, and hotspot
// rises of a few kelvin to ~15 K depending on density.
func DefaultParams() Params {
	return Params{
		THBaseK:         45 + varius.CelsiusOffset,
		RthHSKPerW:      0.8,
		RthCoefKMM2PerW: 1.6,
		SpreadMM2:       0.05,
		CoreAreaMM2:     15.0,
		MaxIter:         60,
		TolK:            1e-3,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.THBaseK <= 0 || p.RthHSKPerW < 0 || p.RthCoefKMM2PerW <= 0 ||
		p.CoreAreaMM2 <= 0 || p.SpreadMM2 < 0 {
		return fmt.Errorf("thermal: invalid params %+v", p)
	}
	if p.MaxIter < 1 || p.TolK <= 0 {
		return fmt.Errorf("thermal: invalid iteration control %+v", p)
	}
	return nil
}

// Model is the thermal network for one core.
type Model struct {
	params Params
	vp     varius.Params
	pw     *power.Model
	rth    []float64 // K/W per subsystem
}

// NewModel builds the network, deriving each subsystem's Rth from its area.
func NewModel(fp *floorplan.Floorplan, vp varius.Params, pw *power.Model, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Model{params: p, vp: vp, pw: pw, rth: make([]float64, fp.N())}
	for i, s := range fp.Subsystems {
		areaMM2 := s.AreaFrac * p.CoreAreaMM2
		m.rth[i] = p.RthCoefKMM2PerW / (areaMM2 + p.SpreadMM2)
	}
	return m, nil
}

// Params returns the thermal configuration.
func (m *Model) Params() Params { return m.params }

// Rth returns subsystem i's thermal resistance to the heat sink (K/W).
func (m *Model) Rth(i int) float64 { return m.rth[i] }

// SubsystemInput is the operating point of one subsystem for thermal/power
// evaluation: exactly the controller inputs of §4.1 (minus TH, passed
// separately).
type SubsystemInput struct {
	Index  int     // floorplan index
	Vt0Eff float64 // leakage-effective tester-referred Vt0 (V)
	AlphaF float64 // activity factor (accesses/cycle)
	VddV   float64
	VbbV   float64
	FRel   float64 // relative core frequency
	// PowerMult scales both dynamic and static power, modeling structure
	// choices (the LowSlope FU replica costs ~30% more power; a downsized
	// queue saves some). Zero means 1.
	PowerMult float64
}

// powerMult returns the effective multiplier.
func (in SubsystemInput) powerMult() float64 {
	if in.PowerMult == 0 {
		return 1
	}
	return in.PowerMult
}

// SubsystemState is the converged steady state of one subsystem.
type SubsystemState struct {
	TK        float64 // device temperature
	PdynW     float64
	PstaW     float64
	VtV       float64 // operating threshold voltage at TK
	Converged bool
}

// PowerW returns total subsystem power.
func (s SubsystemState) PowerW() float64 { return s.PdynW + s.PstaW }

// SubsystemSteady solves the Eq. 6-9 feedback for one subsystem at heat-sink
// temperature thK. Non-convergence (thermal runaway at an absurd operating
// point) is reported via Converged=false with the last iterate, which will
// violate any temperature constraint and so be rejected by callers.
func (m *Model) SubsystemSteady(in SubsystemInput, thK float64) SubsystemState {
	mult := in.powerMult()
	pdyn := mult * m.pw.Pdyn(in.Index, in.AlphaF, in.VddV, in.FRel)
	t := thK
	var vt, psta float64
	for iter := 0; iter < m.params.MaxIter; iter++ {
		vt = m.vp.VtAt(in.Vt0Eff, t, in.VddV, in.VbbV)
		psta = mult * m.pw.Psta(in.Index, vt, in.VddV, t)
		next := thK + m.rth[in.Index]*(pdyn+psta)
		if math.Abs(next-t) < m.params.TolK {
			return SubsystemState{TK: next, PdynW: pdyn, PstaW: psta, VtV: vt, Converged: true}
		}
		// The map T -> TH + Rth*Psta(T) is a contraction away from thermal
		// runaway (its slope is well below 1), so the undamped update
		// converges fast; the hard cap catches runaway.
		t = next
		if t > 500 { // > 225 C: unambiguous runaway, stop early
			break
		}
	}
	return SubsystemState{TK: t, PdynW: pdyn, PstaW: psta, VtV: vt, Converged: false}
}

// FRelMaxForTemp returns the highest relative frequency at which subsystem
// in (ignoring in.FRel) stays at or below tmaxK given heat-sink temperature
// thK. Because Pdyn is linear in f and at the T = TMAX boundary the static
// power is known exactly, this is closed-form. Returns 0 if the subsystem
// exceeds tmaxK even at f = 0 (leakage alone), and +Inf if it can never
// reach tmaxK (zero Rth paths are excluded by construction).
func (m *Model) FRelMaxForTemp(in SubsystemInput, thK, tmaxK float64) float64 {
	mult := in.powerMult()
	vtAtMax := m.vp.VtAt(in.Vt0Eff, tmaxK, in.VddV, in.VbbV)
	pstaAtMax := mult * m.pw.Psta(in.Index, vtAtMax, in.VddV, tmaxK)
	budget := (tmaxK-thK)/m.rth[in.Index] - pstaAtMax
	if budget <= 0 {
		return 0
	}
	pdynPerF := mult * m.pw.Pdyn(in.Index, in.AlphaF, in.VddV, 1.0)
	if pdynPerF <= 0 {
		return math.Inf(1)
	}
	return budget / pdynPerF
}

// CoreState is the converged steady state of the whole core at one
// operating point.
type CoreState struct {
	THK     float64
	Subs    []SubsystemState
	UncoreW float64
	TotalW  float64
}

// MaxTK returns the hottest subsystem temperature.
func (c CoreState) MaxTK() float64 {
	t := 0.0
	for _, s := range c.Subs {
		if s.TK > t {
			t = s.TK
		}
	}
	return t
}

// CoreSteady solves the whole core: the inner per-subsystem fixed points
// nested in the outer heat-sink feedback TH = THBase + RthHS * Ptotal.
// fRel is the core frequency applied to the uncore; each subsystem input
// carries its own FRel (equal to the core's in practice).
//
// This is the reference algorithm: a throwaway Solver with acceleration
// disabled, reproducing the original undamped inner loop step for step.
// Hot callers that solve many nearby operating points should hold a Solver
// instead and let it warm-start and accelerate.
func (m *Model) CoreSteady(ins []SubsystemInput, fRel float64) (CoreState, error) {
	s := Solver{m: m, DisableAcceleration: true}
	return s.CoreSteady(ins, fRel)
}

// subsystemSteady is SubsystemSteady generalized with a warm-start
// temperature t0 and optional Aitken Δ² acceleration of the contraction
// T -> TH + Rth*(Pdyn+Psta(T)). With accel=false and t0 == thK it retraces
// SubsystemSteady's iterates exactly. With accel=true each loop turn takes
// two plain steps and extrapolates through the secant of the residual,
// which converges in 1-3 turns where the plain contraction needs ~10; the
// extrapolated iterate is only accepted inside the physical bracket
// (0, 500 K), falling back to the second plain step otherwise, and
// convergence is still certified by the plain-step residual |next-t| <
// TolK, so accelerated answers satisfy the same tolerance contract.
func (m *Model) subsystemSteady(in SubsystemInput, thK, t0 float64, accel bool) SubsystemState {
	mult := in.powerMult()
	pdyn := mult * m.pw.Pdyn(in.Index, in.AlphaF, in.VddV, in.FRel)
	t := t0
	var vt, psta float64
	for iter := 0; iter < m.params.MaxIter; iter++ {
		vt = m.vp.VtAt(in.Vt0Eff, t, in.VddV, in.VbbV)
		psta = mult * m.pw.Psta(in.Index, vt, in.VddV, t)
		next := thK + m.rth[in.Index]*(pdyn+psta)
		if math.Abs(next-t) < m.params.TolK {
			return SubsystemState{TK: next, PdynW: pdyn, PstaW: psta, VtV: vt, Converged: true}
		}
		if !accel {
			t = next
			if t > 500 { // > 225 C: unambiguous runaway, stop early
				break
			}
			continue
		}
		vt2 := m.vp.VtAt(in.Vt0Eff, next, in.VddV, in.VbbV)
		psta2 := mult * m.pw.Psta(in.Index, vt2, in.VddV, next)
		next2 := thK + m.rth[in.Index]*(pdyn+psta2)
		if math.Abs(next2-next) < m.params.TolK {
			return SubsystemState{TK: next2, PdynW: pdyn, PstaW: psta2, VtV: vt2, Converged: true}
		}
		denom := (next2 - next) - (next - t)
		if acc := t - (next-t)*(next-t)/denom; denom != 0 && acc > 0 && acc < 500 {
			t = acc
		} else {
			t = next2
		}
		if t > 500 {
			break
		}
	}
	return SubsystemState{TK: t, PdynW: pdyn, PstaW: psta, VtV: vt, Converged: false}
}

// Solver runs CoreSteady solves with reusable scratch and cross-call warm
// starts. Successive solves in an adaptation loop move the operating point
// only slightly, so starting the heat-sink feedback and each subsystem's
// device temperature from the previous converged state, plus Aitken Δ²
// acceleration of the inner contraction, cuts the nested fixed-point work
// by an order of magnitude while certifying the same TolK residuals.
//
// # Ownership
//
// A Solver owns mutable scratch (the subsystem iterate buffer and the
// warm-start temperatures) and must be driven by one goroutine at a time;
// the Model underneath is immutable and shared freely. Returned CoreStates
// are copied out of the scratch and safe to retain. The zero warm state is
// the reference cold start, so a fresh Solver's first solve differs from
// Model.CoreSteady only by acceleration.
type Solver struct {
	m *Model

	// DisableAcceleration switches the solver to the reference slow path:
	// cold starts and the original undamped inner loop, byte-identical to
	// Model.CoreSteady. The equivalence tests check the fast path against
	// it, like adapt's DisablePruning.
	DisableAcceleration bool

	// Obs, when non-nil, receives a "thermal.iter" histogram of outer
	// fixed-point iteration counts (recorded as unitless durations) and a
	// "thermal.nonconverged" counter of solves that exhausted MaxIter or
	// hit runaway — visible in -metrics instead of only an error string.
	Obs *obs.Registry

	subs   []SubsystemState // current outer iterate (scratch)
	startT []float64        // previous converged device temperatures
	warmTH float64          // previous converged heat-sink temperature
	warm   bool
}

// NewSolver returns a cold solver over m.
func NewSolver(m *Model) *Solver { return &Solver{m: m} }

// CoreSteady solves the core steady state like Model.CoreSteady, reusing
// the solver's scratch and (unless DisableAcceleration) warm-starting from
// the previous converged solve.
func (s *Solver) CoreSteady(ins []SubsystemInput, fRel float64) (CoreState, error) {
	m := s.m
	if len(s.subs) != len(ins) {
		s.subs = make([]SubsystemState, len(ins))
		s.startT = make([]float64, len(ins))
		s.warm = false
	}
	accel := !s.DisableAcceleration
	warm := accel && s.warm
	th := m.params.THBaseK
	if warm {
		th = s.warmTH
	}
	subs := s.subs
	var st CoreState
	for outer := 0; outer < m.params.MaxIter; outer++ {
		total := m.pw.Uncore(fRel, th)
		uncore := total
		for i := range ins {
			t0 := th
			if accel {
				if outer > 0 {
					t0 = subs[i].TK // previous outer iterate
				} else if warm {
					t0 = s.startT[i]
				}
			}
			subs[i] = m.subsystemSteady(ins[i], th, t0, accel)
			total += subs[i].PowerW()
		}
		nextTH := m.params.THBaseK + m.params.RthHSKPerW*total
		st = CoreState{THK: nextTH, Subs: subs, UncoreW: uncore, TotalW: total}
		if math.Abs(nextTH-th) < m.params.TolK {
			for i := range subs {
				if !subs[i].Converged {
					return s.seal(st, outer+1, fmt.Errorf("thermal: subsystem %d did not converge", i))
				}
			}
			return s.seal(st, outer+1, nil)
		}
		th = 0.5*th + 0.5*nextTH
		if th > 500 {
			return s.seal(st, outer+1, fmt.Errorf("thermal: heat-sink runaway (TH = %.0f K)", th))
		}
	}
	return s.seal(st, m.params.MaxIter, fmt.Errorf("thermal: core fixed point did not converge"))
}

// seal copies the scratch iterate into a caller-owned CoreState, records
// the solve in the metrics registry, and updates the warm-start state — a
// failed solve invalidates it so the next call cold-starts.
func (s *Solver) seal(st CoreState, iters int, err error) (CoreState, error) {
	out := make([]SubsystemState, len(st.Subs))
	copy(out, st.Subs)
	st.Subs = out
	if err == nil {
		s.warmTH = st.THK
		for i := range out {
			s.startT[i] = out[i].TK
		}
		s.warm = true
	} else {
		s.warm = false
		s.Obs.Counter("thermal.nonconverged").Inc()
	}
	s.Obs.Timer("thermal.iter").Observe(time.Duration(iters))
	return st, err
}
