package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/varius"
)

func newModel(t *testing.T) (*Model, *floorplan.Floorplan, varius.Params) {
	t.Helper()
	vp := varius.DefaultParams()
	fp, err := floorplan.Default(vp.CoreSide)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := power.NewModel(fp, vp, power.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(fp, vp, pw, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m, fp, vp
}

func nominalInputs(fp *floorplan.Floorplan, vp varius.Params, fRel float64) []SubsystemInput {
	ins := make([]SubsystemInput, fp.N())
	for i, sub := range fp.Subsystems {
		ins[i] = SubsystemInput{
			Index:  i,
			Vt0Eff: vp.VtMeanV,
			AlphaF: sub.TypicalAlpha,
			VddV:   vp.VddNomV,
			VbbV:   0,
			FRel:   fRel,
		}
	}
	return ins
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.RthCoefKMM2PerW = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error")
	}
	bad2 := DefaultParams()
	bad2.MaxIter = 0
	if err := bad2.Validate(); err == nil {
		t.Error("expected validation error for MaxIter")
	}
}

func TestRthDecreasesWithArea(t *testing.T) {
	m, fp, _ := newModel(t)
	// IntALU (tiny) must have a larger Rth than Dcache (large).
	var alu, dc int
	for i, s := range fp.Subsystems {
		switch s.ID {
		case floorplan.IntALU:
			alu = i
		case floorplan.Dcache:
			dc = i
		}
	}
	if m.Rth(alu) <= m.Rth(dc) {
		t.Errorf("Rth(IntALU)=%v should exceed Rth(Dcache)=%v", m.Rth(alu), m.Rth(dc))
	}
	for i := range fp.Subsystems {
		if m.Rth(i) <= 0 {
			t.Errorf("Rth(%d) = %v not positive", i, m.Rth(i))
		}
	}
}

func TestSubsystemSteadyConverges(t *testing.T) {
	m, fp, vp := newModel(t)
	th := 60 + varius.CelsiusOffset
	for _, in := range nominalInputs(fp, vp, 1.0) {
		st := m.SubsystemSteady(in, th)
		if !st.Converged {
			t.Fatalf("subsystem %d did not converge", in.Index)
		}
		if st.TK <= th {
			t.Errorf("subsystem %d at %.2f K not above heat sink %.2f K", in.Index, st.TK, th)
		}
		if st.PdynW <= 0 || st.PstaW <= 0 {
			t.Errorf("subsystem %d has non-positive power", in.Index)
		}
		// Eq. 6 holds at the fixed point.
		want := th + m.Rth(in.Index)*(st.PdynW+st.PstaW)
		if math.Abs(st.TK-want) > 0.01 {
			t.Errorf("subsystem %d: T=%v but Eq.6 gives %v", in.Index, st.TK, want)
		}
	}
}

func TestHigherVddRunsHotter(t *testing.T) {
	m, fp, vp := newModel(t)
	th := 60 + varius.CelsiusOffset
	in := nominalInputs(fp, vp, 1.0)[0]
	base := m.SubsystemSteady(in, th)
	in.VddV = 1.2
	boosted := m.SubsystemSteady(in, th)
	if boosted.TK <= base.TK {
		t.Errorf("higher Vdd should run hotter: %v vs %v", boosted.TK, base.TK)
	}
}

func TestReverseBodyBiasCoolsLeakage(t *testing.T) {
	m, fp, vp := newModel(t)
	th := 60 + varius.CelsiusOffset
	in := nominalInputs(fp, vp, 1.0)[0]
	base := m.SubsystemSteady(in, th)
	in.VbbV = -0.4 // RBB raises Vt, cutting leakage
	rbb := m.SubsystemSteady(in, th)
	if rbb.PstaW >= base.PstaW {
		t.Errorf("RBB should cut leakage: %v vs %v", rbb.PstaW, base.PstaW)
	}
	if rbb.TK >= base.TK {
		t.Errorf("RBB should cool the block: %v vs %v", rbb.TK, base.TK)
	}
}

func TestFRelMaxForTemp(t *testing.T) {
	m, fp, vp := newModel(t)
	th := 60 + varius.CelsiusOffset
	tmax := 85 + varius.CelsiusOffset
	for _, in := range nominalInputs(fp, vp, 1.0) {
		fmax := m.FRelMaxForTemp(in, th, tmax)
		if fmax <= 0 {
			t.Fatalf("subsystem %d: fmax = %v", in.Index, fmax)
		}
		if math.IsInf(fmax, 1) {
			continue
		}
		// Running exactly at fmax must not exceed TMAX.
		in.FRel = fmax
		st := m.SubsystemSteady(in, th)
		if st.TK > tmax+0.05 {
			t.Errorf("subsystem %d at fmax: T = %v exceeds TMAX %v", in.Index, st.TK, tmax)
		}
		// Running 10%% faster must exceed TMAX (the bound is tight).
		in.FRel = fmax * 1.1
		st = m.SubsystemSteady(in, th)
		if st.Converged && st.TK < tmax-0.05 {
			t.Errorf("subsystem %d bound not tight: T = %v at 1.1*fmax", in.Index, st.TK)
		}
	}
}

func TestFRelMaxForTempInfeasible(t *testing.T) {
	m, fp, vp := newModel(t)
	in := nominalInputs(fp, vp, 1.0)[0]
	// Heat sink already above TMAX: no frequency is feasible.
	if fmax := m.FRelMaxForTemp(in, 95+varius.CelsiusOffset, 85+varius.CelsiusOffset); fmax != 0 {
		t.Errorf("fmax = %v, want 0 when TH > TMAX", fmax)
	}
}

func TestCoreSteadyNominal(t *testing.T) {
	m, fp, vp := newModel(t)
	st, err := m.CoreSteady(nominalInputs(fp, vp, 1.0), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// The nominal core should land near the paper's 25 W and below the
	// 70 C heat-sink limit.
	if st.TotalW < 18 || st.TotalW > 32 {
		t.Errorf("core power = %.1f W, want ~25 W", st.TotalW)
	}
	thC := st.THK - varius.CelsiusOffset
	if thC < 55 || thC > 72 {
		t.Errorf("heat sink = %.1f C, want in the 55-72 C band", thC)
	}
	if st.MaxTK() <= st.THK {
		t.Error("hottest subsystem should exceed heat-sink temperature")
	}
	if st.MaxTK() > 95+varius.CelsiusOffset {
		t.Errorf("hotspot %.1f C implausibly hot", st.MaxTK()-varius.CelsiusOffset)
	}
	if st.UncoreW <= 0 {
		t.Error("uncore power must be positive")
	}
}

func TestCoreSteadyScalesWithFrequency(t *testing.T) {
	m, fp, vp := newModel(t)
	slow, err := m.CoreSteady(nominalInputs(fp, vp, 0.78), 0.78)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.CoreSteady(nominalInputs(fp, vp, 1.2), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalW >= fast.TotalW {
		t.Errorf("power should grow with f: %v vs %v", slow.TotalW, fast.TotalW)
	}
	if slow.THK >= fast.THK {
		t.Errorf("heat sink should warm with f: %v vs %v", slow.THK, fast.THK)
	}
	// Baseline-like operation (0.78x) should be well below 25 W, echoing
	// the paper's ~17 W Baseline.
	if slow.TotalW > 24 {
		t.Errorf("baseline-like power = %.1f W, expected well below nominal", slow.TotalW)
	}
}

func TestCoreSteadyDeterministic(t *testing.T) {
	m, fp, vp := newModel(t)
	a, err := m.CoreSteady(nominalInputs(fp, vp, 1.0), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CoreSteady(nominalInputs(fp, vp, 1.0), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalW != b.TotalW || a.THK != b.THK {
		t.Error("CoreSteady is not deterministic")
	}
}
