package thermal

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tech"
)

// batchGrid assembles the chip/phase sweep a batched solve covers: every
// (Vdd, Vbb) actuation pair at two frequencies.
func batchGrid(fp interface{ N() int }, base []SubsystemInput, vddNomV float64) []BatchPoint {
	cfg := tech.Config{TimingSpec: true, ASV: true, ABB: true}
	var pts []BatchPoint
	for _, fRel := range []float64{0.9, 1.1} {
		for _, vdd := range cfg.VddLevels(vddNomV) {
			for _, vbb := range cfg.VbbLevels() {
				pts = append(pts, BatchPoint{Ins: gridInputs(fp, base, vdd, vbb, fRel), FRel: fRel})
			}
		}
	}
	return pts
}

// TestSolveBatchReferenceExact: with acceleration disabled, SolveBatch
// must reproduce Model.CoreSteady byte for byte at every grid point — the
// batch is then nothing but the reference loop with shared scratch.
func TestSolveBatchReferenceExact(t *testing.T) {
	m, fp, vp := newModel(t)
	pts := batchGrid(fp, nominalInputs(fp, vp, 1.0), vp.VddNomV)
	sv := NewSolver(m)
	sv.DisableAcceleration = true
	res := sv.SolveBatch(pts)
	if len(res) != len(pts) {
		t.Fatalf("got %d results for %d points", len(res), len(pts))
	}
	for pi, pt := range pts {
		want, werr := m.CoreSteady(pt.Ins, pt.FRel)
		got, gerr := res[pi].State, res[pi].Err
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("point %d: error mismatch: model %v batch %v", pi, werr, gerr)
		}
		if got.THK != want.THK || got.UncoreW != want.UncoreW || got.TotalW != want.TotalW {
			t.Fatalf("point %d: header mismatch: got %+v want %+v", pi, got, want)
		}
		for i := range want.Subs {
			if got.Subs[i] != want.Subs[i] {
				t.Fatalf("point %d sub %d: %+v != %+v", pi, i, got.Subs[i], want.Subs[i])
			}
		}
	}
}

// TestSolveBatchWithinTolK: the warm-started, accelerated batch must land
// within the fixed-point tolerance contract of fresh per-combo reference
// solves at every grid point, with identical convergence classification —
// the SolveBatch analogue of TestSolverAcceleratedWithinTolK.
func TestSolveBatchWithinTolK(t *testing.T) {
	m, fp, vp := newModel(t)
	pts := batchGrid(fp, nominalInputs(fp, vp, 1.0), vp.VddNomV)
	bound := 10 * DefaultParams().TolK

	res := NewSolver(m).SolveBatch(pts)
	for pi, pt := range pts {
		ref := NewSolver(m)
		ref.DisableAcceleration = true
		want, werr := ref.CoreSteady(pt.Ins, pt.FRel)
		if werr != nil {
			// No golden answer where the reference itself fails; the batch
			// converging faster is acceptable.
			continue
		}
		if res[pi].Err != nil {
			t.Fatalf("point %d: batch failed where reference converged: %v", pi, res[pi].Err)
		}
		got := res[pi].State
		if d := got.THK - want.THK; d > bound || d < -bound {
			t.Errorf("point %d: TH %.6f vs %.6f (|d|=%.2e)", pi, got.THK, want.THK, d)
		}
		for i := range want.Subs {
			if got.Subs[i].Converged != want.Subs[i].Converged {
				t.Fatalf("point %d sub %d: converged %v vs %v",
					pi, i, got.Subs[i].Converged, want.Subs[i].Converged)
			}
			if d := got.Subs[i].TK - want.Subs[i].TK; d > bound || d < -bound {
				t.Errorf("point %d sub %d: T %.6f vs %.6f (|d|=%.2e)",
					pi, i, got.Subs[i].TK, want.Subs[i].TK, d)
			}
		}
	}
}

// TestSolveBatchResultsAreSnapshots: batch results must not alias the
// solver scratch — every point's state has to survive later points.
func TestSolveBatchResultsAreSnapshots(t *testing.T) {
	m, fp, vp := newModel(t)
	base := nominalInputs(fp, vp, 1.0)
	pts := []BatchPoint{
		{Ins: gridInputs(fp, base, vp.VddNomV, 0, 0.8), FRel: 0.8},
		{Ins: gridInputs(fp, base, vp.VddNomV, 0.3, 1.2), FRel: 1.2},
	}
	sv := NewSolver(m)
	res := sv.SolveBatch(pts)
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("unexpected errors: %v, %v", res[0].Err, res[1].Err)
	}
	if res[0].State.Subs[0] == res[1].State.Subs[0] {
		t.Fatal("distinct operating points returned identical subsystem states")
	}
	again, err := sv.CoreSteady(pts[0].Ins, pts[0].FRel)
	if err != nil {
		t.Fatal(err)
	}
	_ = again
	if len(res[0].State.Subs) != len(pts[0].Ins) {
		t.Fatal("result lost its subsystem states after later solves")
	}
}

// TestSolveBatchObsCounter: sweeps book the thermal.batch.solves counter.
func TestSolveBatchObsCounter(t *testing.T) {
	m, fp, vp := newModel(t)
	base := nominalInputs(fp, vp, 1.0)
	sv := NewSolver(m)
	reg := obs.NewRegistry()
	sv.Obs = reg
	pts := []BatchPoint{
		{Ins: gridInputs(fp, base, vp.VddNomV, 0, 1.0), FRel: 1.0},
		{Ins: gridInputs(fp, base, vp.VddNomV, 0, 1.1), FRel: 1.1},
	}
	sv.SolveBatch(pts)
	if v := reg.Counter("thermal.batch.solves").Value(); v != 2 {
		t.Fatalf("thermal.batch.solves = %d, want 2", v)
	}
	// Empty batches are fine and book nothing.
	if res := sv.SolveBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}
