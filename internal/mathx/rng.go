package mathx

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source used across the simulator. It wraps
// math/rand with a fixed seeding discipline so that every stochastic
// component of a simulation can be reproduced exactly from a root seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child RNG from this one. The child's stream
// is a deterministic function of the parent's seed and the label, so
// components can be re-seeded stably even if the order of Split calls
// between them changes.
func (g *RNG) Split(label int64) *RNG {
	// SplitMix64-style mixing of the label with a draw from the parent.
	z := uint64(g.r.Int63()) ^ (uint64(label) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a sample from N(mu, sigma^2).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// StdNormal returns a sample from N(0, 1).
func (g *RNG) StdNormal() float64 { return g.r.NormFloat64() }

// Uniform returns a sample from U[lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// LogNormal returns a sample whose logarithm is N(mu, sigma^2).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns a sample from an exponential distribution with the
// given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Gamma returns a sample from a Gamma(shape, scale) distribution (mean
// shape*scale) using the Marsaglia-Tsang squeeze method, with the
// standard boost for shape < 1. Non-positive parameters return 0.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a).
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.StdNormal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a sample from a Weibull(shape, scale) distribution
// (mean scale*Gamma(1+1/shape)) by inverting the CDF. Non-positive
// parameters return 0.
func (g *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	// 1-u is in (0, 1], so the log is finite.
	return scale * math.Pow(-math.Log(1-g.Float64()), 1/shape)
}

// Geometric returns a sample from a geometric distribution with success
// probability p, counted as the number of failures before the first
// success (support {0, 1, 2, ...}). For p <= 0 it returns 0.
func (g *RNG) Geometric(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 0
	}
	u := g.r.Float64()
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
