package mathx

import (
	"errors"
	"math"
	"testing"
)

func TestCholeskyIdentity(t *testing.T) {
	n := 4
	a := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	l, err := Cholesky(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(l.At(i, j)-want) > 1e-12 {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want)
			}
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	// A known SPD matrix.
	a := NewSymMatrix(3)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(0, 2, -2)
	a.Set(1, 1, 10)
	a.Set(1, 2, 2)
	a.Set(2, 2, 5)
	l, err := Cholesky(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Verify L L^T = A.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-10 {
				t.Errorf("(LL^T)[%d][%d] = %v, want %v", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewSymMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2) // correlation > 1 => not PSD
	a.Set(1, 1, 1)
	if _, err := Cholesky(a, 1e-12); !errors.Is(err, ErrNotPD) {
		t.Errorf("expected ErrNotPD, got %v", err)
	}
}

func TestCholeskySemiDefiniteClamped(t *testing.T) {
	// Perfectly correlated pair: PSD but singular. Jitter should rescue it.
	a := NewSymMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 1, 1)
	if _, err := Cholesky(a, 1e-9); err != nil {
		t.Errorf("PSD matrix with jitter should factor, got %v", err)
	}
}

func TestMulLowerVec(t *testing.T) {
	l := NewSymMatrix(3)
	// Lower triangle: [[1,0,0],[2,3,0],[4,5,6]]
	l.Data[0] = 1
	l.Data[3], l.Data[4] = 2, 3
	l.Data[6], l.Data[7], l.Data[8] = 4, 5, 6
	y := MulLowerVec(l, []float64{1, 1, 1})
	want := []float64{1, 5, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestCorrelatedSamplesHaveTargetCorrelation(t *testing.T) {
	// Generate correlated pairs via Cholesky and verify empirical correlation.
	rho := 0.8
	a := NewSymMatrix(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	a.Set(0, 1, rho)
	l, err := Cholesky(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(9)
	const n = 100000
	var sx, sy, sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		z := []float64{g.StdNormal(), g.StdNormal()}
		v := MulLowerVec(l, z)
		sx += v[0]
		sy += v[1]
		sxy += v[0] * v[1]
		sxx += v[0] * v[0]
		syy += v[1] * v[1]
	}
	num := sxy/n - (sx/n)*(sy/n)
	den := math.Sqrt((sxx/n - (sx/n)*(sx/n)) * (syy/n - (sy/n)*(sy/n)))
	got := num / den
	if math.Abs(got-rho) > 0.02 {
		t.Errorf("empirical correlation = %v, want %v", got, rho)
	}
}

func TestSolveBisect(t *testing.T) {
	root := SolveBisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-10)
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
	// Non-bracketing interval returns the endpoint closer to a root.
	r := SolveBisect(func(x float64) float64 { return x + 10 }, 0, 1, 1e-10)
	if r != 0 {
		t.Errorf("non-bracketing solve = %v, want 0", r)
	}
	// Exact root at an endpoint.
	if r := SolveBisect(func(x float64) float64 { return x }, 0, 1, 1e-10); r != 0 {
		t.Errorf("endpoint root = %v, want 0", r)
	}
}
