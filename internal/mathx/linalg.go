package mathx

import (
	"errors"
	"fmt"
	"math"
)

// SymMatrix is a dense symmetric matrix stored in row-major full form.
// It is small-n linear algebra for correlation matrices of chip-grid cells;
// no attempt is made at cache blocking beyond the natural loop order.
type SymMatrix struct {
	N    int
	Data []float64 // len N*N
}

// NewSymMatrix allocates an n x n zero matrix.
func NewSymMatrix(n int) *SymMatrix {
	return &SymMatrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *SymMatrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set sets elements (i, j) and (j, i).
func (m *SymMatrix) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// ErrNotPD is returned when a Cholesky factorization encounters a
// non-positive pivot.
var ErrNotPD = errors.New("mathx: matrix not positive definite")

// Cholesky computes the lower-triangular factor L with A = L L^T.
// If the matrix is only positive semi-definite (as correlation matrices of
// strongly correlated grids often are, up to rounding), small negative
// pivots within jitter of zero are clamped; pivots more negative than
// -jitter*max-diagonal yield ErrNotPD.
func Cholesky(a *SymMatrix, jitter float64) (*SymMatrix, error) {
	n := a.N
	l := NewSymMatrix(n)
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := a.At(i, i); d > maxDiag {
			maxDiag = d
		}
	}
	tol := jitter * maxDiag
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			if i == j {
				if sum < -tol {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPD, i, sum)
				}
				if sum < tol {
					sum = tol
				}
				l.Data[i*n+i] = math.Sqrt(sum)
			} else {
				l.Data[i*n+j] = sum / l.Data[j*n+j]
			}
		}
	}
	return l, nil
}

// MulLowerVec computes y = L*x for a lower-triangular L (only the lower
// triangle of l is read).
func MulLowerVec(l *SymMatrix, x []float64) []float64 {
	n := l.N
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := l.Data[i*n : i*n+i+1]
		for k := 0; k <= i; k++ {
			s += row[k] * x[k]
		}
		y[i] = s
	}
	return y
}

// SolveBisect finds x in [lo, hi] with f(x) ~= 0 for a monotone f, to the
// given absolute tolerance on x. It assumes f(lo) and f(hi) bracket a root;
// if not, it returns the endpoint with the smaller |f|.
func SolveBisect(f func(float64) float64, lo, hi, tol float64) float64 {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo
	}
	if fhi == 0 {
		return hi
	}
	if flo*fhi > 0 {
		if math.Abs(flo) < math.Abs(fhi) {
			return lo
		}
		return hi
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 {
			return mid
		}
		if fm*flo < 0 {
			hi, fhi = mid, fm
		} else {
			lo, flo = mid, fm
		}
	}
	_ = fhi
	return 0.5 * (lo + hi)
}
