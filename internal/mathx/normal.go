// Package mathx provides the numerical building blocks shared by the EVAL
// simulation stack: normal-distribution math, deterministic random sampling,
// descriptive statistics, and small dense linear algebra (Cholesky) used to
// generate spatially correlated variation maps.
//
// Everything in this package is pure stdlib and deterministic given a seed.
package mathx

import (
	"math"
)

// Sqrt2 is cached to avoid recomputing math.Sqrt(2) in hot loops.
var sqrt2 = math.Sqrt(2)

// NormalCDF returns Phi(x), the standard normal cumulative distribution
// function evaluated at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/sqrt2)
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns Phi^-1(p), the inverse standard normal CDF.
// It uses Acklam's rational approximation refined with one Halley step,
// giving ~1e-15 relative accuracy over (0, 1). It returns -Inf for p <= 0
// and +Inf for p >= 1.
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step drives the error to machine precision.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalTailProb returns P(X > x) for a standard normal X, computed in a
// way that stays accurate deep in the upper tail (where 1-CDF would lose
// all precision).
func NormalTailProb(x float64) float64 {
	return 0.5 * math.Erfc(x/sqrt2)
}

// TruncatedNormalMean returns the mean of a standard normal truncated to
// (-inf, b]. Used when reasoning about path-delay distributions clipped at
// a critical-path wall.
func TruncatedNormalMean(b float64) float64 {
	denom := NormalCDF(b)
	if denom <= 0 {
		return b // degenerate truncation: all mass at the bound
	}
	return -NormalPDF(b) / denom
}
