package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-2, 0.022750131948179195},
		{3.5, 0.9997673709209645},
	}
	for _, c := range cases {
		got := NormalCDF(c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-8, 1e-4, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.9999, 1 - 1e-8} {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-10*math.Max(1, 1/p) {
			t.Errorf("NormalCDF(NormalQuantile(%g)) = %g", p, back)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Error("NormalQuantile(NaN) should be NaN")
	}
	if NormalQuantile(0.5) != 0 {
		// The Halley step preserves the exact zero at the median.
		if math.Abs(NormalQuantile(0.5)) > 1e-15 {
			t.Errorf("NormalQuantile(0.5) = %g, want 0", NormalQuantile(0.5))
		}
	}
}

func TestNormalQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalTailProbDeepTail(t *testing.T) {
	// At x=8 the naive 1-CDF is exactly 0 in float64; the Erfc-based tail
	// must still resolve ~6.2e-16.
	p := NormalTailProb(8)
	if p <= 0 || p > 1e-14 {
		t.Errorf("NormalTailProb(8) = %g, want ~6e-16", p)
	}
	if NormalTailProb(0) != 0.5 {
		t.Errorf("NormalTailProb(0) = %g, want 0.5", NormalTailProb(0))
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integration of the PDF should approximate the CDF.
	const h = 1e-3
	sum := 0.0
	x := -8.0
	for x < 1.0 {
		sum += h * 0.5 * (NormalPDF(x) + NormalPDF(x+h))
		x += h
	}
	want := NormalCDF(1.0)
	if math.Abs(sum-want) > 1e-6 {
		t.Errorf("integral = %v, want %v", sum, want)
	}
}

func TestTruncatedNormalMean(t *testing.T) {
	// Truncating at +inf leaves the mean at ~0.
	if m := TruncatedNormalMean(40); math.Abs(m) > 1e-12 {
		t.Errorf("TruncatedNormalMean(40) = %g, want ~0", m)
	}
	// Truncating at 0 gives mean -sqrt(2/pi).
	want := -math.Sqrt(2 / math.Pi)
	if m := TruncatedNormalMean(0); math.Abs(m-want) > 1e-12 {
		t.Errorf("TruncatedNormalMean(0) = %g, want %g", m, want)
	}
	// Truncation far below zero degenerates to the bound.
	if m := TruncatedNormalMean(-40); m != -40 {
		t.Errorf("TruncatedNormalMean(-40) = %g, want -40", m)
	}
}
