package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-data mean/variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error on out-of-range percentile")
	}
	if v, err := Percentile([]float64{42}, 75); err != nil || v != 42 {
		t.Errorf("single-element percentile = %v, %v", v, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("expected error on zero input")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if Lerp(2, 6, 0.5) != 4 {
		t.Error("Lerp misbehaves")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("expected error on empty input")
	}
}

// Property: the percentile function is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		va, err1 := Percentile(raw, pa)
		vb, err2 := Percentile(raw, pb)
		return err1 == nil && err2 == nil && va <= vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: variance is never negative and stddev^2 equals variance.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
		}
		v := Variance(raw)
		return v >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
