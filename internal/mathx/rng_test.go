package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7).Split(1)
	b := NewRNG(7).Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams coincide on %d of 100 draws", same)
	}
}

func TestRNGSplitDeterministic(t *testing.T) {
	a := NewRNG(7).Split(5)
	b := NewRNG(7).Split(5)
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("identical splits diverged")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Normal(3, 2)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.02 {
		t.Errorf("mean = %v, want ~3", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.02 {
		t.Errorf("stddev = %v, want ~2", s)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(-1, 5)
		if x < -1 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	g := NewRNG(3)
	const p = 0.25
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(g.Geometric(p))
	}
	got := sum / n
	want := (1 - p) / p
	if math.Abs(got-want) > 0.1 {
		t.Errorf("geometric mean = %v, want %v", got, want)
	}
	if g.Geometric(1) != 0 || g.Geometric(0) != 0 {
		t.Error("degenerate geometric parameters should return 0")
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(4)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(5)
	}
	if m := sum / n; math.Abs(m-5) > 0.1 {
		t.Errorf("exponential mean = %v, want ~5", m)
	}
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	// Both branches: boosted shape < 1 and squeeze-method shape >= 1.
	for _, c := range []struct{ shape, scale float64 }{{0.5, 2}, {3, 1.5}} {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := g.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v, %v) sample negative: %v", c.shape, c.scale, x)
			}
			sum += x
			sumSq += x * x
		}
		mean, wantMean := sum/n, c.shape*c.scale
		varc, wantVar := sumSq/n-mean*mean, c.shape*c.scale*c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Errorf("Gamma(%v, %v) mean = %v, want ~%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(varc-wantVar) > 0.1*wantVar {
			t.Errorf("Gamma(%v, %v) variance = %v, want ~%v", c.shape, c.scale, varc, wantVar)
		}
	}
	if g.Gamma(0, 1) != 0 || g.Gamma(1, -1) != 0 {
		t.Error("degenerate gamma parameters should return 0")
	}
}

func TestWeibullMean(t *testing.T) {
	g := NewRNG(8)
	const n = 200000
	for _, c := range []struct{ shape, scale float64 }{{0.7, 3}, {2, 1}} {
		sum := 0.0
		for i := 0; i < n; i++ {
			x := g.Weibull(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("Weibull sample negative: %v", x)
			}
			sum += x
		}
		want := c.scale * math.Gamma(1+1/c.shape)
		if m := sum / n; math.Abs(m-want) > 0.05*want {
			t.Errorf("Weibull(%v, %v) mean = %v, want ~%v", c.shape, c.scale, m, want)
		}
	}
	if g.Weibull(0, 1) != 0 || g.Weibull(1, 0) != 0 {
		t.Error("degenerate weibull parameters should return 0")
	}
}

func TestGammaWeibullDeterminism(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	for i := 0; i < 200; i++ {
		if a.Gamma(0.8, 2) != b.Gamma(0.8, 2) {
			t.Fatal("same-seed Gamma streams diverged")
		}
		if a.Weibull(1.5, 2) != b.Weibull(1.5, 2) {
			t.Fatal("same-seed Weibull streams diverged")
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal sample not positive")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(6)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
