package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics helpers invoked on empty data.
var ErrEmpty = errors.New("mathx: empty data")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on empty input; callers in the
// simulator always operate on validated non-empty data.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It returns an error on empty
// input or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("mathx: percentile out of range")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo], nil
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive entries yield an error. The SPEC-style performance summaries
// in the evaluation use geometric means, as the paper's suite averages do.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("mathx: geomean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P5     float64
	Median float64
	P95    float64
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	p5, _ := Percentile(xs, 5)
	med, _ := Percentile(xs, 50)
	p95, _ := Percentile(xs, 95)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P5:     p5,
		Median: med,
		P95:    p95,
	}, nil
}
