package cmp

import (
	"math"
	"testing"

	"repro/internal/adapt"
	"repro/internal/checker"
	"repro/internal/mathx"
	"repro/internal/tech"
	"repro/internal/varius"
)

func newGen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(varius.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChipHasFourDisjointCores(t *testing.T) {
	g := newGen(t)
	ch, err := g.Chip(1)
	if err != nil {
		t.Fatal(err)
	}
	var rects [NumCores][4]float64
	for c := 0; c < NumCores; c++ {
		r, err := ch.QuadrantRect(c)
		if err != nil {
			t.Fatal(err)
		}
		rects[c] = [4]float64{r.X0, r.Y0, r.X1, r.Y1}
		// Each quadrant must lie within the die.
		side := g.Params().CoreSide
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > side+1e-9 || r.Y1 > side+1e-9 {
			t.Errorf("core %d rect %+v outside the die", c, r)
		}
	}
	// Quadrants are pairwise disjoint.
	for a := 0; a < NumCores; a++ {
		for b := a + 1; b < NumCores; b++ {
			if rects[a][0] < rects[b][2] && rects[b][0] < rects[a][2] &&
				rects[a][1] < rects[b][3] && rects[b][1] < rects[a][3] {
				t.Errorf("cores %d and %d overlap", a, b)
			}
		}
	}
}

func TestCoresDifferOnOneDie(t *testing.T) {
	g := newGen(t)
	ch, err := g.Chip(2)
	if err != nil {
		t.Fatal(err)
	}
	vp := g.Params()
	var fvars []float64
	for c := 0; c < NumCores; c++ {
		fv, err := ch.CoreFVar(c, vp)
		if err != nil {
			t.Fatal(err)
		}
		if fv < 0.6 || fv > 1.0 {
			t.Errorf("core %d fvar %v out of the variation band", c, fv)
		}
		fvars = append(fvars, fv)
	}
	// Within-die variation: the four cores should not be identical.
	if mathx.Max(fvars)-mathx.Min(fvars) < 1e-4 {
		t.Errorf("cores identical (%v); within-die variation missing", fvars)
	}
}

func TestDieLevelStatisticsMatchCoreLevel(t *testing.T) {
	// The mean worst-case-safe frequency across many (die, core) pairs
	// must match the single-core calibration (~0.78).
	g := newGen(t)
	vp := g.Params()
	var fvars []float64
	for seed := int64(0); seed < 6; seed++ {
		ch, err := g.Chip(seed)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < NumCores; c++ {
			fv, err := ch.CoreFVar(c, vp)
			if err != nil {
				t.Fatal(err)
			}
			fvars = append(fvars, fv)
		}
	}
	mean := mathx.Mean(fvars)
	if mean < 0.72 || mean > 0.85 {
		t.Errorf("die-level mean fvar = %.3f, want ~0.78", mean)
	}
}

func TestSameDieCoresCorrelate(t *testing.T) {
	// Cores on one die share the systematic map (phi = half the die), so
	// the within-die spread of core fvar should be smaller than the spread
	// across dies.
	g := newGen(t)
	vp := g.Params()
	var withinVars, dieMeans []float64
	for seed := int64(0); seed < 8; seed++ {
		ch, err := g.Chip(seed)
		if err != nil {
			t.Fatal(err)
		}
		var fs []float64
		for c := 0; c < NumCores; c++ {
			fv, err := ch.CoreFVar(c, vp)
			if err != nil {
				t.Fatal(err)
			}
			fs = append(fs, fv)
		}
		withinVars = append(withinVars, mathx.Variance(fs))
		dieMeans = append(dieMeans, mathx.Mean(fs))
	}
	within := mathx.Mean(withinVars)
	across := mathx.Variance(dieMeans)
	// Not a strict theorem at small samples, but with phi=0.5 of the die
	// the die-to-die component should be visible.
	if across <= 0 {
		t.Fatal("no die-to-die variation measured")
	}
	t.Logf("within-die core-fvar variance %.2e, die-to-die %.2e", within, across)
}

func TestBuildCoreAndAdaptPerCore(t *testing.T) {
	g := newGen(t)
	ch, err := g.Chip(3)
	if err != nil {
		t.Fatal(err)
	}
	vp := g.Params()
	cfg := tech.Config{TimingSpec: true, ASV: true}
	lim := adapt.DefaultLimits()
	chk := checker.DefaultConfig()
	for c := 0; c < NumCores; c++ {
		cpu, err := ch.BuildCore(c, vp, cfg, chk, lim)
		if err != nil {
			t.Fatal(err)
		}
		if cpu.N() != 15 {
			t.Fatalf("core %d has %d subsystems", c, cpu.N())
		}
		// Every subsystem's effective Vt0 must be physical.
		for _, sub := range cpu.Subs {
			if sub.Vt0EffV < 0.02 || sub.Vt0EffV > 0.4 {
				t.Errorf("core %d %v Vt0eff %v implausible", c, sub.Sub.ID, sub.Vt0EffV)
			}
		}
	}
}

func TestChipDeterminism(t *testing.T) {
	g := newGen(t)
	a, err := g.Chip(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Chip(7)
	if err != nil {
		t.Fatal(err)
	}
	vp := g.Params()
	for c := 0; c < NumCores; c++ {
		fa, _ := a.CoreFVar(c, vp)
		fb, _ := b.CoreFVar(c, vp)
		if fa != fb {
			t.Fatalf("core %d fvar differs across identical dies", c)
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	g := newGen(t)
	ch, err := g.Chip(1)
	if err != nil {
		t.Fatal(err)
	}
	vp := g.Params()
	if _, err := ch.CoreFVar(-1, vp); err == nil {
		t.Error("negative core index should error")
	}
	if _, err := ch.CoreFVar(NumCores, vp); err == nil {
		t.Error("out-of-range core index should error")
	}
	if _, err := ch.QuadrantRect(9); err == nil {
		t.Error("out-of-range quadrant should error")
	}
	if _, err := ch.BuildCore(9, vp, tech.Config{TimingSpec: true},
		checker.DefaultConfig(), adapt.DefaultLimits()); err == nil {
		t.Error("out-of-range BuildCore should error")
	}
}

func TestSlowestCoreBinsTheDie(t *testing.T) {
	// A die's sellable frequency without EVAL is its slowest core's; the
	// min over cores is below the mean — the binning loss EVAL recovers.
	g := newGen(t)
	vp := g.Params()
	ch, err := g.Chip(11)
	if err != nil {
		t.Fatal(err)
	}
	var fs []float64
	for c := 0; c < NumCores; c++ {
		fv, err := ch.CoreFVar(c, vp)
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, fv)
	}
	if mathx.Min(fs) > mathx.Mean(fs)-1e-9 && math.Abs(mathx.Max(fs)-mathx.Min(fs)) > 1e-9 {
		t.Error("min over cores should trail the mean when cores differ")
	}
}
