// Package cmp models the evaluation platform at chip level: the 4-core CMP
// of §5 ("each application is run on each of the 4 cores of each of 100
// chips"). One systematic variation map spans the whole die; each core is a
// quadrant with its own floorplan instance, its own worst-case-safe
// frequency, and its own adaptation — so the package exposes the
// core-to-core variation that a shared die with a finite correlation range
// produces.
package cmp

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/checker"
	"repro/internal/floorplan"
	"repro/internal/grid"
	"repro/internal/power"
	"repro/internal/tech"
	"repro/internal/thermal"
	"repro/internal/varius"
	"repro/internal/vats"
)

// NumCores is the CMP's core count (Figure 7(a): 4-core CMP).
const NumCores = 4

// Chip is one manufactured die: a full-chip variation map and the four
// core floorplans placed on its quadrants.
type Chip struct {
	Seed  int64
	Maps  *varius.ChipMaps
	Cores [NumCores]*floorplan.Floorplan
}

// Generator manufactures 4-core dies.
type Generator struct {
	vp   varius.Params
	gen  *varius.Generator
	base *floorplan.Floorplan
}

// NewGenerator builds a die-level generator from per-core variation
// parameters: the grid is widened to span the full chip (2x2 cores) at the
// same cell density, and the correlation range phi keeps its chip-relative
// meaning, so quadrants of one die are correlated but not identical.
func NewGenerator(vp varius.Params) (*Generator, error) {
	full := vp
	full.GridW = vp.GridW * 2
	full.GridH = vp.GridH * 2
	// CoreSide in varius.Params names the generated region's side; the
	// full die spans twice the core.
	coreSide := vp.CoreSide
	full.CoreSide = vp.CoreSide * 2
	gen, err := varius.NewGenerator(full)
	if err != nil {
		return nil, err
	}
	base, err := floorplan.Default(coreSide)
	if err != nil {
		return nil, err
	}
	return &Generator{vp: full, gen: gen, base: base}, nil
}

// Params returns the die-level variation parameters.
func (g *Generator) Params() varius.Params { return g.vp }

// Chip manufactures one die.
func (g *Generator) Chip(seed int64) (*Chip, error) {
	maps := g.gen.Chip(seed)
	c := &Chip{Seed: seed, Maps: maps}
	side := g.base.CoreSide
	offsets := [NumCores][2]float64{
		{0, 0}, {side, 0}, {0, side}, {side, side},
	}
	for i, off := range offsets {
		fp, err := translate(g.base, off[0], off[1])
		if err != nil {
			return nil, err
		}
		c.Cores[i] = fp
	}
	return c, nil
}

// translate returns a copy of a floorplan shifted by (dx, dy) in die
// coordinates.
func translate(fp *floorplan.Floorplan, dx, dy float64) (*floorplan.Floorplan, error) {
	if dx < 0 || dy < 0 {
		return nil, fmt.Errorf("cmp: negative quadrant offset (%g, %g)", dx, dy)
	}
	out := &floorplan.Floorplan{
		CoreSide:   fp.CoreSide,
		Subsystems: append([]floorplan.Subsystem(nil), fp.Subsystems...),
	}
	for i := range out.Subsystems {
		r := &out.Subsystems[i].Rect
		r.X0 += dx
		r.X1 += dx
		r.Y0 += dy
		r.Y1 += dy
	}
	return out, nil
}

// CoreFVar returns core c's worst-case-safe frequency at the design corner.
func (ch *Chip) CoreFVar(c int, vp varius.Params) (float64, error) {
	if c < 0 || c >= NumCores {
		return 0, fmt.Errorf("cmp: core %d out of range", c)
	}
	pl, err := vats.NewPipeline(ch.Cores[c], ch.Maps, vp)
	if err != nil {
		return 0, err
	}
	corner := vats.Cond{VddV: vp.VddNomV, TK: vp.TOpRefK}
	min := 10.0
	for _, st := range pl.Stages {
		if fv := st.Eval(corner, vats.IdentityVariant()).FVar(); fv < min {
			min = fv
		}
	}
	return min, nil
}

// BuildCore assembles the adaptation view of one core of the die. Each core
// has its own power and thermal models (private heat-sink share) but shares
// the die's variation maps.
func (ch *Chip) BuildCore(c int, vp varius.Params, cfg tech.Config,
	chk checker.Config, lim adapt.Limits) (*adapt.Core, error) {
	if c < 0 || c >= NumCores {
		return nil, fmt.Errorf("cmp: core %d out of range", c)
	}
	fp := ch.Cores[c]
	pw, err := power.NewModel(fp, vp, power.DefaultParams())
	if err != nil {
		return nil, err
	}
	th, err := thermal.NewModel(fp, vp, pw, thermal.DefaultParams())
	if err != nil {
		return nil, err
	}
	subs := make([]adapt.Subsystem, fp.N())
	for i, sub := range fp.Subsystems {
		stage, err := vats.NewStage(sub, ch.Maps, vp)
		if err != nil {
			return nil, err
		}
		_, _, leakEff := ch.Maps.RegionVtStats(sub.Rect, vp)
		subs[i] = adapt.Subsystem{Index: i, Sub: sub, Stage: stage, Vt0EffV: leakEff}
	}
	return adapt.NewCore(subs, pw, th, chk, cfg, lim)
}

// QuadrantRect returns core c's die-coordinate bounding box.
func (ch *Chip) QuadrantRect(c int) (grid.Rect, error) {
	if c < 0 || c >= NumCores {
		return grid.Rect{}, fmt.Errorf("cmp: core %d out of range", c)
	}
	fp := ch.Cores[c]
	r := grid.Rect{X0: 1e18, Y0: 1e18, X1: -1e18, Y1: -1e18}
	for _, s := range fp.Subsystems {
		if s.Rect.X0 < r.X0 {
			r.X0 = s.Rect.X0
		}
		if s.Rect.Y0 < r.Y0 {
			r.Y0 = s.Rect.Y0
		}
		if s.Rect.X1 > r.X1 {
			r.X1 = s.Rect.X1
		}
		if s.Rect.Y1 > r.Y1 {
			r.Y1 = s.Rect.Y1
		}
	}
	return r, nil
}
