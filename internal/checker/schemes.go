package checker

import "fmt"

// Scheme identifies an error-detection/correction architecture. §3.1 notes
// that EVAL can sit on top of any of them: a Diva-like checker at
// retirement, Razor-style stage-level checking, or a Paceline-style checker
// core. They differ in recovery penalty, verification bandwidth, and power
// — which is exactly what Eq. 5 consumes.
type Scheme int

const (
	// SchemeDiva is the paper's default: a simple checker unit at
	// retirement, clocked at a safe lower frequency.
	SchemeDiva Scheme = iota
	// SchemeRazor augments pipeline latches with shadow latches; errors
	// are caught in place, so recovery is a short counterflow bubble
	// rather than a full flush, and there is no separate retirement
	// bandwidth cap — but every stage pays latch and hold-margin power.
	SchemeRazor
	// SchemePaceline pairs the core with a checker core that re-executes
	// the instruction stream behind it; recovery restores a checkpoint
	// (expensive), bandwidth is a whole core (ample), and the power cost
	// is the second core's.
	SchemePaceline
	NumSchemes // sentinel
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeDiva:
		return "Diva"
	case SchemeRazor:
		return "Razor"
	case SchemePaceline:
		return "Paceline"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ForScheme returns the calibrated configuration of an error-tolerance
// scheme on the Figure 7 machine.
func ForScheme(s Scheme) (Config, error) {
	switch s {
	case SchemeDiva:
		return DefaultConfig(), nil
	case SchemeRazor:
		return Config{
			// Razor checking rides the main pipeline; it has no separate
			// frequency, so its effective bandwidth never binds.
			FRelSafe:       1.5,
			IPCCap:         3.0,
			RecoveryCycles: 5, // counterflow recovery, not a full flush
			// Shadow latches and hold-time margins cost power in every
			// stage; total is comparable to Diva's but spread out.
			DynPowerW:         1.2,
			StaPowerW:         0.5,
			InstrQueueEntries: 0,
		}, nil
	case SchemePaceline:
		return Config{
			// The checker core runs at the safe frequency but retires as a
			// full core.
			FRelSafe:       0.875,
			IPCCap:         3.0,
			RecoveryCycles: 30, // checkpoint restore
			// A second (simplified, slower) core is expensive.
			DynPowerW:         3.0,
			StaPowerW:         1.2,
			InstrQueueEntries: 0,
		}, nil
	default:
		return Config{}, fmt.Errorf("checker: unknown scheme %v", s)
	}
}

// Schemes lists all implemented error-tolerance schemes.
func Schemes() []Scheme {
	return []Scheme{SchemeDiva, SchemeRazor, SchemePaceline}
}
