package checker

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.FRelSafe = 0 },
		func(c *Config) { c.FRelSafe = 2 },
		func(c *Config) { c.IPCCap = 0 },
		func(c *Config) { c.RecoveryCycles = 0.5 },
		func(c *Config) { c.DynPowerW = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCheckerFrequencyIsSafe(t *testing.T) {
	c := DefaultConfig()
	// Figure 7(c): 3.5 GHz checker on a 4 GHz design.
	if math.Abs(c.FRelSafe-0.875) > 1e-12 {
		t.Errorf("FRelSafe = %v, want 0.875", c.FRelSafe)
	}
}

func TestThroughputCap(t *testing.T) {
	c := DefaultConfig()
	want := c.FRelSafe * c.IPCCap
	if c.ThroughputCap() != want {
		t.Errorf("ThroughputCap = %v, want %v", c.ThroughputCap(), want)
	}
}

func TestStallCPI(t *testing.T) {
	c := DefaultConfig() // cap = 1.75 instr/period
	// A core at fRel=1.0 with CPI 1.0 runs at 1.0 instr/period: under cap.
	if s := c.StallCPI(1.0, 1.0); s != 0 {
		t.Errorf("StallCPI under cap = %v, want 0", s)
	}
	// A core at fRel=1.4 with CPI 0.5 runs at 2.8 instr/period: over cap.
	s := c.StallCPI(1.4, 0.5)
	if s <= 0 {
		t.Fatalf("StallCPI over cap = %v, want > 0", s)
	}
	// With the stall added, the rate equals the cap.
	rate := 1.4 / (0.5 + s)
	if math.Abs(rate-c.ThroughputCap()) > 1e-12 {
		t.Errorf("stalled rate = %v, want %v", rate, c.ThroughputCap())
	}
	// Degenerate inputs are harmless.
	if c.StallCPI(0, 1) != 0 || c.StallCPI(1, 0) != 0 {
		t.Error("degenerate StallCPI should be 0")
	}
}

func TestPowerW(t *testing.T) {
	c := DefaultConfig()
	if c.PowerW(1.0) <= c.StaPowerW {
		t.Error("checker power at nominal should exceed its static floor")
	}
	if c.PowerW(0.5) >= c.PowerW(1.0) {
		t.Error("checker power should grow with core throughput")
	}
	// Utilization saturates.
	if c.PowerW(5.0) != c.PowerW(1.5) {
		t.Error("checker power should saturate at its bandwidth limit")
	}
}

func TestPECounter(t *testing.T) {
	var pc PECounter
	if pc.Rate() != 0 {
		t.Error("empty counter should read 0")
	}
	pc.Record(1000, 2)
	pc.Record(1000, 0)
	if pc.Rate() != 0.001 {
		t.Errorf("Rate = %v, want 0.001", pc.Rate())
	}
	if pc.Errors() != 2 || pc.Instructions() != 2000 {
		t.Error("raw counts wrong")
	}
	pc.Reset()
	if pc.Rate() != 0 || pc.Errors() != 0 || pc.Instructions() != 0 {
		t.Error("Reset did not clear")
	}
}
