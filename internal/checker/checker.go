// Package checker models the Diva-like checker of §3.1 and Figure 7(c):
// a simple, architecturally-decoupled unit at retirement that verifies the
// speculative core's results, running error-free at a lower, safe frequency
// (sped up with ASV). Timing errors in the core become pipeline flushes
// with a branch-misprediction-style recovery penalty; the checker also
// hosts the core-wide PE counter the controller reads.
package checker

import (
	"fmt"
)

// Config describes the checker of Figure 7(c).
type Config struct {
	// FRelSafe is the checker's own error-free frequency relative to the
	// core's nominal: 3.5 GHz on a 4 GHz design.
	FRelSafe float64
	// IPCCap is the checker's retirement bandwidth in instructions per
	// checker cycle; Diva checkers are wide because they are simple.
	IPCCap float64
	// RecoveryCycles is the per-error recovery penalty rp: take the
	// checker's result, flush the pipeline, restart at the next
	// instruction — the same loop as a branch misprediction.
	RecoveryCycles float64
	// DynPowerW and StaPowerW are the checker's power at core-nominal
	// frequency (it occupies ~7% of processor area, Figure 7(d)).
	DynPowerW float64
	StaPowerW float64
	// L0DCacheB and L0ICacheB are the checker's private L0 caches and
	// InstrQueueEntries its retirement buffer (Figure 7(c)); they size the
	// checker and document its decoupling but do not enter the
	// performance equations directly.
	L0DCacheB         int
	L0ICacheB         int
	InstrQueueEntries int
}

// DefaultConfig returns the Figure 7(c) checker.
func DefaultConfig() Config {
	return Config{
		FRelSafe:          3.5 / 4.0,
		IPCCap:            2.0,
		RecoveryCycles:    15,
		DynPowerW:         1.0,
		StaPowerW:         0.4,
		L0DCacheB:         4096,
		L0ICacheB:         512,
		InstrQueueEntries: 32,
	}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.FRelSafe <= 0 || c.FRelSafe > 1.5 {
		return fmt.Errorf("checker: FRelSafe %g out of range", c.FRelSafe)
	}
	if c.IPCCap <= 0 {
		return fmt.Errorf("checker: IPCCap %g must be positive", c.IPCCap)
	}
	if c.RecoveryCycles < 1 {
		return fmt.Errorf("checker: RecoveryCycles %g must be >= 1", c.RecoveryCycles)
	}
	if c.DynPowerW < 0 || c.StaPowerW < 0 {
		return fmt.Errorf("checker: negative power")
	}
	return nil
}

// ThroughputCap returns the checker's sustainable instruction rate in
// instructions per *core-nominal* clock period. The speculative core cannot
// retire faster than its checker verifies.
func (c Config) ThroughputCap() float64 { return c.FRelSafe * c.IPCCap }

// StallCPI returns the extra core CPI (at core frequency fRel) needed to
// slow the core down to the checker's verification bandwidth, given the
// core's unconstrained CPI. Zero when the checker keeps up.
func (c Config) StallCPI(fRel, coreCPI float64) float64 {
	if fRel <= 0 || coreCPI <= 0 {
		return 0
	}
	rate := fRel / coreCPI // instructions per nominal period
	cap := c.ThroughputCap()
	if rate <= cap {
		return 0
	}
	// CPI that would make the rate equal the cap, minus what we have.
	return fRel/cap - coreCPI
}

// PowerW returns the checker's power contribution at core frequency fRel.
// The checker itself runs at its fixed safe frequency; its dynamic power
// scales with the verification traffic, which scales with core throughput.
func (c Config) PowerW(fRel float64) float64 {
	util := fRel
	if util > 1.5 {
		util = 1.5
	}
	return c.DynPowerW*util + c.StaPowerW
}

// PECounter is the core-wide error-rate counter the checker hardware
// exposes to the controller (§4.3.2).
type PECounter struct {
	errors       uint64
	instructions uint64
}

// Record accumulates retired instructions and detected timing errors.
func (p *PECounter) Record(instructions, errors uint64) {
	p.instructions += instructions
	p.errors += errors
}

// Rate returns the observed errors per instruction (zero before any
// instruction retires).
func (p *PECounter) Rate() float64 {
	if p.instructions == 0 {
		return 0
	}
	return float64(p.errors) / float64(p.instructions)
}

// Reset clears the counter (done at each phase boundary).
func (p *PECounter) Reset() { p.errors, p.instructions = 0, 0 }

// Errors returns the raw error count.
func (p *PECounter) Errors() uint64 { return p.errors }

// Instructions returns the raw instruction count.
func (p *PECounter) Instructions() uint64 { return p.instructions }
