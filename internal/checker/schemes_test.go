package checker

import "testing"

func TestForSchemeValidConfigs(t *testing.T) {
	for _, s := range Schemes() {
		cfg, err := ForScheme(s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v config invalid: %v", s, err)
		}
	}
	if _, err := ForScheme(Scheme(99)); err == nil {
		t.Error("unknown scheme should error")
	}
}

func TestSchemeNames(t *testing.T) {
	want := map[Scheme]string{
		SchemeDiva: "Diva", SchemeRazor: "Razor", SchemePaceline: "Paceline",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme should still print")
	}
}

func TestSchemeTradeoffs(t *testing.T) {
	diva, _ := ForScheme(SchemeDiva)
	razor, _ := ForScheme(SchemeRazor)
	pace, _ := ForScheme(SchemePaceline)

	// Razor recovers fastest (in-place), Paceline slowest (checkpoint).
	if !(razor.RecoveryCycles < diva.RecoveryCycles &&
		diva.RecoveryCycles < pace.RecoveryCycles) {
		t.Errorf("recovery ordering violated: razor %v, diva %v, paceline %v",
			razor.RecoveryCycles, diva.RecoveryCycles, pace.RecoveryCycles)
	}
	// Diva has the tightest verification bandwidth; Razor never binds.
	if diva.ThroughputCap() >= razor.ThroughputCap() {
		t.Errorf("Diva cap %v should be tighter than Razor's %v",
			diva.ThroughputCap(), razor.ThroughputCap())
	}
	// Paceline costs the most power.
	if pace.PowerW(1.0) <= diva.PowerW(1.0) {
		t.Errorf("Paceline should cost more power than Diva: %v vs %v",
			pace.PowerW(1.0), diva.PowerW(1.0))
	}
}

func TestRazorBandwidthNeverBinds(t *testing.T) {
	razor, _ := ForScheme(SchemeRazor)
	// Even an ideal 3-wide core at the maximum PLL frequency stays under
	// Razor's effective cap.
	if s := razor.StallCPI(1.4, 1.0/3.0); s != 0 {
		t.Errorf("Razor stalled an ideal core by %v CPI", s)
	}
}

func TestDivaIsDefaultScheme(t *testing.T) {
	diva, _ := ForScheme(SchemeDiva)
	if diva != DefaultConfig() {
		t.Error("SchemeDiva must be the paper's default checker")
	}
}
