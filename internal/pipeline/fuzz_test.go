package pipeline

import (
	"testing"
)

// decodeFuzzTrace maps raw fuzzer bytes onto an instruction trace, two
// bytes per instruction: the first byte picks the opcode, the second
// packs the op's fields. Every byte string decodes to a legal trace, so
// the fuzzer explores pipeline schedules instead of input validation.
func decodeFuzzTrace(data []byte) []Instr {
	if len(data) > 8192 {
		data = data[:8192] // bound per-exec cost; longer prefixes add nothing
	}
	trace := make([]Instr, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		b0, b1 := data[i], data[i+1]
		in := Instr{Op: Op(int(b0) % 5)}
		switch in.Op {
		case OpInt, OpFP:
			// Dependency distances up to 17 cross the clamp boundary.
			in.Dep1 = int(b1&0x0F) + int(b0>>7)
			in.Dep2 = int(b1 >> 4)
		case OpLoad:
			// A small address space forces store-to-load forwarding hits.
			in.Addr = uint16(b1 & 0x3F)
			in.L1Miss = b1&0x40 != 0
			in.L2Miss = b1&0xC0 == 0xC0
			in.Dep1 = int(b0>>5) & 0x03
		case OpStore:
			in.Addr = uint16(b1 & 0x3F)
			in.Dep2 = int(b1 >> 6)
		case OpBranch:
			in.Mispredict = b1&1 != 0
			in.Dep1 = int(b1 >> 4)
		}
		trace = append(trace, in)
	}
	return trace
}

// FuzzSimulateVsReference fuzzes the SoA fast-path kernel against the
// array-of-structs reference: for any decoded trace and queue
// configuration, both kernels must return the same Result, field for
// field, down to the float64 bit pattern. This is the property
// TestSimulateMatchesReference pins on the proxy suite, driven by
// adversarial schedules instead of generated ones.
func FuzzSimulateVsReference(f *testing.F) {
	f.Add([]byte{0, 0}, uint8(64), uint8(32), false)
	f.Add([]byte{2, 0xC0, 2, 0x40, 3, 0x00, 2, 0x00}, uint8(4), uint8(4), false)
	f.Add([]byte{4, 0x11, 0, 0xFF, 1, 0x3C, 3, 0xFF, 2, 0xFF}, uint8(16), uint8(16), true)
	f.Fuzz(func(t *testing.T, data []byte, intQ, fpQ uint8, squash bool) {
		trace := decodeFuzzTrace(data)
		if len(trace) == 0 {
			return
		}
		cfg := Config{
			// Queues span the minimum-legal 4 up to past the defaults.
			IntQEntries:    4 + int(intQ)%125,
			FPQEntries:     4 + int(fpQ)%125,
			SquashL2Misses: squash,
		}
		got, gerr := Simulate(trace, cfg)
		want, werr := SimulateReference(trace, cfg)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("error disagreement: Simulate %v, SimulateReference %v", gerr, werr)
		}
		if gerr == nil && got != want {
			t.Fatalf("Simulate diverges from reference on %d instrs cfg %+v:\n got %+v\nwant %+v",
				len(trace), cfg, got, want)
		}
	})
}
