package pipeline

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Profile is the measured performance character of one application phase:
// every term of Eq. 5 plus the controller inputs (activity factors). It is
// what the paper obtains by profiling a phase for ~20 us with performance
// counters (§4.3.3) — here, by running the trace simulator.
type Profile struct {
	AppName    string
	Class      workload.Class
	PhaseIndex int
	Weight     float64
	// CPIComp per issue-queue configuration: computation cycles per
	// instruction including L1 misses that hit in L2, excluding L2-miss
	// stalls (the paper's CPIcomp_1.00 and CPIcomp_0.75).
	CPICompFull  float64
	CPICompSmall float64
	// Mr is L2 misses per instruction; MpNomCycles the measured
	// non-overlapped miss penalty in cycles at nominal frequency. The
	// observed penalty scales with frequency: mp(f) = MpNomCycles * fRel.
	Mr          float64
	MpNomCycles float64
	// Activity is alpha_f per subsystem (accesses/cycle), the controller's
	// sensed input.
	Activity [floorplan.NumSubsystems]float64
	// MispredictsPerInstr converts the FU-replication extra pipeline stage
	// into a CPI adder.
	MispredictsPerInstr float64
}

// CPITotalNom returns the total CPI at nominal frequency for a queue
// configuration (computation plus non-overlapped L2-miss stalls) — the CPI
// that converts per-cycle activity factors into per-instruction activity.
func (p Profile) CPITotalNom(q tech.QueueSize) float64 {
	return p.CPIComp(q) + p.Mr*p.MpNomCycles
}

// CPIComp returns the computation CPI for a queue configuration.
func (p Profile) CPIComp(q tech.QueueSize) float64 {
	if q == tech.QueueThreeQuarter {
		return p.CPICompSmall
	}
	return p.CPICompFull
}

// DefaultTraceLen is the per-phase profiling trace length.
const DefaultTraceLen = 60000

// SimFunc is a Simulate-compatible kernel. BuildProfileSim takes one so
// callers can interpose caching or instrumentation around the three
// simulation runs; the func must return exactly what Simulate would.
type SimFunc func(trace []Instr, cfg Config) (Result, error)

// BuildProfile measures one phase of one application by simulating the
// same synthetic trace through three machine configurations: full queues,
// class-side queue at 3/4, and full queues with L2 misses squashed (to
// isolate CPIcomp).
func BuildProfile(app workload.App, ph workload.Phase, nInstr int, seed int64) (Profile, error) {
	return BuildProfileSim(app, ph, nInstr, seed, Simulate)
}

// BuildProfileSim is BuildProfile with a pluggable simulation kernel.
func BuildProfileSim(app workload.App, ph workload.Phase, nInstr int, seed int64, sim SimFunc) (Profile, error) {
	if nInstr <= 0 {
		nInstr = DefaultTraceLen
	}
	rng := mathx.NewRNG(seed)
	trace := GenerateTrace(ph.Mix, nInstr, rng)

	full := DefaultConfig()
	small := full
	if app.Class == workload.FP {
		small.FPQEntries = int(float64(full.FPQEntries) * tech.QueueSmallFrac)
	} else {
		small.IntQEntries = int(float64(full.IntQEntries) * tech.QueueSmallFrac)
	}
	squash := full
	squash.SquashL2Misses = true

	rFull, err := sim(trace, full)
	if err != nil {
		return Profile{}, fmt.Errorf("pipeline: full-queue run: %w", err)
	}
	rSmall, err := sim(trace, small)
	if err != nil {
		return Profile{}, fmt.Errorf("pipeline: small-queue run: %w", err)
	}
	rComp, err := sim(trace, squash)
	if err != nil {
		return Profile{}, fmt.Errorf("pipeline: squashed run: %w", err)
	}

	mr := rFull.L2MissesPerInstr
	mpNom := 0.0
	if mr > 0 {
		mpNom = (rFull.CPI - rComp.CPI) / mr
		if mpNom < 0 {
			mpNom = 0
		}
	}
	cpiFull := rComp.CPI
	cpiSmall := rSmall.CPI - mr*mpNom
	if cpiSmall < cpiFull {
		// The smaller queue can never help computation in this machine;
		// differences below measurement noise are clamped.
		cpiSmall = cpiFull
	}

	p := Profile{
		AppName:             app.Name,
		Class:               app.Class,
		PhaseIndex:          ph.Index,
		Weight:              ph.Weight,
		CPICompFull:         cpiFull,
		CPICompSmall:        cpiSmall,
		Mr:                  mr,
		MpNomCycles:         mpNom,
		MispredictsPerInstr: rFull.MispredictsPerInstr,
	}
	for i := range p.Activity {
		p.Activity[i] = clampActivity(rFull.Activity[i])
	}
	return p, nil
}

// PerfInputs collects the terms of Eq. 5.
type PerfInputs struct {
	FRel           float64         // relative core frequency
	CPIComp        float64         // computation CPI for the chosen queue size
	Mr             float64         // L2 misses per instruction
	MpNomCycles    float64         // non-overlapped miss penalty at nominal f
	PE             float64         // timing errors per instruction
	RecoveryCycles float64         // rp
	ExtraCPI       float64         // e.g. FU-replication pipeline-lengthening adder
	Checker        *checker.Config // nil = no checker bandwidth cap
}

// Perf evaluates Eq. 5: performance in (relative) instructions per second.
//
//	Perf(f) = f / (CPIcomp + mr*mp(f) + PE(f)*rp)
//
// with mp scaling linearly in f (a fixed memory latency in nanoseconds
// costs more cycles at higher frequency) and an optional checker
// retirement-bandwidth cap.
func Perf(in PerfInputs) float64 {
	if in.FRel <= 0 {
		return 0
	}
	cpi := in.CPIComp + in.ExtraCPI + in.Mr*in.MpNomCycles*in.FRel + in.PE*in.RecoveryCycles
	if cpi <= 0 {
		return 0
	}
	if in.Checker != nil {
		cpi += in.Checker.StallCPI(in.FRel, cpi)
	}
	return in.FRel / cpi
}
