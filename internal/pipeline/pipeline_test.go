package pipeline

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/tech"
	"repro/internal/workload"
)

func simpleMix() workload.Mix {
	return workload.Mix{
		LoadFrac: 0.25, StoreFrac: 0.1, BranchFrac: 0.12,
		FPFrac: 0.0, DepDistMean: 2.5,
		BranchMispredictRate: 0.06,
		L1MissRate:           0.03, L2MissRate: 0.002, MemOverlap: 0.3,
	}
}

func TestGenerateTraceMix(t *testing.T) {
	rng := mathx.NewRNG(1)
	mix := simpleMix()
	const n = 100000
	trace := GenerateTrace(mix, n, rng)
	if len(trace) != n {
		t.Fatalf("trace length %d", len(trace))
	}
	var loads, stores, branches, l2 int
	for _, in := range trace {
		switch in.Op {
		case OpLoad:
			loads++
		case OpStore:
			stores++
		case OpBranch:
			branches++
		}
		if in.L2Miss {
			l2++
		}
		if in.Dep1 < 1 {
			t.Fatal("Dep1 must be >= 1")
		}
	}
	if math.Abs(float64(loads)/n-mix.LoadFrac) > 0.01 {
		t.Errorf("load fraction = %v, want %v", float64(loads)/n, mix.LoadFrac)
	}
	if math.Abs(float64(stores)/n-mix.StoreFrac) > 0.01 {
		t.Errorf("store fraction = %v", float64(stores)/n)
	}
	if math.Abs(float64(branches)/n-mix.BranchFrac) > 0.01 {
		t.Errorf("branch fraction = %v", float64(branches)/n)
	}
	if math.Abs(float64(l2)/n-mix.L2MissRate) > 0.001 {
		t.Errorf("L2 miss rate = %v, want %v", float64(l2)/n, mix.L2MissRate)
	}
}

func TestSimulateBasics(t *testing.T) {
	rng := mathx.NewRNG(2)
	trace := GenerateTrace(simpleMix(), 20000, rng)
	res, err := Simulate(trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI < 0.34 {
		t.Errorf("CPI %v below the 3-wide dispatch bound", res.CPI)
	}
	if res.CPI > 10 {
		t.Errorf("CPI %v implausibly high for this mix", res.CPI)
	}
	if res.Instructions != 20000 {
		t.Errorf("instruction count %d", res.Instructions)
	}
	// Every subsystem sees some activity on an int trace except possibly
	// the unused FP side.
	for id := floorplan.ID(0); id < floorplan.NumSubsystems; id++ {
		a := res.Activity[id]
		if a < 0 || a > 3 {
			t.Errorf("%v activity = %v out of range", id, a)
		}
	}
	if res.Activity[floorplan.IntALU] <= 0 || res.Activity[floorplan.Dcache] <= 0 {
		t.Error("int trace must exercise IntALU and Dcache")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, DefaultConfig()); err == nil {
		t.Error("empty trace should error")
	}
	bad := DefaultConfig()
	bad.IntQEntries = 1
	if _, err := Simulate(make([]Instr, 10), bad); err == nil {
		t.Error("tiny queue should be rejected")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	trace := GenerateTrace(simpleMix(), 5000, mathx.NewRNG(3))
	a, _ := Simulate(trace, DefaultConfig())
	b, _ := Simulate(trace, DefaultConfig())
	if a.Cycles != b.Cycles || a.CPI != b.CPI {
		t.Error("simulation not deterministic")
	}
}

func TestMoreILPMeansLowerCPI(t *testing.T) {
	lowILP := simpleMix()
	lowILP.DepDistMean = 1.3
	highILP := simpleMix()
	highILP.DepDistMean = 6
	a, _ := Simulate(GenerateTrace(lowILP, 20000, mathx.NewRNG(4)), DefaultConfig())
	b, _ := Simulate(GenerateTrace(highILP, 20000, mathx.NewRNG(4)), DefaultConfig())
	if b.CPI >= a.CPI {
		t.Errorf("more ILP should lower CPI: %v vs %v", b.CPI, a.CPI)
	}
}

func TestMispredictionsHurt(t *testing.T) {
	good := simpleMix()
	good.BranchMispredictRate = 0.001
	bad := simpleMix()
	bad.BranchMispredictRate = 0.15
	a, _ := Simulate(GenerateTrace(good, 20000, mathx.NewRNG(5)), DefaultConfig())
	b, _ := Simulate(GenerateTrace(bad, 20000, mathx.NewRNG(5)), DefaultConfig())
	if b.CPI <= a.CPI {
		t.Errorf("mispredictions should raise CPI: %v vs %v", b.CPI, a.CPI)
	}
}

func TestL2MissesHurtAndSquashHelps(t *testing.T) {
	mem := simpleMix()
	mem.L2MissRate = 0.03
	trace := GenerateTrace(mem, 20000, mathx.NewRNG(6))
	full, _ := Simulate(trace, DefaultConfig())
	cfg := DefaultConfig()
	cfg.SquashL2Misses = true
	squashed, _ := Simulate(trace, cfg)
	if squashed.CPI >= full.CPI {
		t.Errorf("squashing L2 misses should lower CPI: %v vs %v", squashed.CPI, full.CPI)
	}
	if full.CPI-squashed.CPI < 0.5 {
		t.Errorf("memory-bound trace should lose > 0.5 CPI to misses, got %v",
			full.CPI-squashed.CPI)
	}
}

func TestSmallerQueueNeverHelps(t *testing.T) {
	// Memory-bound mixes put pressure on the queue; the 3/4 configuration
	// must not lower CPI.
	mem := simpleMix()
	mem.L2MissRate = 0.02
	trace := GenerateTrace(mem, 20000, mathx.NewRNG(7))
	full, _ := Simulate(trace, DefaultConfig())
	small := DefaultConfig()
	small.IntQEntries = 51
	sres, _ := Simulate(trace, small)
	if sres.CPI < full.CPI-1e-9 {
		t.Errorf("smaller queue lowered CPI: %v vs %v", sres.CPI, full.CPI)
	}
}

func TestFPTraceExercisesFPSide(t *testing.T) {
	fpMix := workload.Mix{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.04,
		FPFrac: 0.6, DepDistMean: 4,
		BranchMispredictRate: 0.01,
		L1MissRate:           0.05, L2MissRate: 0.01, MemOverlap: 0.5,
	}
	res, _ := Simulate(GenerateTrace(fpMix, 20000, mathx.NewRNG(8)), DefaultConfig())
	if res.Activity[floorplan.FPUnit] <= 0.05 {
		t.Errorf("FP trace barely exercises FPUnit: %v", res.Activity[floorplan.FPUnit])
	}
	if res.Activity[floorplan.FPUnit] <= res.Activity[floorplan.IntALU]*0.5 {
		t.Errorf("FP trace should load the FP unit: fp=%v int=%v",
			res.Activity[floorplan.FPUnit], res.Activity[floorplan.IntALU])
	}
}

func TestBuildProfile(t *testing.T) {
	app, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(app, app.Phases[0], 30000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.AppName != "swim" || p.Class != workload.FP {
		t.Errorf("profile identity wrong: %+v", p)
	}
	if p.CPICompFull <= 0.3 || p.CPICompFull > 6 {
		t.Errorf("CPIcomp = %v implausible", p.CPICompFull)
	}
	if p.CPICompSmall < p.CPICompFull {
		t.Errorf("3/4-queue CPIcomp %v below full %v", p.CPICompSmall, p.CPICompFull)
	}
	if p.Mr <= 0.005 {
		t.Errorf("swim should miss in L2: mr = %v", p.Mr)
	}
	if p.MpNomCycles <= 0 || p.MpNomCycles > MemCycles {
		t.Errorf("mp = %v cycles out of range", p.MpNomCycles)
	}
	if p.CPIComp(tech.QueueFull) != p.CPICompFull ||
		p.CPIComp(tech.QueueThreeQuarter) != p.CPICompSmall {
		t.Error("CPIComp accessor wrong")
	}
}

func TestBuildProfileDeterministic(t *testing.T) {
	app, _ := workload.ByName("gzip")
	a, err := BuildProfile(app, app.Phases[0], 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildProfile(app, app.Phases[0], 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("profiles differ across identical builds")
	}
}

func TestPerfEquation5(t *testing.T) {
	in := PerfInputs{
		FRel:           1.0,
		CPIComp:        1.0,
		Mr:             0.01,
		MpNomCycles:    100,
		PE:             0,
		RecoveryCycles: 15,
	}
	perf := Perf(in)
	want := 1.0 / (1.0 + 0.01*100*1.0)
	if math.Abs(perf-want) > 1e-12 {
		t.Errorf("Perf = %v, want %v", perf, want)
	}
	// Errors cost performance.
	in.PE = 1e-2
	if Perf(in) >= perf {
		t.Error("errors should cost performance")
	}
	// Degenerate frequency.
	in.FRel = 0
	if Perf(in) != 0 {
		t.Error("Perf at f=0 must be 0")
	}
}

func TestPerfPeaksThenFalls(t *testing.T) {
	// With a PE(f) that explodes past some frequency, Perf(f) must rise,
	// peak, and dive — the Figure 2(a) shape.
	peAt := func(f float64) float64 {
		if f < 1.0 {
			return 0
		}
		return math.Pow(f-1.0, 3) * 10 // rapid onset past f=1
	}
	var perfs []float64
	for f := 0.8; f < 1.3; f += 0.01 {
		perfs = append(perfs, Perf(PerfInputs{
			FRel: f, CPIComp: 1.2, Mr: 0.005, MpNomCycles: 80,
			PE: peAt(f), RecoveryCycles: 15,
		}))
	}
	peak := 0
	for i, p := range perfs {
		if p > perfs[peak] {
			peak = i
		}
	}
	if peak == 0 || peak == len(perfs)-1 {
		t.Fatalf("no interior performance peak (peak index %d)", peak)
	}
	if perfs[len(perfs)-1] >= perfs[peak]*0.95 {
		t.Error("performance should fall sharply past the peak")
	}
}

func TestPerfMpScalesWithFrequency(t *testing.T) {
	// Memory-bound work gains little from frequency: mp grows with f.
	lo := Perf(PerfInputs{FRel: 1.0, CPIComp: 0.8, Mr: 0.03, MpNomCycles: 120, RecoveryCycles: 15})
	hi := Perf(PerfInputs{FRel: 1.2, CPIComp: 0.8, Mr: 0.03, MpNomCycles: 120, RecoveryCycles: 15})
	gain := hi / lo
	if gain > 1.1 {
		t.Errorf("memory-bound frequency gain %v should be well below 1.2x", gain)
	}
	if gain <= 1.0 {
		t.Errorf("some gain expected, got %v", gain)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A trace with heavy store-then-load reuse should see forwarding, and
	// forwarded loads must make it no slower than the same trace without
	// address reuse.
	mix := simpleMix()
	trace := GenerateTrace(mix, 30000, mathx.NewRNG(21))
	res, err := Simulate(trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardedLoadFrac <= 0.05 {
		t.Errorf("forwarded-load fraction = %v, expected some forwarding", res.ForwardedLoadFrac)
	}
	if res.ForwardedLoadFrac > 0.6 {
		t.Errorf("forwarded-load fraction = %v implausibly high", res.ForwardedLoadFrac)
	}
	// Break the reuse: give every load a unique address.
	broken := append([]Instr(nil), trace...)
	next := uint16(1)
	for i := range broken {
		if broken[i].Op == OpLoad {
			broken[i].Addr = next
			next += 2 // never matches store addresses (stores keep theirs)
		}
	}
	res2, err := Simulate(broken, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res2.ForwardedLoadFrac > res.ForwardedLoadFrac {
		t.Error("breaking reuse should reduce forwarding")
	}
}

func TestQueueOccupancyStats(t *testing.T) {
	// With this greedy front end the issue queue runs near-full whenever
	// issue is the bottleneck; occupancy must respect capacity and shrink
	// with the 3/4 configuration (the pressure that makes resizing cost
	// CPI).
	trace := GenerateTrace(simpleMix(), 20000, mathx.NewRNG(22))
	full, err := Simulate(trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := DefaultConfig()
	small.IntQEntries = 51
	sres, err := Simulate(trace, small)
	if err != nil {
		t.Fatal(err)
	}
	if full.IntQOccupancyMean < 0 || full.IntQOccupancyMean > float64(tech.IntQueueEntries) {
		t.Errorf("occupancy %v out of range", full.IntQOccupancyMean)
	}
	if sres.IntQOccupancyMean > 51 {
		t.Errorf("3/4-queue occupancy %v exceeds its capacity", sres.IntQOccupancyMean)
	}
	if sres.IntQOccupancyMean >= full.IntQOccupancyMean {
		t.Errorf("downsizing should lower mean occupancy: %v vs %v",
			sres.IntQOccupancyMean, full.IntQOccupancyMean)
	}
}

// TestSimulateScratchReuse: a pooled scratch must not leak state between
// calls. A short trace simulated before and after a much longer one (which
// leaves large dirty buffers and a populated store map in the pool) must
// produce identical results, including against a fresh-pool baseline on a
// differently-shaped FP-heavy trace.
func TestSimulateScratchReuse(t *testing.T) {
	fpMix := simpleMix()
	fpMix.FPFrac = 0.6
	short := GenerateTrace(simpleMix(), 2000, mathx.NewRNG(7))
	long := GenerateTrace(fpMix, 40000, mathx.NewRNG(8))
	cfg := DefaultConfig()

	before, err := Simulate(short, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(long, cfg); err != nil {
		t.Fatal(err)
	}
	after, err := Simulate(short, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("scratch reuse changed results:\n before %+v\n after  %+v", before, after)
	}
}

// TestSimulateAllocs pins the allocation budget of a steady-state Simulate
// call. The pooled scratch cut it from 54 allocs per 50k-instruction trace
// to ~0; the assertion keeps the regression from creeping back.
func TestSimulateAllocs(t *testing.T) {
	trace := GenerateTrace(simpleMix(), 50000, mathx.NewRNG(1))
	cfg := DefaultConfig()
	// Warm the pool so the measured iterations reuse scratch.
	if _, err := Simulate(trace, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Simulate(trace, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Fatalf("Simulate allocates %.1f times per call, want <= 10", allocs)
	}
}
