package pipeline

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/tech"
	"repro/internal/workload"
)

// configsUnderTest returns the three queue configurations the profiling
// pipeline actually runs (full, class-side small, and L2-squash), the
// same way BuildProfile derives them.
func configsUnderTest(class workload.Class) []Config {
	full := DefaultConfig()
	small := full
	if class == workload.FP {
		small.FPQEntries = int(float64(full.FPQEntries) * tech.QueueSmallFrac)
	} else {
		small.IntQEntries = int(float64(full.IntQEntries) * tech.QueueSmallFrac)
	}
	squash := full
	squash.SquashL2Misses = true
	return []Config{full, small, squash}
}

// TestSimulateMatchesReference is the SoA kernel's golden suite: for every
// workload archetype in the suite, every phase mix, and every profiling
// configuration, Simulate must return a Result byte-identical to the
// original array-of-structs kernel. Any == mismatch on any float64 field
// is a correctness bug in the fast path, not a tolerance issue.
func TestSimulateMatchesReference(t *testing.T) {
	const nInstr = 4000
	for _, app := range workload.Suite() {
		for _, ph := range app.Phases {
			trace := GenerateTrace(ph.Mix, nInstr, mathx.NewRNG(profileTestSeed(app.Name, ph.Index)))
			for ci, cfg := range configsUnderTest(app.Class) {
				got, err := Simulate(trace, cfg)
				if err != nil {
					t.Fatalf("%s/%d cfg %d: Simulate: %v", app.Name, ph.Index, ci, err)
				}
				want, err := SimulateReference(trace, cfg)
				if err != nil {
					t.Fatalf("%s/%d cfg %d: SimulateReference: %v", app.Name, ph.Index, ci, err)
				}
				if got != want {
					t.Errorf("%s/%d cfg %d: Simulate diverges from reference:\n got %+v\nwant %+v",
						app.Name, ph.Index, ci, got, want)
				}
			}
		}
	}
}

// profileTestSeed mirrors profileSeed in internal/core without importing
// it (that would be an import cycle): any deterministic per-(app, phase)
// seed works — the point is trace diversity, not matching production.
func profileTestSeed(name string, phase int) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(name) {
		h = (h ^ int64(b)) * 1099511628211
	}
	return h ^ int64(phase)<<7
}

// TestSimulateMatchesReferenceEdgeCases pins the fast path's trickier
// corners: tiny traces (window never fills), dependency distances at the
// clamp boundary, dense store-forwarding chains, and long-stall traces
// where the occupancy tracker must retire across large cycle jumps.
func TestSimulateMatchesReferenceEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	check := func(name string, trace []Instr, cfg Config) {
		t.Helper()
		got, err := Simulate(trace, cfg)
		if err != nil {
			t.Fatalf("%s: Simulate: %v", name, err)
		}
		want, err := SimulateReference(trace, cfg)
		if err != nil {
			t.Fatalf("%s: SimulateReference: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: Simulate diverges:\n got %+v\nwant %+v", name, got, want)
		}
	}

	check("single", []Instr{{Op: OpInt, Dep1: 5}}, cfg)
	check("two-dependent", []Instr{{Op: OpInt}, {Op: OpInt, Dep1: 1, Dep2: 2}}, cfg)

	// Store then immediately load the same address: forwarding on the
	// freshest possible store, plus a stale far dependency.
	fwd := make([]Instr, 0, 64)
	for i := 0; i < 32; i++ {
		fwd = append(fwd,
			Instr{Op: OpStore, Addr: uint16(i % 3)},
			Instr{Op: OpLoad, Addr: uint16(i % 3), Dep1: 2, L1Miss: true, L2Miss: i%4 == 0})
	}
	check("forwarding-chain", fwd, cfg)

	// All-miss loads force ~200-cycle gaps between dispatches, so the
	// occupancy tracker's bucket walk crosses long empty ranges.
	stalls := make([]Instr, 64)
	for i := range stalls {
		stalls[i] = Instr{Op: OpLoad, Addr: uint16(i), Dep1: 1, L1Miss: true, L2Miss: true}
	}
	check("long-stalls", stalls, cfg)
	check("long-stalls-squash", stalls, Config{IntQEntries: cfg.IntQEntries, FPQEntries: cfg.FPQEntries, SquashL2Misses: true})

	// Minimum legal queues: the FIFO capacity constraint binds constantly.
	tiny := Config{IntQEntries: 4, FPQEntries: 4}
	mixed := make([]Instr, 300)
	for i := range mixed {
		switch i % 5 {
		case 0:
			mixed[i] = Instr{Op: OpFP, Dep1: 5}
		case 1:
			mixed[i] = Instr{Op: OpBranch, Mispredict: i%10 == 1}
		case 2:
			mixed[i] = Instr{Op: OpLoad, Addr: uint16(i), Dep1: 1, L1Miss: i%3 == 0}
		case 3:
			mixed[i] = Instr{Op: OpStore, Addr: uint16(i + 2), Dep2: 3}
		default:
			mixed[i] = Instr{Op: OpInt, Dep1: 400} // clamps to none early on
		}
	}
	check("tiny-queues", mixed, tiny)
}

// TestSimulateReferenceScratchInterleaving makes sure the two kernels can
// share the scratch pool: alternating calls must not leak state between
// the AoS and SoA paths.
func TestSimulateReferenceScratchInterleaving(t *testing.T) {
	mix := workload.Suite()[0].Phases[0].Mix
	trace := GenerateTrace(mix, 3000, mathx.NewRNG(7))
	cfg := DefaultConfig()
	base, err := Simulate(trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ref, err := SimulateReference(trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Simulate(trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref != base || fast != base {
			t.Fatalf("round %d: interleaved kernels diverge: ref %+v fast %+v base %+v", i, ref, fast, base)
		}
	}
}
