// Package pipeline is the performance substrate standing in for the
// paper's SESC cycle-level simulator: a trace-driven out-of-order core
// model of the evaluation machine (3-issue, Athlon-64-like, with the
// Figure 7(a) memory hierarchy: L1 2 cycles, L2 8 cycles, memory 208
// cycles round trip).
//
// It synthesizes instruction traces from workload mixes, simulates them
// through dispatch/issue/commit with issue-queue, ROB, and functional-unit
// constraints, and produces exactly the quantities the paper's evaluation
// needs: CPIcomp for each issue-queue size, the non-overlapped L2-miss
// penalty mp, per-subsystem activity factors alpha_f, and the Perf(f)
// composition of Eq. 5.
//
// Simulate is the production kernel: a structure-of-arrays loop with
// per-op latency/port tables, a flat store-forwarding index, and
// incremental issue-queue occupancy tracking. SimulateReference is the
// original array-of-structs walk, kept verbatim as the oracle; the two
// return byte-identical Results for every trace and configuration (the
// equivalence tests assert it across the workload suite).
package pipeline

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Machine parameters (Figure 7(a)).
const (
	DispatchWidth = 3
	CommitWidth   = 3
	ROBEntries    = 96
	// Round-trip latencies in cycles at nominal frequency.
	L1HitCycles = 2
	L2HitCycles = 8
	MemCycles   = 208
	// Execution latencies.
	IntLatency   = 1
	FPLatency    = 4
	StoreLatency = 1
	// Issue ports.
	IntPorts = 3
	FPPorts  = 2
	MemPorts = 2
	// BaseBranchPenalty is the misprediction flush/refill penalty.
	BaseBranchPenalty = 12
)

// Op is a dynamic instruction type.
type Op int

const (
	OpInt Op = iota
	OpFP
	OpLoad
	OpStore
	OpBranch
	numOps // sentinel
)

// Instr is one dynamic instruction of a synthetic trace.
type Instr struct {
	Op         Op
	Dep1, Dep2 int // register dependency distances (0 = none)
	// Addr is the memory address of loads and stores (synthetic, with
	// temporal locality); store-to-load forwarding matches on it.
	Addr       uint16
	L1Miss     bool
	L2Miss     bool
	Mispredict bool
}

// Store-to-load forwarding parameters: a load that hits a store to the
// same address within the store-queue window reads the value directly.
const (
	ForwardWindow  = 48 // dynamic-instruction reach of the store queue
	ForwardLatency = 1  // cycles for a forwarded load
)

// GenerateTrace synthesizes n instructions from a workload mix.
func GenerateTrace(mix workload.Mix, n int, rng *mathx.RNG) []Instr {
	trace := make([]Instr, n)
	pDep := 1 / mix.DepDistMean
	// Recent store addresses, for the temporal locality that makes
	// store-to-load forwarding happen.
	var recentStores [8]uint16
	nStores := 0
	addr := func() uint16 { return uint16(rng.Intn(1 << 14)) }
	for i := range trace {
		var in Instr
		r := rng.Float64()
		switch {
		case r < mix.LoadFrac:
			in.Op = OpLoad
			// Some loads read recently stored data (stack, spills).
			if nStores > 0 && rng.Float64() < 0.25 {
				in.Addr = recentStores[rng.Intn(min(nStores, len(recentStores)))]
			} else {
				in.Addr = addr()
			}
			if rng.Float64() < mix.L1MissRate {
				in.L1Miss = true
			}
			// L2MissRate is per instruction; convert to per-load.
			if mix.LoadFrac > 0 && rng.Float64() < mix.L2MissRate/mix.LoadFrac {
				in.L1Miss = true
				in.L2Miss = true
			}
		case r < mix.LoadFrac+mix.StoreFrac:
			in.Op = OpStore
			in.Addr = addr()
			recentStores[nStores%len(recentStores)] = in.Addr
			nStores++
		case r < mix.LoadFrac+mix.StoreFrac+mix.BranchFrac:
			in.Op = OpBranch
			in.Mispredict = rng.Float64() < mix.BranchMispredictRate
		default:
			if rng.Float64() < mix.FPFrac {
				in.Op = OpFP
			} else {
				in.Op = OpInt
			}
		}
		in.Dep1 = 1 + rng.Geometric(pDep)
		if rng.Float64() < 0.5 {
			in.Dep2 = 1 + rng.Geometric(pDep)
		}
		trace[i] = in
	}
	return trace
}

// Config controls one simulation.
type Config struct {
	// IntQEntries and FPQEntries are the issue-queue capacities in effect.
	IntQEntries int
	FPQEntries  int
	// SquashL2Misses treats L2 misses as L2 hits, isolating CPIcomp.
	SquashL2Misses bool
}

// DefaultConfig returns the full-queue machine.
func DefaultConfig() Config {
	return Config{IntQEntries: tech.IntQueueEntries, FPQEntries: tech.FPQueueEntries}
}

// Validate checks simulation configuration.
func (c Config) Validate() error {
	if c.IntQEntries < 4 || c.FPQEntries < 4 {
		return fmt.Errorf("pipeline: queue sizes %d/%d too small", c.IntQEntries, c.FPQEntries)
	}
	return nil
}

// Result summarizes one simulation.
type Result struct {
	Instructions int
	Cycles       int64
	CPI          float64
	// Activity is the per-subsystem activity factor alpha_f in accesses
	// per cycle, indexed by floorplan.ID.
	Activity [floorplan.NumSubsystems]float64
	// MispredictsPerInstr is the rate of mispredicted branches.
	MispredictsPerInstr float64
	// L2MissesPerInstr is the measured mr.
	L2MissesPerInstr float64
	// ForwardedLoadFrac is the fraction of loads served by
	// store-to-load forwarding.
	ForwardedLoadFrac float64
	// IntQOccupancyMean and FPQOccupancyMean are the mean issue-queue
	// occupancies observed at dispatch — the pressure that makes queue
	// resizing cost CPI.
	IntQOccupancyMean float64
	FPQOccupancyMean  float64
}

// ports tracks k identical pipelined issue ports.
type ports struct {
	free []int64 // next-free cycle per port
}

// take returns the earliest cycle >= ready at which a port is free, and
// occupies that port for one cycle. The running minimum lives in a
// register (bv) rather than being re-read through p.free[best] on every
// comparison.
func (p *ports) take(ready int64) int64 {
	f := p.free
	best := 0
	bv := f[0]
	for i := 1; i < len(f); i++ {
		if v := f[i]; v < bv {
			best, bv = i, v
		}
	}
	at := bv
	if ready > at {
		at = ready
	}
	f[best] = at + 1
	return at
}

// b2u8 converts a bool to 0/1; the compiler lowers the inlined form to a
// plain byte load, so flag packing in the conversion pass stays
// branch-free.
func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// occQueue tracks one issue queue's occupancy-at-dispatch incrementally.
// The reference kernel rescans the last `capacity` issue times at every
// dispatch (O(n·capacity) total); this keeps the count — how many of the
// last capacity entries have issue > current cycle — as a running value:
//
//   - ring holds the in-window issue times (entry j at slot j%cap), which
//     also serves the FIFO dispatch constraint (read before overwrite);
//   - bucket[c] counts pending entries issuing exactly at cycle c, so
//     advancing the dispatch cycle retires them by difference-array walk,
//     O(total cycles) across the whole run;
//   - pending is the current count, added to occSum at each dispatch.
//
// All quantities are integers, so occSum matches the reference's float
// accumulation bit for bit (integer-valued partial sums below 2^53 are
// exact in float64).
type occQueue struct {
	ring      []int64 // last cap issue times, ring[j%cap]
	bucket    []int32 // pending entries per absolute issue cycle
	n         int     // entries ever pushed
	head      int     // n % cap, kept incrementally (no div on the hot path)
	cap       int
	pending   int   // in-window entries with issue > lastCycle
	lastCycle int64 // cycle of the most recent sample
	maxIssue  int64 // highest issue cycle with a (possibly) live bucket
	occSum    int64
}

// reset prepares the queue for a run at the given capacity, zeroing only
// the buckets the previous run left live (they are reachable through the
// ring, so the wipe is O(capacity), not O(cycles)). cycleHint sizes the
// bucket array up front — one allocation instead of a doubling cascade
// when the scratch is cold — and push still grows it for traces whose
// cycle count outruns the hint.
func (q *occQueue) reset(capacity, cycleHint int) {
	live := min(q.n, q.cap)
	for k := 0; k < live; k++ {
		if is := q.ring[k]; is > q.lastCycle {
			q.bucket[is] = 0
		}
	}
	if cap(q.ring) < capacity {
		q.ring = make([]int64, capacity)
	}
	q.ring = q.ring[:capacity]
	if len(q.bucket) < cycleHint {
		q.bucket = make([]int32, cycleHint)
	}
	q.n = 0
	q.head = 0
	q.cap = capacity
	q.pending = 0
	q.lastCycle = 0
	q.maxIssue = 0
	q.occSum = 0
}

// fifoBound returns the dispatch lower bound from queue capacity: the
// issue time of the entry that must free its slot first, or -1 when the
// queue still has room. Must be called before push for this instruction.
func (q *occQueue) fifoBound() int64 {
	if q.n < q.cap {
		return -1
	}
	return q.ring[q.head] // entry n-cap, the oldest in the window
}

// sample advances to the dispatch cycle, retiring pending entries whose
// issue time has passed, and accumulates the occupancy.
func (q *occQueue) sample(cycle int64) {
	if cycle > q.lastCycle {
		if q.pending > 0 {
			hi := min(cycle, q.maxIssue)
			for c := q.lastCycle + 1; c <= hi; c++ {
				if b := q.bucket[c]; b != 0 {
					q.pending -= int(b)
					q.bucket[c] = 0
					if q.pending == 0 {
						// Nonnegative buckets summing to zero pending are
						// all zero: nothing further to retire or wipe.
						break
					}
				}
			}
		}
		q.lastCycle = cycle
	}
	q.occSum += int64(q.pending)
}

// push records a newly dispatched entry's issue time, evicting the oldest
// window entry if the window is full.
func (q *occQueue) push(issue int64) {
	slot := q.head
	if q.n >= q.cap {
		if old := q.ring[slot]; old > q.lastCycle {
			q.pending--
			q.bucket[old]--
		}
	}
	q.ring[slot] = issue
	q.n++
	if q.head++; q.head == q.cap {
		q.head = 0
	}
	if issue > q.lastCycle { // always true: issue >= dispatch cycle + 1
		if grow := int(issue) + 1 - len(q.bucket); grow > 0 {
			q.bucket = append(q.bucket, make([]int32, max(grow, len(q.bucket)))...)
		}
		q.bucket[issue]++
		q.pending++
		if issue > q.maxIssue {
			q.maxIssue = issue
		}
	}
}

// simScratch holds one Simulate call's working buffers, pooled across
// calls: the structure-of-arrays trace mirror, per-instruction timing
// arrays, occupancy trackers, port trackers, and the store-forwarding
// index, plus the reference kernel's issue-time FIFOs and map. The timing
// arrays are not zeroed on reuse — every index is written before it is
// read — while the trackers, index, and map are reset.
//
// # Ownership
//
// A scratch belongs to exactly one Simulate/SimulateReference call at a
// time (the pool hands it out and takes it back); nothing in it escapes
// into Results, so pooling is invisible to callers on any goroutine.
type simScratch struct {
	complete, commit            []int64
	intPorts, fpPorts, memPorts ports

	// Fast-path (structure-of-arrays) buffers.
	ops          []uint8
	dep1, dep2   []int32
	flags        []uint8
	addrs        []uint16
	intQ, fpQ    occQueue
	lastStoreIdx []int32  // per-address store index + 1; 0 = none
	storeAddrs   []uint16 // addresses written, for O(stores) reset

	// Reference-path buffers.
	dispatch              []int64
	intQIssues, fpQIssues []int64
	lastStore             map[uint16]int

	// Cached front-end access sum: the n-term iterated addition of
	// 1/DispatchWidth depends only on n, so it is computed once per trace
	// length rather than once per call.
	feN   int
	feSum float64
}

var simScratchPool = sync.Pool{
	New: func() any {
		// One backing array for the three port free lists: under the race
		// detector sync.Pool randomly drops entries, so cold rebuilds are
		// on the hot path and every saved allocation counts.
		pf := make([]int64, IntPorts+FPPorts+MemPorts)
		return &simScratch{
			intPorts:     ports{free: pf[:IntPorts:IntPorts]},
			fpPorts:      ports{free: pf[IntPorts : IntPorts+FPPorts : IntPorts+FPPorts]},
			memPorts:     ports{free: pf[IntPorts+FPPorts:]},
			lastStoreIdx: make([]int32, 1<<16),
			lastStore:    make(map[uint16]int),
		}
	},
}

func (sc *simScratch) resetPorts() {
	clear(sc.intPorts.free)
	clear(sc.fpPorts.free)
	clear(sc.memPorts.free)
}

// reset prepares the fast-path buffers for an n-instruction run. Same-typed
// arrays are carved in pairs from shared backing allocations, again to keep
// the cold-rebuild allocation count low under the race detector's pool
// drops; the pair cap check keeps the carving correct even after
// resetReference has regrown one of the shared slices independently.
func (sc *simScratch) reset(n int, cfg Config) {
	// Wipe the forwarding index before any reallocation below can drop
	// the old storeAddrs list that records which entries are dirty.
	for _, a := range sc.storeAddrs {
		sc.lastStoreIdx[a] = 0
	}
	if cap(sc.complete) < n || cap(sc.commit) < n {
		a := make([]int64, 2*n)
		sc.complete, sc.commit = a[:n:n], a[n:]
	}
	sc.complete, sc.commit = sc.complete[:n], sc.commit[:n]
	if cap(sc.dep1) < n || cap(sc.dep2) < n {
		a := make([]int32, 2*n)
		sc.dep1, sc.dep2 = a[:n:n], a[n:]
	}
	sc.dep1, sc.dep2 = sc.dep1[:n], sc.dep2[:n]
	if cap(sc.ops) < n || cap(sc.flags) < n {
		a := make([]uint8, 2*n)
		sc.ops, sc.flags = a[:n:n], a[n:]
	}
	sc.ops, sc.flags = sc.ops[:n], sc.flags[:n]
	if cap(sc.addrs) < n || cap(sc.storeAddrs) < n {
		a := make([]uint16, 2*n)
		sc.addrs, sc.storeAddrs = a[:n:n], a[n:]
	}
	sc.addrs, sc.storeAddrs = sc.addrs[:n], sc.storeAddrs[:0]
	// Bucket hint: 4 cycles/instruction covers the steady-state CPI of
	// every workload mix; pathological all-miss traces grow past it.
	cycleHint := 4*n + 1024
	sc.intQ.reset(cfg.IntQEntries, cycleHint)
	sc.fpQ.reset(cfg.FPQEntries, cycleHint)
	sc.resetPorts()
}

// resetReference prepares the reference-path buffers.
func (sc *simScratch) resetReference(n int) {
	sc.dispatch = slices.Grow(sc.dispatch[:0], n)[:n]
	sc.complete = slices.Grow(sc.complete[:0], n)[:n]
	sc.commit = slices.Grow(sc.commit[:0], n)[:n]
	sc.intQIssues = slices.Grow(sc.intQIssues[:0], n)[:0]
	sc.fpQIssues = slices.Grow(sc.fpQIssues[:0], n)[:0]
	sc.resetPorts()
	clear(sc.lastStore)
}

// Per-op instruction-class flags, packed next to the op for the dispatch
// loop.
const (
	flagL1Miss = 1 << iota
	flagL2Miss
	flagMispredict
)

// Per-op execution latency (loads are resolved dynamically).
var opLatency = [numOps]int64{
	OpInt:    IntLatency,
	OpFP:     FPLatency,
	OpLoad:   0, // cache level / forwarding decides
	OpStore:  StoreLatency,
	OpBranch: IntLatency,
}

// Simulate runs the trace through the core model and returns measured CPI
// and activity factors. Working memory is pooled and reused across calls
// (and goroutines), so steady-state simulation is allocation-free.
//
// The kernel walks a structure-of-arrays mirror of the trace (op bytes,
// clamped dependency distances, flag bits, addresses) so the hot loop
// touches dense arrays instead of 32-byte Instr records, resolves issue
// ports and latencies through per-op tables, keeps queue occupancy
// incrementally (see occQueue), and replaces the store-forwarding map
// with a flat per-address index. Results are byte-identical to
// SimulateReference: every cycle-level decision is the same, and the
// floating-point outputs are reconstructed from exact integer counts.
func Simulate(trace []Instr, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(trace) == 0 {
		return Result{}, fmt.Errorf("pipeline: empty trace")
	}
	n := len(trace)
	sc := simScratchPool.Get().(*simScratch)
	sc.reset(n, cfg)
	defer simScratchPool.Put(sc)
	complete := sc.complete
	commit := sc.commit
	ops := sc.ops
	dep1 := sc.dep1
	dep2 := sc.dep2
	flags := sc.flags
	addrs := sc.addrs

	// Conversion pass: mirror the trace into the structure-of-arrays
	// layout and take the per-class counts every output statistic derives
	// from. Dependency distances are clamped to the valid window (d in
	// [1, i]) here so the hot loop needs no bounds checks. The pass is
	// written branch-free — counted-index increments instead of a class
	// switch, bool-byte arithmetic for the flags, an unsigned range test
	// for the clamp — because every one of these branches is data-dependent
	// and mispredicts on real traces.
	var classCounts [8]int // numOps rounded up so op&7 needs no bounds check
	l2misses := 0
	for i := range trace {
		in := &trace[i]
		op := in.Op
		ops[i] = uint8(op)
		d1 := int32(in.Dep1)
		if uint(in.Dep1-1) >= uint(i) { // d < 1 || d > i
			d1 = 0
		}
		dep1[i] = d1
		d2 := int32(in.Dep2)
		if uint(in.Dep2-1) >= uint(i) {
			d2 = 0
		}
		dep2[i] = d2
		addrs[i] = in.Addr
		flags[i] = b2u8(in.L1Miss)*flagL1Miss |
			b2u8(in.L2Miss)*flagL2Miss |
			b2u8(in.Mispredict)*flagMispredict
		l2misses += int(b2u8(in.L2Miss))
		classCounts[op&7]++
	}
	nFP := classCounts[OpFP]
	nInt := classCounts[OpInt]
	nLoad := classCounts[OpLoad]
	nStore := classCounts[OpStore]
	nBranch := classCounts[OpBranch]

	intPorts := &sc.intPorts
	fpPorts := &sc.fpPorts
	memPorts := &sc.memPorts
	intQ := &sc.intQ
	fpQ := &sc.fpQ
	lastStoreIdx := sc.lastStoreIdx

	var cycle int64      // current dispatch cycle
	slots := 0           // dispatch slots used this cycle
	var stallUntil int64 // front-end stall from branch mispredictions

	mispredicts := 0
	forwarded := 0

	for i := 0; i < n; i++ {
		op := Op(ops[i])
		isFP := op == OpFP
		q := intQ
		if isFP {
			q = fpQ
		}

		// Earliest dispatch: program order, front-end stalls, ROB space,
		// and issue-queue space.
		earliest := cycle
		if stallUntil > earliest {
			earliest = stallUntil
		}
		if i >= ROBEntries && commit[i-ROBEntries]+1 > earliest {
			earliest = commit[i-ROBEntries] + 1
		}
		if t := q.fifoBound(); t >= 0 && t+1 > earliest {
			earliest = t + 1
		}
		if earliest > cycle {
			cycle = earliest
			slots = 0
		} else if slots >= DispatchWidth {
			cycle++
			slots = 0
		}
		slots++

		// Operand readiness (distances pre-clamped to valid range).
		ready := cycle + 1
		if d := dep1[i]; d != 0 {
			if c := complete[i-int(d)] + 1; c > ready {
				ready = c
			}
		}
		if d := dep2[i]; d != 0 {
			if c := complete[i-int(d)] + 1; c > ready {
				ready = c
			}
		}

		// Issue and execute.
		var issue, done int64
		switch op {
		case OpLoad:
			issue = memPorts.take(ready)
			lat := int64(L1HitCycles)
			if si := int(lastStoreIdx[addrs[i]]) - 1; si >= 0 && i-si <= ForwardWindow {
				// Store-to-load forwarding: the load reads the store
				// queue; it must wait for the store's data but skips the
				// cache entirely.
				lat = ForwardLatency
				if complete[si]+ForwardLatency > issue+lat {
					lat = complete[si] + ForwardLatency - issue
				}
				forwarded++
			} else if flags[i]&flagL2Miss != 0 && !cfg.SquashL2Misses {
				lat = MemCycles
			} else if flags[i]&flagL1Miss != 0 {
				lat = L2HitCycles
			}
			done = issue + lat
		case OpStore:
			issue = memPorts.take(ready)
			done = issue + StoreLatency
			lastStoreIdx[addrs[i]] = int32(i) + 1
			sc.storeAddrs = append(sc.storeAddrs, addrs[i])
		case OpFP:
			issue = fpPorts.take(ready)
			done = issue + FPLatency
		default: // OpInt, OpBranch
			issue = intPorts.take(ready)
			done = issue + opLatency[op]
			if op == OpBranch && flags[i]&flagMispredict != 0 {
				mispredicts++
				if s := done + BaseBranchPenalty; s > stallUntil {
					stallUntil = s
				}
			}
		}
		complete[i] = done
		q.sample(cycle)
		q.push(issue)

		// In-order commit, CommitWidth per cycle.
		c := done
		if i > 0 && commit[i-1] > c {
			c = commit[i-1]
		}
		if i >= CommitWidth && commit[i-CommitWidth]+1 > c {
			c = commit[i-CommitWidth] + 1
		}
		commit[i] = c
	}

	total := commit[n-1] + 1
	res := Result{
		Instructions:        n,
		Cycles:              total,
		CPI:                 float64(total) / float64(n),
		MispredictsPerInstr: float64(mispredicts) / float64(n),
		L2MissesPerInstr:    float64(l2misses) / float64(n),
	}
	if nLoad > 0 {
		res.ForwardedLoadFrac = float64(forwarded) / float64(nLoad)
	}
	if nonFP := n - nFP; nonFP > 0 {
		res.IntQOccupancyMean = float64(intQ.occSum) / float64(nonFP)
	}
	if nFP > 0 {
		res.FPQOccupancyMean = float64(fpQ.occSum) / float64(nFP)
	}

	// Reconstruct the per-subsystem access counts from the class counts.
	// Every constant the reference tally accumulates except 1/DispatchWidth
	// is an exact binary fraction whose partial sums stay below 2^52, so
	// count*weight reproduces the incremental sum bit for bit; the two
	// front-end counters weighted by the non-representable 1/3 are rebuilt
	// by the same n-term iterated addition the reference performs.
	var counts [floorplan.NumSubsystems]float64
	frontEnd := sc.feSum
	if sc.feN != n {
		frontEnd = 0.0
		for i := 0; i < n; i++ {
			frontEnd += 1.0 / DispatchWidth
		}
		sc.feN, sc.feSum = n, frontEnd
	}
	counts[floorplan.Icache] = frontEnd
	counts[floorplan.ITLB] = frontEnd
	counts[floorplan.Decode] = float64(n)
	counts[floorplan.BranchPred] = float64(n)*0.25 + float64(nBranch)
	counts[floorplan.FPMap] = float64(nFP)
	counts[floorplan.FPQ] = float64(nFP)
	counts[floorplan.FPReg] = 1.5 * float64(nFP)
	counts[floorplan.FPUnit] = float64(nFP)
	counts[floorplan.IntMap] = float64(n - nFP)
	counts[floorplan.IntQ] = float64(n - nFP)
	counts[floorplan.IntReg] = 1.5 * float64(n-nFP)
	counts[floorplan.IntALU] = float64(nInt + nBranch)
	counts[floorplan.LdStQ] = float64(nLoad + nStore)
	counts[floorplan.Dcache] = float64(nLoad + nStore)
	counts[floorplan.DTLB] = float64(nLoad + nStore)
	for id := range counts {
		res.Activity[id] = counts[id] / float64(total)
	}
	return res, nil
}

// SimulateReference is the original array-of-structs simulation kernel,
// kept verbatim as the oracle for Simulate: same dispatch/issue/commit
// decisions, same incremental statistics, byte-identical Results. It is
// what the SoA equivalence suite and the benchmarks compare against.
func SimulateReference(trace []Instr, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(trace) == 0 {
		return Result{}, fmt.Errorf("pipeline: empty trace")
	}
	n := len(trace)
	sc := simScratchPool.Get().(*simScratch)
	sc.resetReference(n)
	defer simScratchPool.Put(sc)
	dispatch := sc.dispatch
	complete := sc.complete
	commit := sc.commit

	// Per-queue FIFO of issue times for the queue-occupancy constraint:
	// instruction k of queue q cannot dispatch until the (k - size)-th
	// instruction of q has issued and freed its entry. Appends stay within
	// the scratch capacity (one entry per instruction), so they never
	// reallocate.
	intQIssues := sc.intQIssues
	fpQIssues := sc.fpQIssues

	intPorts := &sc.intPorts
	fpPorts := &sc.fpPorts
	memPorts := &sc.memPorts

	var cycle int64      // current dispatch cycle
	slots := 0           // dispatch slots used this cycle
	var stallUntil int64 // front-end stall from branch mispredictions

	mispredicts := 0
	l2misses := 0
	forwarded := 0
	loads := 0
	lastStore := sc.lastStore
	var intOccSum, fpOccSum float64
	var counts [floorplan.NumSubsystems]float64

	for i, in := range trace {
		// Earliest dispatch: program order, front-end stalls, ROB space,
		// and issue-queue space.
		earliest := cycle
		if stallUntil > earliest {
			earliest = stallUntil
		}
		if i >= ROBEntries && commit[i-ROBEntries]+1 > earliest {
			earliest = commit[i-ROBEntries] + 1
		}
		isFP := in.Op == OpFP
		if isFP {
			if k := len(fpQIssues) - cfg.FPQEntries; k >= 0 && fpQIssues[k]+1 > earliest {
				earliest = fpQIssues[k] + 1
			}
		} else {
			if k := len(intQIssues) - cfg.IntQEntries; k >= 0 && intQIssues[k]+1 > earliest {
				earliest = intQIssues[k] + 1
			}
		}
		if in.Op == OpLoad {
			loads++
		}
		if earliest > cycle {
			cycle = earliest
			slots = 0
		} else if slots >= DispatchWidth {
			cycle++
			slots = 0
		}
		dispatch[i] = cycle
		slots++

		// Operand readiness.
		ready := cycle + 1
		if d := in.Dep1; d > 0 && i-d >= 0 && complete[i-d]+1 > ready {
			ready = complete[i-d] + 1
		}
		if d := in.Dep2; d > 0 && i-d >= 0 && complete[i-d]+1 > ready {
			ready = complete[i-d] + 1
		}

		// Issue and execute.
		var issue, done int64
		switch in.Op {
		case OpInt:
			issue = intPorts.take(ready)
			done = issue + IntLatency
		case OpFP:
			issue = fpPorts.take(ready)
			done = issue + FPLatency
		case OpLoad:
			issue = memPorts.take(ready)
			lat := int64(L1HitCycles)
			if si, ok := lastStore[in.Addr]; ok && i-si <= ForwardWindow {
				// Store-to-load forwarding: the load reads the store
				// queue; it must wait for the store's data but skips the
				// cache entirely.
				lat = ForwardLatency
				if complete[si]+ForwardLatency > issue+lat {
					lat = complete[si] + ForwardLatency - issue
				}
				forwarded++
			} else if in.L2Miss && !cfg.SquashL2Misses {
				lat = MemCycles
			} else if in.L1Miss {
				lat = L2HitCycles
			}
			done = issue + lat
		case OpStore:
			issue = memPorts.take(ready)
			done = issue + StoreLatency
			lastStore[in.Addr] = i
		case OpBranch:
			issue = intPorts.take(ready)
			done = issue + IntLatency
			if in.Mispredict {
				mispredicts++
				if s := done + BaseBranchPenalty; s > stallUntil {
					stallUntil = s
				}
			}
		}
		complete[i] = done
		if isFP {
			fpQOccSumAdd(&fpOccSum, fpQIssues, cycle, cfg.FPQEntries)
			fpQIssues = append(fpQIssues, issue)
		} else {
			fpQOccSumAdd(&intOccSum, intQIssues, cycle, cfg.IntQEntries)
			intQIssues = append(intQIssues, issue)
		}

		// In-order commit, CommitWidth per cycle.
		c := done
		if i > 0 && commit[i-1] > c {
			c = commit[i-1]
		}
		if i >= CommitWidth && commit[i-CommitWidth]+1 > c {
			c = commit[i-CommitWidth] + 1
		}
		commit[i] = c

		if in.L2Miss {
			l2misses++
		}
		tally(&counts, in)
	}

	total := commit[n-1] + 1
	res := Result{
		Instructions:        n,
		Cycles:              total,
		CPI:                 float64(total) / float64(n),
		MispredictsPerInstr: float64(mispredicts) / float64(n),
		L2MissesPerInstr:    float64(l2misses) / float64(n),
	}
	if loads > 0 {
		res.ForwardedLoadFrac = float64(forwarded) / float64(loads)
	}
	var intCount, fpCount float64
	for _, in := range trace {
		if in.Op == OpFP {
			fpCount++
		} else {
			intCount++
		}
	}
	if intCount > 0 {
		res.IntQOccupancyMean = intOccSum / intCount
	}
	if fpCount > 0 {
		res.FPQOccupancyMean = fpOccSum / fpCount
	}
	for id := range counts {
		res.Activity[id] = counts[id] / float64(total)
	}
	return res, nil
}

// tally attributes one instruction's structure accesses.
func tally(counts *[floorplan.NumSubsystems]float64, in Instr) {
	// Front end: every instruction is fetched, predicted-over, decoded,
	// and renamed.
	counts[floorplan.Icache] += 1.0 / DispatchWidth // fetch-group granularity
	counts[floorplan.ITLB] += 1.0 / DispatchWidth
	counts[floorplan.Decode] += 1.0
	counts[floorplan.BranchPred] += 0.25 // fetch-group lookup
	isFP := in.Op == OpFP
	if isFP {
		counts[floorplan.FPMap] += 1.0
		counts[floorplan.FPQ] += 1.0
		counts[floorplan.FPReg] += 1.5 // operand reads + writeback
		counts[floorplan.FPUnit] += 1.0
	} else {
		counts[floorplan.IntMap] += 1.0
		counts[floorplan.IntQ] += 1.0
		counts[floorplan.IntReg] += 1.5
	}
	switch in.Op {
	case OpInt:
		counts[floorplan.IntALU] += 1.0
	case OpBranch:
		counts[floorplan.IntALU] += 1.0
		counts[floorplan.BranchPred] += 1.0
	case OpLoad, OpStore:
		counts[floorplan.LdStQ] += 1.0
		counts[floorplan.Dcache] += 1.0
		counts[floorplan.DTLB] += 1.0
	}
}

// fpQOccSumAdd accumulates the queue occupancy seen at a dispatch: the
// number of older entries (within the last capacity entries) that had not
// yet issued at the dispatch cycle.
func fpQOccSumAdd(sum *float64, issues []int64, cycle int64, capacity int) {
	lo := len(issues) - capacity
	if lo < 0 {
		lo = 0
	}
	occ := 0
	for k := len(issues) - 1; k >= lo; k-- {
		if issues[k] > cycle {
			occ++
		}
	}
	*sum += float64(occ)
}

// clampActivity keeps measured activities within the power model's sane
// range (an access factor above ~3/cycle would mean more than one access
// per issue slot).
func clampActivity(a float64) float64 { return math.Min(a, 3) }
