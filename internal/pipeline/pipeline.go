// Package pipeline is the performance substrate standing in for the
// paper's SESC cycle-level simulator: a trace-driven out-of-order core
// model of the evaluation machine (3-issue, Athlon-64-like, with the
// Figure 7(a) memory hierarchy: L1 2 cycles, L2 8 cycles, memory 208
// cycles round trip).
//
// It synthesizes instruction traces from workload mixes, simulates them
// through dispatch/issue/commit with issue-queue, ROB, and functional-unit
// constraints, and produces exactly the quantities the paper's evaluation
// needs: CPIcomp for each issue-queue size, the non-overlapped L2-miss
// penalty mp, per-subsystem activity factors alpha_f, and the Perf(f)
// composition of Eq. 5.
package pipeline

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Machine parameters (Figure 7(a)).
const (
	DispatchWidth = 3
	CommitWidth   = 3
	ROBEntries    = 96
	// Round-trip latencies in cycles at nominal frequency.
	L1HitCycles = 2
	L2HitCycles = 8
	MemCycles   = 208
	// Execution latencies.
	IntLatency   = 1
	FPLatency    = 4
	StoreLatency = 1
	// Issue ports.
	IntPorts = 3
	FPPorts  = 2
	MemPorts = 2
	// BaseBranchPenalty is the misprediction flush/refill penalty.
	BaseBranchPenalty = 12
)

// Op is a dynamic instruction type.
type Op int

const (
	OpInt Op = iota
	OpFP
	OpLoad
	OpStore
	OpBranch
)

// Instr is one dynamic instruction of a synthetic trace.
type Instr struct {
	Op         Op
	Dep1, Dep2 int // register dependency distances (0 = none)
	// Addr is the memory address of loads and stores (synthetic, with
	// temporal locality); store-to-load forwarding matches on it.
	Addr       uint16
	L1Miss     bool
	L2Miss     bool
	Mispredict bool
}

// Store-to-load forwarding parameters: a load that hits a store to the
// same address within the store-queue window reads the value directly.
const (
	ForwardWindow  = 48 // dynamic-instruction reach of the store queue
	ForwardLatency = 1  // cycles for a forwarded load
)

// GenerateTrace synthesizes n instructions from a workload mix.
func GenerateTrace(mix workload.Mix, n int, rng *mathx.RNG) []Instr {
	trace := make([]Instr, n)
	pDep := 1 / mix.DepDistMean
	// Recent store addresses, for the temporal locality that makes
	// store-to-load forwarding happen.
	var recentStores [8]uint16
	nStores := 0
	addr := func() uint16 { return uint16(rng.Intn(1 << 14)) }
	for i := range trace {
		var in Instr
		r := rng.Float64()
		switch {
		case r < mix.LoadFrac:
			in.Op = OpLoad
			// Some loads read recently stored data (stack, spills).
			if nStores > 0 && rng.Float64() < 0.25 {
				in.Addr = recentStores[rng.Intn(min(nStores, len(recentStores)))]
			} else {
				in.Addr = addr()
			}
			if rng.Float64() < mix.L1MissRate {
				in.L1Miss = true
			}
			// L2MissRate is per instruction; convert to per-load.
			if mix.LoadFrac > 0 && rng.Float64() < mix.L2MissRate/mix.LoadFrac {
				in.L1Miss = true
				in.L2Miss = true
			}
		case r < mix.LoadFrac+mix.StoreFrac:
			in.Op = OpStore
			in.Addr = addr()
			recentStores[nStores%len(recentStores)] = in.Addr
			nStores++
		case r < mix.LoadFrac+mix.StoreFrac+mix.BranchFrac:
			in.Op = OpBranch
			in.Mispredict = rng.Float64() < mix.BranchMispredictRate
		default:
			if rng.Float64() < mix.FPFrac {
				in.Op = OpFP
			} else {
				in.Op = OpInt
			}
		}
		in.Dep1 = 1 + rng.Geometric(pDep)
		if rng.Float64() < 0.5 {
			in.Dep2 = 1 + rng.Geometric(pDep)
		}
		trace[i] = in
	}
	return trace
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Config controls one simulation.
type Config struct {
	// IntQEntries and FPQEntries are the issue-queue capacities in effect.
	IntQEntries int
	FPQEntries  int
	// SquashL2Misses treats L2 misses as L2 hits, isolating CPIcomp.
	SquashL2Misses bool
}

// DefaultConfig returns the full-queue machine.
func DefaultConfig() Config {
	return Config{IntQEntries: tech.IntQueueEntries, FPQEntries: tech.FPQueueEntries}
}

// Validate checks simulation configuration.
func (c Config) Validate() error {
	if c.IntQEntries < 4 || c.FPQEntries < 4 {
		return fmt.Errorf("pipeline: queue sizes %d/%d too small", c.IntQEntries, c.FPQEntries)
	}
	return nil
}

// Result summarizes one simulation.
type Result struct {
	Instructions int
	Cycles       int64
	CPI          float64
	// Activity is the per-subsystem activity factor alpha_f in accesses
	// per cycle, indexed by floorplan.ID.
	Activity [floorplan.NumSubsystems]float64
	// MispredictsPerInstr is the rate of mispredicted branches.
	MispredictsPerInstr float64
	// L2MissesPerInstr is the measured mr.
	L2MissesPerInstr float64
	// ForwardedLoadFrac is the fraction of loads served by
	// store-to-load forwarding.
	ForwardedLoadFrac float64
	// IntQOccupancyMean and FPQOccupancyMean are the mean issue-queue
	// occupancies observed at dispatch — the pressure that makes queue
	// resizing cost CPI.
	IntQOccupancyMean float64
	FPQOccupancyMean  float64
}

// ports tracks k identical pipelined issue ports.
type ports struct {
	free []int64 // next-free cycle per port
}

// take returns the earliest cycle >= ready at which a port is free, and
// occupies that port for one cycle.
func (p *ports) take(ready int64) int64 {
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	at := p.free[best]
	if ready > at {
		at = ready
	}
	p.free[best] = at + 1
	return at
}

// simScratch holds one Simulate call's working buffers, pooled across
// calls: the per-instruction timing arrays, the issue-time FIFOs, the
// port trackers, and the store-forwarding map. The timing arrays are not
// zeroed on reuse — every index is written before it is read — while the
// FIFOs, ports, and map are reset.
type simScratch struct {
	dispatch, complete, commit  []int64
	intQIssues, fpQIssues       []int64
	intPorts, fpPorts, memPorts ports
	lastStore                   map[uint16]int
}

var simScratchPool = sync.Pool{
	New: func() any {
		return &simScratch{
			intPorts:  ports{free: make([]int64, IntPorts)},
			fpPorts:   ports{free: make([]int64, FPPorts)},
			memPorts:  ports{free: make([]int64, MemPorts)},
			lastStore: make(map[uint16]int),
		}
	},
}

// growInt64 returns s resized to n, reallocating only when too small.
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func (sc *simScratch) reset(n int) {
	sc.dispatch = growInt64(sc.dispatch, n)
	sc.complete = growInt64(sc.complete, n)
	sc.commit = growInt64(sc.commit, n)
	sc.intQIssues = growInt64(sc.intQIssues, n)[:0]
	sc.fpQIssues = growInt64(sc.fpQIssues, n)[:0]
	clear(sc.intPorts.free)
	clear(sc.fpPorts.free)
	clear(sc.memPorts.free)
	clear(sc.lastStore)
}

// Simulate runs the trace through the core model and returns measured CPI
// and activity factors. Working memory is pooled and reused across calls
// (and goroutines), so steady-state simulation is allocation-free.
func Simulate(trace []Instr, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(trace) == 0 {
		return Result{}, fmt.Errorf("pipeline: empty trace")
	}
	n := len(trace)
	sc := simScratchPool.Get().(*simScratch)
	sc.reset(n)
	defer simScratchPool.Put(sc)
	dispatch := sc.dispatch
	complete := sc.complete
	commit := sc.commit

	// Per-queue FIFO of issue times for the queue-occupancy constraint:
	// instruction k of queue q cannot dispatch until the (k - size)-th
	// instruction of q has issued and freed its entry. Appends stay within
	// the scratch capacity (one entry per instruction), so they never
	// reallocate.
	intQIssues := sc.intQIssues
	fpQIssues := sc.fpQIssues

	intPorts := &sc.intPorts
	fpPorts := &sc.fpPorts
	memPorts := &sc.memPorts

	var cycle int64      // current dispatch cycle
	slots := 0           // dispatch slots used this cycle
	var stallUntil int64 // front-end stall from branch mispredictions

	mispredicts := 0
	l2misses := 0
	forwarded := 0
	loads := 0
	lastStore := sc.lastStore
	var intOccSum, fpOccSum float64
	var counts [floorplan.NumSubsystems]float64

	for i, in := range trace {
		// Earliest dispatch: program order, front-end stalls, ROB space,
		// and issue-queue space.
		earliest := cycle
		if stallUntil > earliest {
			earliest = stallUntil
		}
		if i >= ROBEntries && commit[i-ROBEntries]+1 > earliest {
			earliest = commit[i-ROBEntries] + 1
		}
		isFP := in.Op == OpFP
		if isFP {
			if k := len(fpQIssues) - cfg.FPQEntries; k >= 0 && fpQIssues[k]+1 > earliest {
				earliest = fpQIssues[k] + 1
			}
		} else {
			if k := len(intQIssues) - cfg.IntQEntries; k >= 0 && intQIssues[k]+1 > earliest {
				earliest = intQIssues[k] + 1
			}
		}
		if in.Op == OpLoad {
			loads++
		}
		if earliest > cycle {
			cycle = earliest
			slots = 0
		} else if slots >= DispatchWidth {
			cycle++
			slots = 0
		}
		dispatch[i] = cycle
		slots++

		// Operand readiness.
		ready := cycle + 1
		if d := in.Dep1; d > 0 && i-d >= 0 && complete[i-d]+1 > ready {
			ready = complete[i-d] + 1
		}
		if d := in.Dep2; d > 0 && i-d >= 0 && complete[i-d]+1 > ready {
			ready = complete[i-d] + 1
		}

		// Issue and execute.
		var issue, done int64
		switch in.Op {
		case OpInt:
			issue = intPorts.take(ready)
			done = issue + IntLatency
		case OpFP:
			issue = fpPorts.take(ready)
			done = issue + FPLatency
		case OpLoad:
			issue = memPorts.take(ready)
			lat := int64(L1HitCycles)
			if si, ok := lastStore[in.Addr]; ok && i-si <= ForwardWindow {
				// Store-to-load forwarding: the load reads the store
				// queue; it must wait for the store's data but skips the
				// cache entirely.
				lat = ForwardLatency
				if complete[si]+ForwardLatency > issue+lat {
					lat = complete[si] + ForwardLatency - issue
				}
				forwarded++
			} else if in.L2Miss && !cfg.SquashL2Misses {
				lat = MemCycles
			} else if in.L1Miss {
				lat = L2HitCycles
			}
			done = issue + lat
		case OpStore:
			issue = memPorts.take(ready)
			done = issue + StoreLatency
			lastStore[in.Addr] = i
		case OpBranch:
			issue = intPorts.take(ready)
			done = issue + IntLatency
			if in.Mispredict {
				mispredicts++
				if s := done + BaseBranchPenalty; s > stallUntil {
					stallUntil = s
				}
			}
		}
		complete[i] = done
		if isFP {
			fpQOccSumAdd(&fpOccSum, fpQIssues, cycle, cfg.FPQEntries)
			fpQIssues = append(fpQIssues, issue)
		} else {
			fpQOccSumAdd(&intOccSum, intQIssues, cycle, cfg.IntQEntries)
			intQIssues = append(intQIssues, issue)
		}

		// In-order commit, CommitWidth per cycle.
		c := done
		if i > 0 && commit[i-1] > c {
			c = commit[i-1]
		}
		if i >= CommitWidth && commit[i-CommitWidth]+1 > c {
			c = commit[i-CommitWidth] + 1
		}
		commit[i] = c

		if in.L2Miss {
			l2misses++
		}
		tally(&counts, in)
	}

	total := commit[n-1] + 1
	res := Result{
		Instructions:        n,
		Cycles:              total,
		CPI:                 float64(total) / float64(n),
		MispredictsPerInstr: float64(mispredicts) / float64(n),
		L2MissesPerInstr:    float64(l2misses) / float64(n),
	}
	if loads > 0 {
		res.ForwardedLoadFrac = float64(forwarded) / float64(loads)
	}
	var intCount, fpCount float64
	for _, in := range trace {
		if in.Op == OpFP {
			fpCount++
		} else {
			intCount++
		}
	}
	if intCount > 0 {
		res.IntQOccupancyMean = intOccSum / intCount
	}
	if fpCount > 0 {
		res.FPQOccupancyMean = fpOccSum / fpCount
	}
	for id := range counts {
		res.Activity[id] = counts[id] / float64(total)
	}
	return res, nil
}

// tally attributes one instruction's structure accesses.
func tally(counts *[floorplan.NumSubsystems]float64, in Instr) {
	// Front end: every instruction is fetched, predicted-over, decoded,
	// and renamed.
	counts[floorplan.Icache] += 1.0 / DispatchWidth // fetch-group granularity
	counts[floorplan.ITLB] += 1.0 / DispatchWidth
	counts[floorplan.Decode] += 1.0
	counts[floorplan.BranchPred] += 0.25 // fetch-group lookup
	isFP := in.Op == OpFP
	if isFP {
		counts[floorplan.FPMap] += 1.0
		counts[floorplan.FPQ] += 1.0
		counts[floorplan.FPReg] += 1.5 // operand reads + writeback
		counts[floorplan.FPUnit] += 1.0
	} else {
		counts[floorplan.IntMap] += 1.0
		counts[floorplan.IntQ] += 1.0
		counts[floorplan.IntReg] += 1.5
	}
	switch in.Op {
	case OpInt:
		counts[floorplan.IntALU] += 1.0
	case OpBranch:
		counts[floorplan.IntALU] += 1.0
		counts[floorplan.BranchPred] += 1.0
	case OpLoad, OpStore:
		counts[floorplan.LdStQ] += 1.0
		counts[floorplan.Dcache] += 1.0
		counts[floorplan.DTLB] += 1.0
	}
}

// fpQOccSumAdd accumulates the queue occupancy seen at a dispatch: the
// number of older entries (within the last capacity entries) that had not
// yet issued at the dispatch cycle.
func fpQOccSumAdd(sum *float64, issues []int64, cycle int64, capacity int) {
	lo := len(issues) - capacity
	if lo < 0 {
		lo = 0
	}
	occ := 0
	for k := len(issues) - 1; k >= lo; k-- {
		if issues[k] > cycle {
			occ++
		}
	}
	*sum += float64(occ)
}

// clampActivity keeps measured activities within the power model's sane
// range (an access factor above ~3/cycle would mean more than one access
// per issue slot).
func clampActivity(a float64) float64 { return math.Min(a, 3) }
