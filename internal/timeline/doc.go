// Package timeline is a discrete-event simulation of the §4.3.3
// controller system at work, reproducing the paper's Figure 6: it shows
// the EVAL control loop operating in time rather than in steady state.
//
// Application phases arrive with ~120 ms dwell times; the Sherwood-style
// BBV detector (internal/phase) classifies each interval; new phases
// trigger the measurement window, the controller routines (one fuzzy
// evaluation per subsystem, microseconds), the working-point transition
// (PLL relock, voltage ramps), and the retuning cycles of §4.3.3;
// recurring phases reuse their saved configuration instead of re-running
// the controller; the heat-sink sensor (internal/sensors) refreshes
// every few seconds and forces re-adaptation when its reading drifts.
//
// The simulation accounts for where the time goes — controller compute,
// actuation transitions, retune cycles, stable execution — which is the
// paper's argument that adapting at phase boundaries has negligible
// overhead (measured here at ~0.013% of execution; the paper says
// "minimal"). EXPERIMENTS.md records the Figure 6 numbers this package
// produces via examples/adaptive and BenchmarkTimeline.
package timeline
