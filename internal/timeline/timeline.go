package timeline

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/mathx"
	"repro/internal/phase"
	"repro/internal/pipeline"
	"repro/internal/sensors"
	"repro/internal/workload"
)

// EventKind classifies timeline events.
type EventKind int

const (
	// EventNewPhase: a never-seen phase; the full adaptation runs.
	EventNewPhase EventKind = iota
	// EventReusePhase: a recurring phase; the saved configuration loads.
	EventReusePhase
	// EventStablePhase: the interval continued the current phase.
	EventStablePhase
	// EventTHRefresh: the heat-sink sensor was re-read.
	EventTHRefresh
	NumEventKinds // sentinel
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventNewPhase:
		return "new-phase"
	case EventReusePhase:
		return "reuse-phase"
	case EventStablePhase:
		return "stable"
	case EventTHRefresh:
		return "th-refresh"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timeline entry.
type Event struct {
	TimeMS  float64
	Kind    EventKind
	PhaseID int
	// FCore is the relative frequency in force after the event.
	FCore float64
	// Outcome and RetuneSteps describe the adaptation (new phases only).
	Outcome     adapt.Outcome
	RetuneSteps int
	// OverheadUS is the execution time this event cost (controller run +
	// transition; measurement and retuning overlap execution).
	OverheadUS float64
	// SensedTHK is the heat-sink sensor's reading at TH-refresh events
	// (quantized and noisy, per §4.3.2).
	SensedTHK float64
}

// Summary aggregates a run.
type Summary struct {
	DurationMS      float64
	Intervals       int
	NewPhases       int
	ReusedPhases    int
	Violations      int
	TotalOverheadUS float64
	// OverheadFrac is total overhead over total time.
	OverheadFrac float64
	// MeanFCore is the time-weighted mean relative frequency.
	MeanFCore float64
	// StablePhaseFrac is the fraction of intervals spent in recognized
	// phases (the paper: stable phases cover 90-95% of execution).
	StablePhaseFrac float64
}

// Config controls a timeline run.
type Config struct {
	DurationMS float64
	Seed       int64
	// BBVNoise is the per-bucket measurement jitter amplitude.
	BBVNoise int
	// Threshold is the phase detector's distance threshold.
	Threshold float64
}

// DefaultConfig runs one second of execution.
func DefaultConfig() Config {
	return Config{
		DurationMS: 1000,
		Seed:       1,
		BBVNoise:   2,
		Threshold:  phase.DefaultThreshold,
	}
}

// Profiler supplies measured phase profiles (satisfied by core.Simulator).
type Profiler interface {
	Profile(app workload.App, ph workload.Phase) (pipeline.Profile, error)
}

// Run simulates the controller system over app's phases on the given core.
func Run(profiler Profiler, cpu *adapt.Core, app workload.App, solver adapt.Solver, cfg Config) ([]Event, Summary, error) {
	if cfg.DurationMS <= 0 {
		return nil, Summary{}, fmt.Errorf("timeline: duration %g must be positive", cfg.DurationMS)
	}
	det, err := phase.NewDetector(cfg.Threshold)
	if err != nil {
		return nil, Summary{}, err
	}
	rng := mathx.NewRNG(cfg.Seed)
	saved := adapt.NewPhaseTable(0)
	thSensor := sensors.NewTHSensor()
	lastTrueTH := cpu.Thermal.Params().THBaseK

	var events []Event
	var sum Summary
	sum.DurationMS = cfg.DurationMS
	var fTimeProduct float64
	curF := 0.0
	nextTHRefreshMS := phase.THRefreshS * 1000

	t := 0.0
	phIdx := rng.Intn(len(app.Phases))
	for t < cfg.DurationMS {
		// Dwell in the current phase for an exponential time around the
		// 120 ms mean, quantized to at least one detector interval.
		dwell := rng.Exponential(phase.MeanPhaseLengthMS)
		if dwell < 10 {
			dwell = 10
		}
		if t+dwell > cfg.DurationMS {
			dwell = cfg.DurationMS - t
		}
		ph := app.Phases[phIdx]
		bbv := phase.FromSignature(ph.Signature).Noisy(rng, cfg.BBVNoise)
		obs := det.Observe(bbv)
		ev := Event{TimeMS: t, PhaseID: obs.PhaseID}
		sum.Intervals++

		switch {
		case obs.New:
			prof, err := profiler.Profile(app, ph)
			if err != nil {
				return nil, Summary{}, err
			}
			res, err := cpu.AdaptSteady(prof, solver)
			if err != nil {
				return nil, Summary{}, err
			}
			saved.Save(obs.PhaseID, res.Point, res.Outcome)
			curF = res.Point.FCore
			if res.State.Core.THK > 0 {
				lastTrueTH = res.State.Core.THK
			}
			ev.Kind = EventNewPhase
			ev.Outcome = res.Outcome
			ev.RetuneSteps = res.Steps
			ev.OverheadUS = phase.ControllerUS + phase.TransitionUS
			sum.NewPhases++
			if res.Outcome == adapt.OutcomeError || res.Outcome == adapt.OutcomeTemp ||
				res.Outcome == adapt.OutcomePower {
				sum.Violations++
			}
		case obs.Changed:
			if pt, ok := saved.Lookup(obs.PhaseID); ok {
				curF = pt.FCore
			}
			ev.Kind = EventReusePhase
			ev.OverheadUS = phase.TransitionUS
			sum.ReusedPhases++
		default:
			ev.Kind = EventStablePhase
		}
		ev.FCore = curF
		sum.TotalOverheadUS += ev.OverheadUS
		fTimeProduct += curF * dwell
		events = append(events, ev)

		// Heat-sink sensor refreshes: the quantized, noisy reading the
		// controller would use until the next refresh (§4.3.2).
		for nextTHRefreshMS < t+dwell {
			reading := thSensor.Sample(nextTHRefreshMS/1000, lastTrueTH, rng)
			events = append(events, Event{
				TimeMS: nextTHRefreshMS, Kind: EventTHRefresh, PhaseID: obs.PhaseID,
				FCore: curF, SensedTHK: reading,
			})
			nextTHRefreshMS += phase.THRefreshS * 1000
		}

		t += dwell
		phIdx = rng.Intn(len(app.Phases))
	}

	sum.OverheadFrac = sum.TotalOverheadUS / (cfg.DurationMS * 1000)
	sum.MeanFCore = fTimeProduct / cfg.DurationMS
	if sum.Intervals > 0 {
		sum.StablePhaseFrac = 1 - float64(sum.NewPhases)/float64(sum.Intervals)
	}
	return events, sum, nil
}
