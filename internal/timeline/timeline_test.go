package timeline

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/workload"
)

func fixtures(t *testing.T) (*core.Simulator, *adapt.Core, workload.App) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.TraceLen = 20000
	sim, err := core.NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := sim.BuildCore(sim.Chip(3), core.TSASV)
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	return sim, cpu, app
}

func TestRunBasics(t *testing.T) {
	sim, cpu, app := fixtures(t)
	events, sum, err := Run(sim, cpu, app, adapt.Exhaustive{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if sum.Intervals == 0 || sum.NewPhases == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// Time must be nondecreasing.
	prev := -1.0
	for _, ev := range events {
		if ev.TimeMS < prev {
			t.Fatalf("events out of order at %v", ev.TimeMS)
		}
		prev = ev.TimeMS
	}
	// The adapted frequency must be set after the first adaptation.
	if events[0].Kind != EventNewPhase || events[0].FCore <= 0 {
		t.Errorf("first event should be an adaptation, got %+v", events[0])
	}
}

func TestRunOverheadNegligible(t *testing.T) {
	sim, cpu, app := fixtures(t)
	cfg := DefaultConfig()
	cfg.DurationMS = 2000
	_, sum, err := Run(sim, cpu, app, adapt.Exhaustive{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3.3: adapting at phase boundaries has minimal overhead.
	if sum.OverheadFrac > 0.002 {
		t.Errorf("adaptation overhead %.4f%% should be well under 0.2%%", sum.OverheadFrac*100)
	}
}

func TestRunReusesRecurringPhases(t *testing.T) {
	sim, cpu, app := fixtures(t)
	cfg := DefaultConfig()
	cfg.DurationMS = 3000 // long enough to revisit phases
	_, sum, err := Run(sim, cpu, app, adapt.Exhaustive{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An app has 3-5 phases; a 3 s run (~25 intervals) must revisit them.
	if sum.NewPhases > len(app.Phases)+1 {
		t.Errorf("%d new phases for an app with %d", sum.NewPhases, len(app.Phases))
	}
	if sum.ReusedPhases == 0 {
		t.Error("no phase reuse in a long run")
	}
	// Stable/recognized phases should dominate, echoing the paper's 90-95%.
	if sum.StablePhaseFrac < 0.7 {
		t.Errorf("stable-phase fraction %.2f too low", sum.StablePhaseFrac)
	}
}

func TestRunIncludesTHRefreshes(t *testing.T) {
	sim, cpu, app := fixtures(t)
	cfg := DefaultConfig()
	cfg.DurationMS = 6000 // > 2 refresh periods
	events, _, err := Run(sim, cpu, app, adapt.Exhaustive{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refreshes := 0
	for _, ev := range events {
		if ev.Kind == EventTHRefresh {
			refreshes++
		}
	}
	if refreshes < 2 {
		t.Errorf("expected >= 2 heat-sink refreshes in 6 s, got %d", refreshes)
	}
}

func TestRunDeterministic(t *testing.T) {
	sim, cpu, app := fixtures(t)
	evA, sumA, err := Run(sim, cpu, app, adapt.Exhaustive{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	evB, sumB, err := Run(sim, cpu, app, adapt.Exhaustive{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sumA != sumB || len(evA) != len(evB) {
		t.Error("timeline runs are not deterministic")
	}
}

func TestRunValidation(t *testing.T) {
	sim, cpu, app := fixtures(t)
	cfg := DefaultConfig()
	cfg.DurationMS = 0
	if _, _, err := Run(sim, cpu, app, adapt.Exhaustive{}, cfg); err == nil {
		t.Error("zero duration should error")
	}
	cfg = DefaultConfig()
	cfg.Threshold = 0
	if _, _, err := Run(sim, cpu, app, adapt.Exhaustive{}, cfg); err == nil {
		t.Error("invalid threshold should error")
	}
}

func TestEventKindString(t *testing.T) {
	names := map[EventKind]string{
		EventNewPhase: "new-phase", EventReusePhase: "reuse-phase",
		EventStablePhase: "stable", EventTHRefresh: "th-refresh",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestTHRefreshCarriesSensorReading(t *testing.T) {
	sim, cpu, app := fixtures(t)
	cfg := DefaultConfig()
	cfg.DurationMS = 6000
	events, _, err := Run(sim, cpu, app, adapt.Exhaustive{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cpu.Thermal.Params().THBaseK
	for _, ev := range events {
		if ev.Kind != EventTHRefresh {
			continue
		}
		// The reading must be a plausible heat-sink temperature near the
		// operating state (within sensor noise + quantization).
		if ev.SensedTHK < base-2 || ev.SensedTHK > base+40 {
			t.Errorf("sensed TH %v K implausible (base %v K)", ev.SensedTHK, base)
		}
		// Quantized to the sensor's 0.5 K step.
		steps := ev.SensedTHK / 0.5
		if diff := steps - float64(int64(steps+0.5)); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("sensed TH %v not on the 0.5 K grid", ev.SensedTHK)
		}
	}
}
