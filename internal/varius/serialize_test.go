package varius

import (
	"encoding/json"
	"testing"

	"repro/internal/grid"
)

func TestChipSerializationRoundTrip(t *testing.T) {
	gen, err := NewGenerator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	orig := gen.Chip(42)
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored ChipMaps
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Seed != orig.Seed ||
		restored.VtSigmaRan != orig.VtSigmaRan ||
		restored.LeffSigmaRan != orig.LeffSigmaRan ||
		restored.NoVariation != orig.NoVariation {
		t.Error("scalar fields differ after round trip")
	}
	if restored.VtSys.Grid != orig.VtSys.Grid {
		t.Error("grid geometry differs after round trip")
	}
	for i := range orig.VtSys.Values {
		if restored.VtSys.Values[i] != orig.VtSys.Values[i] ||
			restored.LeffSys.Values[i] != orig.LeffSys.Values[i] {
			t.Fatal("map values differ after round trip")
		}
	}
	// The restored chip must be usable: region statistics agree.
	p := gen.Params()
	region := grid.Rect{X0: 0, Y0: 0, X1: 0.25, Y1: 0.25}
	m1, x1, l1 := orig.RegionVtStats(region, p)
	m2, x2, l2 := restored.RegionVtStats(region, p)
	if m1 != m2 || x1 != x2 || l1 != l2 {
		t.Error("region statistics differ after round trip")
	}
}

func TestChipUnmarshalRejectsCorrupt(t *testing.T) {
	var c ChipMaps
	cases := []string{
		`not json`,
		`{"grid_w":0,"grid_h":4,"side":1}`,
		`{"grid_w":2,"grid_h":2,"side":1,"vt_sys":[1,2],"leff_sys":[1,2,3,4]}`,
		`{"grid_w":2,"grid_h":2,"side":1,"vt_sys":[1,2,3,4],"leff_sys":[1,2,3,4],"vt_sigma_ran":-1}`,
	}
	for i, blob := range cases {
		if err := json.Unmarshal([]byte(blob), &c); err == nil {
			t.Errorf("case %d: corrupt state accepted", i)
		}
	}
}
