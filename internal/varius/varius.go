// Package varius implements the within-die process-variation model the
// paper adopts from Sarangi et al. (the VARIUS model, §2.1), plus the
// device-physics relations (alpha-power gate delay, subthreshold leakage,
// and the Vt(T, Vdd, Vbb) coupling of Eq. 9) that the rest of the stack
// builds on.
//
// The model: the threshold voltage Vt and effective channel length Leff of
// every chip region deviate from nominal with a systematic component —
// a multivariate normal field over a die grid whose correlation depends
// only on distance and vanishes at the range phi — and a random component
// that acts per transistor and is carried analytically as a sigma.
package varius

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/mathx"
)

// Physical constants.
const (
	// QOverK is q/k in kelvin per volt: electron charge over Boltzmann
	// constant, the coefficient in the subthreshold leakage exponent.
	QOverK = 11604.5
	// CelsiusOffset converts Celsius to Kelvin.
	CelsiusOffset = 273.15
)

// Params configures the variation model and device physics. The defaults
// reproduce Figure 7(a) of the paper.
type Params struct {
	// VtMeanV is the nominal threshold voltage (V) at the reference
	// temperature TRefK. Figure 7(a): 150 mV at 100 C.
	VtMeanV float64
	// VtSigmaRatio is total sigma/mu for Vt. Figure 7(a): 0.09.
	VtSigmaRatio float64
	// SysFraction is the fraction of total Vt (and Leff) variance that is
	// systematic; the paper uses equal systematic and random contributions
	// (0.5), giving sigma_sys/mu = sigma_ran/mu = sqrt(sigma^2/2)/mu.
	SysFraction float64
	// LeffSigmaFactor scales Vt's sigma/mu to obtain Leff's.
	// Figure 7(a): 0.5, so Leff sigma/mu = 0.045.
	LeffSigmaFactor float64
	// Phi is the correlation range as a fraction of the full chip side.
	// Figure 7(a): 0.5.
	Phi float64
	// AlphaPower is the exponent of the alpha-power delay law (Eq. 1).
	AlphaPower float64
	// VddNomV is the nominal supply voltage (V).
	VddNomV float64
	// TRefK is the reference temperature (K) at which VtMeanV is defined.
	TRefK float64
	// TOpRefK is the operating temperature at which the nominal design
	// frequency is specified; delays and leakage are normalized to 1.0 at
	// (VtNomOp, VddNomV, TOpRefK). The nominal design corner is TMAX=85 C.
	TOpRefK float64
	// K1 couples Vt to temperature (V/K), K2 to Vdd (V/V), K3 to Vbb (V/V)
	// per Eq. 9 (values after Martin et al.). K1 < 0: hotter devices have
	// lower Vt; K2 < 0: higher Vdd lowers Vt (DIBL); K3 < 0: forward body
	// bias (positive Vbb) lowers Vt.
	K1, K2, K3 float64
	// MobilityExp is the exponent of mobility's temperature dependence
	// (mu ~ T^-MobilityExp); hotter devices are slower.
	MobilityExp float64
	// GridW, GridH discretize one core; CoreSide is the core's side as a
	// fraction of the full chip side (4-core CMP: 0.5).
	GridW, GridH int
	CoreSide     float64
	// D2DSigmaRatio adds a die-to-die component: each chip's whole Vt map
	// shifts by a normal draw with sigma = D2DSigmaRatio * VtMeanV (and
	// Leff analogously, scaled by LeffSigmaFactor). The paper evaluates
	// within-die variation only (0 by default); the VARIUS model it
	// builds on includes D2D, so it is exposed for ablations.
	D2DSigmaRatio float64
}

// DefaultParams returns the Figure 7(a) configuration.
func DefaultParams() Params {
	return Params{
		VtMeanV:         0.150,
		VtSigmaRatio:    0.09,
		SysFraction:     0.5,
		LeffSigmaFactor: 0.5,
		Phi:             0.5,
		AlphaPower:      1.3,
		VddNomV:         1.0,
		TRefK:           100 + CelsiusOffset,
		TOpRefK:         85 + CelsiusOffset,
		K1:              -2.5e-4,
		K2:              -0.05,
		K3:              -0.18,
		MobilityExp:     1.5,
		GridW:           16,
		GridH:           16,
		CoreSide:        0.5,
		D2DSigmaRatio:   0,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.VtMeanV <= 0 || p.VtMeanV >= p.VddNomV:
		return fmt.Errorf("varius: VtMeanV %g out of (0, Vdd)", p.VtMeanV)
	case p.VtSigmaRatio < 0 || p.VtSigmaRatio > 0.5:
		return fmt.Errorf("varius: VtSigmaRatio %g out of [0, 0.5]", p.VtSigmaRatio)
	case p.SysFraction < 0 || p.SysFraction > 1:
		return fmt.Errorf("varius: SysFraction %g out of [0, 1]", p.SysFraction)
	case p.Phi <= 0:
		return fmt.Errorf("varius: Phi %g must be positive", p.Phi)
	case p.AlphaPower <= 1:
		return fmt.Errorf("varius: AlphaPower %g must exceed 1", p.AlphaPower)
	case p.GridW <= 0 || p.GridH <= 0:
		return fmt.Errorf("varius: grid %dx%d invalid", p.GridW, p.GridH)
	case p.CoreSide <= 0 || p.CoreSide > 1:
		return fmt.Errorf("varius: CoreSide %g out of (0, 1]", p.CoreSide)
	case p.D2DSigmaRatio < 0 || p.D2DSigmaRatio > 0.3:
		return fmt.Errorf("varius: D2DSigmaRatio %g out of [0, 0.3]", p.D2DSigmaRatio)
	}
	return nil
}

// VtSigmaSys returns the systematic component's sigma for Vt in volts.
func (p Params) VtSigmaSys() float64 {
	return p.VtMeanV * p.VtSigmaRatio * math.Sqrt(p.SysFraction)
}

// VtSigmaRan returns the random component's per-transistor sigma for Vt in
// volts.
func (p Params) VtSigmaRan() float64 {
	return p.VtMeanV * p.VtSigmaRatio * math.Sqrt(1-p.SysFraction)
}

// LeffSigmaSys returns the systematic sigma for relative Leff (nominal 1.0).
func (p Params) LeffSigmaSys() float64 {
	return p.VtSigmaRatio * p.LeffSigmaFactor * math.Sqrt(p.SysFraction)
}

// LeffSigmaRan returns the random per-transistor sigma for relative Leff.
func (p Params) LeffSigmaRan() float64 {
	return p.VtSigmaRatio * p.LeffSigmaFactor * math.Sqrt(1-p.SysFraction)
}

// VtNomOp returns the nominal threshold voltage at the operating reference
// temperature TOpRefK (converted from its definition at TRefK via Eq. 9).
func (p Params) VtNomOp() float64 {
	return p.VtMeanV + p.K1*(p.TOpRefK-p.TRefK)
}

// VtAt applies Eq. 9: the threshold voltage of a device with tester-measured
// Vt0 (defined at TRefK, VddNomV, Vbb=0) when operated at temperature tK,
// supply vdd, and body bias vbb.
func (p Params) VtAt(vt0, tK, vdd, vbb float64) float64 {
	return vt0 + p.K1*(tK-p.TRefK) + p.K2*(vdd-p.VddNomV) + p.K3*vbb
}

// RelGateDelay evaluates the alpha-power delay law (Eq. 1) normalized so
// that a nominal device (vt = VtNomOp, leffRel = 1) at vdd = VddNomV and
// tK = TOpRefK has delay exactly 1.0. vt is the *operating* threshold
// voltage (already adjusted via VtAt).
func (p Params) RelGateDelay(vt, leffRel, vdd, tK float64) float64 {
	return p.RelGateDelayDerated(vt, leffRel, vdd, tK, 0)
}

// RelGateDelayDerated is RelGateDelay for circuits whose switching devices
// operate with reduced gate overdrive — SRAM cell reads, where the access
// path is driven by minimum-size cell transistors well below full
// overdrive. derate (V) is subtracted from the drive voltage of both the
// evaluated device and the normalization reference, so a nominal device
// still has delay 1.0 at the nominal operating point; what changes is the
// *sensitivity* to Vdd and Vt, which is what makes ASV disproportionately
// effective on memory structures.
func (p Params) RelGateDelayDerated(vt, leffRel, vdd, tK, derate float64) float64 {
	return p.DelayNormAt(vdd, tK, derate).RelGateDelay(vt, leffRel)
}

// DelayNorm holds the constants of the alpha-power delay law that depend
// only on the evaluation condition (vdd, tK, derate), not on the device
// (vt, leffRel). Curve builds evaluate thousands of devices at one
// condition; hoisting these out of the per-device loop removes a Pow and
// the normalization arithmetic per call with bit-identical results.
type DelayNorm struct {
	Vdd      float64 // supply the norm was built for (V)
	Derate   float64 // drive derate the norm was built for (V)
	VddRatio float64 // vdd / VddNomV
	NomDrive float64 // clamped nominal gate overdrive (V)
	Mobility float64 // (tK/TOpRefK)^-MobilityExp
	Alpha    float64 // AlphaPower
}

// DelayNormAt precomputes the per-condition delay constants; see DelayNorm.
func (p Params) DelayNormAt(vdd, tK, derate float64) DelayNorm {
	nomDrive := p.VddNomV - p.VtNomOp() - derate
	if nomDrive <= 0.02 {
		nomDrive = 0.02
	}
	return DelayNorm{
		Vdd:      vdd,
		Derate:   derate,
		VddRatio: vdd / p.VddNomV,
		NomDrive: nomDrive,
		Mobility: math.Pow(tK/p.TOpRefK, -p.MobilityExp),
		Alpha:    p.AlphaPower,
	}
}

// RelGateDelay evaluates the alpha-power delay law at the condition n was
// built for. Bit-identical to
// Params.RelGateDelayDerated(vt, leffRel, n.Vdd, tK, n.Derate) at the tK
// passed to DelayNormAt: the operations on (vt, leffRel) happen in the
// same order with the same intermediate values.
func (n DelayNorm) RelGateDelay(vt, leffRel float64) float64 {
	drive := n.Vdd - vt - n.Derate
	if drive <= 0.02 {
		// Device effectively cannot switch; return a huge but finite delay
		// so callers can treat the operating point as infeasible without
		// tripping over infinities.
		drive = 0.02
	}
	return n.VddRatio * leffRel *
		math.Pow(n.NomDrive/drive, n.Alpha) / n.Mobility
}

// LeakageFactor evaluates the subthreshold-leakage law (Eq. 2) normalized
// to 1.0 at the nominal operating point (VtNomOp, VddNomV, TOpRefK).
// vt is the operating threshold voltage.
func (p Params) LeakageFactor(vt, vdd, tK float64) float64 {
	return p.LeakageFactorRef(vt, vdd, tK, p.LeakageRef())
}

// LeakageRef returns the constant normalization denominator of Eq. 2 —
// the un-normalized leakage at the nominal operating point. It depends
// only on the process parameters, so hot loops (thermal fixed points
// evaluate Psta for every subsystem every iteration) cache it once and
// call LeakageFactorRef, halving the Exp calls with bit-identical
// results.
func (p Params) LeakageRef() float64 {
	return p.VddNomV * p.TOpRefK * p.TOpRefK *
		math.Exp(-QOverK*p.VtNomOp()/p.TOpRefK)
}

// LeakageFactorRef is LeakageFactor with the normalization denominator
// precomputed via LeakageRef; the division is kept (rather than a
// reciprocal multiply) so the result is bit-identical to LeakageFactor.
func (p Params) LeakageFactorRef(vt, vdd, tK, ref float64) float64 {
	cur := vdd * tK * tK * math.Exp(-QOverK*vt/tK)
	return cur / ref
}

// ChipMaps holds one chip's personalized variation maps: the systematic
// per-cell fields plus the analytic random sigmas.
type ChipMaps struct {
	// Seed identifies the chip.
	Seed int64
	// VtSys is the systematic Vt0 component per cell, in absolute volts at
	// the reference temperature (tester conditions).
	VtSys *grid.Field
	// LeffSys is the systematic relative Leff per cell (1.0 = nominal).
	LeffSys *grid.Field
	// VtSigmaRan and LeffSigmaRan are the per-transistor random sigmas.
	VtSigmaRan   float64
	LeffSigmaRan float64
	// NoVariation marks the idealized chip of the NoVar environment.
	NoVariation bool

	// regions is the generator's shared region-index cache (nil for chips
	// assembled by hand, which fall back to the uncached scan).
	regions *grid.RegionCache
}

// VtRegion returns the systematic Vt0 values of the cells under r, using
// the generator's precomputed region-index cache when available.
func (c *ChipMaps) VtRegion(r grid.Rect) []float64 {
	return c.regionValues(c.VtSys, r)
}

// LeffRegion returns the systematic relative Leff values under r.
func (c *ChipMaps) LeffRegion(r grid.Rect) []float64 {
	return c.regionValues(c.LeffSys, r)
}

func (c *ChipMaps) regionValues(f *grid.Field, r grid.Rect) []float64 {
	if c.regions == nil {
		return f.Region(r)
	}
	return f.ValuesAt(c.regions.Indices(f.Grid, r))
}

// Generator produces chips. It factors the grid correlation matrix once and
// reuses it for every chip, mirroring how the paper draws 100 chips from
// one (sigma, phi) configuration.
type Generator struct {
	params  Params
	fgen    *grid.FieldGenerator
	regions *grid.RegionCache
}

// NewGenerator validates p and prepares the correlated-field machinery.
func NewGenerator(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g, err := grid.New(p.GridW, p.GridH, p.CoreSide)
	if err != nil {
		return nil, err
	}
	fg, err := grid.NewFieldGenerator(g, grid.Spherical(p.Phi))
	if err != nil {
		return nil, err
	}
	return &Generator{params: p, fgen: fg, regions: grid.NewRegionCache(g)}, nil
}

// Params returns the generator's configuration.
func (g *Generator) Params() Params { return g.params }

// Grid returns the die grid chips are generated on.
func (g *Generator) Grid() grid.Grid { return g.fgen.Grid() }

// Chip generates the personalized variation maps for one chip,
// deterministically from the seed.
func (g *Generator) Chip(seed int64) *ChipMaps {
	p := g.params
	rng := mathx.NewRNG(seed)
	// Die-to-die component: one mean shift for the whole chip.
	var vtShift, leffShift float64
	if p.D2DSigmaRatio > 0 {
		d2d := rng.Split(3)
		vtShift = d2d.Normal(0, p.VtMeanV*p.D2DSigmaRatio)
		leffShift = d2d.Normal(0, p.D2DSigmaRatio*p.LeffSigmaFactor)
	}
	vt := g.fgen.Sample(rng.Split(1), p.VtMeanV+vtShift, p.VtSigmaSys())
	leff := g.fgen.Sample(rng.Split(2), 1.0+leffShift, p.LeffSigmaSys())
	// Clamp pathological draws: Vt must stay meaningfully below Vdd and
	// above ~0 for the device equations to stay physical.
	vt = vt.Map(func(v float64) float64 {
		return mathx.Clamp(v, 0.02, p.VddNomV*0.8)
	})
	leff = leff.Map(func(v float64) float64 {
		return mathx.Clamp(v, 0.5, 1.5)
	})
	return &ChipMaps{
		Seed:         seed,
		VtSys:        vt,
		LeffSys:      leff,
		VtSigmaRan:   p.VtSigmaRan(),
		LeffSigmaRan: p.LeffSigmaRan(),
		regions:      g.regions,
	}
}

// NoVarChip returns the idealized chip with no variation at all: uniform
// nominal Vt and Leff and zero random sigma (the NoVar environment of
// Table 1).
func (g *Generator) NoVarChip() *ChipMaps {
	p := g.params
	return &ChipMaps{
		Seed:        -1,
		VtSys:       grid.Uniform(g.fgen.Grid(), p.VtMeanV),
		LeffSys:     grid.Uniform(g.fgen.Grid(), 1.0),
		NoVariation: true,
		regions:     g.regions,
	}
}

// RegionVtStats summarizes the systematic Vt0 over a floorplan rectangle:
// the mean, the max (slowest device corner), and the leakage-effective Vt0
// (the Vt that reproduces the region's average leakage, i.e. a log-mean-exp,
// which is what a tester powering the subsystem alone would infer from the
// current it draws — §4.1).
func (c *ChipMaps) RegionVtStats(r grid.Rect, p Params) (mean, max, leakEff float64) {
	vals := c.VtRegion(r)
	mean = mathx.Mean(vals)
	max = mathx.Max(vals)
	// Leakage-effective Vt at tester temperature TRefK:
	// exp(-q vtEff / k T) = mean_i exp(-q vt_i / k T).
	s := 0.0
	for _, v := range vals {
		s += math.Exp(-QOverK * v / p.TRefK)
	}
	s /= float64(len(vals))
	leakEff = -math.Log(s) * p.TRefK / QOverK
	return mean, max, leakEff
}

// RegionLeffStats summarizes the systematic relative Leff over a rectangle.
func (c *ChipMaps) RegionLeffStats(r grid.Rect) (mean, max float64) {
	vals := c.LeffRegion(r)
	return mathx.Mean(vals), mathx.Max(vals)
}
