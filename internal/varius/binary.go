package varius

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/grid"
)

// chipBinVersion is the chip payload's binary format version,
// independent of the artifact kind version (decoders sniff the format).
const chipBinVersion = 1

// MarshalBinary serializes the chip maps in the artifact store's
// columnar form: the two systematic grids become contiguous
// little-endian float64 blocks instead of JSON number arrays. Exact
// bit-for-bit round-trip, like the JSON codec.
func (c *ChipMaps) MarshalBinary() ([]byte, error) {
	g := c.VtSys.Grid
	var e artifact.Enc
	e.B = make([]byte, 0, 64+16*len(c.VtSys.Values))
	e.Tag(chipBinVersion)
	e.Varint(c.Seed)
	e.Uvarint(uint64(g.W))
	e.Uvarint(uint64(g.H))
	e.F64(g.Side)
	e.F64s(c.VtSys.Values)
	e.F64s(c.LeffSys.Values)
	e.F64(c.VtSigmaRan)
	e.F64(c.LeffSigmaRan)
	e.Bool(c.NoVariation)
	return e.B, nil
}

// UnmarshalBinary restores chip maps from the binary form, validating
// the geometry exactly as the JSON decoder does.
func (c *ChipMaps) UnmarshalBinary(data []byte) error {
	d := artifact.NewDec(data)
	if v := d.Tag(); d.Err() == nil && v != chipBinVersion {
		return fmt.Errorf("varius: corrupt chip state: binary version %d", v)
	}
	seed := d.Varint()
	w := int(d.Uvarint())
	h := int(d.Uvarint())
	side := d.F64()
	vtSys := d.F64s(nil)
	leffSys := d.F64s(nil)
	vtSigma := d.F64()
	leffSigma := d.F64()
	noVar := d.Bool()
	if err := d.Done(); err != nil {
		return fmt.Errorf("varius: corrupt chip state: %w", err)
	}
	g, err := grid.New(w, h, side)
	if err != nil {
		return fmt.Errorf("varius: corrupt chip state: %w", err)
	}
	if len(vtSys) != g.N() || len(leffSys) != g.N() {
		return fmt.Errorf("varius: corrupt chip state: %d/%d values for a %d-cell grid",
			len(vtSys), len(leffSys), g.N())
	}
	if vtSigma < 0 || leffSigma < 0 {
		return fmt.Errorf("varius: corrupt chip state: negative random sigma")
	}
	c.Seed = seed
	c.VtSys = &grid.Field{Grid: g, Values: vtSys}
	c.LeffSys = &grid.Field{Grid: g, Values: leffSys}
	c.VtSigmaRan = vtSigma
	c.LeffSigmaRan = leffSigma
	c.NoVariation = noVar
	return nil
}
