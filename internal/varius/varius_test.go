package varius

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/mathx"
)

func defaultGen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.VtMeanV = 0 },
		func(p *Params) { p.VtMeanV = 2 },
		func(p *Params) { p.VtSigmaRatio = -0.1 },
		func(p *Params) { p.VtSigmaRatio = 0.6 },
		func(p *Params) { p.SysFraction = 1.5 },
		func(p *Params) { p.Phi = 0 },
		func(p *Params) { p.AlphaPower = 1 },
		func(p *Params) { p.GridW = 0 },
		func(p *Params) { p.CoreSide = 0 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSigmaDecomposition(t *testing.T) {
	p := DefaultParams()
	// Equal split: sigma_sys = sigma_ran = sqrt(sigma^2/2).
	wantEach := p.VtMeanV * p.VtSigmaRatio / math.Sqrt2
	if math.Abs(p.VtSigmaSys()-wantEach) > 1e-12 {
		t.Errorf("VtSigmaSys = %v, want %v", p.VtSigmaSys(), wantEach)
	}
	if math.Abs(p.VtSigmaRan()-wantEach) > 1e-12 {
		t.Errorf("VtSigmaRan = %v, want %v", p.VtSigmaRan(), wantEach)
	}
	// Paper: sigma_sys/mu = 0.064 for Vt.
	if r := p.VtSigmaSys() / p.VtMeanV; math.Abs(r-0.0636) > 0.001 {
		t.Errorf("VtSigmaSys/mu = %v, want ~0.064", r)
	}
	// Leff: sigma/mu = 0.045 total, 0.032 each component.
	if r := p.LeffSigmaSys(); math.Abs(r-0.0318) > 0.001 {
		t.Errorf("LeffSigmaSys = %v, want ~0.032", r)
	}
	total := math.Sqrt(p.VtSigmaSys()*p.VtSigmaSys() + p.VtSigmaRan()*p.VtSigmaRan())
	if math.Abs(total-p.VtMeanV*p.VtSigmaRatio) > 1e-12 {
		t.Errorf("components do not recompose total sigma: %v", total)
	}
}

func TestVtAtEquation9(t *testing.T) {
	p := DefaultParams()
	// At the reference point Vt equals Vt0.
	if v := p.VtAt(0.15, p.TRefK, p.VddNomV, 0); v != 0.15 {
		t.Errorf("VtAt(reference) = %v, want 0.15", v)
	}
	// Hotter => lower Vt (K1 < 0).
	if p.VtAt(0.15, p.TRefK+20, p.VddNomV, 0) >= 0.15 {
		t.Error("Vt should drop with temperature")
	}
	// Forward body bias (positive Vbb) => lower Vt (K3 < 0).
	if p.VtAt(0.15, p.TRefK, p.VddNomV, 0.4) >= 0.15 {
		t.Error("FBB should lower Vt")
	}
	// Reverse body bias => higher Vt.
	if p.VtAt(0.15, p.TRefK, p.VddNomV, -0.4) <= 0.15 {
		t.Error("RBB should raise Vt")
	}
	// Higher Vdd => lower Vt (DIBL, K2 < 0).
	if p.VtAt(0.15, p.TRefK, 1.2, 0) >= 0.15 {
		t.Error("higher Vdd should lower Vt")
	}
}

func TestRelGateDelayNormalization(t *testing.T) {
	p := DefaultParams()
	d := p.RelGateDelay(p.VtNomOp(), 1.0, p.VddNomV, p.TOpRefK)
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("nominal delay = %v, want 1.0", d)
	}
}

func TestRelGateDelayMonotonicities(t *testing.T) {
	p := DefaultParams()
	base := p.RelGateDelay(p.VtNomOp(), 1.0, p.VddNomV, p.TOpRefK)
	// Higher Vt => slower.
	if p.RelGateDelay(p.VtNomOp()+0.03, 1.0, p.VddNomV, p.TOpRefK) <= base {
		t.Error("higher Vt should increase delay")
	}
	// Longer channel => slower.
	if p.RelGateDelay(p.VtNomOp(), 1.05, p.VddNomV, p.TOpRefK) <= base {
		t.Error("longer Leff should increase delay")
	}
	// Higher Vdd => faster (the (Vdd - Vt)^alpha term dominates the Vdd
	// prefactor for alpha > 1).
	if p.RelGateDelay(p.VtNomOp(), 1.0, 1.1, p.TOpRefK) >= base {
		t.Error("higher Vdd should decrease delay")
	}
	// Hotter => slower (mobility degradation at fixed Vt).
	if p.RelGateDelay(p.VtNomOp(), 1.0, p.VddNomV, p.TOpRefK+20) <= base {
		t.Error("higher temperature should increase delay")
	}
	// Degenerate drive voltage stays finite.
	d := p.RelGateDelay(p.VddNomV, 1.0, p.VddNomV, p.TOpRefK)
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("degenerate drive produced %v", d)
	}
}

func TestRelGateDelayProperty(t *testing.T) {
	p := DefaultParams()
	f := func(vtRaw, vddRaw, tRaw uint8) bool {
		vt := 0.05 + float64(vtRaw)/255*0.3  // 0.05..0.35 V
		vdd := 0.8 + float64(vddRaw)/255*0.4 // 0.8..1.2 V
		tK := 300 + float64(tRaw)/255*80     // 300..380 K
		d := p.RelGateDelay(vt, 1.0, vdd, tK)
		return d > 0 && !math.IsNaN(d) && !math.IsInf(d, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeakageFactorNormalizationAndTrends(t *testing.T) {
	p := DefaultParams()
	base := p.LeakageFactor(p.VtNomOp(), p.VddNomV, p.TOpRefK)
	if math.Abs(base-1) > 1e-12 {
		t.Errorf("nominal leakage factor = %v, want 1.0", base)
	}
	// Lower Vt => exponentially more leakage.
	if p.LeakageFactor(p.VtNomOp()-0.05, p.VddNomV, p.TOpRefK) < 2 {
		t.Error("50 mV lower Vt should multiply leakage severalfold")
	}
	// Hotter => more leakage.
	if p.LeakageFactor(p.VtNomOp(), p.VddNomV, p.TOpRefK+20) <= 1 {
		t.Error("leakage should increase with temperature")
	}
	// Higher Vdd => more leakage.
	if p.LeakageFactor(p.VtNomOp(), 1.2, p.TOpRefK) <= 1 {
		t.Error("leakage should increase with Vdd")
	}
}

func TestChipDeterminism(t *testing.T) {
	g := defaultGen(t)
	a := g.Chip(77)
	b := g.Chip(77)
	for i := range a.VtSys.Values {
		if a.VtSys.Values[i] != b.VtSys.Values[i] {
			t.Fatal("same seed produced different Vt maps")
		}
		if a.LeffSys.Values[i] != b.LeffSys.Values[i] {
			t.Fatal("same seed produced different Leff maps")
		}
	}
	c := g.Chip(78)
	same := 0
	for i := range a.VtSys.Values {
		if a.VtSys.Values[i] == c.VtSys.Values[i] {
			same++
		}
	}
	if same > len(a.VtSys.Values)/10 {
		t.Error("different seeds produced nearly identical maps")
	}
}

func TestChipMapStatistics(t *testing.T) {
	g := defaultGen(t)
	p := g.Params()
	var all []float64
	for seed := int64(0); seed < 40; seed++ {
		c := g.Chip(seed)
		all = append(all, c.VtSys.Values...)
	}
	m := mathx.Mean(all)
	sd := mathx.StdDev(all)
	if math.Abs(m-p.VtMeanV) > 0.004 {
		t.Errorf("Vt map mean = %v, want ~%v", m, p.VtMeanV)
	}
	if math.Abs(sd-p.VtSigmaSys()) > 0.002 {
		t.Errorf("Vt map stddev = %v, want ~%v", sd, p.VtSigmaSys())
	}
}

func TestNoVarChip(t *testing.T) {
	g := defaultGen(t)
	c := g.NoVarChip()
	if !c.NoVariation {
		t.Error("NoVarChip should be flagged NoVariation")
	}
	p := g.Params()
	for i := range c.VtSys.Values {
		if c.VtSys.Values[i] != p.VtMeanV {
			t.Fatal("NoVar Vt map not uniform nominal")
		}
		if c.LeffSys.Values[i] != 1.0 {
			t.Fatal("NoVar Leff map not uniform 1.0")
		}
	}
	if c.VtSigmaRan != 0 {
		t.Error("NoVar chip should have zero random sigma")
	}
}

func TestRegionVtStats(t *testing.T) {
	g := defaultGen(t)
	c := g.Chip(5)
	r := grid.Rect{X0: 0, Y0: 0, X1: 0.25, Y1: 0.25}
	mean, max, leakEff := c.RegionVtStats(r, g.Params())
	if max < mean {
		t.Errorf("max %v < mean %v", max, mean)
	}
	// The leakage-effective Vt is dominated by the leakiest (lowest-Vt)
	// devices, so it must not exceed the mean.
	if leakEff > mean+1e-12 {
		t.Errorf("leakage-effective Vt %v exceeds mean %v", leakEff, mean)
	}
	vals := c.VtSys.Region(r)
	if leakEff < mathx.Min(vals)-1e-12 {
		t.Errorf("leakage-effective Vt %v below region minimum", leakEff)
	}
}

func TestRegionLeffStats(t *testing.T) {
	g := defaultGen(t)
	c := g.Chip(6)
	mean, max := c.RegionLeffStats(grid.Rect{X0: 0, Y0: 0, X1: 0.5, Y1: 0.5})
	if max < mean {
		t.Errorf("max %v < mean %v", max, mean)
	}
	if mean < 0.8 || mean > 1.2 {
		t.Errorf("region Leff mean %v implausible", mean)
	}
}

func TestSpatialCorrelationInChip(t *testing.T) {
	// Neighboring cells should have much closer Vt than far-apart cells,
	// averaged across chips.
	g := defaultGen(t)
	gr := g.Grid()
	var nearDiff, farDiff []float64
	for seed := int64(0); seed < 30; seed++ {
		c := g.Chip(seed)
		nearDiff = append(nearDiff, math.Abs(c.VtSys.At(0)-c.VtSys.At(1)))
		farDiff = append(farDiff, math.Abs(c.VtSys.At(0)-c.VtSys.At(gr.N()-1)))
	}
	if mathx.Mean(nearDiff) >= mathx.Mean(farDiff) {
		t.Errorf("near diff %v >= far diff %v: no spatial correlation",
			mathx.Mean(nearDiff), mathx.Mean(farDiff))
	}
}

func TestD2DComponentWidensSpread(t *testing.T) {
	base := DefaultParams()
	d2d := DefaultParams()
	d2d.D2DSigmaRatio = 0.06
	genBase, err := NewGenerator(base)
	if err != nil {
		t.Fatal(err)
	}
	genD2D, err := NewGenerator(d2d)
	if err != nil {
		t.Fatal(err)
	}
	// Per-chip mean Vt across chips: D2D must widen the spread of means.
	var meansBase, meansD2D []float64
	for seed := int64(0); seed < 25; seed++ {
		meansBase = append(meansBase, mathx.Mean(genBase.Chip(seed).VtSys.Values))
		meansD2D = append(meansD2D, mathx.Mean(genD2D.Chip(seed).VtSys.Values))
	}
	sdBase := mathx.StdDev(meansBase)
	sdD2D := mathx.StdDev(meansD2D)
	if sdD2D < sdBase*1.5 {
		t.Errorf("D2D spread %v not clearly wider than WID-only %v", sdD2D, sdBase)
	}
	// The default configuration has no D2D (the paper studies WID only).
	if base.D2DSigmaRatio != 0 {
		t.Error("default must be WID-only")
	}
}

func TestD2DValidation(t *testing.T) {
	p := DefaultParams()
	p.D2DSigmaRatio = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative D2D should be rejected")
	}
	p.D2DSigmaRatio = 0.5
	if err := p.Validate(); err == nil {
		t.Error("oversized D2D should be rejected")
	}
}
