package varius

import (
	"encoding/json"
	"fmt"

	"repro/internal/grid"
)

// chipState is the serialized form of a chip's variation maps — what a
// manufacturer's tester database would hold per die.
type chipState struct {
	Seed         int64     `json:"seed"`
	GridW        int       `json:"grid_w"`
	GridH        int       `json:"grid_h"`
	Side         float64   `json:"side"`
	VtSys        []float64 `json:"vt_sys"`
	LeffSys      []float64 `json:"leff_sys"`
	VtSigmaRan   float64   `json:"vt_sigma_ran"`
	LeffSigmaRan float64   `json:"leff_sigma_ran"`
	NoVariation  bool      `json:"no_variation"`
}

// MarshalJSON serializes the chip maps.
func (c *ChipMaps) MarshalJSON() ([]byte, error) {
	g := c.VtSys.Grid
	return json.Marshal(chipState{
		Seed:         c.Seed,
		GridW:        g.W,
		GridH:        g.H,
		Side:         g.Side,
		VtSys:        c.VtSys.Values,
		LeffSys:      c.LeffSys.Values,
		VtSigmaRan:   c.VtSigmaRan,
		LeffSigmaRan: c.LeffSigmaRan,
		NoVariation:  c.NoVariation,
	})
}

// UnmarshalJSON restores chip maps, validating the geometry.
func (c *ChipMaps) UnmarshalJSON(data []byte) error {
	var st chipState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	g, err := grid.New(st.GridW, st.GridH, st.Side)
	if err != nil {
		return fmt.Errorf("varius: corrupt chip state: %w", err)
	}
	if len(st.VtSys) != g.N() || len(st.LeffSys) != g.N() {
		return fmt.Errorf("varius: corrupt chip state: %d/%d values for a %d-cell grid",
			len(st.VtSys), len(st.LeffSys), g.N())
	}
	if st.VtSigmaRan < 0 || st.LeffSigmaRan < 0 {
		return fmt.Errorf("varius: corrupt chip state: negative random sigma")
	}
	c.Seed = st.Seed
	c.VtSys = &grid.Field{Grid: g, Values: st.VtSys}
	c.LeffSys = &grid.Field{Grid: g, Values: st.LeffSys}
	c.VtSigmaRan = st.VtSigmaRan
	c.LeffSigmaRan = st.LeffSigmaRan
	c.NoVariation = st.NoVariation
	return nil
}
