// Package phase implements the hardware application phase detector of
// §4.3.2-4.3.3, after Sherwood et al.: basic-block execution frequencies
// are accumulated into a compact basic-block vector (BBV) of 32 buckets
// with 6-bit saturating counters; intervals whose vectors are close form a
// stable phase, and a table of past phase signatures lets the controller
// reuse a saved configuration when a phase recurs.
package phase

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Detector geometry (Figure 7(a)).
const (
	Buckets       = 32
	BitsPerBucket = 6
	maxCount      = 1<<BitsPerBucket - 1 // 63
)

// BBV is a basic-block vector: 32 buckets of 6-bit saturating counts.
type BBV [Buckets]uint8

// FromSignature expands a workload phase signature into its BBV — the
// deterministic stand-in for accumulating real basic-block frequencies
// during an interval.
func FromSignature(sig uint64) BBV {
	var b BBV
	z := sig
	for i := 0; i < Buckets; i++ {
		// SplitMix64 stream over the signature.
		z += 0x9E3779B97F4A7C15
		x := z
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		x ^= x >> 31
		b[i] = uint8(x % (maxCount + 1))
	}
	return b
}

// Noisy returns a copy of the BBV with bounded per-bucket sampling noise,
// modeling interval-to-interval measurement jitter within one phase.
func (b BBV) Noisy(rng *mathx.RNG, amplitude int) BBV {
	out := b
	if amplitude <= 0 {
		return out
	}
	for i := range out {
		d := rng.Intn(2*amplitude+1) - amplitude
		v := int(out[i]) + d
		if v < 0 {
			v = 0
		}
		if v > maxCount {
			v = maxCount
		}
		out[i] = uint8(v)
	}
	return out
}

// Distance returns the normalized Manhattan distance between two BBVs,
// in [0, 1].
func Distance(a, b BBV) float64 {
	sum := 0.0
	for i := range a {
		sum += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return sum / (Buckets * maxCount)
}

// Detector recognizes recurring phases by BBV proximity.
type Detector struct {
	threshold float64
	table     []BBV // phase ID -> representative vector
	current   int
}

// NewDetector returns a detector; threshold is the normalized BBV distance
// below which two intervals belong to the same phase.
func NewDetector(threshold float64) (*Detector, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("phase: threshold %g out of (0, 1)", threshold)
	}
	return &Detector{threshold: threshold, current: -1}, nil
}

// DefaultThreshold matches the stability criterion that yields ~120 ms
// stable phases covering 90-95% of SPEC execution (§5, after Isci et al.).
const DefaultThreshold = 0.10

// Observation is the detector's verdict on one interval.
type Observation struct {
	// PhaseID identifies the matched or newly created phase.
	PhaseID int
	// New is true when the interval started a never-seen phase (the
	// controller must run its algorithm).
	New bool
	// Changed is true when the phase differs from the previous interval
	// (the processor is interrupted; a saved configuration may be reused).
	Changed bool
}

// Observe classifies one interval's BBV.
func (d *Detector) Observe(b BBV) Observation {
	bestID, bestDist := -1, math.Inf(1)
	for id, ref := range d.table {
		if dist := Distance(b, ref); dist < bestDist {
			bestID, bestDist = id, dist
		}
	}
	if bestID >= 0 && bestDist <= d.threshold {
		obs := Observation{PhaseID: bestID, Changed: bestID != d.current}
		d.current = bestID
		return obs
	}
	id := len(d.table)
	d.table = append(d.table, b)
	obs := Observation{PhaseID: id, New: true, Changed: true}
	d.current = id
	return obs
}

// Phases returns how many distinct phases have been seen.
func (d *Detector) Phases() int { return len(d.table) }

// Current returns the current phase ID (-1 before any observation).
func (d *Detector) Current() int { return d.current }

// Timeline constants of Figure 6 (§4.3.3).
const (
	// MeanPhaseLengthMS: the phase detector fires on average every 120 ms.
	MeanPhaseLengthMS = 120.0
	// MeasureUS: counters estimate alpha_f and the two queue-size CPIs.
	MeasureUS = 20.0
	// ControllerUS: the fuzzy-controller routines occupy the CPU.
	ControllerUS = 6.0
	// TransitionUS: settling to the chosen f/Vdd/Vbb working point.
	TransitionUS = 10.0
	// RetuneStepMS: a thermal/power violation is sensed within a thermal
	// time constant.
	RetuneStepMS = 2.0
	// THRefreshS: the heat-sink sensor refresh period.
	THRefreshS = 2.5
)

// AdaptationOverheadFraction returns the fraction of execution time lost to
// the controller and the working-point transition per average phase — the
// paper's argument that adapting at phase boundaries has minimal overhead.
// (Measurement and retuning overlap execution and cost nothing directly.)
func AdaptationOverheadFraction() float64 {
	lostUS := ControllerUS + TransitionUS
	return lostUS / (MeanPhaseLengthMS * 1000)
}
