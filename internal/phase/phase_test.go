package phase

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestFromSignatureDeterministic(t *testing.T) {
	a := FromSignature(12345)
	b := FromSignature(12345)
	if a != b {
		t.Fatal("same signature gave different BBVs")
	}
	c := FromSignature(12346)
	if a == c {
		t.Fatal("different signatures gave identical BBVs")
	}
}

func TestBBVWithinCounterRange(t *testing.T) {
	f := func(sig uint64) bool {
		b := FromSignature(sig)
		for _, v := range b {
			if v > maxCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceProperties(t *testing.T) {
	a := FromSignature(1)
	b := FromSignature(2)
	if Distance(a, a) != 0 {
		t.Error("self-distance should be 0")
	}
	if Distance(a, b) != Distance(b, a) {
		t.Error("distance should be symmetric")
	}
	if d := Distance(a, b); d <= 0 || d > 1 {
		t.Errorf("distance %v out of (0, 1]", d)
	}
	// Extremes: all-zero vs all-max is exactly 1.
	var zero, full BBV
	for i := range full {
		full[i] = maxCount
	}
	if Distance(zero, full) != 1 {
		t.Errorf("max distance = %v, want 1", Distance(zero, full))
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(0); err == nil {
		t.Error("zero threshold should be rejected")
	}
	if _, err := NewDetector(1); err == nil {
		t.Error("unit threshold should be rejected")
	}
	if _, err := NewDetector(DefaultThreshold); err != nil {
		t.Error(err)
	}
}

func TestDetectorRecognizesRecurringPhases(t *testing.T) {
	d, err := NewDetector(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sigA := FromSignature(100)
	sigB := FromSignature(200)

	obs := d.Observe(sigA)
	if !obs.New || !obs.Changed || obs.PhaseID != 0 {
		t.Errorf("first observation = %+v", obs)
	}
	obs = d.Observe(sigA)
	if obs.New || obs.Changed {
		t.Errorf("repeat observation = %+v", obs)
	}
	obs = d.Observe(sigB)
	if !obs.New || !obs.Changed || obs.PhaseID != 1 {
		t.Errorf("new phase observation = %+v", obs)
	}
	// Returning to a previously seen phase is Changed but not New: the
	// saved configuration can be reused (§4.3.3).
	obs = d.Observe(sigA)
	if obs.New || !obs.Changed || obs.PhaseID != 0 {
		t.Errorf("recurrence observation = %+v", obs)
	}
	if d.Phases() != 2 {
		t.Errorf("detector tracked %d phases, want 2", d.Phases())
	}
	if d.Current() != 0 {
		t.Errorf("current phase = %d, want 0", d.Current())
	}
}

func TestDetectorToleratesNoise(t *testing.T) {
	d, err := NewDetector(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(5)
	base := FromSignature(42)
	d.Observe(base)
	misclassified := 0
	for i := 0; i < 100; i++ {
		obs := d.Observe(base.Noisy(rng, 2))
		if obs.New {
			misclassified++
		}
	}
	if misclassified > 2 {
		t.Errorf("%d/100 noisy intervals misclassified as new phases", misclassified)
	}
}

func TestDetectorInitialState(t *testing.T) {
	d, err := NewDetector(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if d.Current() != -1 || d.Phases() != 0 {
		t.Error("fresh detector should have no phases")
	}
}

func TestNoisyBounds(t *testing.T) {
	rng := mathx.NewRNG(6)
	var zero BBV
	n := zero.Noisy(rng, 5)
	for _, v := range n {
		if v > maxCount {
			t.Fatal("noise escaped counter range")
		}
	}
	if zero.Noisy(rng, 0) != zero {
		t.Error("zero-amplitude noise should be identity")
	}
}

func TestAdaptationOverheadSmall(t *testing.T) {
	// The paper: 6 us controller + <=10 us transition per ~120 ms phase —
	// a negligible fraction.
	got := AdaptationOverheadFraction()
	want := 16.0 / 120000.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("overhead = %v, want %v", got, want)
	}
	if got > 0.001 {
		t.Errorf("overhead %v should be well under 0.1%%", got)
	}
}

func TestTimelineConstantsMatchFigure6(t *testing.T) {
	if MeanPhaseLengthMS != 120 || MeasureUS != 20 || ControllerUS != 6 ||
		TransitionUS != 10 || RetuneStepMS != 2 {
		t.Error("timeline constants do not match Figure 6")
	}
	if Buckets != 32 || BitsPerBucket != 6 {
		t.Error("detector geometry does not match Figure 7(a)")
	}
}
