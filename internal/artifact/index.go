package artifact

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// indexMagic opens the persistent index file.
var indexMagic = [4]byte{'E', 'V', 'I', '2'}

// indexName is the index file's name inside the store directory.
const indexName = "index.bin"

// idxEntry locates one live artifact inside the packfiles.
type idxEntry struct {
	kind  string
	shard int
	off   int64
	size  int64 // framed record length
	atime int64 // unix nanoseconds of last use, the LRU clock
}

// fkeyOf is the index map key: the kind-qualified hex entry key (two
// kinds may in principle collide on a key; qualifying keeps them apart,
// matching v1's per-kind directories).
func fkeyOf(kind, key string) string {
	return kind + "/" + key
}

// encodeIndex serializes the index:
//
//	magic[4] | uvarint schema | uvarint nShards, per-shard covered length |
//	uvarint nKinds, kind strings | uvarint nEntries, entries | crc32c[4]
//
// Each entry is (kind ref, raw key, shard, offset, size, atime). Entries
// are sorted by (kind, key) so identical stores serialize identically.
// The covered lengths record how much of each packfile the index
// describes: bytes beyond them are records appended after the last save,
// recovered by Open's tail scan.
func encodeIndex(index map[string]idxEntry, covered [numShards]int64) []byte {
	type flat struct {
		key string
		e   idxEntry
	}
	flats := make([]flat, 0, len(index))
	kindIdx := map[string]int{}
	var kinds []string
	for _, e := range index {
		if _, ok := kindIdx[e.kind]; !ok {
			kindIdx[e.kind] = 0
			kinds = append(kinds, e.kind)
		}
	}
	sort.Strings(kinds)
	for i, k := range kinds {
		kindIdx[k] = i
	}
	for fkey, e := range index {
		flats = append(flats, flat{key: fkey[len(e.kind)+1:], e: e})
	}
	sort.Slice(flats, func(i, j int) bool {
		if flats[i].e.kind != flats[j].e.kind {
			return flats[i].e.kind < flats[j].e.kind
		}
		return flats[i].key < flats[j].key
	})

	var e Enc
	e.B = append(e.B, indexMagic[:]...)
	e.Uvarint(SchemaVersion)
	e.Uvarint(numShards)
	for _, c := range covered {
		e.Uvarint(uint64(c))
	}
	e.Uvarint(uint64(len(kinds)))
	for _, k := range kinds {
		e.String(k)
	}
	e.Uvarint(uint64(len(flats)))
	for _, f := range flats {
		raw, err := hex.DecodeString(f.key)
		if err != nil || len(raw) != rawKeyLen {
			continue // unrepresentable key; drop rather than corrupt the file
		}
		e.Uvarint(uint64(kindIdx[f.e.kind]))
		e.B = append(e.B, raw...)
		e.Uvarint(uint64(f.e.shard))
		e.Uvarint(uint64(f.e.off))
		e.Uvarint(uint64(f.e.size))
		e.Uvarint(uint64(f.e.atime))
	}
	sum := crc32.Checksum(e.B, castagnoli)
	e.B = binary.LittleEndian.AppendUint32(e.B, sum)
	return e.B
}

var errBadIndex = errors.New("artifact: corrupt index file")

// decodeIndex parses an index file. Any damage — bad magic, wrong
// schema, short body, checksum mismatch — returns an error and the
// caller falls back to a full packfile scan.
func decodeIndex(blob []byte) (map[string]idxEntry, [numShards]int64, error) {
	var covered [numShards]int64
	if len(blob) < len(indexMagic)+4 {
		return nil, covered, errBadIndex
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, covered, errBadIndex
	}
	if string(body[:4]) != string(indexMagic[:]) {
		return nil, covered, errBadIndex
	}
	d := NewDec(body[4:])
	if d.Uvarint() != SchemaVersion {
		return nil, covered, errBadIndex
	}
	if d.Uvarint() != numShards {
		return nil, covered, errBadIndex
	}
	for i := range covered {
		covered[i] = int64(d.Uvarint())
	}
	nKinds := d.Uvarint()
	if d.Err() != nil || nKinds > 1<<16 {
		return nil, covered, errBadIndex
	}
	kinds := make([]string, nKinds)
	for i := range kinds {
		kinds[i] = d.String()
	}
	n := d.Uvarint()
	if d.Err() != nil || n > 1<<28 {
		return nil, covered, errBadIndex
	}
	index := make(map[string]idxEntry, n)
	for i := uint64(0); i < n; i++ {
		ki := d.Uvarint()
		var raw [rawKeyLen]byte
		for b := range raw {
			raw[b] = d.U8()
		}
		sh := d.Uvarint()
		off := d.Uvarint()
		size := d.Uvarint()
		at := d.Uvarint()
		if d.Err() != nil || ki >= nKinds || sh >= numShards {
			return nil, covered, errBadIndex
		}
		key := hex.EncodeToString(raw[:])
		index[fkeyOf(kinds[ki], key)] = idxEntry{
			kind: kinds[ki], shard: int(sh), off: int64(off), size: int64(size), atime: int64(at),
		}
	}
	if d.Err() != nil {
		return nil, covered, errBadIndex
	}
	return index, covered, nil
}

// scanShard walks shard si's packfile from offset start, indexing every
// valid record (a later record of the same key supersedes an earlier
// one, matching append order) and returning the offset of the first
// invalid byte — the segment's valid length. garbage accumulates the
// bytes of superseded records seen during the scan.
func scanShard(dir string, si int, start int64, index map[string]idxEntry, atime int64) (valid int64, garbage int64) {
	path := packPath(dir, si)
	blob, err := os.ReadFile(path)
	if err != nil {
		return start, 0
	}
	off := start
	for off < int64(len(blob)) {
		rec, ok := parseRecord(blob[off:])
		if !ok {
			break
		}
		fkey := fkeyOf(rec.kind, rec.key)
		if old, exists := index[fkey]; exists && old.shard == si {
			garbage += old.size
		}
		index[fkey] = idxEntry{kind: rec.kind, shard: si, off: off, size: rec.size, atime: atime}
		off += rec.size
	}
	return off, garbage
}

// loadIndex restores the store's index at Open: the saved index file
// when intact, a full packfile scan otherwise, plus a tail scan of every
// segment for records appended after the last save. Segments shorter
// than their covered length (externally truncated or replaced) are
// rescanned from zero — the index/segment mismatch rebuild. Returns the
// index, the per-shard valid lengths, per-shard garbage byte counts
// (superseded records discovered while scanning), and whether the saved
// index had to be discarded.
func loadIndex(dir string, atime int64) (index map[string]idxEntry, sizes, garbage [numShards]int64, rebuilt bool) {
	index = map[string]idxEntry{}
	var covered [numShards]int64
	blob, err := os.ReadFile(filepath.Join(dir, indexName))
	if err == nil {
		if idx, cov, derr := decodeIndex(blob); derr == nil {
			index, covered = idx, cov
		} else {
			rebuilt = true
		}
	}
	for si := 0; si < numShards; si++ {
		info, err := os.Stat(packPath(dir, si))
		fileSize := int64(0)
		if err == nil {
			fileSize = info.Size()
		}
		if fileSize < covered[si] {
			// The segment is shorter than the index believes: it was
			// truncated or swapped behind our back. Drop every entry that
			// points into it and rebuild the shard from a full scan.
			for fkey, e := range index {
				if e.shard == si {
					delete(index, fkey)
				}
			}
			covered[si] = 0
			rebuilt = true
		}
		valid, g := scanShard(dir, si, covered[si], index, atime)
		sizes[si] = valid
		garbage[si] += g
		if valid < fileSize {
			// Truncated-tail recovery: drop the partial record so future
			// appends land after valid bytes only.
			_ = os.Truncate(packPath(dir, si), valid)
		}
	}
	// Entries must lie inside their segment; anything else is stale.
	for fkey, e := range index {
		if e.off+e.size > sizes[e.shard] {
			delete(index, fkey)
			rebuilt = true
		}
	}
	return index, sizes, garbage, rebuilt
}
