package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// BinaryTag is the first byte of every binary artifact payload. JSON
// payloads begin with '{', so one byte distinguishes the two formats and
// payload decoders accept both: v1 entries migrated into packfiles keep
// their JSON bytes and decode through the legacy path, while fresh builds
// write the columnar binary form. 0xB2 is not valid UTF-8 leading a JSON
// document, so the sniff cannot misfire.
const BinaryTag = 0xB2

// Enc is an append-only binary encoder for artifact payloads: varints for
// the small integers, raw little-endian words for float64 values so dense
// numeric columns round-trip bit-for-bit with no number formatting or
// parsing. The zero value is ready to use; B holds the encoded bytes.
type Enc struct {
	B []byte
}

// Tag begins a binary payload: the BinaryTag byte followed by a
// kind-specific format version.
func (e *Enc) Tag(version int) {
	e.B = append(e.B, BinaryTag)
	e.Uvarint(uint64(version))
}

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) {
	e.B = binary.AppendUvarint(e.B, v)
}

// Varint appends a signed (zig-zag) varint.
func (e *Enc) Varint(v int64) {
	e.B = binary.AppendVarint(e.B, v)
}

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.B = append(e.B, b)
}

// U8 appends one raw byte.
func (e *Enc) U8(v byte) {
	e.B = append(e.B, v)
}

// F64 appends one float64 as its IEEE-754 bits, little-endian.
func (e *Enc) F64(v float64) {
	e.B = binary.LittleEndian.AppendUint64(e.B, math.Float64bits(v))
}

// F64s appends a length-prefixed float64 column as one contiguous
// little-endian block — the columnar encoding for chip grids, controller
// weight matrices, and PE tables.
func (e *Enc) F64s(v []float64) {
	e.Uvarint(uint64(len(v)))
	off := len(e.B)
	e.B = append(e.B, make([]byte, 8*len(v))...)
	for i, f := range v {
		binary.LittleEndian.PutUint64(e.B[off+8*i:], math.Float64bits(f))
	}
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.B = append(e.B, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.B = append(e.B, b...)
}

// errCorrupt is the generic decoder failure; callers wrap it with their
// payload kind for context.
var errCorrupt = errors.New("truncated or corrupt binary payload")

// Dec decodes what Enc encodes. The first failed read poisons the
// decoder: every later read returns zero values and Err reports the
// failure, so codecs can decode a whole struct and check once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec {
	return &Dec{b: data}
}

// Tag consumes the BinaryTag byte and returns the payload's format
// version, failing if the data does not start a binary payload.
func (d *Dec) Tag() int {
	if d.err == nil && (d.off >= len(d.b) || d.b[d.off] != BinaryTag) {
		d.err = errCorrupt
	}
	if d.err != nil {
		return 0
	}
	d.off++
	return int(d.Uvarint())
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = errCorrupt
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = errCorrupt
		return 0
	}
	d.off += n
	return v
}

// Bool reads one byte as a bool.
func (d *Dec) Bool() bool {
	return d.U8() != 0
}

// U8 reads one raw byte.
func (d *Dec) U8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.err = errCorrupt
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// F64 reads one little-endian float64.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.err = errCorrupt
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// F64s reads a length-prefixed float64 column into dst (grown as needed,
// reused when its capacity suffices — decode scratch comes from the
// caller, typically a sync.Pool).
func (d *Dec) F64s(dst []float64) []float64 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if d.off+8*int(n) > len(d.b) || int(n) < 0 {
		d.err = errCorrupt
		return nil
	}
	if cap(dst) < int(n) {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off+8*i:]))
	}
	d.off += 8 * int(n)
	return dst
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	b := d.Bytes()
	return string(b)
}

// Bytes reads a length-prefixed byte slice, aliasing the decoder's
// backing array (copy before retaining past the decode).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if d.off+int(n) > len(d.b) || int(n) < 0 {
		d.err = errCorrupt
		return nil
	}
	b := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Err reports the first decode failure, nil if every read succeeded.
func (d *Dec) Err() error {
	return d.err
}

// Done is Err plus a trailing-garbage check: a payload that decodes but
// leaves unconsumed bytes is corrupt (or from a newer producer).
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("binary payload has %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// IsBinary reports whether payload carries the binary tag — the format
// sniff payload codecs use to accept both migrated v1 JSON and v2
// columnar bytes.
func IsBinary(payload []byte) bool {
	return len(payload) > 0 && payload[0] == BinaryTag
}
