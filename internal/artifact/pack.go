package artifact

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// numShards is the packfile count. Writes stripe by the key's leading
// byte, so concurrent SyncWrites writers contend on different files and
// compaction rewrites 1/numShards of the store at a time.
const numShards = 8

// recordMagic opens every pack record; a scan that does not find it at an
// expected offset has hit a truncated tail or foreign bytes.
var recordMagic = [4]byte{'E', 'V', 'R', '2'}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64) —
// the per-record checksum. SHA-256 guarded v1's payloads; a packfile
// record only needs corruption detection, not collision resistance, and
// CRC-32C is an order of magnitude cheaper on the warm path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// rawKeyLen is the decoded length of the hex entry keys (SHA-256).
const rawKeyLen = 32

// shardOf maps a hex key to its packfile stripe.
func shardOf(key string) int {
	if len(key) == 0 {
		return 0
	}
	const hexDigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		if key[0] == hexDigits[i] {
			return i % numShards
		}
	}
	return int(key[0]) % numShards
}

// appendRecord frames one (kind, key, payload) record onto buf:
//
//	magic[4] | uvarint kindLen, kind | rawKey[32] | uvarint payloadLen, payload | crc32c[4]
//
// The CRC covers everything before it. Keys are stored decoded (32 raw
// bytes, not 64 hex digits).
func appendRecord(buf []byte, kind string, key string, payload []byte) ([]byte, error) {
	raw, err := hex.DecodeString(key)
	if err != nil || len(raw) != rawKeyLen {
		return buf, fmt.Errorf("artifact: key %q is not sha256 hex", key)
	}
	start := len(buf)
	buf = append(buf, recordMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(kind)))
	buf = append(buf, kind...)
	buf = append(buf, raw...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[start:], castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	return buf, nil
}

// record is one parsed pack record.
type record struct {
	kind    string
	key     string // hex
	payload []byte // aliases the scanned buffer
	size    int64  // framed length including magic and crc
}

// parseRecord decodes the record at the head of data. A short buffer,
// bad magic, or checksum mismatch returns ok=false — at a segment tail
// that means "truncated here", mid-file it means corruption.
func parseRecord(data []byte) (rec record, ok bool) {
	if len(data) < len(recordMagic) || string(data[:4]) != string(recordMagic[:]) {
		return rec, false
	}
	off := len(recordMagic)
	kindLen, n := binary.Uvarint(data[off:])
	if n <= 0 || kindLen > 256 {
		return rec, false
	}
	off += n
	if off+int(kindLen)+rawKeyLen > len(data) {
		return rec, false
	}
	kind := string(data[off : off+int(kindLen)])
	off += int(kindLen)
	rawKey := data[off : off+rawKeyLen]
	off += rawKeyLen
	payLen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return rec, false
	}
	off += n
	if int(payLen) < 0 || off+int(payLen)+4 > len(data) {
		return rec, false
	}
	payload := data[off : off+int(payLen)]
	off += int(payLen)
	want := binary.LittleEndian.Uint32(data[off:])
	if crc32.Checksum(data[:off], castagnoli) != want {
		return rec, false
	}
	return record{
		kind:    kind,
		key:     hex.EncodeToString(rawKey),
		payload: payload,
		size:    int64(off) + 4,
	}, true
}

// shard is one packfile stripe: its append handle and size under the
// stripe lock, plus a read handle opened lazily. Reads go through pread
// (ReadAt), so they never take the stripe lock and never seek under a
// concurrent reader.
type shard struct {
	mu   sync.Mutex
	w    *os.File // append handle, opened on first write
	size int64    // current file size (logical end of valid records)

	rmu sync.Mutex
	r   *os.File // pread handle, opened on first read
	// retired holds superseded read handles (after compaction) until
	// Close: an in-flight pread may still be using one, and a handful of
	// idle descriptors per process is cheaper than racing it.
	retired []*os.File
}

// packPath returns shard si's packfile path.
func packPath(dir string, si int) string {
	return filepath.Join(dir, fmt.Sprintf("pack-%02d.bin", si))
}

// append writes blob at the shard's tail and returns its offset. Caller
// composed blob with appendRecord. The stripe lock serializes appends;
// the file is opened O_APPEND so even a crashed half-append only ever
// damages the tail.
func (sh *shard) append(path string, blob []byte) (off int64, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.w == nil {
		sh.w, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 0, err
		}
	}
	off = sh.size
	if _, err := sh.w.Write(blob); err != nil {
		// The tail may now hold a partial record; readers are offset-based
		// and unaffected, and the next Open's tail scan drops the debris.
		return 0, err
	}
	sh.size += int64(len(blob))
	return off, nil
}

// readAt preads length bytes at off into buf (grown as needed) and
// returns the filled slice.
func (sh *shard) readAt(path string, buf []byte, off, length int64) ([]byte, error) {
	sh.rmu.Lock()
	if sh.r == nil {
		f, err := os.Open(path)
		if err != nil {
			sh.rmu.Unlock()
			return nil, err
		}
		sh.r = f
	}
	f := sh.r
	sh.rmu.Unlock()
	if int64(cap(buf)) < length {
		buf = make([]byte, length)
	} else {
		buf = buf[:length]
	}
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// swapReadHandle retires the current pread handle after a compaction
// renamed a fresh file into place: later reads reopen the new inode,
// while in-flight reads keep the old descriptor alive until Close.
func (sh *shard) swapReadHandle() {
	sh.rmu.Lock()
	if sh.r != nil {
		sh.retired = append(sh.retired, sh.r)
		sh.r = nil
	}
	sh.rmu.Unlock()
}

// closeHandles closes every descriptor the shard holds.
func (sh *shard) closeHandles() {
	sh.mu.Lock()
	if sh.w != nil {
		sh.w.Close()
		sh.w = nil
	}
	sh.mu.Unlock()
	sh.rmu.Lock()
	if sh.r != nil {
		sh.r.Close()
		sh.r = nil
	}
	for _, f := range sh.retired {
		f.Close()
	}
	sh.retired = nil
	sh.rmu.Unlock()
}
