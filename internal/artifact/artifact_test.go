package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

var testKind = Kind{Name: "test", Version: 1}

// payload is a toy artifact whose decode validates its own content, like
// the real codecs do.
type payload struct {
	Value int    `json:"value"`
	Blob  string `json:"blob"`
}

func (p *payload) decode(b []byte) error {
	if err := json.Unmarshal(b, p); err != nil {
		return err
	}
	if p.Blob == "" {
		return fmt.Errorf("empty blob")
	}
	return nil
}

func buildPayload(v int) func() ([]byte, error) {
	return func() ([]byte, error) {
		return json.Marshal(payload{Value: v, Blob: "data"})
	}
}

func openTestStore(t *testing.T) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := Open(t.TempDir(), Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st, reg
}

func counter(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

// get runs one GetOrBuild of key with build value v and returns the
// decoded payload.
func get(t *testing.T, st *Store, key string, v int) payload {
	t.Helper()
	var p payload
	err := st.GetOrBuild(testKind, key,
		func(b []byte) error { return p.decode(b) },
		func() ([]byte, error) {
			b, err := buildPayload(v)()
			if err != nil {
				return nil, err
			}
			return b, p.decode(b)
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKeyDerivation(t *testing.T) {
	type params struct{ A, B int }
	k1, err := Key(testKind, params{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(testKind, params{1, 2}, 3)
	if k1 != k2 {
		t.Fatal("key not deterministic")
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not sha256 hex", k1)
	}
	// Any input change must change the key.
	for name, k := range map[string]func() (string, error){
		"params":  func() (string, error) { return Key(testKind, params{9, 2}, 3) },
		"seed":    func() (string, error) { return Key(testKind, params{1, 2}, 4) },
		"version": func() (string, error) { return Key(Kind{Name: "test", Version: 2}, params{1, 2}, 3) },
		"kind":    func() (string, error) { return Key(Kind{Name: "other", Version: 1}, params{1, 2}, 3) },
	} {
		other, err := k()
		if err != nil {
			t.Fatal(err)
		}
		if other == k1 {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	st, reg := openTestStore(t)
	key, _ := Key(testKind, 1, 1)
	if p := get(t, st, key, 42); p.Value != 42 {
		t.Fatalf("built %+v", p)
	}
	if p := get(t, st, key, 43); p.Value != 42 {
		t.Fatalf("warm read should return the stored 42, got %+v", p)
	}
	if h := counter(reg, "artifact.cache.hits"); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
	if m := counter(reg, "artifact.cache.misses"); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
	if k := counter(reg, "artifact.cache.test.hits"); k != 1 {
		t.Errorf("per-kind hits = %d, want 1", k)
	}
}

// TestPersistsAcrossStores: a second store on the same directory (a new
// process) sees the first store's entries.
func TestPersistsAcrossStores(t *testing.T) {
	dir := t.TempDir()
	st1, _ := Open(dir, Options{})
	t.Cleanup(st1.Close)
	key, _ := Key(testKind, 1, 1)
	get(t, st1, key, 7)
	// Cross-store visibility requires the first store to flush its queue.
	st1.Flush()

	reg := obs.NewRegistry()
	st2, _ := Open(dir, Options{Obs: reg})
	t.Cleanup(st2.Close)
	if p := get(t, st2, key, 8); p.Value != 7 {
		t.Fatalf("second store rebuilt instead of loading: %+v", p)
	}
	if h := counter(reg, "artifact.cache.hits"); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
}

// corruptEntry finds key's entry file and rewrites it via mutate. The
// store is flushed first so the entry is on disk (and its pending copy
// retired) — the damage must be visible to the next read.
func corruptEntry(t *testing.T, st *Store, key string, mutate func([]byte) []byte) {
	t.Helper()
	st.Flush()
	path := st.entryPath(testKind, key)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(blob), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFaultInjection covers the damaged-entry scenarios: each must count
// a corrupt + a miss, rebuild the correct value, and overwrite the entry
// so the next read hits again.
func TestFaultInjection(t *testing.T) {
	scenarios := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"flipped_byte", func(b []byte) []byte {
			// Flip a byte inside the payload section so the envelope still
			// parses but the checksum fails.
			c := append([]byte(nil), b...)
			for i := range c {
				if c[i] == '4' { // the stored Value digit
					c[i] = '5'
					break
				}
			}
			return c
		}},
		{"stale_schema", func(b []byte) []byte {
			var env envelope
			if err := json.Unmarshal(b, &env); err != nil {
				panic(err)
			}
			env.Schema = SchemaVersion + 1
			out, err := json.Marshal(env)
			if err != nil {
				panic(err)
			}
			return out
		}},
		{"empty_file", func([]byte) []byte { return nil }},
		{"not_json", func([]byte) []byte { return []byte("!!not json!!") }},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			st, reg := openTestStore(t)
			key, _ := Key(testKind, sc.name, 1)
			get(t, st, key, 42)
			corruptEntry(t, st, key, sc.mutate)
			if p := get(t, st, key, 42); p.Value != 42 {
				t.Fatalf("damaged entry produced wrong result: %+v", p)
			}
			if c := counter(reg, "artifact.cache.corrupt"); c != 1 {
				t.Errorf("corrupt = %d, want 1", c)
			}
			if m := counter(reg, "artifact.cache.misses"); m != 2 {
				t.Errorf("misses = %d, want 2 (initial + rebuild)", m)
			}
			// The rebuild must have overwritten the damaged entry on disk,
			// not merely in the pending set.
			st.Flush()
			if p := get(t, st, key, 99); p.Value != 42 {
				t.Fatalf("rebuilt entry not persisted: %+v", p)
			}
			if h := counter(reg, "artifact.cache.hits"); h != 1 {
				t.Errorf("hits = %d, want 1 after rebuild", h)
			}
		})
	}
}

// TestUndecodablePayload: an intact envelope whose payload the consumer
// rejects (stale producer output) degrades to a counted rebuild too.
func TestUndecodablePayload(t *testing.T) {
	st, reg := openTestStore(t)
	key, _ := Key(testKind, "undecodable", 1)
	get(t, st, key, 42)
	// Replace the entry with a well-formed envelope holding a payload the
	// decoder rejects (empty blob).
	bad, _ := json.Marshal(payload{Value: 1, Blob: ""})
	st.write(testKind, key, st.entryPath(testKind, key), bad)
	if p := get(t, st, key, 42); p.Value != 42 {
		t.Fatalf("rejected payload produced wrong result: %+v", p)
	}
	if c := counter(reg, "artifact.cache.corrupt"); c != 1 {
		t.Errorf("corrupt = %d, want 1", c)
	}
}

// TestSingleFlight: concurrent requests for one missing key build once.
func TestSingleFlight(t *testing.T) {
	st, _ := openTestStore(t)
	key, _ := Key(testKind, "flight", 1)
	var builds atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, 32)
	vals := make([]payload, 32)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = st.GetOrBuild(testKind, key,
				func(b []byte) error { return vals[g].decode(b) },
				func() ([]byte, error) {
					builds.Add(1)
					b, err := buildPayload(42)()
					if err != nil {
						return nil, err
					}
					return b, vals[g].decode(b)
				})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
		if vals[g].Value != 42 {
			t.Fatalf("goroutine %d got %+v", g, vals[g])
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
}

// TestConcurrentReadersDuringWrite: two stores on one directory (two
// processes) hammer the same keys while entries are being written and
// periodically damaged. Every read must come back correct — atomic
// renames mean a reader sees the whole old entry, the whole new one, or a
// miss, never a torn write. Run under -race.
func TestConcurrentReadersDuringWrite(t *testing.T) {
	dir := t.TempDir()
	writer, _ := Open(dir, Options{})
	t.Cleanup(writer.Close)
	reader, _ := Open(dir, Options{})
	t.Cleanup(reader.Close)
	const keys = 4
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	// The writer continuously rebuilds the keys from a second store,
	// periodically simulating crash damage with an in-place truncation.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key, _ := Key(testKind, i%keys, 1)
			path := writer.entryPath(testKind, key)
			b, _ := buildPayload(i % keys)()
			writer.write(testKind, key, path, b)
			if i%7 == 0 {
				os.WriteFile(path, b[:len(b)/3], 0o644)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 300; i++ {
				want := i % keys
				key, _ := Key(testKind, want, 1)
				var p payload
				err := reader.GetOrBuild(testKind, key,
					func(b []byte) error { return p.decode(b) },
					func() ([]byte, error) {
						b, err := buildPayload(want)()
						if err != nil {
							return nil, err
						}
						return b, p.decode(b)
					})
				if err != nil {
					t.Errorf("read %d: %v", i, err)
					return
				}
				if p.Value != want {
					t.Errorf("read %d: got %d, want %d", i, p.Value, want)
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

// TestBuildErrorNotCached: a failing build propagates its error and
// leaves no entry behind.
func TestBuildErrorNotCached(t *testing.T) {
	st, _ := openTestStore(t)
	key, _ := Key(testKind, "err", 1)
	wantErr := fmt.Errorf("boom")
	err := st.GetOrBuild(testKind, key,
		func([]byte) error { return nil },
		func() ([]byte, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if p := get(t, st, key, 5); p.Value != 5 {
		t.Fatalf("entry was cached despite build error: %+v", p)
	}
}

// TestNilStore: a nil store builds directly and never crashes.
func TestNilStore(t *testing.T) {
	var st *Store
	if st.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
	if st.Hits() != 0 {
		t.Fatal("nil store has hits")
	}
	ran := false
	err := st.GetOrBuild(testKind, "ignored",
		func([]byte) error { t.Fatal("decode on nil store"); return nil },
		func() ([]byte, error) { ran = true; return nil, nil })
	if err != nil || !ran {
		t.Fatalf("nil store: err=%v ran=%v", err, ran)
	}
}

// TestLRUSweep: pushing the store past MaxBytes evicts the least
// recently used entries and leaves the rest intact.
func TestLRUSweep(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := Open(t.TempDir(), Options{MaxBytes: 1500, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	var keys []string
	for i := 0; i < 8; i++ {
		key, _ := Key(testKind, i, 1)
		keys = append(keys, key)
		get(t, st, key, i)
		// Settle each write so the sweep sees entries in insertion order
		// (mtime == write order) and the newest survives deterministically.
		st.Flush()
	}
	if ev := counter(reg, "artifact.cache.evictions"); ev == 0 {
		t.Fatal("no evictions despite exceeding MaxBytes")
	}
	var total int64
	survivors := 0
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, _ := d.Info()
		total += info.Size()
		survivors++
		return nil
	})
	if total > 1500 {
		t.Fatalf("store holds %d bytes, cap 1500", total)
	}
	if survivors == 0 {
		t.Fatal("sweep deleted everything")
	}
	// The newest entry must have survived.
	if _, err := os.Stat(st.entryPath(testKind, keys[len(keys)-1])); err != nil {
		t.Fatalf("newest entry evicted: %v", err)
	}
}

func TestResolve(t *testing.T) {
	dir := t.TempDir()
	if st, err := Resolve("", true, Options{}); err != nil || st != nil {
		t.Fatalf("no-cache: %v %v", st, err)
	}
	if st, err := Resolve("", false, Options{}); err != nil || st != nil {
		t.Fatalf("default off: %v %v", st, err)
	}
	st, err := Resolve(dir, false, Options{})
	if err != nil || st == nil || st.Dir() != dir {
		t.Fatalf("explicit dir: %v %v", st, err)
	}
	t.Setenv("EVAL_CACHE_DIR", dir)
	st, err = Resolve("", false, Options{})
	if err != nil || st == nil || st.Dir() != dir {
		t.Fatalf("env dir: %v %v", st, err)
	}
	if st, err := Resolve("", true, Options{}); err != nil || st != nil {
		t.Fatalf("no-cache beats env: %v %v", st, err)
	}
}
