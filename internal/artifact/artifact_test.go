package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

var testKind = Kind{Name: "test", Version: 1}

// payload is a toy artifact whose decode validates its own content, like
// the real codecs do.
type payload struct {
	Value int    `json:"value"`
	Blob  string `json:"blob"`
}

func (p *payload) decode(b []byte) error {
	if err := json.Unmarshal(b, p); err != nil {
		return err
	}
	if p.Blob == "" {
		return fmt.Errorf("empty blob")
	}
	return nil
}

func buildPayload(v int) func() ([]byte, error) {
	return func() ([]byte, error) {
		return json.Marshal(payload{Value: v, Blob: "data"})
	}
}

func openTestStore(t *testing.T) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := Open(t.TempDir(), Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st, reg
}

func counter(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

// get runs one GetOrBuild of key with build value v and returns the
// decoded payload.
func get(t *testing.T, st *Store, key string, v int) payload {
	t.Helper()
	var p payload
	err := st.GetOrBuild(testKind, key,
		func(b []byte) error { return p.decode(b) },
		func() ([]byte, error) {
			b, err := buildPayload(v)()
			if err != nil {
				return nil, err
			}
			return b, p.decode(b)
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKeyDerivation(t *testing.T) {
	type params struct{ A, B int }
	k1, err := Key(testKind, params{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(testKind, params{1, 2}, 3)
	if k1 != k2 {
		t.Fatal("key not deterministic")
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not sha256 hex", k1)
	}
	// Any input change must change the key.
	for name, k := range map[string]func() (string, error){
		"params":  func() (string, error) { return Key(testKind, params{9, 2}, 3) },
		"seed":    func() (string, error) { return Key(testKind, params{1, 2}, 4) },
		"version": func() (string, error) { return Key(Kind{Name: "test", Version: 2}, params{1, 2}, 3) },
		"kind":    func() (string, error) { return Key(Kind{Name: "other", Version: 1}, params{1, 2}, 3) },
	} {
		other, err := k()
		if err != nil {
			t.Fatal(err)
		}
		if other == k1 {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	st, reg := openTestStore(t)
	key, _ := Key(testKind, 1, 1)
	if p := get(t, st, key, 42); p.Value != 42 {
		t.Fatalf("built %+v", p)
	}
	if p := get(t, st, key, 43); p.Value != 42 {
		t.Fatalf("warm read should return the stored 42, got %+v", p)
	}
	if h := counter(reg, "artifact.cache.hits"); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
	if m := counter(reg, "artifact.cache.misses"); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
	if k := counter(reg, "artifact.cache.test.hits"); k != 1 {
		t.Errorf("per-kind hits = %d, want 1", k)
	}
}

// TestPersistsAcrossStores: a second store on the same directory (a new
// process) sees the first store's entries.
func TestPersistsAcrossStores(t *testing.T) {
	dir := t.TempDir()
	st1, _ := Open(dir, Options{})
	t.Cleanup(st1.Close)
	key, _ := Key(testKind, 1, 1)
	get(t, st1, key, 7)
	// Cross-store visibility requires the first store to flush its queue.
	st1.Flush()

	reg := obs.NewRegistry()
	st2, _ := Open(dir, Options{Obs: reg})
	t.Cleanup(st2.Close)
	if p := get(t, st2, key, 8); p.Value != 7 {
		t.Fatalf("second store rebuilt instead of loading: %+v", p)
	}
	if h := counter(reg, "artifact.cache.hits"); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
}

// entryLoc looks up key's current packfile location.
func entryLoc(t *testing.T, st *Store, key string) idxEntry {
	t.Helper()
	st.mu.Lock()
	e, ok := st.index[fkeyOf(testKind.Name, key)]
	st.mu.Unlock()
	if !ok {
		t.Fatalf("key %s not in index", key)
	}
	return e
}

// corruptRecord flushes the store and mutates key's record bytes in
// place inside its packfile. mutate must preserve the record's length so
// later appends stay aligned — mid-file damage is exactly what a bad
// disk produces.
func corruptRecord(t *testing.T, st *Store, key string, mutate func([]byte) []byte) {
	t.Helper()
	st.Flush()
	e := entryLoc(t, st, key)
	path := packPath(st.dir, e.shard)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := mutate(append([]byte(nil), blob[e.off:e.off+e.size]...))
	if int64(len(rec)) != e.size {
		t.Fatalf("mutate changed record length %d -> %d", e.size, len(rec))
	}
	copy(blob[e.off:], rec)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFaultInjection covers the damaged-record scenarios: each must count
// a corrupt + a miss, rebuild the correct value, and supersede the record
// so the next read hits again.
func TestFaultInjection(t *testing.T) {
	scenarios := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped_payload_byte", func(b []byte) []byte {
			b[len(b)-8] ^= 0x40 // inside the payload, before the crc
			return b
		}},
		{"zeroed_magic", func(b []byte) []byte {
			b[0], b[1], b[2], b[3] = 0, 0, 0, 0
			return b
		}},
		{"flipped_crc", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}},
		{"zeroed_record", func(b []byte) []byte {
			for i := range b {
				b[i] = 0
			}
			return b
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			st, reg := openTestStore(t)
			key, _ := Key(testKind, sc.name, 1)
			get(t, st, key, 42)
			corruptRecord(t, st, key, sc.mutate)
			if p := get(t, st, key, 42); p.Value != 42 {
				t.Fatalf("damaged record produced wrong result: %+v", p)
			}
			if c := counter(reg, "artifact.cache.corrupt"); c != 1 {
				t.Errorf("corrupt = %d, want 1", c)
			}
			if m := counter(reg, "artifact.cache.misses"); m != 2 {
				t.Errorf("misses = %d, want 2 (initial + rebuild)", m)
			}
			// The rebuild must have superseded the damaged record on disk,
			// not merely in the pending set.
			st.Flush()
			if p := get(t, st, key, 99); p.Value != 42 {
				t.Fatalf("rebuilt entry not persisted: %+v", p)
			}
			if h := counter(reg, "artifact.cache.hits"); h != 1 {
				t.Errorf("hits = %d, want 1 after rebuild", h)
			}
		})
	}
}

// TestUndecodablePayload: an intact record whose payload the consumer
// rejects (stale producer output) degrades to a counted rebuild too.
func TestUndecodablePayload(t *testing.T) {
	st, reg := openTestStore(t)
	key, _ := Key(testKind, "undecodable", 1)
	get(t, st, key, 42)
	// Supersede the record with a well-formed payload the decoder rejects
	// (empty blob).
	bad, _ := json.Marshal(payload{Value: 1, Blob: ""})
	st.write(testKind, key, bad)
	if p := get(t, st, key, 42); p.Value != 42 {
		t.Fatalf("rejected payload produced wrong result: %+v", p)
	}
	if c := counter(reg, "artifact.cache.corrupt"); c != 1 {
		t.Errorf("corrupt = %d, want 1", c)
	}
}

// TestSingleFlight: concurrent requests for one missing key build once.
func TestSingleFlight(t *testing.T) {
	st, _ := openTestStore(t)
	key, _ := Key(testKind, "flight", 1)
	var builds atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, 32)
	vals := make([]payload, 32)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = st.GetOrBuild(testKind, key,
				func(b []byte) error { return vals[g].decode(b) },
				func() ([]byte, error) {
					builds.Add(1)
					b, err := buildPayload(42)()
					if err != nil {
						return nil, err
					}
					return b, vals[g].decode(b)
				})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
		if vals[g].Value != 42 {
			t.Fatalf("goroutine %d got %+v", g, vals[g])
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
}

// TestConcurrentReadersDuringAppend: reader goroutines hammer keys while
// a writer continuously supersedes them and forces settles (sweep,
// compaction, index saves) to race the reads. The payload of key k
// always encodes k, so every read must come back correct whichever
// record version it lands on. Run under -race.
func TestConcurrentReadersDuringAppend(t *testing.T) {
	st, _ := openTestStore(t)
	const keys = 4
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key, _ := Key(testKind, i%keys, 1)
			b, _ := buildPayload(i % keys)()
			st.Put(testKind, key, b)
			if i%17 == 0 {
				st.Flush()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 300; i++ {
				want := i % keys
				key, _ := Key(testKind, want, 1)
				var p payload
				err := st.GetOrBuild(testKind, key,
					func(b []byte) error { return p.decode(b) },
					func() ([]byte, error) {
						b, err := buildPayload(want)()
						if err != nil {
							return nil, err
						}
						return b, p.decode(b)
					})
				if err != nil {
					t.Errorf("read %d: %v", i, err)
					return
				}
				if p.Value != want {
					t.Errorf("read %d: got %d, want %d", i, p.Value, want)
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

// TestBuildErrorNotCached: a failing build propagates its error and
// leaves no entry behind.
func TestBuildErrorNotCached(t *testing.T) {
	st, _ := openTestStore(t)
	key, _ := Key(testKind, "err", 1)
	wantErr := fmt.Errorf("boom")
	err := st.GetOrBuild(testKind, key,
		func([]byte) error { return nil },
		func() ([]byte, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if p := get(t, st, key, 5); p.Value != 5 {
		t.Fatalf("entry was cached despite build error: %+v", p)
	}
}

// TestNilStore: a nil store builds directly and never crashes.
func TestNilStore(t *testing.T) {
	var st *Store
	if st.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
	if st.Hits() != 0 {
		t.Fatal("nil store has hits")
	}
	ran := false
	err := st.GetOrBuild(testKind, "ignored",
		func([]byte) error { t.Fatal("decode on nil store"); return nil },
		func() ([]byte, error) { ran = true; return nil, nil })
	if err != nil || !ran {
		t.Fatalf("nil store: err=%v ran=%v", err, ran)
	}
}

// TestLRUSweep: pushing the store past MaxBytes evicts the least
// recently used entries, compaction reclaims their bytes, and the newest
// entries survive.
func TestLRUSweep(t *testing.T) {
	reg := obs.NewRegistry()
	const maxBytes = 1500
	st, err := Open(t.TempDir(), Options{MaxBytes: maxBytes, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	big := strings.Repeat("x", 300)
	var keys []string
	for i := 0; i < 8; i++ {
		key, _ := Key(testKind, i, 1)
		keys = append(keys, key)
		blob, _ := json.Marshal(payload{Value: i, Blob: big})
		st.Put(testKind, key, blob)
		// Settle each write so the sweep sees entries in insertion order
		// (atime == write order) and the newest survives deterministically.
		st.Flush()
	}
	if ev := counter(reg, "artifact.cache.evictions"); ev == 0 {
		t.Fatal("no evictions despite exceeding MaxBytes")
	}
	var total int64
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, _ := d.Info()
		total += info.Size()
		return nil
	})
	if total > maxBytes {
		t.Fatalf("store holds %d bytes, cap %d", total, maxBytes)
	}
	// The newest entry must have survived, and the oldest must be gone.
	var p payload
	if !st.Get(testKind, keys[len(keys)-1], p.decode) || p.Value != 7 {
		t.Fatalf("newest entry evicted (got %+v)", p)
	}
	if st.Get(testKind, keys[0], p.decode) {
		t.Fatal("oldest entry survived a full sweep")
	}
}

// TestLegacyMigrationReadThrough: a v1 JSON envelope entry is read
// through — verified, served, rewritten into a packfile, and its file
// deleted — and the migrated record hits from the packed layout alone.
func TestLegacyMigrationReadThrough(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(testKind, "legacy", 1)
	blob, _ := buildPayload(31)()
	if err := WriteLegacyEntry(dir, testKind, key, blob); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if p := get(t, st, key, 99); p.Value != 31 {
		t.Fatalf("migration returned %+v, want the v1 value 31", p)
	}
	if m := counter(reg, "artifact.cache.migrated"); m != 1 {
		t.Errorf("migrated = %d, want 1", m)
	}
	if h := counter(reg, "artifact.cache.hits"); h != 1 {
		t.Errorf("hits = %d, want 1 (migration is a hit)", h)
	}
	st.Close()
	if _, err := os.Stat(legacyPath(dir, testKind, key)); !os.IsNotExist(err) {
		t.Fatalf("legacy file survived migration: %v", err)
	}

	// A fresh store must serve the key from the packfiles.
	reg2 := obs.NewRegistry()
	st2, err := Open(dir, Options{Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st2.Close)
	if p := get(t, st2, key, 99); p.Value != 31 {
		t.Fatalf("migrated record lost: %+v", p)
	}
	if m := counter(reg2, "artifact.cache.migrated"); m != 0 {
		t.Errorf("second store migrated again: %d", m)
	}
}

// TestLegacyCorruptEntry: a damaged v1 file is counted, removed, and
// treated as a miss.
func TestLegacyCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(testKind, "legacy-bad", 1)
	blob, _ := buildPayload(5)()
	if err := WriteLegacyEntry(dir, testKind, key, blob); err != nil {
		t.Fatal(err)
	}
	path := legacyPath(dir, testKind, key)
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	var p payload
	if st.Get(testKind, key, p.decode) {
		t.Fatal("corrupt legacy entry served as a hit")
	}
	if c := counter(reg, "artifact.cache.corrupt"); c != 1 {
		t.Errorf("corrupt = %d, want 1", c)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt legacy file not removed: %v", err)
	}
}

// TestTruncatedTailRecovery: a crashed writer leaves a partial record at
// a segment tail; the next Open truncates it away and every complete
// record stays readable.
func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key(testKind, "tail", 1)
	get(t, st, key, 13)
	st.Flush()
	e := entryLoc(t, st, key)
	st.Close()

	// Remove the saved index (so recovery runs off the scan alone) and
	// append half a record to the segment.
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	path := packPath(dir, e.shard)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	partial := blob[e.off : e.off+e.size/2]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(partial)
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st2.Close)
	if p := get(t, st2, key, 99); p.Value != 13 {
		t.Fatalf("record lost after tail recovery: %+v", p)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(blob)) {
		t.Fatalf("partial tail not truncated: size %d, want %d", info.Size(), len(blob))
	}
}

// TestIndexMismatchRebuild covers the saved-index failure modes: a
// deleted or corrupted index rebuilds from a segment scan, and a segment
// truncated below its covered length rescans from zero.
func TestIndexMismatchRebuild(t *testing.T) {
	writeEntries := func(t *testing.T, dir string, n int) []string {
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for i := 0; i < n; i++ {
			key, _ := Key(testKind, i, 1)
			keys = append(keys, key)
			get(t, st, key, i)
		}
		st.Close()
		return keys
	}
	reopenAndCheck := func(t *testing.T, dir string, keys []string, missing map[int]bool) int64 {
		reg := obs.NewRegistry()
		st, err := Open(dir, Options{Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		for i, key := range keys {
			var p payload
			got := st.Get(testKind, key, p.decode)
			if missing[i] {
				if got {
					t.Errorf("entry %d should be lost", i)
				}
				continue
			}
			if !got || p.Value != i {
				t.Errorf("entry %d lost or wrong: got=%v %+v", i, got, p)
			}
		}
		return counter(reg, "artifact.cache.index_rebuilds")
	}

	t.Run("deleted_index", func(t *testing.T) {
		dir := t.TempDir()
		keys := writeEntries(t, dir, 6)
		if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, dir, keys, nil)
	})

	t.Run("corrupt_index", func(t *testing.T) {
		dir := t.TempDir()
		keys := writeEntries(t, dir, 6)
		path := filepath.Join(dir, indexName)
		blob, _ := os.ReadFile(path)
		blob[len(blob)/2] ^= 0xff
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if rebuilds := reopenAndCheck(t, dir, keys, nil); rebuilds != 1 {
			t.Errorf("index_rebuilds = %d, want 1", rebuilds)
		}
	})

	t.Run("truncated_segment", func(t *testing.T) {
		dir := t.TempDir()
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Two entries in one segment: craft keys until two share a shard.
		var keys []string
		var locs []idxEntry
		for i := 0; len(keys) < 2; i++ {
			key, _ := Key(testKind, fmt.Sprintf("seg-%d", i), 1)
			if len(keys) == 1 {
				first := entryLoc(t, st, keys[0])
				if shardOf(key) != first.shard {
					continue
				}
			}
			get(t, st, key, len(keys))
			st.Flush()
			keys = append(keys, key)
			locs = append(locs, entryLoc(t, st, key))
		}
		st.Close()
		// Truncate the segment below the index's covered length, keeping
		// only the first record: the shard must rescan from zero, recover
		// entry 0, and drop entry 1.
		path := packPath(dir, locs[0].shard)
		if err := os.Truncate(path, locs[0].size); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		var p payload
		if !st2.Get(testKind, keys[0], p.decode) || p.Value != 0 {
			t.Fatalf("surviving record lost after rescan: %+v", p)
		}
		if st2.Get(testKind, keys[1], p.decode) {
			t.Fatal("truncated-away record still served")
		}
	})
}

func TestResolve(t *testing.T) {
	dir := t.TempDir()
	if st, err := Resolve("", true, Options{}); err != nil || st != nil {
		t.Fatalf("no-cache: %v %v", st, err)
	}
	if st, err := Resolve("", false, Options{}); err != nil || st != nil {
		t.Fatalf("default off: %v %v", st, err)
	}
	st, err := Resolve(dir, false, Options{})
	if err != nil || st == nil || st.Dir() != dir {
		t.Fatalf("explicit dir: %v %v", st, err)
	}
	st.Close()
	t.Setenv("EVAL_CACHE_DIR", dir)
	st, err = Resolve("", false, Options{})
	if err != nil || st == nil || st.Dir() != dir {
		t.Fatalf("env dir: %v %v", st, err)
	}
	st.Close()
	if st, err := Resolve("", true, Options{}); err != nil || st != nil {
		t.Fatalf("no-cache beats env: %v %v", st, err)
	}
}

// TestContainsBatch: the indexed existence probe answers from pending
// writes, the index, and unmigrated legacy entries, and skips empty keys
// (uncacheable items probe as absent).
func TestContainsBatch(t *testing.T) {
	dir := t.TempDir()
	legacyKey, _ := Key(testKind, "cb-legacy", 1)
	blob, _ := buildPayload(7)()
	if err := WriteLegacyEntry(dir, testKind, legacyKey, blob); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)

	pendingKey, _ := Key(testKind, "cb-pending", 1)
	get(t, st, pendingKey, 11) // async write: pending or indexed, either way present
	missKey, _ := Key(testKind, "cb-miss", 1)

	keys := []string{pendingKey, "", legacyKey, missKey}
	want := []bool{true, false, true, false}
	got := st.ContainsBatch(testKind, keys)
	if len(got) != len(keys) {
		t.Fatalf("len = %d, want %d", len(got), len(keys))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ContainsBatch[%d] (%q) = %v, want %v", i, keys[i], got[i], want[i])
		}
	}

	// After a settle the answer must not change: pending moved to index.
	st.Flush()
	got = st.ContainsBatch(testKind, keys)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("post-flush ContainsBatch[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Wrong kind misses; a nil store probes everything as absent.
	if r := st.ContainsBatch(Kind{Name: "other", Version: 1}, []string{pendingKey}); r[0] {
		t.Error("other kind reported present")
	}
	var nilStore *Store
	for _, v := range nilStore.ContainsBatch(testKind, keys) {
		if v {
			t.Error("nil store reported an artifact present")
		}
	}
}
