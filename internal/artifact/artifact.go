package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the store's on-disk layout version: 2 is the packed
// binary layout (sharded packfiles + persistent index). Version-1 stores
// (one JSON envelope file per artifact) are still readable — entries
// migrate into packfiles as they are hit — so bumping this constant
// tracks layout generations without invalidating caches. The CI cache
// key embeds it.
const SchemaVersion = 2

// keySchema versions the key pre-image, not the storage layout. It has
// never been bumped — producers version their output through
// Kind.Version — and holding it fixed is what lets a v2 store compute
// the key of (and so migrate) an entry a v1 store wrote.
const keySchema = 1

// Kind names one artifact producer and its version. The version is part
// of the key: bump it whenever the producer's output for the same
// (params, seed) changes, and every stale entry becomes a clean miss.
type Kind struct {
	Name    string
	Version int
}

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the store's total size; the LRU sweep evicts
	// least-recently-used entries and compacts packfiles down to the cap.
	// 0 uses DefaultMaxBytes; negative disables the sweep.
	MaxBytes int64
	// Obs receives cache counters; nil (the default) disables metrics
	// at zero cost.
	Obs *obs.Registry
	// SyncWrites appends every record on the writer's goroutine before
	// returning. By default writes are handed to a background flusher so
	// the building goroutine overlaps the next build with the disk I/O;
	// the in-memory pending set keeps reads-after-writes exact either
	// way. Use SyncWrites when the process cannot call Close/Flush before
	// another process reads the directory.
	SyncWrites bool
}

// DefaultMaxBytes caps the store at 2 GiB unless Options says otherwise —
// far above any experiment in this repo, so eviction only matters for
// long-lived shared caches.
const DefaultMaxBytes = 2 << 30

// maxQueuedWrites bounds the flusher queue; writers past the bound block
// until the flusher drains, so a slow disk applies backpressure instead of
// growing memory without limit.
const maxQueuedWrites = 128

// sweepIntervalBytes is how many freshly written bytes accumulate before
// the flusher settles the store (LRU sweep, compaction, index save) on
// its own; Flush and Close always settle the remainder.
const sweepIntervalBytes = 1 << 20

// compactMinGarbage is the least garbage (superseded or evicted record
// bytes) a segment accumulates before a routine settle rewrites it; when
// the store is over its byte cap every garbage-bearing segment compacts
// regardless.
const compactMinGarbage = 256 << 10

// Store is a persistent content-addressed artifact cache rooted at one
// directory: N sharded packfiles of checksummed binary records plus a
// compact index (key → segment, offset, length). It is safe for
// concurrent use by multiple goroutines. Concurrent processes may share
// a directory read-only, but the packed layout assumes a single writing
// process at a time (the v1 one-file-per-entry layout allowed concurrent
// writers; see doc.go for the migration story). All methods are safe on
// a nil *Store, where every lookup builds directly — a disabled cache
// costs one nil check.
//
// Writes are asynchronous by default (see Options.SyncWrites): Put and
// GetOrBuild enqueue the entry and return, a single background flusher
// appends records to the lock-striped segments, and reads consult the
// pending set first so a store always observes its own writes. Call
// Flush (or Close, which also stops the flusher) before handing the
// directory to another process.
type Store struct {
	dir      string
	maxBytes int64
	obs      *obs.Registry
	syncW    bool

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on queue/pending/closed changes
	flights map[string]*flight
	queue   []writeReq
	pending map[string]pendingWrite
	nextSeq uint64
	doneSeq uint64 // every req with seq <= doneSeq has been persisted
	closed  bool

	index   map[string]idxEntry // live records; under mu
	garbage [numShards]int64    // superseded/evicted bytes per segment; under mu

	shards [numShards]shard

	flusherDone chan struct{}

	// sweepMu serializes settles (LRU sweep, compaction, index save) and
	// the disk-byte accounting they publish: the flusher, Flush callers,
	// and SyncWrites writers may all reach the settle, and interleaved
	// runs would tear the artifact.cache.disk_bytes gauge.
	sweepMu    sync.Mutex
	dirtyBytes int64 // bytes written since the last settle; under sweepMu
	legacySeen bool  // v1 entry files may remain under dir; under sweepMu
}

// writeReq is one queued persistence job.
type writeReq struct {
	kind    Kind
	key     string
	fkey    string // kind-qualified pending/index key
	payload []byte
	seq     uint64
}

// pendingWrite is an entry that has been written logically but not yet
// persisted: reads are served from it until the flusher appends the
// record.
type pendingWrite struct {
	payload []byte
	seq     uint64
}

// flight is one in-process single-flight build: the first goroutine to
// request a key builds it while followers wait on done and then decode
// the same bytes.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// bufPool recycles read and record-encoding scratch so the warm path's
// pack reads and decodes allocate nothing per artifact.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// Open creates (if needed) the cache directory and returns a store,
// restoring the packfile index (rebuilding it from segment scans when
// missing or damaged, and recovering any records a crashed writer
// appended after the last index save).
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if opt.MaxBytes == 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	s := &Store{
		dir:      dir,
		maxBytes: opt.MaxBytes,
		obs:      opt.Obs,
		syncW:    opt.SyncWrites,
		flights:  make(map[string]*flight),
		pending:  make(map[string]pendingWrite),
	}
	s.cond = sync.NewCond(&s.mu)
	index, sizes, garbage, rebuilt := loadIndex(dir, time.Now().UnixNano())
	s.index = index
	s.garbage = garbage
	segments := 0
	for si := range s.shards {
		s.shards[si].size = sizes[si]
		if sizes[si] > 0 {
			segments++
		}
	}
	if rebuilt {
		s.obs.Counter("artifact.cache.index_rebuilds").Inc()
	}
	s.obs.Gauge("artifact.cache.segments").Set(float64(segments))
	// A v1 store keeps entries in per-kind subdirectories; remember
	// whether any exist so the read path knows to try migration.
	if des, err := os.ReadDir(dir); err == nil {
		for _, de := range des {
			if de.IsDir() {
				s.legacySeen = true
				break
			}
		}
	}
	if !s.syncW {
		s.flusherDone = make(chan struct{})
		go s.flusher()
	}
	return s, nil
}

// Resolve turns the shared CLI surface (-cache-dir, -no-cache, and the
// EVAL_CACHE_DIR environment variable) into a store: nil when caching is
// off. An explicit -cache-dir wins over the environment; -no-cache wins
// over both.
func Resolve(dirFlag string, noCache bool, opt Options) (*Store, error) {
	if noCache {
		return nil, nil
	}
	dir := dirFlag
	if dir == "" {
		dir = os.Getenv("EVAL_CACHE_DIR")
	}
	if dir == "" {
		return nil, nil
	}
	return Open(dir, opt)
}

// Dir returns the store's root directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// hasLegacy reports whether v1 entry files may remain under the store.
func (s *Store) hasLegacy() bool {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.legacySeen
}

// Flush blocks until every write enqueued before the call is appended to
// its segment, then settles the store: LRU sweep, compaction of
// garbage-heavy segments, and an index save. After Flush returns, a
// fresh store (or another process) opening the same directory sees all
// of this store's writes.
func (s *Store) Flush() {
	if s == nil {
		return
	}
	if !s.syncW {
		s.mu.Lock()
		target := s.nextSeq
		for s.doneSeq < target {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}
	s.settle(true)
}

// Close flushes the queue, stops the background flusher, runs the final
// settle, and closes the segment handles. Idempotent and nil-safe. The
// store remains usable after Close: reads behave normally and later
// writes fall back to synchronous persistence, so a defer-closed store
// can never lose or corrupt data.
func (s *Store) Close() {
	if s == nil {
		return
	}
	if s.syncW {
		s.settle(true)
		for si := range s.shards {
			s.shards[si].closeHandles()
		}
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.flusherDone
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.flusherDone
	for si := range s.shards {
		s.shards[si].closeHandles()
	}
}

// flusher is the single background writer: it drains the queue in
// batches (FIFO, so the last write of a key wins in the index), appends
// each record to its segment, clears the pending set as entries land,
// and settles at batch boundaries once enough bytes have accumulated. It
// exits — after a final drain and settle — when Close marks the store
// closed.
func (s *Store) flusher() {
	defer close(s.flusherDone)
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			break // closed and fully drained
		}
		batch := s.queue
		s.queue = nil
		s.cond.Broadcast() // wake writers blocked on the queue bound
		s.mu.Unlock()

		for i := range batch {
			s.persist(batch[i].kind, batch[i].key, batch[i].fkey, batch[i].payload)
		}

		s.mu.Lock()
		for i := range batch {
			if p, ok := s.pending[batch[i].fkey]; ok && p.seq == batch[i].seq {
				delete(s.pending, batch[i].fkey)
			}
		}
		s.doneSeq = batch[len(batch)-1].seq
		s.cond.Broadcast() // wake Flush waiters
		s.mu.Unlock()

		s.settle(false)
		s.mu.Lock()
	}
	s.mu.Unlock()
	s.settle(true)
}

// keyEnvelope is the canonical pre-image of an entry key.
type keyEnvelope struct {
	Schema  int    `json:"schema"`
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	Params  any    `json:"params"`
	Seed    int64  `json:"seed"`
}

// Key derives the content address of (kind, params, seed): the SHA-256
// of the canonical JSON key envelope. params must JSON-marshal
// deterministically (plain structs and slices do; maps do not belong in
// key parameter structs). Keys are layout-independent: a v2 store
// computes the same key a v1 store did, which is what makes read-through
// migration possible.
func Key(kind Kind, params any, seed int64) (string, error) {
	blob, err := json.Marshal(keyEnvelope{
		Schema:  keySchema,
		Kind:    kind.Name,
		Version: kind.Version,
		Params:  params,
		Seed:    seed,
	})
	if err != nil {
		return "", fmt.Errorf("artifact: keying %s params: %w", kind.Name, err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// legacyEnvelope is the v1 on-disk entry format, retained read-only for
// migration.
type legacyEnvelope struct {
	Schema  int             `json:"schema"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// legacySchemaVersion is the v1 envelope schema those files carry.
const legacySchemaVersion = 1

// legacyPath is where a v1 store kept (kind, key)'s envelope file.
func legacyPath(dir string, kind Kind, key string) string {
	return filepath.Join(dir, kind.Name, key[:2], key+".json")
}

// WriteLegacyEntry writes one v1-format JSON envelope entry under dir —
// the layout version-1 stores produced. It exists for migration tests
// and fixtures; new code writes through a Store, which uses the packed
// layout.
func WriteLegacyEntry(dir string, kind Kind, key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	blob, err := json.Marshal(legacyEnvelope{
		Schema:  legacySchemaVersion,
		Kind:    kind.Name,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		return err
	}
	path := legacyPath(dir, kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// GetOrBuild returns the artifact for key, building it at most once per
// process. On a cache hit decode receives the stored payload; when build
// runs, decode is NOT called — the builder already holds the object and
// returns its serialized form for the store. A corrupt record (checksum,
// framing, or decode failure) counts as a miss, rebuilds, and
// supersedes the record. The returned error is build's; cache I/O
// problems never surface as errors.
//
// The payload slice passed to decode is only valid for the duration of
// the call: it may alias pooled read scratch.
func (s *Store) GetOrBuild(kind Kind, key string, decode func([]byte) error, build func() ([]byte, error)) error {
	if s == nil {
		_, err := build()
		return err
	}
	flightKey := fkeyOf(kind.Name, key)

	s.mu.Lock()
	if f, ok := s.flights[flightKey]; ok {
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return f.err
		}
		return decode(f.payload)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[flightKey] = f
	s.mu.Unlock()

	defer func() {
		close(f.done)
		s.mu.Lock()
		delete(s.flights, flightKey)
		s.mu.Unlock()
	}()

	if payload, release, ok := s.read(kind, key); ok {
		err := decode(payload)
		if err == nil {
			s.count(kind, "hits")
			// Followers decode after this goroutine returns; give them a
			// stable copy rather than the pooled read buffer.
			f.payload = append([]byte(nil), payload...)
			release()
			return nil
		}
		release()
		// Payload passed the checksum but its consumer rejects it: a
		// stale producer whose Kind.Version was not bumped, or a
		// hand-edited entry. Same degradation path as corruption.
		s.count(kind, "corrupt")
	}
	s.count(kind, "misses")

	payload, err := build()
	if err != nil {
		f.err = err
		return err
	}
	f.payload = payload
	s.write(kind, key, payload)
	return nil
}

// Get returns the artifact for key if an intact record exists, feeding
// the payload to decode. Unlike GetOrBuild it never builds: absence or
// corruption simply returns false, and the caller produces (or skips)
// the object itself. The payload passed to decode is only valid during
// the call. Nil-safe, like every Store method.
func (s *Store) Get(kind Kind, key string, decode func([]byte) error) bool {
	if s == nil {
		return false
	}
	payload, release, ok := s.read(kind, key)
	if !ok {
		s.count(kind, "misses")
		return false
	}
	err := decode(payload)
	release()
	if err != nil {
		s.count(kind, "corrupt")
		s.count(kind, "misses")
		return false
	}
	s.count(kind, "hits")
	return true
}

// Put persists payload under key, superseding any existing record. The
// complement of Get for artifacts whose build has no single call site to
// wrap (e.g. tables accumulated lazily over a run). Failures are counted
// and swallowed; nil-safe.
func (s *Store) Put(kind Kind, key string, payload []byte) {
	if s == nil {
		return
	}
	s.write(kind, key, payload)
}

// ContainsBatch reports, in one indexed pass, which of keys currently
// have a record of kind: the pending set and the packfile index are
// consulted under a single lock acquisition, and — for stores still
// carrying v1 entry files — a stat of the legacy path covers the
// remaining misses. It proves presence, not integrity (a corrupt record
// still degrades to a rebuild at Get/GetOrBuild time), bumps no counters,
// and leaves LRU recency untouched, so probing is free of side effects.
// Callers batching compatible work units use it to split a batch into
// replay-hits and cold builds without paying one locked lookup per key.
// Empty keys report false. Nil-safe: a nil store reports all-false.
func (s *Store) ContainsBatch(kind Kind, keys []string) []bool {
	out := make([]bool, len(keys))
	if s == nil {
		return out
	}
	missing := 0
	s.mu.Lock()
	for i, key := range keys {
		if key == "" {
			continue
		}
		fkey := fkeyOf(kind.Name, key)
		if !s.syncW {
			if _, ok := s.pending[fkey]; ok {
				out[i] = true
				continue
			}
		}
		if _, ok := s.index[fkey]; ok {
			out[i] = true
			continue
		}
		missing++
	}
	s.mu.Unlock()
	if missing > 0 && s.hasLegacy() {
		for i, key := range keys {
			if out[i] || key == "" {
				continue
			}
			if _, err := os.Stat(legacyPath(s.dir, kind, key)); err == nil {
				out[i] = true
			}
		}
	}
	return out
}

// noRelease is the release function for payloads that do not come from
// pooled scratch.
func noRelease() {}

// read resolves (kind, key) to its payload: the pending set first
// (read-your-writes), then the packfile index, then — for stores carrying
// v1 entry files — the legacy read-through, which rewrites the entry
// into a packfile and deletes the old file. ok=false means a clean miss;
// damage is counted as corrupt. The returned release must be called
// once the payload has been consumed.
func (s *Store) read(kind Kind, key string) (payload []byte, release func(), ok bool) {
	fkey := fkeyOf(kind.Name, key)
	s.mu.Lock()
	if !s.syncW {
		if p, ok := s.pending[fkey]; ok {
			s.mu.Unlock()
			return p.payload, noRelease, true
		}
	}
	e, found := s.index[fkey]
	if found {
		e.atime = time.Now().UnixNano()
		s.index[fkey] = e // LRU recency, durable at the next index save
	}
	s.mu.Unlock()

	if found {
		if payload, release, ok := s.readPack(kind, fkey, e); ok {
			return payload, release, true
		}
		// Index/segment mismatch or a damaged record: drop the entry (if
		// it has not been remapped meanwhile) and fall through to the
		// legacy path / miss.
		s.count(kind, "corrupt")
		s.mu.Lock()
		if cur, still := s.index[fkey]; still && cur.shard == e.shard && cur.off == e.off {
			delete(s.index, fkey)
			s.garbage[e.shard] += e.size
		}
		s.mu.Unlock()
	}
	if s.hasLegacy() {
		if payload, ok := s.readLegacy(kind, key); ok {
			return payload, noRelease, true
		}
	}
	return nil, nil, false
}

// readPack preads and verifies one record. The returned payload aliases
// pooled scratch; release returns it.
func (s *Store) readPack(kind Kind, fkey string, e idxEntry) (payload []byte, release func(), ok bool) {
	sw := s.obs.Timer("artifact.cache.decode_ns").Start()
	defer sw.Stop()
	buf := bufPool.Get().(*[]byte)
	sh := &s.shards[e.shard]
	blob, err := sh.readAt(packPath(s.dir, e.shard), *buf, e.off, e.size)
	if err != nil {
		bufPool.Put(buf)
		return nil, nil, false
	}
	*buf = blob
	rec, valid := parseRecord(blob)
	if !valid || rec.size != e.size || fkeyOf(rec.kind, rec.key) != fkey {
		bufPool.Put(buf)
		return nil, nil, false
	}
	return rec.payload, func() { bufPool.Put(buf) }, true
}

// readLegacy attempts the v1 read-through: load and verify a version-1
// JSON envelope file, rewrite its payload into the packed store, and
// delete the file. Damaged legacy files are counted corrupt and removed
// (they could never be repaired in place — v2 writes go to packfiles).
func (s *Store) readLegacy(kind Kind, key string) ([]byte, bool) {
	path := legacyPath(s.dir, kind, key)
	blob, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.count(kind, "corrupt")
		}
		return nil, false
	}
	var env legacyEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		s.count(kind, "corrupt")
		os.Remove(path)
		return nil, false
	}
	if env.Schema != legacySchemaVersion || env.Kind != kind.Name || env.Key != key {
		s.count(kind, "corrupt")
		os.Remove(path)
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		s.count(kind, "corrupt")
		os.Remove(path)
		return nil, false
	}
	s.count(kind, "migrated")
	s.write(kind, key, env.Payload)
	os.Remove(path)
	return env.Payload, true
}

// write records one logical entry write: either persisted in place
// (SyncWrites, or a closed store) or queued for the background flusher
// with the payload entered into the pending set.
func (s *Store) write(kind Kind, key string, payload []byte) {
	fkey := fkeyOf(kind.Name, key)
	if s.syncW {
		s.persist(kind, key, fkey, payload)
		s.settle(false)
		return
	}
	s.mu.Lock()
	for len(s.queue) >= maxQueuedWrites && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		s.persist(kind, key, fkey, payload)
		s.settle(false)
		return
	}
	s.nextSeq++
	s.queue = append(s.queue, writeReq{kind: kind, key: key, fkey: fkey, payload: payload, seq: s.nextSeq})
	s.pending[fkey] = pendingWrite{payload: payload, seq: s.nextSeq}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// persist frames one record and appends it to its segment, then
// publishes the new location in the index. Failures are counted and
// swallowed: the cache never fails the run that built the artifact.
func (s *Store) persist(kind Kind, key, fkey string, payload []byte) {
	sw := s.obs.Timer("artifact.cache.encode_ns").Start()
	buf := bufPool.Get().(*[]byte)
	blob, err := appendRecord((*buf)[:0], kind.Name, key, payload)
	*buf = blob
	sw.Stop()
	if err != nil {
		bufPool.Put(buf)
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	si := shardOf(key)
	sh := &s.shards[si]
	off, err := sh.append(packPath(s.dir, si), blob)
	if err != nil {
		bufPool.Put(buf)
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	size := int64(len(blob))
	bufPool.Put(buf)

	s.mu.Lock()
	if old, ok := s.index[fkey]; ok {
		s.garbage[old.shard] += old.size
	}
	s.index[fkey] = idxEntry{kind: kind.Name, shard: si, off: off, size: size, atime: time.Now().UnixNano()}
	s.mu.Unlock()

	s.obs.Counter("artifact.cache.bytes").Add(size)
	if off == 0 {
		s.refreshSegmentsGauge()
	}
	s.sweepMu.Lock()
	s.dirtyBytes += size
	s.sweepMu.Unlock()
}

// refreshSegmentsGauge republishes the live segment count.
func (s *Store) refreshSegmentsGauge() {
	n := 0
	for si := range s.shards {
		s.shards[si].mu.Lock()
		if s.shards[si].size > 0 {
			n++
		}
		s.shards[si].mu.Unlock()
	}
	s.obs.Gauge("artifact.cache.segments").Set(float64(n))
}

// count bumps the global and per-kind counter of one event class.
func (s *Store) count(kind Kind, event string) {
	s.obs.Counter("artifact.cache." + event).Inc()
	s.obs.Counter("artifact.cache." + kind.Name + "." + event).Inc()
}

// Hits returns the global hit count (0 without a registry) — a test and
// smoke-check convenience.
func (s *Store) Hits() int64 {
	if s == nil {
		return 0
	}
	return s.obs.Counter("artifact.cache.hits").Value()
}

// settle runs the store's maintenance pass — LRU eviction, segment
// compaction, index save, disk accounting — under sweepMu. Routine
// callers (the flusher, SyncWrites writers) pass force=false and only
// settle once sweepIntervalBytes have accumulated; Flush and Close
// force it.
func (s *Store) settle(force bool) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if !force && s.dirtyBytes < sweepIntervalBytes {
		return
	}
	s.dirtyBytes = 0
	s.settleLocked()
}

// legacyFile is one v1 entry file considered for eviction.
type legacyFile struct {
	path  string
	size  int64
	mtime time.Time
}

// settleLocked performs the maintenance pass. Caller holds sweepMu.
func (s *Store) settleLocked() {
	// Snapshot the live set.
	type liveEntry struct {
		fkey string
		e    idxEntry
	}
	s.mu.Lock()
	live := make([]liveEntry, 0, len(s.index))
	var liveBytes int64
	for fkey, e := range s.index {
		live = append(live, liveEntry{fkey: fkey, e: e})
		liveBytes += e.size
	}
	garbage := s.garbage
	s.mu.Unlock()

	// Walk any v1 remains: legacy entry files plus crashed-writer temp
	// debris (ours or a v1 store's).
	var legacy []legacyFile
	var legacyBytes int64
	if s.legacySeen {
		_ = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if filepath.Dir(path) == s.dir {
				return nil // packfiles, index, root-level temp files
			}
			info, err := d.Info()
			if err != nil {
				return nil
			}
			if filepath.Ext(path) != ".json" {
				if time.Since(info.ModTime()) > time.Minute {
					os.Remove(path)
				}
				return nil
			}
			legacy = append(legacy, legacyFile{path: path, size: info.Size(), mtime: info.ModTime()})
			legacyBytes += info.Size()
			return nil
		})
		if len(legacy) == 0 {
			s.legacySeen = false
		}
	}

	if s.maxBytes >= 0 {
		// Eviction: the packed layout reclaims pack bytes at compaction,
		// so the budget compares the post-compaction footprint (live
		// records + remaining legacy files + a small index overhead)
		// against the cap, and evicts least-recently-used items across
		// both generations until it fits.
		// Approximate index cost: ~50 encoded bytes per entry plus the
		// header. Slightly high is fine; wildly high would over-evict.
		indexOverhead := int64(56)*int64(len(live)) + 128
		if liveBytes+legacyBytes+indexOverhead > s.maxBytes {
			type victim struct {
				fkey   string // "" for a legacy file
				legacy int    // index into legacy, -1 otherwise
				at     int64
				size   int64
			}
			victims := make([]victim, 0, len(live)+len(legacy))
			for _, le := range live {
				victims = append(victims, victim{fkey: le.fkey, legacy: -1, at: le.e.atime, size: le.e.size})
			}
			for i, lf := range legacy {
				victims = append(victims, victim{legacy: i, at: lf.mtime.UnixNano(), size: lf.size})
			}
			sort.Slice(victims, func(i, j int) bool { return victims[i].at < victims[j].at })
			excess := liveBytes + legacyBytes + indexOverhead - s.maxBytes
			for _, v := range victims {
				if excess <= 0 {
					break
				}
				if v.legacy >= 0 {
					if os.Remove(legacy[v.legacy].path) == nil {
						legacy[v.legacy].size = 0
						legacyBytes -= v.size
						excess -= v.size
						s.obs.Counter("artifact.cache.evictions").Inc()
					}
					continue
				}
				s.mu.Lock()
				if e, ok := s.index[v.fkey]; ok {
					delete(s.index, v.fkey)
					s.garbage[e.shard] += e.size
					garbage[e.shard] += e.size
					s.mu.Unlock()
					liveBytes -= v.size
					excess -= v.size
					s.obs.Counter("artifact.cache.evictions").Inc()
					continue
				}
				s.mu.Unlock()
			}
		}
		// Compaction reclaims garbage (superseded and evicted records).
		// Eviction above budgets on live bytes; the on-disk footprint is
		// the segment files themselves, so when those exceed the cap every
		// garbage-bearing segment compacts. Otherwise only segments whose
		// garbage passed the threshold and half the file are rewritten.
		var sizes [numShards]int64
		var packBytes int64
		for si := range s.shards {
			s.shards[si].mu.Lock()
			sizes[si] = s.shards[si].size
			s.shards[si].mu.Unlock()
			packBytes += sizes[si]
		}
		overCap := packBytes+legacyBytes+indexOverhead > s.maxBytes
		for si := range s.shards {
			if garbage[si] == 0 {
				continue
			}
			if overCap || (garbage[si] >= compactMinGarbage && garbage[si]*2 >= sizes[si]) {
				s.compactShard(si)
			}
		}
	}

	// Clear root-level temp debris a crashed settle may have left (failed
	// index saves, abandoned compactions) once it is old enough that no
	// live rename can still claim it.
	if des, err := os.ReadDir(s.dir); err == nil {
		for _, de := range des {
			name := de.Name()
			if de.IsDir() ||
				(!strings.HasPrefix(name, ".index.tmp-") && !strings.HasPrefix(name, ".pack-compact-")) {
				continue
			}
			if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > time.Minute {
				os.Remove(filepath.Join(s.dir, name))
			}
		}
	}

	s.saveIndex()

	// Publish the exact on-disk footprint.
	var total int64
	for si := range s.shards {
		if info, err := os.Stat(packPath(s.dir, si)); err == nil {
			total += info.Size()
		}
	}
	if info, err := os.Stat(filepath.Join(s.dir, indexName)); err == nil {
		total += info.Size()
	}
	for _, lf := range legacy {
		total += lf.size
	}
	s.obs.Gauge("artifact.cache.disk_bytes").Set(float64(total))
	s.refreshSegmentsGauge()
}

// compactShard rewrites segment si with only its live records, in offset
// order, and atomically renames the result into place. The stripe lock
// blocks appends for the duration; readers holding the old descriptor
// keep reading the old inode, and the swap retires it.
func (s *Store) compactShard(si int) {
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	path := packPath(s.dir, si)
	old, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return
	}

	type move struct {
		fkey string
		e    idxEntry
	}
	var moves []move
	s.mu.Lock()
	for fkey, e := range s.index {
		if e.shard == si {
			moves = append(moves, move{fkey: fkey, e: e})
		}
	}
	s.mu.Unlock()
	sort.Slice(moves, func(i, j int) bool { return moves[i].e.off < moves[j].e.off })

	fresh := make([]byte, 0, len(old))
	newOff := make([]int64, len(moves))
	for i, m := range moves {
		if m.e.off+m.e.size > int64(len(old)) {
			newOff[i] = -1 // stale entry; drop below
			continue
		}
		newOff[i] = int64(len(fresh))
		fresh = append(fresh, old[m.e.off:m.e.off+m.e.size]...)
	}

	tmp, err := os.CreateTemp(s.dir, ".pack-compact-")
	if err != nil {
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	if _, err := tmp.Write(fresh); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	if len(fresh) == 0 {
		os.Remove(tmp.Name())
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return
		}
	} else if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}

	// Publish the new geometry: remap the moved entries, reset the
	// shard's size and garbage, and retire the old read descriptor. The
	// write handle reopens lazily in append mode at the new tail.
	s.mu.Lock()
	for i, m := range moves {
		cur, ok := s.index[m.fkey]
		// Compare locations, not whole entries: a concurrent read may have
		// bumped the atime, which does not supersede the record.
		if !ok || cur.shard != m.e.shard || cur.off != m.e.off || cur.size != m.e.size {
			continue // superseded or evicted during the rewrite
		}
		if newOff[i] < 0 {
			delete(s.index, m.fkey)
			continue
		}
		cur.off = newOff[i]
		s.index[m.fkey] = cur
	}
	s.garbage[si] = 0
	s.mu.Unlock()
	if sh.w != nil {
		sh.w.Close()
		sh.w = nil
	}
	sh.size = int64(len(fresh))
	sh.swapReadHandle()
	s.obs.Counter("artifact.cache.compactions").Inc()
}

// saveIndex atomically writes the index file. The covered lengths are
// read after the entry snapshot; a record appended in between is simply
// re-found by the next Open's tail scan.
func (s *Store) saveIndex() {
	s.mu.Lock()
	snapshot := make(map[string]idxEntry, len(s.index))
	for k, v := range s.index {
		snapshot[k] = v
	}
	s.mu.Unlock()
	var covered [numShards]int64
	for si := range s.shards {
		s.shards[si].mu.Lock()
		covered[si] = s.shards[si].size
		s.shards[si].mu.Unlock()
	}
	blob := encodeIndex(snapshot, covered)
	tmp, err := os.CreateTemp(s.dir, ".index.tmp-")
	if err != nil {
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)); err != nil {
		os.Remove(tmp.Name())
		s.obs.Counter("artifact.cache.write_errors").Inc()
	}
}
