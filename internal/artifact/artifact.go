package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the store's on-disk file-format version. Bumping it
// invalidates every existing entry (old envelopes read as stale and are
// rebuilt); the CI cache key embeds it for the same reason.
const SchemaVersion = 1

// Kind names one artifact producer and its version. The version is part
// of the key: bump it whenever the producer's output for the same
// (params, seed) changes, and every stale entry becomes a clean miss.
type Kind struct {
	Name    string
	Version int
}

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the store's total size; the LRU sweep deletes
	// least-recently-used entries down to the cap.
	// 0 uses DefaultMaxBytes; negative disables the sweep.
	MaxBytes int64
	// Obs receives cache counters; nil (the default) disables metrics
	// at zero cost.
	Obs *obs.Registry
	// SyncWrites persists every entry on the writer's goroutine before
	// returning, the way early versions of the store did. By default
	// writes are handed to a background flusher so the building
	// goroutine overlaps the next build with the disk I/O; the in-memory
	// pending set keeps reads-after-writes exact either way. Use
	// SyncWrites when the process cannot call Close/Flush before another
	// process reads the directory.
	SyncWrites bool
}

// DefaultMaxBytes caps the store at 2 GiB unless Options says otherwise —
// far above any experiment in this repo, so eviction only matters for
// long-lived shared caches.
const DefaultMaxBytes = 2 << 30

// maxQueuedWrites bounds the flusher queue; writers past the bound block
// until the flusher drains, so a slow disk applies backpressure instead of
// growing memory without limit.
const maxQueuedWrites = 128

// sweepIntervalBytes is how many freshly written bytes accumulate before
// the flusher runs an LRU sweep on its own; Flush and Close always settle
// the remainder. Keeping the sweep off the per-write path matters because
// each sweep walks the whole store directory.
const sweepIntervalBytes = 1 << 20

// Store is a persistent content-addressed artifact cache rooted at one
// directory. It is safe for concurrent use by multiple goroutines and,
// thanks to atomic renames, by multiple processes sharing the directory.
// All methods are safe on a nil *Store, where every lookup builds
// directly — a disabled cache costs one nil check.
//
// Writes are asynchronous by default (see Options.SyncWrites): Put and
// GetOrBuild enqueue the entry and return, a single background flusher
// performs the temp-file + atomic-rename persistence, and reads consult
// the pending set first so a store always observes its own writes. Call
// Flush (or Close, which also stops the flusher) before handing the
// directory to another process.
type Store struct {
	dir      string
	maxBytes int64
	obs      *obs.Registry
	syncW    bool

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on queue/pending/closed changes
	flights map[string]*flight
	queue   []writeReq
	pending map[string]pendingWrite
	nextSeq uint64
	doneSeq uint64 // every req with seq <= doneSeq has been persisted
	closed  bool

	flusherDone chan struct{}

	// sweepMu serializes LRU sweeps and the disk-byte accounting they
	// publish: the flusher, Flush callers, and SyncWrites writers may all
	// reach the sweep, and interleaved walks would tear the
	// artifact.cache.disk_bytes gauge.
	sweepMu    sync.Mutex
	dirtyBytes int64 // bytes written since the last sweep; under sweepMu
}

// writeReq is one queued persistence job (the full envelope bytes).
type writeReq struct {
	kind Kind
	path string
	fkey string // kind-qualified pending-map key
	blob []byte
	seq  uint64
}

// pendingWrite is an entry that has been written logically but not yet
// persisted: reads are served from it until the flusher renames the entry
// into place.
type pendingWrite struct {
	payload []byte
	seq     uint64
}

// flight is one in-process single-flight build: the first goroutine to
// request a key builds it while followers wait on done and then decode
// the same bytes.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// Open creates (if needed) the cache directory and returns a store.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if opt.MaxBytes == 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	s := &Store{
		dir:      dir,
		maxBytes: opt.MaxBytes,
		obs:      opt.Obs,
		syncW:    opt.SyncWrites,
		flights:  make(map[string]*flight),
		pending:  make(map[string]pendingWrite),
	}
	s.cond = sync.NewCond(&s.mu)
	if !s.syncW {
		s.flusherDone = make(chan struct{})
		go s.flusher()
	}
	return s, nil
}

// Resolve turns the shared CLI surface (-cache-dir, -no-cache, and the
// EVAL_CACHE_DIR environment variable) into a store: nil when caching is
// off. An explicit -cache-dir wins over the environment; -no-cache wins
// over both.
func Resolve(dirFlag string, noCache bool, opt Options) (*Store, error) {
	if noCache {
		return nil, nil
	}
	dir := dirFlag
	if dir == "" {
		dir = os.Getenv("EVAL_CACHE_DIR")
	}
	if dir == "" {
		return nil, nil
	}
	return Open(dir, opt)
}

// Dir returns the store's root directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Flush blocks until every write enqueued before the call is durably
// renamed into place, then settles any outstanding LRU sweep. After Flush
// returns, a fresh store (or another process) opening the same directory
// sees all of this store's writes. No-op on a nil or synchronous store.
func (s *Store) Flush() {
	if s == nil || s.syncW {
		return
	}
	s.mu.Lock()
	target := s.nextSeq
	for s.doneSeq < target {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.sweepIfDirty(true)
}

// Close flushes the queue, stops the background flusher, and runs the
// final sweep. Idempotent and nil-safe. The store remains usable after
// Close: reads behave normally and later writes fall back to synchronous
// persistence, so a defer-closed store can never lose or corrupt data.
func (s *Store) Close() {
	if s == nil || s.syncW {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.flusherDone
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.flusherDone
}

// flusher is the single background writer: it drains the queue in batches
// (FIFO, so the last write of a key wins on disk), clears the pending set
// as entries land, and sweeps at batch boundaries once enough bytes have
// accumulated. It exits — after a final drain and sweep — when Close
// marks the store closed.
func (s *Store) flusher() {
	defer close(s.flusherDone)
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			break // closed and fully drained
		}
		batch := s.queue
		s.queue = nil
		s.cond.Broadcast() // wake writers blocked on the queue bound
		s.mu.Unlock()

		for i := range batch {
			s.persist(batch[i].kind, batch[i].path, batch[i].blob)
		}

		s.mu.Lock()
		for i := range batch {
			if p, ok := s.pending[batch[i].fkey]; ok && p.seq == batch[i].seq {
				delete(s.pending, batch[i].fkey)
			}
		}
		s.doneSeq = batch[len(batch)-1].seq
		s.cond.Broadcast() // wake Flush waiters
		s.mu.Unlock()

		s.sweepIfDirty(false)
		s.mu.Lock()
	}
	s.mu.Unlock()
	s.sweepIfDirty(true)
}

// keyEnvelope is the canonical pre-image of an entry key.
type keyEnvelope struct {
	Schema  int    `json:"schema"`
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	Params  any    `json:"params"`
	Seed    int64  `json:"seed"`
}

// Key derives the content address of (kind, params, seed): the SHA-256
// of the canonical JSON key envelope. params must JSON-marshal
// deterministically (plain structs and slices do; maps do not belong in
// key parameter structs).
func Key(kind Kind, params any, seed int64) (string, error) {
	blob, err := json.Marshal(keyEnvelope{
		Schema:  SchemaVersion,
		Kind:    kind.Name,
		Version: kind.Version,
		Params:  params,
		Seed:    seed,
	})
	if err != nil {
		return "", fmt.Errorf("artifact: keying %s params: %w", kind.Name, err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// envelope is the on-disk entry format.
type envelope struct {
	Schema  int             `json:"schema"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// entryPath shards entries by the key's first byte to keep directories
// small.
func (s *Store) entryPath(kind Kind, key string) string {
	return filepath.Join(s.dir, kind.Name, key[:2], key+".json")
}

// GetOrBuild returns the artifact for key, building it at most once per
// process. On a cache hit decode receives the stored payload; when build
// runs, decode is NOT called — the builder already holds the object and
// returns its serialized form for the store. A corrupt entry (checksum,
// schema, key, or decode failure) counts as a miss, rebuilds, and
// overwrites. The returned error is build's (or a failed decode of
// freshly built bytes); cache I/O problems never surface as errors.
func (s *Store) GetOrBuild(kind Kind, key string, decode func([]byte) error, build func() ([]byte, error)) error {
	if s == nil {
		_, err := build()
		return err
	}
	flightKey := kind.Name + "/" + key

	s.mu.Lock()
	if f, ok := s.flights[flightKey]; ok {
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return f.err
		}
		return decode(f.payload)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[flightKey] = f
	s.mu.Unlock()

	defer func() {
		close(f.done)
		s.mu.Lock()
		delete(s.flights, flightKey)
		s.mu.Unlock()
	}()

	path := s.entryPath(kind, key)
	if payload, ok := s.read(kind, key, path); ok {
		if err := decode(payload); err == nil {
			s.count(kind, "hits")
			now := time.Now()
			_ = os.Chtimes(path, now, now) // best-effort LRU recency
			f.payload = payload
			return nil
		}
		// Payload passed the checksum but its consumer rejects it:
		// a stale producer whose Kind.Version was not bumped, or a
		// hand-edited entry. Same degradation path as corruption.
		s.count(kind, "corrupt")
	}
	s.count(kind, "misses")

	payload, err := build()
	if err != nil {
		f.err = err
		return err
	}
	f.payload = payload
	s.write(kind, key, path, payload)
	return nil
}

// Get returns the artifact for key if an intact entry exists, feeding the
// payload to decode. Unlike GetOrBuild it never builds: absence or
// corruption simply returns false, and the caller produces (or skips) the
// object itself. Nil-safe, like every Store method.
func (s *Store) Get(kind Kind, key string, decode func([]byte) error) bool {
	if s == nil {
		return false
	}
	path := s.entryPath(kind, key)
	payload, ok := s.read(kind, key, path)
	if !ok {
		s.count(kind, "misses")
		return false
	}
	if err := decode(payload); err != nil {
		s.count(kind, "corrupt")
		s.count(kind, "misses")
		return false
	}
	s.count(kind, "hits")
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort LRU recency
	return true
}

// Put persists payload under key, overwriting any existing entry. The
// complement of Get for artifacts whose build has no single call site to
// wrap (e.g. tables accumulated lazily over a run). Failures are counted
// and swallowed; nil-safe.
func (s *Store) Put(kind Kind, key string, payload []byte) {
	if s == nil {
		return
	}
	s.write(kind, key, s.entryPath(kind, key), payload)
}

// read loads and verifies one entry, returning (payload, true) only for
// an intact entry. A pending (queued but not yet flushed) write is
// authoritative and served from memory — read-your-writes. Absence is
// silent; any damage counts as corrupt.
func (s *Store) read(kind Kind, key, path string) ([]byte, bool) {
	if !s.syncW {
		s.mu.Lock()
		if p, ok := s.pending[kind.Name+"/"+key]; ok {
			s.mu.Unlock()
			return p.payload, true
		}
		s.mu.Unlock()
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.count(kind, "corrupt")
		}
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		s.count(kind, "corrupt")
		return nil, false
	}
	if env.Schema != SchemaVersion || env.Kind != kind.Name || env.Key != key {
		s.count(kind, "corrupt")
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		s.count(kind, "corrupt")
		return nil, false
	}
	return env.Payload, true
}

// write records one logical entry write: the envelope is sealed here (so
// marshalling failures surface to the writer's counters immediately) and
// either persisted in place (SyncWrites, or a closed store) or queued for
// the background flusher with the payload entered into the pending set.
func (s *Store) write(kind Kind, key, path string, payload []byte) {
	sum := sha256.Sum256(payload)
	blob, err := json.Marshal(envelope{
		Schema:  SchemaVersion,
		Kind:    kind.Name,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	if s.syncW {
		s.persist(kind, path, blob)
		s.sweepIfDirty(true)
		return
	}
	s.mu.Lock()
	for len(s.queue) >= maxQueuedWrites && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		s.persist(kind, path, blob)
		s.sweepIfDirty(true)
		return
	}
	s.nextSeq++
	fkey := kind.Name + "/" + key
	s.queue = append(s.queue, writeReq{kind: kind, path: path, fkey: fkey, blob: blob, seq: s.nextSeq})
	s.pending[fkey] = pendingWrite{payload: payload, seq: s.nextSeq}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// persist performs the actual temp-file + atomic-rename write of one
// sealed envelope. Failures are counted and swallowed: the cache never
// fails the run that built the artifact.
func (s *Store) persist(kind Kind, path string, blob []byte) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.obs.Counter("artifact.cache.write_errors").Inc()
		return
	}
	s.obs.Counter("artifact.cache.bytes").Add(int64(len(blob)))
	s.sweepMu.Lock()
	s.dirtyBytes += int64(len(blob))
	s.sweepMu.Unlock()
}

// count bumps the global and per-kind counter of one event class.
func (s *Store) count(kind Kind, event string) {
	s.obs.Counter("artifact.cache." + event).Inc()
	s.obs.Counter("artifact.cache." + kind.Name + "." + event).Inc()
}

// Hits returns the global hit count (0 without a registry) — a test and
// smoke-check convenience.
func (s *Store) Hits() int64 {
	if s == nil {
		return 0
	}
	return s.obs.Counter("artifact.cache.hits").Value()
}

// sweepEntry is one on-disk entry considered for eviction.
type sweepEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// sweepIfDirty runs an LRU sweep when bytes have been written since the
// last one — always when forced (Flush, Close, synchronous writes),
// otherwise only once sweepIntervalBytes have accumulated. The sweep and
// its disk_bytes gauge update run under sweepMu, so concurrent callers
// (the flusher, Flush, SyncWrites writers) serialize instead of
// interleaving directory walks and tearing the accounting.
func (s *Store) sweepIfDirty(force bool) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.dirtyBytes == 0 || (!force && s.dirtyBytes < sweepIntervalBytes) {
		return
	}
	s.dirtyBytes = 0
	s.sweepLocked()
}

// sweepLocked enforces the size bound: when the store exceeds maxBytes it
// deletes least-recently-used entries (and any orphaned temp files)
// until back under the cap. Caller holds sweepMu.
func (s *Store) sweepLocked() {
	if s.maxBytes < 0 {
		return
	}
	var entries []sweepEntry
	var total int64
	_ = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		// Orphaned temp files older than a minute are debris from a
		// crashed writer; live ones are about to be renamed.
		if filepath.Ext(path) != ".json" {
			if time.Since(info.ModTime()) > time.Minute {
				os.Remove(path)
			}
			return nil
		}
		entries = append(entries, sweepEntry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	s.obs.Gauge("artifact.cache.disk_bytes").Set(float64(total))
	if total <= s.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			s.obs.Counter("artifact.cache.evictions").Inc()
		}
	}
	s.obs.Gauge("artifact.cache.disk_bytes").Set(float64(total))
}
